package sim

import "cord/internal/trace"

// CostModel prices each operation in cycles of virtual time. Detection
// experiments use SimpleCost (uniform costs plus engine jitter, which varies
// interleavings across seeds); the performance-overhead experiment plugs in
// the machine timing model (internal/machine), which simulates caches and
// bus contention and consumes the primary detector's traffic report.
type CostModel interface {
	// AccessCost prices one shared-memory access issued at virtual time
	// now on processor proc. rep is the primary detector's report for the
	// access (zero when no primary detector is attached). The return value
	// is the cost (cycles beyond now) charged to the issuing thread.
	AccessCost(now uint64, proc int, a trace.Access, rep trace.Report) uint64
	// ComputeCost prices n cycles of local computation.
	ComputeCost(proc int, n uint64) uint64
}

// SimpleCost is the detection-mode model: every access costs AccessCycles
// (default 10) and computation is one cycle per unit. The engine's seeded
// jitter supplies interleaving diversity.
type SimpleCost struct {
	AccessCycles uint64
}

// AccessCost implements CostModel.
func (s SimpleCost) AccessCost(now uint64, proc int, a trace.Access, rep trace.Report) uint64 {
	if s.AccessCycles == 0 {
		return 10
	}
	return s.AccessCycles
}

// ComputeCost implements CostModel.
func (s SimpleCost) ComputeCost(proc int, n uint64) uint64 { return n }
