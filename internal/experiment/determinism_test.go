package experiment

import (
	"bytes"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"cord/internal/workload"
)

// twoAppOpts is the ISSUE's determinism fixture: a small two-app campaign.
func twoAppOpts(procs int) Options {
	apps := []workload.App{}
	for _, name := range []string{"raytrace", "lu"} {
		a, _ := workload.ByName(name)
		apps = append(apps, a)
	}
	return Options{Injections: 4, Apps: apps, BaseSeed: 77, Procs: procs}
}

// renderAll renders every detection figure into one byte stream.
func renderAll(t *testing.T, res *DetectionResults) string {
	t.Helper()
	var buf bytes.Buffer
	for _, f := range []Figure{
		res.Fig10(), res.Fig12(), res.Fig13(), res.Fig14(), res.Fig15(), res.Fig16(), res.Fig17(),
	} {
		if err := f.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestParallelCampaignBitIdentical: the same campaign produces byte-identical
// aggregates, figures, and progress output at Procs: 1 and Procs: 4 — the
// worker pool must not leak scheduling into results.
func TestParallelCampaignBitIdentical(t *testing.T) {
	run := func(procs int) (*DetectionResults, string, string) {
		o := twoAppOpts(procs)
		var progress bytes.Buffer
		o.Progress = &progress
		res, err := RunDetection(o)
		if err != nil {
			t.Fatal(err)
		}
		return res, renderAll(t, res), progress.String()
	}
	serial, serialFigs, serialProg := run(1)
	par, parFigs, parProg := run(4)

	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("AppDetection aggregates differ between Procs=1 and Procs=4:\n%+v\nvs\n%+v", serial, par)
	}
	if serialFigs != parFigs {
		t.Fatalf("figure output differs between Procs=1 and Procs=4:\n%s\nvs\n%s", serialFigs, parFigs)
	}
	if serialProg != parProg {
		t.Fatalf("progress output differs between Procs=1 and Procs=4:\n%s\nvs\n%s", serialProg, parProg)
	}
}

// TestParallelTablesBitIdentical covers the remaining campaign entry points:
// Table 1 sizing, overhead, replay verification, and the directory extension
// must all be worker-count independent.
func TestParallelTablesBitIdentical(t *testing.T) {
	s, p := twoAppOpts(1), twoAppOpts(4)

	t1s, err := RunTable1(s)
	if err != nil {
		t.Fatal(err)
	}
	t1p, err := RunTable1(p)
	if err != nil {
		t.Fatal(err)
	}
	// Mem images are not part of the row; rows must match exactly.
	if !reflect.DeepEqual(t1s, t1p) {
		t.Fatalf("Table1 rows differ:\n%+v\nvs\n%+v", t1s, t1p)
	}

	ovS, figS, err := RunOverhead(s)
	if err != nil {
		t.Fatal(err)
	}
	ovP, figP, err := RunOverhead(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ovS, ovP) || !reflect.DeepEqual(figS, figP) {
		t.Fatalf("overhead rows differ:\n%+v\nvs\n%+v", ovS, ovP)
	}

	rpS, err := RunReplayCheck(s)
	if err != nil {
		t.Fatal(err)
	}
	rpP, err := RunReplayCheck(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rpS, rpP) {
		t.Fatalf("replay rows differ:\n%+v\nvs\n%+v", rpS, rpP)
	}

	dirS, err := RunDirectory(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	dirP, err := RunDirectory(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dirS, dirP) {
		t.Fatalf("directory rows differ:\n%+v\nvs\n%+v", dirS, dirP)
	}
}

// TestJSONArtifactsBitIdentical: the encoded BENCH_*.json artifacts — the
// shipped machine-readable form, campaign metadata included — are
// byte-identical at Procs: 1 and Procs: 4. This is the export-layer
// counterpart of the figure-rendering checks above: worker fan-out must not
// leak into artifacts, or they could not serve as diffable baselines.
func TestJSONArtifactsBitIdentical(t *testing.T) {
	encodeAll := func(procs int) map[string][]byte {
		o := twoAppOpts(procs)
		meta := o.Meta()

		res, err := RunDetection(o)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := RunTable1(o)
		if err != nil {
			t.Fatal(err)
		}
		ovRows, ovFig, err := RunOverhead(o)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := RunReplayCheck(o)
		if err != nil {
			t.Fatal(err)
		}
		dir, err := RunDirectory(o, 8)
		if err != nil {
			t.Fatal(err)
		}

		arts := []Artifact{
			Table1Artifact(t1, meta),
			FigureArtifact(AreaFigure(), meta),
			OverheadArtifact(ovRows, ovFig, meta),
			ReplayArtifact(rp, meta),
			DirectoryArtifact(dir, 8, meta),
		}
		for _, f := range []Figure{res.Fig10(), res.Fig12(), res.Fig16()} {
			arts = append(arts, FigureArtifact(f, meta))
		}
		out := make(map[string][]byte, len(arts))
		for _, a := range arts {
			b, err := a.Encode()
			if err != nil {
				t.Fatalf("%s: %v", a.ID, err)
			}
			out[a.ID] = b
		}
		return out
	}

	serial := encodeAll(1)
	par := encodeAll(4)
	if len(serial) != len(par) {
		t.Fatalf("artifact sets differ: %d vs %d", len(serial), len(par))
	}
	for id, b := range serial {
		if !bytes.Equal(b, par[id]) {
			t.Errorf("artifact %s is not byte-identical between Procs=1 and Procs=4:\n%s\nvs\n%s",
				id, b, par[id])
		}
	}
}

func TestForEach(t *testing.T) {
	for _, procs := range []int{1, 4, 100} {
		var sum atomic.Int64
		got := make([]int, 50)
		if err := (Options{Procs: procs}).forEach(len(got), func(i int) error {
			got[i] = i * i
			sum.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if sum.Load() != 50 {
			t.Fatalf("procs=%d: ran %d of 50", procs, sum.Load())
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("procs=%d: slot %d = %d", procs, i, v)
			}
		}
	}
	// n = 0 is a no-op.
	if err := (Options{Procs: 4}).forEach(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	for _, procs := range []int{1, 4} {
		var ran atomic.Int64
		err := (Options{Procs: procs}).forEach(1000, func(i int) error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("procs=%d: err = %v", procs, err)
		}
		// Cancellation is prompt: nowhere near the full list runs.
		if ran.Load() > 100 {
			t.Fatalf("procs=%d: %d calls ran after error", procs, ran.Load())
		}
	}
}

func TestSyncWriter(t *testing.T) {
	if newSyncWriter(nil) != nil {
		t.Fatal("nil writer must stay nil")
	}
	var buf bytes.Buffer
	w := newSyncWriter(&buf)
	if newSyncWriter(w) != w {
		t.Fatal("double wrap")
	}
	if _, err := w.Write([]byte("line\n")); err != nil || buf.String() != "line\n" {
		t.Fatalf("write: %v %q", err, buf.String())
	}
}
