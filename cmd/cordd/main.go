// Command cordd is the CORD race-detection service: a long-running HTTP
// server that executes detection and replay sessions on a bounded worker
// pool (see internal/server for the API).
//
// Usage:
//
//	cordd -addr :8080 -workers 4 -queue 16 -timeout 60s -streams 8
//
// Endpoints: POST /v1/detect, POST /v1/replay, POST /v1/stream (streaming
// order-record ingestion with optional online race detection and duty
// cycling, PROTOCOL.md §4; -stream-duty sets the default duty percentage,
// -stream-workers the per-session ingest fan-out), POST /v1/campaign/plan
// and POST /v1/campaign/shard (distributed-campaign worker protocol,
// PROTOCOL.md §6 — a cordbench coordinator with -workers fans run shards
// across a fleet of these processes), GET /healthz, GET /metrics.
// SIGINT/SIGTERM drain in-flight sessions — streams included — before the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cord/internal/server"
)

// validateFlags rejects out-of-domain service parameters before binding the
// socket, mirroring the other cord binaries: bad invocations exit 2 with
// usage instead of failing at the first request.
func validateFlags(workers, queue int, timeout, drain time.Duration, maxBody int64,
	streams int, streamIdle time.Duration, streamMaxBytes int64, streamMaxFrames uint64,
	streamDuty, streamWorkers int) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be at least 1 (or 0 for NumCPU)")
	}
	if queue < 1 {
		return fmt.Errorf("-queue must be at least 1")
	}
	if timeout <= 0 {
		return fmt.Errorf("-timeout must be positive")
	}
	if drain <= 0 {
		return fmt.Errorf("-drain must be positive")
	}
	if maxBody < 1 {
		return fmt.Errorf("-max-body must be at least 1 byte")
	}
	if streams < 1 {
		return fmt.Errorf("-streams must be at least 1")
	}
	if streamIdle <= 0 {
		return fmt.Errorf("-stream-idle must be positive")
	}
	if streamMaxBytes < 1 {
		return fmt.Errorf("-stream-max-bytes must be at least 1 byte")
	}
	if streamMaxFrames < 1 {
		return fmt.Errorf("-stream-max-frames must be at least 1")
	}
	// The server treats 0 as "use the default", so the flag's domain starts
	// at 1; per-session duty=0 remains available via the query parameter.
	if streamDuty < 1 || streamDuty > 100 {
		return fmt.Errorf("-stream-duty must be in [1, 100]")
	}
	if streamWorkers < 0 {
		return fmt.Errorf("-stream-workers must be at least 1 (or 0 for the default)")
	}
	// The ingest fan-out partitions work by simulated thread, so workers
	// beyond the server's thread ceiling can never be scheduled — reject the
	// misconfiguration up front instead of silently idling the extras.
	if streamWorkers > server.MaxThreads {
		return fmt.Errorf("-stream-workers must be at most %d (the session thread ceiling)", server.MaxThreads)
	}
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent sessions (0 = NumCPU)")
		queue   = flag.Int("queue", 16, "queued sessions beyond the running ones")
		timeout = flag.Duration("timeout", 60*time.Second, "per-session execution timeout")
		drain   = flag.Duration("drain", 30*time.Second, "shutdown drain budget")
		maxBody = flag.Int64("max-body", 8<<20, "request body size limit in bytes")

		streams         = flag.Int("streams", 8, "concurrent /v1/stream sessions")
		streamIdle      = flag.Duration("stream-idle", 30*time.Second, "stream idle timeout (eviction with 408)")
		streamMaxBytes  = flag.Int64("stream-max-bytes", 256<<20, "per-stream byte quota")
		streamMaxFrames = flag.Uint64("stream-max-frames", 16<<20, "per-stream frame quota")
		streamDuty      = flag.Int("stream-duty", 100, "default duty %% for detect=online sessions (1-100)")
		streamWorkers   = flag.Int("stream-workers", 0, "per-session online ingest workers (0 = min(4, NumCPU))")
	)
	flag.Parse()

	if err := validateFlags(*workers, *queue, *timeout, *drain, *maxBody,
		*streams, *streamIdle, *streamMaxBytes, *streamMaxFrames, *streamDuty, *streamWorkers); err != nil {
		fmt.Fprintf(os.Stderr, "cordd: %v\n", err)
		flag.Usage()
		return 2
	}

	srv := server.New(server.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		SessionTimeout:    *timeout,
		MaxBodyBytes:      *maxBody,
		MaxStreams:        *streams,
		StreamIdleTimeout: *streamIdle,
		MaxStreamBytes:    *streamMaxBytes,
		MaxStreamFrames:   *streamMaxFrames,
		StreamDuty:        *streamDuty,
		StreamWorkers:     *streamWorkers,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("cordd: listening on %s (workers=%d queue=%d timeout=%v)",
			*addr, srv.Metrics().Workers, *queue, *timeout)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure here (Shutdown is not yet
		// in play): bad address, occupied port, ...
		fmt.Fprintf(os.Stderr, "cordd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	log.Printf("cordd: signal received, draining (budget %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections and wait for in-flight handlers; handlers
	// in turn wait for their sessions, so this is the outer half of the
	// drain. Then retire the worker pool.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "cordd: http shutdown: %v\n", err)
		return 1
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "cordd: %v\n", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "cordd: %v\n", err)
		return 1
	}
	m := srv.Metrics()
	log.Printf("cordd: drained cleanly (%d sessions completed, %d rejected)",
		m.Sessions.Completed, m.Sessions.RejectedQueueFull+m.Sessions.RejectedDraining)
	return 0
}
