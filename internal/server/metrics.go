package server

import (
	"sync"
	"time"
)

// latencyBucketsMs are the fixed upper bounds (milliseconds) of the
// per-endpoint latency histograms. The last bucket of Histogram.Counts is
// the overflow bucket (> 60 s). Fixed bounds keep /metrics bodies
// structurally identical across servers, so dashboards and load-test
// tooling can diff them without negotiating shapes.
var latencyBucketsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// Histogram is a cumulative latency histogram: Counts[i] holds observations
// with latency <= LeMs[i]; the final element holds the overflow.
type Histogram struct {
	LeMs   []float64 `json:"le_ms"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	SumMs  float64   `json:"sum_ms"`
}

// SessionCounters are the cumulative session-lifecycle counters. Every
// accepted session ends in exactly one of completed, failed, canceled or
// timed-out; rejected requests were never accepted.
type SessionCounters struct {
	// Accepted sessions entered the queue.
	Accepted uint64 `json:"accepted"`
	// Started sessions were picked up by a worker.
	Started uint64 `json:"started"`
	// Completed sessions produced a 2xx response body.
	Completed uint64 `json:"completed"`
	// Failed sessions ended in a request or internal error.
	Failed uint64 `json:"failed"`
	// Canceled sessions were stopped because their client disconnected.
	Canceled uint64 `json:"canceled"`
	// TimedOut sessions exceeded the per-session timeout.
	TimedOut uint64 `json:"timed_out"`
	// RejectedQueueFull requests got 429: the session queue was full.
	RejectedQueueFull uint64 `json:"rejected_queue_full"`
	// RejectedDraining requests got 503: the server was shutting down.
	RejectedDraining uint64 `json:"rejected_draining"`
}

// StreamCounters are the cumulative /v1/stream session counters. Every
// started stream ends in exactly one of completed, failed, canceled,
// timed-out, idle-timeout or quota-exceeded; rejected requests never
// started. The byte/frame totals count what the decoder actually ingested,
// including partial streams that later failed.
type StreamCounters struct {
	// Started streams were admitted (drain check and slot both passed).
	Started uint64 `json:"started"`
	// Completed streams produced a 2xx summary.
	Completed uint64 `json:"completed"`
	// Failed streams ended in a format, order or parameter error.
	Failed uint64 `json:"failed"`
	// Canceled streams lost their client mid-session.
	Canceled uint64 `json:"canceled"`
	// TimedOut streams exceeded the session timeout during verification.
	TimedOut uint64 `json:"timed_out"`
	// IdleTimeout streams were evicted for not delivering bytes in time.
	IdleTimeout uint64 `json:"idle_timeout"`
	// QuotaExceeded streams hit their per-session byte or frame quota.
	QuotaExceeded uint64 `json:"quota_exceeded"`
	// RejectedLimit requests got 429: every stream slot was busy.
	RejectedLimit uint64 `json:"rejected_limit"`
	// RejectedDraining requests got 503: the server was shutting down.
	RejectedDraining uint64 `json:"rejected_draining"`
	// BytesIngested / FramesIngested total the decoded stream volume.
	BytesIngested  uint64 `json:"bytes_ingested"`
	FramesIngested uint64 `json:"frames_ingested"`
	// OnlineSessions counts detect=online sessions admitted (a subset of
	// Started); the remaining Online* totals cover only those sessions.
	OnlineSessions uint64 `json:"online_sessions"`
	// OnlineRaces totals the races the online detectors reported.
	OnlineRaces uint64 `json:"online_races"`
	// OnlineEpochsTotal / OnlineEpochsObserved total the epochs online
	// replays advanced through and the subset replayed with detection on —
	// their ratio is the fleet-wide effective duty-cycle coverage.
	OnlineEpochsTotal    uint64 `json:"online_epochs_total"`
	OnlineEpochsObserved uint64 `json:"online_epochs_observed"`
	// OnlineDivergences counts online sessions whose replay could not follow
	// the streamed log (a 200 verdict, not a failure).
	OnlineDivergences uint64 `json:"online_divergences"`
}

// FleetCounters are the cumulative fleet-membership and shard-recovery
// counters. The registry counters move on any cordd serving as a registry;
// the shard counters move on workers, counting shards whose requests declare
// a steal or requeue origin (PROTOCOL.md §7). The block is present — zeroed —
// on every server, keeping /metrics bodies structurally identical.
type FleetCounters struct {
	// LiveWorkers is a gauge: registrations currently alive (not expired).
	LiveWorkers int `json:"live_workers"`
	// WorkersRegistered counts registrations of previously-unknown URLs.
	WorkersRegistered uint64 `json:"workers_registered"`
	// HeartbeatsReceived counts re-registrations of already-known URLs.
	HeartbeatsReceived uint64 `json:"heartbeats_received"`
	// WorkersExpired counts registrations pruned after their TTL lapsed
	// (including best-effort evictions of a full registry).
	WorkersExpired uint64 `json:"workers_expired"`
	// ShardsStolen / ShardsRequeued count executed shards that arrived with
	// origin "steal" / "requeue".
	ShardsStolen   uint64 `json:"shards_stolen"`
	ShardsRequeued uint64 `json:"shards_requeued"`
}

// Metrics is the GET /metrics body: a schema-versioned snapshot of the
// cumulative counters, following the internal/experiment JSON conventions
// (fixed field order; map keys sort, so equal states encode to equal bytes).
type Metrics struct {
	Schema        int                  `json:"schema"`
	UptimeSeconds float64              `json:"uptime_seconds"`
	Workers       int                  `json:"workers"`
	QueueDepth    int                  `json:"queue_depth"`
	QueueCapacity int                  `json:"queue_capacity"`
	Sessions      SessionCounters      `json:"sessions"`
	Streams       StreamCounters       `json:"streams"`
	Fleet         FleetCounters        `json:"fleet"`
	Endpoints     map[string]Histogram `json:"endpoints"`
}

// metrics is the live, mutex-guarded store behind Metrics snapshots.
type metrics struct {
	mu        sync.Mutex
	sessions  SessionCounters
	streams   StreamCounters
	fleet     FleetCounters
	endpoints map[string]*hist
}

type hist struct {
	counts [numBuckets]uint64
	count  uint64
	sumMs  float64
}

// numBuckets is len(latencyBucketsMs)+1 (the overflow bucket); a named constant
// because array lengths must be constant expressions.
const numBuckets = 16

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*hist)}
}

// bump applies fn to the counter set under the lock.
func (m *metrics) bump(fn func(*SessionCounters)) {
	m.mu.Lock()
	fn(&m.sessions)
	m.mu.Unlock()
}

// bumpStream applies fn to the stream counter set under the lock.
func (m *metrics) bumpStream(fn func(*StreamCounters)) {
	m.mu.Lock()
	fn(&m.streams)
	m.mu.Unlock()
}

// bumpFleet applies fn to the fleet counter set under the lock.
func (m *metrics) bumpFleet(fn func(*FleetCounters)) {
	m.mu.Lock()
	fn(&m.fleet)
	m.mu.Unlock()
}

// observe records one request's handler latency for an endpoint.
func (m *metrics) observe(endpoint string, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	m.mu.Lock()
	h := m.endpoints[endpoint]
	if h == nil {
		h = &hist{}
		m.endpoints[endpoint] = h
	}
	h.counts[i]++
	h.count++
	h.sumMs += ms
	m.mu.Unlock()
}

// p50Ms estimates an endpoint's median latency from its histogram: the upper
// bound of the bucket holding the median observation (the overflow bucket
// reports the largest finite bound). ok is false with no observations yet.
func (m *metrics) p50Ms(endpoint string) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.endpoints[endpoint]
	if h == nil || h.count == 0 {
		return 0, false
	}
	half := (h.count + 1) / 2
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= half {
			if i < len(latencyBucketsMs) {
				return latencyBucketsMs[i], true
			}
			return latencyBucketsMs[len(latencyBucketsMs)-1], true
		}
	}
	return 0, false
}

// snapshot renders the current counters as a Metrics value.
func (m *metrics) snapshot(uptime time.Duration, workers, queueDepth, queueCap int) Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Metrics{
		Schema:        SchemaVersion,
		UptimeSeconds: uptime.Seconds(),
		Workers:       workers,
		QueueDepth:    queueDepth,
		QueueCapacity: queueCap,
		Sessions:      m.sessions,
		Streams:       m.streams,
		Fleet:         m.fleet,
		Endpoints:     make(map[string]Histogram, len(m.endpoints)),
	}
	for ep, h := range m.endpoints {
		counts := make([]uint64, numBuckets)
		copy(counts, h.counts[:])
		out.Endpoints[ep] = Histogram{
			LeMs:   latencyBucketsMs,
			Counts: counts,
			Count:  h.count,
			SumMs:  h.sumMs,
		}
	}
	return out
}
