package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cord/internal/clock"
	"cord/internal/record"
	"cord/internal/replay"
	"cord/internal/workload"
)

// chunkedReader forces the HTTP client into chunked transfer encoding (no
// Len method) and limits every Read to n bytes, so the server-side decoder
// really sees the stream in fragments that split headers and entries.
type chunkedReader struct {
	r io.Reader
	n int
}

func (c *chunkedReader) Read(p []byte) (int, error) {
	if len(p) > c.n {
		p = p[:c.n]
	}
	return c.r.Read(p)
}

// recordFixture records a real fft order log via the replay package using
// the exact configuration POST /v1/detect runs (seed, jitter 7, 4 threads),
// so the streamed log and the server's re-execution agree byte for byte.
func recordFixture(t *testing.T, seed uint64) []byte {
	t.Helper()
	app, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	out, err := replay.RecordAndReplay(app.Build(1, 4), replay.Options{Seed: seed, Jitter: 7})
	if err != nil || !out.Match {
		t.Fatalf("recording fixture failed: err=%v match=%v", err, out.Match)
	}
	var buf bytes.Buffer
	if err := out.Log.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postStream streams body through POST /v1/stream in small chunks.
func postStream(t *testing.T, url, query string, body []byte, chunk int) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/stream?"+query,
		&chunkedReader{r: bytes.NewReader(body), n: chunk})
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/stream: %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading stream response: %v", err)
	}
	return resp, b
}

// deindent strips one two-space indentation level from a nested MarshalIndent
// block — the inverse of embedding a response one object deep. JSON strings
// cannot contain raw newlines, so the textual transform is exact.
func deindent(raw []byte) []byte {
	return []byte(strings.ReplaceAll(string(raw), "\n  ", "\n"))
}

// TestStreamDetectByteIdentity is the acceptance criterion: streaming a
// recorded order log through /v1/stream yields a summary whose detect
// section is byte-identical to the one-shot /v1/detect response on the same
// parameters, and the streamed log hash-matches the re-execution.
func TestStreamDetectByteIdentity(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	logBytes := recordFixture(t, 9)
	resp, body := postStream(t, ts.URL, "app=fft&seed=9&threads=4", logBytes, 13)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d, body %s", resp.StatusCode, body)
	}
	var sr StreamResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decoding stream response: %v", err)
	}
	if !sr.Verified || !sr.LogMatch {
		t.Fatalf("verdict: verified=%v log_match=%v (body %s)", sr.Verified, sr.LogMatch, body)
	}
	if sr.Frames*record.EntryBytes != sr.LogBytes || int(sr.LogBytes) != len(logBytes)-record.HeaderBytes {
		t.Fatalf("frame accounting: frames=%d log_bytes=%d stream=%d", sr.Frames, sr.LogBytes, len(logBytes))
	}

	// Extract the detect block textually and compare bytes against the
	// one-shot endpoint — the same check scripts/service-smoke.sh performs.
	var rawWrap struct {
		Detect json.RawMessage `json:"detect"`
	}
	if err := json.Unmarshal(body, &rawWrap); err != nil {
		t.Fatal(err)
	}
	detResp, detBody := postDetect(t, ts.URL, DetectRequest{App: "fft", Seed: 9, Threads: 4})
	if detResp.StatusCode != http.StatusOK {
		t.Fatalf("one-shot detect status %d", detResp.StatusCode)
	}
	if want := append(deindent(rawWrap.Detect), '\n'); !bytes.Equal(detBody, want) {
		t.Fatalf("stream detect section differs from one-shot /v1/detect:\n%s\nvs\n%s", want, detBody)
	}

	// A repeat stream is byte-identical end to end.
	resp2, body2 := postStream(t, ts.URL, "app=fft&seed=9&threads=4", logBytes, 4096)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body, body2) {
		t.Fatalf("repeat stream not byte-identical (status %d)", resp2.StatusCode)
	}
}

// TestConcurrentStreamsByteStable: N identical streams ingested concurrently
// (each chunked differently) all succeed with byte-identical summaries —
// per-session shard state is fully isolated. Run under -race this is also
// the data-race check on the admission path and metrics.
func TestConcurrentStreamsByteStable(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8, MaxStreams: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	logBytes := recordFixture(t, 3)
	const n = 6
	bodies := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postStream(t, ts.URL, "app=fft&seed=3&threads=4", logBytes, 7+i*11)
			statuses[i], bodies[i] = resp.StatusCode, b
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("stream %d: status %d, body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("stream %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	m := srv.Metrics()
	if m.Streams.Completed != n || m.Streams.Started != n {
		t.Fatalf("stream counters: %+v", m.Streams)
	}
	if m.Streams.FramesIngested == 0 || m.Streams.BytesIngested == 0 {
		t.Fatalf("ingest totals not accounted: %+v", m.Streams)
	}
}

// TestStreamMismatchVerdict: streaming a log recorded at one seed against
// parameters naming another seed is a verdict (200, log_match=false), not a
// transport error — the client learns its recording does not reproduce.
func TestStreamMismatchVerdict(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	logBytes := recordFixture(t, 9)
	resp, body := postStream(t, ts.URL, "app=fft&seed=10&threads=4", logBytes, 64)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var sr StreamResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Verified || sr.LogMatch {
		t.Fatalf("verdict: verified=%v log_match=%v, want verified mismatch", sr.Verified, sr.LogMatch)
	}
}

// TestStreamCancelMidChunk: a client vanishing mid-stream is classified
// canceled, the session releases its slot, and no goroutines leak.
func TestStreamCancelMidChunk(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := New(Config{Workers: 1, QueueDepth: 4, MaxStreams: 1})
	ts := httptest.NewServer(srv)

	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/stream?app=fft&seed=1", pr)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Deliver a valid header plus a partial entry, then hang up mid-chunk.
	var l record.Log
	l.Append(record.Entry{Clock: 1, Thread: 0, Instr: 10})
	l.Append(record.Entry{Clock: 2, Thread: 1, Instr: 20})
	var buf bytes.Buffer
	if err := l.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(buf.Bytes()[:record.HeaderBytes+record.EntryBytes+3]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream to start", func() bool { return srv.Metrics().Streams.Started == 1 })
	cancel()
	// Abort the body with an error (not a clean close, which would send a
	// valid end-of-chunked-body terminator): the transport stops mid-stream
	// and the server sees its client vanish.
	pw.CloseWithError(io.ErrClosedPipe)
	if err := <-errc; err == nil {
		t.Fatalf("cancelled stream unexpectedly succeeded")
	}
	waitFor(t, "stream to be classified canceled", func() bool {
		return srv.Metrics().Streams.Canceled == 1
	})
	// The slot must be free again: a fresh, well-formed stream succeeds.
	resp, body := postStream(t, ts.URL, "app=fft&seed=3&threads=4&verify=0", recordFixture(t, 3), 4096)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel stream: status %d, body %s", resp.StatusCode, body)
	}

	shutdownOrFail(t, srv)
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	})
}

// TestStreamIdleTimeout: a stream that stops delivering bytes is evicted
// with 408 / code idle_timeout once StreamIdleTimeout elapses.
func TestStreamIdleTimeout(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4, StreamIdleTimeout: 150 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream?app=fft&seed=1", pr)
	done := make(chan struct{})
	var status int
	var body []byte
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("idle stream request: %v", err)
			return
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		status = resp.StatusCode
	}()
	// A few bytes of header, then silence.
	if _, err := pw.Write([]byte("CORD")); err != nil {
		t.Fatal(err)
	}
	<-done
	pw.Close()
	if status != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408 (body %s)", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("408 body is not structured JSON: %v (%s)", err, body)
	}
	if eb.Code != codeIdleTimeout || eb.Schema != SchemaVersion {
		t.Fatalf("408 body: %+v, want code %q", eb, codeIdleTimeout)
	}
	if m := srv.Metrics(); m.Streams.IdleTimeout != 1 {
		t.Fatalf("idle_timeout counter = %d, want 1", m.Streams.IdleTimeout)
	}
}

// TestStreamQuotaExceeded: byte and frame quotas both reject with 413 /
// code quota_exceeded.
func TestStreamQuotaExceeded(t *testing.T) {
	logBytes := recordFixture(t, 3)

	t.Run("bytes", func(t *testing.T) {
		srv := New(Config{Workers: 1, QueueDepth: 4, MaxStreamBytes: 64})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		defer shutdownOrFail(t, srv)
		resp, body := postStream(t, ts.URL, "app=fft&seed=3&threads=4", logBytes, 16)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413 (body %s)", resp.StatusCode, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Code != codeQuotaExceeded {
			t.Fatalf("413 body: %s (err %v), want code %q", body, err, codeQuotaExceeded)
		}
		if m := srv.Metrics(); m.Streams.QuotaExceeded != 1 {
			t.Fatalf("quota counter: %+v", m.Streams)
		}
	})
	t.Run("frames", func(t *testing.T) {
		srv := New(Config{Workers: 1, QueueDepth: 4, MaxStreamFrames: 2})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		defer shutdownOrFail(t, srv)
		resp, body := postStream(t, ts.URL, "app=fft&seed=3&threads=4", logBytes, 4096)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413 (body %s)", resp.StatusCode, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Code != codeQuotaExceeded {
			t.Fatalf("413 body: %s (err %v), want code %q", body, err, codeQuotaExceeded)
		}
	})
}

// TestStreamLimitRejects: with every stream slot occupied, a new stream gets
// 429 + Retry-After / code stream_limit; a slot freeing readmits.
func TestStreamLimitRejects(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4, MaxStreams: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	logBytes := recordFixture(t, 3)
	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream?app=fft&seed=3&threads=4&verify=0", pr)
	done := make(chan int, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	if _, err := pw.Write(logBytes[:20]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first stream to hold the slot", func() bool { return srv.Metrics().Streams.Started == 1 })

	resp, body := postStream(t, ts.URL, "app=fft&seed=3&threads=4&verify=0", logBytes, 4096)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second stream: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 missing Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != codeStreamLimit {
		t.Fatalf("429 body: %s (err %v), want code %q", body, err, codeStreamLimit)
	}

	// Finish the first stream; its slot frees and a new stream succeeds.
	if _, err := pw.Write(logBytes[20:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if st := <-done; st != http.StatusOK {
		t.Fatalf("first stream finished with status %d", st)
	}
	resp2, body2 := postStream(t, ts.URL, "app=fft&seed=3&threads=4&verify=0", logBytes, 4096)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release stream: status %d, body %s", resp2.StatusCode, body2)
	}
	if m := srv.Metrics(); m.Streams.RejectedLimit != 1 || m.Streams.Completed != 2 {
		t.Fatalf("counters: %+v", m.Streams)
	}
}

// TestStreamErrorTaxonomy: every malformed-stream failure mode answers with
// a structured JSON error body whose code distinguishes structural damage
// from truncation from order violations — table-driven, per the taxonomy in
// PROTOCOL.md.
func TestStreamErrorTaxonomy(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	wire := func(entries ...record.Entry) []byte {
		var l record.Log
		for _, e := range entries {
			l.Append(e)
		}
		var buf bytes.Buffer
		if err := l.EncodeTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := wire(
		record.Entry{Clock: 5, Thread: 0, Instr: 9},
		record.Entry{Clock: 9, Thread: 1, Instr: 3},
	)
	regressed := wire(
		record.Entry{Clock: 30000, Thread: 0, Instr: 1},
		record.Entry{Clock: 100, Thread: 0, Instr: 1}, // delta 36636 > window
	)
	badThread := wire(record.Entry{Clock: 1, Thread: 63, Instr: 1})
	trailing := append(append([]byte{}, valid...), 0x00)

	cases := []struct {
		name       string
		query      string
		body       []byte
		wantStatus int
		wantCode   string
	}{
		{"bad magic", "app=fft", []byte("WAT?xxxxxxxxxxxxyyyyyyyy"), http.StatusBadRequest, codeBadFormat},
		{"truncated header", "app=fft", []byte("CORD"), http.StatusBadRequest, codeTruncated},
		{"truncated entries", "app=fft", valid[:len(valid)-5], http.StatusBadRequest, codeTruncated},
		{"trailing bytes", "app=fft", trailing, http.StatusBadRequest, codeBadFormat},
		{"clock regression", "app=fft&threads=4", regressed, http.StatusUnprocessableEntity, codeOrderViolation},
		{"thread out of range", "app=fft&threads=4", badThread, http.StatusUnprocessableEntity, codeOrderViolation},
		{"unknown app", "app=nope", valid, http.StatusBadRequest, codeBadRequest},
		{"bad verify flag", "app=fft&verify=maybe", valid, http.StatusBadRequest, codeBadRequest},
		{"bad seed", "app=fft&seed=x", valid, http.StatusBadRequest, codeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postStream(t, ts.URL, tc.query, tc.body, 5)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body is not structured JSON: %v (%s)", err, body)
			}
			if eb.Schema != SchemaVersion || eb.Code != tc.wantCode || eb.Error == "" {
				t.Fatalf("error body %+v, want schema %d code %q", eb, SchemaVersion, tc.wantCode)
			}
		})
	}
}

// TestStreamDrainingRejects: streams respect the drain state like every
// other session type, and Shutdown waits for in-flight streams.
func TestStreamDrainingRejects(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	logBytes := recordFixture(t, 3)
	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream?app=fft&seed=3&threads=4&verify=0", pr)
	done := make(chan int, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	if _, err := pw.Write(logBytes[:20]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream to start", func() bool { return srv.Metrics().Streams.Started == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	waitFor(t, "draining to take effect", func() bool {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})

	resp, body := postStream(t, ts.URL, "app=fft&seed=3&threads=4", logBytes, 4096)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream during drain: status %d (body %s)", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != codeDraining {
		t.Fatalf("drain body: %s, want code %q", body, codeDraining)
	}

	// The in-flight stream still completes: accepted work is never dropped.
	if _, err := pw.Write(logBytes[20:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if st := <-done; st != http.StatusOK {
		t.Fatalf("in-flight stream finished with status %d during drain", st)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if m := srv.Metrics(); m.Streams.Completed != 1 || m.Streams.RejectedDraining != 1 {
		t.Fatalf("counters: %+v", m.Streams)
	}
}

// TestHashLogMatchesIngest: the streaming FNV accumulation and the one-shot
// hashLog agree on every prefix length, so LogMatch cannot drift between
// the two implementations.
func TestHashLogMatchesIngest(t *testing.T) {
	var l record.Log
	for i := 0; i < 100; i++ {
		l.Append(record.Entry{Clock: clock.Scalar(i * 5), Thread: uint16(i % 4), Instr: uint32(i)})
		g := newStreamIngest(4, 1<<20)
		for _, e := range l.Entries() {
			if err := g.ingest(e); err != nil {
				t.Fatal(err)
			}
		}
		if g.hash != hashLog(&l) {
			t.Fatalf("prefix %d: ingest hash %016x != hashLog %016x", i+1, g.hash, hashLog(&l))
		}
	}
}
