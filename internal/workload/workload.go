// Package workload provides the twelve synthetic parallel applications the
// experiments run — one per Splash-2 program in the paper's Table 1. Each
// mimics its namesake's sharing structure and synchronization idiom (the
// properties detection rates depend on) at a scale the simulator sweeps
// quickly:
//
//	barnes     tree building under fine-grain node locks, moderately
//	           separated conflicts (the app that keeps improving past D=16)
//	cholesky   task queue with very frequent tiny critical sections (the
//	           worst-case address/timestamp-bus contention of Fig. 11)
//	fft        barrier-phased all-to-all transpose
//	fmm        mostly-redundant per-cell locking (injections rarely manifest)
//	lu         pivot-block producer/consumer over barriers
//	ocean      red-black grid sweeps, neighbor-edge sharing over barriers
//	radiosity  work-stealing task deques plus per-patch locks
//	radix      private histograms, prefix-sum, permute over barriers
//	raytrace   tile queue, read-only scene, disjoint framebuffer writes
//	volrend    tile queue plus a lock-protected shared histogram
//	water-n2   O(n²) cross-thread accumulator updates under per-molecule
//	           locks with constant lock churn (scalar clocks miss everything)
//	water-sp   the spatial variant: neighbor-only updates, shorter distances
//
// Build constructs a fresh, self-contained sim.Program on every call — its
// own allocator, memory layout, and closure state — and programs behave
// deterministically for a given engine seed. A campaign can therefore build
// and run the same application many times concurrently (one instance per
// injection run); which host worker executes an instance is irrelevant,
// because the engine seed alone decides the interleaving each run observes.
package workload

import (
	"fmt"

	"cord/internal/memsys"
	"cord/internal/sim"
)

// App is one benchmark application.
type App struct {
	// Name matches the Splash-2 program (Table 1).
	Name string
	// Input is the Table 1 input-set label the synthetic scale mimics.
	Input string
	// Build constructs a runnable program. scale >= 1 grows the problem
	// size; tests use scale 1, the experiment harness a few steps more.
	Build func(scale, threads int) sim.Program
}

// All returns the twelve applications in Table 1 order.
func All() []App {
	return []App{
		{Name: "barnes", Input: "n2048", Build: Barnes},
		{Name: "cholesky", Input: "tk23.0", Build: Cholesky},
		{Name: "fft", Input: "m16", Build: FFT},
		{Name: "fmm", Input: "2048", Build: FMM},
		{Name: "lu", Input: "512x512", Build: LU},
		{Name: "ocean", Input: "130x130", Build: Ocean},
		{Name: "radiosity", Input: "-test", Build: Radiosity},
		{Name: "radix", Input: "256K keys", Build: Radix},
		{Name: "raytrace", Input: "teapot", Build: Raytrace},
		{Name: "volrend", Input: "head-sd2", Build: Volrend},
		{Name: "water-n2", Input: "216", Build: WaterN2},
		{Name: "water-sp", Input: "216", Build: WaterSP},
	}
}

// ByName returns the named application.
func ByName(name string) (App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workload: unknown application %q", name)
}

// lcg is a tiny deterministic generator for per-thread access patterns.
// Workload bodies must be deterministic given the values they read from
// simulated memory, so they never use math/rand.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2654435761 + 1} }

func (r *lcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 11
}

// n returns a value in [0, m).
func (r *lcg) n(m int) int {
	if m <= 0 {
		return 0
	}
	return int(r.next() % uint64(m))
}

// touch performs a read-modify-write of count consecutive words starting at
// region word i — the inner loop of most critical sections.
func touch(env *sim.Env, reg memsys.Region, i, count int) {
	for k := 0; k < count; k++ {
		w := reg.Word((i + k) % reg.Words)
		env.Write(w, env.Read(w)+1)
	}
}

// scan reads count consecutive words and folds them, modeling read-mostly
// traversals.
func scan(env *sim.Env, reg memsys.Region, i, count int) uint64 {
	var acc uint64
	for k := 0; k < count; k++ {
		acc += env.Read(reg.Word((i + k) % reg.Words))
	}
	return acc
}
