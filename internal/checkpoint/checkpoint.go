// Package checkpoint is the crash-safe journal behind resumable experiment
// campaigns. A campaign is thousands of independent, seed-deterministic runs
// (see internal/experiment); the journal records each completed run's outcome
// under its deterministic identity, so a process killed at any point — panic,
// OOM, kill -9 — can be restarted and skip straight to the first run it never
// finished. Because every run is a pure function of its key, replaying
// journaled outcomes through the unchanged aggregation code reproduces the
// campaign's artifacts byte for byte.
//
// # On-disk format
//
// A journal is a single append-only file:
//
//	header:  8-byte magic "CORDCKPT" | uint32 LE format version
//	record:  uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload |
//	         payload bytes
//
// The payload is one canonical JSON object {"key": ..., "data": ...}. Appends
// write the frame with a single Write call and fsync before returning, so an
// acknowledged record survives the process. A crash mid-append leaves a torn
// tail — a partial frame, or a frame whose checksum does not match — which
// Open detects and truncates away: everything before the tear loads normally,
// and the file is again a valid journal. No record is ever rewritten in
// place, so no crash can damage an already-acknowledged record.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// SchemaVersion is the journal format version. Open rejects files written by
// a different version instead of mis-parsing them; campaign keys embed it
// too, so outcome-shape changes invalidate stale entries. Version 2 added
// the FastTrack detector configuration (new Table1Row field and detection
// outcome keys), so version-1 journals must not satisfy version-2 runs.
const SchemaVersion = 2

// magic identifies a journal file.
const magic = "CORDCKPT"

// headerSize is the byte length of the file header (magic + version).
const headerSize = len(magic) + 4

// frameOverhead is the byte length of one record's framing (length + CRC).
const frameOverhead = 8

// MaxRecordBytes bounds one record's payload; a frame claiming more is
// treated as a torn tail rather than trusted with an allocation.
const MaxRecordBytes = 16 << 20

// ErrBadFormat reports a file that is not a journal this build can read (bad
// magic or unsupported version). A torn tail is NOT this error — torn tails
// are expected crash damage and are repaired silently.
var ErrBadFormat = errors.New("checkpoint: not a journal this build can read")

// record is the JSON payload of one journal frame.
type record struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// Journal is an open checkpoint journal: an in-memory index over the loaded
// records plus the append handle. All methods are safe for concurrent use —
// campaign workers append from many goroutines.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	entries map[string]json.RawMessage
	loaded  int // records recovered by Open (before any Append)
	hits    int // Lookup calls that found an entry
	// writeFault, when non-nil, is consulted before any bytes are written;
	// a non-nil return aborts the append with that error, file untouched.
	// It exists for fault-injection (chaos) testing.
	writeFault func() error
}

// Open loads (or creates) the journal at path. A torn tail — the partial
// frame a crash mid-append leaves behind — is truncated away; everything
// before it is indexed. The file stays open for appends until Close.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening journal: %w", err)
	}
	j := &Journal{f: f, path: path, entries: make(map[string]json.RawMessage)}
	if err := j.load(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load scans the file, indexes every intact record, and truncates any torn
// tail so the next append starts on a clean frame boundary.
func (j *Journal) load() error {
	info, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("checkpoint: stat journal: %w", err)
	}
	if info.Size() == 0 {
		// Fresh file: stamp the header now so a crash before the first
		// append still leaves a loadable journal.
		var hdr [12]byte
		copy(hdr[:], magic)
		binary.LittleEndian.PutUint32(hdr[len(magic):], SchemaVersion)
		if _, err := j.f.Write(hdr[:headerSize]); err != nil {
			return fmt.Errorf("checkpoint: writing journal header: %w", err)
		}
		return j.f.Sync()
	}

	buf, err := io.ReadAll(io.NewSectionReader(j.f, 0, info.Size()))
	if err != nil {
		return fmt.Errorf("checkpoint: reading journal: %w", err)
	}
	if len(buf) < headerSize || string(buf[:len(magic)]) != magic {
		return fmt.Errorf("%w: %s has no CORDCKPT header", ErrBadFormat, j.path)
	}
	if v := binary.LittleEndian.Uint32(buf[len(magic):headerSize]); v != SchemaVersion {
		return fmt.Errorf("%w: %s is format version %d, this build reads %d",
			ErrBadFormat, j.path, v, SchemaVersion)
	}

	off := headerSize
	good := off // offset just past the last intact record
	for {
		n, ok := parseFrame(buf[off:])
		if !ok {
			break // torn tail (or clean EOF): keep the good prefix
		}
		payload := buf[off+frameOverhead : off+n]
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // checksummed but unparsable: treat as a tear, stop here
		}
		j.entries[rec.Key] = rec.Data
		j.loaded++
		off += n
		good = off
	}
	if good < len(buf) {
		if err := j.f.Truncate(int64(good)); err != nil {
			return fmt.Errorf("checkpoint: truncating torn tail: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("checkpoint: syncing truncation: %w", err)
		}
	}
	if _, err := j.f.Seek(int64(good), io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: seeking to journal tail: %w", err)
	}
	return nil
}

// parseFrame checks whether buf begins with one intact record frame and
// returns its total byte length (framing included).
func parseFrame(buf []byte) (n int, ok bool) {
	if len(buf) < frameOverhead {
		return 0, false
	}
	length := binary.LittleEndian.Uint32(buf[0:4])
	sum := binary.LittleEndian.Uint32(buf[4:8])
	if length == 0 || length > MaxRecordBytes || uint64(len(buf)) < frameOverhead+uint64(length) {
		return 0, false
	}
	payload := buf[frameOverhead : frameOverhead+int(length)]
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, false
	}
	return frameOverhead + int(length), true
}

// Append journals one completed run: v is JSON-encoded and written under key
// in a single checksummed frame, fsynced before Append returns. A later
// Append with the same key supersedes the earlier record (last one wins on
// load). On error the journal is unchanged and remains appendable.
func (j *Journal) Append(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding record %q: %w", key, err)
	}
	payload, err := json.Marshal(record{Key: key, Data: data})
	if err != nil {
		return fmt.Errorf("checkpoint: encoding record %q: %w", key, err)
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("checkpoint: record %q is %d bytes, limit %d", key, len(payload), MaxRecordBytes)
	}
	frame := make([]byte, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameOverhead:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("checkpoint: journal %s is closed", j.path)
	}
	if j.writeFault != nil {
		if err := j.writeFault(); err != nil {
			return fmt.Errorf("checkpoint: appending %q: %w", key, err)
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: appending %q: %w", key, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing %q: %w", key, err)
	}
	j.entries[key] = data
	return nil
}

// Lookup reports whether key is journaled and, when it is and out is non-nil,
// decodes the stored outcome into out.
func (j *Journal) Lookup(key string, out any) (bool, error) {
	j.mu.Lock()
	data, ok := j.entries[key]
	if ok {
		j.hits++
	}
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return false, fmt.Errorf("checkpoint: decoding record %q: %w", key, err)
		}
	}
	return true, nil
}

// Has reports whether key is journaled, without decoding the record and
// without counting a resume hit. It exists for planning passes — the fleet
// dispatcher probes every run identity to decide which shards still need
// dispatch — where Lookup's hit counter would inflate the "runs skipped"
// number the campaign reports.
func (j *Journal) Has(key string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.entries[key]
	return ok
}

// Len is the number of distinct keys currently journaled.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Loaded is the number of records recovered from disk by Open — the resume
// head start, before any new Append.
func (j *Journal) Loaded() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.loaded
}

// Hits is the number of Lookup calls that found an entry — the runs a
// resumed campaign skipped.
func (j *Journal) Hits() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits
}

// Path is the journal's file path.
func (j *Journal) Path() string { return j.path }

// SetWriteFault installs (or, with nil, removes) a fault hook consulted
// before every append's first byte: a non-nil return aborts that append with
// the file untouched. Chaos testing uses this to prove a campaign survives
// journal-write failures.
func (j *Journal) SetWriteFault(f func() error) {
	j.mu.Lock()
	j.writeFault = f
	j.mu.Unlock()
}

// Sync flushes the journal file to stable storage. Appends already sync
// individually; Sync exists for belt-and-braces shutdown paths.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. The Journal remains readable (Lookup
// keeps answering from the index) but further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	if err != nil {
		return fmt.Errorf("checkpoint: closing journal: %w", err)
	}
	return nil
}
