package workload

import (
	"cord/internal/memsys"
	"cord/internal/sim"
)

// Raytrace mimes the ray tracer: a lock-protected tile counter hands out
// work, the scene is read-only, and each tile's framebuffer words are
// disjoint. Removing the counter lock makes two threads render the same
// tile — write-write races on the framebuffer plus the counter itself.
func Raytrace(scale, threads int) sim.Program {
	if scale < 1 {
		scale = 1
	}
	al := memsys.NewAllocator()
	tiles := 60 * scale
	tileWords := 8
	scene := al.Alloc(4096) // 16 KB read-only scene: exceeds the 8 KB L1
	frame := al.Alloc(tiles * tileWords)
	qlock := al.AllocPadded(1).Word(0)
	next := al.AllocPadded(1).Word(0)
	done := al.AllocPadded(threads)
	stats := al.AllocPadded(1).Word(0)

	return sim.Program{
		Name:    "raytrace",
		Threads: threads,
		Init: func(mem *memsys.Memory) {
			for i := 0; i < scene.Words; i++ {
				mem.Store(scene.Word(i), uint64(i)*2654435761)
			}
		},
		Body: func(t int, env *sim.Env) {
			rng := newLCG(uint64(t)*41 + 1)
			for {
				env.Lock(qlock)
				j := env.Read(next)
				env.Write(next, j+1)
				env.Unlock(qlock)
				if int(j) >= tiles {
					break
				}
				// Trace the tile: read scene, write the tile's pixels.
				var acc uint64
				for k := 0; k < 24; k++ {
					acc += env.Read(scene.Word(rng.n(scene.Words)))
				}
				for w := 0; w < tileWords; w++ {
					env.Write(frame.Word(int(j)*tileWords+w), acc+uint64(w))
				}
				env.Compute(20)
			}
			// Completion: every thread publishes, waits for all peers, and
			// inspects a strided slice of the framebuffer. The inspected
			// tiles were written far back in the execution, and the scene
			// churn since has pushed their timestamps out of the writer's
			// L1 (but not its L2) — removing one of the waits creates the
			// long-distance races behind the §4.3 buffering-limit effect.
			env.FlagSet(done.Word(t), 1)
			for q := 0; q < threads; q++ {
				if q != t {
					env.FlagWaitAtLeast(done.Word(q), 1)
				}
			}
			var sum uint64
			for w := t; w < frame.Words; w += 2 * threads {
				sum += env.Read(frame.Word(w))
			}
			if t == 0 {
				env.Write(stats, sum)
			}
		},
	}
}

// Volrend mimes the volume renderer: a tile queue like raytrace, plus a
// small shared brightness histogram updated under its own lock after each
// tile — the shared accumulator injections race on.
func Volrend(scale, threads int) sim.Program {
	if scale < 1 {
		scale = 1
	}
	al := memsys.NewAllocator()
	tiles := 48 * scale
	volume := al.Alloc(6144) // 24 KB read-only volume
	image := al.Alloc(tiles * 4)
	hist := al.Alloc(8)
	qlock := al.AllocPadded(1).Word(0)
	hlock := al.AllocPadded(1).Word(0)
	next := al.AllocPadded(1).Word(0)
	done := al.AllocPadded(threads)
	stats := al.AllocPadded(1).Word(0)

	return sim.Program{
		Name:    "volrend",
		Threads: threads,
		Init: func(mem *memsys.Memory) {
			for i := 0; i < volume.Words; i++ {
				mem.Store(volume.Word(i), uint64(i%97))
			}
		},
		Body: func(t int, env *sim.Env) {
			rng := newLCG(uint64(t)*53 + 9)
			for {
				env.Lock(qlock)
				j := env.Read(next)
				env.Write(next, j+1)
				env.Unlock(qlock)
				if int(j) >= tiles {
					break
				}
				var acc uint64
				for k := 0; k < 20; k++ {
					acc += env.Read(volume.Word(rng.n(volume.Words)))
				}
				for w := 0; w < 4; w++ {
					env.Write(image.Word(int(j)*4+w), acc>>uint(w))
				}
				// Shared histogram update.
				env.Lock(hlock)
				touch(env, hist, int(acc)%8, 2)
				env.Unlock(hlock)
				env.Compute(14)
			}
			// Completion and final image inspection (same long-distance
			// race structure as raytrace: all threads wait on all peers).
			env.FlagSet(done.Word(t), 1)
			for q := 0; q < threads; q++ {
				if q != t {
					env.FlagWaitAtLeast(done.Word(q), 1)
				}
			}
			var sum uint64
			for w := t; w < image.Words; w += threads {
				sum += env.Read(image.Word(w))
			}
			if t == 0 {
				env.Write(stats, sum)
			}
		},
	}
}

// WaterN2 mimes the O(n²) water code: every thread walks its strip of
// molecule pairs, updating both molecules' force accumulators under
// per-molecule locks, with a global-energy reduction each iteration. All
// threads churn through the same locks at the same rate, so by the time a
// second thread conflicts on an accumulator, the clocks have advanced far
// past any usable D window — the application where scalar CORD finds
// nothing (Figs. 12 and 16) while vector clocks still do.
func WaterN2(scale, threads int) sim.Program {
	if scale < 1 {
		scale = 1
	}
	al := memsys.NewAllocator()
	mols := 128
	// One cache line per molecule record, as in the real code's padded
	// molecule structs: accumulator ping-pong stays per-molecule instead
	// of false-sharing four molecules per line.
	acc := al.Alloc(mols * memsys.WordsPerLine)
	locks := al.AllocPadded(mols)
	glock := al.AllocPadded(1).Word(0)
	global := al.Alloc(4)
	bar := sim.NewBarrier(al, threads)
	iters := 1 * scale

	// Pre-compute each thread's pair list; threads traverse their lists
	// from different starting offsets, so two threads touch the same
	// molecule at widely different times — hundreds of lock operations
	// apart. That distance is what makes every injected race invisible to
	// scalar clocks at any practical D (Figs. 12 and 16) while the
	// cache-resident vector histories still catch it.
	pairs := make([][][2]int, threads)
	for i := 0; i < mols; i++ {
		for j := i + 1; j < mols; j++ {
			t := (i + j) % threads
			pairs[t] = append(pairs[t], [2]int{i, j})
		}
	}
	return sim.Program{
		Name:    "water-n2",
		Threads: threads,
		Body: func(t int, env *sim.Env) {
			mine := pairs[t]
			start := t * len(mine) / threads
			for it := 0; it < iters; it++ {
				for k := range mine {
					p := mine[(start+k)%len(mine)]
					env.Lock(locks.Word(p[0]))
					touch(env, acc, p[0]*memsys.WordsPerLine, 2)
					env.Unlock(locks.Word(p[0]))
					env.Lock(locks.Word(p[1]))
					touch(env, acc, p[1]*memsys.WordsPerLine, 2)
					env.Unlock(locks.Word(p[1]))
					env.Compute(220) // the O(n^2) force math dominates each pair
				}
				// Global potential-energy reduction.
				env.Lock(glock)
				touch(env, global, 0, 3)
				env.Unlock(glock)
				bar.Wait(env)
			}
		},
	}
}

// WaterSP mimes the spatial water code: molecules live in cells and
// threads update only their own cells plus the boundary cells they share
// with neighbouring threads, so conflicting updates happen within a few
// lock operations of each other — short-distance races scalar clocks can
// still catch.
func WaterSP(scale, threads int) sim.Program {
	if scale < 1 {
		scale = 1
	}
	al := memsys.NewAllocator()
	cellsPer := 8
	cells := al.Alloc(threads * cellsPer * 4)
	locks := al.AllocPadded(threads * cellsPer)
	bar := sim.NewBarrier(al, threads)
	iters := 3 * scale

	return sim.Program{
		Name:    "water-sp",
		Threads: threads,
		Body: func(t int, env *sim.Env) {
			rng := newLCG(uint64(t)*61 + 29)
			for it := 0; it < iters; it++ {
				for i := 0; i < cellsPer; i++ {
					own := t*cellsPer + i
					env.Lock(locks.Word(own))
					touch(env, cells, own*4, 3)
					env.Unlock(locks.Word(own))
					env.Compute(8)
					// Boundary interaction with the next thread's first
					// cell, immediately after updating our own.
					if i == cellsPer-1 && t < threads-1 {
						nb := (t + 1) * cellsPer
						env.Lock(locks.Word(nb))
						touch(env, cells, nb*4, 2)
						env.Unlock(locks.Word(nb))
					}
					if i == 0 && t > 0 && rng.n(2) == 0 {
						nb := (t-1)*cellsPer + cellsPer - 1
						env.Lock(locks.Word(nb))
						touch(env, cells, nb*4, 2)
						env.Unlock(locks.Word(nb))
					}
				}
				bar.Wait(env)
			}
		},
	}
}
