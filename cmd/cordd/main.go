// Command cordd is the CORD race-detection service: a long-running HTTP
// server that executes detection and replay sessions on a bounded worker
// pool (see internal/server for the API).
//
// Usage:
//
//	cordd -addr :8080 -workers 4 -queue 16 -timeout 60s -streams 8
//
// Endpoints: POST /v1/detect, POST /v1/replay, POST /v1/stream (streaming
// order-record ingestion with optional online race detection and duty
// cycling, PROTOCOL.md §4; -stream-duty sets the default duty percentage,
// -stream-workers the per-session ingest fan-out), POST /v1/campaign/plan
// and POST /v1/campaign/shard (distributed-campaign worker protocol,
// PROTOCOL.md §6 — a cordbench coordinator with -workers fans run shards
// across a fleet of these processes), POST /v1/fleet/register and
// GET /v1/fleet/workers (fleet membership, PROTOCOL.md §7), GET /healthz,
// GET /metrics. SIGINT/SIGTERM drain in-flight sessions — streams included —
// before the process exits.
//
// Fleet roles (PROTOCOL.md §7): `cordd -registry` marks an instance as the
// fleet registry other workers announce themselves to; `cordd -register
// http://reg:8080` joins that fleet, heartbeating its advertised URL
// (-advertise, derived from -addr when omitted) every -register-ttl/3 so a
// crashed worker expires from discovery within one TTL. The CORD_CHAOS
// worker-kill knob arms deterministic mid-campaign worker deaths for the
// fleet-chaos smoke test.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cord/internal/chaos"
	"cord/internal/server"
)

// validateFlags rejects out-of-domain service parameters before binding the
// socket, mirroring the other cord binaries: bad invocations exit 2 with
// usage instead of failing at the first request.
func validateFlags(workers, queue int, timeout, drain time.Duration, maxBody int64,
	streams int, streamIdle time.Duration, streamMaxBytes int64, streamMaxFrames uint64,
	streamDuty, streamWorkers int) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be at least 1 (or 0 for NumCPU)")
	}
	if queue < 1 {
		return fmt.Errorf("-queue must be at least 1")
	}
	if timeout <= 0 {
		return fmt.Errorf("-timeout must be positive")
	}
	if drain <= 0 {
		return fmt.Errorf("-drain must be positive")
	}
	if maxBody < 1 {
		return fmt.Errorf("-max-body must be at least 1 byte")
	}
	if streams < 1 {
		return fmt.Errorf("-streams must be at least 1")
	}
	if streamIdle <= 0 {
		return fmt.Errorf("-stream-idle must be positive")
	}
	if streamMaxBytes < 1 {
		return fmt.Errorf("-stream-max-bytes must be at least 1 byte")
	}
	if streamMaxFrames < 1 {
		return fmt.Errorf("-stream-max-frames must be at least 1")
	}
	// The server treats 0 as "use the default", so the flag's domain starts
	// at 1; per-session duty=0 remains available via the query parameter.
	if streamDuty < 1 || streamDuty > 100 {
		return fmt.Errorf("-stream-duty must be in [1, 100]")
	}
	if streamWorkers < 0 {
		return fmt.Errorf("-stream-workers must be at least 1 (or 0 for the default)")
	}
	// The ingest fan-out partitions work by simulated thread, so workers
	// beyond the server's thread ceiling can never be scheduled — reject the
	// misconfiguration up front instead of silently idling the extras.
	if streamWorkers > server.MaxThreads {
		return fmt.Errorf("-stream-workers must be at most %d (the session thread ceiling)", server.MaxThreads)
	}
	return nil
}

// validateFleetFlags checks the §7 membership flags: -register and
// -advertise must be absolute http(s) URLs and the heartbeat TTL must fit
// the registry's accepted range.
func validateFleetFlags(register, advertise string, ttl time.Duration) error {
	for flagName, u := range map[string]string{"-register": register, "-advertise": advertise} {
		if u == "" {
			continue
		}
		p, err := url.Parse(u)
		if err != nil || (p.Scheme != "http" && p.Scheme != "https") || p.Host == "" {
			return fmt.Errorf("%s must be an absolute http(s) URL, got %q", flagName, u)
		}
	}
	if advertise != "" && register == "" {
		return fmt.Errorf("-advertise is only meaningful with -register")
	}
	if register != "" && (ttl < time.Second || ttl > 300*time.Second) {
		return fmt.Errorf("-register-ttl must be in [1s, 300s], got %v", ttl)
	}
	return nil
}

// advertiseURL derives the URL to announce when -advertise is not given:
// the listen address with a loopback host filled in for a bare ":port".
// Cross-host fleets must pass -advertise explicitly — a bind address is not
// necessarily reachable from the coordinator.
func advertiseURL(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

// heartbeat announces the worker to the registry now and then every ttl/3
// until ctx is canceled, so two consecutive lost heartbeats still leave the
// registration alive. Failures are logged and retried on the next tick —
// a registry restart heals itself without worker intervention.
func heartbeat(ctx context.Context, client *http.Client, registry, advertise string, workers int, ttl time.Duration) {
	body, err := json.Marshal(server.FleetRegisterRequest{
		URL:        advertise,
		Workers:    workers,
		TTLSeconds: int(ttl / time.Second),
	})
	if err != nil { // a struct of strings and ints always marshals
		log.Printf("cordd: encoding registration: %v", err)
		return
	}
	beat := func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			registry+"/v1/fleet/register", bytes.NewReader(body))
		if err != nil {
			log.Printf("cordd: registering with %s: %v", registry, err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() == nil {
				log.Printf("cordd: heartbeat to %s failed: %v", registry, err)
			}
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Printf("cordd: heartbeat to %s answered %d", registry, resp.StatusCode)
		}
	}
	beat()
	tick := time.NewTicker(ttl / 3)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			beat()
		}
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent sessions (0 = NumCPU)")
		queue   = flag.Int("queue", 16, "queued sessions beyond the running ones")
		timeout = flag.Duration("timeout", 60*time.Second, "per-session execution timeout")
		drain   = flag.Duration("drain", 30*time.Second, "shutdown drain budget")
		maxBody = flag.Int64("max-body", 8<<20, "request body size limit in bytes")

		streams         = flag.Int("streams", 8, "concurrent /v1/stream sessions")
		streamIdle      = flag.Duration("stream-idle", 30*time.Second, "stream idle timeout (eviction with 408)")
		streamMaxBytes  = flag.Int64("stream-max-bytes", 256<<20, "per-stream byte quota")
		streamMaxFrames = flag.Uint64("stream-max-frames", 16<<20, "per-stream frame quota")
		streamDuty      = flag.Int("stream-duty", 100, "default duty %% for detect=online sessions (1-100)")
		streamWorkers   = flag.Int("stream-workers", 0, "per-session online ingest workers (0 = min(4, NumCPU))")

		registry    = flag.Bool("registry", false, "serve as the fleet registry workers announce to (PROTOCOL.md §7)")
		register    = flag.String("register", "", "fleet registry base URL to announce this worker to (e.g. http://reg:8080)")
		advertise   = flag.String("advertise", "", "URL to announce to the registry (default: derived from -addr)")
		registerTTL = flag.Duration("register-ttl", 15*time.Second, "registration TTL; heartbeats fire every TTL/3")
	)
	flag.Parse()

	if err := validateFlags(*workers, *queue, *timeout, *drain, *maxBody,
		*streams, *streamIdle, *streamMaxBytes, *streamMaxFrames, *streamDuty, *streamWorkers); err != nil {
		fmt.Fprintf(os.Stderr, "cordd: %v\n", err)
		flag.Usage()
		return 2
	}
	if err := validateFleetFlags(*register, *advertise, *registerTTL); err != nil {
		fmt.Fprintf(os.Stderr, "cordd: %v\n", err)
		flag.Usage()
		return 2
	}
	chaosSpec, err := chaos.FromEnv()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordd: %v\n", err)
		return 2
	}

	srv := server.New(server.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		SessionTimeout:    *timeout,
		MaxBodyBytes:      *maxBody,
		MaxStreams:        *streams,
		StreamIdleTimeout: *streamIdle,
		MaxStreamBytes:    *streamMaxBytes,
		MaxStreamFrames:   *streamMaxFrames,
		StreamDuty:        *streamDuty,
		StreamWorkers:     *streamWorkers,
		Chaos:             chaosSpec,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if chaosSpec.Active() {
		log.Printf("cordd: %s", chaosSpec)
	}
	if *registry {
		log.Printf("cordd: serving as fleet registry (POST /v1/fleet/register, GET /v1/fleet/workers)")
	}
	if *register != "" {
		adv := *advertise
		if adv == "" {
			adv = advertiseURL(*addr)
		}
		log.Printf("cordd: announcing %s to registry %s (ttl %v)", adv, *register, *registerTTL)
		go heartbeat(ctx, &http.Client{Timeout: 5 * time.Second},
			strings.TrimRight(*register, "/"), adv, srv.Metrics().Workers, *registerTTL)
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("cordd: listening on %s (workers=%d queue=%d timeout=%v)",
			*addr, srv.Metrics().Workers, *queue, *timeout)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure here (Shutdown is not yet
		// in play): bad address, occupied port, ...
		fmt.Fprintf(os.Stderr, "cordd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	log.Printf("cordd: signal received, draining (budget %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections and wait for in-flight handlers; handlers
	// in turn wait for their sessions, so this is the outer half of the
	// drain. Then retire the worker pool.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "cordd: http shutdown: %v\n", err)
		return 1
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "cordd: %v\n", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "cordd: %v\n", err)
		return 1
	}
	m := srv.Metrics()
	log.Printf("cordd: drained cleanly (%d sessions completed, %d rejected)",
		m.Sessions.Completed, m.Sessions.RejectedQueueFull+m.Sessions.RejectedDraining)
	return 0
}
