package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"cord/internal/clock"
	"cord/internal/record"
	"cord/internal/replay"
	"cord/internal/workload"
)

// racyFixture records a real racy fft run (injection removes one sync
// instance) and returns the encoded log plus the per-thread injection
// identity the recording reported — what a detect=online client passes back
// as inject_thread/inject_nth so the replay removes the same instance.
func racyFixture(t *testing.T, seed, inject uint64) (logBytes []byte, injThread int, injNth uint64) {
	t.Helper()
	app, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	out, err := replay.RecordAndReplay(app.Build(1, 4), replay.Options{Seed: seed, Jitter: 7, InjectSkip: inject})
	if err != nil || !out.Match {
		t.Fatalf("recording racy fixture: err=%v match=%v (%s)", err, out.Match, out.Mismatch)
	}
	if out.Recorded.InjectedThread < 0 {
		t.Fatal("injection did not fire; fixture is not racy")
	}
	var buf bytes.Buffer
	if err := out.Log.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), out.Recorded.InjectedThread, out.Recorded.InjectedThreadNth
}

// splitFrames separates a detect=online response body into its compact
// progress/error frame lines and the indented summary document (which starts
// at the first line that is exactly "{").
func splitFrames(t *testing.T, body []byte) (frames []progressFrame, summary []byte) {
	t.Helper()
	for len(body) > 0 {
		nl := bytes.IndexByte(body, '\n')
		if nl < 0 {
			t.Fatalf("unterminated line in body: %q", body)
		}
		line := body[:nl]
		if string(line) == "{" {
			return frames, body
		}
		if bytes.HasPrefix(line, []byte(`{"frame":"progress"`)) {
			var f progressFrame
			if err := json.Unmarshal(line, &f); err != nil {
				t.Fatalf("bad progress frame %q: %v", line, err)
			}
			frames = append(frames, f)
		} else if bytes.HasPrefix(line, []byte(`{"frame":"error"`)) {
			t.Fatalf("stream failed mid-flight: %s", line)
		} else {
			t.Fatalf("unexpected line before summary: %q", line)
		}
		body = body[nl+1:]
	}
	t.Fatal("no summary document in body")
	return nil, nil
}

// TestStreamOnlineByteIdentity is the tentpole acceptance criterion: at
// detect=online&duty=100 the end-of-stream summary's detect block stays
// byte-identical to the one-shot /v1/detect response, the online detector
// reproduces the recorded race list exactly, and repeated streams produce
// byte-identical summaries (progress frames are timing diagnostics and are
// excluded).
func TestStreamOnlineByteIdentity(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	logBytes, injTh, injNth := racyFixture(t, 1, 2)
	query := "app=fft&seed=1&threads=4&inject=2&detect=online&duty=100" +
		"&inject_thread=" + itoa(injTh) + "&inject_nth=" + itoa(int(injNth))
	resp, body := postStream(t, ts.URL, query, logBytes, 13)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d, body %s", resp.StatusCode, body)
	}
	frames, summary := splitFrames(t, body)
	var sr StreamResponse
	if err := json.Unmarshal(summary, &sr); err != nil {
		t.Fatalf("decoding summary: %v", err)
	}
	if sr.Online == nil {
		t.Fatal("detect=online summary missing the online block")
	}
	if !sr.Online.Completed || sr.Online.Divergence != "" {
		t.Fatalf("online replay did not complete: %+v", sr.Online)
	}
	if sr.Online.Duty != 100 || sr.Online.CoveragePct != 100 ||
		sr.Online.EpochsObserved != sr.Online.EpochsTotal || sr.Online.EpochsTotal == 0 {
		t.Fatalf("duty=100 coverage accounting wrong: %+v", sr.Online)
	}
	if !sr.Verified || !sr.LogMatch {
		t.Fatalf("verification verdict: verified=%v log_match=%v", sr.Verified, sr.LogMatch)
	}

	// The online race list must equal the authoritative re-execution's.
	if sr.Detect == nil || len(sr.Detect.Races) == 0 {
		t.Fatal("verified racy run reported no detect races")
	}
	if len(sr.Online.Races) != len(sr.Detect.Races) || sr.Online.RacesSoFar != len(sr.Detect.Races) {
		t.Fatalf("online found %d races (so_far %d), detect found %d",
			len(sr.Online.Races), sr.Online.RacesSoFar, len(sr.Detect.Races))
	}
	for i := range sr.Online.Races {
		if sr.Online.Races[i] != sr.Detect.Races[i] {
			t.Fatalf("race %d differs:\nonline %s\ndetect %s", i, sr.Online.Races[i], sr.Detect.Races[i])
		}
	}
	// Races shipped in progress frames are a prefix of the final list.
	var shipped []string
	for _, f := range frames {
		shipped = append(shipped, f.NewRaces...)
	}
	if len(shipped) > len(sr.Online.Races) {
		t.Fatalf("frames shipped %d races, summary has %d", len(shipped), len(sr.Online.Races))
	}
	for i := range shipped {
		if shipped[i] != sr.Online.Races[i] {
			t.Fatalf("frame race %d is not a prefix of the summary list", i)
		}
	}

	// Detect block byte identity with one-shot /v1/detect.
	dresp, dbody := postDetect(t, ts.URL, DetectRequest{App: "fft", Seed: 1, Threads: 4, Inject: 2})
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("one-shot detect status %d", dresp.StatusCode)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(summary, &raw); err != nil {
		t.Fatal(err)
	}
	detectBlock := append(deindent(raw["detect"]), '\n')
	if !bytes.Equal(detectBlock, dbody) {
		t.Fatalf("stream detect block differs from one-shot response\nstream: %s\noneshot: %s", detectBlock, dbody)
	}

	// Determinism: a second identical stream yields a byte-identical summary.
	resp2, body2 := postStream(t, ts.URL, query, logBytes, 31)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat stream status %d", resp2.StatusCode)
	}
	_, summary2 := splitFrames(t, body2)
	if !bytes.Equal(summary, summary2) {
		t.Fatalf("online summaries not byte-identical across identical streams\nfirst: %s\nsecond: %s", summary, summary2)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// TestStreamOnlineMidStreamRaces pins the point of the feature: with a racy
// recording dribbled in slowly, the client reads a progress frame announcing
// races strictly before it has finished uploading the log.
func TestStreamOnlineMidStreamRaces(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	logBytes, injTh, injNth := racyFixture(t, 1, 2)
	query := "app=fft&seed=1&threads=4&inject=2&detect=online&duty=100&verify=0" +
		"&inject_thread=" + itoa(injTh) + "&inject_nth=" + itoa(int(injNth))

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream?"+query, pr)
	if err != nil {
		t.Fatal(err)
	}

	raceSeen := make(chan struct{})   // closed when a frame reports races
	clientDone := make(chan []string) // the frame-shipped races, in order
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("stream request: %v", err)
			close(raceSeen)
			clientDone <- nil
			return
		}
		defer resp.Body.Close()
		var shipped []string
		signaled := false
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, `{"frame":"progress"`) {
				break // summary reached; drain and finish
			}
			var f progressFrame
			if err := json.Unmarshal([]byte(line), &f); err != nil {
				t.Errorf("bad frame %q: %v", line, err)
				break
			}
			shipped = append(shipped, f.NewRaces...)
			if f.RacesSoFar > 0 && !signaled {
				signaled = true
				close(raceSeen)
			}
		}
		for sc.Scan() {
		}
		if !signaled {
			close(raceSeen)
		}
		clientDone <- shipped
	}()

	// Dribble entries one at a time; each write is a chunk boundary the
	// server may emit a frame at. Hold back a tail so "mid-stream" is real.
	tail := 40 * record.EntryBytes
	head := logBytes[:len(logBytes)-tail]
	if _, err := pw.Write(head[:record.HeaderBytes]); err != nil {
		t.Fatal(err)
	}
	sawMidStream := false
	for off := record.HeaderBytes; off < len(head); off += record.EntryBytes {
		if _, err := pw.Write(head[off : off+record.EntryBytes]); err != nil {
			t.Fatal(err)
		}
		select {
		case <-raceSeen:
			sawMidStream = true
		case <-time.After(2 * time.Millisecond):
		}
		if sawMidStream {
			break
		}
	}
	if !sawMidStream {
		// Give the engine a moment to catch up, then force one more boundary.
		deadline := time.Now().Add(10 * time.Second)
		for off := 0; !sawMidStream && time.Now().Before(deadline); {
			_ = off
			if _, err := pw.Write(logBytes[len(logBytes)-tail : len(logBytes)-tail+record.EntryBytes]); err != nil {
				t.Fatal(err)
			}
			tail -= record.EntryBytes
			if tail == 0 {
				break
			}
			select {
			case <-raceSeen:
				sawMidStream = true
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
	if !sawMidStream {
		t.Fatal("no progress frame reported races before the upload finished")
	}
	if _, err := pw.Write(logBytes[len(logBytes)-tail:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	shipped := <-clientDone
	if len(shipped) == 0 {
		t.Fatal("client never received race strings in progress frames")
	}
}

// TestStreamOnlineDutyCoverage: duty=0 skips the replay entirely (pure
// ingest with epoch accounting), a mid duty observes a matching fraction of
// epochs, and the /metrics online counters add up.
func TestStreamOnlineDutyCoverage(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	logBytes, injTh, injNth := racyFixture(t, 1, 2)
	base := "app=fft&seed=1&threads=4&inject=2&detect=online&verify=0" +
		"&inject_thread=" + itoa(injTh) + "&inject_nth=" + itoa(int(injNth))

	get := func(query string) *OnlineSummary {
		t.Helper()
		resp, body := postStream(t, ts.URL, query, logBytes, 4096)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status %d, body %s", resp.StatusCode, body)
		}
		_, summary := splitFrames(t, body)
		var sr StreamResponse
		if err := json.Unmarshal(summary, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Online == nil {
			t.Fatal("missing online block")
		}
		return sr.Online
	}

	zero := get(base + "&duty=0")
	if !zero.Completed || zero.EpochsObserved != 0 || zero.RacesSoFar != 0 || zero.CoveragePct != 0 {
		t.Fatalf("duty=0 block: %+v", zero)
	}
	if zero.EpochsTotal == 0 {
		t.Fatal("duty=0 lost the epoch accounting")
	}

	full := get(base + "&duty=100")
	if full.EpochsTotal == 0 || full.EpochsObserved != full.EpochsTotal || full.RacesSoFar == 0 {
		t.Fatalf("duty=100 block: %+v", full)
	}

	half := get(base + "&duty=50")
	if half.EpochsTotal != full.EpochsTotal {
		t.Fatalf("epoch totals differ across duties: %d vs %d", half.EpochsTotal, full.EpochsTotal)
	}
	if half.CoveragePct < 25 || half.CoveragePct > 75 {
		t.Fatalf("duty=50 coverage %.1f%%, want roughly half", half.CoveragePct)
	}
	if half.RacesSoFar > full.RacesSoFar {
		t.Fatalf("half coverage found more races (%d) than full (%d)", half.RacesSoFar, full.RacesSoFar)
	}

	m := srv.Metrics()
	if m.Streams.OnlineSessions != 3 {
		t.Fatalf("online_sessions = %d, want 3", m.Streams.OnlineSessions)
	}
	wantTotal := zero.EpochsTotal + full.EpochsTotal + half.EpochsTotal
	if m.Streams.OnlineEpochsTotal != wantTotal {
		t.Fatalf("online_epochs_total = %d, want %d", m.Streams.OnlineEpochsTotal, wantTotal)
	}
	wantObs := full.EpochsObserved + half.EpochsObserved
	if m.Streams.OnlineEpochsObserved != wantObs {
		t.Fatalf("online_epochs_observed = %d, want %d", m.Streams.OnlineEpochsObserved, wantObs)
	}
	wantRaces := uint64(full.RacesSoFar + half.RacesSoFar)
	if m.Streams.OnlineRaces != wantRaces {
		t.Fatalf("online_races = %d, want %d", m.Streams.OnlineRaces, wantRaces)
	}
	if m.Streams.OnlineDivergences != 0 {
		t.Fatalf("online_divergences = %d, want 0", m.Streams.OnlineDivergences)
	}
}

// TestStreamOnlineParamTaxonomy: the new query parameters reject out-of-range
// and inconsistent values with 400 / bad_request (PROTOCOL.md §5).
func TestStreamOnlineParamTaxonomy(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	cases := map[string]string{
		"duty without online":   "app=fft&seed=1&threads=4&duty=50",
		"duty above range":      "app=fft&seed=1&threads=4&detect=online&duty=101",
		"duty below range":      "app=fft&seed=1&threads=4&detect=online&duty=-1",
		"duty unparseable":      "app=fft&seed=1&threads=4&detect=online&duty=half",
		"unknown detect mode":   "app=fft&seed=1&threads=4&detect=offline",
		"inject_thread offline": "app=fft&seed=1&threads=4&inject_thread=0",
		"inject_thread range":   "app=fft&seed=1&threads=4&detect=online&inject_thread=4",
		"inject_nth zero":       "app=fft&seed=1&threads=4&detect=online&inject_thread=1&inject_nth=0",
	}
	for name, query := range cases {
		resp, body := postStream(t, ts.URL, query, nil, 64)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, resp.StatusCode, body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Code != codeBadRequest {
			t.Errorf("%s: body %s (err %v), want code %q", name, body, err, codeBadRequest)
		}
	}
}

// TestStreamOnlineWrapFixture is the clock-wrap satellite through the online
// path: a synthetic log whose per-thread clocks cross the 16-bit boundary
// must produce identical shard summaries (the unwrap arithmetic) whether it
// is ingested offline, online serially (small chunks), or online through the
// parallel worker fold (one big chunk, batch >= the fan-out threshold). The
// synthetic log does not correspond to any real run, so the online replay
// reports divergence — a 200 verdict, never an error.
func TestStreamOnlineWrapFixture(t *testing.T) {
	const threads = 4
	l := &record.Log{}
	start := 1<<16 - 200
	for i := 0; i < 6000; i++ {
		th := i % threads
		l.Append(record.Entry{
			Clock:  clock.Scalar(uint16(start + (i/threads)*13 + th)),
			Thread: uint16(th),
			Instr:  uint32(1 + i%9),
		})
	}
	var buf bytes.Buffer
	if err := l.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	logBytes := buf.Bytes()

	srv := New(Config{Workers: 1, QueueDepth: 4, StreamWorkers: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	shards := func(query string, chunk int) ([]ShardSummary, string, *OnlineSummary) {
		t.Helper()
		resp, body := postStream(t, ts.URL, query, logBytes, chunk)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status %d, body %s", resp.StatusCode, body)
		}
		_, summary := splitFrames(t, body)
		var sr StreamResponse
		if err := json.Unmarshal(summary, &sr); err != nil {
			t.Fatal(err)
		}
		return sr.Shards, sr.LogHash, sr.Online
	}

	offline, offHash, _ := shards("app=fft&seed=1&threads=4&verify=0", 4096)
	onSerial, serialHash, sum1 := shards("app=fft&seed=1&threads=4&verify=0&detect=online&duty=100", 16)
	onPar, parHash, sum2 := shards("app=fft&seed=1&threads=4&verify=0&detect=online&duty=100", len(logBytes))

	if offHash != serialHash || offHash != parHash {
		t.Fatalf("log hashes differ: offline %s serial %s parallel %s", offHash, serialHash, parHash)
	}
	for _, on := range [][]ShardSummary{onSerial, onPar} {
		if len(on) != len(offline) {
			t.Fatalf("shard count differs: %d vs %d", len(on), len(offline))
		}
		for i := range on {
			if on[i] != offline[i] {
				t.Fatalf("shard %d differs across ingest paths:\noffline %+v\nonline  %+v", i, offline[i], on[i])
			}
		}
	}
	// The wrap really happened: unwrapped last times exceed 16 bits.
	wrapped := false
	for _, sh := range offline {
		if sh.LastTime >= 1<<16 {
			wrapped = true
		}
	}
	if !wrapped {
		t.Fatal("fixture never crossed the 16-bit boundary; the test proves nothing")
	}
	for _, sum := range []*OnlineSummary{sum1, sum2} {
		if sum == nil || sum.Completed || sum.Divergence == "" {
			t.Fatalf("synthetic log replay should report divergence, got %+v", sum)
		}
	}
	if srv.Metrics().Streams.OnlineDivergences != 2 {
		t.Fatalf("online_divergences = %d, want 2", srv.Metrics().Streams.OnlineDivergences)
	}
}

// TestStreamOnlineCancelMidStream: a client vanishing mid-online-stream
// cancels the replay engine and leaks no goroutines.
func TestStreamOnlineCancelMidStream(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	before := runtime.NumGoroutine()
	logBytes, injTh, injNth := racyFixture(t, 1, 2)
	query := "app=fft&seed=1&threads=4&inject=2&detect=online&duty=100&verify=0" +
		"&inject_thread=" + itoa(injTh) + "&inject_nth=" + itoa(int(injNth))

	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream?"+query, pr)
	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		close(done)
	}()
	if _, err := pw.Write(logBytes[:len(logBytes)/2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the engine start consuming
	pw.CloseWithError(io.ErrClosedPipe)
	<-done

	shutdownOrFail(t, srv)
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	})
}

// TestStreamRetryAfterP50: the stream-slot 429's Retry-After hint tracks the
// observed p50 stream latency instead of the historical hardcoded 1s.
func TestStreamRetryAfterP50(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer shutdownOrFail(t, srv)

	if got := srv.streamRetryAfter(); got != "1" {
		t.Fatalf("cold server Retry-After = %s, want 1", got)
	}
	for i := 0; i < 5; i++ {
		srv.m.observe("/v1/stream", 4200*time.Millisecond)
	}
	if got := srv.streamRetryAfter(); got != "5" {
		t.Fatalf("p50~5s Retry-After = %s, want 5 (bucket bound)", got)
	}
	for i := 0; i < 50; i++ {
		srv.m.observe("/v1/stream", 2*time.Minute)
	}
	if got := srv.streamRetryAfter(); got != "30" {
		t.Fatalf("overflow p50 Retry-After = %s, want clamp to 30", got)
	}
	srv2 := New(Config{Workers: 1})
	defer shutdownOrFail(t, srv2)
	for i := 0; i < 9; i++ {
		srv2.m.observe("/v1/stream", 3*time.Millisecond)
	}
	if got := srv2.streamRetryAfter(); got != "1" {
		t.Fatalf("fast-stream Retry-After = %s, want floor 1", got)
	}
}
