#!/bin/sh
# Sustained-throughput streaming measurement: build cordd, start it, drive
# concurrent /v1/stream uploads with cordload -stream, and merge the best
# stage's records/sec into bench/BENCH_perf.json (the `streaming` block —
# see EXPERIMENTS.md, "Sustained-throughput streaming"). A second sweep
# re-streams a recorded fixture with detect=online at each STREAM_DUTIES
# point and lands the `streaming-online` block, pricing mid-stream
# detection against the duty=0 ingest baseline.
#
# Knobs (environment): CORDD_PORT, STREAM_SWEEP, STREAM_N, STREAM_FRAMES,
# STREAM_CHUNK, STREAM_DUTIES, PERF_OUT. `make stream-perf` runs the
# defaults.
set -eu

PORT="${CORDD_PORT:-18081}"
ADDR="127.0.0.1:$PORT"
SWEEP="${STREAM_SWEEP:-1,2,4,8}"
N="${STREAM_N:-8}"
FRAMES="${STREAM_FRAMES:-200000}"
CHUNK="${STREAM_CHUNK:-65536}"
DUTIES="${STREAM_DUTIES:-0,50,100}"
PERF_OUT="${PERF_OUT:-bench/BENCH_perf.json}"
DIR="$(mktemp -d)"
PID=""

cleanup() {
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill -TERM "$PID" 2>/dev/null || true
		wait "$PID" 2>/dev/null || true
	fi
	rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
	echo "stream-perf: FAIL: $*" >&2
	if [ -f "$DIR/cordd.log" ]; then
		echo "--- cordd log ---" >&2
		cat "$DIR/cordd.log" >&2
	fi
	exit 1
}

echo "stream-perf: building cordd and cordload"
go build -o "$DIR/cordd" ./cmd/cordd
go build -o "$DIR/cordload" ./cmd/cordload

echo "stream-perf: starting cordd on $ADDR"
"$DIR/cordd" -addr "$ADDR" >"$DIR/cordd.log" 2>&1 &
PID=$!

i=0
until curl -sf "http://$ADDR/healthz" | grep -q '"status": "ok"'; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && fail "server did not become healthy"
	kill -0 "$PID" 2>/dev/null || fail "cordd exited before becoming healthy"
	sleep 0.2
done

"$DIR/cordload" -addr "http://$ADDR" -stream -sweep "$SWEEP" -n "$N" \
	-frames "$FRAMES" -chunk "$CHUNK" -perf-out "$PERF_OUT" \
	|| fail "cordload -stream reported hard errors"

grep -q '"streaming"' "$PERF_OUT" || fail "$PERF_OUT gained no streaming block"

# Online duty sweep: a recorded fixture streamed with detect=online at each
# duty point (EXPERIMENTS.md, "Pricing online detection").
"$DIR/cordload" -addr "http://$ADDR" -stream -duty "$DUTIES" -sweep "$SWEEP" \
	-n "$N" -chunk "$CHUNK" -perf-out "$PERF_OUT" \
	|| fail "cordload -stream -duty reported hard errors"

grep -q '"streaming-online"' "$PERF_OUT" || fail "$PERF_OUT gained no streaming-online block"
echo "stream-perf: PASS (streaming and streaming-online merged into $PERF_OUT)"
