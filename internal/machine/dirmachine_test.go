package machine

import (
	"testing"

	"cord/internal/memsys"
	"cord/internal/trace"
)

func dacc(proc int, addr memsys.Addr, kind trace.Kind) trace.Access {
	return trace.Access{Proc: proc, Thread: proc, Addr: addr, Kind: kind, Class: trace.Data}
}

func TestDirMachineColdMissGoesToMemory(t *testing.T) {
	m := NewDirMachine(DefaultDirConfig())
	cost := m.AccessCost(0, 0, dacc(0, 0x4000, trace.Read), trace.Report{})
	c := m.cfg
	want := c.HopCycles + c.HomeLookupCycles + c.MemoryCycles + c.HopCycles
	if cost != want {
		t.Fatalf("cold miss cost = %d, want %d", cost, want)
	}
}

func TestDirMachineSharerForwardCheaperThanMemory(t *testing.T) {
	m := NewDirMachine(DefaultDirConfig())
	m.AccessCost(0, 0, dacc(0, 0x4000, trace.Read), trace.Report{})
	fwd := m.AccessCost(100, 1, dacc(1, 0x4000, trace.Read), trace.Report{})
	mem := m.AccessCost(200, 2, dacc(2, 0x8000, trace.Read), trace.Report{})
	if fwd >= mem {
		t.Fatalf("3-hop forward (%d) should beat memory (%d)", fwd, mem)
	}
}

func TestDirMachineHitIsLocal(t *testing.T) {
	m := NewDirMachine(DefaultDirConfig())
	m.AccessCost(0, 3, dacc(3, 0x4000, trace.Read), trace.Report{})
	if cost := m.AccessCost(50, 3, dacc(3, 0x4000, trace.Read), trace.Report{}); cost != m.cfg.L1HitCycles {
		t.Fatalf("hit cost = %d", cost)
	}
}

func TestDirMachineWriteInvalidatesSharers(t *testing.T) {
	m := NewDirMachine(DefaultDirConfig())
	m.AccessCost(0, 0, dacc(0, 0x4000, trace.Read), trace.Report{})
	m.AccessCost(10, 1, dacc(1, 0x4000, trace.Read), trace.Report{})
	m.AccessCost(20, 2, dacc(2, 0x4000, trace.Write), trace.Report{})
	// Proc 0 must miss now.
	cost := m.AccessCost(1000, 0, dacc(0, 0x4000, trace.Read), trace.Report{})
	if cost <= m.cfg.L2HitCycles {
		t.Fatalf("invalidated copy still hit: cost %d", cost)
	}
	if !m.dir.Holds(memsys.LineOf(0x4000), 2) {
		t.Fatal("writer not recorded as owner")
	}
}

func TestDirMachineCordTrafficCounted(t *testing.T) {
	m := NewDirMachine(DefaultDirConfig())
	m.AccessCost(0, 0, dacc(0, 0x4000, trace.Read), trace.Report{})
	before := m.Stats().MessageCycles
	m.AccessCost(10, 0, dacc(0, 0x4000, trace.Read), trace.Report{CheckRequests: 1, MemTsUpdates: 2})
	after := m.Stats().MessageCycles
	if after <= before {
		t.Fatal("CORD messages not accounted")
	}
}

func TestDirMachineComputeCost(t *testing.T) {
	m := NewDirMachine(DefaultDirConfig())
	if m.ComputeCost(0, 9) != 9 {
		t.Fatal("compute cost")
	}
}
