// Package machine is the timing model of the simulated 4-processor CMP
// (§3.1): private inclusive L1/L2 caches, a snooping data bus, the half-rate
// address/timestamp bus, and a 600-cycle main memory. It implements the
// engine's CostModel interface and is where CORD's performance overhead
// materializes: race-check broadcasts and memory-timestamp updates reported
// by the CORD detector occupy the address/timestamp bus and contend with
// ordinary coherence traffic, occasionally delaying instruction retirement.
package machine

import (
	"cord/internal/bus"
	"cord/internal/cache"
	"cord/internal/memsys"
	"cord/internal/trace"
)

// Config sizes the machine.
type Config struct {
	Procs     int
	Hierarchy cache.HierarchyConfig
	Timing    bus.Timing
	// RetireWindow is the number of cycles of address-bus queueing a
	// pending CORD race check may hide behind out-of-order retirement
	// before it stalls the issuing instruction (§3.1: the processor
	// consumes data without waiting for the comparison; only checks still
	// in flight at retirement delay it).
	RetireWindow uint64
}

// DefaultConfig returns the paper's machine.
func DefaultConfig() Config {
	return Config{
		Procs:        4,
		Hierarchy:    cache.DefaultHierarchy(),
		Timing:       bus.DefaultTiming(),
		RetireWindow: 256,
	}
}

// Machine is one simulated chip. It implements sim.CostModel.
type Machine struct {
	cfg    Config
	fabric *bus.Fabric
	procs  []*cache.Hierarchy
	dirty  []map[memsys.Line]bool

	// stats
	misses, c2c, memFetch, upgrades uint64
	dirtyInvals                     uint64
	checkStalls                     uint64
	stallCycles                     uint64
}

// New builds an idle machine.
func New(cfg Config) *Machine {
	if cfg.Procs <= 0 {
		cfg.Procs = 4
	}
	m := &Machine{cfg: cfg, fabric: bus.NewFabric(cfg.Timing)}
	for i := 0; i < cfg.Procs; i++ {
		m.procs = append(m.procs, cache.NewHierarchy(cfg.Hierarchy))
		m.dirty = append(m.dirty, make(map[memsys.Line]bool))
	}
	return m
}

// AccessCost implements the CostModel contract: it simulates the access
// against the cache hierarchy and interconnect and returns the cycles the
// issuing thread is charged.
func (m *Machine) AccessCost(now uint64, proc int, a trace.Access, rep trace.Report) uint64 {
	t := m.cfg.Timing
	l := memsys.LineOf(a.Addr)
	h := m.procs[proc]

	sharedRemotely := false
	for p, rh := range m.procs {
		if p != proc && rh.Contains(l) {
			sharedRemotely = true
			break
		}
	}

	level, victim, evicted := h.Access(l)
	end := now
	switch level {
	case cache.L1Hit:
		end = now + t.L1HitCycles
	case cache.L2Hit:
		end = now + t.L2HitCycles
	default:
		m.misses++
		reqDone := m.fabric.Addr.Acquire(now, t.AddrBusCycles)
		if sharedRemotely {
			m.c2c++
			dataDone := m.fabric.Data.Acquire(reqDone, t.DataBusCycles)
			end = dataDone + t.CacheToCacheCycles
		} else {
			m.memFetch++
			memDone := m.fabric.Mem.Acquire(reqDone, t.MemoryCycles)
			end = m.fabric.Data.Acquire(memDone, t.DataBusCycles)
		}
	}

	if a.Kind == trace.Write {
		if sharedRemotely {
			if level == cache.L1Hit || level == cache.L2Hit {
				// Upgrade: invalidation broadcast on the address bus.
				m.upgrades++
				m.fabric.Addr.Acquire(end, t.AddrBusCycles)
			}
			for p, rh := range m.procs {
				if p != proc && rh.Invalidate(l) {
					if m.dirty[p][l] {
						// Invalidating a remote *dirty* copy flushes its data:
						// a cache-to-cache supply on the data bus plus the
						// memory write-back, like an eviction. The transfer
						// happens off the writer's critical path, so it
						// occupies the buses without delaying retirement.
						m.dirtyInvals++
						wb := m.fabric.Data.Acquire(end, t.DataBusCycles)
						m.fabric.Mem.Acquire(wb, t.MemoryCycles)
						delete(m.dirty[p], l)
					}
				}
			}
		}
		m.dirty[proc][l] = true
	}

	if evicted {
		if m.dirty[proc][victim] {
			// Dirty write-back occupies the data bus and the memory
			// channel but does not delay the issuing instruction.
			wb := m.fabric.Data.Acquire(end, t.DataBusCycles)
			m.fabric.Mem.Acquire(wb, t.MemoryCycles)
			delete(m.dirty[proc], victim)
		}
	}

	// CORD traffic: race-check broadcasts and memory-timestamp update
	// transactions occupy the address/timestamp bus. A check delays
	// retirement only by the queueing it cannot hide in RetireWindow.
	for i := 0; i < rep.CheckRequests; i++ {
		delay := m.fabric.Addr.PeekDelay(end)
		m.fabric.Addr.Acquire(end, t.AddrBusCycles)
		if delay > m.cfg.RetireWindow {
			stall := delay - m.cfg.RetireWindow
			end += stall
			m.checkStalls++
			m.stallCycles += stall
		}
	}
	for i := 0; i < rep.MemTsUpdates; i++ {
		m.fabric.Addr.Acquire(end, t.AddrBusCycles)
	}

	return end - now
}

// ComputeCost implements the CostModel contract.
func (m *Machine) ComputeCost(proc int, n uint64) uint64 { return n }

// Stats describes the machine's interconnect activity after a run. The json
// tags are the stable wire encoding used by exported benchmark artifacts.
type Stats struct {
	Misses       uint64 `json:"misses"`
	CacheToCache uint64 `json:"cache_to_cache"`
	MemFetches   uint64 `json:"mem_fetches"`
	Upgrades     uint64 `json:"upgrades"`
	// DirtyInvalidations counts writes that invalidated a remote dirty copy,
	// each billed as a data-bus cache-to-cache supply plus memory write-back.
	DirtyInvalidations uint64 `json:"dirty_invalidations"`
	AddrBusBusy        uint64 `json:"addr_bus_busy"`
	AddrBusTrans       uint64 `json:"addr_bus_trans"`
	DataBusBusy        uint64 `json:"data_bus_busy"`
	DataBusTrans       uint64 `json:"data_bus_trans"`
	CheckStalls        uint64 `json:"check_stalls"`
	StallCycles        uint64 `json:"stall_cycles"`
}

// Stats returns cumulative counters.
func (m *Machine) Stats() Stats {
	ab, at := m.fabric.Addr.Stats()
	db, dt := m.fabric.Data.Stats()
	return Stats{
		Misses: m.misses, CacheToCache: m.c2c, MemFetches: m.memFetch, Upgrades: m.upgrades,
		DirtyInvalidations: m.dirtyInvals,
		AddrBusBusy:        ab, AddrBusTrans: at,
		DataBusBusy: db, DataBusTrans: dt,
		CheckStalls: m.checkStalls, StallCycles: m.stallCycles,
	}
}
