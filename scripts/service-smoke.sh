#!/bin/sh
# End-to-end smoke test for the cordd service: build it, start it, exercise
# one detect and one replay session over real HTTP, then SIGTERM it and
# assert a clean drain. CI runs this; `make smoke-service` runs it locally.
#
# Pure POSIX sh + curl + grep: no test framework, no jq.
set -eu

PORT="${CORDD_PORT:-18080}"
ADDR="127.0.0.1:$PORT"
DIR="$(mktemp -d)"
PID=""

cleanup() {
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill -9 "$PID" 2>/dev/null || true
	fi
	rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
	echo "service-smoke: FAIL: $*" >&2
	if [ -f "$DIR/cordd.log" ]; then
		echo "--- cordd log ---" >&2
		cat "$DIR/cordd.log" >&2
	fi
	exit 1
}

echo "service-smoke: building cordd and cordreplay"
go build -o "$DIR/cordd" ./cmd/cordd
go build -o "$DIR/cordreplay" ./cmd/cordreplay

echo "service-smoke: starting cordd on $ADDR"
"$DIR/cordd" -addr "$ADDR" -workers 2 -queue 4 -timeout 60s -drain 30s \
	>"$DIR/cordd.log" 2>&1 &
PID=$!

# Wait for readiness: /healthz must answer 200 with status "ok".
i=0
until curl -sf "http://$ADDR/healthz" | grep -q '"status": "ok"'; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && fail "server did not become healthy"
	kill -0 "$PID" 2>/dev/null || fail "cordd exited before becoming healthy"
	sleep 0.2
done
echo "service-smoke: healthy after $i polls"

# One detect session: 2xx with a schema-versioned body naming the app.
curl -sf -X POST "http://$ADDR/v1/detect" \
	-H 'Content-Type: application/json' \
	-d '{"app":"fft","seed":3,"threads":4,"inject":5}' \
	>"$DIR/detect.json" || fail "detect request did not return 2xx"
grep -q '"schema": 1' "$DIR/detect.json" || fail "detect body missing schema stamp"
grep -q '"app": "fft"' "$DIR/detect.json" || fail "detect body missing app echo"
grep -q '"detectors"' "$DIR/detect.json" || fail "detect body missing detector verdicts"
echo "service-smoke: detect session OK"

# Record a real order log, then replay it through the service: 2xx and a
# completed verdict.
"$DIR/cordreplay" -app fft -seed 9 -log "$DIR/fft.cordlog" >/dev/null \
	|| fail "cordreplay could not record a log"
curl -sf -X POST "http://$ADDR/v1/replay?app=fft&seed=9&threads=4" \
	-H 'Content-Type: application/octet-stream' \
	--data-binary @"$DIR/fft.cordlog" \
	>"$DIR/replay.json" || fail "replay request did not return 2xx"
grep -q '"schema": 1' "$DIR/replay.json" || fail "replay body missing schema stamp"
grep -q '"completed": true' "$DIR/replay.json" || fail "replay did not complete"
echo "service-smoke: replay session OK"

# Metrics must show the two completed sessions.
curl -sf "http://$ADDR/metrics" >"$DIR/metrics.json" || fail "metrics not served"
grep -q '"completed": 2' "$DIR/metrics.json" || fail "metrics do not show 2 completed sessions"
echo "service-smoke: metrics OK"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
status=0
wait "$PID" || status=$?
PID=""
[ "$status" -eq 0 ] || fail "cordd exited $status on SIGTERM (want clean drain, exit 0)"
grep -q "drained cleanly" "$DIR/cordd.log" || fail "cordd log missing drain confirmation"
echo "service-smoke: PASS (clean drain)"
