package experiment

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testMeta is a small campaign stamp for artifact fixtures.
func testMeta() CampaignMeta {
	return CampaignMeta{BaseSeed: 77, Scale: 1, Threads: 4, Injections: 4,
		Apps: []string{"raytrace", "lu"}}
}

// testArtifacts builds one fixture of every artifact kind, including a NaN
// cell (the empty-denominator case Percent renders as "-").
func testArtifacts() []Artifact {
	meta := testMeta()
	fig := Figure{
		ID:      "fig12",
		Title:   "test figure",
		Columns: []string{"detected", "missed"},
		Rows: []Row{
			{Label: "raytrace", Values: []float64{0.75, 0.25}},
			{Label: "lu", Values: []float64{math.NaN(), 1}},
		},
		Notes: []string{"fixture"},
	}
	t1 := []Table1Row{{App: "raytrace", PaperInput: "teapot", Accesses: 2514,
		Instructions: 3697, SyncInstances: 76, Footprint: 4581}}
	ov := []OverheadRow{{App: "lu", BaselineCycles: 1000, CordCycles: 1004,
		Relative: 1.004, CheckRequests: 12, MemTsBroadcasts: 3, LogBytes: 96}}
	rp := []ReplayRow{{App: "raytrace", Accesses: 2514, LogEntries: 40,
		LogBytes: 320, Match: true}}
	dir := []DirectoryRow{{App: "lu", Requests: 500, Forwards: 120,
		SnoopMessages: 7500, MemTsMessages: 44, RacesMatch: true}}
	ovFig := Figure{ID: "fig11", Title: "overhead", Columns: []string{"relative"},
		Rows: []Row{{Label: "lu", Values: []float64{1.004}}}}
	return []Artifact{
		FigureArtifact(fig, meta),
		Table1Artifact(t1, meta),
		OverheadArtifact(ov, ovFig, meta),
		ReplayArtifact(rp, meta),
		DirectoryArtifact(dir, 16, meta),
	}
}

// TestArtifactRoundTrip: encode → decode → re-encode is byte-identical for
// every artifact kind, including figures with NaN cells (which travel as
// null). This is what makes BENCH_*.json files stable baselines.
func TestArtifactRoundTrip(t *testing.T) {
	for _, a := range testArtifacts() {
		first, err := a.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", a.ID, err)
		}
		back, err := DecodeArtifact(first)
		if err != nil {
			t.Fatalf("%s: decode: %v", a.ID, err)
		}
		second, err := back.Encode()
		if err != nil {
			t.Fatalf("%s: re-encode: %v", a.ID, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: re-encode is not byte-identical:\n%s\nvs\n%s", a.ID, first, second)
		}
	}
}

// TestArtifactNaNTravelsAsNull: JSON has no NaN literal; the encoding must
// map it to null and decoding must restore NaN, not zero.
func TestArtifactNaNTravelsAsNull(t *testing.T) {
	a := testArtifacts()[0] // the figure fixture with a NaN cell
	b, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte("null")) {
		t.Fatalf("NaN cell did not encode as null:\n%s", b)
	}
	back, err := DecodeArtifact(b)
	if err != nil {
		t.Fatal(err)
	}
	if v := back.Figure.Rows[1].Values[0]; !math.IsNaN(v) {
		t.Fatalf("NaN cell decoded as %v, want NaN", v)
	}
}

// TestDecodeArtifactRejectsUnknownSchema: readers must refuse versions they
// do not understand instead of mis-parsing them.
func TestDecodeArtifactRejectsUnknownSchema(t *testing.T) {
	a := testArtifacts()[0]
	a.Schema = SchemaVersion + 1
	b, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeArtifact(b); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("decode of future schema: err = %v, want schema rejection", err)
	}
	if _, err := DecodeArtifact([]byte("{not json")); err == nil {
		t.Fatal("decode of malformed bytes succeeded")
	}
}

// TestWriteReadArtifact: the on-disk round trip through the BENCH_<id>.json
// naming convention.
func TestWriteReadArtifact(t *testing.T) {
	dir := t.TempDir()
	a := testArtifacts()[1]
	path, err := WriteArtifact(dir, a)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_table1.json"); path != want {
		t.Fatalf("path = %q, want %q", path, want)
	}
	back, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := a.Encode()
	b2, _ := back.Encode()
	if !bytes.Equal(b1, b2) {
		t.Fatal("artifact read back differs from what was written")
	}
	if _, err := ReadArtifact(filepath.Join(dir, "BENCH_missing.json")); err == nil {
		t.Fatal("reading a missing artifact succeeded")
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bad.json"), []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArtifact(filepath.Join(dir, "BENCH_bad.json")); err == nil {
		t.Fatal("reading a malformed artifact succeeded")
	}
}

// TestOptionsMeta: the campaign stamp applies defaults and lists apps in
// campaign order, and deliberately carries no host worker count.
func TestOptionsMeta(t *testing.T) {
	m := twoAppOpts(1).Meta()
	m4 := twoAppOpts(4).Meta()
	if m.BaseSeed != 77 || m.Injections != 4 {
		t.Fatalf("meta = %+v", m)
	}
	if m.Scale <= 0 || m.Threads <= 0 {
		t.Fatalf("defaults not applied: %+v", m)
	}
	if len(m.Apps) != 2 || m.Apps[0] != "raytrace" || m.Apps[1] != "lu" {
		t.Fatalf("apps = %v", m.Apps)
	}
	// Different Procs, same campaign: the stamps (and therefore the encoded
	// artifacts) must be identical.
	if m.BaseSeed != m4.BaseSeed || m.Scale != m4.Scale || m.Threads != m4.Threads ||
		m.Injections != m4.Injections {
		t.Fatalf("Procs leaked into campaign meta: %+v vs %+v", m, m4)
	}
}
