package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cord/internal/httpretry"
	"cord/internal/perf"
	"cord/internal/record"
)

// TestValidateFlags: load parameters must be rejected before the sweep
// starts hammering a server with nonsense.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name     string
		n        int
		scale    int
		threads  int
		d        int
		retries  int
		retryCap time.Duration
		wantErr  bool
	}{
		{"defaults", 32, 1, 4, 16, 5, 5 * time.Second, false},
		{"minimal", 1, 1, 1, 1, 1, time.Millisecond, false},
		{"zero n", 0, 1, 4, 16, 5, 5 * time.Second, true},
		{"negative n", -5, 1, 4, 16, 5, 5 * time.Second, true},
		{"zero scale", 32, 0, 4, 16, 5, 5 * time.Second, true},
		{"zero threads", 32, 1, 0, 16, 5, 5 * time.Second, true},
		{"zero d", 32, 1, 4, 0, 5, 5 * time.Second, true},
		{"zero retries", 32, 1, 4, 16, 0, 5 * time.Second, true},
		{"zero retry cap", 32, 1, 4, 16, 5, 0, true},
	}
	for _, tc := range cases {
		err := validateFlags(tc.n, tc.scale, tc.threads, tc.d, tc.retries, tc.retryCap)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: validateFlags = %v, wantErr=%v", tc.name, err, tc.wantErr)
		}
	}
}

// TestRunStageRetriesThrottling: a server that 429s every session once must
// still end the stage with every session OK, the pushback visible in the
// retry counter, and nothing counted as a hard error — unless the throttling
// outlives the attempt budget, which becomes exactly one error per session.
func TestRunStageRetriesThrottling(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		seen[string(body)]++
		first := seen[string(body)] == 1
		mu.Unlock()
		if first {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	policy := httpretry.Policy{Attempts: 3, Fallback: time.Millisecond, Cap: 10 * time.Millisecond}
	res := runStage(srv.Client(), srv.URL, 2, 6, policy, detectRequest{App: "fft", Seed: 1})
	if res.ok != 6 || res.errors != 0 {
		t.Fatalf("ok=%d errors=%d, want 6 ok and 0 errors", res.ok, res.errors)
	}
	if res.retries != 6 {
		t.Fatalf("retries=%d, want 6 (each session throttled once)", res.retries)
	}

	// A single-attempt policy turns the same throttling into hard errors.
	mu.Lock()
	seen = map[string]int{}
	mu.Unlock()
	res = runStage(srv.Client(), srv.URL, 1, 3, httpretry.Policy{Attempts: 1, Fallback: time.Millisecond, Cap: time.Millisecond}, detectRequest{App: "fft", Seed: 1})
	if res.ok != 0 || res.errors != 3 || res.retries != 0 {
		t.Fatalf("ok=%d errors=%d retries=%d, want 0/3/0 with no retry budget", res.ok, res.errors, res.retries)
	}
}

func TestParseSweep(t *testing.T) {
	got, err := parseSweep("1, 2,8")
	if err != nil {
		t.Fatalf("parseSweep: %v", err)
	}
	want := []int{1, 2, 8}
	if len(got) != len(want) {
		t.Fatalf("parseSweep = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseSweep = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "  ", "0", "1,x", "1,,2", "-4"} {
		if _, err := parseSweep(bad); err == nil {
			t.Errorf("parseSweep(%q): expected error", bad)
		}
	}
}

// TestParseDuties: the -duty sweep list admits the full [0, 100] domain —
// zero (pure-ingest baseline) included — and rejects everything outside it.
func TestParseDuties(t *testing.T) {
	got, err := parseDuties("0, 50,100")
	if err != nil {
		t.Fatalf("parseDuties: %v", err)
	}
	want := []int{0, 50, 100}
	if len(got) != len(want) {
		t.Fatalf("parseDuties = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseDuties = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "x", "101", "-1", "50,,100", "50,101"} {
		if _, err := parseDuties(bad); err == nil {
			t.Errorf("parseDuties(%q): expected error", bad)
		}
	}
}

// TestSyntheticStreamDecodes: the generated wire bytes are a well-formed
// order log — they decode, declare the right entry count, and satisfy the
// per-thread unwrap invariants a real recording has (Schedule accepts them).
func TestSyntheticStreamDecodes(t *testing.T) {
	const frames, threads = 100_000, 4
	b := syntheticStream(frames, threads)
	l, err := record.DecodeFrom(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("DecodeFrom: %v", err)
	}
	if l.Len() != frames {
		t.Fatalf("decoded %d entries, want %d", l.Len(), frames)
	}
	if _, err := l.Schedule(threads); err != nil {
		t.Fatalf("synthetic stream violates order invariants: %v", err)
	}
}

// TestRunStreamStage: the stage drives n uploads, each delivering the whole
// body, and classifies 429 pushback as retries rather than errors.
func TestRunStreamStage(t *testing.T) {
	body := syntheticStream(1000, 4)
	var mu sync.Mutex
	var got []int
	throttleOnce := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		if throttleOnce {
			throttleOnce = false
			mu.Unlock()
			w.Header().Set("Retry-After", "0")
			http.Error(w, "slots busy", http.StatusTooManyRequests)
			return
		}
		got = append(got, len(b))
		mu.Unlock()
		w.Write([]byte(`{"schema":1}`))
	}))
	defer srv.Close()

	policy := httpretry.Policy{Attempts: 3, Fallback: time.Millisecond, Cap: 10 * time.Millisecond}
	p := streamParams{app: "fft", seed: 1, threads: 4, frames: 1000, chunk: 256}
	query := "/v1/stream?app=fft&seed=1&threads=4&verify=0"
	res := runStreamStage(srv.Client(), srv.URL, query, 2, 4, policy, p, body)
	if res.ok != 4 || res.errors != 0 || res.retries != 1 {
		t.Fatalf("ok=%d errors=%d retries=%d, want 4/0/1", res.ok, res.errors, res.retries)
	}
	for i, n := range got {
		if n != len(body) {
			t.Fatalf("upload %d delivered %d bytes, want %d", i, n, len(body))
		}
	}
}

// TestMergeStreamingPerf: merging creates a fresh artifact when none exists
// and preserves recorded benchmarks when one does.
func TestMergeStreamingPerf(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_perf.json")
	s1 := &perf.StreamingPerf{Streams: 4, Sessions: 8, FramesPerSession: 1000, RecordsPerSec: 12345}
	if err := mergeStreamingPerf(path, s1); err != nil {
		t.Fatalf("merge into missing file: %v", err)
	}
	r, err := perf.Read(path)
	if err != nil || r.Streaming == nil || r.Streaming.RecordsPerSec != 12345 {
		t.Fatalf("fresh artifact: %+v err=%v", r, err)
	}

	r.Benchmarks = append(r.Benchmarks, perf.BenchResult{Name: "x/y", NsPerOp: 1})
	if err := perf.Write(path, r); err != nil {
		t.Fatal(err)
	}
	if err := mergeStreamingPerf(path, &perf.StreamingPerf{Streams: 2, RecordsPerSec: 99}); err != nil {
		t.Fatalf("merge into existing file: %v", err)
	}
	r2, err := perf.Read(path)
	if err != nil || len(r2.Benchmarks) != 1 || r2.Streaming.Streams != 2 {
		t.Fatalf("merged artifact lost rows: %+v err=%v", r2, err)
	}
}

func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.95); q != 0 {
		t.Fatalf("quantile(nil) = %v, want 0", q)
	}
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(sorted, 1.0); q != 10 {
		t.Fatalf("quantile(max) = %v, want 10", q)
	}
	if q := quantile(sorted, 0.0); q != 1 {
		t.Fatalf("quantile(min) = %v, want 1", q)
	}
}

// TestWatchProgress drives the -progress mode through its lifecycle: an
// in-flight poll, a completed campaign (exit 0), and a coordinator that
// vanishes after serving at least one poll (also exit 0 — the campaign ended
// and took its progress endpoint with it).
func TestWatchProgress(t *testing.T) {
	var polls int
	var ts *httptest.Server
	ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/campaign/progress" {
			http.NotFound(w, r)
			return
		}
		polls++
		done := 3
		if polls == 1 {
			done = 1
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"schema":1,"campaign":"bench-f","fingerprint":"f","cells_done":%d,"cells_total":3,"shards_stolen":1,"shards_requeued":0,"workers":[{"url":"http://a","health":"live","shards_done":2,"shards_queued":0,"shards_in_flight":1,"latency_ewma_ms":4.5}]}`, done)
	}))
	t.Cleanup(ts.Close)

	if code := watchProgress(ts.Client(), ts.URL, time.Millisecond); code != 0 {
		t.Fatalf("watchProgress on completing campaign = %d, want 0", code)
	}
	if polls < 2 {
		t.Fatalf("watched %d polls, want at least 2 (one in-flight, one complete)", polls)
	}

	// Coordinator vanishing after a successful poll reads as campaign end.
	var once sync.Once
	gone := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served := false
		once.Do(func() {
			served = true
			io.WriteString(w, `{"schema":1,"campaign":"c","fingerprint":"f","cells_done":0,"cells_total":9,"workers":[]}`)
		})
		if !served {
			conn, _, _ := w.(http.Hijacker).Hijack()
			conn.Close() // simulate the process going away mid-poll
		}
	}))
	t.Cleanup(gone.Close)
	if code := watchProgress(gone.Client(), gone.URL, time.Millisecond); code != 0 {
		t.Fatalf("watchProgress on vanished coordinator = %d, want 0", code)
	}

	// A coordinator that never answers is a hard error.
	dead := httptest.NewServer(http.NotFoundHandler())
	client := dead.Client()
	dead.Close()
	if code := watchProgress(client, dead.URL, time.Millisecond); code != 1 {
		t.Fatalf("watchProgress on dead coordinator = %d, want 1", code)
	}
}
