// Package experiment reproduces the paper's evaluation (§4): the injection
// campaign behind Figures 10 and 12–17, the performance-overhead comparison
// of Figure 11, the Table 1 catalogue, the order-log/replay verification of
// §3.3, and the chip-area arithmetic of §2.3–2.4.
//
// # Campaigns decompose into independent runs
//
// Every campaign in this package — fault injection (RunDetection), per-app
// sizing (RunTable1), overhead measurement (RunOverhead), directory traffic
// (RunDirectory), and record/replay verification (RunReplayCheck) — is a
// flat list of independent simulations. Each run constructs its own
// workload, engine, and detectors, shares no state with any other run, and
// is fully determined by its seed. The seed is derived purely from campaign
// parameters — (BaseSeed, application index, configuration, run index) —
// never from wall-clock time or from what other runs did.
//
// That property is what makes campaign-level parallelism free of
// result-level consequences: Options.Procs fans the run list out across a
// worker pool, results are collected keyed by run index and aggregated in
// index order, so the output is bit-identical at Procs: 1 and Procs: N.
// Execution order affects only wall-clock time; seeds, not scheduling,
// define results.
//
// # Campaigns are crash-safe
//
// The same property makes campaigns resumable: a run's identity — campaign
// name, a fingerprint of the campaign configuration, application index, run
// index — names its outcome completely. With Options.Checkpoint set, every
// completed run's outcome is appended to a crash-safe journal
// (internal/checkpoint) keyed by that identity, and a restarted campaign
// loads journaled outcomes instead of re-simulating them. Aggregation code
// is unchanged and order-deterministic, so a campaign resumed after a crash
// produces artifacts byte-identical to an uninterrupted one.
//
// Per-run failures are classified: transient failures (anything carrying a
// Transient() bool method, e.g. faults injected by internal/chaos) are
// retried under Options.Retry with exponential backoff and deterministic
// jitter, while everything else aborts the campaign. Closing
// Options.Interrupt stops new runs from dispatching, lets in-flight runs
// finish (and journal), and surfaces ErrInterrupted — the graceful-drain
// path cordbench wires to SIGINT/SIGTERM.
package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"
	"time"

	"cord/internal/checkpoint"
	"cord/internal/sim"
	"cord/internal/workload"
)

// campaignJitter is the per-operation scheduling jitter (in cycles) every
// detection-style campaign run uses, so that different seeds explore
// different interleavings (§3.4 methodology). Overhead runs use a smaller
// jitter of their own to keep cycle counts comparable.
const campaignJitter = 7

// ErrInterrupted reports that a campaign stopped early because
// Options.Interrupt closed. In-flight runs were drained and journaled first,
// so a checkpointed campaign can be resumed from where it stopped.
var ErrInterrupted = errors.New("experiment: campaign interrupted")

// Retry bounds how a campaign retries one run's transient failures. The
// attempt budget covers the first try: Attempts 3 means one try plus at most
// two retries. Backoff doubles from BaseDelay up to MaxDelay, plus a
// deterministic jitter derived from the run's identity — retry *timing*
// varies, retry *outcomes* cannot, because runs are pure functions of their
// seeds.
type Retry struct {
	Attempts  int
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (r Retry) withDefaults() Retry {
	if r.Attempts <= 0 {
		r.Attempts = 3
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = 100 * time.Millisecond
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = 2 * time.Second
	}
	return r
}

// delay is the backoff before attempt+1: BaseDelay doubled per failed
// attempt, capped at MaxDelay, plus up to 50% deterministic jitter keyed on
// the run identity (so parallel retries do not thundering-herd in lockstep,
// and tests reproduce the same schedule).
func (r Retry) delay(key string, attempt int) time.Duration {
	d := r.BaseDelay
	for i := 1; i < attempt && d < r.MaxDelay; i++ {
		d *= 2
	}
	if d > r.MaxDelay {
		d = r.MaxDelay
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", key, attempt)
	return d + time.Duration(h.Sum64()%uint64(d/2+1))
}

// transienter is the failure-classification contract: errors that declare
// themselves transient (chaos-injected faults, and any future genuinely
// retryable condition) are retried; everything else is fatal to the
// campaign.
type transienter interface{ Transient() bool }

// isTransient classifies one run failure.
func isTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// runSim executes one simulation of app under the campaign's shared
// conventions: the workload is built at the campaign's Scale, cfg.Jitter
// defaults to campaignJitter, and errors are wrapped with the campaign
// stage and application name. threads is the workload's thread count —
// o.Threads for every campaign except the directory experiment, which
// passes its own processor count. All campaign entry points construct
// their runs through this one helper.
func (o Options) runSim(stage string, app workload.App, threads int, cfg sim.Config) (sim.Result, error) {
	if cfg.Jitter == 0 {
		cfg.Jitter = campaignJitter
	}
	if cfg.Cancel == nil {
		cfg.Cancel = o.Cancel
	}
	res, err := sim.New(cfg, app.Build(o.Scale, threads)).Run()
	if err != nil {
		return res, fmt.Errorf("experiment: %s %s: %w", stage, app.Name, err)
	}
	return res, nil
}

// fingerprint condenses the campaign configuration that determines run
// outcomes — base seed, scale, threads, injections, app list — into a short
// stable token embedded in every checkpoint key. A journal written under one
// configuration is silently inapplicable to any other: lookups simply miss.
func (o Options) fingerprint() string {
	b, err := json.Marshal(o.Meta())
	if err != nil { // CampaignMeta always marshals
		return "unfingerprintable"
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// runKey is the deterministic identity of one campaign run — the checkpoint
// journal key. It embeds the checkpoint schema version so outcome-shape
// changes invalidate stale journals instead of mis-decoding them.
func (o Options) runKey(campaign string, app, run int) string {
	return fmt.Sprintf("v%d|%s|%s|app=%d|run=%d",
		checkpoint.SchemaVersion, campaign, o.fingerprint(), app, run)
}

// journaledRun executes one campaign run with the full robustness ladder:
// checkpoint skip, chaos fault injection, transient retry with backoff, and
// completion journaling. out must point at the run's JSON-encodable outcome
// cell; fn computes it. On a checkpoint hit the journaled outcome is decoded
// into out and fn never runs — which is what makes resumed campaigns
// byte-identical: the aggregation sees exactly the bytes the original run
// produced.
func (o Options) journaledRun(campaign string, app, run int, out any, fn func() error) error {
	key := o.runKey(campaign, app, run)
	if o.Checkpoint != nil {
		if ok, err := o.Checkpoint.Lookup(key, out); err != nil {
			return fmt.Errorf("experiment: resuming %s: %w", key, err)
		} else if ok {
			return nil
		}
	}

	var err error
	for attempt := 1; ; attempt++ {
		err = o.Chaos.RunFault(key, attempt)
		if err == nil {
			err = fn()
		}
		if err == nil || !isTransient(err) || attempt >= o.Retry.Attempts {
			break
		}
		d := o.Retry.delay(key, attempt)
		if o.Progress != nil {
			fmt.Fprintf(o.Progress, "retry %s: attempt %d/%d failed transiently (%v); backing off %v\n",
				key, attempt, o.Retry.Attempts, err, d)
		}
		sleepInterruptible(d, o.Interrupt)
	}
	if err != nil {
		if isTransient(err) {
			return fmt.Errorf("experiment: %s: transient failure persisted through %d attempts: %w",
				key, o.Retry.Attempts, err)
		}
		return err
	}

	if o.Checkpoint != nil {
		aerr := o.Chaos.JournalFault()
		if aerr == nil {
			aerr = o.Checkpoint.Append(key, out)
		}
		if aerr != nil && o.Progress != nil {
			// A journal failure costs durability, not correctness: the run's
			// outcome is already in memory, it just re-executes on resume.
			fmt.Fprintf(o.Progress, "checkpoint: %s not journaled (%v); the run would re-execute on resume\n",
				key, aerr)
		}
	}
	o.Chaos.RunCompleted()
	return nil
}

// sleepInterruptible waits d, returning early if stop closes.
func sleepInterruptible(d time.Duration, stop <-chan struct{}) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
	}
}

// interrupted reports whether o.Interrupt has closed.
func (o Options) interrupted() bool {
	select {
	case <-o.Interrupt:
		return true
	default:
		return false
	}
}

// forEach runs fn(i) for every i in [0, n) on up to o.Procs concurrent
// workers. fn must write its result into index-keyed storage (a slice cell
// it alone owns), so that collected output is independent of scheduling;
// aggregation then happens in index order on the caller's side.
//
// The first error cancels the shared context, which stops new work from
// being dispatched; runs already in flight finish. Workers that fail after
// the cancellation still record their own first error, and forEach returns
// every distinct per-worker first error joined with errors.Join — a
// campaign that fails on three applications at once reports all three, not
// whichever happened to lose the race.
//
// Closing o.Interrupt likewise stops dispatch and drains in-flight runs
// (journaling them, when checkpointing is on), then forEach returns
// ErrInterrupted.
func (o Options) forEach(n int, fn func(i int) error) error {
	procs := o.Procs
	if procs > n {
		procs = n
	}
	if procs <= 1 {
		for i := 0; i < n; i++ {
			if o.interrupted() {
				return ErrInterrupted
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	idx := make(chan int)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain remaining indices after cancellation
				}
				if err := fn(i); err != nil {
					if errs[w] == nil {
						errs[w] = err
					}
					cancel()
				}
			}
		}(w)
	}
	interrupted := false
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		case <-o.Interrupt:
			interrupted = true
			break feed
		}
	}
	close(idx)
	wg.Wait()

	// Distinct first-per-worker errors, in worker order for determinism of
	// structure; duplicates (the same wrapped failure observed by several
	// workers) collapse.
	var distinct []error
	seen := map[string]bool{}
	for _, err := range errs {
		if err == nil || seen[err.Error()] {
			continue
		}
		seen[err.Error()] = true
		distinct = append(distinct, err)
	}
	if len(distinct) > 0 {
		return errors.Join(distinct...)
	}
	if interrupted || o.interrupted() {
		return ErrInterrupted
	}
	return nil
}

// syncWriter serializes concurrent Write calls so progress lines from
// parallel workers never interleave mid-line.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func newSyncWriter(w io.Writer) io.Writer {
	if w == nil {
		return nil
	}
	if _, ok := w.(*syncWriter); ok {
		return w
	}
	return &syncWriter{w: w}
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// defaultProcs is the worker count when Options.Procs is unset.
func defaultProcs() int { return runtime.NumCPU() }
