package httpretry

import (
	"net/http"
	"testing"
	"time"
)

// TestRetryAfter: both wire forms of Retry-After are honored, malformed and
// missing headers fall back to doubling backoff, and everything clamps to
// [0, cap]. The past-HTTP-date row is the regression under test: a server
// whose clock runs behind the client's sends dates that are already in the
// past, which must mean "retry now" (zero sleep) — not drop into the
// doubling fallback as if the header were garbage.
func TestRetryAfter(t *testing.T) {
	p := Policy{Attempts: 5, Fallback: 100 * time.Millisecond, Cap: 2 * time.Second}
	future := time.Now().Add(time.Minute).UTC().Format(http.TimeFormat)
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	cases := []struct {
		name    string
		header  string
		attempt int
		want    time.Duration
	}{
		{"delta-seconds", "1", 1, time.Second},
		{"delta-seconds with spaces", " 1 ", 1, time.Second},
		{"delta-seconds zero", "0", 1, 0},
		{"delta-seconds over cap", "30", 1, p.Cap},
		{"future HTTP-date clamps to cap", future, 1, p.Cap},
		{"past HTTP-date clamps to zero", past, 1, 0},
		{"past HTTP-date late attempt still zero", past, 4, 0},
		{"missing header attempt 1", "", 1, p.Fallback},
		{"malformed header attempt 2", "garbage", 2, 2 * p.Fallback},
		{"negative delta-seconds is malformed", "-5", 1, p.Fallback},
		{"missing header attempt 10 caps", "", 10, p.Cap},
	}
	for _, tc := range cases {
		if d := p.RetryAfter(tc.header, tc.attempt); d != tc.want {
			t.Errorf("%s: RetryAfter(%q, %d) = %v, want %v", tc.name, tc.header, tc.attempt, d, tc.want)
		}
	}
}

// TestBackoff: the hint-free schedule doubles per attempt from Fallback and
// never exceeds Cap — and agrees exactly with RetryAfter's no-header branch,
// since a transport error and a header-less 500 deserve the same patience.
func TestBackoff(t *testing.T) {
	p := Policy{Attempts: 5, Fallback: 50 * time.Millisecond, Cap: time.Second}
	want := []time.Duration{
		50 * time.Millisecond,  // attempt 1
		100 * time.Millisecond, // attempt 2
		200 * time.Millisecond, // attempt 3
		400 * time.Millisecond, // attempt 4
		800 * time.Millisecond, // attempt 5
		time.Second,            // attempt 6 doubles past Cap and clamps
		time.Second,            // and stays clamped from then on
	}
	for i, w := range want {
		attempt := i + 1
		if d := p.Backoff(attempt); d != w {
			t.Errorf("Backoff(%d) = %v, want %v", attempt, d, w)
		}
		if d, r := p.Backoff(attempt), p.RetryAfter("", attempt); d != r {
			t.Errorf("Backoff(%d) = %v but RetryAfter(\"\", %d) = %v; they must agree", attempt, d, attempt, r)
		}
	}
}

// TestBackoffKeyedJitterBounds: with Jitter armed, every keyed fallback delay
// stays within [d·(1−Jitter), d] of the unjittered schedule — including at
// the Cap clamp, where subtractive jitter must still spread delays instead of
// re-synchronizing every client at exactly Cap.
func TestBackoffKeyedJitterBounds(t *testing.T) {
	p := Policy{Attempts: 5, Fallback: 100 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.5}
	base := Policy{Attempts: p.Attempts, Fallback: p.Fallback, Cap: p.Cap} // jitter-free reference
	keys := []string{"", "http://w1:8080", "http://w2:8080", "http://w3:8080", "v2|detect-inject|x|app=0|run=3"}
	cases := []struct {
		name    string
		attempt int
	}{
		{"first attempt", 1},
		{"second attempt", 2},
		{"doubling attempt", 4},
		{"capped attempt", 8},
		{"deep capped attempt", 20},
	}
	for _, tc := range cases {
		d := base.Backoff(tc.attempt)
		lo := time.Duration(float64(d) * (1 - p.Jitter))
		for _, key := range keys {
			got := p.BackoffKeyed(key, tc.attempt)
			if got < lo || got > d {
				t.Errorf("%s: BackoffKeyed(%q, %d) = %v, want within [%v, %v]", tc.name, key, tc.attempt, got, lo, d)
			}
			if again := p.BackoffKeyed(key, tc.attempt); again != got {
				t.Errorf("%s: BackoffKeyed(%q, %d) not deterministic: %v then %v", tc.name, key, tc.attempt, got, again)
			}
		}
	}
}

// TestBackoffKeyedSpreadsKeys: distinct keys must actually land on distinct
// delays (that is the whole point), and a malformed header must route through
// the same keyed jitter as a missing one.
func TestBackoffKeyedSpreadsKeys(t *testing.T) {
	p := Policy{Attempts: 5, Fallback: time.Second, Cap: 8 * time.Second, Jitter: 0.5}
	seen := map[time.Duration]bool{}
	for _, key := range []string{"http://a", "http://b", "http://c", "http://d"} {
		seen[p.BackoffKeyed(key, 3)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("4 keys produced %d distinct delays; jitter ignores the key and retries would thundering-herd", len(seen))
	}
	if got, want := p.RetryAfterKeyed("garbage", "http://a", 3), p.BackoffKeyed("http://a", 3); got != want {
		t.Fatalf("RetryAfterKeyed with malformed header = %v, want the keyed fallback %v", got, want)
	}
	if got := p.RetryAfterKeyed("2", "http://a", 3); got != 2*time.Second {
		t.Fatalf("RetryAfterKeyed with a parsed header = %v, want the server's verbatim 2s (never jittered)", got)
	}
}

// TestZeroJitterIsExact: Jitter 0 (the zero value every pre-jitter caller
// has) must reproduce the old schedule bit-for-bit.
func TestZeroJitterIsExact(t *testing.T) {
	p := Policy{Attempts: 5, Fallback: 50 * time.Millisecond, Cap: time.Second}
	for attempt := 1; attempt <= 8; attempt++ {
		if got, want := p.BackoffKeyed("http://a", attempt), p.Backoff(attempt); got != want {
			t.Errorf("BackoffKeyed(%d) = %v with zero jitter, want %v", attempt, got, want)
		}
	}
}
