package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cord/internal/replay"
	"cord/internal/workload"
)

func shutdownOrFail(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func postDetect(t *testing.T, url string, req DetectRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/detect: %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, b
}

// TestConcurrentSessionsByteStable: N concurrent identical sessions on a
// pool of W < N workers all complete, and every response body is
// byte-identical — the engine's determinism survives the service layer.
func TestConcurrentSessionsByteStable(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 32})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	const n = 8
	req := DetectRequest{App: "fft", Seed: 3, Inject: 5}
	bodies := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postDetect(t, ts.URL, req)
			statuses[i], bodies[i] = resp.StatusCode, b
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}

	// The service body must equal the canonical encoding of a direct run —
	// the HTTP layer adds nothing nondeterministic.
	want, err := RunDetect(context.Background(), req)
	if err != nil {
		t.Fatalf("RunDetect: %v", err)
	}
	wantB, _ := encodeJSON(want)
	if !bytes.Equal(bodies[0], wantB) {
		t.Fatalf("service body differs from direct RunDetect encoding")
	}
	m := srv.Metrics()
	if m.Sessions.Completed != n {
		t.Fatalf("completed = %d, want %d", m.Sessions.Completed, n)
	}
}

// TestQueueFullRejects: when every worker is busy and the queue is full, a
// new session is rejected immediately with 429 and a Retry-After hint, and
// the accepted sessions still complete once unblocked.
func TestQueueFullRejects(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	srv.runDetect = func(ctx context.Context, req DetectRequest) (*DetectResponse, error) {
		select {
		case <-block:
			return &DetectResponse{Schema: SchemaVersion, App: req.App}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, _ := postDetect(t, ts.URL, DetectRequest{App: "fft"})
			results <- resp.StatusCode
		}()
		if i == 0 {
			waitFor(t, "first session to start", func() bool { return srv.Metrics().Sessions.Started == 1 })
		} else {
			waitFor(t, "second session to queue", func() bool { return srv.Metrics().Sessions.Accepted == 2 })
		}
	}

	resp, body := postDetect(t, ts.URL, DetectRequest{App: "fft"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 response missing Retry-After header")
	}
	close(block)
	for i := 0; i < 2; i++ {
		if st := <-results; st != http.StatusOK {
			t.Fatalf("accepted session %d finished with status %d", i, st)
		}
	}
	if m := srv.Metrics(); m.Sessions.RejectedQueueFull != 1 || m.Sessions.Completed != 2 {
		t.Fatalf("counters: %+v", m.Sessions)
	}
}

// TestClientDisconnectCancelsEngine: cancelling an in-flight request stops
// the simulation engine (the session is classified canceled long before the
// run could complete) and leaks no goroutines.
func TestClientDisconnectCancelsEngine(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv)

	// A scale-4096 run takes far longer than this test is willing to wait;
	// only engine cancellation can finish the session promptly.
	body, _ := json.Marshal(DetectRequest{App: "fft", Seed: 1, Scale: 4096})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/detect", bytes.NewReader(body))
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitFor(t, "session to start", func() bool { return srv.Metrics().Sessions.Started == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatalf("cancelled request unexpectedly succeeded")
	}
	waitFor(t, "session to be classified canceled", func() bool {
		return srv.Metrics().Sessions.Canceled == 1
	})

	shutdownOrFail(t, srv)
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	})
}

// TestGracefulShutdownDrains: Shutdown lets every accepted session finish
// (none dropped) while rejecting new work with 503.
func TestGracefulShutdownDrains(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	block := make(chan struct{})
	srv.runDetect = func(ctx context.Context, req DetectRequest) (*DetectResponse, error) {
		select {
		case <-block:
			return &DetectResponse{Schema: SchemaVersion, App: req.App}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Fill the worker and then the queue one request at a time so none of
	// the three can bounce off a momentarily-full queue.
	results := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func() {
			resp, _ := postDetect(t, ts.URL, DetectRequest{App: "fft"})
			results <- resp.StatusCode
		}()
		n := uint64(i + 1)
		waitFor(t, "session to be accepted", func() bool { return srv.Metrics().Sessions.Accepted == n })
		if i == 0 {
			waitFor(t, "first session to start", func() bool { return srv.Metrics().Sessions.Started == 1 })
		}
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	waitFor(t, "draining to take effect", func() bool {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})

	// New work is refused while draining.
	resp, _ := postDetect(t, ts.URL, DetectRequest{App: "fft"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("detect during drain: status %d, want 503", resp.StatusCode)
	}

	close(block)
	for i := 0; i < 3; i++ {
		if st := <-results; st != http.StatusOK {
			t.Fatalf("accepted session %d dropped during shutdown (status %d)", i, st)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if m := srv.Metrics(); m.Sessions.Completed != 3 || m.Sessions.RejectedDraining == 0 {
		t.Fatalf("counters after drain: %+v", m.Sessions)
	}
}

// TestSessionTimeout: a session exceeding SessionTimeout is cancelled inside
// the engine and answered with 504.
func TestSessionTimeout(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2, SessionTimeout: 100 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	resp, body := postDetect(t, ts.URL, DetectRequest{App: "fft", Scale: 4096})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if m := srv.Metrics(); m.Sessions.TimedOut != 1 {
		t.Fatalf("timed_out = %d, want 1", m.Sessions.TimedOut)
	}
}

// TestReplayRoundTrip: a log recorded by the replay package replays to
// completion through the service, and a log replayed against the wrong
// program is reported as a divergence verdict, not a transport error.
func TestReplayRoundTrip(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	app, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	out, err := replay.RecordAndReplay(app.Build(1, 4), replay.Options{Seed: 9, Jitter: 7})
	if err != nil || !out.Match {
		t.Fatalf("recording fixture failed: err=%v match=%v", err, out.Match)
	}
	var buf bytes.Buffer
	if err := out.Log.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	logBytes := buf.Bytes()

	post := func(query string) (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/v1/replay?"+query, "application/octet-stream", bytes.NewReader(logBytes))
		if err != nil {
			t.Fatalf("POST /v1/replay: %v", err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}

	resp, body := post("app=fft&seed=9&threads=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay status %d, body %s", resp.StatusCode, body)
	}
	var rr ReplayResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("decoding replay response: %v", err)
	}
	if !rr.Completed || rr.Divergence != "" {
		t.Fatalf("replay verdict: completed=%v divergence=%q", rr.Completed, rr.Divergence)
	}
	if rr.LogEntries != out.Log.Len() {
		t.Fatalf("log_entries = %d, want %d", rr.LogEntries, out.Log.Len())
	}
	if rr.Result.Ops != out.Recorded.Ops {
		t.Fatalf("replayed ops = %d, recorded %d", rr.Result.Ops, out.Recorded.Ops)
	}

	// Byte stability holds for replay sessions too.
	resp2, body2 := post("app=fft&seed=9&threads=4")
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body, body2) {
		t.Fatalf("repeat replay not byte-identical (status %d)", resp2.StatusCode)
	}

	// The fft log against the lu program cannot be followed: the verdict is
	// divergence, delivered as data with a 2xx.
	resp3, body3 := post("app=lu&seed=9&threads=4")
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("mismatched replay status %d, body %s", resp3.StatusCode, body3)
	}
	var rr3 ReplayResponse
	if err := json.Unmarshal(body3, &rr3); err != nil {
		t.Fatal(err)
	}
	if rr3.Completed {
		t.Fatalf("replaying an fft log against lu reported completion")
	}
}

// TestRequestValidation: malformed and out-of-domain requests are rejected
// up front with 4xx JSON errors and never occupy a worker.
func TestRequestValidation(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1, MaxBodyBytes: 4096})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	cases := []struct {
		name       string
		method     string
		url        string
		body       string
		wantStatus int
	}{
		{"unknown app", http.MethodPost, "/v1/detect", `{"app":"nope"}`, http.StatusBadRequest},
		{"bad json", http.MethodPost, "/v1/detect", `{"app":`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/detect", `{"app":"fft","sedd":1}`, http.StatusBadRequest},
		{"threads too high", http.MethodPost, "/v1/detect", `{"app":"fft","threads":1000}`, http.StatusBadRequest},
		{"negative scale", http.MethodPost, "/v1/detect", `{"app":"fft","scale":-1}`, http.StatusBadRequest},
		{"oversized body", http.MethodPost, "/v1/detect",
			`{"app":"fft","seed":` + strings.Repeat("1", 5000) + `}`, http.StatusRequestEntityTooLarge},
		{"replay bad magic", http.MethodPost, "/v1/replay?app=fft", "not a cord log....", http.StatusBadRequest},
		{"replay bad param", http.MethodPost, "/v1/replay?app=fft&threads=x", "", http.StatusBadRequest},
		{"replay unknown app", http.MethodPost, "/v1/replay?app=nope", "", http.StatusBadRequest},
		{"wrong method", http.MethodGet, "/v1/detect", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.url, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, resp.StatusCode, tc.wantStatus, b)
		}
	}
	if m := srv.Metrics(); m.Sessions.Accepted != 0 {
		t.Fatalf("invalid requests reached the pool: %+v", m.Sessions)
	}
}

// TestHealthzAndMetrics: the observability endpoints serve schema-versioned
// JSON and the latency histogram accounts every dispatched session.
func TestHealthzAndMetrics(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Schema != SchemaVersion || h.Workers != 2 {
		t.Fatalf("healthz: status=%d body=%+v", resp.StatusCode, h)
	}

	for seed := uint64(1); seed <= 3; seed++ {
		if resp, b := postDetect(t, ts.URL, DetectRequest{App: "fft", Seed: seed}); resp.StatusCode != http.StatusOK {
			t.Fatalf("detect seed %d: %d %s", seed, resp.StatusCode, b)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Schema != SchemaVersion {
		t.Fatalf("metrics schema = %d", m.Schema)
	}
	if m.Sessions.Completed != 3 {
		t.Fatalf("completed = %d, want 3", m.Sessions.Completed)
	}
	h1, ok := m.Endpoints["/v1/detect"]
	if !ok {
		t.Fatalf("no latency histogram for /v1/detect: %v", m.Endpoints)
	}
	var total uint64
	for _, c := range h1.Counts {
		total += c
	}
	if h1.Count != 3 || total != 3 {
		t.Fatalf("histogram count = %d (bucket sum %d), want 3", h1.Count, total)
	}
	if len(h1.LeMs) != len(latencyBucketsMs) || len(h1.Counts) != len(latencyBucketsMs)+1 {
		t.Fatalf("histogram shape: %d bounds, %d counts", len(h1.LeMs), len(h1.Counts))
	}
}

// TestObserveBuckets: latency observations land in the right bucket.
func TestObserveBuckets(t *testing.T) {
	m := newMetrics()
	m.observe("/x", 500*time.Microsecond) // <= 1ms: bucket 0
	m.observe("/x", 3*time.Millisecond)   // <= 5ms: bucket 2
	m.observe("/x", 2*time.Hour)          // overflow bucket
	snap := m.snapshot(time.Second, 1, 0, 1)
	h := snap.Endpoints["/x"]
	if h.Counts[0] != 1 || h.Counts[2] != 1 || h.Counts[len(h.Counts)-1] != 1 || h.Count != 3 {
		t.Fatalf("bucket placement: %v", h.Counts)
	}
}

// TestShutdownTimeout: a drain that cannot finish in time reports how much
// work was still in flight instead of hanging.
func TestShutdownTimeout(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	srv.runDetect = func(ctx context.Context, req DetectRequest) (*DetectResponse, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &DetectResponse{Schema: SchemaVersion}, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		postDetect(t, ts.URL, DetectRequest{App: "fft"})
	}()
	waitFor(t, "session to start", func() bool { return srv.Metrics().Sessions.Started == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := srv.Shutdown(ctx)
	if err == nil {
		t.Fatalf("Shutdown returned nil with a session still in flight")
	}
	if !strings.Contains(err.Error(), "1 sessions") {
		t.Fatalf("shutdown error %q does not report in-flight count", err)
	}
	// Unblock the stuck session: it must still complete (accepted work is
	// never dropped), and a second drain then succeeds.
	close(block)
	<-done
	shutdownOrFail(t, srv)
}
