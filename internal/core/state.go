// Package core implements the paper's contribution: the CORD mechanism for
// combined order-recording and data race detection (§2).
//
// Each processor's cache carries, per resident line, up to two 16-bit scalar
// timestamps with per-word read/write access bits (§2.3) and two check-filter
// bits (§2.7.2). Each thread carries a 16-bit scalar logical clock compared
// under the sliding-window rule (§2.7.5). A single pair of main-memory
// read/write timestamps (§2.5), kept consistent across processors by
// broadcast, covers everything displaced from the caches. Synchronization
// reads update the reader's clock to lead the synchronization variable's
// write timestamp by the window parameter D (§2.6); all other updates and
// the post-sync-write increment use one. Clock changes append 8-byte entries
// to the order log (§2.7.1), which replays the execution deterministically.
package core

import "cord/internal/clock"

// mesi is the detector's view of a line's coherence state. Exclusive and
// Modified behave identically for CORD (writes are silent in both), so a
// single "owned" state covers them; Shared lines require an upgrade
// transaction to write.
type mesi uint8

const (
	shared mesi = iota
	owned       // Exclusive or Modified: no other cache holds the line
)

// histEntry is one of the (up to two) timestamp slots of a cached line: the
// timestamp plus one read bit and one write bit per word (Fig. 2).
type histEntry struct {
	ts        clock.Scalar
	readMask  uint16
	writeMask uint16
	valid     bool
}

func (h *histEntry) set(word int, kind wordKind) {
	if kind == wordRead {
		h.readMask |= 1 << word
	} else {
		h.writeMask |= 1 << word
	}
}

func (h *histEntry) has(word int, kind wordKind) bool {
	if kind == wordRead {
		return h.readMask&(1<<word) != 0
	}
	return h.writeMask&(1<<word) != 0
}

func (h *histEntry) any() bool { return h.readMask|h.writeMask != 0 }

type wordKind uint8

const (
	wordRead wordKind = iota
	wordWrite
)

// lineState is the per-line CORD payload: coherence state, the two-deep
// access history (index 0 is the newest timestamp), and the check-filter
// bits. The chip-area cost of this structure is what the area model in the
// public API prices out: 2×(16+16+16)+2 = 98 bits per 512-bit line ≈ 19%.
type lineState struct {
	state   mesi
	hist    [2]histEntry
	filterR bool
	filterW bool
}

// newest returns the most recent valid entry, if any.
func (ls *lineState) newest() *histEntry {
	if ls.hist[0].valid {
		return &ls.hist[0]
	}
	return nil
}

// memTimestamps is the pair of main-memory timestamps of §2.5. Logically one
// pair exists per cache, kept identical by broadcast; the simulator stores
// the single converged value and counts the broadcast transactions.
type memTimestamps struct {
	read, write clock.Scalar
	hasRead     bool
	hasWrite    bool
}

// absorb folds a displaced history entry into the memory timestamps,
// returning whether either timestamp changed (a broadcast transaction).
func (m *memTimestamps) absorb(e histEntry) bool {
	if !e.valid {
		return false
	}
	changed := false
	if e.readMask != 0 && (!m.hasRead || m.read.Before(e.ts)) {
		m.read, m.hasRead = e.ts, true
		changed = true
	}
	if e.writeMask != 0 && (!m.hasWrite || m.write.Before(e.ts)) {
		m.write, m.hasWrite = e.ts, true
		changed = true
	}
	return changed
}
