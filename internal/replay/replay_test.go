package replay

import (
	"testing"

	"cord/internal/baseline"
	"cord/internal/trace"
	"cord/internal/workload"
)

// TestReplayAllWorkloads records and replays every application with several
// seeds; every replay must reproduce the recording exactly (the paper's
// §3.3 verification).
func TestReplayAllWorkloads(t *testing.T) {
	for _, app := range workload.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				prog := app.Build(1, 4)
				out, err := RecordAndReplay(prog, Options{Seed: seed, Jitter: 7})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if out.Recorded.Hung {
					t.Fatalf("seed %d: base run hung", seed)
				}
				if !out.Match {
					t.Fatalf("seed %d: replay mismatch: %s", seed, out.Mismatch)
				}
			}
		})
	}
}

// TestReplayInjectedRuns replays injected (racy) executions: order recording
// must capture the race outcomes so even buggy runs replay exactly.
func TestReplayInjectedRuns(t *testing.T) {
	apps := []string{"raytrace", "cholesky", "water-sp", "lu"}
	for _, name := range apps {
		app, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(1); seed <= 2; seed++ {
			for _, inj := range []uint64{3, 17, 41} {
				prog := app.Build(1, 4)
				out, err := RecordAndReplay(prog, Options{Seed: seed, Jitter: 7, InjectSkip: inj})
				if err != nil {
					t.Fatalf("%s seed %d inj %d: %v", name, seed, inj, err)
				}
				if out.Recorded.Hung {
					continue // injection artifact; nothing to replay
				}
				if !out.Match {
					t.Fatalf("%s seed %d inj %d: replay mismatch: %s", name, seed, inj, out.Mismatch)
				}
			}
		}
	}
}

// TestWorkloadsAreRaceFree: without injection, the Ideal oracle must find
// zero data races in every application (they are properly labeled programs).
func TestWorkloadsAreRaceFree(t *testing.T) {
	for _, app := range workload.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			ideal := baseline.NewIdeal(4)
			prog := app.Build(1, 4)
			out, err := RecordAndReplay(prog, Options{Seed: 11, Jitter: 7, Extra: []trace.Observer{ideal}})
			if err != nil {
				t.Fatal(err)
			}
			if out.Recorded.Hung {
				t.Fatal("hung")
			}
			if n := ideal.RaceCount(); n != 0 {
				t.Fatalf("base program has %d data races (first: %v)", n, ideal.Races()[0])
			}
		})
	}
}

// TestLogSizeUnderOneMB: the paper's §3.3 claim — compact logs.
func TestLogSizeUnderOneMB(t *testing.T) {
	for _, app := range workload.All() {
		prog := app.Build(1, 4)
		out, err := RecordAndReplay(prog, Options{Seed: 2, Jitter: 5})
		if err != nil {
			t.Fatal(err)
		}
		if size := out.Log.SizeBytes(); size >= 1<<20 {
			t.Fatalf("%s: log is %d bytes, want < 1 MiB", app.Name, size)
		}
	}
}
