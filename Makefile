# Developer entry points. `make check` is the tier-1 gate every change must
# pass: formatting, vet, a full build, and the test suite.

GO ?= go

.PHONY: check fmt vet build test race bench bench-json bench-smoke figures json-figures diff-figures table1-determinism serve loadtest smoke-service stream-smoke stream-perf resume-smoke fleet fleet-smoke fleet-chaos-smoke fuzz-smoke clean

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent subsystems — the campaign runner's goroutine fan-out, the
# service's worker pool and stream sessions, the incremental decoder they
# share, and the fleet coordinator's registry/work-stealing scheduler —
# must stay race-clean. Requires cgo (CGO_ENABLED=1) on most platforms.
race:
	$(GO) test -race ./internal/experiment/... ./internal/server/... ./internal/record/... ./cmd/cordbench/

# Campaign scaling benchmark: compare procs=1 vs procs=4 lines.
bench:
	$(GO) test -bench 'Campaign' -benchtime 3x -run '^$$' ./internal/experiment/

# Measure the perf kernels and the campaign slice, writing the
# schema-versioned bench/BENCH_perf.json trajectory artifact. Unlike the
# other BENCH_*.json files this one holds measurements, not simulated
# results: regenerate it each PR and compare numbers against the previous
# revision (see EXPERIMENTS.md, "Tracking the performance trajectory").
bench-json:
	$(GO) run ./cmd/cordperf -benchtime 300ms -injections 8 -out bench/BENCH_perf.json

# One-iteration smoke pass over the same kernels: proves every benchmark
# body still runs without measuring anything. Fast enough for CI.
bench-smoke:
	$(GO) run ./cmd/cordperf -quick -out /dev/null

# Regenerate the paper's full evaluation (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/cordbench -all -injections 80 | tee results.txt

# Golden-baseline campaign: small enough for CI, deterministic at any -procs.
GOLDEN_FLAGS = -all -injections 8 -q

# Regenerate the committed machine-readable baselines in bench/. Run this
# (and commit the result) after any change that intentionally shifts numbers.
json-figures:
	$(GO) run ./cmd/cordbench $(GOLDEN_FLAGS) -json bench > /dev/null

# Gate a fresh run against the committed baselines; non-zero exit on drift.
diff-figures:
	$(GO) run ./cmd/cordbench $(GOLDEN_FLAGS) -diff bench

# Table 1 (FastTrack metadata column included) must come out byte-identical
# whether the campaign runs serial or fanned out: the detector columns are
# functions of the seeds alone. CI runs this.
table1-determinism:
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/cordbench -table1 -injections 8 -q -procs 1 -json $$tmp/p1 > /dev/null; \
	$(GO) run ./cmd/cordbench -table1 -injections 8 -q -procs 4 -json $$tmp/p4 > /dev/null; \
	if cmp $$tmp/p1/BENCH_table1.json $$tmp/p4/BENCH_table1.json; then \
		echo "table1 byte-identical at -procs 1 and -procs 4"; rm -rf $$tmp; \
	else \
		echo "table1 differs between -procs 1 and -procs 4"; rm -rf $$tmp; exit 1; \
	fi

# Run the cordd race-detection service in the foreground (see README,
# "Running the service"). Override the listen address with ADDR=:9090.
ADDR ?= :8080

serve:
	$(GO) run ./cmd/cordd -addr $(ADDR)

# Concurrent-client sweep against a running cordd (start one with `make
# serve` first). Parameters follow EXPERIMENTS.md, "Load-testing the
# service"; override with LOAD_FLAGS.
LOAD_FLAGS ?= -sweep 1,2,4,8 -n 16 -app fft -scale 2

loadtest:
	$(GO) run ./cmd/cordload -addr http://127.0.0.1$(ADDR) $(LOAD_FLAGS)

# End-to-end service smoke: build cordd, start it, run one detect session,
# one replay session, and a streaming round-trip (recorded log through
# /v1/stream, embedded detect block byte-compared against one-shot
# /v1/detect) over HTTP, SIGTERM, assert a clean drain. CI runs this.
smoke-service:
	sh scripts/service-smoke.sh

# The streaming round-trip alone (plus its one-shot reference session):
# fastest signal when iterating on the /v1/stream path.
stream-smoke:
	sh scripts/service-smoke.sh stream

# Measure sustained streaming ingest throughput (cordload -stream against a
# scratch cordd) and merge the records/sec into bench/BENCH_perf.json — see
# EXPERIMENTS.md, "Sustained-throughput streaming".
stream-perf:
	sh scripts/stream-perf.sh

# End-to-end crash-recovery smoke: kill -9 a live checkpointed campaign,
# resume it, assert byte-identical artifacts; SIGTERM drain; 20% transient
# chaos completing through retries. CI runs this (see EXPERIMENTS.md,
# "Interrupting and resuming a campaign").
resume-smoke:
	sh scripts/resume-smoke.sh

# Start a local three-worker cordd fleet for distributed campaigns and
# print the -workers value to paste into cordbench (see EXPERIMENTS.md,
# "Running a distributed campaign"). Ctrl-C drains and stops the fleet.
fleet:
	sh scripts/fleet.sh

# End-to-end distributed-campaign smoke (PROTOCOL.md §6): three workers,
# one-run shards, kill -9 one worker mid-campaign; the coordinator must
# exit 0 with artifacts byte-identical to a single-process run and to the
# committed golden baseline. CI runs this.
fleet-smoke:
	sh scripts/fleet-smoke.sh

# Self-healing-fleet chaos smoke (PROTOCOL.md §7): registry plus three
# supervised workers that die and restart on a pinned CORD_CHAOS schedule;
# the coordinator discovers workers through the registry alone and must
# exit 0 with artifacts byte-identical to a single-process run and to the
# committed golden baseline. CI runs this.
fleet-chaos-smoke:
	sh scripts/fleet-chaos-smoke.sh

# Short fuzzing pass over every hardened input surface: the binary order-log
# decoder and both service request parsers. CI runs this; crashes land in
# testdata/fuzz/ for triage.
fuzz-smoke:
	$(GO) test -fuzz 'FuzzDecodeFrom' -fuzztime 10s -run '^$$' ./internal/record/
	$(GO) test -fuzz 'FuzzDetectRequest' -fuzztime 10s -run '^$$' ./internal/server/
	$(GO) test -fuzz 'FuzzReplayParams' -fuzztime 10s -run '^$$' ./internal/server/

clean:
	$(GO) clean ./...
