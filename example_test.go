package cord_test

import (
	"fmt"

	"cord"
)

// ExampleRun shows the minimal always-on CORD setup: a synchronized program
// runs under the detector and produces no reports and a replayable log.
func ExampleRun() {
	al := cord.NewAllocator()
	lock := cord.NewMutex(al)
	counter := al.Alloc(1)

	prog := cord.Program{
		Name: "example", Threads: 4,
		Body: func(t int, env *cord.Env) {
			for i := 0; i < 5; i++ {
				lock.Lock(env)
				env.Write(counter.Word(0), env.Read(counter.Word(0))+1)
				lock.Unlock(env)
			}
		},
	}
	det := cord.NewDetector(cord.DefaultDetectorConfig())
	res, err := cord.Run(prog, cord.RunConfig{Seed: 1, Jitter: 7,
		Observers: []cord.Observer{det}})
	if err != nil {
		panic(err)
	}
	fmt.Println("counter:", res.Mem.Load(counter.Word(0)))
	fmt.Println("races:", det.RaceCount())
	// Output:
	// counter: 20
	// races: 0
}

// ExampleRecordAndReplay demonstrates the paper's record/replay loop: a racy
// execution (one synchronization instance removed) is recorded and replayed
// exactly.
func ExampleRecordAndReplay() {
	prog := cord.AppByName("raytrace").Build(1, 4)
	out, err := cord.RecordAndReplay(prog, cord.ReplayOptions{
		Seed: 2, Jitter: 7, InjectSkip: 5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("replay exact:", out.Match)
	// Output:
	// replay exact: true
}

// ExampleDetector_Races shows detection of a real injected race, checked
// against the happens-before oracle.
func ExampleDetector_Races() {
	al := cord.NewAllocator()
	data := al.Alloc(1)
	flag := cord.NewFlag(al)
	prog := cord.Program{
		Name: "racy", Threads: 2,
		Body: func(t int, env *cord.Env) {
			if t == 0 {
				env.Compute(100)
				env.Write(data.Word(0), 1)
				flag.Set(env, 1)
			} else {
				flag.WaitAtLeast(env, 1) // removed by the injection below
				env.Write(data.Word(0), 2)
			}
		},
	}
	det := cord.NewDetector(cord.DetectorConfig{Threads: 2, D: 16})
	oracle := cord.NewIdealDetector(2)
	_, err := cord.Run(prog, cord.RunConfig{Seed: 1, InjectSkip: 1,
		Observers: []cord.Observer{oracle, det}})
	if err != nil {
		panic(err)
	}
	for _, r := range det.Races() {
		fmt.Println(r, "confirmed:", oracle.Confirms(r))
	}
	// Output:
	// race @0x40: T1 WR ... T0 WR confirmed: true
}

// ExampleAreaModel reproduces the paper's chip-area arithmetic.
func ExampleAreaModel() {
	m := cord.DefaultAreaModel()
	fmt.Printf("CORD scalar: %.1f%%\n", m.ScalarOverhead()*100)
	fmt.Printf("per-line vector: %.1f%%\n", m.VectorPerLineOverhead()*100)
	fmt.Printf("per-word vector: %.0f%%\n", m.VectorPerWordOverhead()*100)
	// Output:
	// CORD scalar: 19.1%
	// per-line vector: 37.9%
	// per-word vector: 200%
}
