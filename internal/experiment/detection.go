package experiment

import (
	"fmt"
	"io"
	"math/rand/v2"

	"cord/internal/baseline"
	"cord/internal/chaos"
	"cord/internal/checkpoint"
	"cord/internal/core"
	"cord/internal/sim"
	"cord/internal/trace"
	"cord/internal/workload"
)

// Options configures an experiment campaign.
type Options struct {
	// Scale grows the workloads (1 = test scale, the default).
	Scale int
	// Threads is the processor/thread count (default 4, as in §3.1).
	Threads int
	// Injections is the number of fault-injection runs per application
	// (default 40; the paper uses 20–100).
	Injections int
	// BaseSeed varies the whole campaign.
	BaseSeed uint64
	// Apps selects the applications (default: all of Table 1).
	Apps []workload.App
	// Progress, when non-nil, receives one line per completed app. The
	// writer is wrapped so concurrent workers never interleave mid-line.
	Progress io.Writer
	// Procs is the number of host worker goroutines the campaign fans its
	// independent simulation runs across (default runtime.NumCPU()). It has
	// no effect on results: seeds, not execution order, define every run,
	// and aggregation happens in deterministic index order. Not to be
	// confused with Threads, the count of simulated processors.
	Procs int
	// FTShards is the shard count of the FastTrack baseline's shadow memory
	// (default 1). Like Procs, it has no effect on results: sharding only
	// partitions shadow state by address, so race counts, metadata words,
	// and the race list are identical at any shard count.
	FTShards int
	// Checkpoint, when non-nil, makes the campaign crash-safe: every
	// completed run's outcome is journaled under its deterministic identity,
	// and runs already journaled (by this process or a crashed predecessor
	// with the same campaign configuration) are skipped, their outcomes
	// loaded instead of re-simulated. Resumed campaigns produce artifacts
	// byte-identical to uninterrupted ones. It has no effect on results.
	Checkpoint *checkpoint.Journal
	// Retry bounds per-run retry of transient failures (zero: 3 attempts,
	// 100ms base delay doubling to a 2s cap, deterministic jitter).
	Retry Retry
	// Interrupt, when non-nil and closed, drains the campaign gracefully:
	// no new runs dispatch, in-flight runs finish (and journal), and the
	// entry point returns ErrInterrupted. cordbench wires SIGINT/SIGTERM
	// here.
	Interrupt <-chan struct{}
	// Cancel, when non-nil and closed, aborts in-flight simulations too:
	// every run's engine unwinds (sim.ErrCanceled) instead of finishing.
	// Use Interrupt for graceful drains that must journal their in-flight
	// work; use Cancel when the caller is gone — the cordd campaign
	// endpoint wires the request context's Done channel here.
	Cancel <-chan struct{}
	// Chaos, when non-nil, injects faults into the campaign — transient run
	// failures, journal-write failures, a mid-campaign process crash — for
	// robustness testing (see internal/chaos and the CORD_CHAOS variable).
	// Injected faults never change outcomes: failed attempts are retried
	// and runs are pure functions of their seeds.
	Chaos *chaos.Chaos
}

func (o Options) withDefaults() Options {
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Injections <= 0 {
		o.Injections = 40
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 0xC0DD
	}
	if o.Apps == nil {
		o.Apps = workload.All()
	}
	if o.Procs <= 0 {
		o.Procs = defaultProcs()
	}
	o.Retry = o.Retry.withDefaults()
	o.Progress = newSyncWriter(o.Progress)
	return o
}

// Detector configuration labels, in campaign column order.
const (
	cfgIdeal  = "Ideal"
	cfgVecInf = "Vector/InfCache"
	cfgVecL2  = "Vector/L2Cache"
	cfgVecL1  = "Vector/L1Cache"
	cfgFT     = "FastTrack"
	cfgD1     = "CORD(D=1)"
	cfgD4     = "CORD(D=4)"
	cfgD16    = "CORD(D=16)"
	cfgD256   = "CORD(D=256)"
)

// Configs lists the detector configurations of the detection campaign.
func Configs() []string {
	return []string{cfgIdeal, cfgVecInf, cfgVecL2, cfgVecL1, cfgFT, cfgD1, cfgD4, cfgD16, cfgD256}
}

// AppDetection aggregates one application's injection campaign.
type AppDetection struct {
	App        string
	Injected   int // runs in which an instance was actually removed
	Hung       int // deadlocked runs (excluded from rates)
	Manifested int // runs where the Ideal oracle found >= 1 data race

	Problems map[string]int // config -> runs with >= 1 reported race
	Races    map[string]int // config -> total reported races

	FalsePositives int // CORD reports unconfirmed by the oracle (must be 0)
}

// DetectionResults is the full campaign outcome; the Fig* methods derive the
// paper's figures from it.
type DetectionResults struct {
	Apps    []AppDetection
	Configs []string
}

// injectionOutcome is one fault-injection run's contribution to its
// application's aggregate. Runs record into their own outcome value (keyed
// by run index) so the campaign can execute them in any order and on any
// number of workers without changing the aggregate. The json tags are the
// checkpoint-journal wire encoding: a resumed campaign decodes these exact
// fields back, so the aggregation cannot tell a journaled outcome from a
// fresh one.
type injectionOutcome struct {
	Landed     bool            `json:"landed"` // the injection target existed in this run
	Hung       bool            `json:"hung,omitempty"`
	Manifested bool            `json:"manifested,omitempty"`
	Problems   map[string]bool `json:"problems,omitempty"`
	Races      map[string]int  `json:"races,omitempty"`
	FalsePos   int             `json:"false_pos,omitempty"`
}

// countOutcome is the journaled outcome of one phase-1 sizing run: the
// injection targets drawn for the app.
type countOutcome struct {
	Targets []uint64 `json:"targets"`
}

// RunDetection executes the §3.4 methodology: for each application, inject
// one randomly chosen dynamic synchronization removal per run, observe the
// same execution with every detector configuration, and aggregate detection
// outcomes. The campaign's (apps × injections) runs are independent and fan
// out across o.Procs workers; results are identical at any worker count
// because every run's seed and target derive only from (BaseSeed, app
// index, injection index) and aggregation walks runs in index order.
func RunDetection(o Options) (*DetectionResults, error) {
	o = o.withDefaults()
	res := &DetectionResults{Configs: Configs()}

	// Phase 1: size every application with one plain run and draw its
	// injection targets. Targets come from a per-app PCG stream consumed in
	// injection order — the same stream and order as a serial campaign —
	// which is what keeps parallel campaigns bit-identical.
	counts := make([]countOutcome, len(o.Apps))
	if err := o.forEach(len(o.Apps), func(appIdx int) error {
		return o.journaledRun("detect-count", appIdx, 0, &counts[appIdx], func() error {
			out, err := o.countRun(appIdx)
			if err != nil {
				return err
			}
			counts[appIdx] = out
			return nil
		})
	}); err != nil {
		return nil, err
	}

	// Phase 2: the flat injection-run list, each run one independent
	// simulation writing into its own index-keyed outcome cell.
	outcomes := make([][]injectionOutcome, len(o.Apps))
	for appIdx := range o.Apps {
		outcomes[appIdx] = make([]injectionOutcome, o.Injections)
	}
	if err := o.forEach(len(o.Apps)*o.Injections, func(k int) error {
		appIdx, i := k/o.Injections, k%o.Injections
		return o.journaledRun("detect-inject", appIdx, i, &outcomes[appIdx][i], func() error {
			out, err := o.runInjection(appIdx, i, counts[appIdx].Targets[i])
			if err != nil {
				return err
			}
			outcomes[appIdx][i] = out
			return nil
		})
	}); err != nil {
		return nil, err
	}

	// Phase 3: aggregate in (app, injection) index order.
	for appIdx, app := range o.Apps {
		agg := AppDetection{
			App:      app.Name,
			Problems: map[string]int{},
			Races:    map[string]int{},
		}
		for _, out := range outcomes[appIdx] {
			if !out.Landed {
				continue // target beyond this run's instance count
			}
			if out.Hung {
				agg.Hung++
				continue
			}
			agg.Injected++
			if out.Manifested {
				agg.Manifested++
			}
			for _, cfg := range res.Configs {
				if out.Problems[cfg] {
					agg.Problems[cfg]++
				}
				agg.Races[cfg] += out.Races[cfg]
			}
			agg.FalsePositives += out.FalsePos
		}
		res.Apps = append(res.Apps, agg)
		if o.Progress != nil {
			fmt.Fprintf(o.Progress, "%-10s injected=%d hung=%d manifested=%d ideal=%d cordD16=%d vecL2=%d fp=%d\n",
				app.Name, agg.Injected, agg.Hung, agg.Manifested,
				agg.Problems[cfgIdeal], agg.Problems[cfgD16], agg.Problems[cfgVecL2], agg.FalsePositives)
		}
	}
	return res, nil
}

// countRun is the detection campaign's phase-1 sizing run for one
// application: simulate it un-injected to count dynamic sync instances, then
// draw the campaign's injection targets from a per-app PCG stream consumed
// in injection order. The draw depends only on (BaseSeed, appIdx,
// Injections), which is what lets a shard worker recompute an app's targets
// independently and land on exactly the bytes the coordinator expects.
func (o Options) countRun(appIdx int) (countOutcome, error) {
	app := o.Apps[appIdx]
	count, err := o.runSim("counting", app, o.Threads, sim.Config{Seed: o.BaseSeed})
	if err != nil {
		return countOutcome{}, err
	}
	if count.SyncInstances == 0 {
		return countOutcome{}, fmt.Errorf("experiment: %s has no injectable synchronization", app.Name)
	}
	rng := rand.New(rand.NewPCG(o.BaseSeed^uint64(appIdx*7919+1), 0xD1CE))
	// Stay below the observed count so the target exists in runs whose
	// instance count varies slightly with the seed.
	maxTarget := count.SyncInstances * 9 / 10
	if maxTarget == 0 {
		maxTarget = 1
	}
	ts := make([]uint64, o.Injections)
	for i := range ts {
		ts[i] = 1 + rng.Uint64N(maxTarget)
	}
	return countOutcome{Targets: ts}, nil
}

// runInjection performs one fault-injection simulation: remove the target-th
// dynamic sync instance and observe the execution with every detector
// configuration at once.
func (o Options) runInjection(appIdx, i int, target uint64) (injectionOutcome, error) {
	app := o.Apps[appIdx]
	seed := o.BaseSeed + uint64(appIdx)*1_000_003 + uint64(i)*97

	ideal := baseline.NewIdeal(o.Threads)
	vecInf := baseline.NewVecCache(baseline.VecConfig{Threads: o.Threads, Procs: o.Threads, Bound: baseline.BoundInf})
	vecL2 := baseline.NewVecCache(baseline.VecConfig{Threads: o.Threads, Procs: o.Threads, Bound: baseline.BoundL2})
	vecL1 := baseline.NewVecCache(baseline.VecConfig{Threads: o.Threads, Procs: o.Threads, Bound: baseline.BoundL1})
	ft := baseline.NewFastTrack(baseline.FastTrackConfig{Threads: o.Threads, Shards: o.FTShards})
	cords := map[string]*core.Detector{
		cfgD1:   core.New(core.Config{Threads: o.Threads, Procs: o.Threads, D: 1}),
		cfgD4:   core.New(core.Config{Threads: o.Threads, Procs: o.Threads, D: 4}),
		cfgD16:  core.New(core.Config{Threads: o.Threads, Procs: o.Threads, D: 16}),
		cfgD256: core.New(core.Config{Threads: o.Threads, Procs: o.Threads, D: 256}),
	}
	obs := []trace.Observer{ideal, vecInf, vecL2, vecL1, ft,
		cords[cfgD1], cords[cfgD4], cords[cfgD16], cords[cfgD256]}

	run, err := o.runSim(fmt.Sprintf("injecting %d into", i), app, o.Threads, sim.Config{
		Seed: seed, InjectSkip: target, Observers: obs,
	})
	if err != nil {
		return injectionOutcome{}, err
	}
	if run.InjectedThread < 0 {
		return injectionOutcome{}, nil
	}
	if run.Hung {
		return injectionOutcome{Landed: true, Hung: true}, nil
	}
	out := injectionOutcome{
		Landed:     true,
		Manifested: ideal.ProblemDetected(),
		Problems:   map[string]bool{},
		Races:      map[string]int{},
	}
	record := func(name string, problem bool, races int) {
		out.Problems[name] = problem
		out.Races[name] = races
	}
	record(cfgIdeal, ideal.ProblemDetected(), ideal.RaceCount())
	record(cfgVecInf, vecInf.ProblemDetected(), vecInf.RaceCount())
	record(cfgVecL2, vecL2.ProblemDetected(), vecL2.RaceCount())
	record(cfgVecL1, vecL1.ProblemDetected(), vecL1.RaceCount())
	record(cfgFT, ft.ProblemDetected(), ft.RaceCount())
	// FastTrack's happens-before model must agree with the Ideal oracle:
	// every report it makes has to be confirmable, exactly like CORD's.
	for _, r := range ft.Races() {
		if !ideal.Confirms(r) {
			out.FalsePos++
		}
	}
	for name, d := range cords {
		record(name, d.ProblemDetected(), d.RaceCount())
		for _, r := range d.Races() {
			if !ideal.Confirms(r) {
				out.FalsePos++
			}
		}
	}
	return out, nil
}

// figure builds a per-app figure where each column is numerator[config] /
// denominator, plus an aggregate Average row computed from summed counts.
func (r *DetectionResults) figure(id, title string, cols []string,
	num func(a AppDetection, cfg string) int, den func(a AppDetection, cfg string) int, notes ...string) Figure {

	f := Figure{ID: id, Title: title, Columns: cols, Notes: notes}
	sumNum := make([]int, len(cols))
	sumDen := make([]int, len(cols))
	for _, a := range r.Apps {
		row := Row{Label: a.App}
		for i, c := range cols {
			n, d := num(a, c), den(a, c)
			row.Values = append(row.Values, ratio(n, d))
			sumNum[i] += n
			sumDen[i] += d
		}
		f.Rows = append(f.Rows, row)
	}
	avg := Row{Label: "Average"}
	for i := range cols {
		avg.Values = append(avg.Values, ratio(sumNum[i], sumDen[i]))
	}
	f.Rows = append(f.Rows, avg)
	return f
}

// Fig10 is the percentage of injected removals that produced at least one
// data race, as judged by the Ideal oracle.
func (r *DetectionResults) Fig10() Figure {
	return r.figure("fig10",
		"Injected dynamic instances of missing synchronization that caused >=1 data race",
		[]string{"manifested"},
		func(a AppDetection, _ string) int { return a.Manifested },
		func(a AppDetection, _ string) int { return a.Injected },
		"denominator: injection runs that completed (hung runs excluded)")
}

// Fig12 is CORD's problem detection rate relative to the vector-clock scheme
// and to Ideal (paper: 83% and 77% on average), with the FastTrack epoch
// baseline's rate vs Ideal alongside for calibration.
func (r *DetectionResults) Fig12() Figure {
	f := Figure{ID: "fig12", Title: "CORD problem detection rate",
		Columns: []string{"vs Vector Clock", "vs Ideal", "FastTrack vs Ideal"}}
	var sn, sv, si, sf int
	for _, a := range r.Apps {
		f.Rows = append(f.Rows, Row{Label: a.App, Values: []float64{
			ratio(a.Problems[cfgD16], a.Problems[cfgVecL2]),
			ratio(a.Problems[cfgD16], a.Problems[cfgIdeal]),
			ratio(a.Problems[cfgFT], a.Problems[cfgIdeal]),
		}})
		sn += a.Problems[cfgD16]
		sv += a.Problems[cfgVecL2]
		si += a.Problems[cfgIdeal]
		sf += a.Problems[cfgFT]
	}
	f.Rows = append(f.Rows, Row{Label: "Average",
		Values: []float64{ratio(sn, sv), ratio(sn, si), ratio(sf, si)}})
	f.Notes = append(f.Notes, "CORD column is the default D=16 configuration",
		"paper reports 83% vs vector clocks and 77% vs Ideal on average",
		"FastTrack keeps full per-word epochs, so its rate vs Ideal bounds what any first-race-per-variable scheme can reach")
	return f
}

// Fig13 is CORD's raw data-race detection rate relative to the vector-clock
// scheme and to Ideal (paper: ~20% of Ideal).
func (r *DetectionResults) Fig13() Figure {
	f := Figure{ID: "fig13", Title: "CORD raw data race detection rate", Columns: []string{"vs Vector Clock", "vs Ideal"}}
	var sn, sv, si int
	for _, a := range r.Apps {
		f.Rows = append(f.Rows, Row{Label: a.App, Values: []float64{
			ratio(a.Races[cfgD16], a.Races[cfgVecL2]),
			ratio(a.Races[cfgD16], a.Races[cfgIdeal]),
		}})
		sn += a.Races[cfgD16]
		sv += a.Races[cfgVecL2]
		si += a.Races[cfgIdeal]
	}
	f.Rows = append(f.Rows, Row{Label: "Average", Values: []float64{ratio(sn, sv), ratio(sn, si)}})
	f.Notes = append(f.Notes, "paper reports CORD detecting ~20% of Ideal's dynamic races")
	return f
}

// Fig14 is the problem detection rate of the vector-clock configurations
// under increasingly severe buffering limits, relative to Ideal.
func (r *DetectionResults) Fig14() Figure {
	cols := []string{cfgVecInf, cfgVecL2, cfgVecL1}
	return r.figure("fig14",
		"Problem detection with limited access histories (vector clocks, vs Ideal)",
		cols,
		func(a AppDetection, cfg string) int { return a.Problems[cfg] },
		func(a AppDetection, _ string) int { return a.Problems[cfgIdeal] },
		"paper: ~9% of problems lost by L2Cache buffering limits; L1Cache notably worse")
}

// Fig15 is the raw race detection rate for the same storage sweep.
func (r *DetectionResults) Fig15() Figure {
	cols := []string{cfgVecInf, cfgVecL2, cfgVecL1}
	return r.figure("fig15",
		"Raw data race detection with limited access histories (vector clocks, vs Ideal)",
		cols,
		func(a AppDetection, cfg string) int { return a.Races[cfg] },
		func(a AppDetection, _ string) int { return a.Races[cfgIdeal] },
		"paper: even InfCache (2 timestamps/line) misses ~18% of raw races")
}

// Fig16 is the scalar D sweep's problem detection rate relative to the
// vector-clock L2Cache configuration.
func (r *DetectionResults) Fig16() Figure {
	cols := []string{cfgD1, cfgD4, cfgD16, cfgD256}
	return r.figure("fig16",
		"Problem detection with scalar clocks, sync-read window sweep (vs Vector/L2Cache)",
		cols,
		func(a AppDetection, cfg string) int { return a.Problems[cfg] },
		func(a AppDetection, _ string) int { return a.Problems[cfgVecL2] },
		"paper: D=16 detects ~62% more problems than D=1; only barnes improves past D=16")
}

// Fig17 is the raw-race version of the D sweep.
func (r *DetectionResults) Fig17() Figure {
	cols := []string{cfgD1, cfgD4, cfgD16, cfgD256}
	return r.figure("fig17",
		"Raw data race detection with scalar clocks, sync-read window sweep (vs Vector/L2Cache)",
		cols,
		func(a AppDetection, cfg string) int { return a.Races[cfg] },
		func(a AppDetection, _ string) int { return a.Races[cfgVecL2] })
}

// FalsePositives sums oracle-unconfirmed CORD reports across the campaign
// (the paper's no-false-positives claim demands zero).
func (r *DetectionResults) FalsePositives() int {
	n := 0
	for _, a := range r.Apps {
		n += a.FalsePositives
	}
	return n
}
