// Racehunt: the paper's debugging story end to end. A worker pool has a
// subtle synchronization bug — one code path updates a shared statistics
// block without taking its lock. The bug manifests only under particular
// interleavings. CORD runs always-on: when the race finally fires, it is
// reported (with no false positives) and the order log replays the exact
// buggy execution for debugging.
package main

import (
	"fmt"
	"log"

	"cord"
)

// buildBuggyPool returns a task pool where one in eight statistics updates
// skips the lock — the kind of rarely-exercised path that escapes testing
// (§3.4's "elusive synchronization problems").
func buildBuggyPool() cord.Program {
	al := cord.NewAllocator()
	qlock := cord.NewMutex(al)
	slock := cord.NewMutex(al)
	next := al.Alloc(1)
	stats := al.Alloc(4)
	const tasks = 64

	return cord.Program{
		Name:    "buggy-pool",
		Threads: 4,
		Body: func(t int, env *cord.Env) {
			for {
				qlock.Lock(env)
				j := env.Read(next.Word(0))
				env.Write(next.Word(0), j+1)
				qlock.Unlock(env)
				if j >= tasks {
					return
				}
				env.Compute(40) // the task itself
				if j%8 == 3 {
					// BUG: this path forgets the statistics lock.
					env.Write(stats.Word(0), env.Read(stats.Word(0))+1)
					continue
				}
				slock.Lock(env)
				env.Write(stats.Word(0), env.Read(stats.Word(0))+1)
				slock.Unlock(env)
			}
		},
	}
}

func main() {
	// Production: CORD is always on. Run until the bug manifests.
	for seed := uint64(1); ; seed++ {
		det := cord.NewDetector(cord.DefaultDetectorConfig())
		oracle := cord.NewIdealDetector(4)
		res, err := cord.Run(buildBuggyPool(), cord.RunConfig{
			Seed: seed, Jitter: 9,
			Observers: []cord.Observer{oracle, det},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %2d: tasks done, stats=%d, CORD races=%d\n",
			seed, res.Mem.Load(0x80+0), det.RaceCount())

		if det.RaceCount() == 0 {
			continue // the unlocked path didn't collide this time
		}

		// The always-on detector fired. Every report is real:
		for i, r := range det.Races() {
			fmt.Printf("  race %d: %v (oracle confirms: %v)\n", i+1, r, oracle.Confirms(r))
			if i >= 4 {
				fmt.Printf("  ... and %d more reports\n", det.Stats().RaceReports-5)
				break
			}
		}

		// Debugging: replay the exact buggy execution from the order log.
		out, err := cord.RecordAndReplay(buildBuggyPool(), cord.ReplayOptions{Seed: seed, Jitter: 9})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replay of the buggy run: match=%v (log %d bytes)\n",
			out.Match, out.Log.SizeBytes())
		fmt.Println("-> fix: take the statistics lock on the j%8==3 path")
		return
	}
}
