package sim

import (
	"testing"

	"cord/internal/memsys"
	"cord/internal/trace"
)

// counterProg returns a program where each thread increments a shared
// counter n times under a lock.
func counterProg(threads, n int) (Program, memsys.Addr) {
	al := memsys.NewAllocator()
	lock := NewMutex(al)
	ctr := al.Alloc(1).Word(0)
	return Program{
		Name:    "counter",
		Threads: threads,
		Body: func(t int, env *Env) {
			for i := 0; i < n; i++ {
				lock.Lock(env)
				env.Write(ctr, env.Read(ctr)+1)
				lock.Unlock(env)
				env.Compute(3)
			}
		},
	}, ctr
}

func TestLockedCounter(t *testing.T) {
	prog, ctr := counterProg(4, 25)
	res, err := New(Config{Seed: 1, Jitter: 5}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hung {
		t.Fatal("run hung")
	}
	if got := res.Mem.Load(ctr); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
	if res.SyncInstances != 100 {
		t.Fatalf("sync instances = %d, want 100 lock acquires", res.SyncInstances)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed uint64) Result {
		prog, _ := counterProg(4, 20)
		res, err := New(Config{Seed: seed, Jitter: 7}, prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(42), run(42)
	for i := range a.ReadHash {
		if a.ReadHash[i] != b.ReadHash[i] {
			t.Fatalf("same seed, thread %d hash differs", i)
		}
	}
	if a.Cycles != b.Cycles || a.Ops != b.Ops {
		t.Fatalf("same seed, different totals: %+v vs %+v", a, b)
	}
	c := run(43)
	same := true
	for i := range a.ReadHash {
		if a.ReadHash[i] != c.ReadHash[i] {
			same = false
		}
	}
	if same {
		t.Log("seeds 42 and 43 produced identical interleavings (possible but suspicious)")
	}
}

func TestBarrierRendezvous(t *testing.T) {
	al := memsys.NewAllocator()
	bar := NewBarrier(al, 3)
	slots := al.Alloc(3)
	after := al.Alloc(3)
	prog := Program{
		Name:    "bar",
		Threads: 3,
		Body: func(t int, env *Env) {
			env.Write(slots.Word(t), uint64(t)+1)
			bar.Wait(env)
			// Everyone must observe all pre-barrier writes.
			var sum uint64
			for i := 0; i < 3; i++ {
				sum += env.Read(slots.Word(i))
			}
			env.Write(after.Word(t), sum)
		},
	}
	res, err := New(Config{Seed: 9, Jitter: 6}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := res.Mem.Load(after.Word(i)); got != 6 {
			t.Fatalf("thread %d saw sum %d, want 6", i, got)
		}
	}
}

func TestFlagHandoff(t *testing.T) {
	al := memsys.NewAllocator()
	flag := NewFlag(al)
	data := al.Alloc(1).Word(0)
	got := al.Alloc(1).Word(0)
	prog := Program{
		Name:    "flag",
		Threads: 2,
		Body: func(t int, env *Env) {
			if t == 0 {
				env.Compute(50)
				env.Write(data, 77)
				flag.Set(env, 1)
			} else {
				flag.WaitAtLeast(env, 1)
				env.Write(got, env.Read(data))
			}
		},
	}
	res, err := New(Config{Seed: 3}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Mem.Load(got); v != 77 {
		t.Fatalf("consumer read %d, want 77", v)
	}
}

func TestInjectionRemovesLockPair(t *testing.T) {
	// With the lock removed, the data access still happens; sync instance
	// count stays the same (the instance is counted, then skipped).
	prog, ctr := counterProg(2, 10)
	res, err := New(Config{Seed: 5, InjectSkip: 7}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hung {
		t.Fatal("hung")
	}
	// The counter may or may not lose an update depending on interleaving,
	// but it must be in a sane range and the run must finish.
	v := res.Mem.Load(ctr)
	if v < 19 || v > 20 {
		t.Fatalf("counter = %d, want 19 or 20", v)
	}
	if res.SyncInstances != 20 {
		t.Fatalf("sync instances = %d, want 20", res.SyncInstances)
	}
}

func TestInjectionRemovesFlagWait(t *testing.T) {
	al := memsys.NewAllocator()
	flag := NewFlag(al)
	data := al.Alloc(1).Word(0)
	got := al.Alloc(1).Word(0)
	prog := Program{
		Name:    "flaginj",
		Threads: 2,
		Body: func(t int, env *Env) {
			if t == 0 {
				env.Compute(500)
				env.Write(data, 77)
				flag.Set(env, 1)
			} else {
				flag.WaitAtLeast(env, 1)
				env.Write(got, env.Read(data))
			}
		},
	}
	// The only countable instance is the flag wait; remove it. The
	// consumer then races ahead and reads 0 (the producer computes for 500
	// cycles first).
	res, err := New(Config{Seed: 3, InjectSkip: 1}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Mem.Load(got); v != 0 {
		t.Fatalf("consumer read %d, want 0 after removed wait", v)
	}
}

func TestObserverSeesAccesses(t *testing.T) {
	prog, _ := counterProg(2, 5)
	var n, syncs int
	obs := &trace.FuncObserver{Label: "tap", Fn: func(a trace.Access) {
		n++
		if a.Class == trace.Sync {
			syncs++
		}
	}}
	res, err := New(Config{Seed: 1, Observers: []trace.Observer{obs}}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(n) != res.Accesses {
		t.Fatalf("observer saw %d accesses, result says %d", n, res.Accesses)
	}
	if syncs == 0 {
		t.Fatal("no sync accesses observed")
	}
}

func TestHangDetection(t *testing.T) {
	al := memsys.NewAllocator()
	flag := NewFlag(al)
	prog := Program{
		Name:    "hang",
		Threads: 2,
		Body: func(t int, env *Env) {
			if t == 1 {
				flag.WaitAtLeast(env, 1) // never set
			}
		},
	}
	res, err := New(Config{Seed: 1}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hung {
		t.Fatal("expected hang to be detected")
	}
}

func TestMigrationEventsDelivered(t *testing.T) {
	prog, _ := counterProg(2, 10)
	migrations := 0
	obs := &migTap{}
	_, err := New(Config{Seed: 2, MigrateEvery: 5, Observers: []trace.Observer{obs}}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	migrations = obs.n
	if migrations == 0 {
		t.Fatal("expected migration events")
	}
}

type migTap struct {
	trace.FuncObserver
	n int
}

func (m *migTap) Migrate(thread, proc int, instr uint64) { m.n++ }
