package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cord/internal/checkpoint"
	"cord/internal/experiment"
	"cord/internal/httpretry"
	"cord/internal/server"
	"cord/internal/workload"
)

// testPolicy keeps worker-death failover fast: real deployments use
// fleetRetryPolicy's second-scale backoff, tests cannot afford it.
var testPolicy = httpretry.Policy{Attempts: 3, Fallback: time.Millisecond, Cap: 5 * time.Millisecond}

// testDispatch runs fleetDispatch against a static worker list with the
// fast test retry policy and a short registry cadence.
func testDispatch(opts experiment.Options, urls []string, shardRuns int, client *http.Client) error {
	return fleetDispatch(opts, fleetConfig{
		Workers:   urls,
		ShardRuns: shardRuns,
		Client:    client,
		Policy:    testPolicy,
	})
}

// fleetTestOptions is a campaign small enough to dispatch many times in a
// test yet wide enough to shard across apps.
func fleetTestOptions(t *testing.T) experiment.Options {
	t.Helper()
	fft, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	lu, err := workload.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	return experiment.Options{
		BaseSeed:   7,
		Injections: 4,
		Apps:       []workload.App{fft, lu},
		Procs:      2,
	}
}

func openTestJournal(t *testing.T) *checkpoint.Journal {
	t.Helper()
	jl, err := checkpoint.Open(filepath.Join(t.TempDir(), journalName))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jl.Close() })
	return jl
}

// newWorker starts a real cordd worker over httptest.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{Workers: 2}))
	t.Cleanup(ts.Close)
	return ts
}

// newMeteredWorker additionally returns the server handle, so tests can
// assert on its /metrics fleet counters (shards_stolen, shards_requeued are
// bumped by the worker that receives the re-routed shard).
func newMeteredWorker(t *testing.T) (*httptest.Server, *server.Server) {
	t.Helper()
	srv := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

// newSlowWorker starts a real worker whose shard responses are delayed,
// making it the steal victim of any faster peer.
func newSlowWorker(t *testing.T, delay time.Duration) *httptest.Server {
	t.Helper()
	backend := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/campaign/shard") {
			time.Sleep(delay)
		}
		backend.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// registerWorker announces a worker URL to a §7 registry with a TTL that
// outlives any test.
func registerWorker(t *testing.T, client *http.Client, registry, worker string) {
	t.Helper()
	body, err := json.Marshal(server.FleetRegisterRequest{URL: worker, TTLSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(registry+"/v1/fleet/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registering %s: status %d", worker, resp.StatusCode)
	}
}

func TestParseWorkers(t *testing.T) {
	urls, err := parseWorkers(" http://a:8080/ ,https://b")
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 2 || urls[0] != "http://a:8080" || urls[1] != "https://b" {
		t.Fatalf("parseWorkers = %v", urls)
	}
	for _, bad := range []string{"", "http://a,,http://b", "ftp://a", "localhost:8080"} {
		if _, err := parseWorkers(bad); err == nil {
			t.Errorf("parseWorkers(%q) accepted", bad)
		}
	}
}

func TestBuildShards(t *testing.T) {
	meta := experiment.CampaignMeta{Apps: []string{"fft", "lu"}, Injections: 5}
	shards := buildShards(meta, 2)
	var got []string
	runs := 0
	for _, s := range shards {
		got = append(got, s.id)
		runs += s.runs
	}
	want := []string{"fft.0.2", "fft.2.4", "fft.4.5", "lu.0.2", "lu.2.4", "lu.4.5"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("shard ids = %v, want %v", got, want)
	}
	if runs != 10 {
		t.Fatalf("total shard runs = %d, want 10", runs)
	}
}

// TestFleetDispatchEquivalence is the acceptance property end to end: a
// campaign dispatched over two workers, merged through the journal, and
// aggregated by the unchanged RunDetection is byte-identical to a direct
// local run — and simulates nothing locally (every run is a journal hit).
func TestFleetDispatchEquivalence(t *testing.T) {
	opts := fleetTestOptions(t)
	w1, w2 := newWorker(t), newWorker(t)

	jl := openTestJournal(t)
	dopts := opts
	dopts.Checkpoint = jl
	err := testDispatch(dopts, []string{w1.URL, w2.URL}, 3, w1.Client())
	if err != nil {
		t.Fatalf("fleetDispatch: %v", err)
	}

	fleetRes, err := experiment.RunDetection(dopts)
	if err != nil {
		t.Fatalf("aggregating fleet journal: %v", err)
	}
	wantHits := len(opts.Apps) * (1 + opts.Injections)
	if jl.Hits() != wantHits {
		t.Fatalf("aggregation hit the journal %d times, want %d (a miss means a run was silently re-simulated locally)", jl.Hits(), wantHits)
	}

	directRes, err := experiment.RunDetection(opts)
	if err != nil {
		t.Fatalf("direct campaign: %v", err)
	}
	fleetJSON, err := json.Marshal(fleetRes)
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := json.Marshal(directRes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fleetJSON, directJSON) {
		t.Fatalf("fleet-dispatched results differ from a direct run:\nfleet:  %s\ndirect: %s", fleetJSON, directJSON)
	}
}

// TestFleetDispatchWorkerDeathReshards kills one worker mid-campaign (it
// starts failing every shard after its first) and requires the dispatch to
// finish on the survivor with a complete journal.
func TestFleetDispatchWorkerDeathReshards(t *testing.T) {
	opts := fleetTestOptions(t)
	healthy, healthySrv := newMeteredWorker(t)

	// The dying worker answers its plan probe and first shard from a real
	// server, then fails everything — indistinguishable on the wire from a
	// worker that crashed after one shard.
	var shardsSeen atomic.Int64
	backend := server.New(server.Config{Workers: 2})
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/campaign/shard") && shardsSeen.Add(1) > 1 {
			http.Error(w, "worker lost", http.StatusInternalServerError)
			return
		}
		backend.ServeHTTP(w, r)
	}))
	t.Cleanup(dying.Close)

	jl := openTestJournal(t)
	dopts := opts
	dopts.Checkpoint = jl
	err := testDispatch(dopts, []string{healthy.URL, dying.URL}, 1, healthy.Client())
	if err != nil {
		t.Fatalf("fleetDispatch with a dying worker: %v", err)
	}
	if got := shardsSeen.Load(); got < 2 {
		t.Fatalf("dying worker saw %d shard requests; the test never exercised its death", got)
	}

	// The journal must still cover the whole campaign.
	meta := dopts.Meta()
	for appIdx := range meta.Apps {
		if !jl.Has(dopts.DetectCountKey(appIdx)) {
			t.Fatalf("app %d count cell missing after re-shard", appIdx)
		}
		for i := 0; i < meta.Injections; i++ {
			if !jl.Has(dopts.DetectInjectKey(appIdx, i)) {
				t.Fatalf("app %d run %d missing after re-shard", appIdx, i)
			}
		}
	}
	// The rescue is visible on the wire: the survivor executed shards that
	// declared origin=requeue, which its /metrics fleet block counts.
	if got := healthySrv.Metrics().Fleet.ShardsRequeued; got == 0 {
		t.Fatal("survivor executed no origin=requeue shards (fleet.shards_requeued = 0)")
	}
}

// TestFleetDispatchRetryAfter verifies the 429 path: a worker that throttles
// each shard's first attempt is retried (honoring Retry-After) rather than
// declared dead.
func TestFleetDispatchRetryAfter(t *testing.T) {
	opts := fleetTestOptions(t)
	opts.Injections = 2
	var throttled atomic.Int64
	firstAttempt := make(map[string]bool)
	backend := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/campaign/shard") {
			var req server.CampaignShardRequest
			body, _ := io.ReadAll(r.Body)
			_ = json.Unmarshal(body, &req)
			if !firstAttempt[req.ShardID] {
				firstAttempt[req.ShardID] = true
				throttled.Add(1)
				w.Header().Set("Retry-After", "0")
				http.Error(w, `{"code":"queue_full"}`, http.StatusTooManyRequests)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		backend.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	jl := openTestJournal(t)
	dopts := opts
	dopts.Checkpoint = jl
	if err := testDispatch(dopts, []string{ts.URL}, 1, ts.Client()); err != nil {
		t.Fatalf("fleetDispatch through 429s: %v", err)
	}
	if throttled.Load() == 0 {
		t.Fatal("the throttling path was never exercised")
	}
}

// TestFleetDispatchFingerprintSkew: a worker whose plan fingerprint
// disagrees must abort the dispatch — merging its cells would corrupt the
// campaign silently.
func TestFleetDispatchFingerprintSkew(t *testing.T) {
	opts := fleetTestOptions(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(server.CampaignPlanResponse{
			Schema:      server.SchemaVersion,
			Fingerprint: "deadbeefdeadbeef",
		})
	}))
	t.Cleanup(ts.Close)

	dopts := opts
	dopts.Checkpoint = openTestJournal(t)
	err := testDispatch(dopts, []string{ts.URL}, 2, ts.Client())
	if err == nil || !strings.Contains(err.Error(), "refusing to merge") {
		t.Fatalf("fingerprint skew not fatal: %v", err)
	}
}

// TestFleetDispatchBadPlanIsFatal: a worker that 400s the plan (e.g. the
// configuration is out of its request domain) is a campaign problem, not a
// worker problem — no point failing over.
func TestFleetDispatchBadPlanIsFatal(t *testing.T) {
	opts := fleetTestOptions(t)
	opts.Injections = server.MaxInjections + 1
	ts := newWorker(t)
	dopts := opts
	dopts.Checkpoint = openTestJournal(t)
	err := testDispatch(dopts, []string{ts.URL}, 2, ts.Client())
	if err == nil || !strings.Contains(err.Error(), "rejected the campaign plan") {
		t.Fatalf("bad plan not fatal: %v", err)
	}
}

// TestFleetDispatchAllWorkersUnreachable: with no usable worker the
// dispatch fails up front instead of hanging.
func TestFleetDispatchAllWorkersUnreachable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	client := dead.Client()
	dead.Close() // nothing is listening anymore

	opts := fleetTestOptions(t)
	opts.Checkpoint = openTestJournal(t)
	err := testDispatch(opts, []string{dead.URL}, 2, client)
	if err == nil || !strings.Contains(err.Error(), "none of the 1 workers is usable") {
		t.Fatalf("unreachable fleet not fatal: %v", err)
	}
}

// TestFleetDispatchResumeSkipsJournaledShards: a fully journaled campaign
// dispatches zero shards (the -resume fast path).
func TestFleetDispatchResumeSkipsJournaledShards(t *testing.T) {
	opts := fleetTestOptions(t)
	jl := openTestJournal(t)

	// Journal the whole campaign locally first.
	local := opts
	local.Checkpoint = jl
	if _, err := experiment.RunDetection(local); err != nil {
		t.Fatal(err)
	}

	var shardPosts atomic.Int64
	backend := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/campaign/shard") {
			shardPosts.Add(1)
		}
		backend.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	if err := testDispatch(local, []string{ts.URL}, 2, ts.Client()); err != nil {
		t.Fatalf("fleetDispatch over a complete journal: %v", err)
	}
	if n := shardPosts.Load(); n != 0 {
		t.Fatalf("complete journal still dispatched %d shards", n)
	}
}

// TestFleetDispatchStealsFromSlowWorker pairs a fast worker with one that
// grinds through every shard slowly: the fast worker must drain its own
// queue and then steal from the slow one's backlog, and the stolen shards
// are wire-visible on the fast worker's /metrics fleet block.
func TestFleetDispatchStealsFromSlowWorker(t *testing.T) {
	opts := fleetTestOptions(t)
	opts.Injections = 6 // 12 single-run shards across the two apps
	fast, fastSrv := newMeteredWorker(t)
	slow := newSlowWorker(t, 40*time.Millisecond)

	dopts := opts
	dopts.Checkpoint = openTestJournal(t)
	if err := testDispatch(dopts, []string{fast.URL, slow.URL}, 1, fast.Client()); err != nil {
		t.Fatalf("fleetDispatch with a slow worker: %v", err)
	}
	if got := fastSrv.Metrics().Fleet.ShardsStolen; got == 0 {
		t.Fatal("fast worker executed no origin=steal shards (fleet.shards_stolen = 0)")
	}
	// Stealing must not cost coverage: the whole campaign is journaled.
	meta := dopts.Meta()
	for appIdx := range meta.Apps {
		for i := 0; i < meta.Injections; i++ {
			if !dopts.Checkpoint.Has(dopts.DetectInjectKey(appIdx, i)) {
				t.Fatalf("app %d run %d missing after stealing", appIdx, i)
			}
		}
	}
}

// TestFleetDispatchRegistryLateJoiner resolves the fleet from a §7 registry:
// the campaign starts on one slow worker, a second worker registers while it
// runs, and the membership poll must probe the joiner and put it to work.
func TestFleetDispatchRegistryLateJoiner(t *testing.T) {
	opts := fleetTestOptions(t) // 8 single-run shards
	registry := newWorker(t)
	slow := newSlowWorker(t, 30*time.Millisecond)

	var joinerShards atomic.Int64
	joinerBackend := server.New(server.Config{Workers: 2})
	joiner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/campaign/shard") {
			joinerShards.Add(1)
		}
		joinerBackend.ServeHTTP(w, r)
	}))
	t.Cleanup(joiner.Close)

	registerWorker(t, registry.Client(), registry.URL, slow.URL)
	// The joiner announces itself a few slow shards into the campaign (a
	// raw POST: t.Fatal is not allowed off the test goroutine — if it fails,
	// the joinerShards assertion below reports it).
	go func() {
		time.Sleep(60 * time.Millisecond)
		body, _ := json.Marshal(server.FleetRegisterRequest{URL: joiner.URL, TTLSeconds: 300})
		resp, err := http.Post(registry.URL+"/v1/fleet/register", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()

	dopts := opts
	dopts.Checkpoint = openTestJournal(t)
	err := fleetDispatch(dopts, fleetConfig{
		Registry:     registry.URL,
		ShardRuns:    1,
		Client:       registry.Client(),
		Policy:       testPolicy,
		PollInterval: 10 * time.Millisecond,
		JoinGrace:    2 * time.Second,
	})
	if err != nil {
		t.Fatalf("registry dispatch: %v", err)
	}
	if joinerShards.Load() == 0 {
		t.Fatal("late joiner executed no shards; membership polling never picked it up")
	}
	meta := dopts.Meta()
	for appIdx := range meta.Apps {
		for i := 0; i < meta.Injections; i++ {
			if !dopts.Checkpoint.Has(dopts.DetectInjectKey(appIdx, i)) {
				t.Fatalf("app %d run %d missing after late join", appIdx, i)
			}
		}
	}
}

// TestFleetDispatchRegistryGraceExpires: in registry mode losing every
// worker parks the campaign for JoinGrace, and with no joiner the dispatch
// fails with the grace diagnosis instead of hanging.
func TestFleetDispatchRegistryGraceExpires(t *testing.T) {
	registry := newWorker(t)

	// The worker answers exactly one plan probe (the coordinator's), then
	// fails everything — so after its death the membership poll cannot
	// revive it either.
	var plans atomic.Int64
	backend := server.New(server.Config{Workers: 2})
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/campaign/plan") && plans.Add(1) == 1 {
			backend.ServeHTTP(w, r)
			return
		}
		http.Error(w, "worker lost", http.StatusInternalServerError)
	}))
	t.Cleanup(dying.Close)
	registerWorker(t, registry.Client(), registry.URL, dying.URL)

	opts := fleetTestOptions(t)
	opts.Checkpoint = openTestJournal(t)
	err := fleetDispatch(opts, fleetConfig{
		Registry:     registry.URL,
		ShardRuns:    2,
		Client:       registry.Client(),
		Policy:       testPolicy,
		PollInterval: 10 * time.Millisecond,
		JoinGrace:    100 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "none joined within") {
		t.Fatalf("grace expiry not reported: %v", err)
	}
}

// TestStartProgressServer: the coordinator's progress endpoint binds an
// ephemeral port and serves the §7 resource.
func TestStartProgressServer(t *testing.T) {
	base, stop, err := startProgressServer("127.0.0.1:0", func() server.CampaignProgress {
		return server.CampaignProgress{Campaign: "bench-f00", Fingerprint: "f00", CellsDone: 1, CellsTotal: 4}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get(base + "/v1/campaign/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress status = %d", resp.StatusCode)
	}
	var prog server.CampaignProgress
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	if prog.Schema != server.SchemaVersion || prog.Campaign != "bench-f00" || prog.CellsDone != 1 {
		t.Fatalf("progress = %+v", prog)
	}
}

// TestFleetDispatchInterrupt: an interrupt closed before dispatch returns
// ErrInterrupted without sending work.
func TestFleetDispatchInterrupt(t *testing.T) {
	opts := fleetTestOptions(t)
	opts.Checkpoint = openTestJournal(t)
	interrupt := make(chan struct{})
	close(interrupt)
	opts.Interrupt = interrupt

	ts := newWorker(t)
	err := testDispatch(opts, []string{ts.URL}, 2, ts.Client())
	if !errors.Is(err, experiment.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}
