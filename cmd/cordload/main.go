// Command cordload drives a running cordd with a concurrent-client sweep
// and reports throughput and latency per stage — the load-testing workflow
// of EXPERIMENTS.md. It is a pure stdlib client: point it at any cordd.
//
// Usage:
//
//	cordd -addr :8080 &
//	cordload -addr http://127.0.0.1:8080 -sweep 1,2,4,8 -n 32 -app fft
//
// Each stage issues -n detect sessions (seeds base, base+1, ...) from the
// stage's client count and prints wall-clock, requests/s and latency
// quantiles. A 429 is backpressure, not failure: the client honors the
// server's Retry-After hint (capped at -retry-cap) and retries the session
// up to -retries attempts, counting retries separately so pushback stays
// visible in the summary. The final section echoes the server's /metrics
// session counters.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// detectRequest mirrors server.DetectRequest; cordload speaks the wire
// format only, so it can be built and pointed at any cordd without version
// coupling.
type detectRequest struct {
	App     string `json:"app"`
	Seed    uint64 `json:"seed"`
	Scale   int    `json:"scale,omitempty"`
	Threads int    `json:"threads,omitempty"`
	D       int    `json:"d,omitempty"`
}

// parseSweep parses a comma-separated list of client counts.
func parseSweep(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-sweep must name at least one client count")
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-sweep entry %q: %v", part, err)
		}
		if n < 1 {
			return nil, fmt.Errorf("-sweep entry %d: client counts must be at least 1", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// validateFlags rejects out-of-domain load parameters up front (exit 2 +
// usage), like every other cord binary.
func validateFlags(n, scale, threads, d, retries int, retryCap time.Duration) error {
	if n < 1 {
		return fmt.Errorf("-n must be at least 1")
	}
	if scale < 1 {
		return fmt.Errorf("-scale must be at least 1")
	}
	if threads < 1 {
		return fmt.Errorf("-threads must be at least 1")
	}
	if d < 1 {
		return fmt.Errorf("-d must be at least 1")
	}
	if retries < 1 {
		return fmt.Errorf("-retries must be at least 1 (the first attempt counts)")
	}
	if retryCap <= 0 {
		return fmt.Errorf("-retry-cap must be positive")
	}
	return nil
}

// retryPolicy is how a stage treats 429 pushback: up to attempts tries per
// session, sleeping the server's Retry-After hint (or a doubling fallback
// starting at fallback) between them, each sleep capped at cap.
type retryPolicy struct {
	attempts int
	fallback time.Duration
	cap      time.Duration
}

// retryAfter converts one 429's Retry-After header into a sleep. Both wire
// forms are honored — delta-seconds and HTTP-date — and a missing or
// malformed header falls back to doubling backoff by attempt (1-based).
// Every result is clamped to [0, cap].
func (p retryPolicy) retryAfter(header string, attempt int) time.Duration {
	d := -1 * time.Second
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	} else if at, err := http.ParseTime(header); err == nil {
		d = time.Until(at)
	}
	if d < 0 { // absent, malformed, or already in the past
		d = p.fallback
		for i := 1; i < attempt; i++ {
			d *= 2
			if d >= p.cap {
				break
			}
		}
	}
	if d > p.cap {
		d = p.cap
	}
	if d < 0 {
		d = 0
	}
	return d
}

type stageResult struct {
	clients   int
	ok        int
	retries   int // 429 responses that were retried after Retry-After
	errors    int
	wall      time.Duration
	latencies []time.Duration
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of the cordd to load")
		app      = flag.String("app", "fft", "application for the detect sessions")
		seed     = flag.Uint64("seed", 1, "base seed; request i uses seed+i")
		scale    = flag.Int("scale", 1, "workload scale factor")
		threads  = flag.Int("threads", 4, "simulated threads")
		d        = flag.Int("d", 16, "CORD sync-read window D")
		n        = flag.Int("n", 32, "requests per sweep stage")
		sweep    = flag.String("sweep", "1,2,4,8", "comma-separated concurrent-client counts")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-request client timeout")
		retries  = flag.Int("retries", 5, "attempts per session before a 429 becomes a hard error")
		retryCap = flag.Duration("retry-cap", 5*time.Second, "upper bound on one Retry-After sleep")
	)
	flag.Parse()

	if err := validateFlags(*n, *scale, *threads, *d, *retries, *retryCap); err != nil {
		fmt.Fprintf(os.Stderr, "cordload: %v\n", err)
		flag.Usage()
		return 2
	}
	stages, err := parseSweep(*sweep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordload: %v\n", err)
		flag.Usage()
		return 2
	}

	client := &http.Client{Timeout: *timeout}
	if _, err := fetch(client, *addr+"/healthz"); err != nil {
		fmt.Fprintf(os.Stderr, "cordload: server not healthy: %v\n", err)
		return 1
	}

	policy := retryPolicy{attempts: *retries, fallback: 250 * time.Millisecond, cap: *retryCap}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "clients\tok\tretries\terrors\twall\treq/s\tp50\tp95\tmax")
	for _, c := range stages {
		res := runStage(client, *addr, c, *n, policy, detectRequest{
			App: *app, Seed: *seed, Scale: *scale, Threads: *threads, D: *d,
		})
		sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
		rps := float64(res.ok) / res.wall.Seconds()
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.2fs\t%.1f\t%s\t%s\t%s\n",
			res.clients, res.ok, res.retries, res.errors, res.wall.Seconds(), rps,
			quantile(res.latencies, 0.50).Round(time.Millisecond),
			quantile(res.latencies, 0.95).Round(time.Millisecond),
			quantile(res.latencies, 1.00).Round(time.Millisecond))
		w.Flush()
		if res.errors > 0 {
			fmt.Fprintf(os.Stderr, "cordload: stage %d finished with %d hard errors\n", c, res.errors)
		}
	}

	metrics, err := fetch(client, *addr+"/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordload: fetching /metrics: %v\n", err)
		return 1
	}
	fmt.Println("\nserver /metrics after the sweep:")
	os.Stdout.Write(metrics)
	return 0
}

// runStage issues n detect sessions from c concurrent clients; request i
// uses seed base+i so every session is distinct work. 429 responses retry
// under the stage's policy; a session that stays throttled through every
// attempt counts as one hard error.
func runStage(client *http.Client, addr string, c, n int, policy retryPolicy, base detectRequest) stageResult {
	res := stageResult{clients: c}
	var next atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for k := 0; k < c; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				req := base
				req.Seed += uint64(i)
				body, _ := json.Marshal(req)
				for attempt := 1; ; attempt++ {
					t0 := time.Now()
					resp, err := client.Post(addr+"/v1/detect", "application/json", bytes.NewReader(body))
					lat := time.Since(t0)
					throttled := false
					var sleep time.Duration
					mu.Lock()
					switch {
					case err != nil:
						res.errors++
					case resp.StatusCode == http.StatusOK:
						res.ok++
						res.latencies = append(res.latencies, lat)
					case resp.StatusCode == http.StatusTooManyRequests && attempt < policy.attempts:
						res.retries++
						throttled = true
						sleep = policy.retryAfter(resp.Header.Get("Retry-After"), attempt)
					default: // non-429 failure, or throttled out of attempts
						res.errors++
					}
					mu.Unlock()
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					if !throttled {
						break
					}
					time.Sleep(sleep)
				}
			}
		}()
	}
	wg.Wait()
	res.wall = time.Since(start)
	return res
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return b, nil
}
