package workload

import (
	"cord/internal/memsys"
	"cord/internal/sim"
)

// Barnes mimics the Barnes-Hut tree code: threads insert bodies into a
// shared tree under fine-grain per-node locks, then compute forces by
// read-only traversals separated from the build by barriers. Conflicting
// node updates from different threads are separated by tens to a couple
// hundred unrelated lock operations, which is why barnes is the application
// whose detection keeps improving from D=16 to D=256 (Fig. 16).
func Barnes(scale, threads int) sim.Program {
	if scale < 1 {
		scale = 1
	}
	al := memsys.NewAllocator()
	nodes := 4096 * scale // 64 KB tree: random walks stress even the L2 bound
	nlocks := 96
	tree := al.Alloc(nodes * 4)
	locks := al.AllocPadded(nlocks)
	accel := al.Alloc(threads * 16) // per-thread, disjoint
	bar := sim.NewBarrier(al, threads)
	perThread := 96 * scale
	steps := 2

	return sim.Program{
		Name:    "barnes",
		Threads: threads,
		Body: func(t int, env *sim.Env) {
			rng := newLCG(uint64(t) + 7)
			for s := 0; s < steps; s++ {
				// Build: insert bodies under per-node locks.
				for i := 0; i < perThread; i++ {
					n := rng.n(nodes)
					env.Lock(locks.Word(n % nlocks))
					touch(env, tree, n*4, 3)
					env.Unlock(locks.Word(n % nlocks))
					env.Compute(8)
				}
				bar.Wait(env)
				// Force: read-only tree walks, private accumulation.
				for i := 0; i < perThread; i++ {
					sum := uint64(0)
					for w := 0; w < 8; w++ {
						sum += env.Read(tree.Word(rng.n(nodes * 4)))
					}
					env.Write(accel.Word(t*16+i%16), sum)
					env.Compute(12)
				}
				bar.Wait(env)
			}
		},
	}
}

// Cholesky mimics sparse factorization driven by a central task queue:
// very frequent, very short critical sections (the queue lock plus a
// per-column lock per task). The constant timestamp churn makes it the
// worst case for address/timestamp-bus contention — the paper's 3%
// overhead outlier (Fig. 11).
func Cholesky(scale, threads int) sim.Program {
	if scale < 1 {
		scale = 1
	}
	al := memsys.NewAllocator()
	tasks := 220 * scale
	colLocks := 16
	cols := al.Alloc(tasks * 8)
	locks := al.AllocPadded(colLocks)
	qlock := al.AllocPadded(1).Word(0)
	next := al.AllocPadded(1).Word(0)
	done := al.AllocPadded(1).Word(0)

	return sim.Program{
		Name:    "cholesky",
		Threads: threads,
		Body: func(t int, env *sim.Env) {
			for {
				env.Lock(qlock)
				j := env.Read(next)
				env.Write(next, j+1)
				env.Unlock(qlock)
				if int(j) >= tasks {
					break
				}
				// Read a predecessor column under its own lock, then
				// update column j under j's lock.
				if j > 0 {
					pl := locks.Word((int(j) - 1) % colLocks)
					env.Lock(pl)
					scan(env, cols, (int(j)-1)*8, 2)
					env.Unlock(pl)
				}
				l := locks.Word(int(j) % colLocks)
				env.Lock(l)
				touch(env, cols, int(j)*8, 5)
				env.Unlock(l)
				env.Compute(4)
			}
			// Completion count, then everyone spins on the flag.
			env.Lock(qlock)
			d := env.Read(done) + 1
			env.Write(done, d)
			env.Unlock(qlock)
		},
	}
}

// FMM mimics the fast multipole method's cell interactions: almost every
// lock acquisition protects a cell owned by the acquiring thread that no
// other thread is touching, so removing an instance of synchronization
// usually introduces no new cross-thread ordering — the reason most fmm
// injections produce no data race at all (Fig. 10).
func FMM(scale, threads int) sim.Program {
	if scale < 1 {
		scale = 1
	}
	al := memsys.NewAllocator()
	cellsPer := 16
	cells := al.Alloc(threads * cellsPer * 4)
	locks := al.AllocPadded(threads * cellsPer)
	bar := sim.NewBarrier(al, threads)
	rounds := 3
	updates := 40 * scale

	return sim.Program{
		Name:    "fmm",
		Threads: threads,
		Body: func(t int, env *sim.Env) {
			rng := newLCG(uint64(t)*13 + 5)
			for r := 0; r < rounds; r++ {
				for i := 0; i < updates; i++ {
					var cell int
					if rng.n(100) < 92 {
						cell = t*cellsPer + rng.n(cellsPer) // own cell
					} else {
						cell = rng.n(threads * cellsPer) // occasional remote
					}
					env.Lock(locks.Word(cell))
					touch(env, cells, cell*4, 3)
					env.Unlock(locks.Word(cell))
					env.Compute(10)
				}
				bar.Wait(env)
			}
		},
	}
}

// Radiosity mimics the hierarchical radiosity solver: per-thread task
// deques with work stealing, plus per-patch locks around small updates.
func Radiosity(scale, threads int) sim.Program {
	if scale < 1 {
		scale = 1
	}
	al := memsys.NewAllocator()
	patches := 32
	patchData := al.Alloc(patches * 4)
	patchLocks := al.AllocPadded(patches)
	deqLocks := al.AllocPadded(threads)
	deqCount := al.AllocPadded(threads)
	perThread := 50 * scale

	return sim.Program{
		Name:    "radiosity",
		Threads: threads,
		Body: func(t int, env *sim.Env) {
			rng := newLCG(uint64(t)*31 + 3)
			// Seed own deque.
			env.Lock(deqLocks.Word(t))
			env.Write(deqCount.Word(t), uint64(perThread))
			env.Unlock(deqLocks.Word(t))
			victim := t
			for {
				// Pop from the current victim's deque (own first).
				env.Lock(deqLocks.Word(victim))
				n := env.Read(deqCount.Word(victim))
				if n > 0 {
					env.Write(deqCount.Word(victim), n-1)
				}
				env.Unlock(deqLocks.Word(victim))
				if n == 0 {
					// Steal elsewhere; give up after a full cycle.
					victim = (victim + 1) % threads
					if victim == t {
						break
					}
					continue
				}
				// Run the task: refine a patch pair.
				p := rng.n(patches)
				env.Lock(patchLocks.Word(p))
				touch(env, patchData, p*4, 3)
				env.Unlock(patchLocks.Word(p))
				q := rng.n(patches)
				env.Lock(patchLocks.Word(q))
				scan(env, patchData, q*4, 2)
				touch(env, patchData, q*4, 1)
				env.Unlock(patchLocks.Word(q))
				env.Compute(120) // form-factor math dominates each refinement
			}
		},
	}
}
