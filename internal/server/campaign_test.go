package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cord/internal/experiment"
	"cord/internal/workload"
)

// campaignTestMeta is a campaign small enough for endpoint tests: one app,
// a handful of runs.
func campaignTestMeta() experiment.CampaignMeta {
	return experiment.CampaignMeta{BaseSeed: 7, Scale: 1, Threads: 4, Injections: 3, Apps: []string{"fft"}}
}

func campaignFingerprint(t *testing.T, m experiment.CampaignMeta) string {
	t.Helper()
	o, err := experiment.OptionsFromMeta(m)
	if err != nil {
		t.Fatal(err)
	}
	return o.Fingerprint()
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, b
}

func decodeErrorBody(t *testing.T, b []byte) errorBody {
	t.Helper()
	var e errorBody
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatalf("error body %q does not parse: %v", b, err)
	}
	return e
}

// TestCampaignPlan: the plan probe returns the worker's fingerprint and run
// geometry, and that fingerprint matches an independent local computation —
// the agreement a coordinator relies on before dispatching.
func TestCampaignPlan(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdownOrFail(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	meta := campaignTestMeta()
	resp, b := postJSON(t, ts.URL+"/v1/campaign/plan", CampaignPlanRequest{Campaign: "c1", Options: meta})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d, body %s", resp.StatusCode, b)
	}
	var plan CampaignPlanResponse
	if err := json.Unmarshal(b, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Fingerprint != campaignFingerprint(t, meta) {
		t.Fatalf("plan fingerprint %s, want %s", plan.Fingerprint, campaignFingerprint(t, meta))
	}
	if plan.RunsPerApp != 3 || plan.TotalRuns != 3 || len(plan.Apps) != 1 || plan.Apps[0] != "fft" {
		t.Fatalf("plan geometry: %+v", plan)
	}

	// An all-defaults campaign plans the full Table 1 geometry.
	resp, b = postJSON(t, ts.URL+"/v1/campaign/plan", CampaignPlanRequest{Campaign: "c2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default plan: status %d, body %s", resp.StatusCode, b)
	}
	var dflt CampaignPlanResponse
	if err := json.Unmarshal(b, &dflt); err != nil {
		t.Fatal(err)
	}
	if len(dflt.Apps) != len(workload.All()) || dflt.TotalRuns != 40*len(workload.All()) {
		t.Fatalf("default plan geometry: %+v", dflt)
	}
}

// TestCampaignPlanRejects: malformed plan requests land on the 400 taxonomy.
func TestCampaignPlanRejects(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownOrFail(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name string
		req  CampaignPlanRequest
	}{
		{"empty campaign id", CampaignPlanRequest{Campaign: ""}},
		{"bad campaign id", CampaignPlanRequest{Campaign: "no spaces allowed"}},
		{"unknown app", CampaignPlanRequest{Campaign: "c", Options: experiment.CampaignMeta{Apps: []string{"nonesuch"}}}},
		{"negative injections", CampaignPlanRequest{Campaign: "c", Options: experiment.CampaignMeta{Injections: -1}}},
		{"over MaxInjections", CampaignPlanRequest{Campaign: "c", Options: experiment.CampaignMeta{Injections: MaxInjections + 1}}},
		{"over MaxThreads", CampaignPlanRequest{Campaign: "c", Options: experiment.CampaignMeta{Threads: MaxThreads + 1}}},
		{"over MaxScale", CampaignPlanRequest{Campaign: "c", Options: experiment.CampaignMeta{Scale: MaxScale + 1}}},
	}
	for _, tc := range cases {
		resp, b := postJSON(t, ts.URL+"/v1/campaign/plan", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, b)
			continue
		}
		if e := decodeErrorBody(t, b); e.Code != "bad_request" {
			t.Errorf("%s: code %q, want bad_request", tc.name, e.Code)
		}
	}
}

// TestCampaignShardIdempotent: the §6 idempotency rule, end to end and
// under -race (make race covers this package): concurrent and sequential
// re-sends of one shard all answer 200 with byte-identical bodies, and the
// cells match an in-process ExecuteDetectShard of the same spec.
func TestCampaignShardIdempotent(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer shutdownOrFail(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	meta := campaignTestMeta()
	req := CampaignShardRequest{
		Campaign:    "idem",
		ShardID:     "s0",
		Fingerprint: campaignFingerprint(t, meta),
		Options:     meta,
		Ranges:      []experiment.ShardRange{{App: "fft", Lo: 0, Hi: 3}},
	}

	const resends = 4
	bodies := make([][]byte, resends)
	var wg sync.WaitGroup
	for i := 0; i < resends; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postJSON(t, ts.URL+"/v1/campaign/shard", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("re-send %d: status %d, body %s", i, resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	for i := 1; i < resends; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("re-send %d returned different bytes", i)
		}
	}

	var shard CampaignShardResponse
	if err := json.Unmarshal(bodies[0], &shard); err != nil {
		t.Fatal(err)
	}
	if shard.Runs != 3 || shard.Fingerprint != req.Fingerprint {
		t.Fatalf("shard response header: %+v", shard)
	}
	opts, err := experiment.OptionsFromMeta(meta)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiment.ExecuteDetectShard(opts, experiment.ShardSpec{Ranges: req.Ranges})
	if err != nil {
		t.Fatal(err)
	}
	if len(shard.Cells) != len(want) {
		t.Fatalf("shard returned %d cells, want %d", len(shard.Cells), len(want))
	}
	for i := range want {
		if shard.Cells[i].Key != want[i].Key {
			t.Errorf("cell %d key %s, want %s", i, shard.Cells[i].Key, want[i].Key)
			continue
		}
		// The response body re-indents raw cell data (canonical pretty
		// encoding); the journal encoding compacts it back. Compare the
		// values the coordinator would journal.
		var got bytes.Buffer
		if err := json.Compact(&got, shard.Cells[i].Data); err != nil {
			t.Fatalf("cell %d does not compact: %v", i, err)
		}
		if !bytes.Equal(got.Bytes(), want[i].Data) {
			t.Errorf("cell %d data differs:\n got  %s\n want %s", i, got.Bytes(), want[i].Data)
		}
	}
}

// TestCampaignShardConflict: re-using a shard id with different content is
// 409 shard_conflict; a different shard id with the same content is fine.
func TestCampaignShardConflict(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownOrFail(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	meta := campaignTestMeta()
	req := CampaignShardRequest{
		Campaign:    "conf",
		ShardID:     "s0",
		Fingerprint: campaignFingerprint(t, meta),
		Options:     meta,
		Ranges:      []experiment.ShardRange{{App: "fft", Lo: 0, Hi: 1}},
	}
	if resp, b := postJSON(t, ts.URL+"/v1/campaign/shard", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("first send: status %d, body %s", resp.StatusCode, b)
	}

	mutated := req
	mutated.Ranges = []experiment.ShardRange{{App: "fft", Lo: 1, Hi: 2}}
	resp, b := postJSON(t, ts.URL+"/v1/campaign/shard", mutated)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting re-use: status %d, want 409 (body %s)", resp.StatusCode, b)
	}
	if e := decodeErrorBody(t, b); e.Code != "shard_conflict" {
		t.Fatalf("conflicting re-use: code %q, want shard_conflict", e.Code)
	}

	fresh := mutated
	fresh.ShardID = "s1"
	if resp, b := postJSON(t, ts.URL+"/v1/campaign/shard", fresh); resp.StatusCode != http.StatusOK {
		t.Fatalf("same content, fresh id: status %d, body %s", resp.StatusCode, b)
	}
}

// TestCampaignShardFingerprintMismatch: a stale or wrong coordinator
// fingerprint is 422 fingerprint_mismatch, before any simulation runs.
func TestCampaignShardFingerprintMismatch(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownOrFail(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	meta := campaignTestMeta()
	for _, fp := range []string{"", "0000000000000000", "not-a-fingerprint"} {
		req := CampaignShardRequest{
			Campaign: "fp", ShardID: "s0", Fingerprint: fp, Options: meta,
			Ranges: []experiment.ShardRange{{App: "fft", Lo: 0, Hi: 1}},
		}
		resp, b := postJSON(t, ts.URL+"/v1/campaign/shard", req)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("fingerprint %q: status %d, want 422 (body %s)", fp, resp.StatusCode, b)
		}
		if e := decodeErrorBody(t, b); e.Code != "fingerprint_mismatch" {
			t.Fatalf("fingerprint %q: code %q, want fingerprint_mismatch", fp, e.Code)
		}
	}
}

// TestCampaignShardBadRanges: ranges outside the campaign domain are 400
// bad_request — classified through the pool's error path.
func TestCampaignShardBadRanges(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownOrFail(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	meta := campaignTestMeta()
	fp := campaignFingerprint(t, meta)
	cases := [][]experiment.ShardRange{
		nil,
		{{App: "lu", Lo: 0, Hi: 1}},   // not in this campaign's app list
		{{App: "fft", Lo: 0, Hi: 4}},  // beyond Injections=3
		{{App: "fft", Lo: 2, Hi: 2}},  // empty
		{{App: "fft", Lo: -1, Hi: 1}}, // negative
	}
	for i, ranges := range cases {
		req := CampaignShardRequest{
			Campaign: "bad", ShardID: "s" + string(rune('a'+i)), Fingerprint: fp,
			Options: meta, Ranges: ranges,
		}
		resp, b := postJSON(t, ts.URL+"/v1/campaign/shard", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400 (body %s)", i, resp.StatusCode, b)
			continue
		}
		if e := decodeErrorBody(t, b); e.Code != "bad_request" {
			t.Errorf("case %d: code %q, want bad_request", i, e.Code)
		}
	}
}

// TestCampaignShardDrainingAndQueueFull: the shard endpoint inherits the
// pool's backpressure taxonomy — 503 draining during shutdown, 429 +
// Retry-After when the queue is full.
func TestCampaignShardDrainingAndQueueFull(t *testing.T) {
	meta := campaignTestMeta()
	fp := campaignFingerprint(t, meta)
	shardReq := func(id string) CampaignShardRequest {
		return CampaignShardRequest{
			Campaign: "bp", ShardID: id, Fingerprint: fp, Options: meta,
			Ranges: []experiment.ShardRange{{App: "fft", Lo: 0, Hi: 1}},
		}
	}

	t.Run("draining", func(t *testing.T) {
		s := New(Config{Workers: 1})
		ts := httptest.NewServer(s)
		defer ts.Close()
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // expired: Shutdown marks draining and returns immediately
		_ = s.Shutdown(ctx)
		defer shutdownOrFail(t, s)

		resp, b := postJSON(t, ts.URL+"/v1/campaign/shard", shardReq("s0"))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503 (body %s)", resp.StatusCode, b)
		}
		if e := decodeErrorBody(t, b); e.Code != "draining" {
			t.Fatalf("code %q, want draining", e.Code)
		}
	})

	t.Run("queue full", func(t *testing.T) {
		s := New(Config{Workers: 1, QueueDepth: 1})
		defer shutdownOrFail(t, s)
		// Wedge the single worker and fill the one queue slot with slow
		// detect sessions, so the shard request finds no room.
		block := make(chan struct{})
		s.runDetect = func(ctx context.Context, req DetectRequest) (*DetectResponse, error) {
			<-block
			return &DetectResponse{Schema: SchemaVersion}, nil
		}
		ts := httptest.NewServer(s)
		defer ts.Close()

		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				body, _ := json.Marshal(DetectRequest{App: "fft", Seed: 1})
				resp, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
		// Unwedge the worker before ts.Close and shutdown run, whatever the
		// verdict below — Close waits for those in-flight connections.
		defer wg.Wait()
		defer close(block)
		waitFor(t, "queue to fill", func() bool {
			m := s.Metrics()
			return m.Sessions.Started >= 1 && len(s.queue) == 1
		})

		resp, b := postJSON(t, ts.URL+"/v1/campaign/shard", shardReq("s1"))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, b)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
		if e := decodeErrorBody(t, b); e.Code != "queue_full" {
			t.Fatalf("code %q, want queue_full", e.Code)
		}
	})
}

// TestCampaignShardStrictBody: unknown fields fail loudly (400) instead of
// silently running a default-configured shard.
func TestCampaignShardStrictBody(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownOrFail(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/campaign/shard", "application/json",
		strings.NewReader(`{"campaign":"c","shard_id":"s","fingerprnt":"typo"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, b)
	}
}
