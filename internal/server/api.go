// Package server implements cordd, the long-running HTTP race-detection
// service: it accepts detection-run requests and binary CORD order logs,
// executes them as sessions on a bounded worker pool, and returns the
// repository's schema-versioned JSON encodings as responses.
//
// The service is the production front end to the same engine the CLIs drive
// in batch mode. Its shape is deliberately defensive: request bodies are
// size-limited before they reach the (already hardened) binary decoder,
// a full session queue pushes back with HTTP 429 + Retry-After instead of
// buffering unboundedly, client disconnects and per-session timeouts are
// propagated into the simulation engine as cancellation (sim.Config.Cancel),
// and shutdown drains accepted sessions before the process exits.
//
// Endpoints:
//
//	POST /v1/detect  — JSON DetectRequest body; runs one simulation under
//	                   the Ideal, vector-clock and CORD detectors and
//	                   returns a DetectResponse.
//	POST /v1/replay  — binary order log body (the format documented in
//	                   PROTOCOL.md) with run parameters in the query
//	                   string; replays the log and returns a ReplayResponse.
//	POST /v1/stream  — long-lived streaming ingestion of one binary order
//	                   log, decoded incrementally chunk by chunk; answers
//	                   with an end-of-stream StreamResponse summary (and,
//	                   unless verify=0, the one-shot DetectResponse of the
//	                   authoritative re-execution). See PROTOCOL.md §4.
//	POST /v1/campaign/plan
//	                 — validates a distributed-campaign configuration and
//	                   returns the worker's config fingerprint and run
//	                   geometry, without running anything. See PROTOCOL.md §6.
//	POST /v1/campaign/shard
//	                 — executes one campaign run-shard on the session pool
//	                   and returns its outcome cells keyed by run identity;
//	                   re-sent shards answer byte-identically. See
//	                   PROTOCOL.md §6.
//	POST /v1/fleet/register
//	                 — registers (or heartbeats) a worker in the fleet
//	                   registry; registrations expire after their TTL
//	                   without a heartbeat. See PROTOCOL.md §7.
//	GET  /v1/fleet/workers
//	                 — lists the live registered workers; coordinators
//	                   resolve their worker set here when run with
//	                   -registry. See PROTOCOL.md §7.
//	GET  /healthz    — liveness/readiness (503 while draining).
//	GET  /metrics    — cumulative Metrics counters and latency histograms.
//
// Streams have their own admission control (slots, byte/frame quotas, idle
// timeouts) because they are long-lived by design and must not starve the
// bounded pool the one-shot sessions run on.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"cord/internal/baseline"
	"cord/internal/core"
	"cord/internal/record"
	"cord/internal/sim"
	"cord/internal/trace"
	"cord/internal/workload"
)

// SchemaVersion stamps every response body, following the
// internal/experiment artifact convention: readers reject versions they do
// not understand instead of mis-parsing them.
const SchemaVersion = 1

// Request-domain bounds. Sessions are additionally bounded by the pool's
// per-session timeout, so these only reject configurations that are
// nonsensical rather than merely expensive.
const (
	// MaxThreads bounds the simulated thread count of one session.
	MaxThreads = 64
	// MaxScale bounds the workload scale factor of one session.
	MaxScale = 4096
)

// ErrBadRequest marks errors caused by the client's parameters or payload;
// the HTTP layer maps it to status 400.
var ErrBadRequest = errors.New("server: bad request")

// DetectRequest is the body of POST /v1/detect. Zero values select the
// defaults the CLIs use (scale 1, threads 4, D 16).
type DetectRequest struct {
	// App names one Table 1 application (see cordsim -list).
	App string `json:"app"`
	// Seed drives all scheduling jitter; identical requests reproduce
	// identical responses, byte for byte.
	Seed uint64 `json:"seed"`
	// Scale is the workload scale factor (default 1).
	Scale int `json:"scale,omitempty"`
	// Threads is the simulated thread/processor count (default 4).
	Threads int `json:"threads,omitempty"`
	// Inject, when non-zero, removes the Inject-th dynamic synchronization
	// instance (the paper's §3.4 fault injection).
	Inject uint64 `json:"inject,omitempty"`
	// D is the CORD sync-read window (default 16).
	D int `json:"d,omitempty"`
}

// ApplyDefaults fills zero-valued fields with the CLI defaults.
func (r *DetectRequest) ApplyDefaults() {
	if r.Scale == 0 {
		r.Scale = 1
	}
	if r.Threads == 0 {
		r.Threads = 4
	}
	if r.D == 0 {
		r.D = 16
	}
}

// Validate rejects out-of-domain parameters; every failure wraps
// ErrBadRequest.
func (r DetectRequest) Validate() error {
	if _, err := workload.ByName(r.App); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if r.Scale < 1 || r.Scale > MaxScale {
		return fmt.Errorf("%w: scale must be in [1, %d], got %d", ErrBadRequest, MaxScale, r.Scale)
	}
	if r.Threads < 1 || r.Threads > MaxThreads {
		return fmt.Errorf("%w: threads must be in [1, %d], got %d", ErrBadRequest, MaxThreads, r.Threads)
	}
	if r.D < 1 {
		return fmt.Errorf("%w: d must be at least 1, got %d", ErrBadRequest, r.D)
	}
	return nil
}

// DetectorVerdict is one detector's summary for a run.
type DetectorVerdict struct {
	Name            string `json:"name"`
	RacyAccesses    int    `json:"racy_accesses"`
	ProblemDetected bool   `json:"problem_detected"`
}

// MaxRacesInResponse caps the rendered race list in a DetectResponse; the
// verdict counters are complete regardless. Exported so cordsim -json caps
// identically and both producers stay byte-compatible.
const MaxRacesInResponse = 100

// DetectResponse is the result of one detection session: the engine result,
// each detector's verdict, and CORD's activity counters — the same
// schema-versioned shape cordsim -json writes.
type DetectResponse struct {
	Schema    int               `json:"schema"`
	App       string            `json:"app"`
	Seed      uint64            `json:"seed"`
	Scale     int               `json:"scale"`
	Threads   int               `json:"threads"`
	Inject    uint64            `json:"inject,omitempty"`
	D         int               `json:"d"`
	Result    sim.Result        `json:"result"`
	Detectors []DetectorVerdict `json:"detectors"`
	CordStats core.Stats        `json:"cord_stats"`
	LogBytes  int               `json:"log_bytes"`
	Races     []string          `json:"races,omitempty"`
}

// RunDetect executes one detection session: the requested application under
// the Ideal oracle, the L2-bounded vector-clock baseline, and a recording
// CORD detector — the cordsim configuration. Cancelling ctx stops the engine
// mid-run; the returned error is then ctx's error.
func RunDetect(ctx context.Context, req DetectRequest) (*DetectResponse, error) {
	resp, _, err := runDetectSession(ctx, req)
	return resp, err
}

// runDetectSession is RunDetect plus the order log the CORD detector
// recorded during the run. The streaming endpoint uses the log to check a
// client-streamed recording against the authoritative re-execution; the
// one-shot endpoint discards it.
func runDetectSession(ctx context.Context, req DetectRequest) (*DetectResponse, *record.Log, error) {
	req.ApplyDefaults()
	if err := req.Validate(); err != nil {
		return nil, nil, err
	}
	app, _ := workload.ByName(req.App)

	det := core.New(core.Config{Threads: req.Threads, Procs: req.Threads, D: req.D, Record: true})
	ideal := baseline.NewIdeal(req.Threads)
	vec := baseline.NewVecCache(baseline.VecConfig{Threads: req.Threads, Procs: req.Threads, Bound: baseline.BoundL2})

	res, err := sim.New(sim.Config{
		Seed:       req.Seed,
		Jitter:     7,
		InjectSkip: req.Inject,
		Observers:  []trace.Observer{ideal, vec, det},
		Cancel:     ctx.Done(),
	}, app.Build(req.Scale, req.Threads)).Run()
	if err != nil {
		if errors.Is(err, sim.ErrCanceled) && ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		return nil, nil, err
	}

	resp := &DetectResponse{
		Schema:  SchemaVersion,
		App:     app.Name,
		Seed:    req.Seed,
		Scale:   req.Scale,
		Threads: req.Threads,
		Inject:  req.Inject,
		D:       req.D,
		Result:  res,
		Detectors: []DetectorVerdict{
			{Name: ideal.Name(), RacyAccesses: ideal.RaceCount(), ProblemDetected: ideal.ProblemDetected()},
			{Name: vec.Name(), RacyAccesses: vec.RaceCount(), ProblemDetected: vec.ProblemDetected()},
			{Name: det.Name(), RacyAccesses: det.RaceCount(), ProblemDetected: det.ProblemDetected()},
		},
		CordStats: det.Stats(),
		LogBytes:  det.Log().SizeBytes(),
	}
	for i, r := range det.Races() {
		if i >= MaxRacesInResponse {
			break
		}
		resp.Races = append(resp.Races, r.String())
	}
	return resp, det.Log(), nil
}

// ReplayRequest carries the run parameters of POST /v1/replay (query-string
// encoded; the order log travels as the request body). The parameters must
// name the run that recorded the log — the same app, seed, scale and thread
// count — or the replay will diverge.
type ReplayRequest struct {
	App     string `json:"app"`
	Seed    uint64 `json:"seed"`
	Scale   int    `json:"scale"`
	Threads int    `json:"threads"`
	// InjectThread/InjectNth re-apply the per-thread injection identity the
	// recording run reported (Result.injected_thread/injected_thread_nth).
	// InjectThread -1 means no injection.
	InjectThread int    `json:"inject_thread"`
	InjectNth    uint64 `json:"inject_nth"`
}

// ApplyDefaults fills zero-valued fields with the CLI defaults.
func (r *ReplayRequest) ApplyDefaults() {
	if r.Scale == 0 {
		r.Scale = 1
	}
	if r.Threads == 0 {
		r.Threads = 4
	}
}

// Validate rejects out-of-domain parameters; every failure wraps
// ErrBadRequest.
func (r ReplayRequest) Validate() error {
	if _, err := workload.ByName(r.App); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if r.Scale < 1 || r.Scale > MaxScale {
		return fmt.Errorf("%w: scale must be in [1, %d], got %d", ErrBadRequest, MaxScale, r.Scale)
	}
	if r.Threads < 1 || r.Threads > MaxThreads {
		return fmt.Errorf("%w: threads must be in [1, %d], got %d", ErrBadRequest, MaxThreads, r.Threads)
	}
	if r.InjectThread < -1 || r.InjectThread >= r.Threads {
		return fmt.Errorf("%w: inject_thread must be -1 or a thread id below %d, got %d",
			ErrBadRequest, r.Threads, r.InjectThread)
	}
	if r.InjectThread >= 0 && r.InjectNth == 0 {
		return fmt.Errorf("%w: inject_nth must be at least 1 when inject_thread is set", ErrBadRequest)
	}
	return nil
}

// ReplayResponse is the verdict of one replay session. Completed reports
// that the engine followed the log to the end of the program; a divergent or
// hung replay (a log inconsistent with the named run) is a verdict, not a
// transport error, and travels in Divergence.
type ReplayResponse struct {
	Schema       int        `json:"schema"`
	App          string     `json:"app"`
	Seed         uint64     `json:"seed"`
	Scale        int        `json:"scale"`
	Threads      int        `json:"threads"`
	InjectThread int        `json:"inject_thread"`
	InjectNth    uint64     `json:"inject_nth,omitempty"`
	LogEntries   int        `json:"log_entries"`
	LogBytes     int        `json:"log_bytes"`
	Completed    bool       `json:"completed"`
	Divergence   string     `json:"divergence,omitempty"`
	Result       sim.Result `json:"result"`
}

// RunReplay replays a decoded order log against the named run configuration
// under the log's epoch schedule. Cancelling ctx stops the engine mid-run.
func RunReplay(ctx context.Context, req ReplayRequest, log *record.Log) (*ReplayResponse, error) {
	req.ApplyDefaults()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	app, _ := workload.ByName(req.App)

	epochs, err := log.Schedule(req.Threads)
	if err != nil {
		if errors.Is(err, record.ErrOrderViolation) {
			// Keep the typed verdict: the HTTP layer answers 422 /
			// order_violation, like the streaming ingest path does.
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	cfg := sim.Config{Seed: req.Seed, ReplayEpochs: epochs, Cancel: ctx.Done()}
	if req.InjectThread >= 0 {
		cfg.InjectThread = req.InjectThread
		cfg.InjectThreadNth = req.InjectNth
	}
	resp := &ReplayResponse{
		Schema:       SchemaVersion,
		App:          app.Name,
		Seed:         req.Seed,
		Scale:        req.Scale,
		Threads:      req.Threads,
		InjectThread: req.InjectThread,
		InjectNth:    req.InjectNth,
		LogEntries:   log.Len(),
		LogBytes:     log.SizeBytes(),
	}
	res, err := sim.New(cfg, app.Build(req.Scale, req.Threads)).Run()
	switch {
	case err == nil:
	case errors.Is(err, sim.ErrCanceled) && ctx.Err() != nil:
		return nil, ctx.Err()
	case errors.Is(err, sim.ErrReplayDivergence):
		resp.Divergence = err.Error()
		return resp, nil
	default:
		return nil, err
	}
	resp.Result = res
	if res.Hung {
		resp.Divergence = "replayed run could not follow the log (blocked before all epochs ran)"
		return resp, nil
	}
	resp.Completed = true
	return resp, nil
}

// encodeJSON renders a response body in the repository's canonical byte
// form — two-space-indented JSON with a trailing newline, the
// internal/experiment artifact convention — so identical sessions produce
// byte-identical bodies.
func encodeJSON(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("server: encoding response: %w", err)
	}
	return append(b, '\n'), nil
}
