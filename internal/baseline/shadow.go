package baseline

import (
	"sync"

	"cord/internal/clock"
	"cord/internal/memsys"
)

// This file is the sharded shadow memory behind the FastTrack baseline
// detector (fasttrack.go): per-word shadow state plus per-sync-variable
// vector clocks, partitioned by address across N independently locked
// shards. Sharding exists purely so one simulation's detection work can
// spread over host cores — shard count never changes what is stored per
// address, so detection results are identical at any shard count.

// epochNone marks an empty epoch slot in a shadow word.
const epochNone = int32(-1)

// ftEpoch is FastTrack's compressed timestamp: one clock component and the
// thread it belongs to — the paper's c@t. A single epoch replaces a full
// vector clock wherever the last access is totally ordered with everything
// that matters (last writes always; reads until they become concurrent).
type ftEpoch struct {
	clock  uint64
	thread int32
}

// ftWord is the shadow state of one data word: the last-write epoch and the
// adaptive read representation — a single epoch in the common
// (exclusive/same-epoch) case, inflated to a full vector only while reads
// are concurrent. A write to a read-shared word deflates it back to epochs.
type ftWord struct {
	write ftEpoch
	read  ftEpoch
	// readVec is non-nil iff the read state is inflated: readVec[t] is the
	// clock component of thread t's last read (0 = never read).
	readVec clock.Vector
}

// ftShard is one lock's worth of shadow memory: the words and sync
// variables whose addresses hash here. Deflated read vectors are recycled
// through a per-shard free list so the inflate/deflate cycle settles into
// zero steady-state allocation.
type ftShard struct {
	mu    sync.Mutex
	words map[memsys.Addr]*ftWord
	syncs map[memsys.Addr]clock.Vector

	freeVecs []clock.Vector
	// metaWords counts the live shadow-state footprint in words, the
	// FastTrack paper's metadata metric: 1 word per epoch, threads words per
	// (sync or inflated read) vector.
	metaWords int
}

// shadowMem is the sharded shadow memory: an address's shadow state lives in
// exactly one shard, chosen by word index, and every touch of it happens
// under that shard's lock.
type shadowMem struct {
	shards []ftShard
	mask   uint64
}

// newShadowMem builds a shadow memory with the given shard count, rounded up
// to a power of two (minimum 1).
func newShadowMem(shards int) *shadowMem {
	n := 1
	for n < shards {
		n <<= 1
	}
	m := &shadowMem{shards: make([]ftShard, n), mask: uint64(n - 1)}
	for i := range m.shards {
		m.shards[i].words = make(map[memsys.Addr]*ftWord)
		m.shards[i].syncs = make(map[memsys.Addr]clock.Vector)
	}
	return m
}

// shard returns the shard owning addr. Word-granular interleaving keeps
// neighbouring words of one line in distinct shards, which is what lets the
// sharded kernel's threads proceed without false lock sharing.
func (m *shadowMem) shard(a memsys.Addr) *ftShard {
	return &m.shards[(uint64(a)/memsys.WordBytes)&m.mask]
}

// word returns addr's shadow word, creating an empty one on first touch.
// Callers hold the shard lock.
func (s *ftShard) word(a memsys.Addr) *ftWord {
	w := s.words[a]
	if w == nil {
		w = &ftWord{write: ftEpoch{thread: epochNone}, read: ftEpoch{thread: epochNone}}
		s.words[a] = w
		s.metaWords += 2
	}
	return w
}

// sync returns addr's sync-variable vector (the last release's clock),
// creating a zero vector on first touch. Callers hold the shard lock.
func (s *ftShard) sync(a memsys.Addr, threads int) clock.Vector {
	v := s.syncs[a]
	if v == nil {
		v = clock.NewVector(threads)
		s.syncs[a] = v
		s.metaWords += threads
	}
	return v
}

// inflate switches w's read state to the vector representation, reusing a
// previously deflated vector when one is free. Callers hold the shard lock.
func (s *ftShard) inflate(w *ftWord, threads int) clock.Vector {
	var v clock.Vector
	if n := len(s.freeVecs); n > 0 {
		v = s.freeVecs[n-1]
		s.freeVecs = s.freeVecs[:n-1]
		clear(v)
	} else {
		v = clock.NewVector(threads)
	}
	w.readVec = v
	s.metaWords += threads
	return v
}

// deflate drops w's read vector back onto the free list (a write to a
// read-shared word returns the word to the epoch representation). Callers
// hold the shard lock.
func (s *ftShard) deflate(w *ftWord) {
	s.metaWords -= len(w.readVec)
	s.freeVecs = append(s.freeVecs, w.readVec)
	w.readVec = nil
}

// metadataWords sums the live shadow footprint across shards. The total is a
// pure function of the access history — shard count only partitions it.
func (m *shadowMem) metadataWords() int {
	total := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		total += s.metaWords
		s.mu.Unlock()
	}
	return total
}
