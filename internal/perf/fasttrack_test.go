package perf

import (
	"testing"
	"time"

	"cord/internal/baseline"
)

// kernelCycle is one full pass over the shared synthetic access stream.
const kernelCycle = 1 << 14

// runCycles drives a kernel body through n full stream cycles starting at
// iteration i, returning the next iteration index.
func runCycles(body func(i int), i, n int) int {
	for k := 0; k < n*kernelCycle; k++ {
		body(i)
		i++
	}
	return i
}

// TestFastTrackKernelZeroAllocSteadyState: past the stored-race cap the
// FastTrack OnAccess path must be allocation-free — epochs live inline in
// the shadow words, read vectors are recycled through the shard free list,
// and a full detector only bumps counters. A small cap makes the steady
// state reachable in-test; the code path is the kernel's.
func TestFastTrackKernelZeroAllocSteadyState(t *testing.T) {
	det := baseline.NewFastTrack(baseline.FastTrackConfig{Threads: 4, Shards: 1, MaxStoredRaces: 64})
	body := observerKernel(det)
	i := runCycles(body, 0, 2) // ~190 racy accesses per cycle: the cap is long hit
	if len(det.Races()) != 64 {
		t.Fatalf("warmup did not reach the stored-race cap: %d", len(det.Races()))
	}
	avg := testing.AllocsPerRun(kernelCycle, func() { body(i); i++ })
	if avg != 0 {
		t.Fatalf("steady-state fasttrack kernel allocates %.4f allocs/op, want 0", avg)
	}
}

// TestBaselineKernelAllocBudget pins the default kernels' allocation profile:
// with race storage still below its cap, the only allocations left on
// baseline/vec-infcache and baseline/fasttrack are the rare racy-access
// report appends (~1% of ops on this stream). The vec-infcache bound is the
// regression test for the free-list recycling gap: before invalidation-
// dropped vectors joined freeVCs, every cross-proc write invalidation
// allocated a fresh vector and the average sat far above this budget.
func TestBaselineKernelAllocBudget(t *testing.T) {
	for _, tc := range []struct {
		name  string
		setup func() func(i int)
	}{
		{"baseline/vec-infcache", setupVecInf},
		{"baseline/fasttrack", setupFastTrack},
	} {
		t.Run(tc.name, func(t *testing.T) {
			body := tc.setup()
			i := runCycles(body, 0, 4)
			avg := testing.AllocsPerRun(kernelCycle, func() { body(i); i++ })
			if avg > 0.1 {
				t.Fatalf("%s allocates %.4f allocs/op, want < 0.1 (race reports only)", tc.name, avg)
			}
		})
	}
}

// TestFastTrackKernelNotSlowerThanIdeal: the point of the epoch
// representation is that the common case compares two words instead of
// walking a per-word access history, so the fasttrack kernel must not run
// slower than baseline/ideal on the same stream. Measured coarsely (whole
// cycles, after warmup) so scheduler noise cannot flake the comparison on a
// loaded machine; the real numbers live in BENCH_perf.json.
func TestFastTrackKernelNotSlowerThanIdeal(t *testing.T) {
	timeKernel := func(setup func() func(i int)) time.Duration {
		body := setup()
		i := runCycles(body, 0, 2)
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			i = runCycles(body, i, 2)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	ideal := timeKernel(setupIdeal)
	ft := timeKernel(setupFastTrack)
	// Allow 10% slack over Ideal: the acceptance bound is <=, the slack only
	// absorbs timer jitter on the fast side.
	if ft > ideal+ideal/10 {
		t.Fatalf("baseline/fasttrack %v per 2 cycles vs baseline/ideal %v: epoch path slower than history walk", ft, ideal)
	}
}
