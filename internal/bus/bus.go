// Package bus models the two on-chip interconnect resources of the paper's
// machine (§3.1): a 128-bit data bus at 1 GHz and an address/timestamp bus at
// half that rate, plus the off-chip memory channel. Each is a "busy-until"
// FIFO resource: a transaction requested at time t occupies the resource from
// max(t, freeAt) for its duration, and the requester observes the queueing
// delay. This is the level of detail CORD's overhead lives at — race-check
// broadcasts and memory-timestamp updates occupy the address/timestamp bus
// and contend with ordinary coherence traffic.
package bus

// Resource is a single serially-occupied resource on the chip.
type Resource struct {
	name   string
	freeAt uint64
	busy   uint64 // total occupied cycles
	trans  uint64 // transaction count
}

// NewResource names a fresh, idle resource.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Acquire schedules a transaction of the given duration (in CPU cycles)
// requested at time now, returning the cycle at which the transaction
// completes. The resource is occupied until then.
func (r *Resource) Acquire(now, duration uint64) uint64 {
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	end := start + duration
	r.freeAt = end
	r.busy += duration
	r.trans++
	return end
}

// PeekDelay returns the queueing delay a transaction issued at now would see,
// without acquiring.
func (r *Resource) PeekDelay(now uint64) uint64 {
	if r.freeAt > now {
		return r.freeAt - now
	}
	return 0
}

// Stats returns the total busy cycles and the transaction count.
func (r *Resource) Stats() (busyCycles, transactions uint64) { return r.busy, r.trans }

// Name returns the resource's label.
func (r *Resource) Name() string { return r.name }

// Timing collects the latency parameters of the simulated machine, all in
// CPU cycles of the 4 GHz cores. Defaults follow §3.1.
type Timing struct {
	// L1HitCycles is the (hidden) L1 access latency.
	L1HitCycles uint64
	// L2HitCycles is a local L2 hit.
	L2HitCycles uint64
	// CacheToCacheCycles is the on-chip L2-to-L2 round trip (20).
	CacheToCacheCycles uint64
	// MemoryCycles is the round-trip main-memory latency (600).
	MemoryCycles uint64
	// DataBusCycles is the data-bus occupancy of one line transfer:
	// 64 bytes over a 128-bit (16-byte) bus at 1 GHz = 4 bus cycles
	// = 16 CPU cycles at the 4:1 clock ratio.
	DataBusCycles uint64
	// AddrBusCycles is the occupancy of one address/timestamp-bus
	// transaction. The address bus runs at half the data-bus frequency
	// (§4.1), so one slot is 8 CPU cycles.
	AddrBusCycles uint64
}

// DefaultTiming returns the paper's machine parameters.
func DefaultTiming() Timing {
	return Timing{
		L1HitCycles:        1,
		L2HitCycles:        10,
		CacheToCacheCycles: 20,
		MemoryCycles:       600,
		DataBusCycles:      16,
		AddrBusCycles:      8,
	}
}

// Fabric bundles the shared interconnect resources of one simulated chip.
type Fabric struct {
	Data *Resource // on-chip data bus
	Addr *Resource // address/timestamp bus (half rate)
	Mem  *Resource // memory channel
	T    Timing
}

// NewFabric builds an idle fabric with the given timing.
func NewFabric(t Timing) *Fabric {
	return &Fabric{
		Data: NewResource("data-bus"),
		Addr: NewResource("addr-ts-bus"),
		Mem:  NewResource("mem-channel"),
		T:    t,
	}
}
