package experiment

import (
	"math"
	"strings"
	"testing"
)

func baseFigure() Figure {
	return Figure{
		ID:      "fig12",
		Columns: []string{"detected", "missed"},
		Rows: []Row{
			{Label: "raytrace", Values: []float64{0.75, 0.25}},
			{Label: "lu", Values: []float64{math.NaN(), 1}},
		},
	}
}

// TestDiffFiguresTolerance: an out-of-tolerance cell is flagged with its
// coordinates, and the same drift passes once the tolerance covers it.
func TestDiffFiguresTolerance(t *testing.T) {
	want := baseFigure()
	got := baseFigure()
	got.Rows[0].Values[0] = 0.8125 // drifted by exactly 0.0625

	diffs := DiffFigures(got, want, DiffOptions{})
	if len(diffs) != 1 {
		t.Fatalf("exact comparison: %d diffs, want 1: %v", len(diffs), diffs)
	}
	d := diffs[0]
	if d.Row != "raytrace" || d.Column != "detected" || d.Got != 0.8125 || d.Want != 0.75 {
		t.Fatalf("diff = %+v", d)
	}
	if s := d.String(); !strings.Contains(s, "raytrace") || !strings.Contains(s, "detected") {
		t.Fatalf("diff string %q lacks coordinates", s)
	}

	if diffs := DiffFigures(got, want, DiffOptions{Default: Tolerance{Abs: 0.0625}}); len(diffs) != 0 {
		t.Fatalf("abs tolerance 0.0625 still flags: %v", diffs)
	}
	if diffs := DiffFigures(got, want, DiffOptions{Default: Tolerance{Rel: 0.10}}); len(diffs) != 0 {
		t.Fatalf("rel tolerance 10%% still flags: %v", diffs)
	}
	if diffs := DiffFigures(got, want, DiffOptions{Default: Tolerance{Abs: 0.01}}); len(diffs) != 1 {
		t.Fatalf("abs tolerance 0.01 should still flag: %v", diffs)
	}
}

// TestDiffFiguresPerColumn: a per-column tolerance overrides the default for
// that column only.
func TestDiffFiguresPerColumn(t *testing.T) {
	want := baseFigure()
	got := baseFigure()
	got.Rows[0].Values[0] = 0.8125 // "detected" drifts
	got.Rows[0].Values[1] = 0.3125 // "missed" drifts

	o := DiffOptions{PerColumn: map[string]Tolerance{"detected": {Abs: 0.1}}}
	diffs := DiffFigures(got, want, o)
	if len(diffs) != 1 || diffs[0].Column != "missed" {
		t.Fatalf("diffs = %v, want only the missed column", diffs)
	}
}

// TestDiffFiguresNaN: NaN cells (empty denominators) equal NaN baselines,
// but a NaN appearing where the baseline has a number is a regression.
func TestDiffFiguresNaN(t *testing.T) {
	want := baseFigure()
	got := baseFigure()
	if diffs := DiffFigures(got, want, DiffOptions{}); len(diffs) != 0 {
		t.Fatalf("identical figures (with NaN cells) differ: %v", diffs)
	}
	got.Rows[1].Values[1] = math.NaN() // baseline has 1 here
	diffs := DiffFigures(got, want, DiffOptions{Default: Tolerance{Abs: 100}})
	if len(diffs) != 1 {
		t.Fatalf("NaN vs number: %d diffs, want 1 regardless of tolerance: %v", len(diffs), diffs)
	}
}

// TestDiffFiguresStructural: shape mismatches are reported as structural
// diffs rather than silently skipped.
func TestDiffFiguresStructural(t *testing.T) {
	want := baseFigure()
	check := func(name string, mutate func(*Figure), substr string) {
		t.Helper()
		got := baseFigure()
		mutate(&got)
		diffs := DiffFigures(got, want, DiffOptions{Default: Tolerance{Abs: 1e9}})
		if len(diffs) == 0 {
			t.Fatalf("%s: no diff reported", name)
		}
		if diffs[0].Structural == "" || !strings.Contains(diffs[0].Structural, substr) {
			t.Fatalf("%s: diff = %+v, want structural mentioning %q", name, diffs[0], substr)
		}
	}
	check("id", func(f *Figure) { f.ID = "fig13" }, "id")
	check("columns", func(f *Figure) { f.Columns = f.Columns[:1] }, "column count")
	check("column name", func(f *Figure) { f.Columns[1] = "other" }, "column 1")
	check("rows", func(f *Figure) { f.Rows = f.Rows[:1] }, "row count")
	check("label", func(f *Figure) { f.Rows[0].Label = "barnes" }, "row 0")
	check("ragged", func(f *Figure) { f.Rows[0].Values = f.Rows[0].Values[:1] }, "values")
}

// TestDiffArtifacts: campaign comparability gates cell comparison — fresh
// runs under different flags are configuration skew, not regressions.
func TestDiffArtifacts(t *testing.T) {
	meta := testMeta()
	want := FigureArtifact(baseFigure(), meta)

	if diffs := DiffArtifacts(FigureArtifact(baseFigure(), meta), want, DiffOptions{}); len(diffs) != 0 {
		t.Fatalf("identical artifacts differ: %v", diffs)
	}

	other := meta
	other.Injections = 99
	diffs := DiffArtifacts(FigureArtifact(baseFigure(), other), want, DiffOptions{})
	if len(diffs) != 1 || diffs[0].Structural == "" {
		t.Fatalf("campaign mismatch diffs = %v", diffs)
	}

	rows := []DirectoryRow{{App: "lu", Requests: 1}}
	dWant := DirectoryArtifact(rows, 16, meta)
	dGot := DirectoryArtifact(rows, 8, meta)
	diffs = DiffArtifacts(dGot, dWant, DiffOptions{})
	if len(diffs) != 1 || !strings.Contains(diffs[0].Structural, "processor count") {
		t.Fatalf("sim-procs mismatch diffs = %v", diffs)
	}

	t1 := Table1Artifact([]Table1Row{{App: "lu"}}, meta)
	diffs = DiffArtifacts(t1, want, DiffOptions{})
	if len(diffs) != 1 || !strings.Contains(diffs[0].Structural, "kind") {
		t.Fatalf("kind mismatch diffs = %v", diffs)
	}
}
