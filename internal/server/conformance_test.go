package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// PROTOCOL.md §6 and §7 declare their JSON examples to be verbatim wire
// bytes and promise that the test suite replays them. This test is that
// promise: it extracts every `<!-- conformance:... -->`-marked example from
// the spec, in document order, sends the requests against a real server, and
// byte-compares the responses. A drift between spec and implementation fails
// here, with instructions pointing at whichever side is wrong.
//
// Marker grammar (HTML comments immediately preceding a ```json fence):
//
//	<!-- conformance:request <name> <method> <path> -->
//	<!-- conformance:response <name> <status> -->
//	<!-- conformance:request <name> <method> <path> = <other> -->   (reuse <other>'s body)
//	<!-- conformance:response <name> <status> = <other> -->         (expect <other>'s body)
//	<!-- conformance:request <name> <method> <path> - -->           (no body: GET etc.)
//
// The `= other` and trailing `-` forms carry no fence: the former expresses
// idempotency ("re-sending the shard answers byte-identically") without
// duplicating a long example, the latter a body-less request.

type conformanceExample struct {
	name     string
	method   string
	path     string
	status   int
	request  []byte
	response []byte
}

// parseConformance walks the spec once, resolving `= other` references
// against earlier examples, and returns the examples in document order.
func parseConformance(t *testing.T, spec []byte) []conformanceExample {
	t.Helper()
	type pending struct {
		method, path string
		status       int
		body         []byte
	}
	requests := map[string]pending{}
	responses := map[string]pending{}
	var order []string

	sc := bufio.NewScanner(bytes.NewReader(spec))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	fenceAfter := func(i int) ([]byte, int) {
		for j := i + 1; j < len(lines); j++ {
			switch {
			case strings.TrimSpace(lines[j]) == "":
				continue
			case strings.TrimSpace(lines[j]) == "```json":
				var body bytes.Buffer
				for k := j + 1; k < len(lines); k++ {
					if strings.TrimSpace(lines[k]) == "```" {
						return body.Bytes(), k
					}
					body.WriteString(lines[k])
					body.WriteByte('\n')
				}
				t.Fatalf("PROTOCOL.md line %d: unterminated ```json fence", j+1)
			default:
				return nil, i
			}
		}
		return nil, i
	}

	for i := 0; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(line, "<!-- conformance:") || !strings.HasSuffix(line, "-->") {
			continue
		}
		fields := strings.Fields(strings.TrimSuffix(strings.TrimPrefix(line, "<!-- conformance:"), "-->"))
		if len(fields) < 2 {
			t.Fatalf("PROTOCOL.md line %d: malformed conformance marker %q", i+1, line)
		}
		kind, name := fields[0], fields[1]
		var ref string
		if n := len(fields); n >= 2 && fields[n-2] == "=" {
			ref = fields[n-1]
			fields = fields[:n-2]
		}
		noBody := false
		if n := len(fields); fields[n-1] == "-" {
			noBody = true
			fields = fields[:n-1]
		}
		var body []byte
		if ref == "" && !noBody {
			var end int
			body, end = fenceAfter(i)
			if body == nil {
				t.Fatalf("PROTOCOL.md line %d: conformance marker %q has no ```json fence", i+1, line)
			}
			i = end
		}
		switch kind {
		case "request":
			if len(fields) != 4 {
				t.Fatalf("PROTOCOL.md line %d: request marker wants `request <name> <method> <path>`, got %q", i+1, line)
			}
			if ref != "" {
				prev, ok := requests[ref]
				if !ok {
					t.Fatalf("PROTOCOL.md line %d: request %s references unknown example %q", i+1, name, ref)
				}
				body = prev.body
			}
			requests[name] = pending{method: fields[2], path: fields[3], body: body}
			order = append(order, name)
		case "response":
			if len(fields) != 3 {
				t.Fatalf("PROTOCOL.md line %d: response marker wants `response <name> <status>`, got %q", i+1, line)
			}
			status, err := strconv.Atoi(fields[2])
			if err != nil {
				t.Fatalf("PROTOCOL.md line %d: bad status in %q: %v", i+1, line, err)
			}
			if ref != "" {
				prev, ok := responses[ref]
				if !ok {
					t.Fatalf("PROTOCOL.md line %d: response %s references unknown example %q", i+1, name, ref)
				}
				body = prev.body
			}
			responses[name] = pending{status: status, body: body}
		default:
			t.Fatalf("PROTOCOL.md line %d: unknown conformance kind %q", i+1, kind)
		}
	}

	var examples []conformanceExample
	for _, name := range order {
		req := requests[name]
		resp, ok := responses[name]
		if !ok {
			t.Fatalf("conformance example %q has a request but no response marker", name)
		}
		examples = append(examples, conformanceExample{
			name: name, method: req.method, path: req.path,
			status: resp.status, request: req.body, response: resp.body,
		})
	}
	return examples
}

// TestProtocolConformance replays every marked §6 and §7 example against a
// real server, in document order (order matters: the conflict example depends
// on the shard example having registered its id first, and the §7 listing on
// the registrations before it).
//
// The server clock is frozen: §7's registry examples promise exact
// expires_in_seconds values, which lazy TTL pruning makes deterministic under
// a fixed now. The §7 progress resource is a coordinator endpoint, not a
// worker one, so the test mounts ProgressHandler over the spec's fixture
// snapshot beside the worker mux — exactly how cordbench serves it.
func TestProtocolConformance(t *testing.T) {
	spec, err := os.ReadFile(filepath.Join("..", "..", "PROTOCOL.md"))
	if err != nil {
		t.Fatalf("reading the spec: %v", err)
	}
	examples := parseConformance(t, spec)
	if len(examples) < 10 {
		t.Fatalf("found only %d conformance examples in PROTOCOL.md; the §6/§7 markers have been damaged", len(examples))
	}

	srv := New(Config{Workers: 2})
	srv.now = func() time.Time { return time.Unix(1700000000, 0) }
	mux := http.NewServeMux()
	mux.Handle("/v1/campaign/progress", ProgressHandler(func() CampaignProgress {
		return CampaignProgress{
			Campaign:       "paper-repro",
			Fingerprint:    "976adcbc7ab77749",
			CellsDone:      2,
			CellsTotal:     3,
			ShardsStolen:   1,
			ShardsRequeued: 2,
			Workers: []ProgressWorker{
				{URL: "http://worker-b:8080", Health: WorkerDead, LatencyEwmaMs: 40},
				{URL: "http://worker-a:8080", Health: WorkerLive, ShardsDone: 1, ShardsInFlight: 1, LatencyEwmaMs: 12.5},
			},
		}
	}))
	mux.Handle("/", srv)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for _, ex := range examples {
		t.Run(ex.name, func(t *testing.T) {
			req, err := http.NewRequest(ex.method, ts.URL+ex.path, bytes.NewReader(ex.request))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != ex.status {
				t.Fatalf("%s %s: status %d, spec says %d\nbody: %s", ex.method, ex.path, resp.StatusCode, ex.status, body)
			}
			if !bytes.Equal(body, ex.response) {
				t.Fatalf("%s %s: response differs from the PROTOCOL.md §6 example.\nIf the spec changed deliberately, regenerate the example bytes; if not, the implementation drifted.\ngot:\n%swant:\n%s%s",
					ex.method, ex.path, body, ex.response, diffHint(body, ex.response))
			}
		})
	}
}

// diffHint points at the first differing byte to spare eyeballing two long
// JSON documents.
func diffHint(got, want []byte) string {
	n := min(len(got), len(want))
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo := max(0, i-30)
			return fmt.Sprintf("\nfirst difference at byte %d: got %q, want %q", i, got[lo:min(len(got), i+10)], want[lo:min(len(want), i+10)])
		}
	}
	return fmt.Sprintf("\nbodies share a %d-byte prefix but differ in length (%d vs %d)", n, len(got), len(want))
}
