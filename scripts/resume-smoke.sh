#!/bin/sh
# End-to-end crash-recovery smoke test for checkpointed campaigns: run the
# golden campaign to completion for reference, kill -9 a live checkpointed
# run mid-campaign, resume it, and assert the resumed artifacts are
# byte-identical to the uninterrupted ones. Also exercises the SIGTERM
# drain (exit 3 + resumable hint) and a 20% transient-fault chaos campaign
# that must complete cleanly through retries.
#
# Pure POSIX sh: no test framework, no jq. CI runs this; `make resume-smoke`
# runs it locally.
set -eu

DIR="$(mktemp -d)"
PID=""
FLAGS="-all -injections 8 -q"
JOURNAL_HEADER=12 # magic + version; anything larger holds journaled runs

cleanup() {
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill -9 "$PID" 2>/dev/null || true
	fi
	rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
	echo "resume-smoke: FAIL: $*" >&2
	for log in run.log resume.log term.log chaos.log; do
		if [ -s "$DIR/$log" ]; then
			echo "--- $log ---" >&2
			cat "$DIR/$log" >&2
		fi
	done
	exit 1
}

# Poll until the journal at $1 holds at least one record, failing if the
# process $2 exits first.
wait_for_journal() {
	i=0
	while :; do
		if [ -f "$1" ]; then size=$(wc -c <"$1"); else size=0; fi
		[ "$size" -gt "$JOURNAL_HEADER" ] && return 0
		kill -0 "$2" 2>/dev/null || fail "campaign exited before journaling anything"
		i=$((i + 1))
		[ "$i" -ge 300 ] && fail "journal never grew past its header"
		sleep 0.1
	done
}

echo "resume-smoke: building cordbench"
go build -o "$DIR/cordbench" ./cmd/cordbench

echo "resume-smoke: reference run (uninterrupted)"
"$DIR/cordbench" $FLAGS -json "$DIR/ref" >/dev/null 2>"$DIR/run.log" \
	|| fail "reference campaign failed"

echo "resume-smoke: starting checkpointed run, then kill -9 mid-campaign"
"$DIR/cordbench" $FLAGS -checkpoint "$DIR/ck" -json "$DIR/out" \
	>/dev/null 2>"$DIR/run.log" &
PID=$!
wait_for_journal "$DIR/ck/journal.cordckpt" "$PID"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""
[ -d "$DIR/out" ] && [ -n "$(ls "$DIR/out" 2>/dev/null)" ] \
	&& fail "killed campaign wrote artifacts; the kill came too late to test recovery"
echo "resume-smoke: killed with $(wc -c <"$DIR/ck/journal.cordckpt") journal bytes on disk"

echo "resume-smoke: a re-run without -resume must refuse (exit 2)"
status=0
"$DIR/cordbench" $FLAGS -checkpoint "$DIR/ck" -json "$DIR/out" \
	>/dev/null 2>"$DIR/resume.log" || status=$?
[ "$status" -eq 2 ] || fail "re-run without -resume exited $status, want 2"

echo "resume-smoke: resuming"
"$DIR/cordbench" $FLAGS -checkpoint "$DIR/ck" -resume -json "$DIR/out" \
	>/dev/null 2>"$DIR/resume.log" || fail "resumed campaign failed"

n=0
for ref in "$DIR"/ref/BENCH_*.json; do
	out="$DIR/out/$(basename "$ref")"
	[ -f "$out" ] || fail "resumed run did not write $(basename "$ref")"
	cmp -s "$ref" "$out" || fail "$(basename "$ref") differs between resumed and uninterrupted runs"
	n=$((n + 1))
done
[ "$n" -gt 0 ] || fail "reference run produced no artifacts"
echo "resume-smoke: all $n resumed artifacts byte-identical to the uninterrupted run"

echo "resume-smoke: SIGTERM must drain and exit resumable (status 3)"
"$DIR/cordbench" $FLAGS -checkpoint "$DIR/ck-term" -json "$DIR/out-term" \
	>/dev/null 2>"$DIR/term.log" &
PID=$!
wait_for_journal "$DIR/ck-term/journal.cordckpt" "$PID"
kill -TERM "$PID"
status=0
wait "$PID" || status=$?
PID=""
[ "$status" -eq 3 ] || fail "SIGTERM run exited $status, want 3 (resumable)"
grep -q '\-resume' "$DIR/term.log" || fail "SIGTERM run did not print the resume hint"

echo "resume-smoke: 20% transient chaos must complete cleanly through retries"
CORD_CHAOS="run-fail=0.2,seed=7" "$DIR/cordbench" $FLAGS -json "$DIR/chaos" \
	>/dev/null 2>"$DIR/chaos.log" || fail "chaotic campaign failed"
for ref in "$DIR"/ref/BENCH_*.json; do
	cmp -s "$ref" "$DIR/chaos/$(basename "$ref")" \
		|| fail "$(basename "$ref") differs under transient chaos"
done
echo "resume-smoke: PASS (kill -9 recovery byte-identical; SIGTERM resumable; chaos retried to completion)"
