// Package cache models on-chip caches at line granularity: a generic
// set-associative LRU cache with a per-line payload (the CORD detector
// attaches timestamps and access bits as the payload), an unbounded variant
// for the InfCache/Ideal configurations, and a two-level inclusive private
// hierarchy used by the timing model.
//
// Values are not stored here — the simulator keeps word values in
// memsys.Memory; caches track only presence, recency and payload, which is
// what drives every CORD-relevant event (displacement, invalidation,
// history loss).
package cache

import (
	"fmt"

	"cord/internal/memsys"
)

type entry[P any] struct {
	line    memsys.Line
	payload P
}

// ubEntry is one line of the unbounded variant. Entries are allocated in
// arena chunks so payload pointers stay valid for the lifetime of the line
// (the Lookup contract) without one heap allocation per insert.
type ubEntry[P any] struct {
	line    memsys.Line
	payload P
	live    bool
}

// ubChunkLines is the arena chunk size of the unbounded cache.
const ubChunkLines = 256

// unboundedStore is an insertion-ordered line store: a lookup index over
// arena-allocated entries plus the insertion-order slice that ForEach and
// RemoveIf walk. Iteration order is therefore a pure function of the access
// stream — reproducible across runs and processes — unlike a Go map's
// randomized range order, which would leak into walker/retirement callback
// order and break the engine's determinism contract.
type unboundedStore[P any] struct {
	index map[memsys.Line]*ubEntry[P]
	order []*ubEntry[P] // insertion order; removed entries stay as tombstones
	arena []ubEntry[P]  // current allocation chunk
	dead  int           // tombstones in order
}

func (u *unboundedStore[P]) alloc() *ubEntry[P] {
	if len(u.arena) == 0 {
		u.arena = make([]ubEntry[P], ubChunkLines)
	}
	e := &u.arena[0]
	u.arena = u.arena[1:]
	return e
}

// compact drops tombstones once they outnumber live entries, preserving the
// relative order of the survivors. Entry pointers are unaffected (only the
// pointer slice is rebuilt), so amortized cost per removal is O(1).
func (u *unboundedStore[P]) compact() {
	if u.dead <= len(u.order)/2 || u.dead < ubChunkLines {
		return
	}
	out := u.order[:0]
	for _, e := range u.order {
		if e.live {
			out = append(out, e)
		}
	}
	u.order = out
	u.dead = 0
}

// Cache is a set-associative cache with LRU replacement over lines, carrying
// a payload P per resident line. A Cache with Ways == 0 is unbounded (fully
// associative, infinite capacity) — used by the Ideal and InfCache detector
// configurations.
type Cache[P any] struct {
	sets      [][]entry[P] // each set is MRU-first
	ways      int
	numSets   int
	unbounded *unboundedStore[P]

	// stats
	hits, misses, evictions uint64
}

// Config describes a bounded cache geometry.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
}

// Lines returns the number of lines the configured cache holds.
func (c Config) Lines() int { return c.SizeBytes / memsys.LineBytes }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Ways }

// Validate checks the geometry is consistent (power-of-two sets, divisible).
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.SizeBytes%memsys.LineBytes != 0 {
		return fmt.Errorf("cache: size %d not a multiple of line size", c.SizeBytes)
	}
	if c.Lines()%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", c.Lines(), c.Ways)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %d sets is not a power of two", sets)
	}
	return nil
}

// New returns a bounded cache with the given geometry. It panics on an
// invalid geometry: configurations are static experiment parameters, and an
// invalid one is a programming error.
func New[P any](cfg Config) *Cache[P] {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cache[P]{
		sets:    make([][]entry[P], cfg.Sets()),
		ways:    cfg.Ways,
		numSets: cfg.Sets(),
	}
}

// NewUnbounded returns a cache that never evicts. Its ForEach/RemoveIf
// iteration order is insertion order (re-inserting a removed line moves it
// to the end), which keeps every traversal deterministic.
func NewUnbounded[P any]() *Cache[P] {
	return &Cache[P]{unbounded: &unboundedStore[P]{index: make(map[memsys.Line]*ubEntry[P])}}
}

// Unbounded reports whether the cache has infinite capacity.
func (c *Cache[P]) Unbounded() bool { return c.unbounded != nil }

func (c *Cache[P]) setOf(l memsys.Line) int { return int(uint64(l) % uint64(c.numSets)) }

// Lookup returns a pointer to the payload of line l if resident, promoting it
// to most-recently-used. The pointer stays valid until the line is evicted or
// removed.
func (c *Cache[P]) Lookup(l memsys.Line) (*P, bool) {
	if c.unbounded != nil {
		if e, ok := c.unbounded.index[l]; ok {
			c.hits++
			return &e.payload, true
		}
		c.misses++
		return nil, false
	}
	set := c.sets[c.setOf(l)]
	for i := range set {
		if set[i].line == l {
			// Promote to MRU.
			e := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = e
			c.hits++
			return &set[0].payload, true
		}
	}
	c.misses++
	return nil, false
}

// Peek returns the payload of line l without touching recency or stats;
// remote snoops use it so that coherence traffic does not perturb local LRU
// state.
func (c *Cache[P]) Peek(l memsys.Line) (*P, bool) {
	if c.unbounded != nil {
		if e, ok := c.unbounded.index[l]; ok {
			return &e.payload, true
		}
		return nil, false
	}
	set := c.sets[c.setOf(l)]
	for i := range set {
		if set[i].line == l {
			return &set[i].payload, true
		}
	}
	return nil, false
}

// Contains reports residency without touching recency or stats.
func (c *Cache[P]) Contains(l memsys.Line) bool {
	if c.unbounded != nil {
		_, ok := c.unbounded.index[l]
		return ok
	}
	for _, e := range c.sets[c.setOf(l)] {
		if e.line == l {
			return true
		}
	}
	return false
}

// Victim describes a line displaced by Insert.
type Victim[P any] struct {
	Line    memsys.Line
	Payload P
}

// Insert installs line l with the given payload as MRU and returns the
// displaced victim, if any. Inserting a line that is already resident
// replaces its payload and promotes it (no victim).
func (c *Cache[P]) Insert(l memsys.Line, payload P) (Victim[P], bool) {
	if c.unbounded != nil {
		u := c.unbounded
		if e, ok := u.index[l]; ok {
			e.payload = payload
			return Victim[P]{}, false
		}
		e := u.alloc()
		*e = ubEntry[P]{line: l, payload: payload, live: true}
		u.order = append(u.order, e)
		u.index[l] = e
		return Victim[P]{}, false
	}
	si := c.setOf(l)
	set := c.sets[si]
	for i := range set {
		if set[i].line == l {
			e := entry[P]{line: l, payload: payload}
			copy(set[1:i+1], set[:i])
			set[0] = e
			return Victim[P]{}, false
		}
	}
	if len(set) < c.ways {
		set = append(set, entry[P]{})
		copy(set[1:], set[:len(set)-1])
		set[0] = entry[P]{line: l, payload: payload}
		c.sets[si] = set
		return Victim[P]{}, false
	}
	// Evict LRU (last element).
	v := Victim[P]{Line: set[len(set)-1].line, Payload: set[len(set)-1].payload}
	copy(set[1:], set[:len(set)-1])
	set[0] = entry[P]{line: l, payload: payload}
	c.evictions++
	return v, true
}

// Remove deletes line l (invalidation), returning its payload if resident.
func (c *Cache[P]) Remove(l memsys.Line) (P, bool) {
	var zero P
	if c.unbounded != nil {
		u := c.unbounded
		e, ok := u.index[l]
		if !ok {
			return zero, false
		}
		delete(u.index, l)
		e.live = false
		u.dead++
		p := e.payload
		e.payload = zero // release payload references for the GC
		u.compact()
		return p, true
	}
	si := c.setOf(l)
	set := c.sets[si]
	for i := range set {
		if set[i].line == l {
			p := set[i].payload
			c.sets[si] = append(set[:i], set[i+1:]...)
			return p, true
		}
	}
	return zero, false
}

// Len returns the number of resident lines.
func (c *Cache[P]) Len() int {
	if c.unbounded != nil {
		return len(c.unbounded.index)
	}
	n := 0
	for _, s := range c.sets {
		n += len(s)
	}
	return n
}

// ForEach visits every resident line in a deterministic order — insertion
// order for the unbounded variant, set-then-recency order for bounded
// geometries. The visit function may mutate the payload through the pointer
// but must not insert or remove lines.
func (c *Cache[P]) ForEach(fn func(l memsys.Line, p *P)) {
	if c.unbounded != nil {
		for _, e := range c.unbounded.order {
			if e.live {
				fn(e.line, &e.payload)
			}
		}
		return
	}
	for _, set := range c.sets {
		for i := range set {
			fn(set[i].line, &set[i].payload)
		}
	}
}

// RemoveIf deletes every resident line for which pred returns true, invoking
// onRemove for each removed line. Lines are visited in the same deterministic
// order as ForEach, so retirement callbacks fire in a reproducible sequence.
// The cache walker (§2.7.5) uses this to retire stale timestamps.
func (c *Cache[P]) RemoveIf(pred func(l memsys.Line, p *P) bool, onRemove func(l memsys.Line, p P)) int {
	removed := 0
	if c.unbounded != nil {
		u := c.unbounded
		var zero P
		for _, e := range u.order {
			if !e.live || !pred(e.line, &e.payload) {
				continue
			}
			delete(u.index, e.line)
			e.live = false
			u.dead++
			if onRemove != nil {
				onRemove(e.line, e.payload)
			}
			e.payload = zero
			removed++
		}
		u.compact()
		return removed
	}
	for si, set := range c.sets {
		out := set[:0]
		for i := range set {
			if pred(set[i].line, &set[i].payload) {
				if onRemove != nil {
					onRemove(set[i].line, set[i].payload)
				}
				removed++
				continue
			}
			out = append(out, set[i])
		}
		c.sets[si] = out
	}
	return removed
}

// Stats returns cumulative hit/miss/eviction counts.
func (c *Cache[P]) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}
