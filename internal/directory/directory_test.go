package directory

import (
	"testing"

	"cord/internal/memsys"
)

func TestSharerTracking(t *testing.T) {
	d := New(4)
	l := memsys.Line(7)
	d.AddSharer(l, 0)
	d.AddSharer(l, 2)
	got := d.Sharers(l, 0, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("sharers = %v", got)
	}
	d.SetExclusive(l, 3)
	got = d.Sharers(l, 1, nil)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("after exclusive: %v", got)
	}
	d.RemoveSharer(l, 3)
	if d.Lines() != 0 {
		t.Fatal("empty line not reclaimed")
	}
}

func TestMessageAccounting(t *testing.T) {
	d := New(8)
	d.Request(3)
	d.Request(0)
	d.MemTsUpdate(2)
	st := d.Stats()
	if st.Requests != 2 || st.Forwards != 3 || st.Responses != 3 || st.MemTsMessages != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestValidate(t *testing.T) {
	d := New(2)
	d.AddSharer(3, 0)
	ok := func(l memsys.Line, p int) bool { return l == 3 && p == 0 }
	if err := d.Validate(ok); err != nil {
		t.Fatal(err)
	}
	bad := func(memsys.Line, int) bool { return false }
	if err := d.Validate(bad); err == nil {
		t.Fatal("inconsistency not caught")
	}
}

func TestProcLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("65 procs accepted")
		}
	}()
	New(65)
}
