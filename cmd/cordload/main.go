// Command cordload drives a running cordd with a concurrent-client sweep
// and reports throughput and latency per stage — the load-testing workflow
// of EXPERIMENTS.md. On the wire it speaks only the service's formats (JSON
// bodies and the PROTOCOL.md binary log), so it can be pointed at any cordd;
// the one in-process exception is -duty, which records a real order log with
// the engine so the online replay has a run to follow.
//
// Usage:
//
//	cordd -addr :8080 &
//	cordload -addr http://127.0.0.1:8080 -sweep 1,2,4,8 -n 32 -app fft
//	cordload -addr http://127.0.0.1:8080 -stream -sweep 1,2,4 -n 8 \
//	    -frames 200000 -perf-out bench/BENCH_perf.json
//
// Each stage issues -n detect sessions (seeds base, base+1, ...) from the
// stage's client count and prints wall-clock, requests/s and latency
// quantiles. A 429 is backpressure, not failure: the client honors the
// server's Retry-After hint (capped at -retry-cap) and retries the session
// up to -retries attempts, counting retries separately so pushback stays
// visible in the summary. The final section echoes the server's /metrics
// session counters.
//
// With -stream, the sweep drives POST /v1/stream instead: every session
// uploads a synthetic order log of -frames wire-format entries in chunked
// pieces (verify=0, so the measurement is pure ingest, not detection
// re-execution) and each stage reports sustained records/sec. -perf-out
// merges the best stage into a BENCH_perf.json perf-trajectory artifact as
// its "streaming" slice, preserving any benchmark rows already recorded.
//
// With -stream -duty "0,50,100", the sweep instead measures online race
// detection (PROTOCOL.md §4.7): a real order log is recorded in-process
// (the synthetic stream corresponds to no actual run, so the online replay
// would just diverge), then streamed with detect=online at each duty point.
// The duty=0 row is the ingest baseline; duty=100 prices full mid-stream
// detection. -perf-out records the sweep as the "streaming-online" slice.
//
// With -progress http://coordinator:9090, cordload instead follows a running
// distributed campaign: it polls the coordinator's GET /v1/campaign/progress
// resource (PROTOCOL.md §7, served by cordbench -progress-addr) every
// -progress-interval and prints one status line per poll — cells done, shard
// steals/requeues, per-worker health — exiting 0 once the campaign reports
// complete (or the coordinator, its work done, goes away).
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"cord/internal/httpretry"
	"cord/internal/perf"
	"cord/internal/replay"
	"cord/internal/workload"
)

// detectRequest mirrors server.DetectRequest; cordload speaks the wire
// format only, so it can be built and pointed at any cordd without version
// coupling.
type detectRequest struct {
	App     string `json:"app"`
	Seed    uint64 `json:"seed"`
	Scale   int    `json:"scale,omitempty"`
	Threads int    `json:"threads,omitempty"`
	D       int    `json:"d,omitempty"`
}

// parseSweep parses a comma-separated list of client counts.
func parseSweep(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-sweep must name at least one client count")
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-sweep entry %q: %v", part, err)
		}
		if n < 1 {
			return nil, fmt.Errorf("-sweep entry %d: client counts must be at least 1", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// validateFlags rejects out-of-domain load parameters up front (exit 2 +
// usage), like every other cord binary.
func validateFlags(n, scale, threads, d, retries int, retryCap time.Duration) error {
	if n < 1 {
		return fmt.Errorf("-n must be at least 1")
	}
	if threads > 1<<16-1 {
		return fmt.Errorf("-threads must fit the wire format's 16-bit thread id")
	}
	if scale < 1 {
		return fmt.Errorf("-scale must be at least 1")
	}
	if threads < 1 {
		return fmt.Errorf("-threads must be at least 1")
	}
	if d < 1 {
		return fmt.Errorf("-d must be at least 1")
	}
	if retries < 1 {
		return fmt.Errorf("-retries must be at least 1 (the first attempt counts)")
	}
	if retryCap <= 0 {
		return fmt.Errorf("-retry-cap must be positive")
	}
	return nil
}

type stageResult struct {
	clients   int
	ok        int
	retries   int // 429 responses that were retried after Retry-After
	errors    int
	wall      time.Duration
	latencies []time.Duration
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of the cordd to load")
		app      = flag.String("app", "fft", "application for the detect sessions")
		seed     = flag.Uint64("seed", 1, "base seed; request i uses seed+i")
		scale    = flag.Int("scale", 1, "workload scale factor")
		threads  = flag.Int("threads", 4, "simulated threads")
		d        = flag.Int("d", 16, "CORD sync-read window D")
		n        = flag.Int("n", 32, "requests per sweep stage")
		sweep    = flag.String("sweep", "1,2,4,8", "comma-separated concurrent-client counts")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-request client timeout")
		retries  = flag.Int("retries", 5, "attempts per session before a 429 becomes a hard error")
		retryCap = flag.Duration("retry-cap", 5*time.Second, "upper bound on one Retry-After sleep")
		stream   = flag.Bool("stream", false, "drive POST /v1/stream sessions instead of /v1/detect")
		frames   = flag.Int("frames", 200000, "order-record frames per stream session (with -stream)")
		chunk    = flag.Int("chunk", 64<<10, "upload chunk size in bytes (with -stream)")
		duty     = flag.String("duty", "", "comma-separated duty percentages: sweep detect=online at each (with -stream)")
		perfOut  = flag.String("perf-out", "", "merge the best -stream stage into this BENCH_perf.json")

		progressURL = flag.String("progress", "", "poll this coordinator's GET /v1/campaign/progress until the campaign completes (PROTOCOL.md §7)")
		progressInt = flag.Duration("progress-interval", time.Second, "poll cadence for -progress")
	)
	flag.Parse()

	if *progressURL != "" {
		if *progressInt <= 0 {
			fmt.Fprintf(os.Stderr, "cordload: -progress-interval must be positive\n")
			flag.Usage()
			return 2
		}
		return watchProgress(&http.Client{Timeout: *timeout}, *progressURL, *progressInt)
	}

	if err := validateFlags(*n, *scale, *threads, *d, *retries, *retryCap); err != nil {
		fmt.Fprintf(os.Stderr, "cordload: %v\n", err)
		flag.Usage()
		return 2
	}
	if *stream && (*frames < 1 || *chunk < 1) {
		fmt.Fprintf(os.Stderr, "cordload: -frames and -chunk must be at least 1\n")
		flag.Usage()
		return 2
	}
	stages, err := parseSweep(*sweep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordload: %v\n", err)
		flag.Usage()
		return 2
	}

	client := &http.Client{Timeout: *timeout}
	if _, err := fetch(client, *addr+"/healthz"); err != nil {
		fmt.Fprintf(os.Stderr, "cordload: server not healthy: %v\n", err)
		return 1
	}

	// Jittered per session key, so a stage's worth of throttled clients does
	// not re-dogpile the server on the same fallback schedule.
	policy := httpretry.Policy{Attempts: *retries, Fallback: 250 * time.Millisecond, Cap: *retryCap, Jitter: 0.5}
	if *stream {
		p := streamParams{
			app: *app, seed: *seed, scale: *scale, threads: *threads, frames: *frames, chunk: *chunk,
		}
		if *duty != "" {
			duties, err := parseDuties(*duty)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cordload: %v\n", err)
				flag.Usage()
				return 2
			}
			return runOnlineSweep(client, *addr, stages, *n, policy, p, duties, *perfOut)
		}
		return runStreamSweep(client, *addr, stages, *n, policy, p, *perfOut)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "clients\tok\tretries\terrors\twall\treq/s\tp50\tp95\tmax")
	for _, c := range stages {
		res := runStage(client, *addr, c, *n, policy, detectRequest{
			App: *app, Seed: *seed, Scale: *scale, Threads: *threads, D: *d,
		})
		sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
		rps := float64(res.ok) / res.wall.Seconds()
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.2fs\t%.1f\t%s\t%s\t%s\n",
			res.clients, res.ok, res.retries, res.errors, res.wall.Seconds(), rps,
			quantile(res.latencies, 0.50).Round(time.Millisecond),
			quantile(res.latencies, 0.95).Round(time.Millisecond),
			quantile(res.latencies, 1.00).Round(time.Millisecond))
		w.Flush()
		if res.errors > 0 {
			fmt.Fprintf(os.Stderr, "cordload: stage %d finished with %d hard errors\n", c, res.errors)
		}
	}

	metrics, err := fetch(client, *addr+"/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordload: fetching /metrics: %v\n", err)
		return 1
	}
	fmt.Println("\nserver /metrics after the sweep:")
	os.Stdout.Write(metrics)
	return 0
}

// runStage issues n detect sessions from c concurrent clients; request i
// uses seed base+i so every session is distinct work. 429 responses retry
// under the stage's policy; a session that stays throttled through every
// attempt counts as one hard error.
func runStage(client *http.Client, addr string, c, n int, policy httpretry.Policy, base detectRequest) stageResult {
	res := stageResult{clients: c}
	var next atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for k := 0; k < c; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				req := base
				req.Seed += uint64(i)
				body, _ := json.Marshal(req)
				for attempt := 1; ; attempt++ {
					t0 := time.Now()
					resp, err := client.Post(addr+"/v1/detect", "application/json", bytes.NewReader(body))
					lat := time.Since(t0)
					throttled := false
					var sleep time.Duration
					mu.Lock()
					switch {
					case err != nil:
						res.errors++
					case resp.StatusCode == http.StatusOK:
						res.ok++
						res.latencies = append(res.latencies, lat)
					case resp.StatusCode == http.StatusTooManyRequests && attempt < policy.Attempts:
						res.retries++
						throttled = true
						sleep = policy.RetryAfterKeyed(resp.Header.Get("Retry-After"),
							fmt.Sprintf("%s|%d", addr, i), attempt)
					default: // non-429 failure, or throttled out of attempts
						res.errors++
					}
					mu.Unlock()
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					if !throttled {
						break
					}
					time.Sleep(sleep)
				}
			}
		}()
	}
	wg.Wait()
	res.wall = time.Since(start)
	return res
}

// parseDuties parses the -duty list: distinct integers in [0, 100].
func parseDuties(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-duty entry %q: %v", part, err)
		}
		if n < 0 || n > 100 {
			return nil, fmt.Errorf("-duty entry %d: duty percentages live in [0, 100]", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-duty must name at least one percentage")
	}
	return out, nil
}

// streamParams configures one streaming-throughput sweep.
type streamParams struct {
	app     string
	seed    uint64
	scale   int
	threads int
	frames  int
	chunk   int
}

// syntheticStream builds one wire-format order log (PROTOCOL.md §2) of the
// requested frame count: threads take turns, each thread's clock advances by
// one per round, so the stream satisfies the per-thread ordering invariants
// any real recording has. Built once per sweep and shared read-only by every
// session.
func syntheticStream(frames, threads int) []byte {
	b := make([]byte, 16+8*frames)
	copy(b[0:4], "CORD")
	binary.LittleEndian.PutUint32(b[4:8], 1)
	binary.LittleEndian.PutUint64(b[8:16], uint64(frames))
	off := 16
	for i := 0; i < frames; i++ {
		binary.LittleEndian.PutUint16(b[off:], uint16(i/threads))   // clock
		binary.LittleEndian.PutUint16(b[off+2:], uint16(i%threads)) // thread
		binary.LittleEndian.PutUint32(b[off+4:], 100)               // instr
		off += 8
	}
	return b
}

// chunkReader hides the body's length (forcing chunked transfer encoding)
// and caps every Read at n bytes, so the server ingests the session the way
// a live recorder would deliver it: incrementally.
type chunkReader struct {
	r io.Reader
	n int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(p) > c.n {
		p = p[:c.n]
	}
	return c.r.Read(p)
}

type streamStageResult struct {
	streams   int
	ok        int
	retries   int
	errors    int
	wall      time.Duration
	latencies []time.Duration
}

// runStreamSweep drives the sustained-throughput mode: each stage runs n
// /v1/stream sessions from c concurrent clients and reports records/sec —
// ingested frames per second of stage wall-clock. The best stage is merged
// into the BENCH_perf.json artifact when -perf-out names one.
func runStreamSweep(client *http.Client, addr string, stages []int, n int, policy httpretry.Policy, p streamParams, perfOut string) int {
	body := syntheticStream(p.frames, p.threads)
	fmt.Printf("streaming %d sessions/stage, %d frames (%d bytes) each, chunk %d\n",
		n, p.frames, len(body), p.chunk)

	query := fmt.Sprintf("/v1/stream?app=%s&seed=%d&threads=%d&verify=0", p.app, p.seed, p.threads)
	var best *perf.StreamingPerf
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "streams\tok\tretries\terrors\twall\trecords/s\tp50\tp95\tmax")
	exit := 0
	for _, c := range stages {
		res := runStreamStage(client, addr, query, c, n, policy, p, body)
		sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
		recs := float64(res.ok) * float64(p.frames) / res.wall.Seconds()
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.2fs\t%.0f\t%s\t%s\t%s\n",
			res.streams, res.ok, res.retries, res.errors, res.wall.Seconds(), recs,
			quantile(res.latencies, 0.50).Round(time.Millisecond),
			quantile(res.latencies, 0.95).Round(time.Millisecond),
			quantile(res.latencies, 1.00).Round(time.Millisecond))
		w.Flush()
		if res.errors > 0 {
			fmt.Fprintf(os.Stderr, "cordload: stage %d finished with %d hard errors\n", c, res.errors)
			exit = 1
		}
		if res.ok > 0 && (best == nil || recs > best.RecordsPerSec) {
			best = &perf.StreamingPerf{
				Streams:          c,
				Sessions:         res.ok,
				FramesPerSession: p.frames,
				RecordsPerSec:    recs,
				WallClockMs:      float64(res.wall) / float64(time.Millisecond),
			}
		}
	}

	metrics, err := fetch(client, addr+"/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordload: fetching /metrics: %v\n", err)
		return 1
	}
	fmt.Println("\nserver /metrics after the sweep:")
	os.Stdout.Write(metrics)

	if perfOut != "" {
		if best == nil {
			fmt.Fprintf(os.Stderr, "cordload: no successful stage; not touching %s\n", perfOut)
			return 1
		}
		if err := mergeStreamingPerf(perfOut, best); err != nil {
			fmt.Fprintf(os.Stderr, "cordload: %v\n", err)
			return 1
		}
		fmt.Printf("\nrecorded %.0f records/sec (streams=%d) into %s\n",
			best.RecordsPerSec, best.Streams, perfOut)
	}
	return exit
}

// runStreamStage uploads n copies of one stream body from c concurrent
// clients against the given /v1/stream query. 429 pushback (all stream slots
// busy) retries under the same policy the detect sweep uses.
func runStreamStage(client *http.Client, addr, query string, c, n int, policy httpretry.Policy, p streamParams, body []byte) streamStageResult {
	res := streamStageResult{streams: c}
	var next atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for k := 0; k < c; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				for attempt := 1; ; attempt++ {
					t0 := time.Now()
					resp, err := client.Post(addr+query, "application/octet-stream",
						&chunkReader{r: bytes.NewReader(body), n: p.chunk})
					lat := time.Since(t0)
					throttled := false
					var sleep time.Duration
					mu.Lock()
					switch {
					case err != nil:
						res.errors++
					case resp.StatusCode == http.StatusOK:
						res.ok++
						res.latencies = append(res.latencies, lat)
					case resp.StatusCode == http.StatusTooManyRequests && attempt < policy.Attempts:
						res.retries++
						throttled = true
						sleep = policy.RetryAfterKeyed(resp.Header.Get("Retry-After"),
							fmt.Sprintf("%s|%d", addr, i), attempt)
					default:
						res.errors++
					}
					mu.Unlock()
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					if !throttled {
						break
					}
					time.Sleep(sleep)
				}
			}
		}()
	}
	wg.Wait()
	res.wall = time.Since(start)
	return res
}

// recordedStream records a real order log in-process (the engine with a
// recording CORD detector, the exact configuration /v1/detect re-executes)
// and returns its wire bytes plus the frame count. Online replay needs a log
// that corresponds to an actual run; the synthetic stream does not.
func recordedStream(appName string, seed uint64, scale, threads int) ([]byte, int, error) {
	app, err := workload.ByName(appName)
	if err != nil {
		return nil, 0, err
	}
	out, err := replay.RecordAndReplay(app.Build(scale, threads), replay.Options{Seed: seed, Jitter: 7})
	if err != nil {
		return nil, 0, err
	}
	if !out.Match {
		return nil, 0, fmt.Errorf("recording fixture: %s", out.Mismatch)
	}
	var buf bytes.Buffer
	if err := out.Log.EncodeTo(&buf); err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), out.Log.Len(), nil
}

// runOnlineSweep measures detect=online throughput at each duty point: one
// recorded fixture, streamed n times per stage per duty with the online
// replay following along. Every duty's best stage lands in the report, so
// the artifact shows how throughput scales with detection coverage.
func runOnlineSweep(client *http.Client, addr string, stages []int, n int, policy httpretry.Policy, p streamParams, duties []int, perfOut string) int {
	body, frames, err := recordedStream(p.app, p.seed, p.scale, p.threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordload: %v\n", err)
		return 1
	}
	fmt.Printf("online sweep: %d sessions/stage, recorded fixture %d frames (%d bytes), chunk %d, duties %v\n",
		n, frames, len(body), p.chunk, duties)

	var rows []perf.OnlineDutyPerf
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "duty\tstreams\tok\tretries\terrors\twall\trecords/s\tp50\tp95\tmax")
	exit := 0
	for _, duty := range duties {
		query := fmt.Sprintf("/v1/stream?app=%s&seed=%d&scale=%d&threads=%d&verify=0&detect=online&duty=%d",
			p.app, p.seed, p.scale, p.threads, duty)
		var best *perf.OnlineDutyPerf
		for _, c := range stages {
			res := runStreamStage(client, addr, query, c, n, policy, p, body)
			sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
			recs := float64(res.ok) * float64(frames) / res.wall.Seconds()
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.2fs\t%.0f\t%s\t%s\t%s\n",
				duty, res.streams, res.ok, res.retries, res.errors, res.wall.Seconds(), recs,
				quantile(res.latencies, 0.50).Round(time.Millisecond),
				quantile(res.latencies, 0.95).Round(time.Millisecond),
				quantile(res.latencies, 1.00).Round(time.Millisecond))
			w.Flush()
			if res.errors > 0 {
				fmt.Fprintf(os.Stderr, "cordload: duty %d stage %d finished with %d hard errors\n", duty, c, res.errors)
				exit = 1
			}
			if res.ok > 0 && (best == nil || recs > best.RecordsPerSec) {
				best = &perf.OnlineDutyPerf{
					Duty:             duty,
					Streams:          c,
					Sessions:         res.ok,
					FramesPerSession: frames,
					RecordsPerSec:    recs,
					WallClockMs:      float64(res.wall) / float64(time.Millisecond),
				}
			}
		}
		if best != nil {
			rows = append(rows, *best)
		}
	}

	metrics, err := fetch(client, addr+"/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordload: fetching /metrics: %v\n", err)
		return 1
	}
	fmt.Println("\nserver /metrics after the sweep:")
	os.Stdout.Write(metrics)

	if perfOut != "" {
		if len(rows) != len(duties) {
			fmt.Fprintf(os.Stderr, "cordload: only %d of %d duty points succeeded; not touching %s\n",
				len(rows), len(duties), perfOut)
			return 1
		}
		if err := mergeOnlinePerf(perfOut, rows); err != nil {
			fmt.Fprintf(os.Stderr, "cordload: %v\n", err)
			return 1
		}
		fmt.Printf("\nrecorded %d-point duty sweep into %s\n", len(rows), perfOut)
	}
	return exit
}

// mergeOnlinePerf sets the streaming-online slice of the perf-trajectory
// artifact, preserving everything else already recorded.
func mergeOnlinePerf(path string, rows []perf.OnlineDutyPerf) error {
	r, err := perf.Read(path)
	if errors.Is(err, fs.ErrNotExist) {
		r = perf.NewReport()
	} else if err != nil {
		return err
	}
	r.StreamingOnline = rows
	return perf.Write(path, r)
}

// mergeStreamingPerf sets the streaming slice of the perf-trajectory
// artifact, preserving benchmark and campaign rows if the file already
// holds a readable report (a missing file starts a fresh one).
func mergeStreamingPerf(path string, s *perf.StreamingPerf) error {
	r, err := perf.Read(path)
	if errors.Is(err, fs.ErrNotExist) {
		r = perf.NewReport()
	} else if err != nil {
		return err
	}
	r.Streaming = s
	return perf.Write(path, r)
}

// progressReport and progressWorker mirror the coordinator's §7 progress
// resource on the wire, like detectRequest does for /v1/detect: cordload
// stays a pure wire client.
type progressReport struct {
	Schema         int              `json:"schema"`
	Campaign       string           `json:"campaign"`
	Fingerprint    string           `json:"fingerprint"`
	CellsDone      int              `json:"cells_done"`
	CellsTotal     int              `json:"cells_total"`
	ShardsStolen   int              `json:"shards_stolen"`
	ShardsRequeued int              `json:"shards_requeued"`
	Workers        []progressWorker `json:"workers"`
}

type progressWorker struct {
	URL            string  `json:"url"`
	Health         string  `json:"health"`
	ShardsDone     int     `json:"shards_done"`
	ShardsQueued   int     `json:"shards_queued"`
	ShardsInFlight int     `json:"shards_in_flight"`
	LatencyEwmaMs  float64 `json:"latency_ewma_ms"`
}

// watchProgress polls a coordinator's campaign-progress resource until the
// campaign reports every cell done. The coordinator serves the resource only
// while it dispatches, so once at least one poll has succeeded, a vanished
// endpoint means the campaign ended — reported as such, exit 0. A coordinator
// that never answers is exit 1.
func watchProgress(client *http.Client, base string, interval time.Duration) int {
	url := strings.TrimRight(base, "/")
	if !strings.HasSuffix(url, "/v1/campaign/progress") {
		url += "/v1/campaign/progress"
	}
	seen := false
	for {
		b, err := fetch(client, url)
		if err != nil {
			if seen {
				fmt.Printf("coordinator at %s gone; campaign ended\n", base)
				return 0
			}
			fmt.Fprintf(os.Stderr, "cordload: polling %s: %v\n", url, err)
			return 1
		}
		var p progressReport
		if err := json.Unmarshal(b, &p); err != nil {
			fmt.Fprintf(os.Stderr, "cordload: unparsable progress from %s: %v\n", url, err)
			return 1
		}
		if !seen {
			fmt.Printf("campaign %s (fingerprint %s): %d cells\n", p.Campaign, p.Fingerprint, p.CellsTotal)
			seen = true
		}
		healths := map[string]int{}
		for _, w := range p.Workers {
			healths[w.Health]++
		}
		fmt.Printf("%d/%d cells  workers live=%d suspect=%d dead=%d  stolen=%d requeued=%d\n",
			p.CellsDone, p.CellsTotal, healths["live"], healths["suspect"], healths["dead"],
			p.ShardsStolen, p.ShardsRequeued)
		if p.CellsTotal > 0 && p.CellsDone >= p.CellsTotal {
			fmt.Println("campaign complete")
			return 0
		}
		time.Sleep(interval)
	}
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return b, nil
}
