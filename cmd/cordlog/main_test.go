package main

import "testing"

// TestValidateFlags: a negative dump count or a non-positive thread bound is
// an invocation error (exit 2 + usage), matching the other cord binaries.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		threads int
		wantErr bool
	}{
		{"defaults", 50, 64, false},
		{"zero n dumps nothing", 0, 64, false},
		{"single thread bound", 50, 1, false},
		{"negative n", -1, 64, true},
		{"zero threads", 50, 0, true},
		{"negative threads", 50, -8, true},
	}
	for _, tc := range cases {
		err := validateFlags(tc.n, tc.threads)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: validateFlags(%d, %d) = %v, wantErr=%v",
				tc.name, tc.n, tc.threads, err, tc.wantErr)
		}
	}
}
