package sim

import (
	"errors"
	"testing"
	"time"

	"cord/internal/memsys"
	"cord/internal/record"
)

// feedProg is a two-phase program with real blocking: thread 1 sets a flag
// thread 0 waits on, then both accumulate into disjoint words.
func feedProg() (Program, *memsys.Allocator) {
	al := memsys.NewAllocator()
	flag := NewFlag(al)
	out := al.Alloc(2)
	return Program{
		Name:    "feedprog",
		Threads: 2,
		Body: func(th int, env *Env) {
			if th == 0 {
				flag.WaitAtLeast(env, 1)
				for i := 0; i < 8; i++ {
					env.Write(out.Word(0), uint64(i))
				}
			} else {
				for i := 0; i < 4; i++ {
					env.Write(out.Word(1), uint64(i))
				}
				flag.Set(env, 1)
				for i := 0; i < 4; i++ {
					env.Write(out.Word(1), uint64(10+i))
				}
			}
		},
	}, al
}

// recordSchedule records feedProg under a CORD-style order observer by
// running it in normal mode with a recording epoch builder: rather than pull
// in internal/core (an import cycle for this package's tests), derive the
// epoch schedule from the committed ThreadInstr split — one epoch per thread
// per phase is enough to drive the replay scheduler through its blocking
// path deterministically.
func recordSchedule(t *testing.T) []record.Epoch {
	t.Helper()
	// Thread 1 must run first (it sets the flag), then thread 0.
	// Instruction counts come from one normal-mode run.
	prog, _ := feedProg()
	res, err := New(Config{Seed: 42, Jitter: 3}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Split each thread's committed instructions into a few epochs with
	// strictly interleaved times; thread 1's first epoch covers through the
	// flag set so thread 0 can wake.
	t0, t1 := res.ThreadInstr[0], res.ThreadInstr[1]
	if t0 == 0 || t1 < 6 {
		t.Fatalf("unexpected instruction split: %v", res.ThreadInstr)
	}
	return []record.Epoch{
		{Time: 1, Thread: 1, Instr: uint32(t1 - 4), Index: 0},
		{Time: 2, Thread: 0, Instr: uint32(t0 / 2), Index: 1},
		{Time: 2, Thread: 1, Instr: 4, Index: 2},
		{Time: 3, Thread: 0, Instr: uint32(t0 - t0/2), Index: 3},
	}
}

// TestReplayFeedMatchesBatch: driving the same epoch schedule through a
// ReplayFeed — appended one epoch at a time from another goroutine, with the
// engine repeatedly catching up and blocking — produces a Result identical
// to ReplayEpochs batch replay.
func TestReplayFeedMatchesBatch(t *testing.T) {
	epochs := recordSchedule(t)

	progA, _ := feedProg()
	want, err := New(Config{Seed: 42, ReplayEpochs: epochs}, progA).Run()
	if err != nil {
		t.Fatalf("batch replay: %v", err)
	}

	progB, _ := feedProg()
	feed := NewReplayFeed()
	go func() {
		for _, ep := range epochs {
			feed.Append(ep)
			time.Sleep(time.Millisecond) // force the engine to block between epochs
		}
		feed.CloseFeed()
	}()
	got, err := New(Config{Seed: 42, ReplayFeed: feed}, progB).Run()
	if err != nil {
		t.Fatalf("feed replay: %v", err)
	}

	if got.Ops != want.Ops || got.Cycles != want.Cycles || got.Accesses != want.Accesses {
		t.Fatalf("feed result differs: got %+v want %+v", got, want)
	}
	for i := range want.ReadHash {
		if got.ReadHash[i] != want.ReadHash[i] {
			t.Fatalf("thread %d read hash differs", i)
		}
	}
	if !got.Mem.Equal(want.Mem) {
		t.Fatal("final memory images differ")
	}
}

// TestReplayFeedOnEpoch: the OnEpoch callback fires once per index in order,
// starting at 0 and ending one past the last epoch.
func TestReplayFeedOnEpoch(t *testing.T) {
	epochs := recordSchedule(t)
	prog, _ := feedProg()
	feed := NewReplayFeed()
	feed.Append(epochs...)
	feed.CloseFeed()

	var calls []int
	_, err := New(Config{
		Seed:       42,
		ReplayFeed: feed,
		OnEpoch:    func(idx int) { calls = append(calls, idx) },
	}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(epochs)+1 {
		t.Fatalf("OnEpoch called %d times, want %d (calls: %v)", len(calls), len(epochs)+1, calls)
	}
	for i, idx := range calls {
		if idx != i {
			t.Fatalf("OnEpoch call %d has index %d (calls: %v)", i, idx, calls)
		}
	}
}

// TestReplayFeedCancelWhileWaiting: an engine blocked on an open, empty feed
// honors Cancel promptly and returns ErrCanceled — the session-abort path of
// the streaming service.
func TestReplayFeedCancelWhileWaiting(t *testing.T) {
	prog, _ := feedProg()
	feed := NewReplayFeed()
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := New(Config{Seed: 42, ReplayFeed: feed, Cancel: cancel}, prog).Run()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the engine reach the feed wait
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("Run returned %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("engine did not honor Cancel while waiting on the feed")
	}
}

// TestReplayFeedEqualTimeArrivesLate: the equal-time reordering path must
// wait for a concurrent epoch that has not been appended yet instead of
// declaring the replay hung. Thread 0 blocks immediately; its designated
// epoch cannot run until thread 1's equal-time epoch arrives.
func TestReplayFeedEqualTimeArrivesLate(t *testing.T) {
	prog, _ := feedProg()
	res, err := New(Config{Seed: 42, Jitter: 3}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	t0, t1 := uint32(res.ThreadInstr[0]), uint32(res.ThreadInstr[1])
	// Equal-time pair up front: the schedule designates blocked thread 0
	// first, so progress requires reordering with thread 1's epoch.
	epochs := []record.Epoch{
		{Time: 1, Thread: 0, Instr: t0, Index: 0},
		{Time: 1, Thread: 1, Instr: t1, Index: 1},
	}
	feed := NewReplayFeed()
	feed.Append(epochs[0])
	go func() {
		time.Sleep(20 * time.Millisecond)
		feed.Append(epochs[1])
		feed.CloseFeed()
	}()
	got, err := New(Config{Seed: 42, ReplayFeed: feed}, prog).Run()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got.Hung {
		t.Fatal("replay hung instead of waiting for the late equal-time epoch")
	}
	if got.Ops != res.Ops {
		t.Fatalf("replay committed %d ops, want %d", got.Ops, res.Ops)
	}
}

// TestFeedAppendAfterClosePanics pins the misuse guard.
func TestFeedAppendAfterClosePanics(t *testing.T) {
	feed := NewReplayFeed()
	feed.CloseFeed()
	defer func() {
		if recover() == nil {
			t.Fatal("Append after CloseFeed did not panic")
		}
	}()
	feed.Append(record.Epoch{})
}
