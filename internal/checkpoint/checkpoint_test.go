package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type outcome struct {
	Races int            `json:"races"`
	Hung  bool           `json:"hung"`
	Per   map[string]int `json:"per,omitempty"`
}

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.cordckpt")
}

// TestRoundTrip: appended records survive close + reopen and decode to the
// values that went in.
func TestRoundTrip(t *testing.T) {
	path := tempJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]outcome{
		"detect/1/0/0": {Races: 3, Per: map[string]int{"Ideal": 3, "CORD(D=16)": 1}},
		"detect/1/0/1": {Hung: true},
		"table1/1/2/0": {Races: 0},
	}
	for k, v := range want {
		if err := j.Append(k, v); err != nil {
			t.Fatalf("Append(%q): %v", k, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != len(want) || j2.Loaded() != len(want) {
		t.Fatalf("reopened journal has %d entries (%d loaded), want %d", j2.Len(), j2.Loaded(), len(want))
	}
	for k, v := range want {
		var got outcome
		ok, err := j2.Lookup(k, &got)
		if err != nil || !ok {
			t.Fatalf("Lookup(%q) = %v, %v", k, ok, err)
		}
		if got.Races != v.Races || got.Hung != v.Hung || len(got.Per) != len(v.Per) {
			t.Fatalf("Lookup(%q) = %+v, want %+v", k, got, v)
		}
	}
	if j2.Hits() != len(want) {
		t.Fatalf("hits = %d, want %d", j2.Hits(), len(want))
	}
	if ok, _ := j2.Lookup("missing", nil); ok {
		t.Fatal("Lookup found a key never appended")
	}
}

// TestTornTailEveryOffset is the crash-safety contract: a journal cut off at
// ANY byte length — as a kill -9 mid-write would leave it — must reopen
// cleanly, keep every record wholly before the cut, and accept new appends.
func TestTornTailEveryOffset(t *testing.T) {
	ref := tempJournal(t)
	j, err := Open(ref)
	if err != nil {
		t.Fatal(err)
	}
	const records = 4
	offsets := []int64{int64(headerSize)} // file size after header, then after each append
	for i := 0; i < records; i++ {
		if err := j.Append(fmt.Sprintf("run/%d", i), outcome{Races: i}); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(ref)
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, info.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// wholeRecords(cut) is how many records end at or before byte cut.
	wholeRecords := func(cut int64) int {
		n := 0
		for _, off := range offsets[1:] {
			if off <= cut {
				n++
			}
		}
		return n
	}

	for cut := int64(headerSize); cut <= int64(len(full)); cut++ {
		path := filepath.Join(t.TempDir(), "torn.cordckpt")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tj, err := Open(path)
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		if want := wholeRecords(cut); tj.Len() != want {
			t.Fatalf("cut at %d: %d records survived, want %d", cut, tj.Len(), want)
		}
		// The repaired journal must accept and persist a new record.
		if err := tj.Append("after-tear", outcome{Races: 99}); err != nil {
			t.Fatalf("cut at %d: append after repair: %v", cut, err)
		}
		if err := tj.Close(); err != nil {
			t.Fatal(err)
		}
		tj2, err := Open(path)
		if err != nil {
			t.Fatalf("cut at %d: reopen after repair: %v", cut, err)
		}
		var got outcome
		if ok, err := tj2.Lookup("after-tear", &got); !ok || err != nil || got.Races != 99 {
			t.Fatalf("cut at %d: post-repair record lost: %v %v %+v", cut, ok, err, got)
		}
		tj2.Close()
	}
}

// TestCorruptedRecordTruncates: a bit flip inside a record's payload breaks
// its checksum; the record and everything after it are dropped, everything
// before survives.
func TestCorruptedRecordTruncates(t *testing.T) {
	path := tempJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{}
	for i := 0; i < 3; i++ {
		if err := j.Append(fmt.Sprintf("run/%d", i), outcome{Races: i}); err != nil {
			t.Fatal(err)
		}
		info, _ := os.Stat(path)
		sizes = append(sizes, info.Size())
	}
	j.Close()

	// Flip one payload byte of the middle record.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[sizes[0]+frameOverhead+2] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Fatalf("%d records survived corruption, want 1 (the record before the flip)", j2.Len())
	}
	if ok, _ := j2.Lookup("run/0", nil); !ok {
		t.Fatal("the intact record before the corruption was lost")
	}
	info, _ := os.Stat(path)
	if info.Size() != sizes[0] {
		t.Fatalf("file is %d bytes after repair, want truncation to %d", info.Size(), sizes[0])
	}
}

// TestDuplicateKeyLastWins: re-appending a key supersedes the old record on
// load (retried runs may journal twice).
func TestDuplicateKeyLastWins(t *testing.T) {
	path := tempJournal(t)
	j, _ := Open(path)
	j.Append("run/0", outcome{Races: 1})
	j.Append("run/0", outcome{Races: 2})
	j.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var got outcome
	if ok, _ := j2.Lookup("run/0", &got); !ok || got.Races != 2 {
		t.Fatalf("got %+v, want the later record (races=2)", got)
	}
	if j2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 distinct key", j2.Len())
	}
}

// TestRejectsForeignFiles: not-a-journal content is ErrBadFormat, not a
// silent empty journal; an unsupported version is rejected too.
func TestRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage")
	if err := os.WriteFile(garbage, []byte("this is not a journal, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(garbage); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("Open(garbage) = %v, want ErrBadFormat", err)
	}

	future := filepath.Join(dir, "future")
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], SchemaVersion+1)
	if err := os.WriteFile(future, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(future); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("Open(future version) = %v, want ErrBadFormat", err)
	}
}

// TestWriteFault: a failing fault hook aborts the append with the file
// untouched; clearing the hook restores normal appends.
func TestWriteFault(t *testing.T) {
	path := tempJournal(t)
	j, _ := Open(path)
	defer j.Close()
	boom := errors.New("disk on fire")
	j.SetWriteFault(func() error { return boom })
	if err := j.Append("run/0", outcome{}); !errors.Is(err, boom) {
		t.Fatalf("Append under fault = %v, want the fault error", err)
	}
	if j.Len() != 0 {
		t.Fatal("failed append still indexed the record")
	}
	info, _ := os.Stat(path)
	if info.Size() != int64(headerSize) {
		t.Fatalf("failed append wrote %d bytes past the header", info.Size()-int64(headerSize))
	}
	j.SetWriteFault(nil)
	if err := j.Append("run/0", outcome{Races: 5}); err != nil {
		t.Fatalf("append after clearing fault: %v", err)
	}
}

// TestConcurrentAppends: campaign workers append from many goroutines; every
// record must survive, and the file must load cleanly afterwards.
func TestConcurrentAppends(t *testing.T) {
	path := tempJournal(t)
	j, _ := Open(path)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Append(fmt.Sprintf("run/%d", i), outcome{Races: i}); err != nil {
				t.Errorf("Append(%d): %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != n {
		t.Fatalf("%d records survived, want %d", j2.Len(), n)
	}
	for i := 0; i < n; i++ {
		var got outcome
		if ok, err := j2.Lookup(fmt.Sprintf("run/%d", i), &got); !ok || err != nil || got.Races != i {
			t.Fatalf("run/%d: ok=%v err=%v got=%+v", i, ok, err, got)
		}
	}
}

// TestAppendAfterClose fails loudly instead of silently dropping the record.
func TestAppendAfterClose(t *testing.T) {
	j, _ := Open(tempJournal(t))
	j.Close()
	if err := j.Append("run/0", outcome{}); err == nil {
		t.Fatal("Append on a closed journal succeeded")
	}
}
