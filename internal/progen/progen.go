// Package progen generates random, properly-synchronized parallel programs
// for property-based testing. Every generated program is data-race-free by
// construction: shared regions are only touched under their region lock or
// inside barrier-separated owner phases, and all cross-thread hand-offs go
// through flags. The generators are deterministic in their seed, so failures
// reproduce.
//
// The property suites drive three invariants with these programs:
//   - every detector stays silent on the unmodified program;
//   - with one synchronization instance removed, every CORD report is
//     confirmed by the happens-before oracle (no false positives);
//   - record-then-replay reproduces every execution exactly.
package progen

import (
	"fmt"

	"cord/internal/memsys"
	"cord/internal/sim"
)

// Config bounds the generated program's shape.
type Config struct {
	Threads int
	// Regions is the number of lock-protected shared regions.
	Regions int
	// RegionWords is each region's size.
	RegionWords int
	// OpsPerThread is the number of top-level actions per thread.
	OpsPerThread int
	// Phases > 0 adds barrier-separated phases with per-phase owners.
	Phases int
	// PrivateWords gives each thread a private scratch region (cache
	// pressure without conflicts).
	PrivateWords int
}

// DefaultConfig returns a moderate program shape.
func DefaultConfig() Config {
	return Config{
		Threads:      4,
		Regions:      6,
		RegionWords:  24,
		OpsPerThread: 60,
		Phases:       2,
		PrivateWords: 64,
	}
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 11
}

func (r *rng) n(m int) int {
	if m <= 0 {
		return 0
	}
	return int(r.next() % uint64(m))
}

// action is one generated top-level operation of a thread.
type action struct {
	kind    int // 0 locked-rmw, 1 locked-scan, 2 private, 3 compute, 4 flag-pub, 5 flag-sub
	region  int
	offset  int
	span    int
	amount  int
	flagIdx int
}

// Program is a generated program plus the metadata tests need.
type Program struct {
	Prog sim.Program
	// FirstPhaseSync counts, per thread, the countable sync instances
	// (lock acquires and flag waits) of the first phase. These precede any
	// barrier, so their per-thread indices are schedule-independent and an
	// injection aimed at the Nth one (N <= FirstPhaseSync[t]) removes a
	// known action's synchronization in every run.
	FirstPhaseSync []int
	Cfg            Config
}

// New generates a program from a seed. Identical seeds and configs generate
// identical programs.
func New(seed uint64, cfg Config) Program {
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.Regions <= 0 {
		cfg.Regions = 4
	}
	if cfg.RegionWords <= 0 {
		cfg.RegionWords = 16
	}
	if cfg.OpsPerThread <= 0 {
		cfg.OpsPerThread = 40
	}

	al := memsys.NewAllocator()
	regions := make([]memsys.Region, cfg.Regions)
	locks := al.AllocPadded(cfg.Regions)
	for i := range regions {
		regions[i] = al.Alloc(cfg.RegionWords)
	}
	nflags := cfg.Threads
	flags := al.AllocPadded(nflags)
	privs := make([]memsys.Region, cfg.Threads)
	for t := range privs {
		privs[t] = al.Alloc(max(cfg.PrivateWords, 1))
	}
	var bar *sim.Barrier
	if cfg.Phases > 1 {
		bar = sim.NewBarrier(al, cfg.Threads)
	}

	// Pre-generate every thread's action script. Flag publications
	// increment a per-flag epoch; a subscriber waits only for epochs whose
	// publication was generated earlier (threads are generated in order,
	// so the wait-reference graph is a DAG and the program cannot
	// deadlock). Sync instances from actions in the first phase are
	// counted exactly — they precede any barrier, so their per-thread
	// indices are schedule-independent and injections can be aimed at
	// them precisely.
	r := &rng{s: seed*2654435761 + 977}
	scripts := make([][][]action, cfg.Threads) // [thread][phase][]action
	firstPhase := make([]int, cfg.Threads)
	phases := max(cfg.Phases, 1)
	opsPerPhase := cfg.OpsPerThread / phases

	for ph := 0; ph < phases; ph++ {
		published := make([]int, nflags) // epochs published so far (generation order)
		for t := 0; t < cfg.Threads; t++ {
			var script []action
			for i := 0; i < opsPerPhase; i++ {
				a := action{kind: r.n(6)}
				countable := false
				switch a.kind {
				case 0, 1: // locked access to a shared region
					a.region = r.n(cfg.Regions)
					a.span = 1 + r.n(4)
					a.offset = r.n(cfg.RegionWords)
					a.amount = 1 + r.n(9)
					countable = true // the lock acquire
				case 2: // private work
					a.offset = r.n(max(cfg.PrivateWords, 1))
					a.span = 1 + r.n(6)
				case 3:
					a.amount = 1 + r.n(30)
				case 4: // publish own flag
					a.flagIdx = t
					published[t]++
					a.amount = published[t]
				case 5: // subscribe to an already-published epoch
					a.flagIdx = r.n(nflags)
					if published[a.flagIdx] == 0 {
						a.kind = 3 // nothing published yet: degrade to compute
						a.amount = 5
						break
					}
					a.amount = 1 + r.n(published[a.flagIdx])
					countable = true // the flag wait
				}
				if countable && ph == 0 {
					firstPhase[t]++
				}
				script = append(script, a)
			}
			scripts[t] = append(scripts[t], script)
		}
	}

	body := func(t int, env *sim.Env) {
		for ph := 0; ph < phases; ph++ {
			for _, a := range scripts[t][ph] {
				switch a.kind {
				case 0:
					env.Lock(locks.Word(a.region))
					for k := 0; k < a.span; k++ {
						w := regions[a.region].Word((a.offset + k) % regions[a.region].Words)
						env.Write(w, env.Read(w)+uint64(a.amount))
					}
					env.Unlock(locks.Word(a.region))
				case 1:
					env.Lock(locks.Word(a.region))
					var acc uint64
					for k := 0; k < a.span; k++ {
						acc += env.Read(regions[a.region].Word((a.offset + k) % regions[a.region].Words))
					}
					env.Unlock(locks.Word(a.region))
					env.Write(privs[t].Word(0), acc)
				case 2:
					for k := 0; k < a.span; k++ {
						w := privs[t].Word((a.offset + k) % privs[t].Words)
						env.Write(w, env.Read(w)+1)
					}
				case 3:
					env.Compute(a.amount)
				case 4:
					env.FlagSet(flags.Word(a.flagIdx), uint64(a.amount))
				case 5:
					env.FlagWaitAtLeast(flags.Word(a.flagIdx), uint64(a.amount))
				}
			}
			if bar != nil && ph < phases-1 {
				bar.Wait(env)
			}
		}
	}

	return Program{
		Prog: sim.Program{
			Name:    fmt.Sprintf("progen-%d", seed),
			Threads: cfg.Threads,
			Body:    body,
		},
		FirstPhaseSync: firstPhase,
		Cfg:            cfg,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
