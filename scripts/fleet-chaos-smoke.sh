#!/bin/sh
# Self-healing-fleet chaos smoke test (PROTOCOL.md §7): start a cordd
# registry plus three supervised workers whose CORD_CHAOS spec kills each
# of them on a pinned, seed-deterministic schedule (exit 42, connection
# dropped mid-response, no cleanup); supervisors restart them after the
# spec's restart delay and they re-register. The coordinator discovers
# workers through the registry alone, and must ride out every kill through
# retries, requeues, and re-registration — exiting 0 with artifacts
# byte-identical to a single-process run AND to the committed golden
# baseline. Kills are not optional: the pinned seeds (101/202/303 at
# worker-kill=0.15) each fire within the first handful of shard
# completions, so the test fails if no worker ever died.
#
# Pure POSIX sh + curl: no test framework, no jq. CI runs this;
# `make fleet-chaos-smoke` runs it locally.
set -eu

. "$(dirname "$0")/fleet-lib.sh"

BASE="${CORD_FLEET_PORT:-18380}"
DIR="$(mktemp -d)"
FLAGS="-fig12 -injections 8"
REGISTRY="http://127.0.0.1:$BASE"
# Pinned schedule: at worker-kill=0.15 these seeds first kill after shard
# completions 2, 4, and 6 of each incarnation — every worker provably dies
# at least once early in the campaign, then keeps dying on the same
# deterministic schedule after each restart.
CHAOS_P="0.15"
CHAOS_DELAY="300ms" # keep RESTART_SLEEP in sync: it is CHAOS_DELAY in sleep(1) syntax
RESTART_SLEEP="0.3"
SEEDS="101 202 303"

# A smoke test is done with its workers when it exits: no graceful drain.
FLEET_KILL_SIGNAL=KILL
fleet_trap_cleanup

fail() {
	echo "fleet-chaos-smoke: FAIL: $*" >&2
	for log in "$DIR"/cordd-*.log "$DIR"/dispatch.log "$DIR"/ref.log; do
		if [ -s "$log" ]; then
			echo "--- $(basename "$log") (tail) ---" >&2
			tail -40 "$log" >&2
		fi
	done
	exit 1
}

echo "fleet-chaos-smoke: building cordd and cordbench"
go build -o "$DIR/cordd" ./cmd/cordd
go build -o "$DIR/cordbench" ./cmd/cordbench

echo "fleet-chaos-smoke: single-process reference run"
"$DIR/cordbench" $FLAGS -q -json "$DIR/ref" >/dev/null 2>"$DIR/ref.log" \
	|| fail "reference campaign failed"

echo "fleet-chaos-smoke: starting registry at $REGISTRY"
"$DIR/cordd" -addr "127.0.0.1:$BASE" -registry \
	>"$DIR/cordd-registry.log" 2>&1 &
PIDS="$PIDS $!"
fleet_wait_healthy "$REGISTRY" || fail "registry did not become healthy"

# supervise runs one worker under its pinned chaos spec, restarting it
# after every injected kill (exit 42) and stopping on any other exit.
# Short -register-ttl so the registry notices a death within ~2s.
supervise() (
	port="$1"
	seed="$2"
	while :; do
		code=0
		CORD_CHAOS="worker-kill=$CHAOS_P,worker-restart-delay=$CHAOS_DELAY,seed=$seed" \
			"$DIR/cordd" -addr "127.0.0.1:$port" -workers 2 \
			-register "$REGISTRY" -register-ttl 2s \
			>>"$DIR/cordd-$port.log" 2>&1 || code=$?
		if [ "$code" -ne 42 ]; then
			return 0
		fi
		sleep "$RESTART_SLEEP"
	done
)

echo "fleet-chaos-smoke: starting 3 supervised workers (worker-kill=$CHAOS_P, seeds $SEEDS)"
i=1
for seed in $SEEDS; do
	supervise $((BASE + i)) "$seed" &
	PIDS="$PIDS $!"
	i=$((i + 1))
done

fleet_wait_registered "$REGISTRY" 3 || fail "workers never registered"

echo "fleet-chaos-smoke: dispatching ($FLAGS, one-run shards) via the registry"
status=0
"$DIR/cordbench" $FLAGS -registry "$REGISTRY" -shard-runs 1 \
	-checkpoint "$DIR/ck" -json "$DIR/out" \
	>/dev/null 2>"$DIR/dispatch.log" || status=$?
[ "$status" -eq 0 ] || fail "coordinator exited $status under worker-kill chaos, want 0"

[ -f "$DIR/out/BENCH_fig12.json" ] || fail "dispatched campaign wrote no BENCH_fig12.json"
cmp -s "$DIR/ref/BENCH_fig12.json" "$DIR/out/BENCH_fig12.json" \
	|| fail "chaos-fleet artifact differs from the single-process run"
cmp -s bench/BENCH_fig12.json "$DIR/out/BENCH_fig12.json" \
	|| fail "chaos-fleet artifact differs from the committed golden baseline"

# The chaos must actually have fired: each worker log carries the injected
# kill marker at least once, or the campaign finished before the pinned
# schedule could bite — which the seeds above make impossible for any
# campaign of more than a few shards per worker.
KILLS=$(cat "$DIR"/cordd-*.log 2>/dev/null | grep -c "chaos: killing worker" || true)
[ "${KILLS:-0}" -ge 1 ] || fail "no worker was ever chaos-killed; the schedule never fired"

echo "fleet-chaos-smoke: PASS ($KILLS injected worker kills survived; exit 0; artifacts byte-identical to single-process run and golden baseline)"
