package cord_test

// Soak coverage: larger-scale, multi-seed sweeps that exercise every
// workload with recording, detection and replay simultaneously. Skipped in
// -short mode.

import (
	"testing"

	"cord"
)

func TestSoakAllAppsScaledWithReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, app := range cord.Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(100); seed < 103; seed++ {
				out, err := cord.RecordAndReplay(app.Build(2, 4),
					cord.ReplayOptions{Seed: seed, Jitter: 9})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if out.Recorded.Hung {
					t.Fatalf("seed %d hung", seed)
				}
				if !out.Match {
					t.Fatalf("seed %d: %s", seed, out.Mismatch)
				}
				if out.Log.SizeBytes() >= 1<<20 {
					t.Fatalf("seed %d: log %d bytes", seed, out.Log.SizeBytes())
				}
			}
		})
	}
}

func TestSoakInjectionSweepNoFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, name := range []string{"cholesky", "barnes", "water-n2", "ocean"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			app := cord.AppByName(name)
			for inj := uint64(1); inj <= 25; inj += 3 {
				det := cord.NewDetector(cord.DetectorConfig{Threads: 4, D: 16})
				ideal := cord.NewIdealDetector(4)
				res, err := cord.Run(app.Build(1, 4), cord.RunConfig{
					Seed: inj * 7, Jitter: 7, InjectSkip: inj,
					Observers: []cord.Observer{ideal, det},
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Hung {
					continue
				}
				for _, r := range det.Races() {
					if !ideal.Confirms(r) {
						t.Fatalf("inj %d: false positive %v", inj, r)
					}
				}
			}
		})
	}
}
