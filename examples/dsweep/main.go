// Dsweep: explore the paper's central tuning knob on a custom workload. The
// sync-read window D (§2.6) decides how far a reader's clock jumps past a
// synchronization variable's write timestamp; races whose clock distance is
// below D are reported, so larger D recovers races hidden by unrelated
// synchronization churn — until the churn itself scales with D.
//
// The workload interleaves a producer/consumer pair (with its wait removed,
// creating races at a controlled distance) with per-thread lock churn that
// advances the clocks between the racing accesses.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cord"
)

// build returns a program where thread 0 writes a record, performs `churn`
// unrelated lock operations, and only then sets the ready flag; thread 1's
// wait on that flag is the injected-away synchronization, so its read races
// with the write at a clock distance that grows with churn.
func build(churn int) cord.Program {
	al := cord.NewAllocator()
	record := al.Alloc(8)
	ready := cord.NewFlag(al)
	// One private lock per thread: the churn advances each thread's clock
	// without creating any cross-thread happens-before edge (a shared lock
	// would genuinely order the threads and there would be no race at all).
	lock0 := cord.NewMutex(al)
	lock1 := cord.NewMutex(al)
	scratch := al.Alloc(4)
	warm := al.AllocPadded(2)

	warmup := func(t int, env *cord.Env, l cord.Mutex, w cord.Addr) {
		// Warm the private lock and scratch lines into the caches; a cold
		// sync read served by main memory jumps the clock D past the
		// whole-memory write timestamp (the Fig. 7 conservatism), which
		// would drown the distances this example wants to demonstrate.
		// The flag handshake gives both threads a common clock base.
		l.Lock(env)
		env.Write(w, 0)
		l.Unlock(env)
		env.FlagSet(warm.Word(t), 1)
		env.FlagWaitAtLeast(warm.Word(1-t), 1)
	}

	return cord.Program{
		Name:    "dsweep",
		Threads: 2,
		Body: func(t int, env *cord.Env) {
			if t == 0 {
				warmup(t, env, lock0, scratch.Word(0))
				for w := 0; w < 8; w++ {
					env.Write(record.Word(w), uint64(w)+1)
				}
				for i := 0; i < churn; i++ {
					lock0.Lock(env)
					env.Write(scratch.Word(0), uint64(i))
					lock0.Unlock(env)
				}
				ready.Set(env, 1)
				return
			}
			warmup(t, env, lock1, scratch.Word(1))
			// Thread 1's own churn advances its clock by one per sync write.
			for i := 0; i < churn; i++ {
				lock1.Lock(env)
				env.Write(scratch.Word(1), uint64(i))
				lock1.Unlock(env)
			}
			ready.WaitAtLeast(env, 1) // the synchronization injection removes
			var sum uint64
			for w := 0; w < 8; w++ {
				sum += env.Read(record.Word(w))
			}
			env.Write(scratch.Word(2), sum)
		},
	}
}

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "churn\tD=1\tD=4\tD=16\tD=64\tD=256\tIdeal")
	for _, churn := range []int{1, 3, 10, 40, 150} {
		fmt.Fprintf(w, "%d", churn)
		var idealCount int
		for _, d := range []int{1, 4, 16, 64, 256} {
			det := cord.NewDetector(cord.DetectorConfig{Threads: 2, Procs: 2, D: d})
			ideal := cord.NewIdealDetector(2)
			// Thread 1's countable sync instances, in order: the warmup
			// lock, the handshake wait, the churn locks, and finally the
			// ready-flag wait — remove exactly that final wait.
			_, err := cord.Run(build(churn), cord.RunConfig{
				Seed: 5, InjectThread: 1, InjectThreadNth: uint64(churn) + 3,
				Observers: []cord.Observer{ideal, det},
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "\t%d", det.RaceCount())
			idealCount = ideal.RaceCount()
		}
		fmt.Fprintf(w, "\t%d\n", idealCount)
	}
	w.Flush()
	fmt.Println("\nreading the table: each cell is racy accesses detected out of the 8-word record;")
	fmt.Println("larger D survives more intervening synchronization (Fig. 16's mechanism), and")
	fmt.Println("once the churn exceeds D even 256 misses what the Ideal oracle still sees")
}
