package replay

import (
	"testing"

	"cord/internal/baseline"
	"cord/internal/core"
	"cord/internal/sim"
	"cord/internal/trace"
	"cord/internal/workload"
)

// TestNoFalsePositives is the paper's central safety claim (§2.3, §6): CORD
// "reports no false positives". Every race CORD reports in an injected run
// must be confirmed by the Ideal oracle — the same reporting access racing
// against a conflicting access of the same kind from the same thread under
// full happens-before.
func TestNoFalsePositives(t *testing.T) {
	for _, app := range workload.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				for _, inj := range []uint64{2, 9, 23, 57} {
					prog := app.Build(1, 4)
					ideal := baseline.NewIdeal(prog.Threads)
					dets := []*core.Detector{
						core.New(core.Config{Threads: prog.Threads, D: 1}),
						core.New(core.Config{Threads: prog.Threads, D: 16}),
						core.New(core.Config{Threads: prog.Threads, D: 256}),
					}
					obs := []trace.Observer{ideal}
					for _, d := range dets {
						obs = append(obs, d)
					}
					res, err := sim.New(sim.Config{
						Seed: seed, Jitter: 7, InjectSkip: inj, Observers: obs,
					}, prog).Run()
					if err != nil {
						t.Fatal(err)
					}
					if res.Hung {
						continue
					}
					for _, d := range dets {
						for _, r := range d.Races() {
							if !ideal.Confirms(r) {
								t.Fatalf("seed %d inj %d: %s reported a false positive: %v",
									seed, inj, d.Name(), r)
							}
						}
					}
				}
			}
		})
	}
}

// TestVectorBaselineNoFalsePositives: the vector-clock baselines share the
// no-false-positive property (their ordering is exact where history
// survives; discarded history only loses races).
func TestVectorBaselineNoFalsePositives(t *testing.T) {
	for _, name := range []string{"raytrace", "fft", "water-n2", "barnes"} {
		app, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, inj := range []uint64{3, 31} {
			prog := app.Build(1, 4)
			ideal := baseline.NewIdeal(prog.Threads)
			vec := baseline.NewVecCache(baseline.VecConfig{Threads: prog.Threads, Bound: baseline.BoundL2})
			res, err := sim.New(sim.Config{
				Seed: 4, Jitter: 7, InjectSkip: inj,
				Observers: []trace.Observer{ideal, vec},
			}, prog).Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Hung {
				continue
			}
			for _, r := range vec.Races() {
				if !ideal.Confirms(r) {
					t.Fatalf("%s inj %d: vector baseline false positive: %v", name, inj, r)
				}
			}
		}
	}
}
