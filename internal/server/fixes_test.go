package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cord/internal/record"
)

// TestQueueRetryAfterP50 mirrors TestStreamRetryAfterP50 for the session
// queue: the queue-full 429's Retry-After hint must track the endpoint's
// observed p50 handler latency instead of the historical hardcoded 1s.
func TestQueueRetryAfterP50(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer shutdownOrFail(t, srv)

	if got := srv.retryAfter("/v1/detect"); got != "1" {
		t.Fatalf("cold server Retry-After = %s, want 1", got)
	}
	for i := 0; i < 5; i++ {
		srv.m.observe("/v1/detect", 4200*time.Millisecond)
	}
	if got := srv.retryAfter("/v1/detect"); got != "5" {
		t.Fatalf("p50~5s Retry-After = %s, want 5 (bucket bound)", got)
	}
	for i := 0; i < 50; i++ {
		srv.m.observe("/v1/detect", 2*time.Minute)
	}
	if got := srv.retryAfter("/v1/detect"); got != "30" {
		t.Fatalf("overflow p50 Retry-After = %s, want clamp to 30", got)
	}
	srv2 := New(Config{Workers: 1})
	defer shutdownOrFail(t, srv2)
	for i := 0; i < 9; i++ {
		srv2.m.observe("/v1/detect", 3*time.Millisecond)
	}
	if got := srv2.retryAfter("/v1/detect"); got != "1" {
		t.Fatalf("fast-endpoint Retry-After = %s, want floor 1", got)
	}
}

// TestQueueFullRetryAfterDerived drives the full HTTP path: with latency
// history on /v1/detect, a queue-full 429 carries the derived hint, not "1".
func TestQueueFullRetryAfterDerived(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	srv.runDetect = func(ctx context.Context, req DetectRequest) (*DetectResponse, error) {
		select {
		case <-block:
			return &DetectResponse{Schema: SchemaVersion, App: req.App}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	for i := 0; i < 5; i++ {
		srv.m.observe("/v1/detect", 4200*time.Millisecond)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, _ := postDetect(t, ts.URL, DetectRequest{App: "fft"})
			results <- resp.StatusCode
		}()
		if i == 0 {
			waitFor(t, "first session to start", func() bool { return srv.Metrics().Sessions.Started == 1 })
		} else {
			waitFor(t, "second session to queue", func() bool { return srv.Metrics().Sessions.Accepted == 2 })
		}
	}
	resp, body := postDetect(t, ts.URL, DetectRequest{App: "fft"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Fatalf("queue-full Retry-After = %q, want 5 (p50-derived)", got)
	}
	close(block)
	for i := 0; i < 2; i++ {
		<-results
	}
}

// TestReplayOrderViolation422: a structurally valid log whose entries break
// the §3 order invariants (a regressed per-thread clock) must answer 422 /
// order_violation on /v1/replay, not a generic 400 — the same verdict the
// streaming ingest path gives the same bytes.
func TestReplayOrderViolation422(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	var l record.Log
	l.Append(record.Entry{Clock: 0x0010, Thread: 0, Instr: 1})
	l.Append(record.Entry{Clock: 0xFFF0, Thread: 0, Instr: 1}) // regressed
	var buf bytes.Buffer
	if err := l.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/replay?app=fft", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != codeOrderViolation {
		t.Fatalf("code %q, want %q", eb.Code, codeOrderViolation)
	}
}

// TestStreamDetectorParam covers the detector= query parameter's domain
// (PROTOCOL.md §4.7): valid only with detect=online, cord|fasttrack only.
func TestStreamDetectorParam(t *testing.T) {
	cases := []struct {
		name, query string
		wantErr     bool
		detector    string
	}{
		{"default is cord", "app=fft", false, "cord"},
		{"explicit fasttrack", "app=fft&detect=online&detector=fasttrack", false, "fasttrack"},
		{"explicit cord", "app=fft&detect=online&detector=cord", false, "cord"},
		{"requires online", "app=fft&detector=fasttrack", true, ""},
		{"unknown family", "app=fft&detect=online&detector=djit", true, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := httptest.NewRequest(http.MethodPost, "/v1/stream?"+tc.query, nil)
			o, err := parseStreamQuery(r)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("query %q accepted", tc.query)
				}
				return
			}
			if err != nil {
				t.Fatalf("query %q rejected: %v", tc.query, err)
			}
			if o.detector != tc.detector {
				t.Fatalf("detector = %q, want %q", o.detector, tc.detector)
			}
		})
	}
}

// TestStreamOnlineFastTrackDetector runs a full detect=online session with
// detector=fasttrack over a racy recording: the FastTrack baseline replays
// the same epoch schedule the CORD detector would and reports the injected
// race, and the summary names the detector family.
func TestStreamOnlineFastTrackDetector(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer shutdownOrFail(t, srv)

	logBytes, injTh, injNth := racyFixture(t, 1, 2)
	query := "app=fft&seed=1&threads=4&inject=2&detect=online&duty=100&detector=fasttrack&verify=0" +
		"&inject_thread=" + itoa(injTh) + "&inject_nth=" + itoa(int(injNth))
	resp, body := postStream(t, ts.URL, query, logBytes, 17)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d, body %s", resp.StatusCode, body)
	}
	_, summary := splitFrames(t, body)
	var sr StreamResponse
	if err := json.Unmarshal(summary, &sr); err != nil {
		t.Fatalf("decoding summary: %v", err)
	}
	if sr.Online == nil {
		t.Fatal("detect=online summary missing the online block")
	}
	if sr.Online.Detector != "fasttrack" {
		t.Fatalf("summary detector = %q, want fasttrack", sr.Online.Detector)
	}
	if !sr.Online.Completed || sr.Online.Divergence != "" {
		t.Fatalf("online replay did not complete: %+v", sr.Online)
	}
	if sr.Online.EpochsTotal == 0 || sr.Online.EpochsObserved != sr.Online.EpochsTotal {
		t.Fatalf("duty=100 coverage accounting wrong: %+v", sr.Online)
	}
	if sr.Online.RacesSoFar == 0 || len(sr.Online.Races) == 0 {
		t.Fatalf("fasttrack missed the injected race: %+v", sr.Online)
	}

	// Determinism: the same stream yields a byte-identical summary.
	resp2, body2 := postStream(t, ts.URL, query, logBytes, 29)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat stream status %d", resp2.StatusCode)
	}
	_, summary2 := splitFrames(t, body2)
	if !bytes.Equal(summary, summary2) {
		t.Fatalf("fasttrack summaries not byte-identical\nfirst: %s\nsecond: %s", summary, summary2)
	}
}
