package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SchemaVersion is the artifact wire-format version. Bump it on any change
// to the JSON shape of Artifact or the types it embeds; readers reject
// versions they do not understand instead of mis-parsing them.
const SchemaVersion = 1

// CampaignMeta stamps an artifact with the campaign configuration that
// produced it, so a baseline and a fresh run can be checked for
// comparability before their cells are diffed. Options.Procs is deliberately
// absent: results are worker-count independent (see the package comment),
// and artifacts must be byte-identical at any Procs.
type CampaignMeta struct {
	BaseSeed   uint64   `json:"base_seed"`
	Scale      int      `json:"scale"`
	Threads    int      `json:"threads"`
	Injections int      `json:"injections"`
	Apps       []string `json:"apps"`
}

// Meta derives the campaign metadata stamped into every artifact this
// Options value produces, with defaults applied.
func (o Options) Meta() CampaignMeta {
	o = o.withDefaults()
	apps := make([]string, len(o.Apps))
	for i, a := range o.Apps {
		apps[i] = a.Name
	}
	return CampaignMeta{
		BaseSeed:   o.BaseSeed,
		Scale:      o.Scale,
		Threads:    o.Threads,
		Injections: o.Injections,
		Apps:       apps,
	}
}

// Artifact kinds. Every artifact carries a numeric Figure (the diffable
// view); table-shaped artifacts additionally carry their typed rows.
const (
	KindFigure    = "figure"
	KindTable1    = "table1"
	KindOverhead  = "overhead"
	KindReplay    = "replay"
	KindDirectory = "directory"
)

// Artifact is one machine-readable evaluation product: a figure or table
// plus the campaign metadata needed to reproduce and compare it. Encoded
// artifacts are deterministic — the same campaign flags yield byte-identical
// files at any worker count — which is what makes them diffable baselines
// (BENCH_<id>.json) for CI and perf-trajectory tracking.
type Artifact struct {
	Schema   int          `json:"schema"`
	Kind     string       `json:"kind"`
	ID       string       `json:"id"`
	Campaign CampaignMeta `json:"campaign"`
	// SimProcs is the simulated processor count for artifacts measured at a
	// non-default machine width (the directory extension).
	SimProcs int `json:"sim_procs,omitempty"`
	// Figure is the numeric view every artifact carries; DiffArtifacts
	// compares it cell-by-cell.
	Figure Figure `json:"figure"`
	// Typed rows for table-shaped artifacts (exactly one is set, matching
	// Kind; plain figures carry none).
	Table1    []Table1Row    `json:"table1,omitempty"`
	Overhead  []OverheadRow  `json:"overhead,omitempty"`
	Replay    []ReplayRow    `json:"replay,omitempty"`
	Directory []DirectoryRow `json:"directory,omitempty"`
}

// FigureArtifact wraps a rendered figure (detection figures, the area
// arithmetic) as an artifact.
func FigureArtifact(f Figure, meta CampaignMeta) Artifact {
	return Artifact{Schema: SchemaVersion, Kind: KindFigure, ID: f.ID, Campaign: meta, Figure: f}
}

// Table1Artifact wraps the application catalogue.
func Table1Artifact(rows []Table1Row, meta CampaignMeta) Artifact {
	return Artifact{Schema: SchemaVersion, Kind: KindTable1, ID: "table1", Campaign: meta,
		Figure: Table1Figure(rows), Table1: rows}
}

// OverheadArtifact wraps the Figure 11 measurement with its per-app rows.
func OverheadArtifact(rows []OverheadRow, fig Figure, meta CampaignMeta) Artifact {
	return Artifact{Schema: SchemaVersion, Kind: KindOverhead, ID: fig.ID, Campaign: meta,
		Figure: fig, Overhead: rows}
}

// ReplayArtifact wraps the §3.3 record/replay verification table.
func ReplayArtifact(rows []ReplayRow, meta CampaignMeta) Artifact {
	return Artifact{Schema: SchemaVersion, Kind: KindReplay, ID: "replay", Campaign: meta,
		Figure: ReplayFigure(rows), Replay: rows}
}

// DirectoryArtifact wraps the §2.5 directory-extension traffic comparison,
// measured at simProcs simulated processors.
func DirectoryArtifact(rows []DirectoryRow, simProcs int, meta CampaignMeta) Artifact {
	return Artifact{Schema: SchemaVersion, Kind: KindDirectory, ID: "directory", Campaign: meta,
		SimProcs: simProcs, Figure: DirectoryFigure(rows), Directory: rows}
}

// Encode renders the artifact in its canonical byte form: two-space-indented
// JSON with a trailing newline. encoding/json is deterministic for these
// types (fixed struct field order, shortest round-trip float formatting), so
// equal artifacts encode to equal bytes.
func (a Artifact) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("experiment: encoding artifact %s: %w", a.ID, err)
	}
	return append(b, '\n'), nil
}

// DecodeArtifact parses a canonical artifact, rejecting unknown schema
// versions.
func DecodeArtifact(b []byte) (Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		return Artifact{}, fmt.Errorf("experiment: decoding artifact: %w", err)
	}
	if a.Schema != SchemaVersion {
		return Artifact{}, fmt.Errorf("experiment: artifact %q has schema %d, this build reads %d",
			a.ID, a.Schema, SchemaVersion)
	}
	return a, nil
}

// ArtifactFileName is the on-disk naming convention for baselines:
// BENCH_<id>.json.
func ArtifactFileName(id string) string { return "BENCH_" + id + ".json" }

// WriteArtifact encodes a into dir under its conventional file name and
// returns the path written.
func WriteArtifact(dir string, a Artifact) (string, error) {
	b, err := a.Encode()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, ArtifactFileName(a.ID))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", fmt.Errorf("experiment: writing artifact: %w", err)
	}
	return path, nil
}

// ReadArtifact loads and decodes one artifact file.
func ReadArtifact(path string) (Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Artifact{}, fmt.Errorf("experiment: reading artifact: %w", err)
	}
	a, err := DecodeArtifact(b)
	if err != nil {
		return Artifact{}, fmt.Errorf("%w (%s)", err, path)
	}
	return a, nil
}
