package core

import (
	"testing"

	"cord/internal/cache"
	"cord/internal/directory"
	"cord/internal/machine"
	"cord/internal/memsys"
	"cord/internal/sim"
	"cord/internal/trace"
	"cord/internal/workload"
)

// TestDirectoryEquivalence: the directory-coherence variant reports exactly
// the races and records exactly the log the snooping variant does, on clean
// and injected runs — the sharer sets name precisely the caches snooping
// would probe.
func TestDirectoryEquivalence(t *testing.T) {
	for _, name := range []string{"raytrace", "fft", "water-sp", "cholesky"} {
		app, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, inject := range []uint64{0, 7, 23} {
			snoop := New(Config{Threads: 4, D: 16, Record: true})
			dir := directory.New(4)
			dird := New(Config{Threads: 4, D: 16, Record: true, Directory: dir})
			res, err := sim.New(sim.Config{
				Seed: 3, Jitter: 7, InjectSkip: inject,
				Observers: []trace.Observer{snoop, dird},
			}, app.Build(1, 4)).Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Hung {
				continue
			}
			if snoop.RaceCount() != dird.RaceCount() {
				t.Fatalf("%s inject %d: snoop %d races, directory %d",
					name, inject, snoop.RaceCount(), dird.RaceCount())
			}
			sl, dl := snoop.Log().Entries(), dird.Log().Entries()
			if len(sl) != len(dl) {
				t.Fatalf("%s inject %d: log lengths differ: %d vs %d", name, inject, len(sl), len(dl))
			}
			for i := range sl {
				if sl[i] != dl[i] {
					t.Fatalf("%s inject %d: log entry %d differs: %v vs %v",
						name, inject, i, sl[i], dl[i])
				}
			}
			if dir.Stats().Requests == 0 {
				t.Fatalf("%s: directory carried no traffic", name)
			}
		}
	}
}

// TestDirectoryInvariant: the directory's sharer sets always match the
// detector caches' actual contents.
func TestDirectoryInvariant(t *testing.T) {
	app, err := workload.ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	dir := directory.New(4)
	det := New(Config{Threads: 4, D: 16, Directory: dir})
	// Validate at intervals through the run via a tapping observer.
	checks := 0
	tap := &trace.FuncObserver{Label: "validate", Fn: func(a trace.Access) {
		if a.Seq%2048 != 0 {
			return
		}
		checks++
		err := dir.Validate(func(l memsys.Line, p int) bool {
			return det.CacheContains(p, l)
		})
		if err != nil {
			t.Fatal(err)
		}
	}}
	// The detector must run before the tap so the tap sees settled state.
	_, err = sim.New(sim.Config{
		Seed: 5, Jitter: 7,
		Observers: []trace.Observer{det, tap},
	}, app.Build(1, 4)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if checks == 0 {
		t.Fatal("invariant never checked")
	}
	if err := dir.Validate(func(l memsys.Line, p int) bool {
		return det.CacheContains(p, l)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDirectoryScalesBetterThanBroadcast: at 16 processors, point-to-point
// forwards stay proportional to actual sharing while a broadcast protocol
// pays procs-1 snoops per transaction — the reason the paper points at
// directories for larger systems.
func TestDirectoryScalesBetterThanBroadcast(t *testing.T) {
	const procs = 16
	app, err := workload.ByName("raytrace")
	if err != nil {
		t.Fatal(err)
	}
	dir := directory.New(procs)
	det := New(Config{Threads: procs, Procs: procs, D: 16, Directory: dir})
	_, err = sim.New(sim.Config{
		Seed: 2, Jitter: 7, Procs: procs,
		Observers: []trace.Observer{det},
	}, app.Build(1, procs)).Run()
	if err != nil {
		t.Fatal(err)
	}
	st := dir.Stats()
	if st.Requests == 0 {
		t.Fatal("no directory traffic")
	}
	broadcastMsgs := st.Requests * uint64(procs-1)
	if st.Forwards >= broadcastMsgs/2 {
		t.Fatalf("forwards (%d) not substantially below broadcast (%d): sharing is sparse, so forwards should be few",
			st.Forwards, broadcastMsgs)
	}
	avg := float64(st.Forwards) / float64(st.Requests)
	t.Logf("16 procs: %.2f forwards/request vs %d snoops/broadcast", avg, procs-1)
}

// TestDirectoryTimingEndToEnd: the full extension stack — CORD over a
// directory, priced by the hop-based directory machine — runs a workload
// with sane costs.
func TestDirectoryTimingEndToEnd(t *testing.T) {
	const procs = 8
	app, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	dir := directory.New(procs)
	det := New(Config{Threads: procs, Procs: procs, D: 16, Record: true, Directory: dir})
	mach := machine.NewDirMachine(machine.DirConfig{
		Procs:            procs,
		Hierarchy:        cache.DefaultHierarchy(),
		HopCycles:        12,
		HomeLookupCycles: 10,
		MemoryCycles:     600,
		L1HitCycles:      1,
		L2HitCycles:      10,
	})
	res, err := sim.New(sim.Config{
		Seed: 1, Jitter: 2, Procs: procs,
		Cost:      mach,
		Observers: []trace.Observer{det},
		Primary:   det,
	}, app.Build(1, procs)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hung || res.Cycles == 0 {
		t.Fatalf("bad run %+v", res)
	}
	if mach.Stats().Directory.Requests == 0 {
		t.Fatal("machine directory carried no traffic")
	}
	if det.RaceCount() != 0 {
		t.Fatalf("race-free fft reported %d races", det.RaceCount())
	}
}
