package server

import (
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"time"
)

// This file is the fleet-membership half of the self-healing campaign story
// (PROTOCOL.md §7): every cordd serves a worker registry — POST
// /v1/fleet/register is both initial registration and heartbeat, GET
// /v1/fleet/workers is discovery — so any instance can be pointed at with
// `cordd -registry` and any other can announce itself with `cordd -register`.
// Expiry is TTL-based and lazy: entries whose deadline has passed are pruned
// on the next register or listing, never by a background goroutine, which
// keeps the registry deterministic under an injected clock (tests and the
// doc-conformance suite freeze Server.now). The coordinator-side campaign
// progress resource (GET /v1/campaign/progress) is also specified here so
// cordbench, cordload and the conformance test share one wire shape.

const (
	// defaultFleetTTLSeconds is the registration lifetime applied when a
	// register request does not choose one. Workers heartbeat at a fraction
	// of their TTL (cordd uses TTL/3), so the default tolerates two lost
	// heartbeats before the worker expires.
	defaultFleetTTLSeconds = 15
	// maxFleetTTLSeconds caps client-chosen TTLs: a worker that asks for an
	// hour would otherwise pin a dead entry in every listing for that hour.
	maxFleetTTLSeconds = 300
	// maxFleetRegistry bounds the registry like maxShardRegistry bounds the
	// shard-conflict map. Beyond it the entry closest to expiry is evicted —
	// membership is best-effort liveness tracking, never a correctness
	// mechanism: a coordinator can always be handed workers statically.
	maxFleetRegistry = 4096
)

// FleetRegisterRequest is the body of POST /v1/fleet/register. The same
// request is registration and heartbeat: re-registering an already-known URL
// refreshes its deadline (and updates its worker count) instead of erroring,
// so a worker's announce loop is one idempotent POST on a timer.
type FleetRegisterRequest struct {
	// URL is the worker's advertised base URL — the address a coordinator
	// will dial, so it must be reachable from the coordinator, not merely a
	// bind address. Absolute http or https; it is also the registry key.
	URL string `json:"url"`
	// Workers is the worker's session-pool size, advertised so coordinators
	// can seed placement weights before any shard has measured latency.
	// Optional; 0 means unknown.
	Workers int `json:"workers,omitempty"`
	// TTLSeconds is how long this registration lives without a heartbeat,
	// in [1, 300]. Optional; 0 selects the default (15).
	TTLSeconds int `json:"ttl_seconds,omitempty"`
}

// FleetRegisterResponse acknowledges one registration or heartbeat.
type FleetRegisterResponse struct {
	Schema int    `json:"schema"`
	URL    string `json:"url"`
	// TTLSeconds echoes the effective TTL (the default if the request chose
	// none), so workers can derive their heartbeat interval from the answer.
	TTLSeconds int `json:"ttl_seconds"`
	// LiveWorkers counts registrations alive after this one, it included.
	LiveWorkers int `json:"live_workers"`
}

// FleetWorker is one live registration in a GET /v1/fleet/workers listing.
type FleetWorker struct {
	URL     string `json:"url"`
	Workers int    `json:"workers"`
	// ExpiresInSeconds is the whole seconds left before this registration
	// expires without a heartbeat (floor, so a freshly-registered worker
	// reports exactly its TTL).
	ExpiresInSeconds int `json:"expires_in_seconds"`
}

// FleetWorkersResponse is the GET /v1/fleet/workers body: the live workers
// sorted by URL, expired entries already pruned.
type FleetWorkersResponse struct {
	Schema  int           `json:"schema"`
	Workers []FleetWorker `json:"workers"`
}

// fleetEntry is one live registration in the registry map (keyed by URL).
type fleetEntry struct {
	workers  int
	deadline time.Time
}

// pruneFleetLocked drops expired registrations and returns how many fell.
// Callers hold fleetMu.
func (s *Server) pruneFleetLocked(now time.Time) int {
	expired := 0
	for u, e := range s.fleet {
		if !e.deadline.After(now) {
			delete(s.fleet, u)
			expired++
		}
	}
	return expired
}

// fleetLive reports the current live registration count (pruning first).
func (s *Server) fleetLive() int {
	now := s.now()
	s.fleetMu.Lock()
	expired := s.pruneFleetLocked(now)
	n := len(s.fleet)
	s.fleetMu.Unlock()
	if expired > 0 {
		s.m.bumpFleet(func(c *FleetCounters) { c.WorkersExpired += uint64(expired) })
	}
	return n
}

func (s *Server) handleFleetRegister(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req FleetRegisterRequest
	if err := decodeJSONBody(r, &req); err != nil {
		writeError(w, statusForBodyError(err), err)
		return
	}
	u, err := url.Parse(req.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: url must be an absolute http(s) URL, got %q", ErrBadRequest, req.URL))
		return
	}
	if req.TTLSeconds < 0 || req.TTLSeconds > maxFleetTTLSeconds {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: ttl_seconds must be in [1, %d], got %d", ErrBadRequest, maxFleetTTLSeconds, req.TTLSeconds))
		return
	}
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: workers must be non-negative, got %d", ErrBadRequest, req.Workers))
		return
	}
	ttl := req.TTLSeconds
	if ttl == 0 {
		ttl = defaultFleetTTLSeconds
	}

	now := s.now()
	s.fleetMu.Lock()
	if s.fleet == nil {
		s.fleet = make(map[string]*fleetEntry)
	}
	expired := s.pruneFleetLocked(now)
	_, heartbeat := s.fleet[req.URL]
	if !heartbeat && len(s.fleet) >= maxFleetRegistry {
		// Evict the registration closest to expiry: it is the one a prune
		// would have dropped soonest anyway.
		var victim string
		var soonest time.Time
		for u, e := range s.fleet {
			if victim == "" || e.deadline.Before(soonest) {
				victim, soonest = u, e.deadline
			}
		}
		delete(s.fleet, victim)
		expired++
	}
	s.fleet[req.URL] = &fleetEntry{workers: req.Workers, deadline: now.Add(time.Duration(ttl) * time.Second)}
	live := len(s.fleet)
	s.fleetMu.Unlock()

	s.m.bumpFleet(func(c *FleetCounters) {
		c.WorkersExpired += uint64(expired)
		if heartbeat {
			c.HeartbeatsReceived++
		} else {
			c.WorkersRegistered++
		}
	})
	writeJSON(w, http.StatusOK, &FleetRegisterResponse{
		Schema:      SchemaVersion,
		URL:         req.URL,
		TTLSeconds:  ttl,
		LiveWorkers: live,
	})
}

func (s *Server) handleFleetWorkers(w http.ResponseWriter, r *http.Request) {
	now := s.now()
	s.fleetMu.Lock()
	expired := s.pruneFleetLocked(now)
	workers := make([]FleetWorker, 0, len(s.fleet))
	for u, e := range s.fleet {
		workers = append(workers, FleetWorker{
			URL:              u,
			Workers:          e.workers,
			ExpiresInSeconds: int(e.deadline.Sub(now) / time.Second),
		})
	}
	s.fleetMu.Unlock()
	if expired > 0 {
		s.m.bumpFleet(func(c *FleetCounters) { c.WorkersExpired += uint64(expired) })
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i].URL < workers[j].URL })
	writeJSON(w, http.StatusOK, &FleetWorkersResponse{Schema: SchemaVersion, Workers: workers})
}

// Worker health classifications in CampaignProgress. A worker is live while
// its requests succeed, suspect after a transient failure (its queued shards
// are first in line to be stolen), and dead once the coordinator has given up
// on it and requeued its work.
const (
	WorkerLive    = "live"
	WorkerSuspect = "suspect"
	WorkerDead    = "dead"
)

// ProgressWorker is one worker's slice of a CampaignProgress report.
type ProgressWorker struct {
	URL    string `json:"url"`
	Health string `json:"health"` // "live", "suspect" or "dead"
	// ShardsDone / ShardsQueued / ShardsInFlight partition the shards the
	// coordinator currently attributes to this worker.
	ShardsDone     int `json:"shards_done"`
	ShardsQueued   int `json:"shards_queued"`
	ShardsInFlight int `json:"shards_in_flight"`
	// LatencyEwmaMs is the coordinator's moving estimate of this worker's
	// per-shard latency — the signal behind adaptive placement and stealing.
	LatencyEwmaMs float64 `json:"latency_ewma_ms"`
}

// CampaignProgress is the GET /v1/campaign/progress body: one coordinator's
// view of a running (or finished) distributed campaign. It is served by
// cordbench, not cordd — the coordinator is the only party that knows
// placement — but the shape lives here so every consumer (cordload -progress,
// the smoke scripts, the §7 conformance example) shares it.
type CampaignProgress struct {
	Schema      int    `json:"schema"`
	Campaign    string `json:"campaign"`
	Fingerprint string `json:"fingerprint"`
	// CellsDone / CellsTotal measure campaign completion in journal cells,
	// the exactly-once unit of merge.
	CellsDone  int `json:"cells_done"`
	CellsTotal int `json:"cells_total"`
	// ShardsStolen / ShardsRequeued count recovery actions so far: steals
	// moved queued shards from slow or suspect workers to fast ones,
	// requeues rescued shards from workers declared dead.
	ShardsStolen   int `json:"shards_stolen"`
	ShardsRequeued int `json:"shards_requeued"`
	// Workers lists per-worker assignment and health, sorted by URL.
	Workers []ProgressWorker `json:"workers"`
}

// ProgressHandler adapts a coordinator's progress snapshot function into the
// GET /v1/campaign/progress endpoint, stamping the schema version and
// sorting workers so equal states encode to equal bytes.
func ProgressHandler(snapshot func() CampaignProgress) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed,
				fmt.Errorf("%w: %s is not allowed on the progress resource", ErrBadRequest, r.Method))
			return
		}
		p := snapshot()
		p.Schema = SchemaVersion
		sort.Slice(p.Workers, func(i, j int) bool { return p.Workers[i].URL < p.Workers[j].URL })
		writeJSON(w, http.StatusOK, p)
	})
}
