#!/bin/sh
# End-to-end smoke test for the cordd service: build it, start it, exercise
# one detect session, one replay session, and a streaming round-trip over
# real HTTP, then SIGTERM it and assert a clean drain. CI runs this;
# `make smoke-service` runs it locally.
#
# `sh scripts/service-smoke.sh stream` runs only the streaming round-trip
# (plus the one-shot detect it compares against) — `make stream-smoke`.
#
# Pure POSIX sh + curl + grep/sed: no test framework, no jq.
set -eu

MODE="${1:-all}"
case "$MODE" in
all | stream) ;;
*)
	echo "usage: $0 [stream]" >&2
	exit 2
	;;
esac

PORT="${CORDD_PORT:-18080}"
ADDR="127.0.0.1:$PORT"
DIR="$(mktemp -d)"
PID=""

cleanup() {
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill -9 "$PID" 2>/dev/null || true
	fi
	rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
	echo "service-smoke: FAIL: $*" >&2
	if [ -f "$DIR/cordd.log" ]; then
		echo "--- cordd log ---" >&2
		cat "$DIR/cordd.log" >&2
	fi
	exit 1
}

echo "service-smoke: building cordd and cordreplay"
go build -o "$DIR/cordd" ./cmd/cordd
go build -o "$DIR/cordreplay" ./cmd/cordreplay

echo "service-smoke: starting cordd on $ADDR"
"$DIR/cordd" -addr "$ADDR" -workers 2 -queue 4 -timeout 60s -drain 30s \
	>"$DIR/cordd.log" 2>&1 &
PID=$!

# Wait for readiness: /healthz must answer 200 with status "ok".
i=0
until curl -sf "http://$ADDR/healthz" | grep -q '"status": "ok"'; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && fail "server did not become healthy"
	kill -0 "$PID" 2>/dev/null || fail "cordd exited before becoming healthy"
	sleep 0.2
done
echo "service-smoke: healthy after $i polls"

# The recorded fixture both the replay and streaming sections use.
"$DIR/cordreplay" -app fft -seed 9 -log "$DIR/fft.cordlog" >/dev/null \
	|| fail "cordreplay could not record a log"

SESSIONS=0
if [ "$MODE" = "all" ]; then
	# One detect session: 2xx with a schema-versioned body naming the app.
	curl -sf -X POST "http://$ADDR/v1/detect" \
		-H 'Content-Type: application/json' \
		-d '{"app":"fft","seed":3,"threads":4,"inject":5}' \
		>"$DIR/detect.json" || fail "detect request did not return 2xx"
	grep -q '"schema": 1' "$DIR/detect.json" || fail "detect body missing schema stamp"
	grep -q '"app": "fft"' "$DIR/detect.json" || fail "detect body missing app echo"
	grep -q '"detectors"' "$DIR/detect.json" || fail "detect body missing detector verdicts"
	echo "service-smoke: detect session OK"

	# Replay the recorded log through the service: 2xx and a completed verdict.
	curl -sf -X POST "http://$ADDR/v1/replay?app=fft&seed=9&threads=4" \
		-H 'Content-Type: application/octet-stream' \
		--data-binary @"$DIR/fft.cordlog" \
		>"$DIR/replay.json" || fail "replay request did not return 2xx"
	grep -q '"schema": 1' "$DIR/replay.json" || fail "replay body missing schema stamp"
	grep -q '"completed": true' "$DIR/replay.json" || fail "replay did not complete"
	echo "service-smoke: replay session OK"
	SESSIONS=2
fi

# Streaming round-trip (PROTOCOL.md §4): push the same recorded log through
# /v1/stream in small chunks, assert the server's re-execution matched it,
# and check the embedded detect block byte-for-byte against a one-shot
# /v1/detect answer for the same run.
curl -sf -X POST "http://$ADDR/v1/detect" \
	-H 'Content-Type: application/json' \
	-d '{"app":"fft","seed":9,"threads":4}' \
	>"$DIR/detect9.json" || fail "one-shot detect (stream reference) did not return 2xx"
curl -sf -X POST "http://$ADDR/v1/stream?app=fft&seed=9&threads=4" \
	-H 'Content-Type: application/octet-stream' \
	-H 'Transfer-Encoding: chunked' \
	--data-binary @"$DIR/fft.cordlog" \
	>"$DIR/stream.json" || fail "stream request did not return 2xx"
grep -q '"schema": 1' "$DIR/stream.json" || fail "stream summary missing schema stamp"
grep -q '"verified": true' "$DIR/stream.json" || fail "stream summary not verified"
grep -q '"log_match": true' "$DIR/stream.json" || fail "streamed log did not match the re-execution"
grep -q '"shards"' "$DIR/stream.json" || fail "stream summary missing shard table"

# "detect" is the last field of the summary (PROTOCOL.md §4.5), so the block
# runs from its opening line to the line before the closing outer brace.
# De-indenting it one level must reproduce the one-shot body exactly.
sed -n '/^  "detect": {$/,$p' "$DIR/stream.json" | sed '$d' |
	sed -e '1s/.*/{/' -e '2,$s/^  //' >"$DIR/stream-detect.json"
cmp -s "$DIR/stream-detect.json" "$DIR/detect9.json" \
	|| fail "embedded detect block is not byte-identical to one-shot /v1/detect"
echo "service-smoke: streaming round-trip OK (log_match, detect block byte-identical)"
SESSIONS=$((SESSIONS + 1))

# Metrics must show every completed one-shot session and the stream.
curl -sf "http://$ADDR/metrics" >"$DIR/metrics.json" || fail "metrics not served"
grep -q "\"completed\": $SESSIONS" "$DIR/metrics.json" \
	|| fail "metrics do not show $SESSIONS completed sessions"
grep -q '"streams"' "$DIR/metrics.json" || fail "metrics missing streams block"
grep -q '"frames_ingested"' "$DIR/metrics.json" || fail "metrics missing frames_ingested"
echo "service-smoke: metrics OK"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
status=0
wait "$PID" || status=$?
PID=""
[ "$status" -eq 0 ] || fail "cordd exited $status on SIGTERM (want clean drain, exit 0)"
grep -q "drained cleanly" "$DIR/cordd.log" || fail "cordd log missing drain confirmation"
echo "service-smoke: PASS (clean drain)"
