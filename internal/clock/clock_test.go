package clock

import (
	"testing"
	"testing/quick"
)

func TestScalarBasicOrder(t *testing.T) {
	cases := []struct {
		a, b   Scalar
		before bool
	}{
		{1, 2, true},
		{2, 1, false},
		{5, 5, false},
		{0xFFFF, 0, true},          // wraparound: 65535 just before 0
		{0, 0xFFFF, false},         //
		{100, 100 + Window, true},  // edge of the window
		{100 + Window, 100, false}, //
		{0x8000, 0x0000, true},     // half-space wrap
	}
	for _, c := range cases {
		if got := c.a.Before(c.b); got != c.before {
			t.Errorf("Before(%d,%d) = %v, want %v", c.a, c.b, got, c.before)
		}
	}
}

func TestScalarAtOrBefore(t *testing.T) {
	if !Scalar(5).AtOrBefore(5) {
		t.Error("5 should be at-or-before 5")
	}
	if !Scalar(5).AtOrBefore(6) || Scalar(6).AtOrBefore(5) {
		t.Error("AtOrBefore misordered")
	}
}

func TestDistSigns(t *testing.T) {
	if Dist(10, 15) != 5 || Dist(15, 10) != -5 {
		t.Fatal("simple distances wrong")
	}
	if Dist(0xFFF0, 0x0010) != 0x20 {
		t.Fatalf("wrapped distance = %d, want 32", Dist(0xFFF0, 0x0010))
	}
}

func TestSyncedBy(t *testing.T) {
	// Second access clock must lead the first's timestamp by at least D.
	if !SyncedBy(20, 4, 16) {
		t.Error("dist 16 should satisfy D=16")
	}
	if SyncedBy(19, 4, 16) {
		t.Error("dist 15 should not satisfy D=16")
	}
	if !SyncedBy(5, 4, 1) || SyncedBy(4, 4, 1) {
		t.Error("D=1 boundary wrong")
	}
}

// Property: within the window, Before is antisymmetric and total for
// distinct values.
func TestScalarAntisymmetry(t *testing.T) {
	f := func(a uint16, delta uint16) bool {
		d := delta % Window
		if d == 0 {
			d = 1
		}
		x, y := Scalar(a), Scalar(a).Add(int(d))
		return x.Before(y) && !y.Before(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transitivity for values within a common window.
func TestScalarTransitivity(t *testing.T) {
	f := func(a uint16, d1, d2 uint16) bool {
		x := Scalar(a)
		// Keep the total span inside the window.
		s1 := 1 + int(d1)%(Window/2-1)
		s2 := 1 + int(d2)%(Window/2-1)
		y := x.Add(s1)
		z := y.Add(s2)
		return x.Before(y) && y.Before(z) && x.Before(z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MaxScalar returns the later value.
func TestMaxScalar(t *testing.T) {
	f := func(a uint16, d uint16) bool {
		x := Scalar(a)
		y := x.Add(int(d % Window))
		m := MaxScalar(x, y)
		return m == y || (x == y && m == x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorCompare(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{1, 2, 3}
	if a.Compare(b) != Equal {
		t.Error("equal vectors not Equal")
	}
	c := Vector{2, 2, 3}
	if a.Compare(c) != Before || c.Compare(a) != After {
		t.Error("dominance misdetected")
	}
	d := Vector{2, 1, 3}
	if a.Compare(d) != Concurrent || d.Compare(a) != Concurrent {
		t.Error("concurrency misdetected")
	}
}

func TestVectorJoinIsLUB(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		va, vb := NewVector(4), NewVector(4)
		for i := 0; i < 4; i++ {
			va[i], vb[i] = uint64(a[i]), uint64(b[i])
		}
		j := va.Clone()
		j.Join(vb)
		// j dominates both inputs.
		if !j.DominatesOrEqual(va) || !j.DominatesOrEqual(vb) {
			return false
		}
		// j is the least such: each component comes from an input.
		for i := range j {
			if j[i] != va[i] && j[i] != vb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorJoinCommutesAndIdempotent(t *testing.T) {
	f := func(a, b [3]uint16) bool {
		va, vb := NewVector(3), NewVector(3)
		for i := 0; i < 3; i++ {
			va[i], vb[i] = uint64(a[i]), uint64(b[i])
		}
		ab := va.Clone()
		ab.Join(vb)
		ba := vb.Clone()
		ba.Join(va)
		if ab.Compare(ba) != Equal {
			return false
		}
		again := ab.Clone()
		again.Join(vb)
		return again.Compare(ab) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorHappensBeforeAfterJoinTick(t *testing.T) {
	// A classic acquire: joining a release's vector and ticking makes the
	// acquirer strictly after the releaser's snapshot.
	rel := Vector{3, 0, 0}
	acq := Vector{0, 1, 0}
	acq.Join(rel)
	acq.Tick(1)
	if !rel.HappensBefore(acq) {
		t.Fatalf("release %v should happen before acquire %v", rel, acq)
	}
}

func TestOrderString(t *testing.T) {
	for o, want := range map[Order]string{Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent"} {
		if o.String() != want {
			t.Errorf("Order(%d).String() = %q", o, o.String())
		}
	}
}
