package main

import (
	"testing"
	"time"

	"cord/internal/server"
)

// TestValidateFlags: degenerate service parameters must be rejected up front
// with a usage error instead of a half-configured server.
func TestValidateFlags(t *testing.T) {
	s := time.Second
	cases := []struct {
		name            string
		workers         int
		queue           int
		timeout         time.Duration
		drain           time.Duration
		maxBody         int64
		streams         int
		streamIdle      time.Duration
		streamMaxBytes  int64
		streamMaxFrames uint64
		streamDuty      int
		streamWorkers   int
		wantErr         bool
	}{
		{"defaults", 0, 16, 60 * s, 30 * s, 8 << 20, 8, 30 * s, 256 << 20, 16 << 20, 100, 0, false},
		{"explicit workers", 4, 1, s, s, 1, 1, s, 1, 1, 1, 2, false},
		{"negative workers", -1, 16, s, s, 1 << 20, 8, s, 1 << 20, 1 << 20, 100, 0, true},
		{"zero queue", 4, 0, s, s, 1 << 20, 8, s, 1 << 20, 1 << 20, 100, 0, true},
		{"negative queue", 4, -3, s, s, 1 << 20, 8, s, 1 << 20, 1 << 20, 100, 0, true},
		{"zero timeout", 4, 16, 0, s, 1 << 20, 8, s, 1 << 20, 1 << 20, 100, 0, true},
		{"negative timeout", 4, 16, -s, s, 1 << 20, 8, s, 1 << 20, 1 << 20, 100, 0, true},
		{"zero drain", 4, 16, s, 0, 1 << 20, 8, s, 1 << 20, 1 << 20, 100, 0, true},
		{"zero max body", 4, 16, s, s, 0, 8, s, 1 << 20, 1 << 20, 100, 0, true},
		{"negative max body", 4, 16, s, s, -1, 8, s, 1 << 20, 1 << 20, 100, 0, true},
		{"zero streams", 4, 16, s, s, 1 << 20, 0, s, 1 << 20, 1 << 20, 100, 0, true},
		{"zero stream idle", 4, 16, s, s, 1 << 20, 8, 0, 1 << 20, 1 << 20, 100, 0, true},
		{"zero stream bytes", 4, 16, s, s, 1 << 20, 8, s, 0, 1 << 20, 100, 0, true},
		{"zero stream frames", 4, 16, s, s, 1 << 20, 8, s, 1 << 20, 0, 100, 0, true},
		{"zero stream duty", 4, 16, s, s, 1 << 20, 8, s, 1 << 20, 1 << 20, 0, 0, true},
		{"duty above range", 4, 16, s, s, 1 << 20, 8, s, 1 << 20, 1 << 20, 101, 0, true},
		{"negative stream workers", 4, 16, s, s, 1 << 20, 8, s, 1 << 20, 1 << 20, 100, -1, true},
		{"stream workers at thread ceiling", 4, 16, s, s, 1 << 20, 8, s, 1 << 20, 1 << 20, 100, server.MaxThreads, false},
		{"stream workers above thread ceiling", 4, 16, s, s, 1 << 20, 8, s, 1 << 20, 1 << 20, 100, server.MaxThreads + 1, true},
		{"duty lower bound", 4, 16, s, s, 1 << 20, 8, s, 1 << 20, 1 << 20, 1, 0, false},
		{"duty upper bound", 4, 16, s, s, 1 << 20, 8, s, 1 << 20, 1 << 20, 100, 0, false},
	}
	for _, tc := range cases {
		err := validateFlags(tc.workers, tc.queue, tc.timeout, tc.drain, tc.maxBody,
			tc.streams, tc.streamIdle, tc.streamMaxBytes, tc.streamMaxFrames,
			tc.streamDuty, tc.streamWorkers)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: validateFlags = %v, wantErr=%v", tc.name, err, tc.wantErr)
		}
	}
}
