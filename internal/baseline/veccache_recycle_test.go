package baseline

import (
	"math/rand"
	"testing"

	"cord/internal/memsys"
	"cord/internal/trace"
)

func TestVecCacheInvalidationRecyclesVectors(t *testing.T) {
	v := NewVecCache(VecConfig{Threads: 2, Procs: 2, Bound: BoundInf})
	d := drive(v)
	d.acc(0, x, trace.Write, trace.Data) // proc 0 caches x's line
	d.acc(1, x, trace.Write, trace.Data) // proc 1's write invalidates it
	if len(v.freeVCs) == 0 {
		t.Fatal("invalidation-dropped vector was not recycled")
	}
	if len(v.pendingFree) != 0 {
		t.Fatal("pendingFree not drained at end of access")
	}
}

// idealAnd forwards every access to the Ideal oracle and a detector under
// test so both observe the identical execution.
type idealAnd struct {
	id  *Ideal
	det trace.Observer
}

func (p *idealAnd) Name() string { return "idealAnd" }
func (p *idealAnd) OnAccess(a trace.Access) trace.Report {
	p.id.OnAccess(a)
	return p.det.OnAccess(a)
}
func (p *idealAnd) Migrate(thread, proc int, instr uint64)   {}
func (p *idealAnd) ThreadDone(thread int, totalInstr uint64) {}
func (p *idealAnd) Finish()                                  {}

func TestVecCacheRecycledVectorsStayExact(t *testing.T) {
	// Invalidation-heavy randomized workload: the free list is fed by write
	// invalidations and drained by cloneVC on nearly every access. If a
	// recycled vector were still aliased (the pre-fix hazard) or reused with
	// stale contents, ordering would be corrupted and the detector would
	// report races the Ideal oracle never saw.
	id := NewIdeal(4)
	v := NewVecCache(VecConfig{Threads: 4, Procs: 4, Bound: BoundInf})
	d := drive(&idealAnd{id: id, det: v})
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		th := rng.Intn(4)
		class := trace.Data
		var addr memsys.Addr
		if rng.Intn(6) == 0 {
			class = trace.Sync
			addr = memsys.Addr(0x9000 + 64*rng.Intn(4))
		} else {
			// Few lines, mostly writes from all procs: constant invalidation.
			addr = memsys.Addr(0x1000 + 64*rng.Intn(8) + 8*rng.Intn(8))
		}
		kind := trace.Read
		if rng.Intn(3) != 0 {
			kind = trace.Write
		}
		d.acc(th, addr, kind, class)
	}
	if len(v.freeVCs) == 0 {
		t.Fatal("workload never exercised the recycle path; test is vacuous")
	}
	races := v.Races()
	if len(races) == 0 {
		t.Fatal("workload produced no races; test is vacuous")
	}
	for _, r := range races {
		if !id.Confirms(r) {
			t.Fatalf("false positive from recycled-vector corruption: %+v", r)
		}
	}
}
