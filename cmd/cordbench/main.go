// Command cordbench regenerates the paper's evaluation: Table 1, Figures
// 10–17, the §2.3–2.4 area arithmetic, and the §3.3 record/replay
// verification. Select individual artefacts with flags, or run everything
// with -all. The detection figures (10, 12–17) share one injection campaign,
// so requesting any of them runs it once.
//
// Campaigns are lists of independent seed-deterministic simulations, so
// they fan out across -procs host workers (default: all CPUs). Output is
// byte-identical at any -procs value for the same -seed; only wall-clock
// time changes.
//
// Usage:
//
//	cordbench -all -injections 60
//	cordbench -fig12 -fig16 -procs 8
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"cord/internal/experiment"
)

func main() {
	var (
		all        = flag.Bool("all", false, "produce every table and figure")
		table1     = flag.Bool("table1", false, "Table 1: application catalogue")
		fig10      = flag.Bool("fig10", false, "Fig 10: injections causing data races")
		fig11      = flag.Bool("fig11", false, "Fig 11: execution-time overhead")
		fig12      = flag.Bool("fig12", false, "Fig 12: CORD problem detection")
		fig13      = flag.Bool("fig13", false, "Fig 13: CORD raw race detection")
		fig14      = flag.Bool("fig14", false, "Fig 14: buffering-limit problem detection")
		fig15      = flag.Bool("fig15", false, "Fig 15: buffering-limit raw races")
		fig16      = flag.Bool("fig16", false, "Fig 16: D sweep, problems")
		fig17      = flag.Bool("fig17", false, "Fig 17: D sweep, raw races")
		area       = flag.Bool("area", false, "chip-area overhead arithmetic")
		replayFl   = flag.Bool("replay", false, "record/replay verification")
		dirFl      = flag.Bool("directory", false, "directory-coherence extension traffic")
		dirProcs   = flag.Int("directory-procs", 16, "processor count for -directory")
		injections = flag.Int("injections", 40, "injection runs per application")
		scale      = flag.Int("scale", 1, "workload scale for detection figures")
		ovScale    = flag.Int("overhead-scale", 4, "workload scale for Fig 11")
		seed       = flag.Uint64("seed", 0xC0DD, "campaign base seed")
		procs      = flag.Int("procs", 0, "host worker goroutines for campaign runs (0 = all CPUs); does not affect results")
		quiet      = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()

	if *all {
		*table1, *fig10, *fig11, *fig12, *fig13 = true, true, true, true, true
		*fig14, *fig15, *fig16, *fig17, *area, *replayFl, *dirFl = true, true, true, true, true, true, true
	}
	if !(*table1 || *fig10 || *fig11 || *fig12 || *fig13 || *fig14 || *fig15 || *fig16 || *fig17 || *area || *replayFl || *dirFl) {
		flag.Usage()
		os.Exit(2)
	}

	opts := experiment.Options{Scale: *scale, Injections: *injections, BaseSeed: *seed, Procs: *procs}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	out := os.Stdout
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "cordbench: %v\n", err)
		os.Exit(1)
	}

	if *table1 {
		rows, err := experiment.RunTable1(opts)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(out, "TABLE 1 — applications at this scale")
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		experiment.RenderTable1(rows, tw)
		tw.Flush()
		fmt.Fprintln(out)
	}

	if *area {
		f := experiment.AreaFigure()
		if err := f.Render(out); err != nil {
			fail(err)
		}
	}

	needDetection := *fig10 || *fig12 || *fig13 || *fig14 || *fig15 || *fig16 || *fig17
	if needDetection {
		res, err := experiment.RunDetection(opts)
		if err != nil {
			fail(err)
		}
		figs := []struct {
			want bool
			fig  experiment.Figure
		}{
			{*fig10, res.Fig10()},
			{*fig12, res.Fig12()},
			{*fig13, res.Fig13()},
			{*fig14, res.Fig14()},
			{*fig15, res.Fig15()},
			{*fig16, res.Fig16()},
			{*fig17, res.Fig17()},
		}
		for _, f := range figs {
			if !f.want {
				continue
			}
			fig := f.fig
			if err := fig.Render(out); err != nil {
				fail(err)
			}
		}
		if n := res.FalsePositives(); n != 0 {
			fmt.Fprintf(out, "WARNING: %d oracle-unconfirmed CORD reports (expected 0)\n", n)
		} else {
			fmt.Fprintln(out, "false positives across the campaign: 0 (as the paper claims)")
		}
		fmt.Fprintln(out)
	}

	if *fig11 {
		ovOpts := opts
		ovOpts.Scale = *ovScale
		_, fig, err := experiment.RunOverhead(ovOpts)
		if err != nil {
			fail(err)
		}
		if err := fig.Render(out); err != nil {
			fail(err)
		}
	}

	if *replayFl {
		rows, err := experiment.RunReplayCheck(opts)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(out, "RECORD/REPLAY — §3.3 verification")
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		experiment.RenderReplay(rows, tw)
		tw.Flush()
		fmt.Fprintln(out)
	}

	if *dirFl {
		rows, err := experiment.RunDirectory(opts, *dirProcs)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "DIRECTORY EXTENSION — §2.5, %d processors\n", *dirProcs)
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		experiment.RenderDirectory(rows, *dirProcs, tw)
		tw.Flush()
		fmt.Fprintln(out)
	}
}
