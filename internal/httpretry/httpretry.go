// Package httpretry is the one place the repository's HTTP clients decide
// how long to back off after server pushback. Two clients speak to cordd —
// cordload's load sweeps and cordbench's fleet dispatcher — and both must
// honor the service's 429/`Retry-After` contract (PROTOCOL.md §4.2)
// identically: delta-seconds and HTTP-date wire forms, a past HTTP-date
// meaning "retry now" rather than "back off", and a doubling fallback only
// when the header is absent or unparseable. The logic used to be duplicated
// per binary; a past-date clamp bug fixed in one copy and not the other is
// exactly the kind of drift this package exists to prevent.
package httpretry

import (
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Policy bounds how a client retries one throttled or transiently failing
// request: up to Attempts tries (the first counts), sleeping the server's
// Retry-After hint — or a doubling fallback starting at Fallback when there
// is no usable hint — between them, every sleep clamped to [0, Cap].
type Policy struct {
	// Attempts is the total try budget per request, first attempt included:
	// Attempts 3 means one try plus at most two retries.
	Attempts int
	// Fallback seeds the doubling backoff used when a response carries no
	// parseable Retry-After header.
	Fallback time.Duration
	// Cap bounds any single sleep, whatever its source.
	Cap time.Duration
}

// RetryAfter converts one response's Retry-After header into the sleep
// before the next try. Both wire forms are honored — delta-seconds and
// HTTP-date — and a missing or malformed header falls back to doubling
// backoff by attempt (1-based). Every result is clamped to [0, p.Cap].
//
// A parsed HTTP-date that is already in the past — which happens routinely
// when the server's clock runs behind the client's — means "retry now" and
// clamps to zero. Only an absent or unparseable header earns the doubling
// fallback; conflating the two made a skewed but well-behaved server look
// like one asking for ever-longer backoff.
func (p Policy) RetryAfter(header string, attempt int) time.Duration {
	var d time.Duration
	parsed := false
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
		parsed = true
	} else if at, err := http.ParseTime(header); err == nil {
		if d = time.Until(at); d < 0 {
			d = 0
		}
		parsed = true
	}
	if !parsed {
		d = p.Fallback
		for i := 1; i < attempt; i++ {
			d *= 2
			if d >= p.Cap {
				break
			}
		}
	}
	if d > p.Cap {
		d = p.Cap
	}
	return d
}

// Backoff is the fallback schedule alone — the sleep before try attempt+1
// when there is no server hint at all (transport errors, responses without
// a Retry-After header): Fallback doubled per completed attempt, clamped to
// [0, Cap]. It equals RetryAfter with an empty header and exists so call
// sites retrying non-429 failures don't fabricate a fake header to say so.
func (p Policy) Backoff(attempt int) time.Duration {
	return p.RetryAfter("", attempt)
}
