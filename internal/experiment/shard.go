package experiment

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"cord/internal/workload"
)

// This file is the worker half of the distributed detection campaign
// (PROTOCOL.md §6): a shard — some application's half-open injection-run
// ranges — executed in isolation, returning the exact outcome cells the
// coordinator's checkpoint journal would hold had it run those runs itself.
// Everything rests on the campaign's determinism contract (see the package
// comment): a run is a pure function of (BaseSeed, app index, run index),
// so a worker that receives only the campaign configuration and a range of
// indices produces, byte for byte, the cells of any other executor.

// ErrBadShard reports a shard specification that names runs outside the
// campaign's domain — an unknown application or an out-of-range index. The
// cordd campaign endpoint maps it to HTTP 400.
var ErrBadShard = errors.New("experiment: invalid shard specification")

// ShardRange names the half-open injection-run interval [Lo, Hi) of one
// application. Lo and Hi are run indices in [0, Injections].
type ShardRange struct {
	App string `json:"app"`
	Lo  int    `json:"lo"`
	Hi  int    `json:"hi"`
}

// ShardSpec is one unit of distributed campaign work: a set of run ranges
// executed together. Ranges may name several applications; overlapping or
// duplicate indices are collapsed, and the cells of a shard are canonically
// ordered — applications by campaign index, each application's count cell
// first, then injection cells by run index — so two spec-equal shards
// always yield byte-identical responses regardless of range order.
type ShardSpec struct {
	Ranges []ShardRange `json:"ranges"`
}

// Cell is one run outcome under its deterministic journal identity: Key is
// the checkpoint key an equivalent local campaign would use, Data the exact
// JSON bytes it would journal. A coordinator merges cells by appending them
// verbatim to its own journal and re-running the campaign against it; the
// aggregation cannot tell a remote cell from a local one.
type Cell struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// Fingerprint is the stable token condensing the result-determining
// campaign configuration (CampaignMeta, defaults applied). Coordinator and
// worker each compute it independently; the campaign wire protocol rejects
// a shard whose declared fingerprint disagrees with the worker's own
// computation, which is what catches version or configuration skew before
// any simulation runs.
func (o Options) Fingerprint() string { return o.fingerprint() }

// DetectCountKey is the journal identity of an application's phase-1 sizing
// run in the detection campaign.
func (o Options) DetectCountKey(app int) string { return o.runKey("detect-count", app, 0) }

// DetectInjectKey is the journal identity of one fault-injection run in the
// detection campaign.
func (o Options) DetectInjectKey(app, run int) string { return o.runKey("detect-inject", app, run) }

// OptionsFromMeta reconstructs campaign Options from wire metadata: the
// inverse of Options.Meta, used by the cordd campaign endpoint. Zero fields
// take the same defaults the CLI applies (so a normalized meta round-trips
// to an equal fingerprint); negative fields and unknown application names
// are rejected. Result-independent knobs — Procs, FTShards, Checkpoint —
// are deliberately not on the wire and stay at their zero values for the
// worker to choose locally.
func OptionsFromMeta(m CampaignMeta) (Options, error) {
	if m.Scale < 0 || m.Threads < 0 || m.Injections < 0 {
		return Options{}, fmt.Errorf("experiment: campaign meta fields must be non-negative (scale=%d threads=%d injections=%d)",
			m.Scale, m.Threads, m.Injections)
	}
	if m.Threads > 1<<16-1 {
		return Options{}, fmt.Errorf("experiment: threads=%d does not fit the wire format's 16-bit thread id", m.Threads)
	}
	o := Options{
		BaseSeed:   m.BaseSeed,
		Scale:      m.Scale,
		Threads:    m.Threads,
		Injections: m.Injections,
	}
	if len(m.Apps) > 0 {
		o.Apps = make([]workload.App, len(m.Apps))
		for i, name := range m.Apps {
			app, err := workload.ByName(name)
			if err != nil {
				return Options{}, fmt.Errorf("experiment: campaign meta: %w", err)
			}
			o.Apps[i] = app
		}
	}
	return o, nil
}

// ExecuteDetectShard runs one shard of the detection campaign and returns
// its outcome cells in canonical order. The shard recomputes the phase-1
// sizing run of every application it touches — a count cell is cheap, and
// recomputing it beats shipping injection targets around, because the cell
// is a pure function of the configuration: shards that share an application
// emit byte-identical copies of its count cell, and the coordinator's
// journal collapses them (same key, same bytes).
//
// Execution honors the campaign's full Options surface: runs fan out across
// o.Procs workers, transient failures retry under o.Retry, chaos faults
// inject, closing o.Interrupt drains and returns ErrInterrupted, and
// closing o.Cancel aborts in-flight simulations. With o.Checkpoint set the
// shard's runs journal locally too, exactly like a local campaign.
func ExecuteDetectShard(o Options, spec ShardSpec) ([]Cell, error) {
	o = o.withDefaults()
	idxOf := make(map[string]int, len(o.Apps))
	for i, a := range o.Apps {
		idxOf[a.Name] = i
	}

	// Collapse the ranges into one sorted run set per application.
	runsByApp := map[int]map[int]bool{}
	for _, r := range spec.Ranges {
		appIdx, ok := idxOf[r.App]
		if !ok {
			return nil, fmt.Errorf("%w: application %q is not in this campaign", ErrBadShard, r.App)
		}
		if r.Lo < 0 || r.Hi > o.Injections || r.Lo >= r.Hi {
			return nil, fmt.Errorf("%w: range [%d, %d) of %q outside [0, %d)",
				ErrBadShard, r.Lo, r.Hi, r.App, o.Injections)
		}
		if runsByApp[appIdx] == nil {
			runsByApp[appIdx] = map[int]bool{}
		}
		for i := r.Lo; i < r.Hi; i++ {
			runsByApp[appIdx][i] = true
		}
	}
	if len(runsByApp) == 0 {
		return nil, fmt.Errorf("%w: a shard must name at least one run", ErrBadShard)
	}
	apps := make([]int, 0, len(runsByApp))
	for appIdx := range runsByApp {
		apps = append(apps, appIdx)
	}
	sort.Ints(apps)

	// Phase 1: size the shard's applications and draw their targets — the
	// same journaled ladder a local campaign uses.
	counts := make(map[int]*countOutcome, len(apps))
	for _, appIdx := range apps {
		counts[appIdx] = &countOutcome{}
	}
	if err := o.forEach(len(apps), func(k int) error {
		appIdx := apps[k]
		return o.journaledRun("detect-count", appIdx, 0, counts[appIdx], func() error {
			out, err := o.countRun(appIdx)
			if err != nil {
				return err
			}
			*counts[appIdx] = out
			return nil
		})
	}); err != nil {
		return nil, err
	}

	// Phase 2: the shard's flat injection-run list, in canonical order.
	type runID struct{ app, run int }
	var flat []runID
	for _, appIdx := range apps {
		runs := make([]int, 0, len(runsByApp[appIdx]))
		for i := range runsByApp[appIdx] {
			runs = append(runs, i)
		}
		sort.Ints(runs)
		for _, i := range runs {
			flat = append(flat, runID{appIdx, i})
		}
	}
	outcomes := make([]injectionOutcome, len(flat))
	if err := o.forEach(len(flat), func(k int) error {
		id := flat[k]
		return o.journaledRun("detect-inject", id.app, id.run, &outcomes[k], func() error {
			out, err := o.runInjection(id.app, id.run, counts[id.app].Targets[id.run])
			if err != nil {
				return err
			}
			outcomes[k] = out
			return nil
		})
	}); err != nil {
		return nil, err
	}

	// Assemble the cells with exactly the bytes journaledRun appends:
	// json.Marshal of the outcome value.
	cells := make([]Cell, 0, len(apps)+len(flat))
	for _, appIdx := range apps {
		data, err := json.Marshal(counts[appIdx])
		if err != nil {
			return nil, fmt.Errorf("experiment: encoding count cell: %w", err)
		}
		cells = append(cells, Cell{Key: o.DetectCountKey(appIdx), Data: data})
	}
	for k, id := range flat {
		data, err := json.Marshal(&outcomes[k])
		if err != nil {
			return nil, fmt.Errorf("experiment: encoding injection cell: %w", err)
		}
		cells = append(cells, Cell{Key: o.DetectInjectKey(id.app, id.run), Data: data})
	}
	return cells, nil
}

// Runs is the number of injection runs the spec names after collapsing
// overlaps, not counting the per-app sizing runs.
func (s ShardSpec) Runs() int {
	seen := map[string]map[int]bool{}
	for _, r := range s.Ranges {
		if seen[r.App] == nil {
			seen[r.App] = map[int]bool{}
		}
		for i := r.Lo; i < r.Hi; i++ {
			seen[r.App][i] = true
		}
	}
	n := 0
	for _, runs := range seen {
		n += len(runs)
	}
	return n
}
