package experiment

import (
	"fmt"
	"text/tabwriter"

	"cord/internal/replay"
)

// ReplayRow is one application's §3.3-style record/replay verification.
type ReplayRow struct {
	App        string
	Accesses   uint64
	LogEntries int
	LogBytes   int
	Match      bool
	Mismatch   string
}

// RunReplayCheck records and replays every application (one seed), checking
// exact reproduction and the "<1 MB order log" claim.
func RunReplayCheck(o Options) ([]ReplayRow, error) {
	o = o.withDefaults()
	var rows []ReplayRow
	for _, app := range o.Apps {
		out, err := replay.RecordAndReplay(app.Build(o.Scale, o.Threads), replay.Options{
			Seed: o.BaseSeed + 1, Jitter: 7,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: replaying %s: %w", app.Name, err)
		}
		rows = append(rows, ReplayRow{
			App:        app.Name,
			Accesses:   out.Recorded.Accesses,
			LogEntries: out.Log.Len(),
			LogBytes:   out.Log.SizeBytes(),
			Match:      out.Match,
			Mismatch:   out.Mismatch,
		})
	}
	return rows, nil
}

// RenderReplay writes the verification table.
func RenderReplay(rows []ReplayRow, w *tabwriter.Writer) {
	fmt.Fprintln(w, "app\taccesses\tlog entries\tlog bytes\treplay")
	for _, r := range rows {
		status := "exact"
		if !r.Match {
			status = "MISMATCH: " + r.Mismatch
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\n", r.App, r.Accesses, r.LogEntries, r.LogBytes, status)
	}
}
