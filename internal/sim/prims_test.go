package sim

import (
	"testing"

	"cord/internal/memsys"
)

func TestMutexMutualExclusion(t *testing.T) {
	al := memsys.NewAllocator()
	m := NewMutex(al)
	inCS := al.Alloc(1).Word(0)
	viol := al.Alloc(1).Word(0)
	prog := Program{
		Name:    "mutex",
		Threads: 4,
		Body: func(th int, env *Env) {
			for i := 0; i < 15; i++ {
				m.Lock(env)
				if env.Read(inCS) != 0 {
					env.Write(viol, 1)
				}
				env.Write(inCS, 1)
				env.Compute(7)
				env.Write(inCS, 0)
				m.Unlock(env)
				env.Compute(3)
			}
		},
	}
	for seed := uint64(1); seed <= 5; seed++ {
		res, err := New(Config{Seed: seed, Jitter: 9}, prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Mem.Load(viol) != 0 {
			t.Fatalf("seed %d: mutual exclusion violated", seed)
		}
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	al := memsys.NewAllocator()
	bar := NewBarrier(al, 4)
	counts := al.Alloc(1).Word(0)
	mu := NewMutex(al)
	bad := al.Alloc(1).Word(0)
	const rounds = 8
	prog := Program{
		Name:    "barrier-gen",
		Threads: 4,
		Body: func(th int, env *Env) {
			for r := 0; r < rounds; r++ {
				mu.Lock(env)
				env.Write(counts, env.Read(counts)+1)
				mu.Unlock(env)
				bar.Wait(env)
				// Immediately after the barrier everyone must see exactly
				// 4*(r+1) arrivals.
				if env.Read(counts) != uint64(4*(r+1)) {
					env.Write(bad, 1)
				}
				bar.Wait(env)
			}
		},
	}
	for seed := uint64(1); seed <= 4; seed++ {
		res, err := New(Config{Seed: seed, Jitter: 9}, prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Hung {
			t.Fatalf("seed %d hung", seed)
		}
		if res.Mem.Load(bad) != 0 {
			t.Fatalf("seed %d: barrier generation leaked", seed)
		}
	}
}

func TestFlagMonotoneWaits(t *testing.T) {
	al := memsys.NewAllocator()
	f := NewFlag(al)
	got := al.Alloc(4)
	prog := Program{
		Name:    "flag-mono",
		Threads: 2,
		Body: func(th int, env *Env) {
			if th == 0 {
				for v := uint64(1); v <= 4; v++ {
					env.Compute(20)
					f.Set(env, v)
				}
				return
			}
			for v := uint64(1); v <= 4; v++ {
				f.WaitAtLeast(env, v)
				env.Write(got.Word(int(v)-1), env.SyncRead(f.Addr))
			}
		},
	}
	res, err := New(Config{Seed: 2, Jitter: 5}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 4; v++ {
		if res.Mem.Load(got.Word(v-1)) < uint64(v) {
			t.Fatalf("wait %d observed %d", v, res.Mem.Load(got.Word(v-1)))
		}
	}
}

func TestUnlockWithoutInjectionReleases(t *testing.T) {
	// A lock released by one thread must be acquirable by another, across
	// many handoffs, without loss.
	al := memsys.NewAllocator()
	m := NewMutex(al)
	token := al.Alloc(1).Word(0)
	prog := Program{
		Name:    "handoff",
		Threads: 3,
		Body: func(th int, env *Env) {
			for i := 0; i < 20; i++ {
				m.Lock(env)
				env.Write(token, env.Read(token)+1)
				m.Unlock(env)
			}
		},
	}
	res, err := New(Config{Seed: 8, Jitter: 11}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Mem.Load(token); v != 60 {
		t.Fatalf("token = %d, want 60", v)
	}
}
