package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"cord/internal/experiment"
	"cord/internal/httpretry"
	"cord/internal/server"
)

// This file is the coordinator half of the distributed campaign protocol
// (PROTOCOL.md §6): -workers fans the detection campaign's run shards out
// over a cordd fleet, journals every received outcome cell under its run
// identity, and leaves RunDetection to aggregate the journal exactly as it
// would a local run. The journal is the merge point — remote cells are
// byte-identical to local ones (the §6 contract), so the artifacts cannot
// depend on worker count or failure schedule.

// fleetClientTimeout bounds one shard request end to end: worker queue wait
// plus serial shard execution. Workers bound sessions themselves
// (SessionTimeout), so this mainly catches dead TCP peers.
const fleetClientTimeout = 5 * time.Minute

// fleetRetryPolicy is the production shard-retry ladder: bounded attempts,
// 429 Retry-After hints honored, doubling fallback for transport errors and
// 5xx, capped so a misbehaving worker cannot stall the queue for long.
var fleetRetryPolicy = httpretry.Policy{Attempts: 5, Fallback: 250 * time.Millisecond, Cap: 5 * time.Second}

// parseWorkers splits the -workers list into base URLs.
func parseWorkers(spec string) ([]string, error) {
	var urls []string
	for _, part := range strings.Split(spec, ",") {
		u := strings.TrimRight(strings.TrimSpace(part), "/")
		if u == "" {
			return nil, fmt.Errorf("-workers entry %q is empty", part)
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("-workers entry %q must be an http(s) base URL", part)
		}
		urls = append(urls, u)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("-workers must name at least one worker")
	}
	return urls, nil
}

// shardWork is one dispatchable shard: a contiguous run range of one app.
type shardWork struct {
	id     string
	ranges []experiment.ShardRange
	runs   int
}

// buildShards cuts the campaign into per-app chunks of at most shardRuns
// injection runs. Shard ids are deterministic functions of the content
// (`<app>.<lo>.<hi>`), so a re-dispatched campaign re-sends byte-identical
// shards and idempotent workers answer from determinism alone.
func buildShards(meta experiment.CampaignMeta, shardRuns int) []shardWork {
	var shards []shardWork
	for _, app := range meta.Apps {
		for lo := 0; lo < meta.Injections; lo += shardRuns {
			hi := lo + shardRuns
			if hi > meta.Injections {
				hi = meta.Injections
			}
			shards = append(shards, shardWork{
				id:     fmt.Sprintf("%s.%d.%d", app, lo, hi),
				ranges: []experiment.ShardRange{{App: app, Lo: lo, Hi: hi}},
				runs:   hi - lo,
			})
		}
	}
	return shards
}

// shardJournaled reports whether every cell the shard would produce is
// already in the journal — the resume fast path: such shards are never
// dispatched again.
func shardJournaled(o experiment.Options, appIdx map[string]int, w shardWork) bool {
	if o.Checkpoint == nil {
		return false
	}
	for _, rg := range w.ranges {
		idx := appIdx[rg.App]
		if !o.Checkpoint.Has(o.DetectCountKey(idx)) {
			return false
		}
		for i := rg.Lo; i < rg.Hi; i++ {
			if !o.Checkpoint.Has(o.DetectInjectKey(idx, i)) {
				return false
			}
		}
	}
	return true
}

// errorPayload mirrors the service's error body (PROTOCOL.md §5).
type errorPayload struct {
	Schema int    `json:"schema"`
	Code   string `json:"code"`
	Error  string `json:"error"`
}

// fatalStatus reports whether an HTTP status can never succeed on retry or
// on another worker: the request itself is wrong (bad configuration,
// fingerprint skew, shard-id conflict), so re-sending it anywhere is wasted
// work at best and silent corruption at worst.
func fatalStatus(status int) bool {
	switch status {
	case http.StatusBadRequest, http.StatusConflict, http.StatusUnprocessableEntity,
		http.StatusRequestEntityTooLarge, http.StatusNotFound, http.StatusMethodNotAllowed:
		return true
	}
	return false
}

// fatalDispatchError marks failures that must abort the whole campaign
// rather than fail over to another worker.
type fatalDispatchError struct{ err error }

func (e fatalDispatchError) Error() string { return e.err.Error() }
func (e fatalDispatchError) Unwrap() error { return e.err }

// postShard sends one shard to one worker under the retry policy: 429
// sleeps the server's Retry-After hint, transport errors and 5xx sleep the
// doubling fallback, and a fatal status aborts the campaign. A worker that
// exhausts the attempt budget is reported dead via a non-fatal error.
func postShard(client *http.Client, url string, req server.CampaignShardRequest, policy httpretry.Policy, progress func(string, ...any)) ([]experiment.Cell, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fatalDispatchError{fmt.Errorf("encoding shard %s: %w", req.ShardID, err)}
	}
	var lastErr error
	for attempt := 1; attempt <= policy.Attempts; attempt++ {
		resp, err := client.Post(url+"/v1/campaign/shard", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			if attempt < policy.Attempts {
				progress("fleet: %s: shard %s attempt %d/%d failed (%v); backing off %v",
					url, req.ShardID, attempt, policy.Attempts, err, policy.Backoff(attempt))
				time.Sleep(policy.Backoff(attempt))
			}
			continue
		}
		b, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil {
			lastErr = readErr
			if attempt < policy.Attempts {
				time.Sleep(policy.Backoff(attempt))
			}
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var sr server.CampaignShardResponse
			if err := json.Unmarshal(b, &sr); err != nil {
				return nil, fatalDispatchError{fmt.Errorf("worker %s: shard %s: unparsable response: %v", url, req.ShardID, err)}
			}
			return sr.Cells, nil
		case resp.StatusCode == http.StatusTooManyRequests:
			d := policy.RetryAfter(resp.Header.Get("Retry-After"), attempt)
			lastErr = fmt.Errorf("worker %s pushed back (429)", url)
			if attempt < policy.Attempts {
				progress("fleet: %s: shard %s throttled; honoring Retry-After %v", url, req.ShardID, d)
				time.Sleep(d)
			}
		case fatalStatus(resp.StatusCode):
			var ep errorPayload
			_ = json.Unmarshal(b, &ep)
			return nil, fatalDispatchError{fmt.Errorf("worker %s rejected shard %s: status %d code %q: %s",
				url, req.ShardID, resp.StatusCode, ep.Code, ep.Error)}
		default: // 5xx, 503 draining, timeouts: maybe transient, maybe dying
			lastErr = fmt.Errorf("worker %s: shard %s: status %d", url, req.ShardID, resp.StatusCode)
			if attempt < policy.Attempts {
				time.Sleep(policy.Backoff(attempt))
			}
		}
	}
	return nil, fmt.Errorf("worker %s gave up after %d attempts: %w", url, policy.Attempts, lastErr)
}

// fleetState is the shared dispatch queue: a stack of pending shards plus
// the counters that decide termination. Dead workers push their in-flight
// shard back and leave; the campaign fails only when no live worker remains
// to take the pending work.
type fleetState struct {
	mu          sync.Mutex
	cond        *sync.Cond
	pending     []shardWork
	inflight    int
	live        int
	failed      error
	interrupted bool
}

// next blocks until there is a shard to take, all work is done, or the
// dispatch is aborted; ok reports whether a shard was taken.
func (s *fleetState) next() (shardWork, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) == 0 && s.inflight > 0 && s.failed == nil && !s.interrupted {
		s.cond.Wait()
	}
	if s.failed != nil || s.interrupted || len(s.pending) == 0 {
		return shardWork{}, false
	}
	w := s.pending[len(s.pending)-1]
	s.pending = s.pending[:len(s.pending)-1]
	s.inflight++
	return w, true
}

func (s *fleetState) done() {
	s.mu.Lock()
	s.inflight--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// workerDied returns the worker's in-flight shard to the queue. The last
// live worker's death with work outstanding fails the campaign.
func (s *fleetState) workerDied(w shardWork, err error) {
	s.mu.Lock()
	s.pending = append(s.pending, w)
	s.inflight--
	s.live--
	if s.live == 0 {
		s.failed = fmt.Errorf("all workers lost with %d shards outstanding; last: %w", len(s.pending), err)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *fleetState) fail(err error) {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *fleetState) interrupt() {
	s.mu.Lock()
	s.interrupted = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// fleetDispatch executes the detection campaign's runs on a cordd fleet and
// journals every outcome cell into opts.Checkpoint. On return with nil
// error, every run identity of the campaign is journaled, so a subsequent
// RunDetection aggregates entirely from the journal without simulating
// anything locally.
//
// Worker loss is survived by re-sharding: a worker that exhausts its retry
// budget is dropped and its shard returns to the queue for the survivors.
// Closing opts.Interrupt drains in-flight shards (journaling them) and
// returns experiment.ErrInterrupted; the journal then resumes the campaign
// exactly like a local -resume.
func fleetDispatch(opts experiment.Options, workerURLs []string, shardRuns int, client *http.Client, policy httpretry.Policy) error {
	if opts.Checkpoint == nil {
		return errors.New("fleet dispatch needs a checkpoint journal as its merge point")
	}
	meta := opts.Meta()
	fp := opts.Fingerprint()
	campaign := "bench-" + fp
	progress := func(format string, args ...any) {
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, format+"\n", args...)
		}
	}

	// Probe every worker's plan endpoint: agreement on the fingerprint is
	// the precondition for merging anything a worker says. Unreachable
	// workers are dropped with a warning; a disagreeing worker is version
	// or configuration skew and aborts the dispatch — its cells would merge
	// silently wrong.
	planBody, err := json.Marshal(server.CampaignPlanRequest{Campaign: campaign, Options: meta})
	if err != nil {
		return fmt.Errorf("fleet: encoding plan request: %w", err)
	}
	var live []string
	for _, url := range workerURLs {
		resp, err := client.Post(url+"/v1/campaign/plan", "application/json", bytes.NewReader(planBody))
		if err != nil {
			progress("fleet: %s unreachable (%v); dispatching without it", url, err)
			continue
		}
		b, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil || resp.StatusCode != http.StatusOK {
			var ep errorPayload
			_ = json.Unmarshal(b, &ep)
			if fatalStatus(resp.StatusCode) {
				return fmt.Errorf("fleet: %s rejected the campaign plan: status %d code %q: %s",
					url, resp.StatusCode, ep.Code, ep.Error)
			}
			progress("fleet: %s plan probe failed (status %d); dispatching without it", url, resp.StatusCode)
			continue
		}
		var plan server.CampaignPlanResponse
		if err := json.Unmarshal(b, &plan); err != nil {
			return fmt.Errorf("fleet: %s: unparsable plan response: %v", url, err)
		}
		if plan.Fingerprint != fp {
			return fmt.Errorf("fleet: %s fingerprints the campaign %s, this coordinator %s: worker and coordinator builds or configurations disagree — refusing to merge its results",
				url, plan.Fingerprint, fp)
		}
		live = append(live, url)
	}
	if len(live) == 0 {
		return fmt.Errorf("fleet: none of the %d workers is usable", len(workerURLs))
	}

	// Cut the campaign into shards, skipping those fully journaled (resume).
	appIdx := make(map[string]int, len(meta.Apps))
	for i, name := range meta.Apps {
		appIdx[name] = i
	}
	all := buildShards(meta, shardRuns)
	var shards []shardWork
	skipped := 0
	for _, w := range all {
		if shardJournaled(opts, appIdx, w) {
			skipped++
			continue
		}
		shards = append(shards, w)
	}
	progress("fleet: %d workers, %d shards of <=%d runs (%d already journaled)",
		len(live), len(shards), shardRuns, skipped)
	if len(shards) == 0 {
		return nil
	}

	st := &fleetState{pending: shards, live: len(live)}
	st.cond = sync.NewCond(&st.mu)

	stopWatch := make(chan struct{})
	defer close(stopWatch)
	if opts.Interrupt != nil {
		go func() {
			select {
			case <-opts.Interrupt:
				st.interrupt()
			case <-stopWatch:
			}
		}()
	}

	var wg sync.WaitGroup
	for _, url := range live {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				w, ok := st.next()
				if !ok {
					return
				}
				req := server.CampaignShardRequest{
					Campaign:    campaign,
					ShardID:     w.id,
					Fingerprint: fp,
					Options:     meta,
					Ranges:      w.ranges,
				}
				cells, err := postShard(client, url, req, policy, progress)
				if err != nil {
					var fatal fatalDispatchError
					if errors.As(err, &fatal) {
						st.fail(err)
						st.done()
						return
					}
					progress("fleet: dropping %s (%v); re-sharding %s to the survivors", url, err, w.id)
					st.workerDied(w, err)
					return
				}
				// The journal is the merge point: Append compacts the
				// wire cells back to the exact bytes a local campaign
				// journals, and duplicate keys (count cells shared by
				// shards of one app) overwrite with identical bytes.
				var jerr error
				for _, c := range cells {
					if err := opts.Checkpoint.Append(c.Key, c.Data); err != nil {
						jerr = fmt.Errorf("fleet: journaling %s: %w", c.Key, err)
						break
					}
				}
				if jerr != nil {
					// Unlike a local run (where a lost journal entry only
					// costs resume time), the journal is the only copy of a
					// remote outcome — a failed append must stop the
					// campaign before aggregation runs on holes.
					st.fail(jerr)
					st.done()
					return
				}
				progress("fleet: %s completed shard %s (%d runs, %d cells)", url, w.id, w.runs, len(cells))
				st.done()
			}
		}(url)
	}
	wg.Wait()

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failed != nil {
		return st.failed
	}
	if st.interrupted {
		return experiment.ErrInterrupted
	}
	return nil
}
