package trace

import (
	"strings"
	"testing"

	"cord/internal/memsys"
)

func TestConflicts(t *testing.T) {
	w0 := Access{Thread: 0, Addr: 0x40, Kind: Write}
	r1 := Access{Thread: 1, Addr: 0x40, Kind: Read}
	r1b := Access{Thread: 1, Addr: 0x44, Kind: Read}
	w0b := Access{Thread: 0, Addr: 0x40, Kind: Write}
	cases := []struct {
		a, b Access
		want bool
	}{
		{w0, r1, true},   // write-read, same word
		{r1, w0, true},   // symmetric
		{w0, w0b, false}, // same thread
		{w0, r1b, false}, // different word
		{Access{Thread: 0, Addr: 8, Kind: Read}, Access{Thread: 1, Addr: 8, Kind: Read}, false}, // read-read
	}
	for i, c := range cases {
		if got := Conflicts(c.a, c.b); got != c.want {
			t.Errorf("case %d: Conflicts = %v, want %v", i, got, c.want)
		}
	}
}

func TestStringers(t *testing.T) {
	a := Access{Seq: 5, Thread: 2, Addr: memsys.Addr(0x80), Kind: Write, Class: Sync}
	s := a.String()
	for _, want := range []string{"T2", "WR", "sync", "0x80", "#5"} {
		if !strings.Contains(s, want) {
			t.Errorf("Access string %q missing %q", s, want)
		}
	}
	r := Race{Addr: 0x40, First: Ref{Thread: 0, Kind: Write}, Second: Ref{Thread: 1, Kind: Read}}
	rs := r.String()
	if !strings.Contains(rs, "T0 WR") || !strings.Contains(rs, "T1 RD") {
		t.Errorf("Race string %q", rs)
	}
	if Read.String() != "RD" || Write.String() != "WR" || Data.String() != "data" || Sync.String() != "sync" {
		t.Error("enum names wrong")
	}
}

func TestFuncObserver(t *testing.T) {
	n := 0
	f := &FuncObserver{Label: "tap", Fn: func(Access) { n++ }}
	if f.Name() != "tap" {
		t.Fatal("name")
	}
	f.OnAccess(Access{})
	f.OnAccess(Access{})
	f.Migrate(0, 1, 0)
	f.ThreadDone(0, 0)
	f.Finish()
	if n != 2 {
		t.Fatalf("Fn called %d times", n)
	}
	// Nil Fn must be safe.
	empty := &FuncObserver{}
	empty.OnAccess(Access{})
}
