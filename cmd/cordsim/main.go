// Command cordsim runs one Table 1 application on the simulated CMP with a
// chosen set of detectors attached, optionally removing one dynamic
// synchronization instance (the paper's §3.4 fault injection), and reports
// what each detector found.
//
// Usage:
//
//	cordsim -app raytrace -seed 3 -inject 17 -d 16
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"cord"
)

func main() {
	var (
		appName = flag.String("app", "raytrace", "application (see -list)")
		list    = flag.Bool("list", false, "list applications and exit")
		seed    = flag.Uint64("seed", 1, "scheduling seed")
		scale   = flag.Int("scale", 1, "workload scale factor")
		threads = flag.Int("threads", 4, "threads (= processors)")
		inject  = flag.Uint64("inject", 0, "remove the Nth dynamic sync instance (0 = none)")
		d       = flag.Int("d", 16, "CORD sync-read window D")
		races   = flag.Int("races", 10, "max races to print per detector")
	)
	flag.Parse()

	if *list {
		for _, a := range cord.Apps() {
			fmt.Printf("%-10s (paper input: %s)\n", a.Name, a.Input)
		}
		return
	}

	var app cord.App
	found := false
	for _, a := range cord.Apps() {
		if a.Name == *appName {
			app, found = a, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "cordsim: unknown application %q (try -list)\n", *appName)
		os.Exit(2)
	}

	det := cord.NewDetector(cord.DetectorConfig{Threads: *threads, Procs: *threads, D: *d, Record: true})
	ideal := cord.NewIdealDetector(*threads)
	vec := cord.NewVectorDetector(cord.VectorConfig{Threads: *threads, Procs: *threads, Bound: cord.BoundL2})

	res, err := cord.Run(app.Build(*scale, *threads), cord.RunConfig{
		Seed: *seed, Jitter: 7, InjectSkip: *inject,
		Observers: []cord.Observer{ideal, vec, det},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s seed=%d scale=%d threads=%d inject=%d\n", app.Name, *seed, *scale, *threads, *inject)
	fmt.Printf("  accesses=%d instructions=%d sync-instances=%d hung=%v\n",
		res.Accesses, res.Ops, res.SyncInstances, res.Hung)
	if *inject > 0 {
		fmt.Printf("  removed instance: thread %d, its %d-th own sync operation\n",
			res.InjectedThread, res.InjectedThreadNth)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "detector\tracy accesses\tproblem detected")
	fmt.Fprintf(w, "%s\t%d\t%v\n", ideal.Name(), ideal.RaceCount(), ideal.ProblemDetected())
	fmt.Fprintf(w, "%s\t%d\t%v\n", vec.Name(), vec.RaceCount(), vec.ProblemDetected())
	fmt.Fprintf(w, "%s\t%d\t%v\n", det.Name(), det.RaceCount(), det.ProblemDetected())
	w.Flush()

	st := det.Stats()
	fmt.Printf("CORD activity: checks=%d memTsBroadcasts=%d clockChanges=%d log=%d bytes\n",
		st.CheckRequests, st.MemTsBroadcasts, st.ClockChanges, det.Log().SizeBytes())

	shown := 0
	for _, r := range det.Races() {
		if shown >= *races {
			fmt.Printf("  ... and %d more\n", det.Stats().RaceReports-shown)
			break
		}
		confirmed := "confirmed by oracle"
		if !ideal.Confirms(r) {
			confirmed = "NOT CONFIRMED (should never happen)"
		}
		fmt.Printf("  %v  [%s]\n", r, confirmed)
		shown++
	}
}
