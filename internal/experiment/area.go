package experiment

import "fmt"

// AreaModel prices the per-line chip-area cost of timestamp storage, the
// arithmetic behind the paper's 19% / 38% / 200% figures (§2.3–2.4).
type AreaModel struct {
	// LineBits is the data capacity of one cache line (512 for 64 bytes).
	LineBits int
	// WordsPerLine is the per-word access-bit count driver (16).
	WordsPerLine int
	// TsBits is the width of one scalar timestamp component (16).
	TsBits int
	// Threads sizes vector timestamps (one component per thread).
	Threads int
	// HistDepth is the number of timestamp slots per line (2).
	HistDepth int
	// FilterBits is the per-line check-filter state (2).
	FilterBits int
}

// DefaultAreaModel matches the paper's configuration.
func DefaultAreaModel() AreaModel {
	return AreaModel{
		LineBits:     512,
		WordsPerLine: 16,
		TsBits:       16,
		Threads:      4,
		HistDepth:    2,
		FilterBits:   2,
	}
}

// ScalarOverhead is CORD's per-line state as a fraction of the data array:
// HistDepth x (scalar timestamp + per-word read bits + per-word write bits)
// plus the filter bits. 19% in the default configuration.
func (m AreaModel) ScalarOverhead() float64 {
	bits := m.HistDepth*(m.TsBits+2*m.WordsPerLine) + m.FilterBits
	return float64(bits) / float64(m.LineBits)
}

// VectorPerLineOverhead is the per-line vector-timestamp variant (Threads
// scalar components per timestamp). 38% for four threads.
func (m AreaModel) VectorPerLineOverhead() float64 {
	bits := m.HistDepth*(m.Threads*m.TsBits+2*m.WordsPerLine) + m.FilterBits
	return float64(bits) / float64(m.LineBits)
}

// VectorPerWordOverhead is the ideal-style per-word vector timestamp cost
// (no access bits needed). 200% for four 16-bit components per word.
func (m AreaModel) VectorPerWordOverhead() float64 {
	bits := m.WordsPerLine * m.Threads * m.TsBits
	return float64(bits) / float64(m.LineBits)
}

// AreaFigure renders the three schemes as a figure.
func AreaFigure() Figure {
	m := DefaultAreaModel()
	f := Figure{
		ID:      "area",
		Title:   "On-chip timestamp state as a fraction of cache data capacity (§2.3-2.4)",
		Columns: []string{"area overhead"},
		Rows: []Row{
			{Label: "per-word 4x16b vector timestamps", Values: []float64{m.VectorPerWordOverhead()}},
			{Label: "per-line 4x16b vector + access bits", Values: []float64{m.VectorPerLineOverhead()}},
			{Label: fmt.Sprintf("CORD scalar (%d ts/line + bits)", m.HistDepth), Values: []float64{m.ScalarOverhead()}},
		},
		Notes: []string{
			"paper: 200%, 38% and 19% respectively; scalar cost is independent of thread count",
		},
	}
	return f
}
