package main

import "testing"

// TestValidateFlags: out-of-domain workload parameters are invocation errors
// (exit 2 + usage), matching cordsim/cordbench.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		scale   int
		d       int
		wantErr bool
	}{
		{"defaults", 1, 16, false},
		{"large scale", 4096, 1, false},
		{"zero scale", 0, 16, true},
		{"negative scale", -2, 16, true},
		{"zero d", 1, 0, true},
		{"negative d", 1, -16, true},
	}
	for _, tc := range cases {
		err := validateFlags(tc.scale, tc.d)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: validateFlags(%d, %d) = %v, wantErr=%v",
				tc.name, tc.scale, tc.d, err, tc.wantErr)
		}
	}
}
