package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"cord/internal/baseline"
	"cord/internal/core"
	"cord/internal/record"
	"cord/internal/sim"
	"cord/internal/trace"
	"cord/internal/workload"
)

// This file implements online race detection on the streaming path
// (PROTOCOL.md §4.7): with detect=online, the session replays the named run
// *while the order log is still arriving* — each released epoch feeds an
// incremental replay engine (sim.ReplayFeed) observed by a CORD detector, so
// races surface mid-stream in progress frames instead of waiting for the
// end-of-stream verification. A duty cycle (duty=0..100) toggles the
// detector at epoch boundaries, trading coverage for cost the way HardRace's
// monitor windows do; the replay itself always follows the full schedule, so
// a partially observed run still completes deterministically.

// OnlineSummary is the "online" block of a detect=online StreamResponse: the
// verdict of the incremental replay and the duty cycle's effective coverage.
// It is a pure function of the streamed bytes and the session parameters —
// chunk timing never changes it — so summaries stay byte-deterministic.
type OnlineSummary struct {
	// Detector names the detector family the session ran ("cord" or
	// "fasttrack", the detector= query parameter).
	Detector string `json:"detector"`
	// Duty is the effective duty percentage the session ran with.
	Duty int `json:"duty"`
	// EpochsTotal counts the epochs the online replay advanced through
	// (with duty=0, the epochs released from the stream — no replay runs).
	EpochsTotal uint64 `json:"epochs_total"`
	// EpochsObserved counts the epochs replayed with detection enabled.
	EpochsObserved uint64 `json:"epochs_observed"`
	// CoveragePct is EpochsObserved/EpochsTotal, rounded to two decimals.
	CoveragePct float64 `json:"coverage_pct"`
	// AccessesObserved counts the memory accesses the detector saw.
	AccessesObserved uint64 `json:"accesses_observed"`
	// RacesSoFar is the total number of races the online detector reported;
	// progress frames carry the same counter as it grows mid-stream.
	RacesSoFar int `json:"races_so_far"`
	// RacyAccesses is the detector's racy-access counter (the same meaning
	// as a DetectorVerdict's).
	RacyAccesses int `json:"racy_accesses"`
	// Completed reports that the replay followed the log to the end of the
	// program. A divergent or hung replay is a verdict, not an error.
	Completed  bool   `json:"completed"`
	Divergence string `json:"divergence,omitempty"`
	// Races lists the online detector's races in detection order, capped at
	// MaxRacesInResponse. Races shipped in progress frames are always a
	// prefix of this list.
	Races []string `json:"races,omitempty"`
}

// progressFrame is one mid-stream status line of an online session: compact
// JSON, one frame per line, emitted at chunk boundaries before the indented
// end-of-stream summary (PROTOCOL.md §4.7). Frames are diagnostics — their
// timing and count depend on chunk arrival and are NOT deterministic; only
// the cumulative counters and the race order are.
type progressFrame struct {
	Frame          string   `json:"frame"` // "progress"
	Schema         int      `json:"schema"`
	Frames         uint64   `json:"frames"`
	Bytes          int64    `json:"bytes"`
	Epochs         uint64   `json:"epochs"`
	EpochsObserved uint64   `json:"epochs_observed"`
	RacesSoFar     int      `json:"races_so_far"`
	NewRaces       []string `json:"new_races,omitempty"`
}

// errorFrame reports a post-header failure of an online session: once a
// progress frame has been written the 200 status is committed, so the error
// travels as the final line of the body instead of an HTTP status.
type errorFrame struct {
	Frame  string `json:"frame"` // "error"
	Schema int    `json:"schema"`
	Code   string `json:"code"`
	Error  string `json:"error"`
}

// onlineDetector is what the duty gate needs from the session's detector:
// the observer feed plus race accounting. Both the CORD detector
// (detector=cord) and the FastTrack baseline (detector=fasttrack) satisfy
// it, so an online session can run either family over the identical epoch
// schedule.
type onlineDetector interface {
	trace.Observer
	Races() []trace.Race
	RaceCount() int
}

// dutyGate wraps the online detector as the replay engine's observer,
// gating OnAccess by the session's duty cycle. The gate flips only at epoch
// boundaries (the engine's OnEpoch callback): epoch idx is observed iff
// idx%100 < duty, so duty=100 observes everything and duty=0 nothing, with
// deterministic coverage in between. Clock maintenance (Migrate, ThreadDone)
// always reaches the detector so its per-thread state stays consistent
// across observation gaps.
//
// Everything except the mu-guarded snapshot fields is touched only by the
// engine goroutine; the stream handler reads progress through snapshots.
type dutyGate struct {
	det  onlineDetector
	duty int

	on       bool   // detection enabled for the current epoch
	accesses uint64 // accesses forwarded to the detector

	mu       sync.Mutex
	total    uint64   // epochs advanced so far
	observed uint64   // epochs replayed with detection on
	races    int      // len(det.Races()) at the last epoch boundary
	racy     int      // det.RaceCount() at the last epoch boundary
	exported int      // races already appended to pending (capped)
	pending  []string // race strings not yet shipped in a progress frame
}

func newDutyGate(req DetectRequest, duty int, detector string) *dutyGate {
	var det onlineDetector
	if detector == "fasttrack" {
		det = baseline.NewFastTrack(baseline.FastTrackConfig{Threads: req.Threads})
	} else {
		det = core.New(core.Config{Threads: req.Threads, Procs: req.Threads, D: req.D})
	}
	return &dutyGate{det: det, duty: duty}
}

// Name implements trace.Observer.
func (g *dutyGate) Name() string { return "online-duty-gate" }

// OnAccess implements trace.Observer: accesses reach the detector only while
// the duty gate is open.
func (g *dutyGate) OnAccess(a trace.Access) trace.Report {
	if !g.on {
		return trace.Report{}
	}
	g.accesses++
	return g.det.OnAccess(a)
}

// Migrate implements trace.Observer; always forwarded (clock maintenance).
func (g *dutyGate) Migrate(thread, proc int, instr uint64) { g.det.Migrate(thread, proc, instr) }

// ThreadDone implements trace.Observer; always forwarded.
func (g *dutyGate) ThreadDone(thread int, totalInstr uint64) { g.det.ThreadDone(thread, totalInstr) }

// Finish implements trace.Observer.
func (g *dutyGate) Finish() { g.det.Finish() }

// onEpoch is the engine's epoch-boundary callback: it settles the previous
// epoch's coverage accounting, snapshots newly found races for the progress
// frames, and decides whether the next epoch is observed.
func (g *dutyGate) onEpoch(idx int) {
	g.mu.Lock()
	if idx > 0 && g.on {
		g.observed++
	}
	g.total = uint64(idx)
	races := g.det.Races()
	for _, r := range races[g.exported:] {
		if g.exported >= MaxRacesInResponse {
			break
		}
		g.pending = append(g.pending, r.String())
		g.exported++
	}
	g.races = len(races)
	g.racy = g.det.RaceCount()
	g.mu.Unlock()
	g.on = idx%100 < g.duty
}

// progressSnap is what a chunk boundary reads from the gate.
type progressSnap struct {
	total, observed uint64
	races           int
	newRaces        []string
}

// snapshot drains the pending race strings and returns the current counters.
func (g *dutyGate) snapshot() progressSnap {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := progressSnap{total: g.total, observed: g.observed, races: g.races, newRaces: g.pending}
	g.pending = nil
	return s
}

// onlineOutcome is the replay engine's terminal state.
type onlineOutcome struct {
	res sim.Result
	err error
}

// onlineSession owns one detect=online session's incremental replay: the
// epoch stream (watermark-ordered release), the feed into the engine, the
// duty-gated detector, and the engine goroutine itself. With duty=0 no
// engine runs at all — the session only counts epochs — so a duty sweep's
// zero point measures pure ingest.
type onlineSession struct {
	duty      int
	detector  string
	workers   int
	maxFrames uint64

	es       *record.EpochStream
	released uint64 // epochs released from the stream (duty=0 accounting)

	gate   *dutyGate
	feed   *sim.ReplayFeed
	cancel chan struct{}
	done   chan onlineOutcome

	batch   []record.Entry
	base    uint64 // absolute frame index of batch[0]
	stopped bool
	outcome *onlineOutcome
}

// startOnline builds the session and, at duty > 0, launches the replay
// engine against the incremental feed. The engine configuration mirrors
// RunReplay: same seed, no jitter (replay follows the log, not the
// scheduler), the recorded run's injection identity re-applied.
func startOnline(opts streamOptions, workers int) *onlineSession {
	o := &onlineSession{
		duty:     opts.duty,
		detector: opts.detector,
		workers:  workers,
		es:       record.NewEpochStream(opts.req.Threads),
	}
	if o.detector == "" {
		o.detector = "cord"
	}
	if opts.duty == 0 {
		return o
	}
	o.gate = newDutyGate(opts.req, opts.duty, o.detector)
	o.feed = sim.NewReplayFeed()
	o.cancel = make(chan struct{})
	o.done = make(chan onlineOutcome, 1)
	app, _ := workload.ByName(opts.req.App)
	cfg := sim.Config{
		Seed:       opts.req.Seed,
		ReplayFeed: o.feed,
		Observers:  []trace.Observer{o.gate},
		OnEpoch:    o.gate.onEpoch,
		Cancel:     o.cancel,
	}
	if opts.injectThread >= 0 {
		cfg.InjectThread = opts.injectThread
		cfg.InjectThreadNth = opts.injectNth
	}
	prog := app.Build(opts.req.Scale, opts.req.Threads)
	go func() {
		res, err := sim.New(cfg, prog).Run()
		o.done <- onlineOutcome{res: res, err: err}
	}()
	return o
}

// collect is the decoder's emit target in online mode: a quota check
// matching sequential ingest byte for byte, then buffering into the chunk
// batch the worker group folds. o.base tracks the session's absolute frame
// index so batched errors name the same entry sequential ingest would.
func (o *onlineSession) collect(e record.Entry) error {
	if o.base+uint64(len(o.batch)) >= o.maxFrames {
		return fmt.Errorf("%w: frame quota (%d frames) exhausted", errStreamQuota, o.maxFrames)
	}
	o.batch = append(o.batch, e)
	return nil
}

// ingestBatch folds the chunk batch into the session state: the per-thread
// shard folds fan out across the bounded worker group (shards are
// write-independent by construction, PROTOCOL.md §3), then the main
// goroutine merges at the chunk barrier — content hash, frame counter, and
// the epoch release into the replay feed, all in stream order so the merged
// state is deterministic. Returns the error the sequential path would have
// produced for the same stream, with ing.frames left at the same count.
func (o *onlineSession) ingestBatch(ing *streamIngest) error {
	batch := o.batch
	if len(batch) == 0 {
		return nil
	}
	idx, err := o.foldShards(ing, batch)
	if err != nil {
		ing.frames = idx // metrics parity: entries before the failure folded
		return err
	}
	for _, e := range batch {
		ing.hashEntry(e)
	}
	ing.frames += uint64(len(batch))
	for _, e := range batch {
		rel, perr := o.es.Push(e)
		if perr != nil {
			// Unreachable: the shard fold enforces the same invariants the
			// epoch stream checks. Surface it as internal damage, not 422.
			return fmt.Errorf("epoch stream disagrees with shard fold: %w", perr)
		}
		o.released += uint64(len(rel))
		if o.feed != nil {
			o.feed.Append(rel...)
		}
	}
	o.batch = batch[:0]
	o.base = ing.frames
	return nil
}

// foldShards runs the per-thread shard folds for one batch, in parallel when
// the batch is big enough to pay for the fan-out. Worker w owns every thread
// t with t%workers == w, so no two workers touch one shard; each worker
// reports the batch index of its first violation and the merge takes the
// smallest — exactly the entry sequential ingest would have rejected.
func (o *onlineSession) foldShards(ing *streamIngest, batch []record.Entry) (uint64, error) {
	w := o.workers
	if w > len(ing.shards) {
		w = len(ing.shards)
	}
	if w <= 1 || len(batch) < 512 {
		for i, e := range batch {
			if err := ing.foldShard(e, o.base+uint64(i)); err != nil {
				return o.base + uint64(i), err
			}
		}
		return 0, nil
	}
	type verdict struct {
		idx int
		err error
	}
	verdicts := make([]verdict, w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			verdicts[k] = verdict{idx: -1}
			for i, e := range batch {
				if int(e.Thread)%w != k && int(e.Thread) < len(ing.shards) {
					continue
				}
				if int(e.Thread) >= len(ing.shards) && i%w != k {
					continue // out-of-range threads: dealt by one worker each
				}
				if err := ing.foldShard(e, o.base+uint64(i)); err != nil {
					verdicts[k] = verdict{idx: i, err: err}
					return
				}
			}
		}(k)
	}
	wg.Wait()
	best := verdict{idx: -1}
	for _, v := range verdicts {
		if v.err != nil && (best.idx < 0 || v.idx < best.idx) {
			best = v
		}
	}
	if best.err != nil {
		return o.base + uint64(best.idx), best.err
	}
	return 0, nil
}

// finish closes the feed after a complete stream and waits for the replay
// verdict, bounded by the session timeout and the client's continued
// presence. Only called once, after every byte has been ingested.
func (o *onlineSession) finish(clientGone <-chan struct{}, timeout time.Duration) (*onlineOutcome, int, string, error) {
	rest := o.es.Flush()
	o.released += uint64(len(rest))
	if o.feed == nil {
		return &onlineOutcome{}, 0, "", nil // duty=0: nothing replayed
	}
	o.feed.Append(rest...)
	o.feed.CloseFeed()
	select {
	case out := <-o.done:
		o.outcome = &out
		return &out, 0, "", nil
	case <-time.After(timeout):
		o.halt()
		return nil, http.StatusGatewayTimeout, codeTimeout,
			fmt.Errorf("online replay exceeded the %v timeout", timeout)
	case <-clientGone:
		o.halt()
		return nil, statusClientGone, "", fmt.Errorf("client disconnected awaiting the online verdict")
	}
}

// halt cancels the engine and joins its goroutine; idempotent, safe on every
// exit path (the handler defers stop, which calls halt unless finish already
// collected the outcome).
func (o *onlineSession) halt() {
	if o.feed == nil || o.stopped {
		return
	}
	o.stopped = true
	close(o.cancel)
	if o.outcome == nil {
		out := <-o.done
		o.outcome = &out
	}
}

// stop is the deferred cleanup: a session that already finished is a no-op;
// an aborted one (ingest error, client gone mid-stream) cancels the engine
// so no goroutine outlives its handler.
func (o *onlineSession) stop() {
	if o.outcome == nil {
		o.halt()
	}
}

// summary renders the deterministic online block from the replay outcome,
// mirroring RunReplay's divergence-as-verdict semantics. A nil error with
// Hung set, or a replay-divergence error, is a verdict; anything else was
// already turned into a transport error by the caller.
func (o *onlineSession) summary(out *onlineOutcome) *OnlineSummary {
	s := &OnlineSummary{Detector: o.detector, Duty: o.duty}
	if o.feed == nil { // duty=0: ingest-only accounting
		s.EpochsTotal = o.released
		s.Completed = true
		return s
	}
	g := o.gate
	s.EpochsTotal = g.total
	s.EpochsObserved = g.observed
	if g.total > 0 {
		s.CoveragePct = math.Round(float64(g.observed)/float64(g.total)*10000) / 100
	}
	s.AccessesObserved = g.accesses
	races := g.det.Races()
	s.RacesSoFar = len(races)
	s.RacyAccesses = g.det.RaceCount()
	for i, r := range races {
		if i >= MaxRacesInResponse {
			break
		}
		s.Races = append(s.Races, r.String())
	}
	switch {
	case out.err != nil:
		s.Divergence = out.err.Error()
	case out.res.Hung:
		s.Divergence = "replayed run could not follow the log (blocked before all epochs ran)"
	default:
		s.Completed = true
	}
	return s
}

// progressEveryBytes paces the no-news progress frames: with no new races to
// report, a frame is emitted at most once per this many ingested bytes.
const progressEveryBytes = 1 << 20

// frameWriter emits the newline-delimited progress/error frames of an online
// session ahead of the indented summary. Writing mid-request requires
// full-duplex HTTP; where the transport cannot interleave (EnableFullDuplex
// fails), frames are suppressed and the session degrades to summary-only.
type frameWriter struct {
	w      http.ResponseWriter
	rc     *http.ResponseController
	duplex bool
	wrote  bool  // a frame reached the wire: the 200 status is committed
	since  int64 // bytes ingested since the last frame
}

func newFrameWriter(w http.ResponseWriter, rc *http.ResponseController) *frameWriter {
	fw := &frameWriter{w: w, rc: rc}
	fw.duplex = rc.EnableFullDuplex() == nil
	return fw
}

// progress emits one chunk-boundary frame when there is something to say:
// new races always flush immediately (that is the point of online
// detection); otherwise frames are paced by progressEveryBytes.
func (fw *frameWriter) progress(o *onlineSession, ing *streamIngest, bytesIn int64, chunk int) {
	if fw == nil || !fw.duplex {
		return
	}
	fw.since += int64(chunk)
	var snap progressSnap
	if o.gate != nil {
		snap = o.gate.snapshot()
	} else {
		snap.total = o.released
	}
	if len(snap.newRaces) == 0 && fw.since < progressEveryBytes {
		return
	}
	fw.emit(progressFrame{
		Frame:          "progress",
		Schema:         SchemaVersion,
		Frames:         ing.frames,
		Bytes:          bytesIn,
		Epochs:         snap.total,
		EpochsObserved: snap.observed,
		RacesSoFar:     snap.races,
		NewRaces:       snap.newRaces,
	})
	fw.since = 0
}

// fail emits the terminal error frame; only meaningful once wrote is set
// (before that, the handler still owns the status line).
func (fw *frameWriter) fail(code string, err error) {
	fw.emit(errorFrame{Frame: "error", Schema: SchemaVersion, Code: code, Error: err.Error()})
}

func (fw *frameWriter) emit(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return // frame structs always marshal
	}
	if !fw.wrote {
		fw.w.Header().Set("Content-Type", "application/json; charset=utf-8")
	}
	fw.w.Write(append(b, '\n'))
	fw.rc.Flush()
	fw.wrote = true
}
