package experiment

import (
	"reflect"
	"testing"
)

// TestFastTrackConfirmedAllApps runs a small injection campaign over every
// Table 1 application and checks the FastTrack baseline's soundness bound:
// its happens-before model never reports a race the Ideal oracle rejects
// (the campaign's FalsePositives counter includes FastTrack reports), and
// per app it never detects more problems than Ideal.
func TestFastTrackConfirmedAllApps(t *testing.T) {
	res, err := RunDetection(Options{Injections: 3, BaseSeed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 12 {
		t.Fatalf("apps = %d, want all 12", len(res.Apps))
	}
	if res.FalsePositives() != 0 {
		t.Fatalf("false positives: %d", res.FalsePositives())
	}
	detected := 0
	for _, a := range res.Apps {
		if a.Problems[cfgFT] > a.Problems[cfgIdeal] {
			t.Fatalf("%s: FastTrack problems %d > Ideal %d",
				a.App, a.Problems[cfgFT], a.Problems[cfgIdeal])
		}
		detected += a.Problems[cfgFT]
	}
	if detected == 0 {
		t.Fatal("FastTrack detected no problems across the whole campaign")
	}
}

// TestFastTrackShardCountInvariantCampaign: FTShards, like Procs, must not
// leak into results — sharding only partitions shadow state by address.
func TestFastTrackShardCountInvariantCampaign(t *testing.T) {
	run := func(shards int) (*DetectionResults, []Table1Row) {
		o := smallOpts()
		o.FTShards = shards
		res, err := RunDetection(o)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := RunTable1(o)
		if err != nil {
			t.Fatal(err)
		}
		return res, rows
	}
	res1, rows1 := run(1)
	res8, rows8 := run(8)
	if !reflect.DeepEqual(res1, res8) {
		t.Fatalf("detection results differ between FTShards=1 and FTShards=8:\n%+v\nvs\n%+v", res1, res8)
	}
	if !reflect.DeepEqual(rows1, rows8) {
		t.Fatalf("Table1 rows differ between FTShards=1 and FTShards=8:\n%+v\nvs\n%+v", rows1, rows8)
	}
}
