package sim

import (
	"sync"

	"cord/internal/record"
)

// ReplayFeed is an appendable epoch source for streaming replay: a producer
// (the service's online-detection ingest) appends epochs as they become
// final, while an engine configured with Config.ReplayFeed consumes them,
// blocking when it runs ahead of the stream. This is what turns the replay
// scheduler from "replay a complete log" into "replay the log while it is
// still arriving".
//
// Epochs must be appended in the global schedule order Log.Schedule (or
// record.EpochStream) produces: nondecreasing Time, ties ordered by Index.
// The engine's equal-time reordering (replayRecoverable) relies on the Time
// sequence being sorted to decide when no concurrent epoch can still arrive.
//
// Append copies the epochs, so producers may reuse their slices (the
// EpochStream release buffer, for instance) immediately. One producer and one
// consuming engine is the supported topology; Append and CloseFeed may be
// called from any goroutine.
type ReplayFeed struct {
	mu     sync.Mutex
	epochs []record.Epoch
	closed bool
	wake   chan struct{}
}

// NewReplayFeed returns an empty, open feed.
func NewReplayFeed() *ReplayFeed {
	return &ReplayFeed{wake: make(chan struct{})}
}

// Append publishes more epochs to the consuming engine.
func (f *ReplayFeed) Append(eps ...record.Epoch) {
	if len(eps) == 0 {
		return
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		panic("sim: ReplayFeed.Append after CloseFeed")
	}
	f.epochs = append(f.epochs, eps...)
	close(f.wake)
	f.wake = make(chan struct{})
	f.mu.Unlock()
}

// CloseFeed declares end of stream: once the engine has consumed every
// appended epoch it proceeds to the end-of-schedule drain instead of waiting.
// CloseFeed is idempotent; Append after CloseFeed is a programming error and
// panics (the closed wake channel is gone, but guard explicitly).
func (f *ReplayFeed) CloseFeed() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		close(f.wake)
		f.wake = make(chan struct{})
	}
	f.mu.Unlock()
}

// Len returns the number of epochs appended so far (diagnostics).
func (f *ReplayFeed) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.epochs)
}

// take returns the epochs published past the consumer's read position, the
// closed flag, and a channel that closes on the next Append or CloseFeed.
// The returned slice is never mutated afterwards (the producer only appends,
// and growth reallocates), so the consumer may read it without the lock.
func (f *ReplayFeed) take(from int) ([]record.Epoch, bool, <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epochs[from:], f.closed, f.wake
}
