// Command cordreplay demonstrates deterministic replay: it records one
// execution under CORD, optionally writes the binary order log to a file,
// replays the execution from the log, and verifies the replay reproduces
// the recording exactly — including executions whose synchronization was
// deliberately broken by fault injection.
//
// Usage:
//
//	cordreplay -app fft -seed 9 -inject 12 -log /tmp/fft.cordlog
package main

import (
	"flag"
	"fmt"
	"os"

	"cord"
	"cord/internal/record"
)

// validateFlags rejects out-of-domain parameters before any simulation work,
// in line with cordsim/cordbench: bad invocations exit 2 with usage instead
// of failing deep inside a run.
func validateFlags(scale, d int) error {
	if scale < 1 {
		return fmt.Errorf("-scale must be at least 1")
	}
	if d < 1 {
		return fmt.Errorf("-d must be at least 1 (the paper's sync-read window is a positive count)")
	}
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		appName = flag.String("app", "fft", "application to record and replay")
		seed    = flag.Uint64("seed", 1, "scheduling seed")
		scale   = flag.Int("scale", 1, "workload scale factor")
		inject  = flag.Uint64("inject", 0, "remove the Nth dynamic sync instance (0 = none)")
		d       = flag.Int("d", 16, "CORD sync-read window D")
		logPath = flag.String("log", "", "write the binary order log here")
	)
	flag.Parse()

	if err := validateFlags(*scale, *d); err != nil {
		fmt.Fprintf(os.Stderr, "cordreplay: %v\n", err)
		flag.Usage()
		return 2
	}

	var app cord.App
	found := false
	for _, a := range cord.Apps() {
		if a.Name == *appName {
			app, found = a, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "cordreplay: unknown application %q\n", *appName)
		return 2
	}

	out, err := cord.RecordAndReplay(app.Build(*scale, 4), cord.ReplayOptions{
		Seed: *seed, Jitter: 7, InjectSkip: *inject, D: *d,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordreplay: %v\n", err)
		return 1
	}

	fmt.Printf("recorded: %d accesses, %d instructions, %d cycles\n",
		out.Recorded.Accesses, out.Recorded.Ops, out.Recorded.Cycles)
	fmt.Printf("order log: %d entries, %d bytes (%.2f bytes/kinstr)\n",
		out.Log.Len(), out.Log.SizeBytes(),
		float64(out.Log.SizeBytes())/float64(out.Recorded.Ops)*1000)

	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cordreplay: %v\n", err)
			return 1
		}
		if err := out.Log.EncodeTo(f); err != nil {
			fmt.Fprintf(os.Stderr, "cordreplay: writing log: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cordreplay: closing log: %v\n", err)
			return 1
		}
		// Round-trip through the binary format as a sanity check.
		rf, err := os.Open(*logPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cordreplay: %v\n", err)
			return 1
		}
		reread, err := record.DecodeFrom(rf)
		rf.Close()
		if err != nil || reread.Len() != out.Log.Len() {
			fmt.Fprintf(os.Stderr, "cordreplay: log round-trip failed: %v\n", err)
			return 1
		}
		fmt.Printf("log written to %s and decoded back (%d entries)\n", *logPath, reread.Len())
	}

	if out.Recorded.Hung {
		fmt.Println("recorded run deadlocked (injection artifact) — nothing to replay")
		return 0
	}
	if out.Match {
		fmt.Println("replay: EXACT — per-thread read values, instruction counts and final memory all match")
	} else {
		fmt.Printf("replay: MISMATCH — %s\n", out.Mismatch)
		return 1
	}
	return 0
}
