# Shared helpers for the fleet scripts (fleet.sh, fleet-smoke.sh,
# fleet-chaos-smoke.sh). POSIX sh; source with `. "$(dirname "$0")/fleet-lib.sh"`.
#
# Contract: the caller sets DIR to its scratch directory and appends every
# background pid to PIDS, then calls fleet_trap_cleanup once. The EXIT/INT/TERM
# trap kills the fleet — FLEET_KILL_SIGNAL chooses how: TERM (default) drains
# workers cleanly, KILL is for smoke tests that are done with them — waits for
# the processes, kills any stragglers spawned from $DIR (supervisor children),
# and removes DIR.

PIDS=""

fleet_cleanup() {
	sig="${FLEET_KILL_SIGNAL:-TERM}"
	for pid in $PIDS; do
		kill -s "$sig" "$pid" 2>/dev/null || true
	done
	for pid in $PIDS; do
		wait "$pid" 2>/dev/null || true
	done
	# Supervisor loops run cordd as children the pid list does not cover.
	if [ -n "${DIR:-}" ]; then
		pkill -9 -f "$DIR/cordd" 2>/dev/null || true
		rm -rf "$DIR"
	fi
}

fleet_trap_cleanup() {
	trap fleet_cleanup EXIT INT TERM
}

# fleet_wait_healthy <base-url> [tries]: poll /healthz every 0.2s.
fleet_wait_healthy() {
	url="$1"
	tries="${2:-50}"
	j=0
	until curl -sf "$url/healthz" >/dev/null 2>&1; do
		j=$((j + 1))
		if [ "$j" -ge "$tries" ]; then
			echo "fleet: worker $url did not become healthy" >&2
			return 1
		fi
		sleep 0.2
	done
}

# fleet_wait_registered <registry-url> <n> [tries]: poll the §7 listing until
# it shows n live workers.
fleet_wait_registered() {
	reg="$1"
	want="$2"
	tries="${3:-50}"
	j=0
	while :; do
		got=$(curl -sf "$reg/v1/fleet/workers" 2>/dev/null | grep -c '"url"' || true)
		if [ "${got:-0}" -ge "$want" ]; then
			return 0
		fi
		j=$((j + 1))
		if [ "$j" -ge "$tries" ]; then
			echo "fleet: registry $reg lists $got of $want workers" >&2
			return 1
		fi
		sleep 0.2
	done
}
