package replay

import (
	"fmt"
	"testing"

	"cord/internal/clock"
	"cord/internal/core"
	"cord/internal/memsys"
	"cord/internal/sim"
	"cord/internal/trace"
	"cord/internal/workload"
)

// orderChecker wraps a CORD detector and verifies the replay-soundness
// invariant directly: for every pair of conflicting accesses, the earlier
// one's epoch time must be strictly smaller than the later one's (equal
// times replay in arbitrary order and would be unsound).
type orderChecker struct {
	det       *core.Detector
	unwrapped []uint64
	last      []clock.Scalar
	hist      map[memsys.Addr][]chkAccess
	violation string
}

type chkAccess struct {
	thread int
	kind   trace.Kind
	time   uint64
	seq    uint64
}

func newOrderChecker(threads, d int) *orderChecker {
	det := core.New(core.Config{Threads: threads, D: d, Record: true})
	oc := &orderChecker{
		det:       det,
		unwrapped: make([]uint64, threads),
		last:      make([]clock.Scalar, threads),
		hist:      make(map[memsys.Addr][]chkAccess),
	}
	for i := range oc.last {
		oc.last[i] = det.Clock(i)
		oc.unwrapped[i] = 1
	}
	return oc
}

func (oc *orderChecker) Name() string { return "order-check" }

func (oc *orderChecker) OnAccess(a trace.Access) trace.Report {
	rep := oc.det.OnAccess(a)
	cur := oc.det.Clock(a.Thread)
	delta := clock.Dist(oc.last[a.Thread], cur)
	if delta < 0 {
		oc.fail(fmt.Sprintf("thread %d clock regressed at seq %d", a.Thread, a.Seq))
		delta = 0
	}
	oc.unwrapped[a.Thread] += uint64(delta)
	oc.last[a.Thread] = cur
	epochTime := oc.unwrapped[a.Thread]
	if a.Class == trace.Sync && a.Kind == trace.Write {
		// The post-sync-write increment happens after the access: the
		// access itself belongs to the pre-increment epoch.
		epochTime--
	}
	for _, p := range oc.hist[a.Addr] {
		if p.thread == a.Thread {
			continue
		}
		if p.kind == trace.Read && a.Kind == trace.Read {
			continue
		}
		if p.time >= epochTime {
			oc.fail(fmt.Sprintf("conflict order violation @%s: T%d %s (seq %d, epoch %d) then T%d %s %s (seq %d, epoch %d)",
				a.Addr, p.thread, p.kind, p.seq, p.time, a.Thread, a.Kind, a.Class, a.Seq, epochTime))
		}
	}
	oc.hist[a.Addr] = append(oc.hist[a.Addr], chkAccess{a.Thread, a.Kind, epochTime, a.Seq})
	return rep
}

func (oc *orderChecker) fail(s string) {
	if oc.violation == "" {
		oc.violation = s
	}
}

func (oc *orderChecker) Migrate(thread, proc int, instr uint64) { oc.det.Migrate(thread, proc, instr) }
func (oc *orderChecker) ThreadDone(thread int, totalInstr uint64) {
	oc.det.ThreadDone(thread, totalInstr)
}
func (oc *orderChecker) Finish() { oc.det.Finish() }

// TestConflictOrderingInvariant checks, on every workload, that CORD's
// recorded logical times strictly order every pair of conflicting accesses —
// the property deterministic replay rests on.
func TestConflictOrderingInvariant(t *testing.T) {
	for _, app := range workload.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= 2; seed++ {
				prog := app.Build(1, 4)
				oc := newOrderChecker(4, 16)
				_, err := sim.New(sim.Config{Seed: seed, Jitter: 7, Observers: []trace.Observer{oc}}, prog).Run()
				if err != nil {
					t.Fatal(err)
				}
				if oc.violation != "" {
					t.Fatalf("seed %d: %s", seed, oc.violation)
				}
			}
		})
	}
}

// TestConflictOrderingUnderInjection checks the same invariant on racy
// (injected) executions — order recording must remain sound precisely when
// the program misbehaves.
func TestConflictOrderingUnderInjection(t *testing.T) {
	for _, name := range []string{"raytrace", "cholesky", "fft", "water-sp", "lu", "volrend"} {
		app, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for inj := uint64(1); inj <= 9; inj += 4 {
			prog := app.Build(1, 4)
			oc := newOrderChecker(4, 16)
			res, err := sim.New(sim.Config{Seed: 5, Jitter: 7, InjectSkip: inj, Observers: []trace.Observer{oc}}, prog).Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Hung {
				continue
			}
			if oc.violation != "" {
				t.Fatalf("%s inj %d: %s", name, inj, oc.violation)
			}
		}
	}
}
