package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// Figure is one reproduced table or figure: rows of labelled values plus
// explanatory notes.
type Figure struct {
	ID      string // e.g. "fig12"
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one labelled series of values.
type Row struct {
	Label  string
	Values []float64
}

// Percent formats v (a ratio) as a percentage cell; NaN renders as "-".
func Percent(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", v*100)
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID), f.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "app")
	for _, c := range f.Columns {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, r := range f.Rows {
		fmt.Fprintf(tw, "%s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(tw, "\t%s", Percent(v))
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ratio divides, yielding NaN for an empty denominator so tables render "-".
func ratio(num, den int) float64 {
	if den == 0 {
		return math.NaN()
	}
	return float64(num) / float64(den)
}
