package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"text/tabwriter"

	"cord/internal/workload"
)

func smallOpts() Options {
	apps := []workload.App{}
	for _, name := range []string{"raytrace", "lu", "water-sp"} {
		a, _ := workload.ByName(name)
		apps = append(apps, a)
	}
	return Options{Injections: 6, Apps: apps, BaseSeed: 77}
}

func TestDetectionCampaignShape(t *testing.T) {
	res, err := RunDetection(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 3 {
		t.Fatalf("apps = %d", len(res.Apps))
	}
	for _, a := range res.Apps {
		if a.Injected+a.Hung == 0 {
			t.Fatalf("%s: no injections landed", a.App)
		}
		if a.Manifested > a.Injected {
			t.Fatalf("%s: manifested > injected", a.App)
		}
		// Detection dominance: Ideal >= every bounded config per app.
		for _, cfg := range res.Configs {
			if a.Problems[cfg] > a.Problems[cfgIdeal] {
				t.Fatalf("%s: %s detected more problems than Ideal", a.App, cfg)
			}
		}
		// Manifested is by definition Ideal's problem count.
		if a.Problems[cfgIdeal] != a.Manifested {
			t.Fatalf("%s: ideal problems %d != manifested %d", a.App, a.Problems[cfgIdeal], a.Manifested)
		}
	}
	if res.FalsePositives() != 0 {
		t.Fatalf("false positives: %d", res.FalsePositives())
	}
}

func TestDSweepMonotonicity(t *testing.T) {
	// Detection never decreases as D grows: the D window only widens the
	// reportable band (aggregate counts, where statistics are stable).
	res, err := RunDetection(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	total := func(cfg string) int {
		n := 0
		for _, a := range res.Apps {
			n += a.Problems[cfg]
		}
		return n
	}
	d1, d4, d16 := total(cfgD1), total(cfgD4), total(cfgD16)
	if d4 < d1 || d16 < d4 {
		t.Fatalf("D sweep not monotone: %d, %d, %d", d1, d4, d16)
	}
}

func TestFigureRendering(t *testing.T) {
	f := Figure{
		ID: "figX", Title: "test", Columns: []string{"a", "b"},
		Rows:  []Row{{Label: "app", Values: []float64{0.5, math.NaN()}}},
		Notes: []string{"a note"},
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FIGX", "50.0%", "-", "a note", "app"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestPercentAndRatio(t *testing.T) {
	if Percent(0.191) != "19.1%" {
		t.Fatalf("Percent: %s", Percent(0.191))
	}
	if Percent(math.NaN()) != "-" || Percent(math.Inf(1)) != "-" {
		t.Fatal("Percent special values")
	}
	if !math.IsNaN(ratio(1, 0)) || ratio(1, 2) != 0.5 {
		t.Fatal("ratio")
	}
}

func TestAreaFigureValues(t *testing.T) {
	f := AreaFigure()
	if len(f.Rows) != 3 {
		t.Fatal("area figure rows")
	}
	if math.Abs(f.Rows[0].Values[0]-2.0) > 0.001 {
		t.Fatalf("per-word overhead %v", f.Rows[0].Values[0])
	}
	if math.Abs(f.Rows[2].Values[0]-0.1914) > 0.001 {
		t.Fatalf("scalar overhead %v", f.Rows[2].Values[0])
	}
	// The scalar scheme's cost is independent of thread count; the vector
	// scheme's grows linearly (§2.4's scaling argument).
	m := DefaultAreaModel()
	m16 := m
	m16.Threads = 16
	if m16.ScalarOverhead() != m.ScalarOverhead() {
		t.Fatal("scalar overhead depends on threads")
	}
	if m16.VectorPerLineOverhead() <= m.VectorPerLineOverhead()*2 {
		t.Fatal("vector overhead did not grow with threads")
	}
}

func TestOverheadRows(t *testing.T) {
	o := smallOpts()
	o.Scale = 1
	rows, fig, err := RunOverhead(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(fig.Rows) != 4 { // 3 apps + average
		t.Fatalf("rows %d figRows %d", len(rows), len(fig.Rows))
	}
	for _, r := range rows {
		if r.BaselineCycles == 0 || r.CordCycles == 0 {
			t.Fatalf("%s: zero cycles", r.App)
		}
		if r.Relative < 0.95 || r.Relative > 1.5 {
			t.Fatalf("%s: implausible overhead %.3f", r.App, r.Relative)
		}
	}
}

func TestReplayCheckTable(t *testing.T) {
	rows, err := RunReplayCheck(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Match {
			t.Fatalf("%s: %s", r.App, r.Mismatch)
		}
		if r.LogBytes >= 1<<20 {
			t.Fatalf("%s: log %d bytes", r.App, r.LogBytes)
		}
	}
	var buf bytes.Buffer
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	RenderReplay(rows, tw)
	tw.Flush()
	if !strings.Contains(buf.String(), "exact") {
		t.Fatal("render missing status")
	}
}

func TestTable1(t *testing.T) {
	rows, err := RunTable1(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	RenderTable1(rows, tw)
	tw.Flush()
	for _, r := range rows {
		if !strings.Contains(buf.String(), r.App) {
			t.Fatalf("table missing %s", r.App)
		}
	}
}
