package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cord/internal/experiment"
)

// getJSON is postJSON's GET sibling.
func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, b
}

func listWorkers(t *testing.T, baseURL string) FleetWorkersResponse {
	t.Helper()
	resp, b := getJSON(t, baseURL+"/v1/fleet/workers")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workers: status %d, body %s", resp.StatusCode, b)
	}
	var out FleetWorkersResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFleetRegisterAndWorkers: registration, heartbeat refresh, and TTL
// expiry under a frozen, hand-advanced clock — expiry is lazy (prune on
// read), so the clock fully determines every listing.
func TestFleetRegisterAndWorkers(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownOrFail(t, s)
	clock := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s.now = func() time.Time { return clock }
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Register out of URL order; the listing must sort.
	resp, b := postJSON(t, ts.URL+"/v1/fleet/register",
		FleetRegisterRequest{URL: "http://w2:8080", Workers: 4, TTLSeconds: 30})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register w2: status %d, body %s", resp.StatusCode, b)
	}
	var reg FleetRegisterResponse
	if err := json.Unmarshal(b, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.TTLSeconds != 30 || reg.LiveWorkers != 1 || reg.URL != "http://w2:8080" {
		t.Fatalf("register w2 response: %+v", reg)
	}
	if resp, b := postJSON(t, ts.URL+"/v1/fleet/register",
		FleetRegisterRequest{URL: "http://w1:8080", Workers: 2}); resp.StatusCode != http.StatusOK {
		t.Fatalf("register w1: status %d, body %s", resp.StatusCode, b)
	}

	got := listWorkers(t, ts.URL)
	want := []FleetWorker{
		{URL: "http://w1:8080", Workers: 2, ExpiresInSeconds: defaultFleetTTLSeconds},
		{URL: "http://w2:8080", Workers: 4, ExpiresInSeconds: 30},
	}
	if len(got.Workers) != 2 || got.Workers[0] != want[0] || got.Workers[1] != want[1] {
		t.Fatalf("listing %+v, want %+v", got.Workers, want)
	}

	// A heartbeat 10s in refreshes w1's deadline and updates its pool size.
	clock = clock.Add(10 * time.Second)
	resp, b = postJSON(t, ts.URL+"/v1/fleet/register",
		FleetRegisterRequest{URL: "http://w1:8080", Workers: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat w1: status %d, body %s", resp.StatusCode, b)
	}
	got = listWorkers(t, ts.URL)
	if len(got.Workers) != 2 || got.Workers[0].ExpiresInSeconds != defaultFleetTTLSeconds || got.Workers[0].Workers != 8 {
		t.Fatalf("after heartbeat: %+v", got.Workers)
	}
	if got.Workers[1].ExpiresInSeconds != 20 {
		t.Fatalf("w2 expires in %d, want 20", got.Workers[1].ExpiresInSeconds)
	}

	// 16 more seconds: w1's refreshed 15s TTL lapses, w2's 30s survives.
	clock = clock.Add(16 * time.Second)
	got = listWorkers(t, ts.URL)
	if len(got.Workers) != 1 || got.Workers[0].URL != "http://w2:8080" || got.Workers[0].ExpiresInSeconds != 4 {
		t.Fatalf("after expiry: %+v", got.Workers)
	}

	// A re-register after expiry is a fresh registration, not a heartbeat.
	if resp, b := postJSON(t, ts.URL+"/v1/fleet/register",
		FleetRegisterRequest{URL: "http://w1:8080", Workers: 2}); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register w1: status %d, body %s", resp.StatusCode, b)
	}
	m := s.Metrics()
	if m.Fleet.WorkersRegistered != 3 || m.Fleet.HeartbeatsReceived != 1 || m.Fleet.WorkersExpired != 1 {
		t.Fatalf("fleet counters: %+v", m.Fleet)
	}
	if m.Fleet.LiveWorkers != 2 {
		t.Fatalf("live workers gauge %d, want 2", m.Fleet.LiveWorkers)
	}
}

// TestFleetRegisterRejects: malformed registrations are 400 before touching
// the registry, and unknown fields fail strict decoding like every endpoint.
func TestFleetRegisterRejects(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownOrFail(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, tc := range []struct {
		name string
		req  FleetRegisterRequest
	}{
		{"empty url", FleetRegisterRequest{}},
		{"relative url", FleetRegisterRequest{URL: "w1:8080"}},
		{"non-http scheme", FleetRegisterRequest{URL: "ftp://w1:8080"}},
		{"hostless url", FleetRegisterRequest{URL: "http://"}},
		{"ttl over cap", FleetRegisterRequest{URL: "http://w1:8080", TTLSeconds: maxFleetTTLSeconds + 1}},
		{"negative ttl", FleetRegisterRequest{URL: "http://w1:8080", TTLSeconds: -1}},
		{"negative workers", FleetRegisterRequest{URL: "http://w1:8080", Workers: -1}},
	} {
		resp, b := postJSON(t, ts.URL+"/v1/fleet/register", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, b)
		} else if e := decodeErrorBody(t, b); e.Code != "bad_request" {
			t.Errorf("%s: code %q, want bad_request", tc.name, e.Code)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/fleet/register", "application/json",
		strings.NewReader(`{"url":"http://w1:8080","typo_field":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, body %s", resp.StatusCode, body)
	}
	if n := listWorkers(t, ts.URL); len(n.Workers) != 0 {
		t.Fatalf("rejected registrations leaked into the registry: %+v", n.Workers)
	}
}

// TestFleetConcurrentHeartbeats hammers the registry from many goroutines —
// registrations, heartbeats, listings, and metric snapshots at once — so the
// race detector covers the paths the acceptance criteria name.
func TestFleetConcurrentHeartbeats(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownOrFail(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	const workers, beats = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			url := "http://w" + string(rune('a'+w)) + ":8080"
			for i := 0; i < beats; i++ {
				resp, b := postJSON(t, ts.URL+"/v1/fleet/register", FleetRegisterRequest{URL: url, Workers: w})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("register %s: status %d, body %s", url, resp.StatusCode, b)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < beats; i++ {
				listWorkers(t, ts.URL)
				s.Metrics()
			}
		}()
	}
	wg.Wait()

	got := listWorkers(t, ts.URL)
	if len(got.Workers) != workers {
		t.Fatalf("%d live workers, want %d", len(got.Workers), workers)
	}
	m := s.Metrics()
	if m.Fleet.WorkersRegistered != workers || m.Fleet.HeartbeatsReceived != workers*(beats-1) {
		t.Fatalf("fleet counters: %+v", m.Fleet)
	}
}

// TestCampaignShardOrigin: a steal or requeue origin is counted in the fleet
// metrics, is excluded from the shard content hash (so a re-send under a
// different origin is idempotent, not a 409), and anything else is rejected.
func TestCampaignShardOrigin(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer shutdownOrFail(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	meta := campaignTestMeta()
	req := CampaignShardRequest{
		Campaign:    "orig",
		ShardID:     "s0",
		Fingerprint: campaignFingerprint(t, meta),
		Options:     meta,
		Ranges:      []experiment.ShardRange{{App: "fft", Lo: 0, Hi: 1}},
		Origin:      "steal",
	}
	resp, first := postJSON(t, ts.URL+"/v1/campaign/shard", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stolen shard: status %d, body %s", resp.StatusCode, first)
	}

	// Same shard, now re-sent as a requeue: the origin must not change the
	// content hash, so this is an idempotent byte-identical re-execution.
	req.Origin = "requeue"
	resp, again := postJSON(t, ts.URL+"/v1/campaign/shard", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("requeued re-send: status %d, body %s", resp.StatusCode, again)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("origin changed the response bytes of an identical shard")
	}
	m := s.Metrics()
	if m.Fleet.ShardsStolen != 1 || m.Fleet.ShardsRequeued != 1 {
		t.Fatalf("fleet shard counters: %+v", m.Fleet)
	}

	req.Origin = "bogus"
	resp, b := postJSON(t, ts.URL+"/v1/campaign/shard", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus origin: status %d, body %s", resp.StatusCode, b)
	}
	if e := decodeErrorBody(t, b); e.Code != "bad_request" {
		t.Fatalf("bogus origin: code %q, want bad_request", e.Code)
	}
}

// TestShardRegistryEvictionIdempotent: the conflict registry is bounded and
// best-effort — once an old shard id has been evicted, re-sending the
// identical shard must re-register and re-execute idempotently (200 with the
// same bytes), never 409: determinism, not the registry, is the correctness
// mechanism.
func TestShardRegistryEvictionIdempotent(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer shutdownOrFail(t, s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	meta := campaignTestMeta()
	req := CampaignShardRequest{
		Campaign:    "evict",
		ShardID:     "s0",
		Fingerprint: campaignFingerprint(t, meta),
		Options:     meta,
		Ranges:      []experiment.ShardRange{{App: "fft", Lo: 0, Hi: 2}},
	}
	resp, first := postJSON(t, ts.URL+"/v1/campaign/shard", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first send: status %d, body %s", resp.StatusCode, first)
	}

	// Evict the entry the way a full registry would (the eviction victim is
	// an arbitrary map entry, so the test performs the deletion directly).
	s.shardMu.Lock()
	if _, ok := s.shards[shardKey{"evict", "s0"}]; !ok {
		s.shardMu.Unlock()
		t.Fatal("shard never registered")
	}
	delete(s.shards, shardKey{"evict", "s0"})
	s.shardMu.Unlock()

	resp, again := postJSON(t, ts.URL+"/v1/campaign/shard", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-send after eviction: status %d, want 200 (body %s)", resp.StatusCode, again)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("re-execution after eviction returned different bytes")
	}
}

// TestProgressHandler: the adapter stamps the schema, sorts workers, and
// rejects non-GET methods — so every coordinator serving progress agrees on
// bytes for equal states.
func TestProgressHandler(t *testing.T) {
	snapshot := func() CampaignProgress {
		return CampaignProgress{
			Campaign:    "fig12",
			Fingerprint: "deadbeefdeadbeef",
			CellsDone:   3,
			CellsTotal:  8,
			Workers: []ProgressWorker{
				{URL: "http://w2:8080", Health: WorkerLive, ShardsDone: 2, LatencyEwmaMs: 80},
				{URL: "http://w1:8080", Health: WorkerSuspect, ShardsQueued: 1, LatencyEwmaMs: 120.5},
			},
		}
	}
	ts := httptest.NewServer(ProgressHandler(snapshot))
	defer ts.Close()

	resp, b := getJSON(t, ts.URL+"/v1/campaign/progress")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress: status %d, body %s", resp.StatusCode, b)
	}
	var p CampaignProgress
	if err := json.Unmarshal(b, &p); err != nil {
		t.Fatal(err)
	}
	if p.Schema != SchemaVersion {
		t.Fatalf("schema %d, want %d", p.Schema, SchemaVersion)
	}
	if len(p.Workers) != 2 || p.Workers[0].URL != "http://w1:8080" || p.Workers[1].URL != "http://w2:8080" {
		t.Fatalf("workers not sorted by URL: %+v", p.Workers)
	}

	post, err := http.Post(ts.URL+"/v1/campaign/progress", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST progress: status %d, want 405", post.StatusCode)
	}
}
