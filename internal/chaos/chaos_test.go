package chaos

import (
	"errors"
	"fmt"
	"testing"
)

func TestParse(t *testing.T) {
	c, err := Parse("run-fail=0.2, journal-fail=0.5,crash-after=25,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if c.runFail != 0.2 || c.journalFail != 0.5 || c.crashAfter != 25 || c.seed != 7 {
		t.Fatalf("parsed %+v", c)
	}
	if !c.Active() {
		t.Fatal("armed chaos reports inactive")
	}

	if c, err := Parse(""); c != nil || err != nil {
		t.Fatalf("empty spec = %v, %v; want nil, nil", c, err)
	}
	if c, err := Parse("  "); c != nil || err != nil {
		t.Fatalf("blank spec = %v, %v; want nil, nil", c, err)
	}

	for _, bad := range []string{
		"run-fail", "run-fail=2", "run-fail=-0.1", "run-fail=x",
		"journal-fail=1.5", "crash-after=0", "crash-after=-3", "crash-after=x",
		"seed=-1", "seed=x", "frobnicate=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", bad)
		}
	}
}

// TestNilChaosInjectsNothing: the production path threads a nil *Chaos
// through unconditionally; every method must be a safe no-op.
func TestNilChaosInjectsNothing(t *testing.T) {
	var c *Chaos
	if err := c.RunFault("k", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.JournalFault(); err != nil {
		t.Fatal(err)
	}
	c.RunCompleted()
	if c.Active() {
		t.Fatal("nil chaos reports active")
	}
	if c.String() != "chaos: off" {
		t.Fatalf("String = %q", c.String())
	}
}

// TestRunFaultDeterministicAndBounded: victim selection is a pure function
// of (seed, key); every victim recovers within MaxRunFailures+1 attempts; the
// victim fraction tracks the configured probability.
func TestRunFaultDeterministicAndBounded(t *testing.T) {
	spec := "run-fail=0.3,seed=9"
	a, _ := Parse(spec)
	b, _ := Parse(spec)
	const keys = 1000
	victims := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("detect/%d", i)
		errA, errB := a.RunFault(key, 1), b.RunFault(key, 1)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("key %s: two chaoses with one spec disagree", key)
		}
		if errA == nil {
			continue
		}
		victims++
		if !errors.Is(errA, ErrInjected) {
			t.Fatalf("injected error %v does not wrap ErrInjected", errA)
		}
		var tr interface{ Transient() bool }
		if !errors.As(errA, &tr) || !tr.Transient() {
			t.Fatalf("injected run fault %v is not marked transient", errA)
		}
		// The victim must succeed within MaxRunFailures more attempts.
		recovered := false
		for attempt := 2; attempt <= MaxRunFailures+1; attempt++ {
			if a.RunFault(key, attempt) == nil {
				recovered = true
				break
			}
		}
		if !recovered {
			t.Fatalf("key %s: still failing after %d attempts", key, MaxRunFailures+1)
		}
	}
	if victims < keys/10 || victims > keys/2 {
		t.Fatalf("%d of %d keys were victims; want roughly 30%%", victims, keys)
	}
}

// TestJournalFaultRate: the append-failure stream is deterministic and
// roughly honors the probability.
func TestJournalFaultRate(t *testing.T) {
	a, _ := Parse("journal-fail=0.5,seed=3")
	b, _ := Parse("journal-fail=0.5,seed=3")
	failed := 0
	for i := 0; i < 400; i++ {
		errA, errB := a.JournalFault(), b.JournalFault()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("append %d: decision streams diverge", i)
		}
		if errA != nil {
			failed++
			if !errors.Is(errA, ErrInjected) {
				t.Fatalf("journal fault %v does not wrap ErrInjected", errA)
			}
		}
	}
	if failed < 100 || failed > 300 {
		t.Fatalf("%d of 400 appends failed; want roughly half", failed)
	}
}

// TestCrashAfter: the K-th completion calls the exit hook exactly once, with
// the designated exit code.
func TestCrashAfter(t *testing.T) {
	c, _ := Parse("crash-after=3")
	exits := []int{}
	c.exit = func(code int) { exits = append(exits, code) }
	c.RunCompleted()
	c.RunCompleted()
	if len(exits) != 0 {
		t.Fatalf("crashed before the threshold: %v", exits)
	}
	c.RunCompleted()
	if len(exits) != 1 || exits[0] != CrashExitCode {
		t.Fatalf("exits = %v, want one exit with code %d", exits, CrashExitCode)
	}
}

func TestString(t *testing.T) {
	c, _ := Parse("run-fail=0.2,crash-after=5")
	want := "chaos: run-fail=0.2 crash-after=5 seed=1"
	if got := c.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// TestParseWorkerKill: the fleet knobs parse, report active, and land in
// String; bad values are rejected like every other knob.
func TestParseWorkerKill(t *testing.T) {
	c, err := Parse("worker-kill=0.25,worker-restart-delay=750ms,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if c.workerKill != 0.25 || c.restartDelay.String() != "750ms" || c.seed != 9 {
		t.Fatalf("parsed %+v", c)
	}
	if !c.Active() {
		t.Fatal("armed worker-kill reports inactive")
	}
	if want := "chaos: worker-kill=0.25 worker-restart-delay=750ms seed=9"; c.String() != want {
		t.Fatalf("String = %q, want %q", c.String(), want)
	}
	if c.RestartDelay().String() != "750ms" {
		t.Fatalf("RestartDelay = %v", c.RestartDelay())
	}

	if c, _ := Parse("worker-kill=0.5"); c.RestartDelay().String() != "1s" {
		t.Fatalf("default RestartDelay = %v, want 1s", c.RestartDelay())
	}
	var nilC *Chaos
	nilC.ShardCompleted() // must be a safe no-op
	if nilC.RestartDelay() != 0 {
		t.Fatal("nil RestartDelay != 0")
	}

	for _, bad := range []string{
		"worker-kill=1.5", "worker-kill=-0.1", "worker-kill=x", "worker-kill",
		"worker-restart-delay=0", "worker-restart-delay=-1s", "worker-restart-delay=x",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", bad)
		}
	}
}

// TestShardCompletedKillSchedule: the kill decision stream is a pure function
// of (seed, completion index) — two instances with the same spec kill after
// identical shard counts, a different seed picks a different schedule, and
// the observed kill rate tracks the probability.
func TestShardCompletedKillSchedule(t *testing.T) {
	schedule := func(spec string, n int) []int {
		c, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		var kills []int
		c.exit = func(int) { kills = append(kills, int(c.shardN)-1) }
		for i := 0; i < n; i++ {
			c.ShardCompleted()
		}
		return kills
	}
	a := schedule("worker-kill=0.3,seed=4", 200)
	b := schedule("worker-kill=0.3,seed=4", 200)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same spec, different kill schedules: %v vs %v", a, b)
	}
	if len(a) < 30 || len(a) > 90 {
		t.Fatalf("%d of 200 completions drew a kill at P=0.3; want roughly 60", len(a))
	}
	other := schedule("worker-kill=0.3,seed=5", 200)
	if fmt.Sprint(a) == fmt.Sprint(other) {
		t.Fatal("seed does not vary the kill schedule")
	}
	if none := schedule("run-fail=0.5", 200); len(none) != 0 {
		t.Fatalf("worker-kill unarmed but %d kills fired", len(none))
	}
}
