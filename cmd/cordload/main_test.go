package main

import (
	"testing"
	"time"
)

// TestValidateFlags: load parameters must be rejected before the sweep
// starts hammering a server with nonsense.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		scale   int
		threads int
		d       int
		wantErr bool
	}{
		{"defaults", 32, 1, 4, 16, false},
		{"minimal", 1, 1, 1, 1, false},
		{"zero n", 0, 1, 4, 16, true},
		{"negative n", -5, 1, 4, 16, true},
		{"zero scale", 32, 0, 4, 16, true},
		{"zero threads", 32, 1, 0, 16, true},
		{"zero d", 32, 1, 4, 0, true},
	}
	for _, tc := range cases {
		err := validateFlags(tc.n, tc.scale, tc.threads, tc.d)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: validateFlags = %v, wantErr=%v", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseSweep(t *testing.T) {
	got, err := parseSweep("1, 2,8")
	if err != nil {
		t.Fatalf("parseSweep: %v", err)
	}
	want := []int{1, 2, 8}
	if len(got) != len(want) {
		t.Fatalf("parseSweep = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseSweep = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "  ", "0", "1,x", "1,,2", "-4"} {
		if _, err := parseSweep(bad); err == nil {
			t.Errorf("parseSweep(%q): expected error", bad)
		}
	}
}

func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.95); q != 0 {
		t.Fatalf("quantile(nil) = %v, want 0", q)
	}
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(sorted, 1.0); q != 10 {
		t.Fatalf("quantile(max) = %v, want 10", q)
	}
	if q := quantile(sorted, 0.0); q != 1 {
		t.Fatalf("quantile(min) = %v, want 1", q)
	}
}
