module cord

go 1.22
