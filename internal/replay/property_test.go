package replay

import (
	"testing"

	"cord/internal/baseline"
	"cord/internal/core"
	"cord/internal/progen"
	"cord/internal/sim"
	"cord/internal/trace"
)

// TestPropertyRaceFreeSilence: random properly-synchronized programs produce
// zero reports from every detector configuration.
func TestPropertyRaceFreeSilence(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		p := progen.New(seed, progen.DefaultConfig())
		ideal := baseline.NewIdeal(4)
		vec := baseline.NewVecCache(baseline.VecConfig{Threads: 4, Bound: baseline.BoundL1})
		cords := []*core.Detector{
			core.New(core.Config{Threads: 4, D: 1}),
			core.New(core.Config{Threads: 4, D: 16}),
			core.New(core.Config{Threads: 4, D: 256}),
		}
		obs := []trace.Observer{ideal, vec}
		for _, d := range cords {
			obs = append(obs, d)
		}
		res, err := sim.New(sim.Config{Seed: seed + 1, Jitter: 7, Observers: obs}, p.Prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Hung {
			t.Fatalf("seed %d hung", seed)
		}
		if n := ideal.RaceCount(); n != 0 {
			t.Fatalf("seed %d: oracle found %d races in a race-free program (first %v)",
				seed, n, ideal.Races()[0])
		}
		if vec.RaceCount() != 0 {
			t.Fatalf("seed %d: vector baseline reported on a race-free program", seed)
		}
		for _, d := range cords {
			if d.RaceCount() != 0 {
				t.Fatalf("seed %d: %s reported on a race-free program", seed, d.Name())
			}
		}
	}
}

// TestPropertyInjectedNoFalsePositives: with one randomly chosen sync
// instance removed, every CORD (and vector) report must be confirmed by the
// oracle.
func TestPropertyInjectedNoFalsePositives(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		p := progen.New(seed, progen.DefaultConfig())
		tid := int(seed) % 4
		nth := p.FirstPhaseSync[tid]
		if nth == 0 {
			continue
		}
		ideal := baseline.NewIdeal(4)
		vec := baseline.NewVecCache(baseline.VecConfig{Threads: 4, Bound: baseline.BoundL2})
		det := core.New(core.Config{Threads: 4, D: 16})
		det256 := core.New(core.Config{Threads: 4, D: 256})
		res, err := sim.New(sim.Config{
			Seed: seed*13 + 5, Jitter: 7,
			InjectThread: tid, InjectThreadNth: uint64(1 + int(seed)%nth),
			Observers: []trace.Observer{ideal, vec, det, det256},
		}, p.Prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Hung {
			continue
		}
		for _, r := range det.Races() {
			if !ideal.Confirms(r) {
				t.Fatalf("seed %d: CORD false positive %v", seed, r)
			}
		}
		for _, r := range det256.Races() {
			if !ideal.Confirms(r) {
				t.Fatalf("seed %d: CORD(256) false positive %v", seed, r)
			}
		}
		for _, r := range vec.Races() {
			if !ideal.Confirms(r) {
				t.Fatalf("seed %d: vector false positive %v", seed, r)
			}
		}
	}
}

// TestPropertyReplayRoundTrip: record-then-replay reproduces random programs
// exactly, clean and injected.
func TestPropertyReplayRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		p := progen.New(seed, progen.DefaultConfig())
		inject := uint64(0)
		if seed%2 == 1 {
			inject = seed % 11
		}
		out, err := RecordAndReplay(p.Prog, Options{Seed: seed + 3, Jitter: 7, InjectSkip: inject})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Recorded.Hung {
			continue
		}
		if !out.Match {
			t.Fatalf("seed %d (inject %d): replay mismatch: %s", seed, inject, out.Mismatch)
		}
	}
}

// TestPropertyConflictOrdering: the replay-soundness invariant holds on
// random programs with injections.
func TestPropertyConflictOrdering(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		p := progen.New(seed+500, progen.DefaultConfig())
		oc := newOrderChecker(4, 16)
		res, err := sim.New(sim.Config{
			Seed: seed, Jitter: 7, InjectSkip: seed % 9,
			Observers: []trace.Observer{oc},
		}, p.Prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Hung {
			continue
		}
		if oc.violation != "" {
			t.Fatalf("seed %d: %s", seed, oc.violation)
		}
	}
}

// TestPropertyEightThreads: everything holds beyond the default four threads
// (CORD's scalar state is thread-count independent — the paper's scaling
// argument).
func TestPropertyEightThreads(t *testing.T) {
	cfg := progen.DefaultConfig()
	cfg.Threads = 8
	for seed := uint64(0); seed < 6; seed++ {
		p := progen.New(seed+900, cfg)
		ideal := baseline.NewIdeal(8)
		det := core.New(core.Config{Threads: 8, Procs: 8, D: 16, Record: true})
		res, err := sim.New(sim.Config{
			Seed: seed, Jitter: 7, Procs: 8,
			Observers: []trace.Observer{ideal, det},
		}, p.Prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Hung {
			t.Fatalf("seed %d hung", seed)
		}
		if ideal.RaceCount() != 0 || det.RaceCount() != 0 {
			t.Fatalf("seed %d: reports on race-free 8-thread program", seed)
		}
		out, err := RecordAndReplay(p.Prog, Options{Seed: seed, Jitter: 7, Procs: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Match {
			t.Fatalf("seed %d: 8-thread replay mismatch: %s", seed, out.Mismatch)
		}
	}
}
