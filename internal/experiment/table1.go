package experiment

import (
	"fmt"
	"text/tabwriter"

	"cord/internal/baseline"
	"cord/internal/sim"
	"cord/internal/trace"
	"cord/internal/workload"
)

// Table1Row characterizes one application at the campaign's scale — the
// reproduction's analogue of the paper's Table 1 input-set listing. The json
// tags are the stable wire encoding used by exported benchmark artifacts.
type Table1Row struct {
	App           string `json:"app"`
	PaperInput    string `json:"paper_input"`
	Accesses      uint64 `json:"accesses"`
	Instructions  uint64 `json:"instructions"`
	SyncInstances uint64 `json:"sync_instances"`
	Footprint     int    `json:"footprint"` // distinct non-zero words touched
	// FastTrackWords is the FastTrack baseline's live shadow-metadata
	// footprint at the end of the sizing run, in machine words (two epochs
	// per touched data word, a vector clock per sync variable, plus any
	// read vectors still inflated). Shard-count independent.
	FastTrackWords int `json:"fasttrack_words"`
}

// Table1Figure is the numeric view of the catalogue, the representation
// artifact diffing compares cell-by-cell.
func Table1Figure(rows []Table1Row) Figure {
	f := Figure{
		ID:      "table1",
		Title:   "Application catalogue at this scale (Table 1)",
		Columns: []string{"accesses", "instructions", "sync instances", "words touched", "fasttrack words"},
	}
	for _, r := range rows {
		f.Rows = append(f.Rows, Row{Label: r.App, Values: []float64{
			float64(r.Accesses), float64(r.Instructions), float64(r.SyncInstances),
			float64(r.Footprint), float64(r.FastTrackWords),
		}})
	}
	return f
}

// RunTable1 sizes every application with one plain run. The per-app runs
// are independent and fan out across o.Procs workers; rows come back in
// Apps order regardless of worker count. With Options.Checkpoint set,
// journaled rows are loaded instead of re-simulated.
func RunTable1(o Options) ([]Table1Row, error) {
	o = o.withDefaults()
	rows := make([]Table1Row, len(o.Apps))
	if err := o.forEach(len(o.Apps), func(i int) error {
		return o.journaledRun("table1", i, 0, &rows[i], func() error {
			app := o.Apps[i]
			ft := baseline.NewFastTrack(baseline.FastTrackConfig{Threads: o.Threads, Shards: o.FTShards})
			res, err := o.runSim("sizing", app, o.Threads, sim.Config{
				Seed: o.BaseSeed, Observers: []trace.Observer{ft},
			})
			if err != nil {
				return err
			}
			rows[i] = Table1Row{
				App:            app.Name,
				PaperInput:     app.Input,
				Accesses:       res.Accesses,
				Instructions:   res.Ops,
				SyncInstances:  res.SyncInstances,
				Footprint:      res.Mem.Footprint(),
				FastTrackWords: ft.MetadataWords(),
			}
			return nil
		})
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable1 writes the catalogue.
func RenderTable1(rows []Table1Row, w *tabwriter.Writer) {
	fmt.Fprintln(w, "app\tpaper input\taccesses\tinstructions\tsync instances\twords touched\tfasttrack words")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
			r.App, r.PaperInput, r.Accesses, r.Instructions, r.SyncInstances, r.Footprint, r.FastTrackWords)
	}
}

// allApps is a compile-time hook keeping the experiment package honest about
// covering every Table 1 application.
var _ = workload.All
