package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"cord/internal/chaos"
	"cord/internal/record"
)

// Config sizes one Server. Zero values select the defaults.
type Config struct {
	// Workers is the number of concurrent sessions the pool executes
	// (default: runtime.NumCPU()). Each session is one simulation run.
	Workers int
	// QueueDepth is how many accepted sessions may wait for a worker
	// (default 16). A full queue rejects new sessions with HTTP 429.
	QueueDepth int
	// SessionTimeout bounds one session's execution (default 60s); an
	// expired session cancels its engine and answers HTTP 504.
	SessionTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB) — both the JSON
	// detect requests and the binary order logs feeding record.DecodeFrom.
	MaxBodyBytes int64

	// MaxStreams bounds concurrent /v1/stream sessions (default 8). Streams
	// are long-lived and bypass the worker queue, so they get their own
	// admission slot pool; a full pool answers 429 + Retry-After.
	MaxStreams int
	// StreamIdleTimeout is the longest a stream may go without delivering a
	// byte before the session is evicted with 408 (default 30s). It bounds
	// liveness, not total duration: an active stream may run indefinitely.
	StreamIdleTimeout time.Duration
	// MaxStreamBytes is the per-session byte quota of one stream
	// (default 256 MiB); exceeding it answers 413.
	MaxStreamBytes int64
	// MaxStreamFrames is the per-session frame quota of one stream
	// (default 16Mi entries); exceeding it answers 413.
	MaxStreamFrames uint64
	// StreamDuty is the default duty percentage of detect=online sessions
	// that do not pass duty= themselves (default 100 — full coverage). The
	// zero value selects the default; per-session duty=0 is still available
	// via the query parameter.
	StreamDuty int
	// StreamWorkers bounds the per-session ingest worker group that fans the
	// online shard folds across cores (default min(4, runtime.NumCPU())).
	// 1 disables the fan-out.
	StreamWorkers int

	// Chaos is the optional fault injector (nil in production): when its
	// worker-kill knob is armed, completing a campaign shard may terminate
	// the process before the response is written, so fleet coordinators see
	// the dropped connection a real worker death produces.
	Chaos *chaos.Chaos
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 8
	}
	if c.StreamIdleTimeout <= 0 {
		c.StreamIdleTimeout = 30 * time.Second
	}
	if c.MaxStreamBytes <= 0 {
		c.MaxStreamBytes = 256 << 20
	}
	if c.MaxStreamFrames == 0 {
		c.MaxStreamFrames = 16 << 20
	}
	if c.StreamDuty <= 0 || c.StreamDuty > 100 {
		c.StreamDuty = 100
	}
	if c.StreamWorkers <= 0 {
		c.StreamWorkers = min(4, runtime.NumCPU())
	}
	return c
}

// sessionResult is what a worker hands back to the waiting handler.
type sessionResult struct {
	status int
	body   []byte
}

// statusClientGone is the internal status for a session whose client
// disconnected before the response could be written (nginx's 499). It is
// never written to a socket — the socket is gone — but it keeps the
// completion path uniform.
const statusClientGone = 499

// session is one accepted unit of work: a closure over the parsed request,
// executed by a worker under a merged (client ∪ timeout) context.
type session struct {
	ctx  context.Context // the request context: client disconnect cancels it
	run  func(ctx context.Context) (any, error)
	done chan sessionResult // buffered(1): workers never block on delivery
}

// Server is the cordd HTTP service: a mux over the API endpoints in front of
// a bounded worker pool. It implements http.Handler. Create with New; stop
// with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	queue   chan *session
	streams chan struct{} // stream admission slots (semaphore)
	stop    chan struct{}
	wg      sync.WaitGroup
	m       *metrics
	start   time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	draining bool
	inflight int

	stopOnce sync.Once

	// shardMu/shards is the campaign shard-conflict registry: recent shard
	// identities mapped to their content hashes (see registerShard).
	shardMu sync.Mutex
	shards  map[shardKey]uint64

	// fleetMu/fleet is the worker registry (see fleet.go): advertised worker
	// URL -> live registration, expired entries pruned lazily against now.
	fleetMu sync.Mutex
	fleet   map[string]*fleetEntry

	// now is time.Now, a field so registry tests and the doc-conformance
	// suite can freeze the clock and get byte-stable listings.
	now func() time.Time

	// runDetect/runReplay execute one session; fields so tests can
	// substitute controllable work.
	runDetect func(ctx context.Context, req DetectRequest) (*DetectResponse, error)
	runReplay func(ctx context.Context, req ReplayRequest, log *record.Log) (*ReplayResponse, error)
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		queue:     make(chan *session, cfg.QueueDepth),
		streams:   make(chan struct{}, cfg.MaxStreams),
		stop:      make(chan struct{}),
		m:         newMetrics(),
		start:     time.Now(),
		now:       time.Now,
		runDetect: RunDetect,
		runReplay: RunReplay,
	}
	s.cond = sync.NewCond(&s.mu)
	s.mux.HandleFunc("POST /v1/detect", s.handleDetect)
	s.mux.HandleFunc("POST /v1/replay", s.handleReplay)
	s.mux.HandleFunc("POST /v1/stream", s.handleStream)
	s.mux.HandleFunc("POST /v1/campaign/plan", s.handleCampaignPlan)
	s.mux.HandleFunc("POST /v1/campaign/shard", s.handleCampaignShard)
	s.mux.HandleFunc("POST /v1/fleet/register", s.handleFleetRegister)
	s.mux.HandleFunc("GET /v1/fleet/workers", s.handleFleetWorkers)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics returns a snapshot of the cumulative counters. The fleet block's
// live-worker gauge is sampled at snapshot time (pruning expired entries), so
// /metrics always reflects current membership, not the last mutation.
func (s *Server) Metrics() Metrics {
	m := s.m.snapshot(time.Since(s.start), s.cfg.Workers, len(s.queue), cap(s.queue))
	m.Fleet.LiveWorkers = s.fleetLive()
	return m
}

// Shutdown drains the server: new sessions are rejected with 503, every
// already-accepted session runs to completion (the HTTP server in front must
// keep serving their connections), then the workers exit. It returns ctx's
// error if the drain does not finish in time — accepted sessions are still
// bounded by SessionTimeout, so a drain never hangs longer than that plus
// queue wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.inflight > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		return fmt.Errorf("server: shutdown interrupted with %d sessions in flight: %w", n, ctx.Err())
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	return nil
}

// accept registers intent to enqueue one session; it fails once draining.
func (s *Server) accept() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

// release retires one accepted session and wakes a pending drain.
func (s *Server) release() {
	s.mu.Lock()
	s.inflight--
	if s.inflight == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case sess := <-s.queue:
			s.serve(sess)
		case <-s.stop:
			return
		}
	}
}

// serve executes one session under the merged client/timeout context and
// classifies its outcome.
func (s *Server) serve(sess *session) {
	defer s.release()
	s.m.bump(func(c *SessionCounters) { c.Started++ })
	ctx, cancel := context.WithTimeout(sess.ctx, s.cfg.SessionTimeout)
	defer cancel()
	v, err := sess.run(ctx)
	var res sessionResult
	switch {
	case err == nil:
		b, encErr := encodeJSON(v)
		if encErr != nil {
			s.m.bump(func(c *SessionCounters) { c.Failed++ })
			res = errorResult(http.StatusInternalServerError, encErr)
			break
		}
		s.m.bump(func(c *SessionCounters) { c.Completed++ })
		res = sessionResult{status: http.StatusOK, body: b}
	case errors.Is(err, context.DeadlineExceeded):
		s.m.bump(func(c *SessionCounters) { c.TimedOut++ })
		res = errorResult(http.StatusGatewayTimeout,
			fmt.Errorf("session exceeded the %v timeout", s.cfg.SessionTimeout))
	case errors.Is(err, context.Canceled):
		s.m.bump(func(c *SessionCounters) { c.Canceled++ })
		res = sessionResult{status: statusClientGone}
	case errors.Is(err, record.ErrOrderViolation):
		// The log parsed but violates the §3 order invariants: 422 per the
		// PROTOCOL.md §5 taxonomy, matching the streaming path's verdict.
		s.m.bump(func(c *SessionCounters) { c.Failed++ })
		res = errorResult(http.StatusUnprocessableEntity, err)
	case errors.Is(err, ErrBadRequest):
		s.m.bump(func(c *SessionCounters) { c.Failed++ })
		res = errorResult(http.StatusBadRequest, err)
	default:
		s.m.bump(func(c *SessionCounters) { c.Failed++ })
		res = errorResult(http.StatusInternalServerError, err)
	}
	sess.done <- res
}

// dispatch funnels one parsed request through the pool: enqueue (or push
// back), then wait for the worker's verdict and relay it. It records the
// endpoint's full handler latency — queue wait plus execution.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, run func(ctx context.Context) (any, error)) {
	start := time.Now()
	if !s.accept() {
		s.m.bump(func(c *SessionCounters) { c.RejectedDraining++ })
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	sess := &session{ctx: r.Context(), run: run, done: make(chan sessionResult, 1)}
	select {
	case s.queue <- sess:
		s.m.bump(func(c *SessionCounters) { c.Accepted++ })
	default:
		s.release()
		s.m.bump(func(c *SessionCounters) { c.RejectedQueueFull++ })
		// The queue holds whole sessions, so a slot frees no sooner than
		// one session's service time: hint with the endpoint's observed
		// p50 handler latency, like the stream-slot 429 path.
		w.Header().Set("Retry-After", s.retryAfter(r.URL.Path))
		writeError(w, http.StatusTooManyRequests, errors.New("session queue is full"))
		return
	}
	// Always collect the verdict (cancellation makes workers finish
	// promptly), so the session lifecycle fully brackets the handler.
	res := <-sess.done
	s.m.observe(r.URL.Path, time.Since(start))
	if res.status == statusClientGone || r.Context().Err() != nil {
		return // nobody left to write to
	}
	writeBody(w, res.status, res.body)
}

// retryAfter derives a 429 Retry-After hint from the endpoint's observed p50
// handler latency — queue wait plus execution — rounded up to whole seconds
// and clamped to [1, 30]: the median session time approximates when a slot
// frees up. A cold server with no history falls back to 1 second.
func (s *Server) retryAfter(endpoint string) string {
	secs := 1
	if p50, ok := s.m.p50Ms(endpoint); ok {
		secs = int(math.Ceil(p50 / 1000))
		if secs < 1 {
			secs = 1
		}
		if secs > 30 {
			secs = 30
		}
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req DetectRequest
	if err := decodeJSONBody(r, &req); err != nil {
		writeError(w, statusForBodyError(err), err)
		return
	}
	req.ApplyDefaults()
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.dispatch(w, r, func(ctx context.Context) (any, error) {
		return s.runDetect(ctx, req)
	})
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	req, err := parseReplayQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req.ApplyDefaults()
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The body is the binary order log; the size limit caps what the
	// decoder will ever see, and DecodeFrom itself rejects malformed or
	// truncated streams without oversized allocations.
	log, err := record.DecodeFrom(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, statusForBodyError(err), fmt.Errorf("decoding order log: %w", err))
		return
	}
	s.dispatch(w, r, func(ctx context.Context) (any, error) {
		return s.runReplay(ctx, req, log)
	})
}

// Health is the GET /healthz body.
type Health struct {
	Schema        int     `json:"schema"`
	Status        string  `json:"status"` // "ok" or "draining"
	Workers       int     `json:"workers"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	h := Health{
		Schema:        SchemaVersion,
		Status:        "ok",
		Workers:       s.cfg.Workers,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	status := http.StatusOK
	if draining {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// parseReplayQuery extracts the replay run parameters from the query string.
func parseReplayQuery(r *http.Request) (ReplayRequest, error) {
	q := r.URL.Query()
	req := ReplayRequest{App: q.Get("app"), InjectThread: -1}
	var err error
	if req.Seed, err = queryUint(q.Get("seed"), 0); err != nil {
		return req, fmt.Errorf("%w: seed: %v", ErrBadRequest, err)
	}
	if req.Scale, err = queryInt(q.Get("scale"), 0); err != nil {
		return req, fmt.Errorf("%w: scale: %v", ErrBadRequest, err)
	}
	if req.Threads, err = queryInt(q.Get("threads"), 0); err != nil {
		return req, fmt.Errorf("%w: threads: %v", ErrBadRequest, err)
	}
	if req.InjectThread, err = queryInt(q.Get("inject_thread"), -1); err != nil {
		return req, fmt.Errorf("%w: inject_thread: %v", ErrBadRequest, err)
	}
	if req.InjectNth, err = queryUint(q.Get("inject_nth"), 0); err != nil {
		return req, fmt.Errorf("%w: inject_nth: %v", ErrBadRequest, err)
	}
	return req, nil
}

func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func queryUint(s string, def uint64) (uint64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

// decodeJSONBody strictly parses one JSON value from the request body;
// unknown fields are rejected so parameter typos fail loudly instead of
// silently running the default configuration.
func decodeJSONBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return tooLarge
		}
		return fmt.Errorf("%w: decoding request body: %v", ErrBadRequest, err)
	}
	return nil
}

// statusForBodyError maps body-read failures: an over-limit body is 413,
// anything else the client sent is 400.
func statusForBodyError(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// errorBody is the uniform error response shape. Code is the machine-readable
// taxonomy entry (PROTOCOL.md §errors): clients branch on it instead of
// parsing the human-readable Error text.
type errorBody struct {
	Schema int    `json:"schema"`
	Code   string `json:"code"`
	Error  string `json:"error"`
}

// Error-taxonomy codes. Every non-2xx body carries exactly one.
const (
	codeBadRequest     = "bad_request"     // parameters out of domain or unparseable
	codeBadFormat      = "bad_format"      // structurally damaged binary log (record.ErrBadFormat)
	codeTruncated      = "truncated"       // log ended before its declared entry count
	codeOrderViolation = "order_violation" // entries violate the order-recording invariants
	codeTooLarge       = "too_large"       // request body over MaxBodyBytes
	codeQuotaExceeded  = "quota_exceeded"  // stream exceeded its byte or frame quota
	codeIdleTimeout    = "idle_timeout"    // stream idle past StreamIdleTimeout
	codeQueueFull      = "queue_full"      // session queue full
	codeStreamLimit    = "stream_limit"    // all MaxStreams slots busy
	codeDraining       = "draining"        // server is shutting down
	codeTimeout        = "timeout"         // session exceeded SessionTimeout
	codeInternal       = "internal"        // server-side failure

	// Campaign shard protocol additions (PROTOCOL.md §6).
	codeShardConflict       = "shard_conflict"       // shard id re-used with different content
	codeFingerprintMismatch = "fingerprint_mismatch" // coordinator/worker config fingerprints disagree
)

// errorCode classifies err (preferred) or falls back on the HTTP status, so
// every error path lands on a taxonomy entry without each call site naming
// one. Call sites with a more specific verdict (idle timeout, quotas, stream
// admission) pass it explicitly via errorResultCode.
func errorCode(status int, err error) string {
	var tooLarge *http.MaxBytesError
	switch {
	case errors.Is(err, record.ErrBadFormat) && errors.Is(err, io.ErrUnexpectedEOF):
		return codeTruncated
	case errors.Is(err, record.ErrBadFormat):
		return codeBadFormat
	case errors.As(err, &tooLarge):
		return codeTooLarge
	case errors.Is(err, errOrderViolation):
		return codeOrderViolation
	case errors.Is(err, ErrBadRequest):
		return codeBadRequest
	}
	switch status {
	case http.StatusBadRequest:
		return codeBadRequest
	case http.StatusRequestEntityTooLarge:
		return codeTooLarge
	case http.StatusTooManyRequests:
		return codeQueueFull
	case http.StatusServiceUnavailable:
		return codeDraining
	case http.StatusGatewayTimeout:
		return codeTimeout
	default:
		return codeInternal
	}
}

func errorResult(status int, err error) sessionResult {
	return errorResultCode(status, errorCode(status, err), err)
}

func errorResultCode(status int, code string, err error) sessionResult {
	b, encErr := encodeJSON(errorBody{Schema: SchemaVersion, Code: code, Error: err.Error()})
	if encErr != nil { // can't happen: errorBody always marshals
		b = []byte(`{"schema":1,"code":"internal","error":"internal error"}` + "\n")
	}
	return sessionResult{status: status, body: b}
}

func writeError(w http.ResponseWriter, status int, err error) {
	res := errorResult(status, err)
	writeBody(w, res.status, res.body)
}

// writeErrorCode writes an error body with an explicit taxonomy code.
func writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	res := errorResultCode(status, code, err)
	writeBody(w, res.status, res.body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := encodeJSON(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeBody(w, status, b)
}

func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}
