package main

import (
	"fmt"
	"sync"
	"time"

	"cord/internal/server"
)

// This file is the coordinator's scheduler: per-worker shard queues weighted
// by a latency EWMA, work stealing from slow or suspect workers, requeue of a
// dead worker's backlog, and the bookkeeping behind GET /v1/campaign/progress
// (PROTOCOL.md §7). Everything here is placement policy — correctness never
// depends on it, because the checkpoint journal keyed by run identity is the
// merge point: however many times a shard is placed, stolen, requeued or
// re-sent, its cells land under the same keys with the same bytes.

// ewmaAlpha is the weight of the newest observation in the per-worker
// latency estimate. 0.5 converges fast (the probe seed is rough) while still
// smoothing single-shard noise.
const ewmaAlpha = 0.5

// maxCoalesceFactor caps adaptive shard sizing: a worker whose EWMA says it
// is k× faster than the pool mean may take up to min(k, 4) base shards as
// one request. The cap bounds the work lost if the fast worker then dies.
const maxCoalesceFactor = 4

// workerState is one worker's slice of the scheduler.
type workerState struct {
	url string
	// queue is the worker's pending shards: the front is executed next, the
	// back is the coldest work and the end thieves take from.
	queue    []shardWork
	inflight int // 0 or 1: each worker loop runs one shard at a time
	done     int // shards completed
	// ewmaRunMs estimates this worker's per-injection-run latency. It is
	// seeded from the plan-probe round trip — meaningful only as a relative
	// placement weight — and converges onto real shard latencies.
	ewmaRunMs float64
	health    string // server.WorkerLive, WorkerSuspect or WorkerDead
}

// queuedRuns is the backlog in injection runs (the unit EWMAs are per).
func (w *workerState) queuedRuns() int {
	runs := 0
	for _, s := range w.queue {
		runs += s.runs
	}
	return runs
}

// backlogCostMs is the expected time to drain this worker's queue — the
// signal thieves use to pick a victim.
func (w *workerState) backlogCostMs() float64 {
	return float64(w.queuedRuns()) * w.ewmaRunMs
}

// fleetPool is the shared scheduler state. All fields are guarded by mu; the
// cond wakes worker loops when work appears (steal targets included) and the
// dispatcher when the campaign completes or aborts.
type fleetPool struct {
	mu   sync.Mutex
	cond *sync.Cond

	campaign  string
	fp        string
	shardRuns int
	// registryMode relaxes the all-workers-lost rule: instead of failing
	// immediately, the pool parks the orphaned work and waits joinGrace for
	// the registry to deliver a replacement worker.
	registryMode bool
	joinGrace    time.Duration

	workers map[string]*workerState
	live    int
	// orphans is work whose owner died with no live worker to requeue it to
	// (registry mode only): the next joiner drains it first.
	orphans       []shardWork
	runsRemaining int
	inflight      int

	stolen   int
	requeued int

	cellsTotal int
	doneKeys   map[string]bool

	graceTimer  *time.Timer
	failed      error
	interrupted bool
}

func newFleetPool(campaign, fp string, shardRuns int, registryMode bool, joinGrace time.Duration, cellsTotal int) *fleetPool {
	p := &fleetPool{
		campaign:     campaign,
		fp:           fp,
		shardRuns:    shardRuns,
		registryMode: registryMode,
		joinGrace:    joinGrace,
		workers:      make(map[string]*workerState),
		cellsTotal:   cellsTotal,
		doneKeys:     make(map[string]bool),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// addWorker registers (or revives) a worker with a latency seed and reports
// whether a worker loop should be started for it. A URL that is already live
// or suspect keeps its loop and its learned EWMA.
func (p *fleetPool) addWorker(url string, seedRunMs float64) bool {
	if seedRunMs <= 0 {
		seedRunMs = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failed != nil || p.interrupted {
		return false
	}
	w := p.workers[url]
	if w != nil && w.health != server.WorkerDead {
		return false // already running
	}
	if w == nil {
		w = &workerState{url: url, ewmaRunMs: seedRunMs}
		p.workers[url] = w
	}
	// A revived worker restarts from the probe seed: its process (and its
	// warm caches) are gone, so the learned EWMA is stale.
	w.ewmaRunMs = seedRunMs
	w.health = server.WorkerLive
	p.live++
	if p.graceTimer != nil {
		p.graceTimer.Stop()
		p.graceTimer = nil
	}
	// The joiner takes the orphaned backlog of previously dead workers.
	if len(p.orphans) > 0 {
		for i := range p.orphans {
			p.orphans[i].origin = "requeue"
		}
		w.queue = append(w.queue, p.orphans...)
		p.orphans = nil
	}
	p.cond.Broadcast()
	return true
}

// candidate reports whether a registry-listed URL is worth probing: unknown
// to the pool, or known dead (a restarted worker re-registering under its
// old URL). Anything live or suspect already has a loop.
func (p *fleetPool) candidate(url string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failed != nil || p.interrupted || p.runsRemaining == 0 {
		return false
	}
	w := p.workers[url]
	return w == nil || w.health == server.WorkerDead
}

// placeShards distributes the initial shard cut across the live workers:
// each shard goes to the worker whose queue would finish soonest with it
// appended (greedy makespan minimization under the probe-seeded EWMAs).
// Shards arrive in campaign order, so a worker's queue stays mostly
// contiguous and adaptive coalescing can merge neighbors later.
func (p *fleetPool) placeShards(shards []shardWork) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range shards {
		var best *workerState
		var bestCost float64
		for _, w := range p.workers {
			if w.health == server.WorkerDead {
				continue
			}
			cost := (float64(w.queuedRuns() + s.runs)) * w.ewmaRunMs
			if best == nil || cost < bestCost || (cost == bestCost && w.url < best.url) {
				best, bestCost = w, cost
			}
		}
		if best == nil {
			// No live worker (the campaign was interrupted or failed before
			// placement, or everyone died during it): park the shard. waitDone
			// observes the terminal flag regardless.
			p.orphans = append(p.orphans, s)
		} else {
			best.queue = append(best.queue, s)
		}
		p.runsRemaining += s.runs
	}
	p.cond.Broadcast()
}

// meanEwmaLocked is the pool-mean per-run latency over non-dead workers.
func (p *fleetPool) meanEwmaLocked() float64 {
	sum, n := 0.0, 0
	for _, w := range p.workers {
		if w.health == server.WorkerDead {
			continue
		}
		sum += w.ewmaRunMs
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// take blocks until the named worker has a shard to execute — from its own
// queue (coalescing contiguous neighbors up to its adaptive size), then the
// orphan backlog, then stolen from the victim with the costliest backlog —
// or until the campaign completes or aborts (ok=false, and the loop exits).
func (p *fleetPool) take(url string) (shardWork, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	self := p.workers[url]
	for {
		if p.failed != nil || p.interrupted || p.runsRemaining == 0 || self.health == server.WorkerDead {
			return shardWork{}, false
		}
		// Own queue first.
		if len(self.queue) > 0 {
			s := self.queue[0]
			self.queue = self.queue[1:]
			// Adaptive sizing: a worker k× faster than the pool mean may
			// coalesce up to k base shards — when they are contiguous runs
			// of one app — into one request. The merged id follows the same
			// `<app>.<lo>.<hi>` content convention, so coalesced shards are
			// as idempotent and journal-keyed as base ones.
			factor := p.meanEwmaLocked() / self.ewmaRunMs
			if factor > maxCoalesceFactor {
				factor = maxCoalesceFactor
			}
			target := int(factor * float64(p.shardRuns))
			for len(self.queue) > 0 && len(s.ranges) == 1 {
				next := self.queue[0]
				if len(next.ranges) != 1 || next.ranges[0].App != s.ranges[0].App ||
					next.ranges[0].Lo != s.ranges[0].Hi || s.runs+next.runs > target ||
					next.origin != s.origin {
					break
				}
				s.ranges[0].Hi = next.ranges[0].Hi
				s.runs += next.runs
				s.id = fmt.Sprintf("%s.%d.%d", s.ranges[0].App, s.ranges[0].Lo, s.ranges[0].Hi)
				self.queue = self.queue[1:]
			}
			self.inflight++
			p.inflight++
			return s, true
		}
		// Orphaned work next (registry mode: a previous owner died while no
		// worker was live).
		if len(p.orphans) > 0 {
			s := p.orphans[0]
			p.orphans = p.orphans[1:]
			s.origin = "requeue"
			self.inflight++
			p.inflight++
			return s, true
		}
		// Steal from the victim with the largest expected backlog, suspect
		// workers first: their queue is the likeliest to strand. The thief
		// takes from the back — the work its owner would reach last.
		var victim *workerState
		var victimCost float64
		for _, w := range p.workers {
			if w == self || len(w.queue) == 0 || w.health == server.WorkerDead {
				continue
			}
			cost := w.backlogCostMs()
			if w.health == server.WorkerSuspect {
				cost *= 1 << 20 // suspect backlog outranks any healthy backlog
			}
			if victim == nil || cost > victimCost || (cost == victimCost && w.url < victim.url) {
				victim, victimCost = w, cost
			}
		}
		if victim != nil {
			s := victim.queue[len(victim.queue)-1]
			victim.queue = victim.queue[:len(victim.queue)-1]
			s.origin = "steal"
			p.stolen++
			self.inflight++
			p.inflight++
			return s, true
		}
		p.cond.Wait()
	}
}

// completed retires one executed shard, folds its latency into the worker's
// EWMA, and restores the worker to live (a suspect that delivers is healthy
// again).
func (p *fleetPool) completed(url string, s shardWork, elapsed time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w := p.workers[url]
	obs := float64(elapsed) / float64(time.Millisecond) / float64(s.runs)
	w.ewmaRunMs = ewmaAlpha*obs + (1-ewmaAlpha)*w.ewmaRunMs
	w.health = server.WorkerLive
	w.done++
	w.inflight--
	p.inflight--
	p.runsRemaining -= s.runs
	p.cond.Broadcast()
}

// markSuspect flags a worker whose current request needed a transient retry:
// still live, but its queued work becomes the preferred steal target.
func (p *fleetPool) markSuspect(url string) {
	p.mu.Lock()
	if w := p.workers[url]; w != nil && w.health == server.WorkerLive {
		w.health = server.WorkerSuspect
		p.cond.Broadcast() // idle peers may now want to steal from it
	}
	p.mu.Unlock()
}

// workerDied removes a worker that exhausted its retry budget, requeueing
// its in-flight shard and backlog. With live workers remaining the work is
// redistributed immediately; with none, registry mode parks it for the next
// joiner (failing after joinGrace), while static mode fails the campaign —
// nobody can ever join a static fleet.
func (p *fleetPool) workerDied(url string, s shardWork, cause error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w := p.workers[url]
	w.health = server.WorkerDead
	w.inflight--
	p.inflight--
	p.live--
	rescued := append([]shardWork{s}, w.queue...)
	w.queue = nil
	p.requeued += len(rescued)
	for i := range rescued {
		rescued[i].origin = "requeue"
	}
	if p.live > 0 {
		// Cheapest-backlog-first keeps the requeue from re-creating the
		// imbalance that may have doomed the dead worker.
		for _, rs := range rescued {
			var best *workerState
			var bestCost float64
			for _, cand := range p.workers {
				if cand.health == server.WorkerDead {
					continue
				}
				cost := (float64(cand.queuedRuns() + rs.runs)) * cand.ewmaRunMs
				if best == nil || cost < bestCost || (cost == bestCost && cand.url < best.url) {
					best, bestCost = cand, cost
				}
			}
			best.queue = append(best.queue, rs)
		}
	} else {
		p.orphans = append(p.orphans, rescued...)
		if !p.registryMode {
			if p.failed == nil {
				p.failed = fmt.Errorf("all workers lost with %d shards outstanding; last: %w", len(p.orphans), cause)
			}
		} else if p.graceTimer == nil && p.failed == nil && !p.interrupted {
			grace := p.joinGrace
			p.graceTimer = time.AfterFunc(grace, func() {
				p.mu.Lock()
				if p.live == 0 && p.failed == nil && !p.interrupted && p.runsRemaining > 0 {
					p.failed = fmt.Errorf("all workers lost and none joined within %v (%d shards outstanding); last: %w",
						grace, len(p.orphans), cause)
				}
				p.cond.Broadcast()
				p.mu.Unlock()
			})
		}
	}
	p.cond.Broadcast()
}

// journaled records one merged cell key for progress accounting.
func (p *fleetPool) journaled(key string) {
	p.mu.Lock()
	p.doneKeys[key] = true
	p.mu.Unlock()
}

// seedJournaled pre-marks cells already in the journal (resume).
func (p *fleetPool) seedJournaled(keys []string) {
	p.mu.Lock()
	for _, k := range keys {
		p.doneKeys[k] = true
	}
	p.mu.Unlock()
}

func (p *fleetPool) fail(err error) {
	p.mu.Lock()
	if p.failed == nil {
		p.failed = err
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *fleetPool) interrupt() {
	p.mu.Lock()
	p.interrupted = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// waitDone blocks until the campaign is complete, failed, or interrupted
// with every in-flight shard drained, and returns the terminal error (nil on
// success; the caller maps interrupted to experiment.ErrInterrupted).
func (p *fleetPool) waitDone() (failed error, interrupted bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		terminal := p.failed != nil || p.interrupted || p.runsRemaining == 0
		if terminal && p.inflight == 0 {
			if p.graceTimer != nil {
				p.graceTimer.Stop()
				p.graceTimer = nil
			}
			return p.failed, p.interrupted
		}
		p.cond.Wait()
	}
}

// snapshot renders the pool as the §7 progress resource.
func (p *fleetPool) snapshot() server.CampaignProgress {
	p.mu.Lock()
	defer p.mu.Unlock()
	prog := server.CampaignProgress{
		Campaign:       p.campaign,
		Fingerprint:    p.fp,
		CellsDone:      len(p.doneKeys),
		CellsTotal:     p.cellsTotal,
		ShardsStolen:   p.stolen,
		ShardsRequeued: p.requeued,
	}
	for _, w := range p.workers {
		prog.Workers = append(prog.Workers, server.ProgressWorker{
			URL:            w.url,
			Health:         w.health,
			ShardsDone:     w.done,
			ShardsQueued:   len(w.queue),
			ShardsInFlight: w.inflight,
			LatencyEwmaMs:  w.ewmaRunMs,
		})
	}
	return prog
}
