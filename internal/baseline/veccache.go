package baseline

import (
	"fmt"

	"cord/internal/cache"
	"cord/internal/clock"
	"cord/internal/memsys"
	"cord/internal/trace"
)

// Bound selects the timestamp-storage limit of a vector-clock configuration
// (§4.3): unlimited caches, the L2, or only the L1.
type Bound int

// The storage bounds of Figs. 14–15.
const (
	BoundInf Bound = iota
	BoundL2
	BoundL1
)

// String names the bound.
func (b Bound) String() string {
	switch b {
	case BoundInf:
		return "InfCache"
	case BoundL2:
		return "L2Cache"
	default:
		return "L1Cache"
	}
}

func (b Bound) geometry() (cache.Config, bool) {
	switch b {
	case BoundL2:
		return cache.Config{SizeBytes: 32 << 10, Ways: 8}, true
	case BoundL1:
		return cache.Config{SizeBytes: 8 << 10, Ways: 4}, true
	default:
		return cache.Config{}, false
	}
}

// vecEntry is one timestamp slot of a cached line in a vector-clock scheme:
// a full vector timestamp plus per-word read/write bits.
type vecEntry struct {
	vc        clock.Vector
	readMask  uint16
	writeMask uint16
	valid     bool
}

func (e *vecEntry) has(word int, kind trace.Kind) bool {
	if kind == trace.Read {
		return e.readMask&(1<<word) != 0
	}
	return e.writeMask&(1<<word) != 0
}

func (e *vecEntry) set(word int, kind trace.Kind) {
	if kind == trace.Read {
		e.readMask |= 1 << word
	} else {
		e.writeMask |= 1 << word
	}
}

// vecLine is the per-line payload: up to two vector-timestamped history
// slots (slot 0 newest), as in the InfCache/L2Cache/L1Cache configurations.
type vecLine struct {
	hist [2]vecEntry
}

// VecConfig parameterizes a vector-clock baseline detector.
type VecConfig struct {
	Threads   int
	Procs     int
	Bound     Bound
	HistDepth int // 2 unless the per-line ablation asks for 1
}

// VecCache is the vector-clock, cache-bounded detector of Figs. 12–15. Like
// CORD it keeps two timestamps with per-word access bits per resident line
// and a pair of whole-memory timestamps, but timestamps are full vector
// clocks, so ordering is exact wherever history survives. It reports no
// races discovered through the memory timestamps (same §2.5 reasoning).
type VecCache struct {
	cfg      VecConfig
	vcs      []clock.Vector
	threadOf []int
	caches   []*cache.Cache[vecLine]

	memRead, memWrite clock.Vector
	memHasR, memHasW  bool

	races     []trace.Race
	raceCount int // racy accesses
	reports   int // individual reported conflicts
	viaMemory int
	scratch   []vecConflict

	// freeVCs recycles the vectors of displaced history entries (slot
	// rotation, capacity evictions, and — via pendingFree — write
	// invalidations; together the per-access allocation hot spots).
	freeVCs []clock.Vector
	// pendingFree stages invalidation-dropped vectors within one access:
	// probe scratch still aliases them until the access completes, so they
	// join freeVCs only at the end of OnAccess, after the local stamp (the
	// only consumer of freeVCs) has run.
	pendingFree []clock.Vector
}

type vecConflict struct {
	vc   clock.Vector
	kind trace.Kind
	proc int
}

// NewVecCache builds a vector-clock baseline detector.
func NewVecCache(cfg VecConfig) *VecCache {
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.Procs <= 0 {
		cfg.Procs = 4
	}
	if cfg.HistDepth <= 0 || cfg.HistDepth > 2 {
		cfg.HistDepth = 2
	}
	d := &VecCache{
		cfg:      cfg,
		vcs:      makeVCs(cfg.Threads),
		threadOf: make([]int, cfg.Procs),
		memRead:  clock.NewVector(cfg.Threads),
		memWrite: clock.NewVector(cfg.Threads),
	}
	geo, bounded := cfg.Bound.geometry()
	for p := 0; p < cfg.Procs; p++ {
		if bounded {
			d.caches = append(d.caches, cache.New[vecLine](geo))
		} else {
			d.caches = append(d.caches, cache.NewUnbounded[vecLine]())
		}
		d.threadOf[p] = p % cfg.Threads
	}
	return d
}

// Name implements trace.Observer.
func (d *VecCache) Name() string { return fmt.Sprintf("Vector/%s", d.cfg.Bound) }

// OnAccess implements trace.Observer.
func (d *VecCache) OnAccess(a trace.Access) trace.Report {
	proc := a.Proc % d.cfg.Procs
	d.threadOf[proc] = a.Thread
	my := d.vcs[a.Thread]
	line := memsys.LineOf(a.Addr)
	word := memsys.WordIndex(a.Addr)

	var rep trace.Report
	ls, present := d.caches[proc].Lookup(line)

	// Fast path mirrors CORD: a word already stamped in the newest slot in
	// the same mode, with the clock unchanged since, needs no re-check
	// (coherence guarantees remote writes would have invalidated the line).
	if present {
		if e := &ls.hist[0]; e.valid && e.has(word, a.Kind) && vcEqual(e.vc, my) {
			return rep
		}
	}

	// Probe remote caches for conflicts.
	probe := d.probeRemotes(proc, line, word, a.Kind)

	racy := false
	for _, cf := range d.scratch {
		// cf happened before the current access iff every component of
		// its vector is covered by the current thread's clock.
		if !my.DominatesOrEqual(cf.vc) && a.Class == trace.Data {
			r := trace.Race{
				Addr:   a.Addr,
				First:  trace.Ref{Thread: d.threadOf[cf.proc], Kind: cf.kind, Seq: trace.SeqUnknown},
				Second: trace.Ref{Thread: a.Thread, Kind: a.Kind, Seq: a.Seq},
			}
			racy = true
			d.reports++
			if len(d.races) < 1<<16 {
				d.races = append(d.races, r)
				rep.Races = append(rep.Races, r)
			}
		}
		// Acquire edge: a sync read joins the write timestamps it observes.
		// Unlike CORD, the vector scheme performs no clock update on data
		// races — it is a detector only (no order recording), and exact
		// vector ordering keeps later races visible instead of hiding them
		// behind a race-outcome update (this is what lets the InfCache
		// configuration track Ideal closely in Figs. 14-15).
		if a.Class == trace.Sync && a.Kind == trace.Read && cf.kind == trace.Write {
			my.Join(cf.vc)
		}
	}

	// Memory path: a data race that would be flagged through the
	// whole-memory timestamps is suppressed (§2.5); a sync read through
	// memory joins the memory write timestamp so synchronization through
	// displaced variables is never lost (the Fig. 6 scenario).
	if !present && !probe.found {
		if d.memHasW && !my.DominatesOrEqual(d.memWrite) && a.Class == trace.Data {
			d.viaMemory++
		}
		if a.Kind == trace.Write && d.memHasR && !my.DominatesOrEqual(d.memRead) && a.Class == trace.Data {
			d.viaMemory++
		}
		if a.Class == trace.Sync && a.Kind == trace.Read && d.memHasW {
			my.Join(d.memWrite)
		}
	}

	if racy {
		d.raceCount++
	}

	// Stamp locally.
	if !present {
		var nl vecLine
		nl.hist[0] = vecEntry{vc: d.cloneVC(my), valid: true}
		nl.hist[0].set(word, a.Kind)
		if v, evicted := d.caches[proc].Insert(line, nl); evicted {
			d.flushLine(&v.Payload)
		}
	} else {
		d.stamp(ls, word, a.Kind, my)
	}

	// Vector clocks advance at synchronization writes only (mirroring
	// CORD's §2.4 rule); data accesses between syncs share a timestamp so
	// per-word bits accumulate in one history slot.
	if a.Class == trace.Sync && a.Kind == trace.Write {
		my.Tick(a.Thread)
	}

	// The access is complete: nothing aliases the invalidation-dropped
	// vectors any more, so they can finally be recycled.
	if len(d.pendingFree) > 0 {
		d.freeVCs = append(d.freeVCs, d.pendingFree...)
		d.pendingFree = d.pendingFree[:0]
	}
	return rep
}

func (d *VecCache) stamp(ls *vecLine, word int, kind trace.Kind, my clock.Vector) {
	n := &ls.hist[0]
	switch {
	case !n.valid:
		ls.hist[0] = vecEntry{vc: d.cloneVC(my), valid: true}
		ls.hist[0].set(word, kind)
	case vcEqual(n.vc, my):
		n.set(word, kind)
	default:
		if d.cfg.HistDepth >= 2 {
			d.absorbMem(ls.hist[1])
			d.freeVC(ls.hist[1])
			ls.hist[1] = ls.hist[0]
		} else {
			d.absorbMem(ls.hist[0])
			d.freeVC(ls.hist[0])
			ls.hist[1] = vecEntry{}
		}
		ls.hist[0] = vecEntry{vc: d.cloneVC(my), valid: true}
		ls.hist[0].set(word, kind)
	}
}

// cloneVC copies my into a recycled vector when one is available. History
// entries own their vectors exclusively (Clone on stamp, never shared), so
// a displaced entry's storage can be reused verbatim.
func (d *VecCache) cloneVC(my clock.Vector) clock.Vector {
	if n := len(d.freeVCs); n > 0 {
		c := d.freeVCs[n-1]
		d.freeVCs = d.freeVCs[:n-1]
		copy(c, my)
		return c
	}
	return my.Clone()
}

// freeVC recycles a displaced entry's vector. Only displacement paths may
// call it (stamp rotation, flushLine); invalidation-dropped vectors go
// through pendingFree instead, because the probe scratch of the in-flight
// access can still alias them.
func (d *VecCache) freeVC(e vecEntry) {
	if e.valid && e.vc != nil {
		d.freeVCs = append(d.freeVCs, e.vc)
	}
}

func vcEqual(a, b clock.Vector) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type vecProbe struct {
	found bool
}

func (d *VecCache) probeRemotes(proc int, line memsys.Line, word int, kind trace.Kind) vecProbe {
	var res vecProbe
	d.scratch = d.scratch[:0]
	for q := 0; q < d.cfg.Procs; q++ {
		if q == proc {
			continue
		}
		ls, ok := d.caches[q].Peek(line)
		if !ok {
			continue
		}
		res.found = true
		for i := range ls.hist {
			e := &ls.hist[i]
			if !e.valid {
				continue
			}
			if e.has(word, trace.Write) {
				d.scratch = append(d.scratch, vecConflict{vc: e.vc, kind: trace.Write, proc: q})
			}
			if kind == trace.Write && e.has(word, trace.Read) {
				d.scratch = append(d.scratch, vecConflict{vc: e.vc, kind: trace.Read, proc: q})
			}
		}
		if kind == trace.Write {
			// Invalidation drops the remote history outright: the memory
			// timestamps absorb *displaced* state only (§2.5 — capacity
			// evictions and history-slot rotation), never invalidations.
			// The conflicting words were just checked above; history for
			// other words is simply lost, which can only hide races, never
			// fabricate them. The dropped vectors are still aliased by the
			// scratch built above, so they are staged in pendingFree and
			// reach the free list only when the access finishes.
			for i := range ls.hist {
				if e := &ls.hist[i]; e.valid && e.vc != nil {
					d.pendingFree = append(d.pendingFree, e.vc)
				}
			}
			d.caches[q].Remove(line)
		}
	}
	return res
}

func (d *VecCache) absorbMem(e vecEntry) {
	if !e.valid {
		return
	}
	if e.readMask != 0 {
		d.memRead.Join(e.vc)
		d.memHasR = true
	}
	if e.writeMask != 0 {
		d.memWrite.Join(e.vc)
		d.memHasW = true
	}
}

func (d *VecCache) flushLine(ls *vecLine) {
	for i := range ls.hist {
		d.absorbMem(ls.hist[i])
		d.freeVC(ls.hist[i])
		ls.hist[i] = vecEntry{}
	}
}

// Migrate implements trace.Observer. The migration self-race problem applies
// to vector schemes too (§2.7.4): ticking the migrating thread's component
// "synchronizes" its new execution with the timestamps it left behind.
func (d *VecCache) Migrate(thread, proc int, instr uint64) {
	d.vcs[thread].Tick(thread)
}

// ThreadDone implements trace.Observer.
func (d *VecCache) ThreadDone(thread int, totalInstr uint64) {}

// Finish implements trace.Observer.
func (d *VecCache) Finish() {}

// Races returns the retained reported races.
func (d *VecCache) Races() []trace.Race { return d.races }

// RaceCount returns the number of racy accesses (the shared raw-race
// metric).
func (d *VecCache) RaceCount() int { return d.raceCount }

// ProblemDetected reports whether at least one race was reported.
func (d *VecCache) ProblemDetected() bool { return d.raceCount > 0 }

// ViaMemorySuppressed returns how many detections were suppressed because
// they came from the whole-memory timestamps.
func (d *VecCache) ViaMemorySuppressed() int { return d.viaMemory }
