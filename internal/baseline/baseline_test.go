package baseline

import (
	"testing"

	"cord/internal/memsys"
	"cord/internal/trace"
)

type driver struct {
	obs  trace.Observer
	seq  uint64
	inst map[int]uint64
}

func drive(obs trace.Observer) *driver { return &driver{obs: obs, inst: map[int]uint64{}} }

func (d *driver) acc(thread int, addr memsys.Addr, kind trace.Kind, class trace.Class) trace.Report {
	a := trace.Access{Seq: d.seq, Thread: thread, Proc: thread, Addr: addr, Kind: kind, Class: class, Instr: d.inst[thread], Instrs: 1}
	d.seq++
	d.inst[thread]++
	return d.obs.OnAccess(a)
}

const (
	x = memsys.Addr(0x1000)
	y = memsys.Addr(0x2000)
	l = memsys.Addr(0x3000)
)

func TestIdealDetectsPlainRace(t *testing.T) {
	id := NewIdeal(2)
	d := drive(id)
	d.acc(0, x, trace.Write, trace.Data)
	rep := d.acc(1, x, trace.Read, trace.Data)
	if len(rep.Races) != 1 {
		t.Fatalf("races = %d", len(rep.Races))
	}
	r := rep.Races[0]
	if r.First.Thread != 0 || r.First.Kind != trace.Write || r.Second.Seq != 1 {
		t.Fatalf("race = %+v", r)
	}
	if !id.Confirms(r) {
		t.Fatal("ideal does not confirm its own race")
	}
}

func TestIdealAcquireReleaseOrders(t *testing.T) {
	id := NewIdeal(2)
	d := drive(id)
	d.acc(0, x, trace.Write, trace.Data)
	d.acc(0, l, trace.Write, trace.Sync) // release
	d.acc(1, l, trace.Read, trace.Sync)  // acquire
	rep := d.acc(1, x, trace.Read, trace.Data)
	if len(rep.Races) != 0 {
		t.Fatalf("synchronized pair reported: %+v", rep.Races)
	}
}

func TestIdealReadReadNotConflict(t *testing.T) {
	id := NewIdeal(2)
	d := drive(id)
	d.acc(0, x, trace.Read, trace.Data)
	if rep := d.acc(1, x, trace.Read, trace.Data); len(rep.Races) != 0 {
		t.Fatal("read-read reported as race")
	}
}

func TestIdealDetectsAllOverlappingRaces(t *testing.T) {
	// Unlike scalar CORD (Fig. 3), the oracle finds both races.
	id := NewIdeal(2)
	d := drive(id)
	d.acc(0, y, trace.Write, trace.Data)
	d.acc(0, x, trace.Write, trace.Data)
	d.acc(1, x, trace.Read, trace.Data)
	d.acc(1, y, trace.Read, trace.Data)
	if id.RaceCount() != 2 {
		t.Fatalf("race count = %d, want 2", id.RaceCount())
	}
}

func TestIdealWriteAfterReadNotSyncEdge(t *testing.T) {
	// A failed-TAS-style read followed by another thread's sync write must
	// NOT order the writer after the reader (acquire/release semantics).
	id := NewIdeal(2)
	d := drive(id)
	d.acc(0, x, trace.Write, trace.Data) // T0 data write
	d.acc(0, l, trace.Read, trace.Sync)  // T0 sync read (no release!)
	d.acc(1, l, trace.Write, trace.Sync) // T1 sync write
	rep := d.acc(1, x, trace.Read, trace.Data)
	if len(rep.Races) != 1 {
		t.Fatalf("write-after-read treated as synchronization: %d races", len(rep.Races))
	}
}

func TestIdealPruneKeepsDetection(t *testing.T) {
	id := NewIdeal(2)
	id.pruneInterval = 8
	d := drive(id)
	// Lots of synchronized ping-pong traffic to trigger pruning (both
	// directions need an edge: l forward, l2 back)...
	const l2 = memsys.Addr(0x4000)
	for i := 0; i < 50; i++ {
		d.acc(0, y, trace.Write, trace.Data)
		d.acc(0, l, trace.Write, trace.Sync)
		d.acc(1, l, trace.Read, trace.Sync)
		d.acc(1, y, trace.Read, trace.Data)
		d.acc(1, l2, trace.Write, trace.Sync)
		d.acc(0, l2, trace.Read, trace.Sync)
	}
	if id.RaceCount() != 0 {
		t.Fatalf("synchronized loop produced %d races", id.RaceCount())
	}
	// ...then a fresh race must still be caught.
	d.acc(0, x, trace.Write, trace.Data)
	if rep := d.acc(1, x, trace.Write, trace.Data); len(rep.Races) != 1 {
		t.Fatal("race missed after pruning")
	}
}

func TestVecCacheDetectsAndOrders(t *testing.T) {
	v := NewVecCache(VecConfig{Threads: 2, Procs: 2, Bound: BoundInf})
	d := drive(v)
	d.acc(0, x, trace.Write, trace.Data)
	if rep := d.acc(1, x, trace.Read, trace.Data); len(rep.Races) != 1 {
		t.Fatalf("vector missed plain race")
	}
	// Synchronized pattern on a fresh address.
	d.acc(0, y, trace.Write, trace.Data)
	d.acc(0, l, trace.Write, trace.Sync)
	d.acc(1, l, trace.Read, trace.Sync)
	if rep := d.acc(1, y, trace.Read, trace.Data); len(rep.Races) != 0 {
		t.Fatalf("vector flagged synchronized pair: %+v", rep.Races)
	}
}

func TestVecCacheOverlappingRacesVisible(t *testing.T) {
	// Unlike scalar CORD (Fig. 3), the vector detector performs no clock
	// update on data races, so overlapping races stay visible — the
	// property that lets the InfCache configuration track Ideal's raw
	// detection rate in Fig. 15.
	v := NewVecCache(VecConfig{Threads: 2, Procs: 2, Bound: BoundInf})
	d := drive(v)
	d.acc(0, y, trace.Write, trace.Data)
	d.acc(0, x, trace.Write, trace.Data)
	d.acc(1, x, trace.Read, trace.Data)
	rep := d.acc(1, y, trace.Read, trace.Data)
	if len(rep.Races) != 1 {
		t.Fatalf("overlap race should stay visible: %+v", rep.Races)
	}
	if v.RaceCount() != 2 {
		t.Fatalf("race count = %d, want 2", v.RaceCount())
	}
}

func TestVecCacheBoundedLosesEvictedHistory(t *testing.T) {
	// A two-line L1-style bound: force the racy line out, then miss the
	// race but report nothing false (memory-timestamp suppression).
	v := NewVecCache(VecConfig{Threads: 2, Procs: 2, Bound: BoundL1})
	d := drive(v)
	d.acc(0, x, trace.Write, trace.Data)
	// Evict x from proc 0 by filling its cache with many lines.
	for i := 0; i < 600; i++ {
		d.acc(0, memsys.Addr(0x100000+i*64), trace.Write, trace.Data)
	}
	rep := d.acc(1, x, trace.Read, trace.Data)
	if len(rep.Races) != 0 {
		t.Fatalf("evicted history still produced a report: %+v", rep.Races)
	}
	if v.ViaMemorySuppressed() == 0 {
		t.Fatal("expected a suppressed via-memory detection")
	}
}

func TestBoundNames(t *testing.T) {
	if BoundInf.String() != "InfCache" || BoundL2.String() != "L2Cache" || BoundL1.String() != "L1Cache" {
		t.Fatal("bound names wrong")
	}
	v := NewVecCache(VecConfig{Threads: 4, Bound: BoundL2})
	if v.Name() != "Vector/L2Cache" {
		t.Fatalf("name = %q", v.Name())
	}
}

func TestVecCacheOneSlotLosesRotatedHistory(t *testing.T) {
	// HistDepth=1 (the Fig. 2 ablation for the vector scheme): one clock
	// change on the line erases the racy history; two slots survive it.
	run := func(depth int) int {
		v := NewVecCache(VecConfig{Threads: 2, Procs: 2, Bound: BoundInf, HistDepth: depth})
		d := drive(v)
		d.acc(0, x, trace.Write, trace.Data)   // the racy write
		d.acc(0, l, trace.Write, trace.Sync)   // clock ticks
		d.acc(0, x+4, trace.Write, trace.Data) // same line, new vc: rotates
		d.acc(1, x, trace.Read, trace.Data)    // conflicting read
		return v.RaceCount()
	}
	if run(2) != 1 {
		t.Fatal("two slots lost the race")
	}
	if run(1) != 0 {
		t.Fatal("one slot kept history it should have rotated out")
	}
}
