package record

import (
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"testing"

	"cord/internal/clock"
)

// feedAll pushes b through a StreamDecoder in the given chunk sizes and
// returns the emitted entries plus the first error (from Feed or Close).
func feedAll(b []byte, chunks []int, emit func(Entry) error) ([]Entry, error) {
	d := NewStreamDecoder()
	var got []Entry
	cb := func(e Entry) error {
		got = append(got, e)
		if emit != nil {
			return emit(e)
		}
		return nil
	}
	off := 0
	for _, n := range chunks {
		if off >= len(b) {
			break
		}
		end := off + n
		if end > len(b) {
			end = len(b)
		}
		if err := d.Feed(b[off:end], cb); err != nil {
			return got, err
		}
		off = end
	}
	if off < len(b) {
		if err := d.Feed(b[off:], cb); err != nil {
			return got, err
		}
	}
	return got, d.Close()
}

func encodeLog(t *testing.T, l *Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := l.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sampleLog(n int) *Log {
	var l Log
	for i := 0; i < n; i++ {
		l.Append(Entry{Clock: clock.Scalar(i * 3), Thread: uint16(i % 4), Instr: uint32(10 + i)})
	}
	return &l
}

// TestStreamDecoderMatchesDecodeFrom: for any chunking of the byte stream —
// including 1-byte chunks that split the header and every entry — the
// incremental decoder emits exactly the entries DecodeFrom parses.
func TestStreamDecoderMatchesDecodeFrom(t *testing.T) {
	l := sampleLog(257)
	b := encodeLog(t, l)
	want, err := DecodeFrom(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	chunkings := [][]int{
		{len(b)},       // one shot
		{1},            // every byte alone (the pattern repeats via feedAll)
		{7},            // misaligned with both header and entries
		{16, 8},        // frame-aligned
		{3, 5, 16, 64}, // mixed
	}
	for _, pattern := range chunkings {
		// Expand the pattern cyclically over the whole stream.
		var chunks []int
		for total := 0; total < len(b); {
			n := pattern[len(chunks)%len(pattern)]
			chunks = append(chunks, n)
			total += n
		}
		got, err := feedAll(b, chunks, nil)
		if err != nil {
			t.Fatalf("chunking %v: %v", pattern, err)
		}
		if len(got) != want.Len() {
			t.Fatalf("chunking %v: %d entries, want %d", pattern, len(got), want.Len())
		}
		for i := range got {
			if got[i] != want.Entries()[i] {
				t.Fatalf("chunking %v: entry %d = %v, want %v", pattern, i, got[i], want.Entries()[i])
			}
		}
	}
}

// TestStreamDecoderRandomChunking: random chunk splits across many seeds
// always reproduce the one-shot decode.
func TestStreamDecoderRandomChunking(t *testing.T) {
	l := sampleLog(100)
	b := encodeLog(t, l)
	for seed := uint64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed))
		var chunks []int
		for total := 0; total < len(b); {
			n := 1 + int(rng.Uint64N(37))
			chunks = append(chunks, n)
			total += n
		}
		got, err := feedAll(b, chunks, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(got) != l.Len() {
			t.Fatalf("seed %d: %d entries, want %d", seed, len(got), l.Len())
		}
	}
}

// TestStreamDecoderTruncation: a stream cut at any byte offset before the
// end fails Close with ErrBadFormat wrapping io.ErrUnexpectedEOF, and never
// emits a partial entry.
func TestStreamDecoderTruncation(t *testing.T) {
	l := sampleLog(5)
	b := encodeLog(t, l)
	for cut := 0; cut < len(b); cut++ {
		got, err := feedAll(b[:cut], []int{3}, nil)
		if err == nil {
			t.Fatalf("cut %d: truncated stream accepted", cut)
		}
		if !errors.Is(err, ErrBadFormat) || !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: err = %v, want ErrBadFormat wrapping io.ErrUnexpectedEOF", cut, err)
		}
		wholeEntries := 0
		if cut > HeaderBytes {
			wholeEntries = (cut - HeaderBytes) / EntryBytes
		}
		if len(got) != wholeEntries {
			t.Fatalf("cut %d: emitted %d entries, want %d", cut, len(got), wholeEntries)
		}
	}
}

// TestStreamDecoderRejectsGarbage: structural damage fails at Feed time.
func TestStreamDecoderRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"bad magic", []byte("XXXX0000000000000000")},
		{"bad version", append([]byte("CORD\xff\x00\x00\x00"), make([]byte, 8)...)},
	}
	for _, tc := range cases {
		d := NewStreamDecoder()
		if err := d.Feed(tc.b, nil); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: err = %v, want ErrBadFormat", tc.name, err)
		}
	}
	// Implausible count.
	var hdr [HeaderBytes]byte
	copy(hdr[:4], magic[:])
	hdr[4] = version
	for i := 8; i < 16; i++ {
		hdr[i] = 0xff
	}
	d := NewStreamDecoder()
	if err := d.Feed(hdr[:], nil); !errors.Is(err, ErrBadFormat) {
		t.Errorf("implausible count: err = %v, want ErrBadFormat", err)
	}
}

// TestStreamDecoderRejectsTrailingBytes: bytes past the declared entry count
// are a format error in a stream (unlike DecodeFrom, which leaves trailing
// bytes unread for the caller), because the session body is exactly one log.
func TestStreamDecoderRejectsTrailingBytes(t *testing.T) {
	b := append(encodeLog(t, sampleLog(3)), 0xAA)
	_, err := feedAll(b, []int{5}, nil)
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("trailing byte: err = %v, want ErrBadFormat", err)
	}
	// Also when the excess arrives in a later chunk.
	b2 := encodeLog(t, sampleLog(3))
	d := NewStreamDecoder()
	if err := d.Feed(b2, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Feed([]byte{1}, nil); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("late trailing byte: err = %v, want ErrBadFormat", err)
	}
}

// TestStreamDecoderEmitErrorAborts: emit's error surfaces verbatim and the
// decoder refuses further input (sticky failure).
func TestStreamDecoderEmitErrorAborts(t *testing.T) {
	b := encodeLog(t, sampleLog(10))
	boom := errors.New("shard violation")
	seen := 0
	d := NewStreamDecoder()
	err := d.Feed(b, func(e Entry) error {
		seen++
		if seen == 4 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if seen != 4 {
		t.Fatalf("emit called %d times, want 4", seen)
	}
	if err := d.Feed([]byte{1, 2, 3}, nil); !errors.Is(err, boom) {
		t.Fatalf("decoder accepted input after failure: %v", err)
	}
	if err := d.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close after failure = %v, want sticky error", err)
	}
}

// TestStreamDecoderReset: a Reset decoder parses a fresh stream.
func TestStreamDecoderReset(t *testing.T) {
	b := encodeLog(t, sampleLog(4))
	d := NewStreamDecoder()
	if err := d.Feed(b[:10], nil); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	n := 0
	if err := d.Feed(b, func(Entry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("decoded %d entries after Reset, want 4", n)
	}
}

// TestStreamDecoderEmptyLog: a header-only stream declaring zero entries is
// valid and complete.
func TestStreamDecoderEmptyLog(t *testing.T) {
	b := encodeLog(t, &Log{})
	got, err := feedAll(b, []int{4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty log emitted %d entries", len(got))
	}
}
