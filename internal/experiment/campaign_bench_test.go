package experiment

import (
	"fmt"
	"testing"
)

// BenchmarkDetectionCampaign runs a small injection campaign at several
// worker counts. On a multi-core host the procs=4 case should approach a 4×
// speedup over procs=1, because the campaign is a flat list of independent
// seed-deterministic simulations with only index-ordered aggregation at the
// end. Compare:
//
//	go test -bench 'DetectionCampaign' -benchtime 3x ./internal/experiment/
func BenchmarkDetectionCampaign(b *testing.B) {
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			o := smallOpts()
			o.Injections = 8
			o.Procs = procs
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunDetection(o)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Apps) != len(o.Apps) {
					b.Fatal("short campaign")
				}
			}
		})
	}
}

// BenchmarkOverheadCampaign is the Figure 11 analogue: (apps × seeds) pairs
// of baseline+CORD timing runs fanned across the pool.
func BenchmarkOverheadCampaign(b *testing.B) {
	for _, procs := range []int{1, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			o := smallOpts()
			o.Procs = procs
			for i := 0; i < b.N; i++ {
				if _, _, err := RunOverhead(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
