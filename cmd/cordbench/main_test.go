package main

import "testing"

// TestParseApps: the -apps comma list resolves names through the Table 1
// catalogue; empty means all, unknown names are usage errors.
func TestParseApps(t *testing.T) {
	if apps, err := parseApps(""); apps != nil || err != nil {
		t.Fatalf("parseApps(\"\") = %v, %v; want nil, nil (all apps)", apps, err)
	}
	apps, err := parseApps(" raytrace , lu ")
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 2 || apps[0].Name != "raytrace" || apps[1].Name != "lu" {
		t.Fatalf("parseApps picked %v", apps)
	}
	if _, err := parseApps("raytrace,nosuchapp"); err == nil {
		t.Fatal("unknown app name accepted")
	}
}

// TestValidateFlags: degenerate campaign parameters must be rejected up
// front with a usage error instead of producing empty figures or confusing
// downstream failures.
func TestValidateFlags(t *testing.T) {
	ok := func(injections, scale, ovScale, procs, dirProcs, ftShards int) {
		t.Helper()
		if err := validateFlags(injections, scale, ovScale, procs, dirProcs, ftShards); err != nil {
			t.Errorf("validateFlags(%d,%d,%d,%d,%d,%d) = %v, want nil",
				injections, scale, ovScale, procs, dirProcs, ftShards, err)
		}
	}
	bad := func(injections, scale, ovScale, procs, dirProcs, ftShards int) {
		t.Helper()
		if err := validateFlags(injections, scale, ovScale, procs, dirProcs, ftShards); err == nil {
			t.Errorf("validateFlags(%d,%d,%d,%d,%d,%d) accepted degenerate flags",
				injections, scale, ovScale, procs, dirProcs, ftShards)
		}
	}

	ok(40, 1, 4, 0, 16, 1)  // the defaults
	ok(1, 1, 1, 8, 2, 1)    // minimal legal values
	ok(40, 1, 4, 0, 16, 64) // sharded FastTrack shadow memory

	bad(0, 1, 4, 0, 16, 1)  // -injections 0: empty detection campaign
	bad(-5, 1, 4, 0, 16, 1) // negative injections
	bad(40, 0, 4, 0, 16, 1) // -scale 0: empty workloads
	bad(40, -1, 4, 0, 16, 1)
	bad(40, 1, 0, 0, 16, 1)  // -overhead-scale 0
	bad(40, 1, 4, -1, 16, 1) // negative host worker count
	bad(40, 1, 4, 0, 1, 1)   // single-processor directory machine
	bad(40, 1, 4, 0, 0, 1)
	bad(40, 1, 4, 0, 16, 0) // -ft-shards 0: no shadow memory at all
	bad(40, 1, 4, 0, 16, -4)
}
