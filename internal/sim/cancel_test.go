package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"cord/internal/memsys"
	"cord/internal/record"
)

// spinProg is a program that would run for a very long time: each thread
// performs millions of reads. Only cancellation (or the op budget) stops it.
func spinProg(threads, iters int) Program {
	return Program{
		Name:    "spin",
		Threads: threads,
		Body: func(t int, env *Env) {
			a := memsys.Addr(uint64(t) * memsys.LineBytes)
			for i := 0; i < iters; i++ {
				env.Read(a)
			}
		},
	}
}

// TestCancelStopsRun: closing Config.Cancel mid-run makes Run return
// ErrCanceled promptly instead of executing the program to completion.
func TestCancelStopsRun(t *testing.T) {
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := New(Config{Seed: 1, Cancel: cancel}, spinProg(4, 10_000_000)).Run()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("Run returned %v, want ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not stop after cancellation")
	}
}

// TestCancelBeforeRun: a pre-canceled run aborts without executing anything.
func TestCancelBeforeRun(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	_, err := New(Config{Seed: 1, Cancel: cancel}, spinProg(2, 10_000_000)).Run()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run returned %v, want ErrCanceled", err)
	}
}

// TestCancelLeaksNoGoroutines: after a canceled run every workload goroutine
// must have exited — abortAll unwinds parked threads even on the cancel path.
func TestCancelLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		cancel := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = New(Config{Seed: uint64(i + 1), Cancel: cancel}, spinProg(4, 10_000_000)).Run()
		}()
		time.Sleep(time.Millisecond)
		close(cancel)
		<-done
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after canceled runs", before, runtime.NumGoroutine())
}

// spinEpochs is a log-driven schedule for spinProg: one epoch per thread,
// each claiming the thread's full instruction count, serialized in thread
// order — enough work that a replay is mid-epoch whenever cancellation hits.
func spinEpochs(threads, iters int) []record.Epoch {
	epochs := make([]record.Epoch, threads)
	for t := range epochs {
		epochs[t] = record.Epoch{Time: uint64(t + 1), Thread: t, Instr: uint32(iters), Index: t}
	}
	return epochs
}

// TestCancelDuringReplay: cancelling a replay mid-epoch is a cancellation,
// not a divergence — the log was never contradicted, the run was abandoned.
// cordd relies on this distinction: client disconnects must map to the
// context error, never to a "replay diverged" verdict.
func TestCancelDuringReplay(t *testing.T) {
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := New(Config{
			Seed: 1, Cancel: cancel, ReplayEpochs: spinEpochs(4, 10_000_000),
		}, spinProg(4, 10_000_000)).Run()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("replay returned %v, want ErrCanceled", err)
		}
		if errors.Is(err, ErrReplayDivergence) {
			t.Fatalf("cancellation misclassified as divergence: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("replay did not stop after cancellation")
	}
}

// TestCancelBeforeReplay: a pre-canceled replay aborts before following any
// epoch.
func TestCancelBeforeReplay(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	_, err := New(Config{
		Seed: 1, Cancel: cancel, ReplayEpochs: spinEpochs(2, 10_000_000),
	}, spinProg(2, 10_000_000)).Run()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("replay returned %v, want ErrCanceled", err)
	}
}

// TestCancelDuringReplayLeaksNoGoroutines: the replay scheduler's parked
// threads must unwind on cancellation exactly like the jitter scheduler's.
func TestCancelDuringReplayLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		cancel := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = New(Config{
				Seed: uint64(i + 1), Cancel: cancel, ReplayEpochs: spinEpochs(4, 10_000_000),
			}, spinProg(4, 10_000_000)).Run()
		}()
		time.Sleep(time.Millisecond)
		close(cancel)
		<-done
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after canceled replays", before, runtime.NumGoroutine())
}

// TestNilCancelUnaffected: the default configuration (no Cancel channel) is
// untouched by the cancellation path — the run completes normally.
func TestNilCancelUnaffected(t *testing.T) {
	res, err := New(Config{Seed: 1}, spinProg(2, 100)).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ops != 200 {
		t.Fatalf("ops = %d, want 200", res.Ops)
	}
}
