package core

import (
	"testing"

	"cord/internal/cache"
	"cord/internal/memsys"
	"cord/internal/trace"
)

// feeder drives a detector with a hand-built access sequence.
type feeder struct {
	d    *Detector
	seq  uint64
	inst map[int]uint64
}

func newFeeder(d *Detector) *feeder { return &feeder{d: d, inst: map[int]uint64{}} }

func (f *feeder) access(thread int, addr memsys.Addr, kind trace.Kind, class trace.Class) trace.Report {
	a := trace.Access{
		Seq: f.seq, Thread: thread, Proc: thread,
		Addr: addr, Kind: kind, Class: class, Instr: f.inst[thread],
	}
	f.seq++
	f.inst[thread]++
	return f.d.OnAccess(a)
}

func (f *feeder) read(t int, a memsys.Addr) trace.Report {
	return f.access(t, a, trace.Read, trace.Data)
}
func (f *feeder) write(t int, a memsys.Addr) trace.Report {
	return f.access(t, a, trace.Write, trace.Data)
}
func (f *feeder) syncRead(t int, a memsys.Addr) trace.Report {
	return f.access(t, a, trace.Read, trace.Sync)
}
func (f *feeder) syncWrite(t int, a memsys.Addr) trace.Report {
	return f.access(t, a, trace.Write, trace.Sync)
}

// Distinct lines for the test variables.
const (
	varX = memsys.Addr(0x1000)
	varY = memsys.Addr(0x2000)
	varZ = memsys.Addr(0x3000)
	varL = memsys.Addr(0x4000)
	varQ = memsys.Addr(0x5000)
)

func newTest(d int) (*Detector, *feeder) {
	det := New(Config{Threads: 4, Procs: 4, D: d, Record: true})
	return det, newFeeder(det)
}

// TestSimpleRaceDetected: an unsynchronized write/read pair on X is a data
// race.
func TestSimpleRaceDetected(t *testing.T) {
	det, f := newTest(1)
	f.write(0, varX)
	rep := f.read(1, varX)
	if len(rep.Races) != 1 {
		t.Fatalf("got %d races, want 1", len(rep.Races))
	}
	r := rep.Races[0]
	if r.Addr != varX || r.First.Thread != 0 || r.Second.Thread != 1 {
		t.Fatalf("unexpected race %+v", r)
	}
	if det.RaceCount() != 1 {
		t.Fatalf("race count %d", det.RaceCount())
	}
}

// TestSynchronizedNotRace: the Figure 1 pattern — WR X, release L, acquire
// L, RD X — must not be reported.
func TestSynchronizedNotRace(t *testing.T) {
	for _, d := range []int{1, 4, 16, 256} {
		det, f := newTest(d)
		f.write(0, varX)
		f.syncWrite(0, varL) // unlock: release
		f.syncRead(1, varL)  // acquire
		rep := f.read(1, varX)
		if len(rep.Races) != 0 {
			t.Fatalf("D=%d: synchronized access reported as race: %+v", d, rep.Races)
		}
		if det.RaceCount() != 0 {
			t.Fatalf("D=%d: race count %d, want 0", d, det.RaceCount())
		}
	}
}

// TestFig4SyncWriteIncrement: without the post-sync-write clock increment
// the race on X would be missed; with it (as implemented) it is found.
func TestFig4SyncWriteIncrement(t *testing.T) {
	det, f := newTest(1)
	f.syncWrite(0, varL) // thread 0 writes sync var L, clock increments after
	f.syncRead(1, varL)  // thread 1 reads L, clock leaps past L's write ts
	f.write(0, varX)     // thread 0 writes X *after* its sync write
	rep := f.read(1, varX)
	if len(rep.Races) != 1 {
		t.Fatalf("race on X not detected: %d races (clocks t0=%d t1=%d)",
			det.RaceCount(), det.Clock(0), det.Clock(1))
	}
	_ = rep
}

// TestFig3OverlappingRaces: the race on X updates thread B's clock, hiding
// the race on Y — the documented scalar-clock behaviour (clock updates on
// all races).
func TestFig3OverlappingRaces(t *testing.T) {
	det, f := newTest(1)
	f.write(0, varY) // A: WR Y at clk 1
	f.write(0, varX) // A: WR X at clk 1
	f.read(1, varX)  // B: RD X -> race, B's clock updated to 2
	rep := f.read(1, varY)
	if len(rep.Races) != 0 {
		t.Fatalf("race on Y should be hidden by the clock update, got %+v", rep.Races)
	}
	if det.RaceCount() != 1 {
		t.Fatalf("want exactly the X race, got %d", det.RaceCount())
	}
}

// TestFig3WithD: with D > 1 the overlapping race on Y is *detected*,
// because the +1 clock update from the X race does not count as
// synchronization (§2.6).
func TestFig3WithD(t *testing.T) {
	det, f := newTest(4)
	f.write(0, varY)
	f.write(0, varX)
	f.read(1, varX) // race; clock update +1 only
	rep := f.read(1, varY)
	if len(rep.Races) != 1 {
		t.Fatalf("D=4 should still see the race on Y, got %d (total %d)", len(rep.Races), det.RaceCount())
	}
}

// TestFig8SymmetricChurn: with D=1, symmetric sync-write churn hides races
// on older variables; a larger D recovers them.
func fig8(d int) int {
	det, f := newTest(d)
	// Both threads write private sync vars at the same rate (clock churn),
	// around a pair of data conflicts.
	f.write(0, varQ)        // A: WR Q early
	f.syncWrite(0, varL)    // A's own sync churn (+1 each)
	f.syncWrite(1, varL+64) // B's own sync churn on a different variable
	f.syncWrite(0, varL)    //
	f.syncWrite(1, varL+64) //
	f.write(0, varX)        // A: WR X
	f.read(1, varQ)         // B: RD Q — distance 4 in B's clock
	f.read(1, varX)         // B: RD X — nearly simultaneous
	return det.RaceCount()
}

func TestFig8SymmetricChurn(t *testing.T) {
	if n := fig8(1); n != 1 {
		t.Fatalf("D=1: want only the nearly-simultaneous race, got %d", n)
	}
	if n := fig8(16); n != 2 {
		t.Fatalf("D=16: want both races, got %d", n)
	}
}

// TestNoRaceOnSameThread: repeated accesses by one thread never race.
func TestNoRaceOnSameThread(t *testing.T) {
	det, f := newTest(16)
	for i := 0; i < 50; i++ {
		f.write(0, varX)
		f.read(0, varX)
		f.syncWrite(0, varL)
	}
	if det.RaceCount() != 0 {
		t.Fatalf("self races reported: %d", det.RaceCount())
	}
}

// TestMemoryTimestampOrdering: the Figure 6 scenario — synchronization
// variable displaced to memory must still order the acquirer, and the false
// race on X must be suppressed.
func TestMemoryTimestampOrdering(t *testing.T) {
	// Tiny cache (1 set x 2 ways = 2 lines) forces displacement.
	det := New(Config{
		Threads: 2, Procs: 2, D: 1, Record: true,
		Geometry: cacheGeom(2),
	})
	f := newFeeder(det)
	f.write(0, varX)     // A: WR X
	f.syncWrite(0, varL) // A: WR L (release)
	// Displace L from A's cache by touching two more lines.
	f.write(0, varY)
	f.write(0, varZ)
	// B reads L from memory: must order after the memory write timestamp.
	before := det.Clock(1)
	f.syncRead(1, varL)
	if det.Clock(1) == before {
		t.Fatal("acquire through memory did not update the clock")
	}
	// B reads X: A still caches X? X was also displaced (2-line cache), so
	// this also goes through memory — either way no *reported* race.
	rep := f.read(1, varX)
	for _, r := range rep.Races {
		t.Fatalf("race reported through memory path: %+v", r)
	}
}

func cacheGeom(lines int) cache.Config {
	return cache.Config{SizeBytes: lines * 64, Ways: lines}
}

// TestOrderLogGrows: clock changes append entries; threads flush final
// epochs.
func TestOrderLogGrows(t *testing.T) {
	det, f := newTest(16)
	f.write(0, varX)
	f.read(1, varX) // race -> clock change -> log entry
	det.ThreadDone(0, f.inst[0])
	det.ThreadDone(1, f.inst[1])
	if det.Log().Len() < 3 {
		t.Fatalf("log has %d entries, want >= 3", det.Log().Len())
	}
}

// TestMigrationBumpPreventsSelfRace: after migration, a thread meeting its
// own timestamps on the old processor must not report a race (§2.7.4).
func TestMigrationBumpPreventsSelfRace(t *testing.T) {
	det := New(Config{Threads: 2, Procs: 2, D: 4, Record: true})
	f := newFeeder(det)
	f.write(0, varX) // stamped on proc 0
	det.Migrate(0, 1, f.inst[0])
	// Thread 0 now runs on proc 1 and touches X again: the fetch snoops
	// proc 0's cache, which holds thread 0's own old write timestamp.
	a := trace.Access{Seq: f.seq, Thread: 0, Proc: 1, Addr: varX, Kind: trace.Write, Class: trace.Data, Instr: f.inst[0]}
	f.seq++
	f.inst[0]++
	rep := det.OnAccess(a)
	if len(rep.Races) != 0 {
		t.Fatalf("self race after migration: %+v", rep.Races)
	}
}
