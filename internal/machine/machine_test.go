package machine

import (
	"testing"

	"cord/internal/memsys"
	"cord/internal/trace"
)

func acc(proc int, addr memsys.Addr, kind trace.Kind) trace.Access {
	return trace.Access{Proc: proc, Thread: proc, Addr: addr, Kind: kind, Class: trace.Data}
}

func TestColdMissCostsMemoryLatency(t *testing.T) {
	m := New(DefaultConfig())
	cost := m.AccessCost(0, 0, acc(0, 0x1000, trace.Read), trace.Report{})
	// Address bus + 600-cycle memory + data bus: comfortably over 600.
	if cost < 600 {
		t.Fatalf("cold miss cost = %d, want >= 600", cost)
	}
	st := m.Stats()
	if st.Misses != 1 || st.MemFetches != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHitIsCheap(t *testing.T) {
	m := New(DefaultConfig())
	m.AccessCost(0, 0, acc(0, 0x1000, trace.Read), trace.Report{})
	cost := m.AccessCost(100000, 0, acc(0, 0x1000, trace.Read), trace.Report{})
	if cost != m.cfg.Timing.L1HitCycles {
		t.Fatalf("L1 hit cost = %d", cost)
	}
}

func TestCacheToCacheCheaperThanMemory(t *testing.T) {
	m := New(DefaultConfig())
	m.AccessCost(0, 0, acc(0, 0x1000, trace.Read), trace.Report{})
	c2c := m.AccessCost(100000, 1, acc(1, 0x1000, trace.Read), trace.Report{})
	mem := m.AccessCost(200000, 2, acc(2, 0x9000, trace.Read), trace.Report{})
	if c2c >= mem {
		t.Fatalf("cache-to-cache (%d) should be cheaper than memory (%d)", c2c, mem)
	}
	if st := m.Stats(); st.CacheToCache != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteInvalidatesRemoteCopies(t *testing.T) {
	m := New(DefaultConfig())
	m.AccessCost(0, 0, acc(0, 0x1000, trace.Read), trace.Report{})
	m.AccessCost(10000, 1, acc(1, 0x1000, trace.Read), trace.Report{})
	// Proc 1 writes: proc 0's copy must be invalidated -> proc 0 misses.
	m.AccessCost(20000, 1, acc(1, 0x1000, trace.Write), trace.Report{})
	cost := m.AccessCost(300000, 0, acc(0, 0x1000, trace.Read), trace.Report{})
	if cost < m.cfg.Timing.CacheToCacheCycles {
		t.Fatalf("read after remote write cost = %d, expected a miss", cost)
	}
}

func TestUpgradeCountsOnSharedWriteHit(t *testing.T) {
	m := New(DefaultConfig())
	m.AccessCost(0, 0, acc(0, 0x1000, trace.Read), trace.Report{})
	m.AccessCost(10000, 1, acc(1, 0x1000, trace.Read), trace.Report{})
	m.AccessCost(20000, 0, acc(0, 0x1000, trace.Write), trace.Report{}) // hit, shared -> upgrade
	if st := m.Stats(); st.Upgrades != 1 {
		t.Fatalf("upgrades = %d", st.Upgrades)
	}
}

// TestDirtyInvalidationBillsWriteBack: a write that invalidates a remote
// *dirty* copy must put that copy's data on the data bus (cache-to-cache
// supply + memory write-back), not silently drop it.
func TestDirtyInvalidationBillsWriteBack(t *testing.T) {
	m := New(DefaultConfig())
	// Proc 1 writes a line cold: it is now dirty in proc 1's cache.
	m.AccessCost(0, 1, acc(1, 0x1000, trace.Write), trace.Report{})
	before := m.Stats()
	// Proc 0 writes the same line: c2c fill plus the invalidated dirty
	// copy's write-back — two data-bus transactions.
	m.AccessCost(100000, 0, acc(0, 0x1000, trace.Write), trace.Report{})
	st := m.Stats()
	if st.DirtyInvalidations != 1 {
		t.Fatalf("dirty invalidations = %d, want 1", st.DirtyInvalidations)
	}
	if got := st.DataBusTrans - before.DataBusTrans; got != 2 {
		t.Fatalf("data bus transactions grew by %d, want 2 (fill + write-back)", got)
	}
	// Proc 0 now holds the only copy: a further write is silent.
	m.AccessCost(200000, 0, acc(0, 0x1000, trace.Write), trace.Report{})
	if st := m.Stats(); st.DirtyInvalidations != 1 {
		t.Fatalf("exclusive rewrite billed a dirty invalidation: %+v", st)
	}
}

// TestCleanInvalidationIsSilent: invalidating a remote clean copy costs no
// data-bus transfer — only dirty copies have data to flush.
func TestCleanInvalidationIsSilent(t *testing.T) {
	m := New(DefaultConfig())
	m.AccessCost(0, 0, acc(0, 0x1000, trace.Read), trace.Report{})
	m.AccessCost(10000, 1, acc(1, 0x1000, trace.Read), trace.Report{}) // clean in both
	before := m.Stats()
	m.AccessCost(20000, 0, acc(0, 0x1000, trace.Write), trace.Report{}) // upgrade
	st := m.Stats()
	if st.DirtyInvalidations != 0 {
		t.Fatalf("clean invalidation counted as dirty: %+v", st)
	}
	if st.DataBusTrans != before.DataBusTrans {
		t.Fatalf("clean invalidation used the data bus: %+v", st)
	}
}

func TestCordTrafficOccupiesAddrBus(t *testing.T) {
	m := New(DefaultConfig())
	m.AccessCost(0, 0, acc(0, 0x1000, trace.Read), trace.Report{})
	before := m.Stats().AddrBusTrans
	m.AccessCost(10000, 0, acc(0, 0x1000, trace.Read), trace.Report{CheckRequests: 2, MemTsUpdates: 1})
	after := m.Stats().AddrBusTrans
	if after-before != 3 {
		t.Fatalf("addr bus transactions grew by %d, want 3", after-before)
	}
}

func TestCheckStallOnlyUnderContention(t *testing.T) {
	m := New(DefaultConfig())
	m.AccessCost(0, 0, acc(0, 0x1000, trace.Read), trace.Report{})
	// Single check on an idle bus: no retirement stall.
	m.AccessCost(10000, 0, acc(0, 0x1000, trace.Read), trace.Report{CheckRequests: 1})
	if st := m.Stats(); st.CheckStalls != 0 {
		t.Fatalf("idle-bus check stalled: %+v", st)
	}
	// A burst of checks at one instant must eventually exceed the retire
	// window and stall.
	m.AccessCost(20000, 0, acc(0, 0x1000, trace.Read), trace.Report{CheckRequests: 40})
	if st := m.Stats(); st.CheckStalls == 0 {
		t.Fatal("burst of checks never stalled")
	}
}

func TestComputeCost(t *testing.T) {
	m := New(DefaultConfig())
	if m.ComputeCost(0, 17) != 17 {
		t.Fatal("compute cost not 1 cycle per unit")
	}
}
