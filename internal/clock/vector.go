package clock

import (
	"fmt"
	"strings"
)

// Vector is a classical logical vector clock (Fidge/Mattern) with one
// component per thread. The Ideal and vector-clock baseline detectors use
// full-width (uint64) components; the hardware-cost arithmetic in the public
// API models the 16-bit truncated variant the paper prices out (§2.3).
//
// A Vector's length is fixed at creation. Vectors are value-ish: methods that
// mutate do so in place on the receiver; Clone copies.
type Vector []uint64

// NewVector returns an all-zero vector clock for n threads.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Tick increments thread t's own component.
func (v Vector) Tick(t int) { v[t]++ }

// Join folds o into v componentwise (v = max(v, o)).
func (v Vector) Join(o Vector) {
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// Order is the result of comparing two vector timestamps.
type Order int

// The four possible outcomes of a vector comparison.
const (
	Equal Order = iota
	Before
	After
	Concurrent
)

// String names the order for diagnostics.
func (o Order) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return "concurrent"
	}
}

// Compare returns the happens-before relation of v versus o: Before means
// v → o, After means o → v.
func (v Vector) Compare(o Vector) Order {
	less, greater := false, false
	for i := range v {
		switch {
		case v[i] < o[i]:
			less = true
		case v[i] > o[i]:
			greater = true
		}
		if less && greater {
			return Concurrent
		}
	}
	switch {
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// HappensBefore reports v → o (strictly).
func (v Vector) HappensBefore(o Vector) bool { return v.Compare(o) == Before }

// ConcurrentWith reports that neither v → o nor o → v.
func (v Vector) ConcurrentWith(o Vector) bool { return v.Compare(o) == Concurrent }

// DominatesOrEqual reports o <= v componentwise, i.e. everything o has seen,
// v has seen too.
func (v Vector) DominatesOrEqual(o Vector) bool {
	c := v.Compare(o)
	return c == After || c == Equal
}

// String renders the vector compactly.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte(']')
	return b.String()
}
