package replay

import (
	"testing"

	"cord/internal/baseline"
	"cord/internal/core"
	"cord/internal/progen"
	"cord/internal/sim"
	"cord/internal/trace"
	"cord/internal/workload"
)

// TestMigrationNoFalsePositives: §2.7.4 — a migrating thread meets its own
// stale timestamps on its previous processor; the D bump on migration must
// keep every configuration free of false reports on race-free programs.
func TestMigrationNoFalsePositives(t *testing.T) {
	for _, every := range []uint64{3, 11} {
		for seed := uint64(0); seed < 6; seed++ {
			p := progen.New(seed+40, progen.DefaultConfig())
			ideal := baseline.NewIdeal(4)
			dets := []*core.Detector{
				core.New(core.Config{Threads: 4, D: 4}),
				core.New(core.Config{Threads: 4, D: 16}),
			}
			obs := []trace.Observer{ideal}
			for _, d := range dets {
				obs = append(obs, d)
			}
			res, err := sim.New(sim.Config{
				Seed: seed, Jitter: 7, MigrateEvery: every,
				Observers: obs,
			}, p.Prog).Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Hung {
				t.Fatalf("seed %d hung", seed)
			}
			if ideal.RaceCount() != 0 {
				t.Fatalf("oracle flagged a race-free program under migration")
			}
			for _, d := range dets {
				if d.RaceCount() != 0 {
					t.Fatalf("seed %d every %d: %s reported %d races under migration",
						seed, every, d.Name(), d.RaceCount())
				}
			}
		}
	}
}

// TestMigrationWithInjectionStillConfirmed: injected races found under
// migration remain oracle-confirmed by address and kind (thread attribution
// of the first access is heuristic after migration, so only the report's
// second side is checked here).
func TestMigrationWithInjectionStillConfirmed(t *testing.T) {
	app, err := workload.ByName("raytrace")
	if err != nil {
		t.Fatal(err)
	}
	ideal := baseline.NewIdeal(4)
	det := core.New(core.Config{Threads: 4, D: 16})
	res, err := sim.New(sim.Config{
		Seed: 6, Jitter: 7, MigrateEvery: 9, InjectSkip: 4,
		Observers: []trace.Observer{ideal, det},
	}, app.Build(1, 4)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hung {
		t.Skip("injection hung this seed")
	}
	// The racy second accesses CORD reports must be racy per the oracle.
	racySeconds := map[uint64]bool{}
	for _, r := range ideal.Races() {
		racySeconds[r.Second.Seq] = true
	}
	for _, r := range det.Races() {
		if !racySeconds[r.Second.Seq] {
			t.Fatalf("report on a non-racy access under migration: %+v", r)
		}
	}
}

// TestMigrationReplayExact: migrations do not break replay (they are clock
// events, fully captured in the log; processor placement does not affect
// program semantics).
func TestMigrationReplayExact(t *testing.T) {
	app, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	det := core.New(core.Config{Threads: 4, D: 16, Record: true})
	rec, err := sim.New(sim.Config{
		Seed: 4, Jitter: 7, MigrateEvery: 5,
		Observers: []trace.Observer{det},
	}, app.Build(1, 4)).Run()
	if err != nil {
		t.Fatal(err)
	}
	epochs, err := det.Log().Schedule(4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.New(sim.Config{
		Seed: 4, ReplayEpochs: epochs, MigrateEvery: 5,
	}, app.Build(1, 4)).Run()
	if err != nil {
		t.Fatal(err)
	}
	ok, why := compare(rec, rep)
	if !ok {
		t.Fatalf("replay under migration: %s", why)
	}
}
