// Package sim is the execution engine of the simulated chip-multiprocessor.
// Workload threads are Go functions programmed against the Env API; the
// engine runs them as coroutines under a deterministic scheduler, serializes
// every shared-memory access into a global order, delivers the access stream
// to the attached detectors, advances per-thread virtual time through a
// pluggable cost model, and implements the paper's methodology hooks:
// sync-removal fault injection (§3.4), thread migration (§2.7.4), and
// log-driven deterministic replay (§2.7.1).
//
// An execution is a pure function of its Config: the Seed drives all
// scheduling jitter, workloads communicate only through the simulated
// memory, and nothing reads the wall clock or global randomness, so the
// same Config always reproduces the same interleaving, access stream, and
// Result. Each Engine is also fully self-contained — no package-level
// mutable state — so any number of engines can run concurrently on host
// goroutines. Together these two properties let the experiment package
// decompose a campaign into independent runs identified by their seeds and
// fan them out across workers without affecting results: seeds, not host
// execution order, define what happens.
package sim

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"cord/internal/memsys"
	"cord/internal/record"
	"cord/internal/trace"
)

// Program is a runnable multi-threaded workload. Body is invoked once per
// thread; all cross-thread communication must go through the Env (the
// simulated shared memory), never through shared Go state, so that an
// execution is fully determined by the engine's scheduling decisions.
type Program struct {
	Name    string
	Threads int
	// Init pre-loads memory values before any thread starts.
	Init func(mem *memsys.Memory)
	// Body is the per-thread code.
	Body func(t int, env *Env)
}

// Config controls one execution.
type Config struct {
	// Procs is the number of processors (default 4). Threads beyond Procs
	// share processors round-robin.
	Procs int
	// Seed drives all scheduling jitter; identical seeds reproduce
	// identical executions.
	Seed uint64
	// Jitter is the maximum random extra cost (in cycles) added to each
	// operation, to vary interleavings across seeds. Zero disables it.
	Jitter uint64
	// Cost prices operations; nil selects a SimpleCost model.
	Cost CostModel
	// Observers receive the access stream in global order.
	Observers []trace.Observer
	// Primary, when non-nil, is the observer whose Reports feed the cost
	// model (the CORD detector in performance runs). It must also appear
	// in Observers.
	Primary trace.Observer
	// InjectSkip, when non-zero, removes the InjectSkip-th dynamic
	// synchronization instance (1-based) in global execution order: a lock
	// acquire together with its matching release, or a single flag wait
	// (§3.4).
	InjectSkip uint64
	// InjectThread/InjectThreadNth name the injected instance in an
	// interleaving-independent way: remove thread InjectThread's
	// InjectThreadNth-th own sync instance. Used by replay, which must
	// remove the same instance the recorded run removed even though the
	// global interleaving of concurrent epochs may differ. Active when
	// InjectThreadNth is non-zero; InjectSkip is ignored then.
	InjectThread    int
	InjectThreadNth uint64
	// MigrateEvery, when non-zero, migrates the issuing thread to the next
	// processor after every MigrateEvery-th dynamic sync instance.
	MigrateEvery uint64
	// ReplayEpochs, when non-nil, switches the scheduler to log-driven
	// replay: epochs run in order, each granting its thread a quota of
	// committed instructions.
	ReplayEpochs []record.Epoch
	// ReplayFeed, when non-nil, also selects replay mode but sources the
	// epoch schedule incrementally: the engine consumes epochs as a producer
	// appends them and blocks — still honoring Cancel — when it runs ahead
	// of the feed. Exactly one of ReplayEpochs and ReplayFeed should be set.
	ReplayFeed *ReplayFeed
	// OnEpoch, when non-nil in replay mode, is called on the engine
	// goroutine each time the scheduler advances into epoch idx (0-based;
	// the first call is OnEpoch(0) before any operation runs, and a final
	// call with idx == total epochs marks the end of the schedule). It is
	// the synchronization point online detection uses for duty-cycling and
	// race snapshots: it runs on the same goroutine that delivers accesses
	// to the Observers, so callbacks may toggle observer state without
	// locking.
	OnEpoch func(idx int)
	// Cancel, when non-nil, aborts the run once the channel is closed: the
	// engine unwinds every thread and Run returns ErrCanceled. Wire a
	// context's Done() channel here to propagate request cancellation into
	// a simulation (the cordd service does exactly that). Cancellation is
	// checked between scheduled operations, so a run stops promptly but
	// never mid-access.
	Cancel <-chan struct{}
	// MaxOps aborts runaway executions (default 50M committed ops).
	MaxOps uint64
	// TraceReads, when set, receives every read's value (diagnostics).
	TraceReads func(thread int, addr memsys.Addr, value uint64)
}

// Result summarizes one execution. The json tags are the stable wire
// encoding used by exported run artifacts; the memory image is deliberately
// excluded (it is not a metric, and footprints vary by workload scale).
type Result struct {
	// Cycles is the finishing virtual time (max over threads).
	Cycles uint64 `json:"cycles"`
	// Ops is the total committed instruction count.
	Ops uint64 `json:"ops"`
	// Accesses is the number of shared-memory access events delivered.
	Accesses uint64 `json:"accesses"`
	// SyncInstances is the number of countable dynamic sync instances
	// (lock acquires and flag waits, §3.4) that occurred.
	SyncInstances uint64 `json:"sync_instances"`
	// InjectedThread and InjectedThreadNth identify, per-thread, the sync
	// instance an injection removed (InjectedThread is -1 when nothing
	// fired). Replay passes these back as InjectThread/InjectThreadNth.
	InjectedThread    int    `json:"injected_thread"`
	InjectedThreadNth uint64 `json:"injected_thread_nth"`
	// ReadHash fingerprints each thread's sequence of read values; replay
	// must reproduce it exactly.
	ReadHash []uint64 `json:"read_hash"`
	// ThreadInstr is each thread's committed instruction count.
	ThreadInstr []uint64 `json:"thread_instr"`
	// Mem is the final memory image.
	Mem *memsys.Memory `json:"-"`
	// Hung reports that the execution deadlocked (possible when injection
	// removes a barrier-internal primitive); partial results are valid.
	Hung bool `json:"hung"`
}

// ErrReplayDivergence reports that a replayed execution could not follow the
// log (the log is inconsistent with the program or injection plan).
var ErrReplayDivergence = errors.New("sim: replay diverged from log")

// ErrCanceled reports that a run was abandoned because its Config.Cancel
// channel closed before the program finished. The partial execution is
// discarded; no Result is returned.
var ErrCanceled = errors.New("sim: run canceled")

type threadState int

const (
	stReady threadState = iota
	stBlocked
	stDone
)

type reqKind int

const (
	reqNone reqKind = iota
	reqRead
	reqWrite
	reqTAS
	reqCompute
	reqBlock
	reqLockEnter
	reqUnlockEnter
	reqFlagWaitEnter
)

type request struct {
	kind  reqKind
	addr  memsys.Addr
	value uint64
	class trace.Class
	n     uint64
	micro bool // sub-instruction access: commits no instruction
}

type response struct {
	value uint64
	skip  bool
	abort bool
}

type threadCtx struct {
	id     int
	proc   int
	vtime  uint64
	instr  uint64 // committed instructions
	state  threadState
	block  memsys.Addr
	req    request
	resume chan response
	hash   uint64 // FNV-1a over read values
	eng    *Engine
}

type threadEvent struct {
	t   *threadCtx
	don bool
	err error
}

type lockKey struct {
	thread int
	addr   memsys.Addr
}

// Engine executes one Program under one Config. An Engine is single-use.
type Engine struct {
	cfg         Config
	prog        Program
	mem         *memsys.Memory
	threads     []*threadCtx
	events      chan threadEvent
	rng         *rand.Rand
	seq         uint64
	ops         uint64
	syncN       uint64
	threadSyncN []uint64
	injThread   int
	injNth      uint64
	skipped     map[lockKey]int // lock pairs removed by injection (count, to nest)
	primIdx     int

	// replay state
	replay       bool
	epochs       []record.Epoch
	epochIdx     int
	epochRun     uint32 // instructions committed in the current epoch
	epochFresh   bool   // epoch just began: drain the thread's micro-ops first
	replayErr    error  // sticky divergence detected while charging quota
	feed         *ReplayFeed
	feedRead     int  // epochs consumed from the feed into e.epochs
	feedCanceled bool // Cancel fired while waiting on the feed

	lastAccess trace.Access
}

const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211

// New builds an engine for one run.
func New(cfg Config, prog Program) *Engine {
	if cfg.Procs <= 0 {
		cfg.Procs = 4
	}
	if cfg.MaxOps == 0 {
		cfg.MaxOps = 50_000_000
	}
	if cfg.Cost == nil {
		cfg.Cost = SimpleCost{}
	}
	e := &Engine{
		cfg:         cfg,
		prog:        prog,
		mem:         memsys.NewMemory(),
		events:      make(chan threadEvent),
		rng:         rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		skipped:     make(map[lockKey]int),
		primIdx:     -1,
		threadSyncN: make([]uint64, prog.Threads),
		injThread:   -1,
		replay:      cfg.ReplayEpochs != nil || cfg.ReplayFeed != nil,
		epochs:      cfg.ReplayEpochs,
		feed:        cfg.ReplayFeed,
		epochFresh:  true,
	}
	for i, o := range cfg.Observers {
		if o == cfg.Primary {
			e.primIdx = i
		}
	}
	for t := 0; t < prog.Threads; t++ {
		e.threads = append(e.threads, &threadCtx{
			id:     t,
			proc:   t % cfg.Procs,
			resume: make(chan response),
			hash:   fnvOffset,
			eng:    e,
		})
	}
	return e
}

// Run executes the program to completion (or deadlock) and returns the
// result. It is not safe to call twice.
func (e *Engine) Run() (Result, error) {
	if e.prog.Init != nil {
		e.prog.Init(e.mem)
	}
	for _, t := range e.threads {
		t := t
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if r == errAborted {
						e.events <- threadEvent{t: t, don: true}
						return
					}
					e.events <- threadEvent{t: t, don: true, err: fmt.Errorf("sim: thread %d panicked: %v", t.id, r)}
					return
				}
				e.events <- threadEvent{t: t, don: true}
			}()
			env := &Env{t: t}
			e.prog.Body(t.id, env)
		}()
	}
	// Threads run concurrently only until their first Env call; collect one
	// event (a parked request, or completion) from every thread before
	// entering the deterministic loop.
	parked := 0
	var firstErr error
	for parked < len(e.threads) {
		ev := <-e.events
		if ev.don {
			ev.t.state = stDone
			if ev.err != nil && firstErr == nil {
				firstErr = ev.err
			}
		} else {
			e.absorbBlock(ev.t)
		}
		parked++
	}
	if firstErr != nil {
		e.abortAll()
		return Result{}, firstErr
	}

	if e.replay && e.cfg.OnEpoch != nil {
		e.cfg.OnEpoch(0)
	}
	hung := false
	var runErr error
	for {
		if e.cfg.Cancel != nil {
			select {
			case <-e.cfg.Cancel:
				runErr = fmt.Errorf("%w: %s", ErrCanceled, e.prog.Name)
			default:
			}
			if runErr != nil {
				break
			}
		}
		t := e.pick()
		if t == nil {
			if e.allDone() {
				break
			}
			if e.replay && e.replayRecoverable() {
				continue
			}
			if e.feedCanceled {
				continue // Cancel fired during a feed wait: surface it at the loop top
			}
			hung = true
			break
		}
		if e.ops > e.cfg.MaxOps || e.seq > 8*e.cfg.MaxOps {
			runErr = fmt.Errorf("sim: %s exceeded op budget %d", e.prog.Name, e.cfg.MaxOps)
			break
		}
		var resp response
		if t.req.kind == reqNone {
			// Thread was woken from a block; resume it with no payload.
			resp = response{}
		} else {
			var err error
			resp, err = e.process(t)
			if err == nil && e.replayErr != nil {
				err = e.replayErr
			}
			if err != nil {
				runErr = err
				break
			}
			if t.state == stBlocked {
				// The thread went to sleep; leave it parked on its
				// resume channel until wake() readies it again.
				continue
			}
		}
		t.req.kind = reqNone
		// Resume the thread and wait for its next request or completion.
		t.resume <- resp
		ev := <-e.events
		if ev.don {
			ev.t.state = stDone
			e.finishThread(ev.t)
			if ev.err != nil {
				runErr = ev.err
				break
			}
		} else {
			e.absorbBlock(ev.t)
		}
	}
	e.abortAll()
	if runErr != nil {
		return Result{}, runErr
	}
	for _, o := range e.cfg.Observers {
		o.Finish()
	}
	res := Result{
		Ops:               e.ops,
		Accesses:          e.seq,
		SyncInstances:     e.syncN,
		Mem:               e.mem,
		Hung:              hung,
		InjectedThread:    e.injThread,
		InjectedThreadNth: e.injNth,
		ReadHash:          make([]uint64, 0, len(e.threads)),
		ThreadInstr:       make([]uint64, 0, len(e.threads)),
	}
	for _, t := range e.threads {
		if t.vtime > res.Cycles {
			res.Cycles = t.vtime
		}
		res.ReadHash = append(res.ReadHash, t.hash)
		res.ThreadInstr = append(res.ThreadInstr, t.instr)
	}
	return res, nil
}

func (e *Engine) allDone() bool {
	for _, t := range e.threads {
		if t.state != stDone {
			return false
		}
	}
	return true
}

// abortAll unblocks any parked thread goroutines so they exit.
func (e *Engine) abortAll() {
	for _, t := range e.threads {
		if t.state != stDone {
			t.state = stDone
			t.resume <- response{abort: true}
			<-e.events // the goroutine acknowledges via its done event
		}
	}
}

func (e *Engine) finishThread(t *threadCtx) {
	for _, o := range e.cfg.Observers {
		o.ThreadDone(t.id, t.instr)
	}
}

// pick selects the next thread to run: in normal mode the runnable thread
// with the minimum virtual time (ties by id); in replay mode the thread named
// by the current epoch.
func (e *Engine) pick() *threadCtx {
	if e.replay {
		return e.pickReplay()
	}
	var best *threadCtx
	for _, t := range e.threads {
		if t.state != stReady {
			continue
		}
		if best == nil || t.vtime < best.vtime {
			best = t
		}
	}
	return best
}

// reqWidth is how many instructions the thread's pending request would
// commit: zero for the sub-instruction micro-operations (test-and-set,
// wake-from-block resumption), which the order log cannot see directly.
func reqWidth(r request) uint64 {
	if r.micro {
		return 0
	}
	switch r.kind {
	case reqTAS, reqNone, reqBlock:
		return 0
	case reqCompute:
		return r.n
	default:
		return 1
	}
}

// pickReplay returns the next thread to run under the log's epoch schedule.
//
// Epoch semantics: entry k says "thread T committed Instr instructions at
// logical time Time". Sub-instruction micro-operations (a test-and-set's
// accesses) execute at the *start* of the epoch that follows the clock
// change they caused — so each fresh epoch first drains its thread's
// pending zero-width requests, then runs committed instructions up to the
// quota, then advances. A quota-complete epoch advances without draining:
// trailing micro-ops belong to the thread's next epoch, which is where the
// recorded clock placed them.
func (e *Engine) pickReplay() *threadCtx {
	for {
		if e.epochIdx >= len(e.epochs) {
			if e.pullEpochs() {
				continue
			}
			break
		}
		ep := e.epochs[e.epochIdx]
		t := e.threads[ep.Thread]
		if t.state == stDone {
			// Log promised more than the thread executed (possible only
			// on log/program mismatch); consume the epoch.
			e.advanceEpoch()
			continue
		}
		if e.epochFresh {
			if t.state == stReady && reqWidth(t.req) == 0 {
				return t // drain micro-ops at epoch start
			}
			e.epochFresh = false
		}
		if e.epochRun >= ep.Instr {
			e.advanceEpoch()
			continue
		}
		if t.state == stReady {
			return t
		}
		return nil // blocked mid-epoch: replayRecoverable decides
	}
	// All epochs consumed (and, with a feed, the stream has ended): let any
	// remaining runnable thread finish. A canceled feed wait also lands here
	// with nothing runnable-by-schedule; returning nil then lets the run
	// loop surface ErrCanceled instead of draining extra operations.
	if e.feedCanceled {
		return nil
	}
	for _, t := range e.threads {
		if t.state == stReady {
			return t
		}
	}
	return nil
}

// pullEpochs extends e.epochs from the feed, blocking until the producer
// appends more, closes the feed (returns false), or Cancel fires (returns
// false with feedCanceled set so the run loop reports ErrCanceled rather
// than a hang).
func (e *Engine) pullEpochs() bool {
	if e.feed == nil || e.feedCanceled {
		return false
	}
	for {
		eps, closed, wake := e.feed.take(e.feedRead)
		if len(eps) > 0 {
			// Copy into the engine's own schedule: replayRecoverable swaps
			// and requeues epochs in place, which must never write back into
			// the producer's published slice.
			e.feedRead += len(eps)
			e.epochs = append(e.epochs, eps...)
			return true
		}
		if closed {
			return false
		}
		if e.cfg.Cancel != nil {
			select {
			case <-wake:
			case <-e.cfg.Cancel:
				e.feedCanceled = true
				return false
			}
		} else {
			<-wake
		}
	}
}

func (e *Engine) advanceEpoch() {
	e.epochIdx++
	e.epochRun = 0
	e.epochFresh = true
	if e.cfg.OnEpoch != nil {
		e.cfg.OnEpoch(e.epochIdx)
	}
}

// replayRecoverable handles a blocked designated thread by looking for a
// concurrent (equal-time) epoch whose thread can run first; it reorders the
// two epochs (requeueing the blocked epoch's remaining instruction quota)
// and reports whether progress is possible. Conflicting accesses never share
// a logical time, so this reordering is always legal.
func (e *Engine) replayRecoverable() bool {
	if e.epochIdx >= len(e.epochs) {
		return false
	}
	cur := e.epochs[e.epochIdx]
	for j := e.epochIdx + 1; ; {
		if j >= len(e.epochs) {
			// With an open feed a concurrent equal-time epoch may still be
			// in flight: the stream is sorted by Time, so keep pulling until
			// an epoch beyond cur.Time proves no more can arrive (or the
			// feed closes / the run is canceled). Leave j in place so the
			// freshly pulled epoch is the next one examined.
			if e.pullEpochs() {
				continue
			}
			return false
		}
		if e.epochs[j].Time != cur.Time {
			return false
		}
		t := e.threads[e.epochs[j].Thread]
		if t.state == stReady {
			e.epochs[e.epochIdx].Instr -= e.epochRun
			e.epochs[e.epochIdx], e.epochs[j] = e.epochs[j], e.epochs[e.epochIdx]
			e.epochRun = 0
			e.epochFresh = true
			return true
		}
		j++
	}
}

// process executes one parked request of thread t and returns the response
// to resume it with.
func (e *Engine) process(t *threadCtx) (response, error) {
	req := t.req
	switch req.kind {
	case reqCompute:
		cost := e.cfg.Cost.ComputeCost(t.proc, req.n)
		e.advance(t, cost, req.n)
		return response{}, nil

	case reqRead:
		v := e.mem.Load(req.addr)
		width := uint64(1)
		if req.micro {
			width = 0
		}
		rep := e.deliver(t, req.addr, trace.Read, req.class, uint8(width))
		e.advance(t, e.accessCost(t, rep), width)
		if width > 0 {
			// Only committed reads enter the behaviour fingerprint: the
			// values seen by sub-instruction spin reads vary with the
			// wakeup pattern without affecting program behaviour.
			t.hash = (t.hash ^ (v + 0x9e37)) * fnvPrime
			if e.cfg.TraceReads != nil {
				e.cfg.TraceReads(t.id, req.addr, v)
			}
		}
		return response{value: v}, nil

	case reqWrite:
		e.mem.Store(req.addr, req.value)
		rep := e.deliver(t, req.addr, trace.Write, req.class, 1)
		e.advance(t, e.accessCost(t, rep), 1)
		e.wake(t, req.addr)
		return response{}, nil

	case reqTAS:
		// Atomic test-and-set on a sync word: a sync read, plus a sync
		// write when the word was clear. Sub-instruction micro-op: commits
		// no instructions (Lock owns the accounting).
		old := e.mem.Load(req.addr)
		rep := e.deliver(t, req.addr, trace.Read, trace.Sync, 0)
		cost := e.accessCost(t, rep)
		if old == 0 {
			e.mem.Store(req.addr, req.value)
			rep = e.deliver(t, req.addr, trace.Write, trace.Sync, 0)
			cost += e.accessCost(t, rep)
			e.wake(t, req.addr)
		}
		e.advance(t, cost, 0)
		return response{value: old}, nil

	case reqBlock:
		// Block requests are absorbed at event receipt (absorbBlock), so
		// a parked one reaching process() is a scheduler bug.
		return response{}, fmt.Errorf("sim: thread %d block request reached process", t.id)

	case reqLockEnter:
		skip := e.countSyncInstance(t)
		if skip {
			e.skipped[lockKey{t.id, req.addr}]++
		}
		e.maybeMigrate(t)
		e.advance(t, 0, 1)
		return response{skip: skip}, nil

	case reqUnlockEnter:
		k := lockKey{t.id, req.addr}
		if e.skipped[k] > 0 {
			e.skipped[k]--
			e.advance(t, 0, 1)
			return response{skip: true}, nil
		}
		e.advance(t, 0, 1)
		return response{}, nil

	case reqFlagWaitEnter:
		skip := e.countSyncInstance(t)
		e.maybeMigrate(t)
		e.advance(t, 0, 1)
		return response{skip: skip}, nil
	}
	return response{}, fmt.Errorf("sim: thread %d issued unknown request %d", t.id, req.kind)
}

// countSyncInstance advances the sync-instance counters for one lock-acquire
// or flag-wait and decides whether this is the injected (removed) instance.
func (e *Engine) countSyncInstance(t *threadCtx) bool {
	e.syncN++
	e.threadSyncN[t.id]++
	var skip bool
	if e.cfg.InjectThreadNth != 0 {
		skip = t.id == e.cfg.InjectThread && e.threadSyncN[t.id] == e.cfg.InjectThreadNth
	} else {
		skip = e.syncN == e.cfg.InjectSkip
	}
	if skip {
		e.injThread, e.injNth = t.id, e.threadSyncN[t.id]
	}
	return skip
}

// advance moves t's virtual time and instruction counter, applying jitter,
// and charges replay epoch quota for committed instructions. A request that
// commits more instructions than the current epoch has left (a Compute(n)
// straddling a recorded epoch boundary) can only mean the log disagrees with
// the program: the recorder ends epochs at clock changes, which never occur
// mid-request. Overrunning instructions must not silently migrate into the
// next epoch — that would replay them at the wrong logical time — so the
// overshoot is recorded as a sticky ErrReplayDivergence the run loop
// surfaces.
func (e *Engine) advance(t *threadCtx, cost uint64, instrs uint64) {
	if e.cfg.Jitter > 0 {
		cost += e.rng.Uint64N(e.cfg.Jitter + 1)
	}
	t.vtime += cost
	t.instr += instrs
	e.ops += instrs
	if e.replay && instrs > 0 && e.epochIdx < len(e.epochs) {
		e.epochRun += uint32(instrs)
		if ep := e.epochs[e.epochIdx]; e.epochRun > ep.Instr && e.replayErr == nil {
			e.replayErr = fmt.Errorf("%w: thread %d ran %d instructions in an epoch of %d (log ends mid-request)",
				ErrReplayDivergence, t.id, e.epochRun, ep.Instr)
		}
	}
}

func (e *Engine) accessCost(t *threadCtx, rep trace.Report) uint64 {
	return e.cfg.Cost.AccessCost(t.vtime, t.proc, e.lastAccess, rep)
}

// deliver builds the Access event and feeds it to every observer, returning
// the primary observer's report (or the last one when no primary is set).
func (e *Engine) deliver(t *threadCtx, addr memsys.Addr, kind trace.Kind, class trace.Class, instrs uint8) trace.Report {
	a := trace.Access{
		Seq:    e.seq,
		Thread: t.id,
		Proc:   t.proc,
		Addr:   memsys.WordAlign(addr),
		Kind:   kind,
		Class:  class,
		Instr:  t.instr,
		Instrs: instrs,
	}
	e.seq++
	e.lastAccess = a
	var primary trace.Report
	for i, o := range e.cfg.Observers {
		rep := o.OnAccess(a)
		if i == e.primIdx {
			primary = rep
		}
	}
	return primary
}

// absorbBlock processes a just-received block request immediately: the
// thread's sleep decision is based on a read that no other thread could have
// invalidated (the engine ran nothing between that read and this event), so
// marking it blocked here closes the check-then-block window — a write
// arriving later always finds the thread already in stBlocked and wakes it.
func (e *Engine) absorbBlock(t *threadCtx) {
	if t.req.kind != reqBlock {
		return
	}
	t.state = stBlocked
	t.block = memsys.WordAlign(t.req.addr)
	t.req.kind = reqNone
}

// wake readies every thread blocked on addr; they resume no earlier than the
// writer's current virtual time.
func (e *Engine) wake(w *threadCtx, addr memsys.Addr) {
	addr = memsys.WordAlign(addr)
	for _, t := range e.threads {
		if t.state == stBlocked && t.block == addr {
			t.state = stReady
			if t.vtime < w.vtime {
				t.vtime = w.vtime
			}
		}
	}
}

// DebugState renders each thread's scheduler state — used in hang reports.
func (e *Engine) DebugState() string {
	s := ""
	for _, t := range e.threads {
		s += fmt.Sprintf("T%d state=%d block=%s vtime=%d instr=%d reqKind=%d reqAddr=%s\n",
			t.id, t.state, t.block, t.vtime, t.instr, t.req.kind, t.req.addr)
	}
	return s
}

// maybeMigrate exchanges t's processor with the thread currently occupying
// the next one, on the configured cadence, and notifies the observers
// (§2.7.4). Migration is modeled as a swap so that — as on a real machine —
// no two threads ever run on one processor concurrently: both ends of the
// exchange receive the migration clock bump that "synchronizes" them with
// the timestamps the other thread left behind.
func (e *Engine) maybeMigrate(t *threadCtx) {
	if e.cfg.MigrateEvery == 0 || e.syncN%e.cfg.MigrateEvery != 0 {
		return
	}
	target := (t.proc + 1) % e.cfg.Procs
	var other *threadCtx
	for _, u := range e.threads {
		if u != t && u.proc == target {
			other = u
			break
		}
	}
	if other != nil {
		other.proc = t.proc
	}
	t.proc = target
	for _, o := range e.cfg.Observers {
		o.Migrate(t.id, t.proc, t.instr)
		if other != nil {
			o.Migrate(other.id, other.proc, other.instr)
		}
	}
}
