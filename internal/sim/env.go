package sim

import (
	"errors"

	"cord/internal/memsys"
	"cord/internal/trace"
)

// errAborted is panicked inside a workload goroutine when the engine tears
// the run down early; the goroutine's recover turns it into a clean exit.
var errAborted = errors.New("sim: run aborted")

// Env is a thread's handle to the simulated machine. All methods may only be
// called from within the Program.Body invocation that received the Env, and
// each call is one scheduling point: the engine serializes every call into
// the global execution order.
//
// Instruction accounting (which drives the order log and replay): Read,
// Write and each Lock/Unlock/FlagWait/FlagSet call commit one instruction;
// Compute(n) commits n; TAS and the internal spin reads commit none (they
// are sub-instruction micro-operations of the blocking primitives).
type Env struct {
	t *threadCtx
}

// ThreadID returns the identity of the calling thread.
func (e *Env) ThreadID() int { return e.t.id }

// Proc returns the processor the thread currently runs on.
func (e *Env) Proc() int { return e.t.proc }

func (e *Env) do(r request) response {
	t := e.t
	t.req = r
	t.eng.events <- threadEvent{t: t}
	resp := <-t.resume
	if resp.abort {
		panic(errAborted)
	}
	return resp
}

// Read performs a data read of the word at a and returns its value.
func (e *Env) Read(a memsys.Addr) uint64 {
	return e.do(request{kind: reqRead, addr: a, class: trace.Data}).value
}

// Write performs a data write of v to the word at a.
func (e *Env) Write(a memsys.Addr, v uint64) {
	e.do(request{kind: reqWrite, addr: a, value: v, class: trace.Data})
}

// SyncRead performs a labeled synchronization read (§2.7.3).
func (e *Env) SyncRead(a memsys.Addr) uint64 {
	return e.do(request{kind: reqRead, addr: a, class: trace.Sync}).value
}

// SyncWrite performs a labeled synchronization write.
func (e *Env) SyncWrite(a memsys.Addr, v uint64) {
	e.do(request{kind: reqWrite, addr: a, value: v, class: trace.Sync})
}

// TAS atomically reads the sync word at a and, if it was zero, writes v.
// It returns the old value (zero means the TAS acquired the word). It is the
// micro-operation the Lock primitive is built from.
func (e *Env) TAS(a memsys.Addr, v uint64) uint64 {
	return e.do(request{kind: reqTAS, addr: a, value: v}).value
}

// Compute models n cycles of thread-local computation (n instructions).
func (e *Env) Compute(n int) {
	if n <= 0 {
		return
	}
	e.do(request{kind: reqCompute, n: uint64(n)})
}

// blockOn parks the thread until another thread writes the word at a.
func (e *Env) blockOn(a memsys.Addr) {
	e.do(request{kind: reqBlock, addr: a})
}

// Lock acquires the mutex at word l (a test-and-set spinlock built from
// labeled sync accesses). Each call is one countable dynamic synchronization
// instance for fault injection: when this instance is the injected one, the
// acquire and its matching release are silently removed (§3.4).
func (e *Env) Lock(l memsys.Addr) {
	resp := e.do(request{kind: reqLockEnter, addr: l})
	if resp.skip {
		return
	}
	for e.TAS(l, 1) != 0 {
		e.blockOn(l)
	}
}

// Unlock releases the mutex at word l. If the matching Lock was removed by
// injection, the release is removed too.
func (e *Env) Unlock(l memsys.Addr) {
	resp := e.do(request{kind: reqUnlockEnter, addr: l})
	if resp.skip {
		return
	}
	e.SyncWrite(l, 0)
}

// FlagSet publishes value v to the flag (condition) word at f. Only waits
// are injectable, so FlagSet is an ordinary labeled sync write.
func (e *Env) FlagSet(f memsys.Addr, v uint64) {
	e.SyncWrite(f, v)
}

// FlagWaitAtLeast blocks until the flag word at f holds a value >= v. Each
// call is one countable synchronization instance: the injected instance
// returns immediately without waiting (§3.4). The spin reads are
// sub-instruction micro-operations — the whole wait commits exactly one
// instruction (its enter), so replayed executions need not reproduce the
// wakeup pattern.
func (e *Env) FlagWaitAtLeast(f memsys.Addr, v uint64) {
	resp := e.do(request{kind: reqFlagWaitEnter, addr: f})
	if resp.skip {
		return
	}
	for e.do(request{kind: reqRead, addr: f, class: trace.Sync, micro: true}).value < v {
		e.blockOn(f)
	}
}
