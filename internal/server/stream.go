package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"time"

	"cord/internal/clock"
	"cord/internal/record"
	"cord/internal/sim"
)

// This file implements POST /v1/stream: the streaming order-record ingestion
// session of PROTOCOL.md §4. The request body is one encoded order log
// delivered as arbitrarily sized chunks; entries are decoded incrementally
// (record.StreamDecoder, fixed reusable read buffer) and folded into
// per-thread shard state on the fly — the session's memory cost is constant
// in stream length. At end of stream the server optionally re-executes the
// named run and compares the recorded log against the streamed one by
// content hash, answering with a deterministic StreamResponse summary.
//
// Streams are long-lived, so they do not ride the worker queue: they get
// their own admission slots (Config.MaxStreams), per-session byte/frame
// quotas, and an idle timeout enforced with per-chunk read deadlines.

// errOrderViolation marks a stream whose entries break the order-recording
// invariants of PROTOCOL.md §3 (a clock delta outside the comparison window,
// or an entry naming a thread the session does not have). It is the record
// layer's sentinel: the streaming fold, record.Schedule, and
// record.EpochStream all produce the same typed verdict, and the HTTP layer
// maps it to 422 / code "order_violation" on every path.
var errOrderViolation = record.ErrOrderViolation

// streamShard is one thread's slice of a session's detector state. Shards
// are independent by construction — entry ordering constraints are
// per-thread (PROTOCOL.md §3) — which is what lets concurrent sessions and
// future parallel ingest scale without shared write state.
type streamShard struct {
	started   bool
	lastClock clock.Scalar
	unwrapped uint64

	entries      uint64
	instructions uint64
	firstTime    uint64
}

// ShardSummary is one thread's end-of-stream summary in a StreamResponse.
type ShardSummary struct {
	Thread       int    `json:"thread"`
	Entries      uint64 `json:"entries"`
	Instructions uint64 `json:"instructions"`
	FirstTime    uint64 `json:"first_time"`
	LastTime     uint64 `json:"last_time"`
}

// streamIngest is the per-session ingest state: one shard per declared
// thread plus a running FNV-1a content hash over the entry wire bytes. It is
// the emit target of the incremental decoder; no entry is retained.
type streamIngest struct {
	shards    []streamShard
	hash      uint64 // FNV-1a over each entry's 8 wire bytes
	frames    uint64
	maxFrames uint64
}

const fnvOffset64, fnvPrime64 = 14695981039346656037, 1099511628211

func newStreamIngest(threads int, maxFrames uint64) *streamIngest {
	return &streamIngest{
		shards:    make([]streamShard, threads),
		hash:      fnvOffset64,
		maxFrames: maxFrames,
	}
}

// errStreamQuota marks a stream that exceeded its frame quota; the handler
// maps it to 413 / code "quota_exceeded".
var errStreamQuota = errors.New("server: stream quota exceeded")

// ingest folds one decoded entry into the session state: quota check, shard
// unwrap (the same per-thread clock arithmetic record.Schedule performs, but
// online), and the content hash.
func (g *streamIngest) ingest(e record.Entry) error {
	if g.frames >= g.maxFrames {
		return fmt.Errorf("%w: frame quota (%d frames) exhausted", errStreamQuota, g.maxFrames)
	}
	if err := g.foldShard(e, g.frames); err != nil {
		return err
	}
	g.hashEntry(e)
	g.frames++
	return nil
}

// foldShard is the shard half of ingest — validation and clock unwrap for
// entry e, the idx-th of the stream. The index is a parameter (rather than
// g.frames) so the online worker group, which folds a whole chunk batch
// before advancing the frame counter, reports errors naming the same entry
// sequential ingest would. Distinct threads touch distinct shards, so
// concurrent foldShard calls are safe as long as no two run for one thread.
func (g *streamIngest) foldShard(e record.Entry, idx uint64) error {
	t := int(e.Thread)
	if t >= len(g.shards) {
		return fmt.Errorf("%w: entry %d names thread %d, session has %d threads",
			errOrderViolation, idx, t, len(g.shards))
	}
	sh := &g.shards[t]
	if !sh.started {
		sh.started = true
		sh.unwrapped = uint64(e.Clock)
		sh.firstTime = sh.unwrapped
	} else {
		delta := uint16(e.Clock - sh.lastClock)
		if int(delta) > clock.Window {
			return fmt.Errorf("%w: entry %d clock regressed for thread %d", errOrderViolation, idx, t)
		}
		sh.unwrapped += uint64(delta)
	}
	sh.lastClock = e.Clock
	sh.entries++
	sh.instructions += uint64(e.Instr)
	return nil
}

// hashEntry folds one entry's 8 wire bytes into the running content hash.
func (g *streamIngest) hashEntry(e record.Entry) {
	var b [record.EntryBytes]byte
	binary.LittleEndian.PutUint16(b[0:2], uint16(e.Clock))
	binary.LittleEndian.PutUint16(b[2:4], e.Thread)
	binary.LittleEndian.PutUint32(b[4:8], e.Instr)
	for _, c := range b {
		g.hash = (g.hash ^ uint64(c)) * fnvPrime64
	}
}

// summaries renders the non-empty shards in thread order — deterministic, so
// identical streams produce byte-identical response bodies.
func (g *streamIngest) summaries() []ShardSummary {
	out := make([]ShardSummary, 0, len(g.shards))
	for t := range g.shards {
		sh := &g.shards[t]
		if !sh.started {
			continue
		}
		out = append(out, ShardSummary{
			Thread:       t,
			Entries:      sh.entries,
			Instructions: sh.instructions,
			FirstTime:    sh.firstTime,
			LastTime:     sh.unwrapped,
		})
	}
	return out
}

// hashLog computes the same FNV-1a content hash ingest maintains, over an
// in-memory log — the verification side of the comparison.
func hashLog(l *record.Log) uint64 {
	h := fnv.New64a()
	var b [record.EntryBytes]byte
	for _, e := range l.Entries() {
		binary.LittleEndian.PutUint16(b[0:2], uint16(e.Clock))
		binary.LittleEndian.PutUint16(b[2:4], e.Thread)
		binary.LittleEndian.PutUint32(b[4:8], e.Instr)
		h.Write(b[:])
	}
	return h.Sum64()
}

// StreamResponse is the end-of-stream summary of one /v1/stream session.
// It is a pure function of the streamed bytes and the session parameters:
// identical streams yield byte-identical bodies. When Verified is true,
// Detect holds the full one-shot DetectResponse of the authoritative
// re-execution (byte-identical, after re-encoding, to POST /v1/detect with
// the same parameters) and LogMatch reports whether the streamed log's
// content hash equals the re-execution's recorded log.
type StreamResponse struct {
	Schema   int            `json:"schema"`
	App      string         `json:"app"`
	Seed     uint64         `json:"seed"`
	Scale    int            `json:"scale"`
	Threads  int            `json:"threads"`
	Inject   uint64         `json:"inject,omitempty"`
	D        int            `json:"d"`
	Frames   uint64         `json:"frames"`
	LogBytes uint64         `json:"log_bytes"`
	LogHash  string         `json:"log_hash"`
	Shards   []ShardSummary `json:"shards"`
	Verified bool           `json:"verified"`
	LogMatch bool           `json:"log_match"`
	// Online holds the incremental detection verdict of a detect=online
	// session (PROTOCOL.md §4.7); absent otherwise.
	Online *OnlineSummary `json:"online,omitempty"`
	// Detect is kept the last field so text tooling (service-smoke.sh) can
	// extract the block and compare it against a one-shot /v1/detect body.
	Detect *DetectResponse `json:"detect,omitempty"`
}

// streamOptions are one session's parsed query parameters: the DetectRequest
// domain plus the streaming-only knobs (verification, online detection, the
// duty cycle, and the recorded run's injection identity for online replay).
type streamOptions struct {
	req    DetectRequest
	verify bool
	online bool
	// duty is the online duty percentage; -1 until resolved against the
	// server default (Config.StreamDuty).
	duty int
	// injectThread/injectNth re-apply the recorded run's fault injection to
	// the online replay, exactly like a /v1/replay request; -1 = none.
	injectThread int
	injectNth    uint64
	// detector selects the online detector family (PROTOCOL.md §4.7):
	// "cord" (the default) or "fasttrack".
	detector string
}

// parseStreamQuery extracts the session parameters (the DetectRequest
// domain, query-string encoded — the body is the binary stream) plus the
// streaming flags. verify defaults to on; detect=online is off by default.
func parseStreamQuery(r *http.Request) (streamOptions, error) {
	q := r.URL.Query()
	o := streamOptions{verify: true, duty: -1, injectThread: -1}
	o.req = DetectRequest{App: q.Get("app")}
	var err error
	if o.req.Seed, err = queryUint(q.Get("seed"), 0); err != nil {
		return o, fmt.Errorf("%w: seed: %v", ErrBadRequest, err)
	}
	if o.req.Scale, err = queryInt(q.Get("scale"), 0); err != nil {
		return o, fmt.Errorf("%w: scale: %v", ErrBadRequest, err)
	}
	if o.req.Threads, err = queryInt(q.Get("threads"), 0); err != nil {
		return o, fmt.Errorf("%w: threads: %v", ErrBadRequest, err)
	}
	if o.req.Inject, err = queryUint(q.Get("inject"), 0); err != nil {
		return o, fmt.Errorf("%w: inject: %v", ErrBadRequest, err)
	}
	if o.req.D, err = queryInt(q.Get("d"), 0); err != nil {
		return o, fmt.Errorf("%w: d: %v", ErrBadRequest, err)
	}
	switch v := q.Get("verify"); v {
	case "", "1", "true":
	case "0", "false":
		o.verify = false
	default:
		return o, fmt.Errorf("%w: verify: want 0 or 1, got %q", ErrBadRequest, v)
	}
	switch v := q.Get("detect"); v {
	case "":
	case "online":
		o.online = true
	default:
		return o, fmt.Errorf("%w: detect: want online, got %q", ErrBadRequest, v)
	}
	if v := q.Get("duty"); v != "" {
		if !o.online {
			return o, fmt.Errorf("%w: duty requires detect=online", ErrBadRequest)
		}
		n, err := queryInt(v, -1)
		if err != nil || n < 0 || n > 100 {
			return o, fmt.Errorf("%w: duty: want an integer in [0, 100], got %q", ErrBadRequest, v)
		}
		o.duty = n
	}
	switch v := q.Get("detector"); v {
	case "":
		o.detector = "cord"
	case "cord", "fasttrack":
		if !o.online {
			return o, fmt.Errorf("%w: detector requires detect=online", ErrBadRequest)
		}
		o.detector = v
	default:
		return o, fmt.Errorf("%w: detector: want cord or fasttrack, got %q", ErrBadRequest, v)
	}
	if v := q.Get("inject_thread"); v != "" {
		if !o.online {
			return o, fmt.Errorf("%w: inject_thread requires detect=online", ErrBadRequest)
		}
		if o.injectThread, err = queryInt(v, -1); err != nil {
			return o, fmt.Errorf("%w: inject_thread: %v", ErrBadRequest, err)
		}
	}
	if v := q.Get("inject_nth"); v != "" {
		if !o.online {
			return o, fmt.Errorf("%w: inject_nth requires detect=online", ErrBadRequest)
		}
		if o.injectNth, err = queryUint(v, 0); err != nil {
			return o, fmt.Errorf("%w: inject_nth: %v", ErrBadRequest, err)
		}
	}
	return o, nil
}

// validateOnline checks the online-only parameters once defaults are in
// place, mirroring ReplayRequest.Validate for the injection identity.
func (o *streamOptions) validateOnline() error {
	if !o.online {
		return nil
	}
	if o.injectThread < -1 || o.injectThread >= o.req.Threads {
		return fmt.Errorf("%w: inject_thread must be in [0, %d)", ErrBadRequest, o.req.Threads)
	}
	if o.injectThread >= 0 && o.injectNth == 0 {
		return fmt.Errorf("%w: inject_nth must be at least 1 when inject_thread is set", ErrBadRequest)
	}
	return nil
}

// streamReadChunk is the size of the reusable read buffer; one buffer serves
// the whole session regardless of stream length.
const streamReadChunk = 32 << 10

// statusResponded is serveStream's sentinel for "the failure was already
// written to the wire as an error frame": the 200 status was committed by an
// earlier progress frame, so the handler classifies the outcome for metrics
// but must not write a second response.
const statusResponded = -1

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	opts, err := parseStreamQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts.req.ApplyDefaults()
	if err := opts.req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := opts.validateOnline(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if opts.duty < 0 {
		opts.duty = s.cfg.StreamDuty
	}

	// Admission: drain state first, then a stream slot. Accepted streams
	// count as in-flight work, so Shutdown waits for them like any session.
	if !s.accept() {
		s.m.bumpStream(func(c *StreamCounters) { c.RejectedDraining++ })
		writeErrorCode(w, http.StatusServiceUnavailable, codeDraining, errors.New("server is draining"))
		return
	}
	defer s.release()
	select {
	case s.streams <- struct{}{}:
	default:
		s.m.bumpStream(func(c *StreamCounters) { c.RejectedLimit++ })
		w.Header().Set("Retry-After", s.streamRetryAfter())
		writeErrorCode(w, http.StatusTooManyRequests, codeStreamLimit,
			fmt.Errorf("all %d stream slots are busy", s.cfg.MaxStreams))
		return
	}
	defer func() { <-s.streams }()

	s.m.bumpStream(func(c *StreamCounters) {
		c.Started++
		if opts.online {
			c.OnlineSessions++
		}
	})
	start := time.Now()
	defer func() { s.m.observe(r.URL.Path, time.Since(start)) }()
	status, code, ferr := s.serveStream(w, r, opts)
	if ferr == nil {
		return // 2xx summary already written
	}
	switch {
	case status == statusClientGone:
		s.m.bumpStream(func(c *StreamCounters) { c.Canceled++ })
		return // nobody left to write to
	case code == codeIdleTimeout:
		s.m.bumpStream(func(c *StreamCounters) { c.IdleTimeout++ })
	case code == codeQuotaExceeded:
		s.m.bumpStream(func(c *StreamCounters) { c.QuotaExceeded++ })
	case code == codeTimeout:
		s.m.bumpStream(func(c *StreamCounters) { c.TimedOut++ })
	default:
		s.m.bumpStream(func(c *StreamCounters) { c.Failed++ })
	}
	if status != statusResponded {
		writeErrorCode(w, status, code, ferr)
	}
}

// streamRetryAfter computes the Retry-After value for a stream-slot 429 from
// the observed /v1/stream latency (see Server.retryAfter — the session-queue
// 429 path uses the same derivation for its endpoints).
func (s *Server) streamRetryAfter() string {
	return s.retryAfter("/v1/stream")
}

// serveStream runs one admitted streaming session: the chunked ingest loop,
// end-of-stream completeness check, optional online replay join and
// verification re-execution, and the summary write. A nil error means the
// 200 summary was written; any other outcome is returned as (status,
// taxonomy code, error) for the handler to classify — with statusResponded
// meaning the error already went out as a frame (PROTOCOL.md §4.7).
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, opts streamOptions) (int, string, error) {
	req := opts.req
	rc := http.NewResponseController(w)
	dec := record.NewStreamDecoder()
	ing := newStreamIngest(req.Threads, s.cfg.MaxStreamFrames)
	buf := make([]byte, streamReadChunk)
	var bytesIn int64

	// Online mode: an incremental replay session consumes epochs as chunks
	// land, and a frame writer reports its progress mid-stream. fail wraps
	// error returns so post-header failures travel as error frames.
	var (
		online *onlineSession
		fw     *frameWriter
	)
	fail := func(status int, code string, err error) (int, string, error) {
		if fw != nil && fw.wrote {
			fw.fail(code, err)
			return statusResponded, code, err
		}
		return status, code, err
	}
	sink := ing.ingest
	if opts.online {
		online = startOnline(opts, s.cfg.StreamWorkers)
		online.maxFrames = s.cfg.MaxStreamFrames
		defer online.stop()
		fw = newFrameWriter(w, rc)
		sink = online.collect
	}

	defer func() {
		s.m.bumpStream(func(c *StreamCounters) {
			c.BytesIngested += uint64(bytesIn)
			c.FramesIngested += ing.frames
		})
	}()

	for {
		// The idle clock rearms per chunk: a stream stays admitted as long
		// as it keeps delivering bytes, no matter how long it runs in total.
		if err := rc.SetReadDeadline(time.Now().Add(s.cfg.StreamIdleTimeout)); err != nil {
			return fail(http.StatusInternalServerError, codeInternal,
				fmt.Errorf("stream transport does not support read deadlines: %w", err))
		}
		n, err := r.Body.Read(buf)
		if n > 0 {
			if bytesIn += int64(n); bytesIn > s.cfg.MaxStreamBytes {
				return fail(http.StatusRequestEntityTooLarge, codeQuotaExceeded,
					fmt.Errorf("%w: byte quota (%d bytes) exhausted", errStreamQuota, s.cfg.MaxStreamBytes))
			}
			ferr := dec.Feed(buf[:n], sink)
			if online != nil {
				// Fold the batch even when the decoder failed mid-chunk: every
				// buffered entry precedes the failure point, and a fold error
				// (earlier byte offset) outranks the decoder's.
				if berr := online.ingestBatch(ing); berr != nil {
					return fail(streamIngestFailure(berr))
				}
			}
			if ferr != nil {
				return fail(streamIngestFailure(ferr))
			}
			if online != nil {
				fw.progress(online, ing, bytesIn, n)
			}
		}
		if err != nil {
			if err == io.EOF {
				break
			}
			if errors.Is(err, os.ErrDeadlineExceeded) {
				return fail(http.StatusRequestTimeout, codeIdleTimeout,
					fmt.Errorf("stream idle for more than %v", s.cfg.StreamIdleTimeout))
			}
			// Anything else mid-body is the client going away (reset,
			// cancelled context, malformed chunking): no one to answer.
			return statusClientGone, "", err
		}
	}
	// Clear the read deadline so it cannot fire under the replay join, the
	// verification run, or the response write.
	rc.SetReadDeadline(time.Time{})

	if err := dec.Close(); err != nil {
		return fail(streamIngestFailure(err))
	}

	resp := &StreamResponse{
		Schema:   SchemaVersion,
		App:      req.App,
		Seed:     req.Seed,
		Scale:    req.Scale,
		Threads:  req.Threads,
		Inject:   req.Inject,
		D:        req.D,
		Frames:   ing.frames,
		LogBytes: ing.frames * record.EntryBytes,
		LogHash:  fmt.Sprintf("%016x", ing.hash),
		Shards:   ing.summaries(),
	}
	if online != nil {
		out, status, code, err := online.finish(r.Context().Done(), s.cfg.SessionTimeout)
		if err != nil {
			if status == statusClientGone {
				return statusClientGone, "", err
			}
			return fail(status, code, err)
		}
		switch {
		case out.err != nil && !errors.Is(out.err, sim.ErrReplayDivergence):
			return fail(http.StatusInternalServerError, codeInternal, out.err)
		}
		resp.Online = online.summary(out)
		s.m.bumpStream(func(c *StreamCounters) {
			c.OnlineRaces += uint64(resp.Online.RacesSoFar)
			c.OnlineEpochsTotal += resp.Online.EpochsTotal
			c.OnlineEpochsObserved += resp.Online.EpochsObserved
			if !resp.Online.Completed {
				c.OnlineDivergences++
			}
		})
	}
	if opts.verify {
		// The authoritative re-execution runs under the session timeout and
		// the client's context: disconnecting mid-verify cancels the engine
		// (sim.Config.Cancel) exactly like a one-shot session.
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SessionTimeout)
		det, log, err := runDetectSession(ctx, req)
		cancel()
		switch {
		case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
			return statusClientGone, "", err
		case errors.Is(err, context.DeadlineExceeded):
			return fail(http.StatusGatewayTimeout, codeTimeout,
				fmt.Errorf("verification run exceeded the %v timeout", s.cfg.SessionTimeout))
		case err != nil:
			return fail(http.StatusInternalServerError, codeInternal, err)
		}
		resp.Verified = true
		resp.LogMatch = uint64(log.Len()) == ing.frames && hashLog(log) == ing.hash
		resp.Detect = det
	}

	b, err := encodeJSON(resp)
	if err != nil {
		return fail(http.StatusInternalServerError, codeInternal, err)
	}
	s.m.bumpStream(func(c *StreamCounters) { c.Completed++ })
	if fw != nil && fw.wrote {
		// Frames already committed the 200 and chunked framing; append the
		// summary as the final body segment.
		w.Write(b)
	} else {
		writeBody(w, http.StatusOK, b)
	}
	return http.StatusOK, "", nil
}

// streamIngestFailure maps a decode/ingest error onto (status, code): the
// taxonomy distinguishes structural damage, truncation, order violations and
// quota exhaustion so clients can tell a corrupt recording from a short one.
func streamIngestFailure(err error) (int, string, error) {
	switch {
	case errors.Is(err, errStreamQuota):
		return http.StatusRequestEntityTooLarge, codeQuotaExceeded, err
	case errors.Is(err, errOrderViolation):
		return http.StatusUnprocessableEntity, codeOrderViolation, err
	case errors.Is(err, record.ErrBadFormat) && errors.Is(err, io.ErrUnexpectedEOF):
		return http.StatusBadRequest, codeTruncated, err
	case errors.Is(err, record.ErrBadFormat):
		return http.StatusBadRequest, codeBadFormat, err
	default:
		return http.StatusInternalServerError, codeInternal, err
	}
}
