package server

import (
	"bytes"
	"errors"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"cord/internal/record"
)

// FuzzDetectRequest drives the full request-admission path of POST
// /v1/detect — strict JSON decoding, defaulting, validation — with arbitrary
// bodies. The invariants: no panic, and everything that survives Validate is
// genuinely in-domain (the simulation layer never sees out-of-range
// parameters).
func FuzzDetectRequest(f *testing.F) {
	f.Add(`{"app":"fft","seed":1}`)
	f.Add(`{"app":"lu","seed":18446744073709551615,"scale":2,"threads":8,"d":256,"inject":3}`)
	f.Add(`{"app":"","seed":-1}`)
	f.Add(`{"app":"fft","unknown_knob":true}`)
	f.Add(`{"app":"fft","scale":1e9}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Add(`{"app":"fft"`)
	f.Fuzz(func(t *testing.T, body string) {
		r, err := http.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(body))
		if err != nil {
			t.Skip()
		}
		var req DetectRequest
		if err := decodeJSONBody(r, &req); err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("decode failure %v does not wrap ErrBadRequest", err)
			}
			return
		}
		req.ApplyDefaults()
		if err := req.Validate(); err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("validation failure %v does not wrap ErrBadRequest", err)
			}
			return
		}
		if req.Scale < 1 || req.Scale > MaxScale || req.Threads < 1 || req.Threads > MaxThreads || req.D < 1 {
			t.Fatalf("Validate accepted out-of-domain request %+v", req)
		}
	})
}

// FuzzReplayParams drives the POST /v1/replay admission path with arbitrary
// query strings and order-log bodies: query parsing, validation, binary log
// decoding, and schedule extraction. The handler must classify every
// malformed input as a client error — never panic, never let an out-of-domain
// request reach the engine.
func FuzzReplayParams(f *testing.F) {
	var l record.Log
	l.Append(record.Entry{Clock: 1, Thread: 0, Instr: 7})
	var goodLog bytes.Buffer
	if err := l.EncodeTo(&goodLog); err != nil {
		f.Fatal(err)
	}
	f.Add("app=fft&seed=1&threads=4", goodLog.Bytes())
	f.Add("app=fft&seed=1&inject_thread=2&inject_nth=5", goodLog.Bytes())
	f.Add("app=nosuch&seed=x", []byte{})
	f.Add("seed=18446744073709551616", []byte("CORD"))
	f.Add("threads=-1&inject_thread=99", goodLog.Bytes())
	f.Add("", []byte{})
	f.Fuzz(func(t *testing.T, query string, logBytes []byte) {
		req, err := parseReplayQuery(&http.Request{URL: &url.URL{RawQuery: query}})
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("query failure %v does not wrap ErrBadRequest", err)
			}
			return
		}
		req.ApplyDefaults()
		if err := req.Validate(); err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("validation failure %v does not wrap ErrBadRequest", err)
			}
			return
		}
		if req.Threads < 1 || req.Threads > MaxThreads || req.InjectThread >= req.Threads {
			t.Fatalf("Validate accepted out-of-domain request %+v", req)
		}
		log, err := record.DecodeFrom(bytes.NewReader(logBytes))
		if err != nil {
			return // malformed log: rejected before any simulation
		}
		// Schedule extraction must stay panic-free on any decoded log.
		if _, err := log.Schedule(req.Threads); err != nil {
			return
		}
	})
}
