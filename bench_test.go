package cord_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design decisions DESIGN.md calls out. Each bench
// regenerates its artefact and reports domain-specific metrics alongside
// ns/op (races detected, detection ratios, overhead percentages), so
// `go test -bench=. -benchmem` reproduces the whole evaluation.

import (
	"testing"

	"cord"
	"cord/internal/core"
	"cord/internal/experiment"
	"cord/internal/sim"
	"cord/internal/trace"
	"cord/internal/workload"
)

// benchOpts keeps bench campaigns small enough to iterate but large enough
// to be meaningful; cmd/cordbench runs the full-size versions.
func benchOpts() experiment.Options {
	return experiment.Options{Injections: 10, BaseSeed: 0xC0DD}
}

// value extracts the Average row's first value from a figure.
func avgOf(f experiment.Figure, col int) float64 {
	return f.Rows[len(f.Rows)-1].Values[col]
}

// BenchmarkTable1Workloads sizes every application (Table 1).
func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunTable1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var acc uint64
		for _, r := range rows {
			acc += r.Accesses
		}
		b.ReportMetric(float64(acc)/float64(len(rows)), "accesses/app")
	}
}

// BenchmarkFig10Injections measures the manifestation rate of injected
// synchronization removals.
func BenchmarkFig10Injections(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDetection(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avgOf(res.Fig10(), 0)*100, "%manifested")
	}
}

// BenchmarkFig11Overhead measures CORD's execution-time overhead on the
// machine timing model.
func BenchmarkFig11Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Scale = 2
		_, fig, err := experiment.RunOverhead(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((avgOf(fig, 0)-1)*100, "%overhead")
	}
}

// BenchmarkFig12ProblemDetection measures CORD's problem detection rate
// versus the vector-clock scheme and Ideal.
func BenchmarkFig12ProblemDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDetection(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		f := res.Fig12()
		b.ReportMetric(avgOf(f, 0)*100, "%vsVector")
		b.ReportMetric(avgOf(f, 1)*100, "%vsIdeal")
		if fp := res.FalsePositives(); fp != 0 {
			b.Fatalf("%d false positives", fp)
		}
	}
}

// BenchmarkFig13RawRaces measures CORD's raw race detection rate.
func BenchmarkFig13RawRaces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDetection(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		f := res.Fig13()
		b.ReportMetric(avgOf(f, 1)*100, "%vsIdeal")
	}
}

// BenchmarkFig14HistoryLimits measures problem detection under the
// InfCache/L2Cache/L1Cache storage bounds.
func BenchmarkFig14HistoryLimits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDetection(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		f := res.Fig14()
		b.ReportMetric(avgOf(f, 0)*100, "%inf")
		b.ReportMetric(avgOf(f, 1)*100, "%l2")
		b.ReportMetric(avgOf(f, 2)*100, "%l1")
	}
}

// BenchmarkFig15HistoryRawRaces is the raw-race version of Fig 14.
func BenchmarkFig15HistoryRawRaces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDetection(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		f := res.Fig15()
		b.ReportMetric(avgOf(f, 0)*100, "%inf")
		b.ReportMetric(avgOf(f, 2)*100, "%l1")
	}
}

// BenchmarkFig16DSweep measures the D parameter sweep (problem detection).
func BenchmarkFig16DSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDetection(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		f := res.Fig16()
		b.ReportMetric(avgOf(f, 0)*100, "%D1")
		b.ReportMetric(avgOf(f, 2)*100, "%D16")
		b.ReportMetric(avgOf(f, 3)*100, "%D256")
	}
}

// BenchmarkFig17DSweepRaw is the raw-race version of the D sweep.
func BenchmarkFig17DSweepRaw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDetection(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		f := res.Fig17()
		b.ReportMetric(avgOf(f, 0)*100, "%D1")
		b.ReportMetric(avgOf(f, 2)*100, "%D16")
	}
}

// BenchmarkAreaModel verifies the §2.3-2.4 area arithmetic stays at the
// paper's 19%/38%/200%.
func BenchmarkAreaModel(b *testing.B) {
	m := cord.DefaultAreaModel()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(m.ScalarOverhead()*100, "%scalar")
		b.ReportMetric(m.VectorPerLineOverhead()*100, "%vecLine")
		b.ReportMetric(m.VectorPerWordOverhead()*100, "%vecWord")
	}
}

// BenchmarkReplayVerify measures record-and-replay round trips (§3.3) and
// the order-log density.
func BenchmarkReplayVerify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunReplayCheck(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var bytes, accesses int
		for _, r := range rows {
			if !r.Match {
				b.Fatalf("%s replay mismatch: %s", r.App, r.Mismatch)
			}
			bytes += r.LogBytes
			accesses += int(r.Accesses)
		}
		b.ReportMetric(float64(bytes)/float64(accesses)*1024, "logB/kacc")
	}
}

// --- Ablation benches (DESIGN.md's design-decision knobs) ---

// ablationRun runs one app+injection under a custom CORD config and returns
// the racy-access count.
func ablationRun(b *testing.B, cfg core.Config, inject uint64) int {
	app, err := workload.ByName("raytrace")
	if err != nil {
		b.Fatal(err)
	}
	det := core.New(cfg)
	_, err = sim.New(sim.Config{
		Seed: 5, Jitter: 7, InjectSkip: inject,
		Observers: []trace.Observer{det},
	}, app.Build(1, 4)).Run()
	if err != nil {
		b.Fatal(err)
	}
	return det.RaceCount()
}

// BenchmarkAblationHistDepth compares two timestamps per line against one
// (the Fig. 2 discussion): one slot erases history on every clock change.
func BenchmarkAblationHistDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var two, one int
		for inj := uint64(3); inj < 40; inj += 6 {
			two += ablationRun(b, core.Config{Threads: 4, D: 16, HistDepth: 2}, inj)
			one += ablationRun(b, core.Config{Threads: 4, D: 16, HistDepth: 1}, inj)
		}
		b.ReportMetric(float64(two), "races2slots")
		b.ReportMetric(float64(one), "races1slot")
	}
}

// BenchmarkAblationUpdateOnDataRaces compares clock updates on all races
// (the paper's §2.4 choice) against updates on sync races only.
func BenchmarkAblationUpdateOnDataRaces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var with, without int
		for inj := uint64(3); inj < 40; inj += 6 {
			with += ablationRun(b, core.Config{Threads: 4, D: 16}, inj)
			without += ablationRun(b, core.Config{Threads: 4, D: 16, NoUpdateOnDataRaces: true}, inj)
		}
		b.ReportMetric(float64(with), "racesUpdateAll")
		b.ReportMetric(float64(without), "racesSyncOnly")
	}
}

// BenchmarkAblationUnboundedStorage compares the L2-bounded default against
// unbounded timestamp storage for the scalar scheme.
func BenchmarkAblationUnboundedStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var bounded, unbounded int
		for inj := uint64(3); inj < 40; inj += 6 {
			bounded += ablationRun(b, core.Config{Threads: 4, D: 16}, inj)
			unbounded += ablationRun(b, core.Config{Threads: 4, D: 16, Unbounded: true}, inj)
		}
		b.ReportMetric(float64(bounded), "racesL2")
		b.ReportMetric(float64(unbounded), "racesInf")
	}
}

// BenchmarkDetectorThroughput measures raw OnAccess cost — the simulator's
// hot loop (not a paper figure; an engineering number).
func BenchmarkDetectorThroughput(b *testing.B) {
	app, err := workload.ByName("cholesky")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		det := core.New(core.Config{Threads: 4, D: 16, Record: true})
		res, err := sim.New(sim.Config{
			Seed: uint64(i + 1), Jitter: 7,
			Observers: []trace.Observer{det},
		}, app.Build(1, 4)).Run()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Accesses))
	}
}

// BenchmarkDirectoryExtension compares the §2.5 directory extension's
// point-to-point message count against the snooping broadcast equivalent at
// 16 processors.
func BenchmarkDirectoryExtension(b *testing.B) {
	app, err := workload.ByName("raytrace")
	if err != nil {
		b.Fatal(err)
	}
	const procs = 16
	for i := 0; i < b.N; i++ {
		dir := cord.NewDirectory(procs)
		det := core.New(core.Config{Threads: procs, Procs: procs, D: 16, Directory: dir})
		_, err := sim.New(sim.Config{
			Seed: 2, Jitter: 7, Procs: procs,
			Observers: []trace.Observer{det},
		}, app.Build(1, procs)).Run()
		if err != nil {
			b.Fatal(err)
		}
		st := dir.Stats()
		b.ReportMetric(float64(st.Forwards)/float64(st.Requests), "fwd/req")
		b.ReportMetric(float64(procs-1), "snoops/bcast")
	}
}
