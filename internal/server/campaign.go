package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"regexp"

	"cord/internal/experiment"
	"cord/internal/sim"
)

// This file is the worker half of the distributed campaign protocol
// (PROTOCOL.md §6): POST /v1/campaign/plan validates a campaign
// configuration and returns its fingerprint; POST /v1/campaign/shard
// executes one run-shard on the session pool and returns the outcome cells
// keyed by run identity. Everything response-shaped here is normatively
// specified in §6 and pinned by the doc-conformance test — change the spec
// first.

// MaxInjections bounds a campaign's per-application injection-run count on
// the wire. The domain, not a shard, allocates per-app target arrays, so an
// absurd count must be rejected before it sizes an allocation.
const MaxInjections = 1 << 20

// identRe is the shared syntax of campaign ids and shard ids: 1–64
// characters of [A-Za-z0-9._-]. Ids are labels for logs, journals, and the
// shard registry — never filesystem paths or shell words — but keeping them
// printable and short makes every downstream surface safe to embed them.
var identRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// CampaignPlanRequest is the body of POST /v1/campaign/plan.
type CampaignPlanRequest struct {
	// Campaign is the client-chosen campaign id (1–64 chars of
	// [A-Za-z0-9._-]).
	Campaign string `json:"campaign"`
	// Options is the result-determining campaign configuration. Zero or
	// omitted fields take the same defaults the CLIs apply.
	Options experiment.CampaignMeta `json:"options"`
}

// CampaignPlanResponse answers a plan probe: the worker's own fingerprint
// of the normalized configuration plus the campaign's run geometry. A
// coordinator probes every worker before dispatching and aborts on any
// fingerprint disagreement — that is version or configuration skew, and
// shards executed under it would merge silently-wrong cells.
type CampaignPlanResponse struct {
	Schema      int      `json:"schema"`
	Campaign    string   `json:"campaign"`
	Fingerprint string   `json:"fingerprint"`
	Apps        []string `json:"apps"`
	RunsPerApp  int      `json:"runs_per_app"`
	TotalRuns   int      `json:"total_runs"`
}

// CampaignShardRequest is the body of POST /v1/campaign/shard: one unit of
// distributed campaign work.
type CampaignShardRequest struct {
	Campaign string `json:"campaign"`
	// ShardID identifies this shard within the campaign (1–64 chars of
	// [A-Za-z0-9._-]). Re-sending a shard id with identical content is
	// idempotent; re-using it with different content is a 409 shard_conflict.
	ShardID string `json:"shard_id"`
	// Fingerprint is the coordinator's fingerprint of Options. The worker
	// recomputes it and rejects any disagreement with 422.
	Fingerprint string                  `json:"fingerprint"`
	Options     experiment.CampaignMeta `json:"options"`
	// Ranges are the half-open [lo, hi) injection-run ranges to execute.
	Ranges []experiment.ShardRange `json:"ranges"`
	// Origin records why the coordinator routed this shard here: "" for
	// planned placement, "steal" when a faster worker stole it from a slow
	// peer's queue, "requeue" when it was rescued from a dead worker
	// (PROTOCOL.md §7). Origin is observability only — it feeds the worker's
	// fleet metrics and is deliberately excluded from the shard content hash,
	// so a stolen re-send of a planned shard is still idempotent, not a 409.
	Origin string `json:"origin,omitempty"`
}

// CampaignShardResponse carries the shard's outcome cells in canonical
// order (apps by campaign index; each app's count cell, then its injection
// cells by run index). Cells are exactly the bytes an equivalent local
// campaign journals, so a re-sent shard returns a byte-identical response.
type CampaignShardResponse struct {
	Schema      int               `json:"schema"`
	Campaign    string            `json:"campaign"`
	ShardID     string            `json:"shard_id"`
	Fingerprint string            `json:"fingerprint"`
	Runs        int               `json:"runs"`
	Cells       []experiment.Cell `json:"cells"`
}

// campaignOptions validates the wire metadata and reconstructs campaign
// Options within the service's request-domain bounds. Every failure wraps
// ErrBadRequest.
func campaignOptions(m experiment.CampaignMeta) (experiment.Options, error) {
	o, err := experiment.OptionsFromMeta(m)
	if err != nil {
		return experiment.Options{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	norm := o.Meta()
	if norm.Scale > MaxScale {
		return experiment.Options{}, fmt.Errorf("%w: scale must be in [1, %d], got %d", ErrBadRequest, MaxScale, norm.Scale)
	}
	if norm.Threads > MaxThreads {
		return experiment.Options{}, fmt.Errorf("%w: threads must be in [1, %d], got %d", ErrBadRequest, MaxThreads, norm.Threads)
	}
	if norm.Injections > MaxInjections {
		return experiment.Options{}, fmt.Errorf("%w: injections must be in [1, %d], got %d", ErrBadRequest, MaxInjections, norm.Injections)
	}
	return o, nil
}

func (s *Server) handleCampaignPlan(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req CampaignPlanRequest
	if err := decodeJSONBody(r, &req); err != nil {
		writeError(w, statusForBodyError(err), err)
		return
	}
	if !identRe.MatchString(req.Campaign) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: campaign must match %s", ErrBadRequest, identRe))
		return
	}
	opts, err := campaignOptions(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Planning touches no simulation — answer directly, bypassing the pool,
	// like /healthz: a coordinator must be able to probe a busy worker.
	meta := opts.Meta()
	writeJSON(w, http.StatusOK, &CampaignPlanResponse{
		Schema:      SchemaVersion,
		Campaign:    req.Campaign,
		Fingerprint: opts.Fingerprint(),
		Apps:        meta.Apps,
		RunsPerApp:  meta.Injections,
		TotalRuns:   meta.Injections * len(meta.Apps),
	})
}

func (s *Server) handleCampaignShard(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req CampaignShardRequest
	if err := decodeJSONBody(r, &req); err != nil {
		writeError(w, statusForBodyError(err), err)
		return
	}
	if !identRe.MatchString(req.Campaign) || !identRe.MatchString(req.ShardID) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: campaign and shard_id must match %s", ErrBadRequest, identRe))
		return
	}
	switch req.Origin {
	case "":
	case "steal":
		s.m.bumpFleet(func(c *FleetCounters) { c.ShardsStolen++ })
	case "requeue":
		s.m.bumpFleet(func(c *FleetCounters) { c.ShardsRequeued++ })
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: origin must be \"\", \"steal\" or \"requeue\", got %q", ErrBadRequest, req.Origin))
		return
	}
	opts, err := campaignOptions(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if fp := opts.Fingerprint(); req.Fingerprint != fp {
		writeErrorCode(w, http.StatusUnprocessableEntity, codeFingerprintMismatch,
			fmt.Errorf("request fingerprint %q does not match this worker's %q: coordinator and worker disagree on the campaign configuration",
				req.Fingerprint, fp))
		return
	}
	if prev, ok := s.registerShard(req); !ok {
		writeErrorCode(w, http.StatusConflict, codeShardConflict,
			fmt.Errorf("shard %s/%s was already submitted with different content (hash %016x); shard ids are immutable once used",
				req.Campaign, req.ShardID, prev))
		return
	}

	spec := experiment.ShardSpec{Ranges: req.Ranges}
	s.dispatch(w, r, func(ctx context.Context) (any, error) {
		// Serial within the shard: one session occupies one pool worker, so
		// fleet-level parallelism (many in-flight shards) composes with the
		// pool instead of oversubscribing it.
		runOpts := opts
		runOpts.Procs = 1
		runOpts.Cancel = ctx.Done()
		cells, err := experiment.ExecuteDetectShard(runOpts, spec)
		switch {
		case err == nil:
		case errors.Is(err, sim.ErrCanceled) && ctx.Err() != nil:
			return nil, ctx.Err()
		case errors.Is(err, experiment.ErrBadShard):
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		default:
			return nil, err
		}
		// Worker-kill chaos fires here — after the shard's cells exist but
		// before any response byte is written — so the coordinator sees the
		// dropped connection a mid-request kill -9 produces and must recover
		// through retry, requeue, or steal.
		s.cfg.Chaos.ShardCompleted()
		return &CampaignShardResponse{
			Schema:      SchemaVersion,
			Campaign:    req.Campaign,
			ShardID:     req.ShardID,
			Fingerprint: req.Fingerprint,
			Runs:        spec.Runs(),
			Cells:       cells,
		}, nil
	})
}

// maxShardRegistry bounds the conflict-detection registry. Beyond it the
// oldest entries are forgotten — conflict detection is best-effort over
// recent shards, never a correctness mechanism: cells are deterministic, so
// even an undetected id re-use returns correct bytes for its content.
const maxShardRegistry = 4096

// shardKey scopes shard ids per campaign.
type shardKey struct{ campaign, shard string }

// registerShard records the shard's content hash under its identity. It
// reports false — with the previously registered hash — when the id was
// already used with different content.
func (s *Server) registerShard(req CampaignShardRequest) (prev uint64, ok bool) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|", req.Fingerprint, len(req.Ranges))
	for _, rg := range req.Ranges {
		fmt.Fprintf(h, "%s:%d:%d|", rg.App, rg.Lo, rg.Hi)
	}
	sum := h.Sum64()

	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	if s.shards == nil {
		s.shards = make(map[shardKey]uint64)
	}
	key := shardKey{req.Campaign, req.ShardID}
	if prev, seen := s.shards[key]; seen {
		return prev, prev == sum
	}
	if len(s.shards) >= maxShardRegistry {
		for k := range s.shards { // forget an arbitrary old entry
			delete(s.shards, k)
			break
		}
	}
	s.shards[key] = sum
	return sum, true
}
