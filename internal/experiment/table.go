package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// Figure is one reproduced table or figure: rows of labelled values plus
// explanatory notes. The json tags are the stable wire encoding used by
// exported benchmark artifacts (see artifact.go).
type Figure struct {
	ID      string   `json:"id"` // e.g. "fig12"
	Title   string   `json:"title"`
	Columns []string `json:"columns"`
	Rows    []Row    `json:"rows"`
	Notes   []string `json:"notes,omitempty"`
}

// Row is one labelled series of values.
type Row struct {
	Label  string
	Values []float64
}

// rowJSON is Row's wire shape: JSON has no NaN, so empty-denominator cells
// (the ones Percent renders as "-") travel as null.
type rowJSON struct {
	Label  string     `json:"label"`
	Values []*float64 `json:"values"`
}

// MarshalJSON implements json.Marshaler, mapping non-finite values to null.
func (r Row) MarshalJSON() ([]byte, error) {
	rj := rowJSON{Label: r.Label, Values: make([]*float64, len(r.Values))}
	for i, v := range r.Values {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			v := v
			rj.Values[i] = &v
		}
	}
	return json.Marshal(rj)
}

// UnmarshalJSON implements json.Unmarshaler, mapping null cells back to NaN
// so that encode → decode → encode is byte-identical.
func (r *Row) UnmarshalJSON(b []byte) error {
	var rj rowJSON
	if err := json.Unmarshal(b, &rj); err != nil {
		return err
	}
	r.Label = rj.Label
	r.Values = nil
	if rj.Values != nil {
		r.Values = make([]float64, len(rj.Values))
	}
	for i, p := range rj.Values {
		if p == nil {
			r.Values[i] = math.NaN()
		} else {
			r.Values[i] = *p
		}
	}
	return nil
}

// Percent formats v (a ratio) as a percentage cell; NaN renders as "-".
func Percent(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", v*100)
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID), f.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "app")
	for _, c := range f.Columns {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, r := range f.Rows {
		fmt.Fprintf(tw, "%s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(tw, "\t%s", Percent(v))
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ratio divides, yielding NaN for an empty denominator so tables render "-".
func ratio(num, den int) float64 {
	if den == 0 {
		return math.NaN()
	}
	return float64(num) / float64(den)
}
