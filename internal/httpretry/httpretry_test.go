package httpretry

import (
	"net/http"
	"testing"
	"time"
)

// TestRetryAfter: both wire forms of Retry-After are honored, malformed and
// missing headers fall back to doubling backoff, and everything clamps to
// [0, cap]. The past-HTTP-date row is the regression under test: a server
// whose clock runs behind the client's sends dates that are already in the
// past, which must mean "retry now" (zero sleep) — not drop into the
// doubling fallback as if the header were garbage.
func TestRetryAfter(t *testing.T) {
	p := Policy{Attempts: 5, Fallback: 100 * time.Millisecond, Cap: 2 * time.Second}
	future := time.Now().Add(time.Minute).UTC().Format(http.TimeFormat)
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	cases := []struct {
		name    string
		header  string
		attempt int
		want    time.Duration
	}{
		{"delta-seconds", "1", 1, time.Second},
		{"delta-seconds with spaces", " 1 ", 1, time.Second},
		{"delta-seconds zero", "0", 1, 0},
		{"delta-seconds over cap", "30", 1, p.Cap},
		{"future HTTP-date clamps to cap", future, 1, p.Cap},
		{"past HTTP-date clamps to zero", past, 1, 0},
		{"past HTTP-date late attempt still zero", past, 4, 0},
		{"missing header attempt 1", "", 1, p.Fallback},
		{"malformed header attempt 2", "garbage", 2, 2 * p.Fallback},
		{"negative delta-seconds is malformed", "-5", 1, p.Fallback},
		{"missing header attempt 10 caps", "", 10, p.Cap},
	}
	for _, tc := range cases {
		if d := p.RetryAfter(tc.header, tc.attempt); d != tc.want {
			t.Errorf("%s: RetryAfter(%q, %d) = %v, want %v", tc.name, tc.header, tc.attempt, d, tc.want)
		}
	}
}

// TestBackoff: the hint-free schedule doubles per attempt from Fallback and
// never exceeds Cap — and agrees exactly with RetryAfter's no-header branch,
// since a transport error and a header-less 500 deserve the same patience.
func TestBackoff(t *testing.T) {
	p := Policy{Attempts: 5, Fallback: 50 * time.Millisecond, Cap: time.Second}
	want := []time.Duration{
		50 * time.Millisecond,  // attempt 1
		100 * time.Millisecond, // attempt 2
		200 * time.Millisecond, // attempt 3
		400 * time.Millisecond, // attempt 4
		800 * time.Millisecond, // attempt 5
		time.Second,            // attempt 6 doubles past Cap and clamps
		time.Second,            // and stays clamped from then on
	}
	for i, w := range want {
		attempt := i + 1
		if d := p.Backoff(attempt); d != w {
			t.Errorf("Backoff(%d) = %v, want %v", attempt, d, w)
		}
		if d, r := p.Backoff(attempt), p.RetryAfter("", attempt); d != r {
			t.Errorf("Backoff(%d) = %v but RetryAfter(\"\", %d) = %v; they must agree", attempt, d, attempt, r)
		}
	}
}
