package baseline

import (
	"math/rand"
	"testing"

	"cord/internal/memsys"
	"cord/internal/trace"
)

// both forwards each access to Ideal and FastTrack so the two observe the
// identical execution (same Seq numbering), returning FastTrack's report.
type both struct {
	id *Ideal
	ft *FastTrack
}

func (b *both) Name() string { return "both" }
func (b *both) OnAccess(a trace.Access) trace.Report {
	b.id.OnAccess(a)
	return b.ft.OnAccess(a)
}
func (b *both) Migrate(thread, proc int, instr uint64)   {}
func (b *both) ThreadDone(thread int, totalInstr uint64) {}
func (b *both) Finish()                                  {}

func TestFastTrackDetectsPlainRace(t *testing.T) {
	b := &both{id: NewIdeal(2), ft: NewFastTrack(FastTrackConfig{Threads: 2})}
	d := drive(b)
	d.acc(0, x, trace.Write, trace.Data)
	rep := d.acc(1, x, trace.Read, trace.Data)
	if len(rep.Races) != 1 {
		t.Fatalf("races = %d", len(rep.Races))
	}
	r := rep.Races[0]
	if r.First.Thread != 0 || r.First.Kind != trace.Write || r.Second.Seq != 1 {
		t.Fatalf("race = %+v", r)
	}
	if r.First.Seq != trace.SeqUnknown {
		t.Fatalf("epoch detector cannot know the first access's seq: %+v", r)
	}
	if !b.id.Confirms(r) {
		t.Fatal("ideal does not confirm the FastTrack race")
	}
	if !b.ft.ProblemDetected() || b.ft.RaceCount() != 1 || len(b.ft.Races()) != 1 {
		t.Fatalf("accounting: count=%d stored=%d", b.ft.RaceCount(), len(b.ft.Races()))
	}
}

func TestFastTrackAcquireReleaseOrders(t *testing.T) {
	ft := NewFastTrack(FastTrackConfig{Threads: 2})
	d := drive(ft)
	d.acc(0, x, trace.Write, trace.Data)
	d.acc(0, l, trace.Write, trace.Sync) // release
	d.acc(1, l, trace.Read, trace.Sync)  // acquire
	if rep := d.acc(1, x, trace.Read, trace.Data); len(rep.Races) != 0 {
		t.Fatalf("synchronized pair reported: %+v", rep.Races)
	}
	// The reverse direction is NOT ordered: a failed-TAS-style sync read
	// grants no release edge to a later sync writer.
	d.acc(0, y, trace.Write, trace.Data)
	d.acc(0, l, trace.Read, trace.Sync)
	d.acc(1, l, trace.Write, trace.Sync)
	if rep := d.acc(1, y, trace.Write, trace.Data); len(rep.Races) != 1 {
		t.Fatalf("write-after-read treated as synchronization: %+v", rep.Races)
	}
}

func TestFastTrackReadReadNotRace(t *testing.T) {
	ft := NewFastTrack(FastTrackConfig{Threads: 2})
	d := drive(ft)
	d.acc(0, x, trace.Read, trace.Data)
	if rep := d.acc(1, x, trace.Read, trace.Data); len(rep.Races) != 0 {
		t.Fatal("read-read reported as race")
	}
	if ft.RaceCount() != 0 {
		t.Fatalf("race count = %d", ft.RaceCount())
	}
}

func TestFastTrackWriteWriteRace(t *testing.T) {
	ft := NewFastTrack(FastTrackConfig{Threads: 2})
	d := drive(ft)
	d.acc(0, x, trace.Write, trace.Data)
	rep := d.acc(1, x, trace.Write, trace.Data)
	if len(rep.Races) != 1 || rep.Races[0].First.Kind != trace.Write {
		t.Fatalf("write-write race: %+v", rep.Races)
	}
}

func TestFastTrackSameEpochFastPathDoesNotRecount(t *testing.T) {
	ft := NewFastTrack(FastTrackConfig{Threads: 2})
	d := drive(ft)
	d.acc(0, x, trace.Write, trace.Data)
	d.acc(1, x, trace.Read, trace.Data) // racy read
	d.acc(1, x, trace.Read, trace.Data) // same epoch: fast path, no recount
	if ft.RaceCount() != 1 {
		t.Fatalf("same-epoch read recounted: %d", ft.RaceCount())
	}
	d.acc(1, x, trace.Write, trace.Data) // racy write (vs T0's write)
	d.acc(1, x, trace.Write, trace.Data) // same epoch: fast path
	if ft.RaceCount() != 2 {
		t.Fatalf("same-epoch write recounted: %d", ft.RaceCount())
	}
}

func TestFastTrackInflateAndWriteSeesAllReaders(t *testing.T) {
	// Three concurrent readers force the read state into the vector
	// representation; an unordered write then races with every reader.
	ft := NewFastTrack(FastTrackConfig{Threads: 4})
	d := drive(ft)
	d.acc(0, x, trace.Read, trace.Data)
	d.acc(1, x, trace.Read, trace.Data)
	d.acc(2, x, trace.Read, trace.Data)
	rep := d.acc(3, x, trace.Write, trace.Data)
	if len(rep.Races) != 3 {
		t.Fatalf("write to read-shared word found %d of 3 readers", len(rep.Races))
	}
	for _, r := range rep.Races {
		if r.First.Kind != trace.Read || r.Second.Thread != 3 {
			t.Fatalf("race = %+v", r)
		}
	}
}

func TestFastTrackExclusiveReadStaysEpoch(t *testing.T) {
	// Reads ordered by release/acquire keep the epoch representation: the
	// metadata footprint stays at 2 words for x plus one sync vector.
	ft := NewFastTrack(FastTrackConfig{Threads: 2})
	d := drive(ft)
	d.acc(0, x, trace.Read, trace.Data)
	d.acc(0, l, trace.Write, trace.Sync)
	d.acc(1, l, trace.Read, trace.Sync)
	d.acc(1, x, trace.Read, trace.Data) // ordered after T0's read: takeover
	if got, want := ft.MetadataWords(), 2+2; got != want {
		t.Fatalf("ordered reads inflated: %d words, want %d", got, want)
	}
}

func TestFastTrackDeflateRecyclesVector(t *testing.T) {
	ft := NewFastTrack(FastTrackConfig{Threads: 2})
	d := drive(ft)
	d.acc(0, x, trace.Read, trace.Data)
	d.acc(1, x, trace.Read, trace.Data) // concurrent: inflate
	if got, want := ft.MetadataWords(), 2+2; got != want {
		t.Fatalf("after inflation: %d words, want %d", got, want)
	}
	d.acc(1, x, trace.Write, trace.Data) // deflates back to epochs
	if got, want := ft.MetadataWords(), 2; got != want {
		t.Fatalf("after deflation: %d words, want %d", got, want)
	}
	sh := ft.shadow.shard(x)
	if len(sh.freeVecs) != 1 {
		t.Fatalf("deflated vector not on free list: %d", len(sh.freeVecs))
	}
	// Re-inflation must reuse the freed vector, fully cleared.
	d.acc(0, x, trace.Read, trace.Data)
	d.acc(1, x, trace.Read, trace.Data)
	if len(sh.freeVecs) != 0 {
		t.Fatal("re-inflation did not pop the free list")
	}
	w := sh.word(x)
	if w.readVec == nil {
		t.Fatal("read state not inflated")
	}
	// Only the two fresh reads may be present — stale components from the
	// recycled vector would be unsound (phantom readers).
	for i, c := range w.readVec {
		if i >= 2 && c != 0 {
			t.Fatalf("recycled vector kept stale component %d=%d", i, c)
		}
	}
}

func TestFastTrackMetadataWordsAccounting(t *testing.T) {
	ft := NewFastTrack(FastTrackConfig{Threads: 4, Shards: 8})
	d := drive(ft)
	d.acc(0, x, trace.Write, trace.Data) // word x: 2
	d.acc(0, y, trace.Read, trace.Data)  // word y: 2
	d.acc(0, l, trace.Write, trace.Sync) // sync l: 4
	if got, want := ft.MetadataWords(), 2+2+4; got != want {
		t.Fatalf("metadata words = %d, want %d", got, want)
	}
}

func TestFastTrackShardCountInvariant(t *testing.T) {
	run := func(shards int) *FastTrack {
		ft := NewFastTrack(FastTrackConfig{Threads: 4, Shards: shards})
		d := drive(ft)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 4000; i++ {
			th := rng.Intn(4)
			addr := memsys.Addr(0x1000 + 8*rng.Intn(64))
			kind := trace.Read
			if rng.Intn(2) == 0 {
				kind = trace.Write
			}
			class := trace.Data
			if rng.Intn(8) == 0 {
				class = trace.Sync
			}
			d.acc(th, addr, kind, class)
		}
		return ft
	}
	a, b := run(1), run(16)
	if a.RaceCount() != b.RaceCount() {
		t.Fatalf("race count differs across shard counts: %d vs %d", a.RaceCount(), b.RaceCount())
	}
	if a.MetadataWords() != b.MetadataWords() {
		t.Fatalf("metadata differs across shard counts: %d vs %d", a.MetadataWords(), b.MetadataWords())
	}
	ra, rb := a.Races(), b.Races()
	if len(ra) != len(rb) {
		t.Fatalf("stored races differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("race %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestFastTrackStoredRaceCap(t *testing.T) {
	ft := NewFastTrack(FastTrackConfig{Threads: 2, MaxStoredRaces: 2})
	d := drive(ft)
	for i := 0; i < 4; i++ {
		addr := memsys.Addr(0x1000 + 8*i)
		d.acc(0, addr, trace.Write, trace.Data)
		d.acc(1, addr, trace.Write, trace.Data)
	}
	if got := len(ft.Races()); got != 2 {
		t.Fatalf("stored races = %d, want cap 2", got)
	}
	if ft.RaceCount() != 4 {
		t.Fatalf("race count = %d, want 4 (counter is uncapped)", ft.RaceCount())
	}
}

func TestFastTrackConfirmedByIdealRandomized(t *testing.T) {
	// Randomized cross-check of the no-false-positive invariant: every race
	// FastTrack reports over a mixed data/sync workload is one Ideal's full
	// per-access oracle also found.
	b := &both{id: NewIdeal(4), ft: NewFastTrack(FastTrackConfig{Threads: 4, Shards: 4})}
	d := drive(b)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		th := rng.Intn(4)
		class := trace.Data
		var addr memsys.Addr
		if rng.Intn(6) == 0 {
			class = trace.Sync
			addr = memsys.Addr(0x9000 + 8*rng.Intn(4))
		} else {
			addr = memsys.Addr(0x1000 + 8*rng.Intn(128))
		}
		kind := trace.Read
		if rng.Intn(2) == 0 {
			kind = trace.Write
		}
		d.acc(th, addr, kind, class)
	}
	races := b.ft.Races()
	if len(races) == 0 {
		t.Fatal("workload produced no races; test is vacuous")
	}
	for _, r := range races {
		if !b.id.Confirms(r) {
			t.Fatalf("false positive: %+v", r)
		}
	}
}
