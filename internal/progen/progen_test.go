package progen

import (
	"testing"

	"cord/internal/sim"
)

func TestDeterministicGeneration(t *testing.T) {
	a := New(7, DefaultConfig())
	b := New(7, DefaultConfig())
	ra, err := sim.New(sim.Config{Seed: 3, Jitter: 5}, a.Prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sim.New(sim.Config{Seed: 3, Jitter: 5}, b.Prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if ra.Ops != rb.Ops || ra.Accesses != rb.Accesses {
		t.Fatalf("same seed generated different programs: %+v vs %+v", ra, rb)
	}
	for i := range ra.ReadHash {
		if ra.ReadHash[i] != rb.ReadHash[i] {
			t.Fatal("read hashes differ")
		}
	}
}

func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		p := New(seed, DefaultConfig())
		res, err := sim.New(sim.Config{Seed: seed * 3, Jitter: 7}, p.Prog).Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Hung {
			t.Fatalf("seed %d: generated program deadlocked", seed)
		}
		if res.Accesses == 0 {
			t.Fatalf("seed %d: program did nothing", seed)
		}
	}
}

func TestFirstPhaseSyncCountsAreExact(t *testing.T) {
	// Removing the Nth (N <= FirstPhaseSync[t]) instance of thread t must
	// fire in every schedule.
	p := New(11, DefaultConfig())
	for tid, n := range p.FirstPhaseSync {
		if n == 0 {
			continue
		}
		for _, seed := range []uint64{1, 9, 77} {
			res, err := sim.New(sim.Config{
				Seed: seed, Jitter: 7,
				InjectThread: tid, InjectThreadNth: uint64(n),
			}, New(11, DefaultConfig()).Prog).Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.InjectedThread != tid || res.InjectedThreadNth != uint64(n) {
				t.Fatalf("injection (t%d,#%d) did not fire at seed %d: got (t%d,#%d)",
					tid, n, seed, res.InjectedThread, res.InjectedThreadNth)
			}
		}
		break // one thread suffices per run; loop kept for the zero-skip
	}
}

func TestVariedShapes(t *testing.T) {
	shapes := []Config{
		{Threads: 2, Regions: 1, RegionWords: 4, OpsPerThread: 10},
		{Threads: 8, Regions: 12, RegionWords: 64, OpsPerThread: 80, Phases: 3, PrivateWords: 256},
		{Threads: 3, Regions: 2, RegionWords: 8, OpsPerThread: 30, Phases: 1},
	}
	for i, cfg := range shapes {
		p := New(uint64(i)+100, cfg)
		res, err := sim.New(sim.Config{Seed: 5, Jitter: 7, Procs: cfg.Threads}, p.Prog).Run()
		if err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
		if res.Hung {
			t.Fatalf("shape %d hung", i)
		}
	}
}
