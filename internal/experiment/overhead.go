package experiment

import (
	"fmt"

	"cord/internal/core"
	"cord/internal/machine"
	"cord/internal/sim"
	"cord/internal/trace"
)

// OverheadRow is one application's Figure 11 measurement. The json tags are
// the stable wire encoding used by exported benchmark artifacts.
type OverheadRow struct {
	App            string `json:"app"`
	BaselineCycles uint64 `json:"baseline_cycles"`
	CordCycles     uint64 `json:"cord_cycles"`
	// Relative is CordCycles / BaselineCycles (1.004 = 0.4% overhead).
	Relative float64 `json:"relative"`
	// CheckRequests and MemTsUpdates are CORD's address/timestamp-bus
	// transactions during the run.
	CheckRequests   uint64 `json:"check_requests"`
	MemTsBroadcasts uint64 `json:"mem_ts_broadcasts"`
	LogBytes        int    `json:"log_bytes"`
}

// RunOverhead reproduces Figure 11: each application runs twice on the
// detailed machine timing model — once without any CORD support and once
// with the CORD detector's race-check and memory-timestamp traffic coupled
// into the address/timestamp bus — and reports the execution-time ratio,
// averaged over several seeds (the workloads' interleavings, and for
// task-queue applications even the per-thread work split, vary with the
// schedule, so single-seed ratios are noisy).
func RunOverhead(o Options) ([]OverheadRow, Figure, error) {
	o = o.withDefaults()
	const seeds = 5
	fig := Figure{
		ID:      "fig11",
		Title:   "Execution time with CORD relative to baseline (no recording, no DRD)",
		Columns: []string{"relative time"},
		Notes: []string{
			"paper: 0.4% average overhead, 3% worst case (cholesky)",
			fmt.Sprintf("each cell is the cycle ratio summed over %d seeds", seeds),
		},
	}

	// Each (app, seed) pair is one independent baseline+CORD measurement;
	// the flat pair list fans out across o.Procs workers and aggregates in
	// index order, keeping per-row sums identical at any worker count. The
	// json tags make each measurement journal-able under checkpointing.
	type measurement struct {
		BaseCycles uint64 `json:"base_cycles"`
		CordCycles uint64 `json:"cord_cycles"`
		Checks     uint64 `json:"checks"`
		MemTs      uint64 `json:"mem_ts"`
		LogBytes   int    `json:"log_bytes"`
	}
	ms := make([]measurement, len(o.Apps)*seeds)
	if err := o.forEach(len(ms), func(k int) error {
		return o.journaledRun("overhead", k/seeds, k%seeds, &ms[k], func() error {
			app, sd := o.Apps[k/seeds], uint64(k%seeds)
			seed := o.BaseSeed + 31*sd
			base, err := o.runSim("baseline for", app, o.Threads, sim.Config{
				Seed: seed, Jitter: 2,
				Cost: machine.New(machine.DefaultConfig()),
			})
			if err != nil {
				return err
			}
			det := core.New(core.Config{Threads: o.Threads, Procs: o.Threads, D: 16, Record: true})
			cordRun, err := o.runSim("CORD run for", app, o.Threads, sim.Config{
				Seed: seed, Jitter: 2,
				Cost:      machine.New(machine.DefaultConfig()),
				Observers: []trace.Observer{det},
				Primary:   det,
			})
			if err != nil {
				return err
			}
			st := det.Stats()
			ms[k] = measurement{
				BaseCycles: base.Cycles,
				CordCycles: cordRun.Cycles,
				Checks:     st.CheckRequests,
				MemTs:      st.MemTsBroadcasts,
				LogBytes:   det.Log().SizeBytes(),
			}
			return nil
		})
	}); err != nil {
		return nil, Figure{}, err
	}

	var rows []OverheadRow
	var sumBase, sumCord uint64
	for appIdx, app := range o.Apps {
		row := OverheadRow{App: app.Name}
		for sd := 0; sd < seeds; sd++ {
			m := ms[appIdx*seeds+sd]
			row.BaselineCycles += m.BaseCycles
			row.CordCycles += m.CordCycles
			row.CheckRequests += m.Checks
			row.MemTsBroadcasts += m.MemTs
			row.LogBytes += m.LogBytes
		}
		row.Relative = float64(row.CordCycles) / float64(row.BaselineCycles)
		rows = append(rows, row)
		fig.Rows = append(fig.Rows, Row{Label: app.Name, Values: []float64{row.Relative}})
		sumBase += row.BaselineCycles
		sumCord += row.CordCycles
		if o.Progress != nil {
			fmt.Fprintf(o.Progress, "%-10s baseline=%d cord=%d (%.2f%%) checks=%d\n",
				app.Name, row.BaselineCycles, row.CordCycles, (row.Relative-1)*100, row.CheckRequests)
		}
	}
	fig.Rows = append(fig.Rows, Row{Label: "Average", Values: []float64{float64(sumCord) / float64(sumBase)}})
	return rows, fig, nil
}
