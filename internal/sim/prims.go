package sim

import "cord/internal/memsys"

// Barrier is a sense-style barrier built exactly the way the paper describes
// Splash-2 barriers (§3.4): a mutex-protected arrival count plus a
// generation flag that waiters spin on. Every dynamic invocation of the
// internal mutex acquire and of the internal flag wait is a separately
// countable (and hence separately injectable) synchronization instance,
// which is what makes barrier-removal injections hard to detect — only one
// thread's one primitive is removed, not the whole barrier.
type Barrier struct {
	n     int
	mu    memsys.Addr // internal mutex word
	count memsys.Addr // arrival count (data, protected by mu)
	gen   memsys.Addr // generation flag (sync)
}

// NewBarrier allocates a barrier for n threads. Each word sits on its own
// cache line so barrier metadata does not false-share with workload data.
func NewBarrier(al *memsys.Allocator, n int) *Barrier {
	p := al.AllocPadded(3)
	return &Barrier{n: n, mu: p.Word(0), count: p.Word(1), gen: p.Word(2)}
}

// Wait blocks until all n threads have arrived.
func (b *Barrier) Wait(env *Env) {
	env.Lock(b.mu)
	c := env.Read(b.count) + 1
	env.Write(b.count, c)
	if int(c) >= b.n {
		env.Write(b.count, 0)
		g := env.SyncRead(b.gen)
		env.FlagSet(b.gen, g+1)
		env.Unlock(b.mu)
		return
	}
	g := env.SyncRead(b.gen)
	env.Unlock(b.mu)
	env.FlagWaitAtLeast(b.gen, g+1)
}

// Mutex is a convenience wrapper around a lock word.
type Mutex struct {
	Addr memsys.Addr
}

// NewMutex allocates a mutex on its own cache line.
func NewMutex(al *memsys.Allocator) Mutex {
	return Mutex{Addr: al.AllocPadded(1).Word(0)}
}

// Lock acquires the mutex.
func (m Mutex) Lock(env *Env) { env.Lock(m.Addr) }

// Unlock releases the mutex.
func (m Mutex) Unlock(env *Env) { env.Unlock(m.Addr) }

// Flag is a one-word condition variable.
type Flag struct {
	Addr memsys.Addr
}

// NewFlag allocates a flag on its own cache line.
func NewFlag(al *memsys.Allocator) Flag {
	return Flag{Addr: al.AllocPadded(1).Word(0)}
}

// Set publishes v.
func (f Flag) Set(env *Env, v uint64) { env.FlagSet(f.Addr, v) }

// WaitAtLeast blocks until the flag holds at least v.
func (f Flag) WaitAtLeast(env *Env, v uint64) { env.FlagWaitAtLeast(f.Addr, v) }
