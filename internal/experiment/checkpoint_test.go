package experiment

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cord/internal/chaos"
	"cord/internal/checkpoint"
)

// fastRetry keeps chaotic tests quick: real backoff schedules are for
// production, not for the unit-test loop.
var fastRetry = Retry{Attempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}

// encodeDetection renders the fixture detection campaign's artifacts into one
// byte stream, the currency every byte-identity assertion here trades in.
func encodeDetection(t *testing.T, o Options, res *DetectionResults) []byte {
	t.Helper()
	meta := o.Meta()
	var buf bytes.Buffer
	for _, f := range []Figure{res.Fig10(), res.Fig12(), res.Fig16()} {
		a := FigureArtifact(f, meta)
		b, err := a.Encode()
		if err != nil {
			t.Fatalf("%s: %v", a.ID, err)
		}
		fmt.Fprintf(&buf, "== %s ==\n", a.ID)
		buf.Write(b)
	}
	return buf.Bytes()
}

// Environment contract of the crash-resume helper subprocess.
const (
	ckptHelperOut     = "CORD_CKPT_OUT"     // artifact output file
	ckptHelperJournal = "CORD_CKPT_JOURNAL" // checkpoint journal path
)

// TestCheckpointHelper is the subprocess side of the crash-resume check.
// Under normal `go test` runs (env unset) it does nothing. When re-executed
// by TestCrashResumeByteIdentical it runs the fixture detection campaign
// under a checkpoint journal and whatever CORD_CHAOS the parent armed —
// typically crash-after=K, which os.Exit(42)s this process mid-campaign
// with no cleanup, the in-process stand-in for kill -9.
func TestCheckpointHelper(t *testing.T) {
	out := os.Getenv(ckptHelperOut)
	if out == "" {
		t.Skip("not running as a checkpoint helper")
	}
	jl, err := checkpoint.Open(os.Getenv(ckptHelperJournal))
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	cha, err := chaos.FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	o := twoAppOpts(2)
	o.Checkpoint = jl
	o.Chaos = cha
	o.Retry = fastRetry
	res, err := RunDetection(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, encodeDetection(t, o, res), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCrashResumeByteIdentical is the acceptance test for crash-safe
// campaigns: a campaign killed without cleanup (chaos crash-after=K →
// os.Exit, no flushes, no defers) and then resumed from its journal must
// produce artifacts byte-identical to an uninterrupted run. The helper is
// re-invoked with the same journal until it survives; every invocation
// before that must die with chaos.CrashExitCode.
func TestCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns campaign subprocesses")
	}
	// The uninterrupted reference, in-process.
	ref := twoAppOpts(2)
	res, err := RunDetection(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeDetection(t, ref, res)

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	outPath := filepath.Join(dir, "artifacts")
	journal := filepath.Join(dir, "journal.cordckpt")
	crashes := 0
	for attempt := 0; ; attempt++ {
		if attempt > 20 {
			t.Fatalf("campaign still crashing after %d resumes", attempt)
		}
		cmd := exec.Command(exe, "-test.run=^TestCheckpointHelper$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			ckptHelperOut+"="+outPath,
			ckptHelperJournal+"="+journal,
			chaos.EnvVar+"=crash-after=3",
		)
		b, err := cmd.CombinedOutput()
		if err == nil {
			break // survived: fewer than K runs were left to do
		}
		var xerr *exec.ExitError
		if !errors.As(err, &xerr) || xerr.ExitCode() != chaos.CrashExitCode {
			t.Fatalf("helper died with %v, want exit %d:\n%s", err, chaos.CrashExitCode, b)
		}
		crashes++
	}
	if crashes == 0 {
		t.Fatal("campaign never crashed; crash-after=3 should kill a 10-run campaign at least once")
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("artifacts after %d crash/resume cycles differ from the uninterrupted run:\nresumed:\n%s\nuninterrupted:\n%s",
			crashes, got, want)
	}
	t.Logf("campaign survived %d injected crashes; artifacts byte-identical", crashes)
}

// TestResumeSkipsJournaledRuns: resuming a completed campaign re-simulates
// nothing — every run is a checkpoint hit — and reproduces the rows exactly.
func TestResumeSkipsJournaledRuns(t *testing.T) {
	jl, err := checkpoint.Open(filepath.Join(t.TempDir(), "j.cordckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	o := twoAppOpts(1)
	o.Checkpoint = jl
	rows1, err := RunTable1(o)
	if err != nil {
		t.Fatal(err)
	}
	if jl.Len() != len(o.Apps) {
		t.Fatalf("journal holds %d runs, want %d", jl.Len(), len(o.Apps))
	}
	hitsBefore := jl.Hits()
	rows2, err := RunTable1(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := jl.Hits() - hitsBefore; got != len(o.Apps) {
		t.Fatalf("resume hit the journal %d times, want %d (every run skipped)", got, len(o.Apps))
	}
	if fmt.Sprint(rows1) != fmt.Sprint(rows2) {
		t.Fatalf("resumed rows differ:\n%v\nvs\n%v", rows1, rows2)
	}
}

// TestJournalMissesAcrossConfigs: a journal written under one campaign
// configuration must not leak outcomes into another — the fingerprint in the
// run key keeps lookups from aliasing.
func TestJournalMissesAcrossConfigs(t *testing.T) {
	jl, err := checkpoint.Open(filepath.Join(t.TempDir(), "j.cordckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	o := twoAppOpts(1)
	o.Checkpoint = jl
	if _, err := RunTable1(o); err != nil {
		t.Fatal(err)
	}
	hits := jl.Hits()
	o2 := o
	o2.BaseSeed++ // different campaign configuration
	if _, err := RunTable1(o2); err != nil {
		t.Fatal(err)
	}
	if jl.Hits() != hits {
		t.Fatalf("a different BaseSeed reused %d journaled outcomes", jl.Hits()-hits)
	}
	if jl.Len() != 2*len(o.Apps) {
		t.Fatalf("journal holds %d entries, want %d (both configurations journaled)", jl.Len(), 2*len(o.Apps))
	}
}

// TestTransientChaosCompletesIdentically is the other acceptance property:
// a campaign where a fifth of the runs fail transiently must complete via
// retries with a clean, byte-identical artifact — chaos may change timing,
// never results.
func TestTransientChaosCompletesIdentically(t *testing.T) {
	ref := twoAppOpts(2)
	res, err := RunDetection(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeDetection(t, ref, res)

	cha, err := chaos.Parse("run-fail=0.2,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	o := twoAppOpts(2)
	o.Chaos = cha
	o.Retry = fastRetry
	chaotic, err := RunDetection(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeDetection(t, o, chaotic); !bytes.Equal(got, want) {
		t.Fatalf("chaotic campaign artifacts differ from the calm run:\nchaotic:\n%s\ncalm:\n%s", got, want)
	}
}

// TestTransientFailurePersisting: when a transient failure outlives the
// retry budget the campaign fails with a classified error instead of looping.
func TestTransientFailurePersisting(t *testing.T) {
	o := Options{Procs: 1, Retry: fastRetry.withDefaults()}
	calls := 0
	var sink struct{}
	err := o.journaledRun("stubborn", 0, 0, &sink, func() error {
		calls++
		return &stubTransient{}
	})
	if err == nil || !strings.Contains(err.Error(), "transient failure persisted") {
		t.Fatalf("err = %v, want a persisted-transient classification", err)
	}
	if calls != fastRetry.Attempts {
		t.Fatalf("ran %d attempts, want %d", calls, fastRetry.Attempts)
	}
}

type stubTransient struct{}

func (*stubTransient) Error() string   { return "stub transient" }
func (*stubTransient) Transient() bool { return true }

// TestFatalFailureDoesNotRetry: non-transient errors abort on the first
// attempt; the retry ladder is only for failures that declare themselves
// recoverable.
func TestFatalFailureDoesNotRetry(t *testing.T) {
	o := Options{Procs: 1, Retry: fastRetry.withDefaults()}
	boom := errors.New("fatal")
	calls := 0
	var sink struct{}
	if err := o.journaledRun("fatal", 0, 0, &sink, func() error {
		calls++
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls != 1 {
		t.Fatalf("fatal error was attempted %d times, want 1", calls)
	}
}

// TestJournalFaultIsNonFatal: a failed journal append costs durability, not
// the campaign — the run's outcome is already in memory and the failure is
// reported on Progress.
func TestJournalFaultIsNonFatal(t *testing.T) {
	jl, err := checkpoint.Open(filepath.Join(t.TempDir(), "j.cordckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	cha, err := chaos.Parse("journal-fail=1")
	if err != nil {
		t.Fatal(err)
	}
	var progress bytes.Buffer
	o := twoAppOpts(1)
	o.Checkpoint = jl
	o.Chaos = cha
	o.Progress = &progress
	if _, err := RunTable1(o); err != nil {
		t.Fatal(err)
	}
	if jl.Len() != 0 {
		t.Fatalf("journal holds %d entries despite journal-fail=1", jl.Len())
	}
	if !strings.Contains(progress.String(), "not journaled") {
		t.Fatalf("progress does not report the dropped appends:\n%s", progress.String())
	}
}

// TestInterruptStopsDispatch: a closed Interrupt channel surfaces
// ErrInterrupted from every campaign entry point instead of running work.
func TestInterruptStopsDispatch(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	o := twoAppOpts(1)
	o.Interrupt = stop
	if _, err := RunTable1(o); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("serial: err = %v, want ErrInterrupted", err)
	}
	o = twoAppOpts(4)
	o.Interrupt = stop
	if _, err := RunDetection(o); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("parallel: err = %v, want ErrInterrupted", err)
	}
}

// TestInterruptDrainsAndJournals: interrupting mid-campaign keeps the runs
// that already completed — they are in the journal, and a resume finds them.
func TestInterruptDrainsAndJournals(t *testing.T) {
	jl, err := checkpoint.Open(filepath.Join(t.TempDir(), "j.cordckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	stop := make(chan struct{})
	var once sync.Once
	o := twoAppOpts(1)
	o.Checkpoint = jl
	o.Interrupt = stop
	// Interrupt as the first run's outcome is journaled; the serial loop
	// must notice before dispatching the second run.
	jl.SetWriteFault(func() error {
		once.Do(func() { close(stop) })
		return nil
	})
	_, err = RunTable1(o)
	jl.SetWriteFault(nil)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if jl.Len() == 0 {
		t.Fatal("no completed run was journaled before the interrupt")
	}
	if jl.Len() >= len(o.Apps) {
		t.Fatalf("all %d runs completed; the interrupt stopped nothing", jl.Len())
	}

	// The resume completes the campaign reusing the drained runs.
	o2 := twoAppOpts(1)
	o2.Checkpoint = jl
	if _, err := RunTable1(o2); err != nil {
		t.Fatal(err)
	}
	if jl.Hits() == 0 {
		t.Fatal("resume reused none of the journaled runs")
	}
}

// TestForEachJoinsDistinctErrors: parallel campaign failures report every
// distinct per-worker first error, not whichever lost the race; duplicate
// failure texts collapse to one.
func TestForEachJoinsDistinctErrors(t *testing.T) {
	const procs = 4
	o := Options{Procs: procs}
	var gate sync.WaitGroup
	gate.Add(procs)
	err := o.forEach(procs, func(i int) error {
		// Hold every worker at the barrier so all of them fail, not just
		// whichever errored first.
		gate.Done()
		gate.Wait()
		return fmt.Errorf("app %d exploded", i)
	})
	if err == nil {
		t.Fatal("no error returned")
	}
	for i := 0; i < procs; i++ {
		if !strings.Contains(err.Error(), fmt.Sprintf("app %d exploded", i)) {
			t.Fatalf("joined error lost worker %d's failure:\n%v", i, err)
		}
	}

	// Identical failure text from every worker collapses to one line.
	gate = sync.WaitGroup{}
	gate.Add(procs)
	err = o.forEach(procs, func(i int) error {
		gate.Done()
		gate.Wait()
		return errors.New("same failure")
	})
	if err == nil || strings.Count(err.Error(), "same failure") != 1 {
		t.Fatalf("duplicate errors did not collapse:\n%v", err)
	}
}

// TestRetryDelayDeterministicAndBounded: the backoff schedule is a pure
// function of (key, attempt) and never exceeds MaxDelay plus its jitter.
func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	r := Retry{}.withDefaults()
	for attempt := 1; attempt <= 6; attempt++ {
		a := r.delay("k", attempt)
		if b := r.delay("k", attempt); a != b {
			t.Fatalf("attempt %d: delay is not deterministic (%v vs %v)", attempt, a, b)
		}
		if a <= 0 || a > r.MaxDelay+r.MaxDelay/2 {
			t.Fatalf("attempt %d: delay %v outside (0, MaxDelay*1.5]", attempt, a)
		}
	}
	if r.delay("k", 1) == r.delay("other", 1) {
		t.Fatal("jitter ignores the run key; parallel retries would thundering-herd")
	}
}
