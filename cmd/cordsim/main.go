// Command cordsim runs one Table 1 application on the simulated CMP with a
// chosen set of detectors attached, optionally removing one dynamic
// synchronization instance (the paper's §3.4 fault injection), and reports
// what each detector found.
//
// Usage:
//
//	cordsim -app raytrace -seed 3 -inject 17 -d 16
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"text/tabwriter"

	"cord"
	"cord/internal/server"
)

func main() {
	os.Exit(run())
}

// validateFlags rejects out-of-domain parameters before any simulation work,
// mirroring cordbench: bad invocations exit 2 with usage instead of failing
// deep inside a run (or silently simulating a nonsensical configuration).
func validateFlags(scale, threads, d, races int) error {
	if scale <= 0 || threads <= 0 {
		return fmt.Errorf("-scale and -threads must be at least 1")
	}
	if d < 1 {
		return fmt.Errorf("-d must be at least 1 (the paper's sync-read window is a positive count)")
	}
	if races < 0 {
		return fmt.Errorf("-races must be non-negative")
	}
	return nil
}

func run() int {
	var (
		appName    = flag.String("app", "raytrace", "application (see -list)")
		list       = flag.Bool("list", false, "list applications and exit")
		seed       = flag.Uint64("seed", 1, "scheduling seed")
		scale      = flag.Int("scale", 1, "workload scale factor")
		threads    = flag.Int("threads", 4, "threads (= processors)")
		inject     = flag.Uint64("inject", 0, "remove the Nth dynamic sync instance (0 = none)")
		d          = flag.Int("d", 16, "CORD sync-read window D")
		races      = flag.Int("races", 10, "max races to print per detector")
		jsonPath   = flag.String("json", "", "write a machine-readable run summary to this file (- for stdout)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if err := validateFlags(*scale, *threads, *d, *races); err != nil {
		fmt.Fprintf(os.Stderr, "cordsim: %v\n", err)
		flag.Usage()
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cordsim: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cordsim: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cordsim: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "cordsim: writing heap profile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, a := range cord.Apps() {
			fmt.Printf("%-10s (paper input: %s)\n", a.Name, a.Input)
		}
		return 0
	}

	var app cord.App
	found := false
	for _, a := range cord.Apps() {
		if a.Name == *appName {
			app, found = a, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "cordsim: unknown application %q (try -list)\n", *appName)
		return 2
	}

	det := cord.NewDetector(cord.DetectorConfig{Threads: *threads, Procs: *threads, D: *d, Record: true})
	ideal := cord.NewIdealDetector(*threads)
	vec := cord.NewVectorDetector(cord.VectorConfig{Threads: *threads, Procs: *threads, Bound: cord.BoundL2})

	res, err := cord.Run(app.Build(*scale, *threads), cord.RunConfig{
		Seed: *seed, Jitter: 7, InjectSkip: *inject,
		Observers: []cord.Observer{ideal, vec, det},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordsim: %v\n", err)
		return 1
	}

	fmt.Printf("%s seed=%d scale=%d threads=%d inject=%d\n", app.Name, *seed, *scale, *threads, *inject)
	fmt.Printf("  accesses=%d instructions=%d sync-instances=%d hung=%v\n",
		res.Accesses, res.Ops, res.SyncInstances, res.Hung)
	if *inject > 0 {
		if *inject > res.SyncInstances {
			fmt.Fprintf(os.Stderr,
				"cordsim: warning: -inject %d exceeds the run's %d dynamic sync instances; nothing was removed\n",
				*inject, res.SyncInstances)
		} else {
			fmt.Printf("  removed instance: thread %d, its %d-th own sync operation\n",
				res.InjectedThread, res.InjectedThreadNth)
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "detector\tracy accesses\tproblem detected")
	fmt.Fprintf(w, "%s\t%d\t%v\n", ideal.Name(), ideal.RaceCount(), ideal.ProblemDetected())
	fmt.Fprintf(w, "%s\t%d\t%v\n", vec.Name(), vec.RaceCount(), vec.ProblemDetected())
	fmt.Fprintf(w, "%s\t%d\t%v\n", det.Name(), det.RaceCount(), det.ProblemDetected())
	w.Flush()

	st := det.Stats()
	fmt.Printf("CORD activity: checks=%d memTsBroadcasts=%d clockChanges=%d log=%d bytes\n",
		st.CheckRequests, st.MemTsBroadcasts, st.ClockChanges, det.Log().SizeBytes())

	shown := 0
	for _, r := range det.Races() {
		if shown >= *races {
			fmt.Printf("  ... and %d more\n", det.Stats().RaceReports-shown)
			break
		}
		confirmed := "confirmed by oracle"
		if !ideal.Confirms(r) {
			confirmed = "NOT CONFIRMED (should never happen)"
		}
		fmt.Printf("  %v  [%s]\n", r, confirmed)
		shown++
	}

	if *jsonPath != "" {
		// The summary IS the service's DetectResponse: one schema for both
		// producers, so a cordsim -json file and a POST /v1/detect body for
		// the same parameters are byte-identical.
		sum := server.DetectResponse{
			Schema:  server.SchemaVersion,
			App:     app.Name,
			Seed:    *seed,
			Scale:   *scale,
			Threads: *threads,
			Inject:  *inject,
			D:       *d,
			Result:  res,
			Detectors: []server.DetectorVerdict{
				{Name: ideal.Name(), RacyAccesses: ideal.RaceCount(), ProblemDetected: ideal.ProblemDetected()},
				{Name: vec.Name(), RacyAccesses: vec.RaceCount(), ProblemDetected: vec.ProblemDetected()},
				{Name: det.Name(), RacyAccesses: det.RaceCount(), ProblemDetected: det.ProblemDetected()},
			},
			CordStats: st,
			LogBytes:  det.Log().SizeBytes(),
		}
		for i, r := range det.Races() {
			if i >= server.MaxRacesInResponse {
				break
			}
			sum.Races = append(sum.Races, r.String())
		}
		b, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cordsim: encoding summary: %v\n", err)
			return 1
		}
		b = append(b, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cordsim: %v\n", err)
			return 1
		}
	}
	return 0
}
