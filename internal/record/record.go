// Package record implements the order-recording log of §2.7.1: when a
// thread's logical clock changes, an 8-byte entry is appended containing the
// previous clock value (16 bits), the thread ID (16 bits), and the number of
// instructions executed with that clock value (32 bits). The log, ordered by
// logical time, drives deterministic replay (internal/replay).
//
// The binary wire format (EncodeTo / DecodeFrom / StreamDecoder — what
// cordreplay -log writes, cordlog inspects, and POST /v1/replay and
// /v1/stream accept) is specified normatively in PROTOCOL.md: §2 for the
// header/entry layout, §3 for the clock-unwrap window and order invariants.
// In short: a 16-byte little-endian header (magic "CORD", version 1, entry
// count) followed by fixed-width 8-byte entries, so entry i always lives at
// byte offset 16 + 8*i.
//
// # Error taxonomy
//
// Decoding distinguishes transport failures from malformed input
// (PROTOCOL.md §5 maps these onto the service's HTTP error codes):
//
//   - Errors from the underlying reader (including a header shorter than 16
//     bytes) are returned wrapped as-is: they are I/O problems, not format
//     verdicts.
//   - Structural problems — bad magic, unsupported version, an implausible
//     entry count, or a stream that ends before the header's N entries —
//     wrap ErrBadFormat; test with errors.Is(err, ErrBadFormat).
//   - A truncated entry array additionally wraps io.ErrUnexpectedEOF (a
//     clean EOF mid-array is promoted), so callers can tell "self-declared
//     length vs actual bytes disagree" apart from other format damage.
//
// The header's count field is untrusted: decoders bound it (MaxEntries)
// and cap preallocation, so a hostile header fails on read, not on OOM.
// This is what lets the cordd service feed client-supplied bodies straight
// into the decoder behind a size limit.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"cord/internal/clock"
)

// EntryBytes is the on-disk size of one log entry.
const EntryBytes = 8

// Entry is one order-log record: thread Thread executed Instr instructions
// while its logical clock held the value Clock.
type Entry struct {
	Clock  clock.Scalar
	Thread uint16
	Instr  uint32
}

// String renders the entry for diagnostics.
func (e Entry) String() string {
	return fmt.Sprintf("{t%d clk=%d n=%d}", e.Thread, e.Clock, e.Instr)
}

// Log is an append-only order log. The zero value is ready to use.
type Log struct {
	entries []Entry
}

// Append adds an entry.
func (l *Log) Append(e Entry) { l.entries = append(l.entries, e) }

// Entries returns the raw entries in append order.
func (l *Log) Entries() []Entry { return l.entries }

// Len returns the entry count.
func (l *Log) Len() int { return len(l.entries) }

// SizeBytes returns the encoded payload size (excluding the file header);
// this is the number the paper's "<1 MB per run" claim is about.
func (l *Log) SizeBytes() int { return len(l.entries) * EntryBytes }

// magic identifies an encoded CORD log stream.
var magic = [4]byte{'C', 'O', 'R', 'D'}

const version = 1

// EncodeTo writes the log in its binary format: a 16-byte header (magic,
// version, entry count) followed by 8-byte little-endian entries.
func (l *Log) EncodeTo(w io.Writer) error {
	var hdr [16]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(l.entries)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("record: writing header: %w", err)
	}
	var buf [EntryBytes]byte
	for _, e := range l.entries {
		binary.LittleEndian.PutUint16(buf[0:2], uint16(e.Clock))
		binary.LittleEndian.PutUint16(buf[2:4], e.Thread)
		binary.LittleEndian.PutUint32(buf[4:8], e.Instr)
		if _, err := w.Write(buf[:]); err != nil {
			return fmt.Errorf("record: writing entry: %w", err)
		}
	}
	return nil
}

// ErrBadFormat reports a malformed encoded log.
var ErrBadFormat = errors.New("record: malformed log stream")

// ErrOrderViolation reports a structurally well-formed log whose entries
// break the §3 order invariants — a thread ID outside the session, or a
// per-thread clock delta outside the unwrap window (a regressed or tampered
// clock). PROTOCOL.md §5 maps it onto the order_violation taxonomy (HTTP
// 422): the log parsed, but no valid schedule exists for it. Test with
// errors.Is(err, ErrOrderViolation).
var ErrOrderViolation = errors.New("record: order invariant violated")

// DecodeFrom reads a log previously written by EncodeTo. It is the one-shot
// entry point over the same incremental parser the streaming ingest path
// uses (StreamDecoder): the header is validated first, then entries are read
// in large chunks — never trusting the header's count for preallocation —
// and exactly 16 + 8*N bytes are consumed from r, leaving any trailing bytes
// unread.
func DecodeFrom(r io.Reader) (*Log, error) {
	var hdr [HeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("record: reading header: %w", err)
	}
	var d StreamDecoder
	if err := d.Feed(hdr[:], nil); err != nil {
		return nil, err
	}
	// The count is untrusted input: a malformed header must not make us
	// allocate gigabytes before a single entry has been read. Preallocate at
	// most maxPrealloc entries and let append grow the slice as real data
	// arrives — a truncated stream then fails on read, not on OOM.
	l := &Log{entries: make([]Entry, 0, min(d.Declared(), maxPrealloc))}
	emit := func(e Entry) error { l.entries = append(l.entries, e); return nil }
	buf := make([]byte, 32<<10)
	var fed uint64
	total := d.Declared() * EntryBytes
	for fed < total {
		n := uint64(len(buf))
		if rem := total - fed; rem < n {
			n = rem
		}
		m, err := io.ReadFull(r, buf[:n])
		if m > 0 {
			if ferr := d.Feed(buf[:m], emit); ferr != nil {
				return nil, ferr
			}
			fed += uint64(m)
		}
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("%w: truncated at entry %d of %d: %w",
				ErrBadFormat, d.Decoded(), d.Declared(), err)
		}
	}
	return l, nil
}

// Epoch is a decoded, unwrapped log entry: thread Thread runs Instr
// instructions at unwrapped logical time Time. Epochs with equal Time are
// guaranteed non-conflicting by the recorder (conflicting accesses never
// share a clock value, §2.7.1) and may replay in any order.
type Epoch struct {
	Time   uint64
	Thread int
	Instr  uint32
	// Index preserves the per-thread epoch order for stable sorting.
	Index int
}

// Schedule unwraps the 16-bit clock values into monotone 64-bit logical
// times (entries from one thread are appended in nondecreasing clock order
// and consecutive entries always lie within the sliding window, so the
// per-thread deltas are unambiguous) and returns the epochs sorted by
// logical time, breaking ties by per-thread appearance order.
func (l *Log) Schedule(numThreads int) ([]Epoch, error) {
	last := make([]clock.Scalar, numThreads)
	unwrapped := make([]uint64, numThreads)
	started := make([]bool, numThreads)
	epochs := make([]Epoch, 0, len(l.entries))
	for i, e := range l.entries {
		t := int(e.Thread)
		if t >= numThreads {
			return nil, fmt.Errorf("%w: entry %d names thread %d, have %d threads", ErrOrderViolation, i, t, numThreads)
		}
		if !started[t] {
			started[t] = true
			unwrapped[t] = uint64(e.Clock)
		} else {
			delta := uint16(e.Clock - last[t])
			if int(delta) > clock.Window {
				return nil, fmt.Errorf("%w: entry %d clock regressed for thread %d", ErrOrderViolation, i, t)
			}
			unwrapped[t] += uint64(delta)
		}
		last[t] = e.Clock
		epochs = append(epochs, Epoch{Time: unwrapped[t], Thread: t, Instr: e.Instr, Index: i})
	}
	sort.SliceStable(epochs, func(a, b int) bool {
		if epochs[a].Time != epochs[b].Time {
			return epochs[a].Time < epochs[b].Time
		}
		return epochs[a].Index < epochs[b].Index
	})
	return epochs, nil
}
