// Package clock implements the logical-time machinery of the paper: 16-bit
// scalar Lamport-style clocks with the sliding-window comparison of §2.7.5,
// the D-window "synchronized?" predicate of §2.6, and fixed-size vector
// clocks used by the Ideal and vector-clock baseline detectors.
package clock

// Scalar is a 16-bit logical clock or timestamp value. Arithmetic wraps at
// 2^16; comparisons use a sliding window of half the clock space (2^15 - 1),
// exactly as the hardware comparator described in §2.7.5: two values are
// compared by the sign of their 16-bit difference, which is correct as long
// as all live values fit within the window. The cache walker (internal/cache)
// is responsible for retiring timestamps before they exit the window.
type Scalar uint16

// Window is the sliding-window size: values whose distance exceeds Window
// cannot be ordered reliably and must never coexist.
const Window = 1<<15 - 1

// Before reports whether s happens before t in sliding-window order
// (strictly less within the window).
func (s Scalar) Before(t Scalar) bool { return int16(s-t) < 0 }

// AtOrBefore reports s <= t in sliding-window order.
func (s Scalar) AtOrBefore(t Scalar) bool { return int16(s-t) <= 0 }

// Dist returns the signed window distance t - s. Positive means t is ahead
// of s.
func Dist(s, t Scalar) int { return int(int16(t - s)) }

// SyncedBy reports whether a second access with clock `clk` is considered
// synchronized with a first access timestamped `ts` under window parameter d
// (§2.6): synchronized iff clk >= ts + d, i.e. the clock leads the timestamp
// by at least d. d = 1 is the naive scalar scheme.
func SyncedBy(clk, ts Scalar, d int) bool { return Dist(ts, clk) >= d }

// Add returns s advanced by n (wrapping).
func (s Scalar) Add(n int) Scalar { return s + Scalar(n) }

// MaxScalar returns the later of a and b in window order.
func MaxScalar(a, b Scalar) Scalar {
	if a.Before(b) {
		return b
	}
	return a
}
