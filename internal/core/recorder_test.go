package core

import (
	"math"
	"testing"
)

func TestRecorderEpochDeltas(t *testing.T) {
	r := newRecorder(2, true, 1)
	r.clockChanged(0, 5, 10) // thread 0 ran 10 instrs at clock 1
	r.clockChanged(0, 9, 25) // then 15 at clock 5
	r.threadDone(0, 40)      // then 15 at clock 9
	es := r.log.Entries()
	if len(es) != 3 {
		t.Fatalf("entries %d", len(es))
	}
	if es[0].Clock != 1 || es[0].Instr != 10 {
		t.Fatalf("entry 0 %v", es[0])
	}
	if es[1].Clock != 5 || es[1].Instr != 15 {
		t.Fatalf("entry 1 %v", es[1])
	}
	if es[2].Clock != 9 || es[2].Instr != 15 {
		t.Fatalf("entry 2 %v", es[2])
	}
}

func TestRecorderDisabledIsSilent(t *testing.T) {
	r := newRecorder(1, false, 1)
	r.clockChanged(0, 2, 5)
	r.threadDone(0, 9)
	if r.log.Len() != 0 {
		t.Fatal("disabled recorder logged")
	}
}

// TestRecorderInstructionOverflowSplits: an epoch longer than the 32-bit
// instruction field splits into multiple entries with the same clock
// (§2.7.1's overflow handling, which is race-free because both halves carry
// the same logical time).
func TestRecorderInstructionOverflowSplits(t *testing.T) {
	r := newRecorder(1, true, 1)
	huge := uint64(math.MaxUint32) + 1000
	r.clockChanged(0, 7, huge)
	es := r.log.Entries()
	if len(es) != 2 {
		t.Fatalf("entries %d, want a split", len(es))
	}
	if es[0].Clock != es[1].Clock {
		t.Fatal("split halves carry different clocks")
	}
	if uint64(es[0].Instr)+uint64(es[1].Instr) != huge {
		t.Fatalf("split lost instructions: %d + %d != %d", es[0].Instr, es[1].Instr, huge)
	}
}

func TestMemTimestampsAbsorb(t *testing.T) {
	var m memTimestamps
	if m.absorb(histEntry{}) {
		t.Fatal("invalid entry absorbed")
	}
	if !m.absorb(histEntry{ts: 5, readMask: 1, valid: true}) {
		t.Fatal("read entry not absorbed")
	}
	if !m.hasRead || m.read != 5 || m.hasWrite {
		t.Fatalf("state %+v", m)
	}
	// Older timestamps never regress the registers.
	if m.absorb(histEntry{ts: 3, readMask: 1, valid: true}) {
		t.Fatal("older timestamp advanced the register")
	}
	if !m.absorb(histEntry{ts: 9, writeMask: 2, valid: true}) {
		t.Fatal("write entry not absorbed")
	}
	if m.write != 9 || !m.hasWrite {
		t.Fatalf("state %+v", m)
	}
}

func TestLineStateNewest(t *testing.T) {
	var ls lineState
	if ls.newest() != nil {
		t.Fatal("empty line has a newest entry")
	}
	ls.hist[0] = histEntry{ts: 3, valid: true}
	if n := ls.newest(); n == nil || n.ts != 3 {
		t.Fatal("newest wrong")
	}
	var e histEntry
	e.set(3, wordWrite)
	e.set(3, wordRead)
	if !e.has(3, wordWrite) || !e.has(3, wordRead) || e.has(2, wordRead) {
		t.Fatal("bit ops wrong")
	}
	if !e.any() {
		t.Fatal("any() wrong")
	}
}
