package machine

import (
	"cord/internal/cache"
	"cord/internal/directory"
	"cord/internal/memsys"
	"cord/internal/trace"
)

// DirConfig sizes a directory-coherence machine: instead of shared buses,
// processors exchange point-to-point messages over an on-chip network whose
// cost is counted in hops. The home node for every line is its address
// interleaved across processors.
type DirConfig struct {
	Procs     int
	Hierarchy cache.HierarchyConfig
	// HopCycles is the latency of one network hop (request or response).
	HopCycles uint64
	// HomeLookupCycles is the directory-access latency at the home node.
	HomeLookupCycles uint64
	// MemoryCycles is the DRAM access latency at the home node.
	MemoryCycles uint64
	// L1HitCycles and L2HitCycles match the snooping machine.
	L1HitCycles, L2HitCycles uint64
}

// DefaultDirConfig returns a 16-processor directory machine with latencies
// in the same regime as the §3.1 snooping chip.
func DefaultDirConfig() DirConfig {
	return DirConfig{
		Procs:            16,
		Hierarchy:        cache.DefaultHierarchy(),
		HopCycles:        12,
		HomeLookupCycles: 10,
		MemoryCycles:     600,
		L1HitCycles:      1,
		L2HitCycles:      10,
	}
}

// DirMachine is the timing model for the §2.5 directory extension. It keeps
// its own presence hierarchies (mirroring the protocol state) and a
// directory whose sharer sets price each transaction: a miss costs a
// round trip to the home plus a forward/reply per sharer touched; CORD's
// race checks cost the same message pattern without the data transfer, and
// memory-timestamp updates are one message to the home.
type DirMachine struct {
	cfg   DirConfig
	dir   *directory.Directory
	procs []*cache.Hierarchy

	// stats
	misses, localHits uint64
	msgCycles         uint64
}

// NewDirMachine builds an idle directory machine.
func NewDirMachine(cfg DirConfig) *DirMachine {
	if cfg.Procs <= 0 {
		cfg.Procs = 16
	}
	m := &DirMachine{cfg: cfg, dir: directory.New(cfg.Procs)}
	for i := 0; i < cfg.Procs; i++ {
		m.procs = append(m.procs, cache.NewHierarchy(cfg.Hierarchy))
	}
	return m
}

// Directory exposes the machine's sharer tracker (for message-count stats).
func (m *DirMachine) Directory() *directory.Directory { return m.dir }

// AccessCost implements the CostModel contract for the directory machine.
func (m *DirMachine) AccessCost(now uint64, proc int, a trace.Access, rep trace.Report) uint64 {
	c := m.cfg
	l := memsys.LineOf(a.Addr)
	h := m.procs[proc]

	level, victim, evicted := h.Access(l)
	var cost uint64
	switch level {
	case cache.L1Hit:
		cost = c.L1HitCycles
	case cache.L2Hit:
		cost = c.L2HitCycles
	default:
		m.misses++
		// Request to home, directory lookup, then either a forward to a
		// sharer (3-hop) or DRAM at the home (2-hop + memory).
		sharers := m.dir.Sharers(l, proc, nil)
		m.dir.Request(len(sharers))
		cost = c.HopCycles + c.HomeLookupCycles
		if len(sharers) > 0 {
			cost += 2 * c.HopCycles // forward + reply
		} else {
			cost += c.MemoryCycles + c.HopCycles
		}
	}
	if level != cache.L1Hit && level != cache.L2Hit || a.Kind == trace.Write {
		// Maintain protocol state: writes invalidate sharers (the
		// invalidation messages overlap the reply and cost network
		// occupancy, not requester latency).
		if a.Kind == trace.Write {
			for _, q := range m.dir.Sharers(l, proc, nil) {
				m.procs[q].Invalidate(l)
				m.msgCycles += c.HopCycles
			}
			m.dir.SetExclusive(l, proc)
		} else {
			m.dir.AddSharer(l, proc)
		}
	}
	if evicted {
		m.dir.RemoveSharer(victim, proc)
		m.msgCycles += c.HopCycles // eviction notice to the home
	}

	// CORD traffic: a race check is a home round trip plus sharer
	// forwards, hidden behind retirement (network occupancy only); a
	// memory-timestamp update is one message to the home.
	if rep.CheckRequests > 0 {
		sharers := m.dir.Sharers(l, proc, nil)
		m.msgCycles += uint64(rep.CheckRequests) * uint64(2+len(sharers)) * c.HopCycles
	}
	m.msgCycles += uint64(rep.MemTsUpdates) * c.HopCycles

	return cost
}

// ComputeCost implements the CostModel contract.
func (m *DirMachine) ComputeCost(proc int, n uint64) uint64 { return n }

// DirStats summarizes the machine's activity.
type DirStats struct {
	Misses, LocalHits uint64
	// MessageCycles is total network occupancy from protocol and CORD
	// messages that did not delay the issuing instruction.
	MessageCycles uint64
	Directory     directory.Stats
}

// Stats returns the counters.
func (m *DirMachine) Stats() DirStats {
	return DirStats{
		Misses:        m.misses,
		LocalHits:     m.localHits,
		MessageCycles: m.msgCycles,
		Directory:     m.dir.Stats(),
	}
}
