#!/bin/sh
# End-to-end smoke test for the cordd service: build it, start it, exercise
# one detect session, one replay session, a streaming round-trip, and an
# online-detection stream (races surfacing in progress frames mid-upload,
# PROTOCOL.md §4.7) over real HTTP, then SIGTERM it and assert a clean
# drain. CI runs this; `make smoke-service` runs it locally.
#
# `sh scripts/service-smoke.sh stream` runs only the streaming legs
# (plus the one-shot detects they compare against) — `make stream-smoke`.
#
# Pure POSIX sh + curl + grep/sed: no test framework, no jq.
set -eu

MODE="${1:-all}"
case "$MODE" in
all | stream) ;;
*)
	echo "usage: $0 [stream]" >&2
	exit 2
	;;
esac

PORT="${CORDD_PORT:-18080}"
ADDR="127.0.0.1:$PORT"
DIR="$(mktemp -d)"
PID=""

cleanup() {
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill -9 "$PID" 2>/dev/null || true
	fi
	rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
	echo "service-smoke: FAIL: $*" >&2
	if [ -f "$DIR/cordd.log" ]; then
		echo "--- cordd log ---" >&2
		cat "$DIR/cordd.log" >&2
	fi
	exit 1
}

echo "service-smoke: building cordd and cordreplay"
go build -o "$DIR/cordd" ./cmd/cordd
go build -o "$DIR/cordreplay" ./cmd/cordreplay

echo "service-smoke: starting cordd on $ADDR"
"$DIR/cordd" -addr "$ADDR" -workers 2 -queue 4 -timeout 60s -drain 30s \
	>"$DIR/cordd.log" 2>&1 &
PID=$!

# Wait for readiness: /healthz must answer 200 with status "ok".
i=0
until curl -sf "http://$ADDR/healthz" | grep -q '"status": "ok"'; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && fail "server did not become healthy"
	kill -0 "$PID" 2>/dev/null || fail "cordd exited before becoming healthy"
	sleep 0.2
done
echo "service-smoke: healthy after $i polls"

# The recorded fixture both the replay and streaming sections use.
"$DIR/cordreplay" -app fft -seed 9 -log "$DIR/fft.cordlog" >/dev/null \
	|| fail "cordreplay could not record a log"

SESSIONS=0
if [ "$MODE" = "all" ]; then
	# One detect session: 2xx with a schema-versioned body naming the app.
	curl -sf -X POST "http://$ADDR/v1/detect" \
		-H 'Content-Type: application/json' \
		-d '{"app":"fft","seed":3,"threads":4,"inject":5}' \
		>"$DIR/detect.json" || fail "detect request did not return 2xx"
	grep -q '"schema": 1' "$DIR/detect.json" || fail "detect body missing schema stamp"
	grep -q '"app": "fft"' "$DIR/detect.json" || fail "detect body missing app echo"
	grep -q '"detectors"' "$DIR/detect.json" || fail "detect body missing detector verdicts"
	echo "service-smoke: detect session OK"

	# Replay the recorded log through the service: 2xx and a completed verdict.
	curl -sf -X POST "http://$ADDR/v1/replay?app=fft&seed=9&threads=4" \
		-H 'Content-Type: application/octet-stream' \
		--data-binary @"$DIR/fft.cordlog" \
		>"$DIR/replay.json" || fail "replay request did not return 2xx"
	grep -q '"schema": 1' "$DIR/replay.json" || fail "replay body missing schema stamp"
	grep -q '"completed": true' "$DIR/replay.json" || fail "replay did not complete"
	echo "service-smoke: replay session OK"
	SESSIONS=2
fi

# Streaming round-trip (PROTOCOL.md §4): push the same recorded log through
# /v1/stream in small chunks, assert the server's re-execution matched it,
# and check the embedded detect block byte-for-byte against a one-shot
# /v1/detect answer for the same run.
curl -sf -X POST "http://$ADDR/v1/detect" \
	-H 'Content-Type: application/json' \
	-d '{"app":"fft","seed":9,"threads":4}' \
	>"$DIR/detect9.json" || fail "one-shot detect (stream reference) did not return 2xx"
curl -sf -X POST "http://$ADDR/v1/stream?app=fft&seed=9&threads=4" \
	-H 'Content-Type: application/octet-stream' \
	-H 'Transfer-Encoding: chunked' \
	--data-binary @"$DIR/fft.cordlog" \
	>"$DIR/stream.json" || fail "stream request did not return 2xx"
grep -q '"schema": 1' "$DIR/stream.json" || fail "stream summary missing schema stamp"
grep -q '"verified": true' "$DIR/stream.json" || fail "stream summary not verified"
grep -q '"log_match": true' "$DIR/stream.json" || fail "streamed log did not match the re-execution"
grep -q '"shards"' "$DIR/stream.json" || fail "stream summary missing shard table"

# "detect" is the last field of the summary (PROTOCOL.md §4.5), so the block
# runs from its opening line to the line before the closing outer brace.
# De-indenting it one level must reproduce the one-shot body exactly.
sed -n '/^  "detect": {$/,$p' "$DIR/stream.json" | sed '$d' |
	sed -e '1s/.*/{/' -e '2,$s/^  //' >"$DIR/stream-detect.json"
cmp -s "$DIR/stream-detect.json" "$DIR/detect9.json" \
	|| fail "embedded detect block is not byte-identical to one-shot /v1/detect"
echo "service-smoke: streaming round-trip OK (log_match, detect block byte-identical)"
SESSIONS=$((SESSIONS + 1))

# Online detection (PROTOCOL.md §4.7): record a RACY fixture (one sync
# instance removed), stream it with detect=online while holding back the
# final 40 order records, and assert races surface in a progress frame
# while the tail is still unsent. The races shipped in frames must be a
# prefix of the one-shot answer's race list, and the end-of-stream detect
# block must again be byte-identical to the one-shot body.
"$DIR/cordreplay" -app fft -seed 1 -inject 2 -log "$DIR/racy.cordlog" >/dev/null \
	|| fail "cordreplay could not record the racy fixture"
curl -sf -X POST "http://$ADDR/v1/detect" \
	-H 'Content-Type: application/json' \
	-d '{"app":"fft","seed":1,"threads":4,"inject":2}' \
	>"$DIR/detect-racy.json" || fail "one-shot detect (online reference) did not return 2xx"
SESSIONS=$((SESSIONS + 1))

SIZE=$(wc -c <"$DIR/racy.cordlog")
HOLD=320 # the final 40 order records travel separately, after a pause
HEADN=$(((SIZE - 16 - HOLD) / 8))
TOTALN=$(((SIZE - 16) / 8))
FIFO="$DIR/online.fifo"
mkfifo "$FIFO"
curl -sfN -X POST "http://$ADDR/v1/stream?app=fft&seed=1&threads=4&inject=2&detect=online&duty=100&inject_thread=0&inject_nth=2" \
	-H 'Content-Type: application/octet-stream' \
	-T - <"$FIFO" >"$DIR/stream-online.json" &
CURL=$!
exec 3>"$FIFO"
dd if="$DIR/racy.cordlog" bs=1 count=$((SIZE - HOLD)) >&3 2>/dev/null
sleep 2 # let the server drain the head before the tail exists client-side
dd if="$DIR/racy.cordlog" bs=1 skip=$((SIZE - HOLD)) >&3 2>/dev/null
exec 3>&-
wait "$CURL" || fail "online stream request failed"

# Mid-stream proof: the first progress frame that carries races records how
# many order records had been ingested when it was emitted; that count must
# fit in the head, i.e. the races were reported while the tail was unsent.
MIDFRAMES=$(grep '"frame":"progress"' "$DIR/stream-online.json" |
	grep '"new_races":\["race @' | head -1 |
	sed 's/.*"frames":\([0-9]*\),.*/\1/')
[ -n "$MIDFRAMES" ] || fail "no progress frame carried races"
[ "$MIDFRAMES" -le "$HEADN" ] \
	|| fail "races surfaced only after the final chunk (frames=$MIDFRAMES of $TOTALN, head=$HEADN)"
echo "service-smoke: online races surfaced mid-stream (after $MIDFRAMES of $TOTALN records)"

grep -q '"duty": 100' "$DIR/stream-online.json" || fail "online summary missing duty"
grep -q '"coverage_pct": 100' "$DIR/stream-online.json" || fail "online coverage below 100% at duty=100"
grep -q '"completed": true' "$DIR/stream-online.json" || fail "online replay did not complete"
grep -q '"log_match": true' "$DIR/stream-online.json" || fail "online-streamed log did not match the re-execution"

# Prefix property: concatenating every frame's new_races, in order, must
# reproduce the head of the one-shot race list.
grep '"frame":"progress"' "$DIR/stream-online.json" |
	sed -n 's/.*"new_races":\[//p' | sed 's/\].*//' | tr ',' '\n' |
	sed 's/^"//;s/"$//' | grep . >"$DIR/frame-races.txt" || true
[ -s "$DIR/frame-races.txt" ] || fail "progress frames shipped no races"
sed -n '/^  "races": \[$/,/^  \]$/p' "$DIR/detect-racy.json" |
	sed '1d;$d' | sed 's/^    "//;s/",*$//' >"$DIR/detect-races.txt"
head -n "$(wc -l <"$DIR/frame-races.txt")" "$DIR/detect-races.txt" |
	cmp -s - "$DIR/frame-races.txt" \
	|| fail "mid-stream races are not a prefix of the one-shot race list"

# The summary document starts at the first line that is exactly "{" (frames
# are compact single lines); its detect block must match the one-shot body.
sed -n '/^{$/,$p' "$DIR/stream-online.json" >"$DIR/online-summary.json"
sed -n '/^  "detect": {$/,$p' "$DIR/online-summary.json" | sed '$d' |
	sed -e '1s/.*/{/' -e '2,$s/^  //' >"$DIR/online-detect.json"
cmp -s "$DIR/online-detect.json" "$DIR/detect-racy.json" \
	|| fail "online detect block is not byte-identical to one-shot /v1/detect"
echo "service-smoke: online leg OK (races prefix, detect block byte-identical)"

# Metrics must show every completed one-shot session, both streams, and the
# online session's counters.
curl -sf "http://$ADDR/metrics" >"$DIR/metrics.json" || fail "metrics not served"
grep -q "\"completed\": $SESSIONS" "$DIR/metrics.json" \
	|| fail "metrics do not show $SESSIONS completed sessions"
grep -q '"streams"' "$DIR/metrics.json" || fail "metrics missing streams block"
grep -q '"frames_ingested"' "$DIR/metrics.json" || fail "metrics missing frames_ingested"
grep -q '"online_sessions": 1' "$DIR/metrics.json" || fail "metrics do not show the online session"
if grep -q '"online_races": 0,' "$DIR/metrics.json"; then
	fail "metrics show zero online races"
fi
grep -q '"online_divergences": 0' "$DIR/metrics.json" || fail "metrics show online divergences"
echo "service-smoke: metrics OK"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
status=0
wait "$PID" || status=$?
PID=""
[ "$status" -eq 0 ] || fail "cordd exited $status on SIGTERM (want clean drain, exit 0)"
grep -q "drained cleanly" "$DIR/cordd.log" || fail "cordd log missing drain confirmation"
echo "service-smoke: PASS (clean drain)"
