package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"cord/internal/memsys"
)

// spinProg is a program that would run for a very long time: each thread
// performs millions of reads. Only cancellation (or the op budget) stops it.
func spinProg(threads, iters int) Program {
	return Program{
		Name:    "spin",
		Threads: threads,
		Body: func(t int, env *Env) {
			a := memsys.Addr(uint64(t) * memsys.LineBytes)
			for i := 0; i < iters; i++ {
				env.Read(a)
			}
		},
	}
}

// TestCancelStopsRun: closing Config.Cancel mid-run makes Run return
// ErrCanceled promptly instead of executing the program to completion.
func TestCancelStopsRun(t *testing.T) {
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := New(Config{Seed: 1, Cancel: cancel}, spinProg(4, 10_000_000)).Run()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("Run returned %v, want ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not stop after cancellation")
	}
}

// TestCancelBeforeRun: a pre-canceled run aborts without executing anything.
func TestCancelBeforeRun(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	_, err := New(Config{Seed: 1, Cancel: cancel}, spinProg(2, 10_000_000)).Run()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run returned %v, want ErrCanceled", err)
	}
}

// TestCancelLeaksNoGoroutines: after a canceled run every workload goroutine
// must have exited — abortAll unwinds parked threads even on the cancel path.
func TestCancelLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		cancel := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = New(Config{Seed: uint64(i + 1), Cancel: cancel}, spinProg(4, 10_000_000)).Run()
		}()
		time.Sleep(time.Millisecond)
		close(cancel)
		<-done
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after canceled runs", before, runtime.NumGoroutine())
}

// TestNilCancelUnaffected: the default configuration (no Cancel channel) is
// untouched by the cancellation path — the run completes normally.
func TestNilCancelUnaffected(t *testing.T) {
	res, err := New(Config{Seed: 1}, spinProg(2, 100)).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ops != 200 {
		t.Fatalf("ops = %d, want 200", res.Ops)
	}
}
