package experiment

import (
	"fmt"
	"math"
)

// Tolerance bounds how far a measured cell may drift from its baseline and
// still count as equal. A cell passes when |got-want| <= Abs, or when
// |got-want| <= Rel*|want|, or when the values are exactly equal (so the
// zero Tolerance means exact comparison). NaN equals NaN: an empty
// denominator is the same outcome on both sides, not a regression.
type Tolerance struct {
	Abs float64 `json:"abs"`
	Rel float64 `json:"rel"`
}

func (t Tolerance) within(got, want float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return math.IsNaN(got) && math.IsNaN(want)
	}
	if got == want {
		return true
	}
	d := math.Abs(got - want)
	return d <= t.Abs || d <= t.Rel*math.Abs(want)
}

// DiffOptions configures a comparison. PerColumn tolerances (keyed by column
// name) override Default for that column in every row.
type DiffOptions struct {
	Default   Tolerance
	PerColumn map[string]Tolerance
}

func (o DiffOptions) tolerance(col string) Tolerance {
	if t, ok := o.PerColumn[col]; ok {
		return t
	}
	return o.Default
}

// Diff is one disagreement between a fresh figure and its baseline: either a
// cell outside tolerance (Row/Column/Got/Want set) or a structural mismatch
// (Structural set) that makes cell comparison meaningless.
type Diff struct {
	ID         string  `json:"id"`
	Row        string  `json:"row,omitempty"`
	Column     string  `json:"column,omitempty"`
	Got        float64 `json:"got,omitempty"`
	Want       float64 `json:"want,omitempty"`
	Structural string  `json:"structural,omitempty"`
}

// String renders the diff for terminal output.
func (d Diff) String() string {
	if d.Structural != "" {
		return fmt.Sprintf("%s: %s", d.ID, d.Structural)
	}
	return fmt.Sprintf("%s: %s/%s: got %v, want %v", d.ID, d.Row, d.Column, d.Got, d.Want)
}

// DiffFigures compares a freshly computed figure against a baseline
// cell-by-cell and returns every disagreement (empty means equal within
// tolerance). Shape mismatches — different column sets, missing or reordered
// rows, ragged value counts — are reported as structural diffs; matching
// cells are then compared under the per-column tolerance. Row order is
// significant: campaigns emit rows in deterministic Apps order, so a
// reordering is itself a change worth flagging.
func DiffFigures(got, want Figure, o DiffOptions) []Diff {
	var diffs []Diff
	structural := func(format string, args ...any) {
		diffs = append(diffs, Diff{ID: want.ID, Structural: fmt.Sprintf(format, args...)})
	}
	if got.ID != want.ID {
		structural("figure id %q does not match baseline %q", got.ID, want.ID)
		return diffs
	}
	if len(got.Columns) != len(want.Columns) {
		structural("column count %d != baseline %d", len(got.Columns), len(want.Columns))
		return diffs
	}
	for i, c := range want.Columns {
		if got.Columns[i] != c {
			structural("column %d is %q, baseline has %q", i, got.Columns[i], c)
			return diffs
		}
	}
	if len(got.Rows) != len(want.Rows) {
		structural("row count %d != baseline %d", len(got.Rows), len(want.Rows))
		return diffs
	}
	for i, wr := range want.Rows {
		gr := got.Rows[i]
		if gr.Label != wr.Label {
			structural("row %d is %q, baseline has %q", i, gr.Label, wr.Label)
			continue
		}
		if len(gr.Values) != len(wr.Values) {
			structural("row %q has %d values, baseline %d", wr.Label, len(gr.Values), len(wr.Values))
			continue
		}
		for j, wv := range wr.Values {
			col := fmt.Sprintf("col%d", j)
			if j < len(want.Columns) {
				col = want.Columns[j]
			}
			if !o.tolerance(col).within(gr.Values[j], wv) {
				diffs = append(diffs, Diff{ID: want.ID, Row: wr.Label, Column: col,
					Got: gr.Values[j], Want: wv})
			}
		}
	}
	return diffs
}

// DiffArtifacts compares two artifacts: campaign comparability first (seed,
// scale, injections, app list — differing campaigns produce differing
// numbers by design, which is configuration skew, not regression), then the
// numeric figures under o.
func DiffArtifacts(got, want Artifact, o DiffOptions) []Diff {
	var diffs []Diff
	structural := func(format string, args ...any) {
		diffs = append(diffs, Diff{ID: want.ID, Structural: fmt.Sprintf(format, args...)})
	}
	if got.Kind != want.Kind {
		structural("kind %q does not match baseline %q", got.Kind, want.Kind)
		return diffs
	}
	if g, w := got.Campaign, want.Campaign; g.BaseSeed != w.BaseSeed || g.Scale != w.Scale ||
		g.Threads != w.Threads || g.Injections != w.Injections {
		structural("campaign config (seed/scale/threads/injections) %+v does not match baseline %+v", g, w)
		return diffs
	}
	if got.SimProcs != want.SimProcs {
		structural("simulated processor count %d does not match baseline %d", got.SimProcs, want.SimProcs)
		return diffs
	}
	return append(diffs, DiffFigures(got.Figure, want.Figure, o)...)
}
