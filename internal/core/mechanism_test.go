package core

import (
	"testing"

	"cord/internal/clock"
	"cord/internal/memsys"
	"cord/internal/trace"
)

// TestFastPathRequiresCurrentClock: once the thread's clock moves on, a hit
// on a previously-stamped word re-stamps and re-checks (§2.7.2's rotation on
// hit — the mechanism behind cholesky's check bursts in §4.1).
func TestFastPathRequiresCurrentClock(t *testing.T) {
	det, f := newTest(16)
	f.write(0, varX) // stamp at clock 1
	st0 := det.Stats()
	f.write(0, varX) // same clock: fast path
	st1 := det.Stats()
	if st1.FastPathHits != st0.FastPathHits+1 {
		t.Fatalf("expected a fast-path hit, stats %+v", st1)
	}
	f.syncWrite(0, varL) // clock increments
	f.write(0, varX)     // clock moved: must re-stamp, not fast path
	st2 := det.Stats()
	if st2.FastPathHits != st1.FastPathHits {
		t.Fatalf("fast path taken with a stale clock")
	}
}

// TestFilterBitsSuppressChecks: after a check finds no remote conflicts for
// the line, further accesses to other words of the line skip the broadcast.
func TestFilterBitsSuppressChecks(t *testing.T) {
	det, f := newTest(16)
	f.write(0, varX) // miss: installs line, no remote holders -> filters granted
	checksBefore := det.Stats().CheckRequests
	f.write(0, varX+4) // same line, new word: filterW suppresses the check
	f.read(0, varX+8)
	if got := det.Stats().CheckRequests; got != checksBefore {
		t.Fatalf("filter bits did not suppress checks: %d -> %d", checksBefore, got)
	}
	if det.Stats().FilterHits < 2 {
		t.Fatalf("filter hits not counted: %+v", det.Stats())
	}
}

// TestRemoteSnoopClearsFilters: a remote access to the line revokes the
// filter permission.
func TestRemoteSnoopClearsFilters(t *testing.T) {
	det, f := newTest(16)
	f.write(0, varX) // proc 0 owns the line, filters set
	f.read(1, varX)  // remote fetch snoops proc 0 (race detected, line now shared)
	before := det.Stats().CheckRequests
	// Proc 0's next READ of another word is coherence-silent (shared line),
	// its access bit is unset, and the snoop revoked the filter — so an
	// explicit race-check broadcast must go out.
	f.read(0, varX+12)
	if got := det.Stats().CheckRequests; got == before {
		t.Fatal("filter survived a remote snoop")
	}
}

// TestTwoTimestampSlots: the older timestamp still provides history after
// one rotation (Fig. 2's motivation), and is lost after two.
func TestTwoTimestampSlots(t *testing.T) {
	bump := func(f *feeder, n int) {
		for i := 0; i < n; i++ {
			f.syncWrite(0, varL)
		}
	}
	run := func(depth, rotations int) int {
		det := New(Config{Threads: 2, Procs: 2, D: 4, HistDepth: depth})
		f := newFeeder(det)
		f.write(0, varX) // the racy write, stamped at clock 1
		for r := 0; r < rotations; r++ {
			bump(f, 1)
			f.write(0, varX+4) // another word of the line: rotates a slot
		}
		f.read(1, varX) // conflicting read
		return det.RaceCount()
	}
	if run(2, 0) != 1 || run(1, 0) != 1 {
		t.Fatal("baseline race undetected")
	}
	if run(2, 1) != 1 {
		t.Fatal("two slots should survive one rotation")
	}
	if run(1, 1) != 0 {
		t.Fatal("one slot should lose history after one rotation")
	}
	if run(2, 2) != 0 {
		t.Fatal("two slots should lose history after two rotations")
	}
}

// TestEvictionGoesToMemoryTimestamps: a displaced line's history raises the
// memory timestamps; later conflicting accesses through memory are counted
// as suppressed, never reported (§2.5).
func TestEvictionGoesToMemoryTimestamps(t *testing.T) {
	det := New(Config{Threads: 2, Procs: 2, D: 4, Geometry: cacheGeom(2)})
	f := newFeeder(det)
	f.write(0, varX)
	// Evict X's line from proc 0's two-line cache.
	f.write(0, varY)
	f.write(0, varZ)
	rep := f.read(1, varX) // nobody caches X: memory path
	if len(rep.Races) != 0 {
		t.Fatalf("memory-path race was reported: %+v", rep.Races)
	}
	if det.Stats().ViaMemoryRaces == 0 {
		t.Fatal("suppressed via-memory detection not counted")
	}
	if det.Stats().MemTsBroadcasts == 0 {
		t.Fatal("eviction did not broadcast a memory-timestamp update")
	}
}

// TestSyncReadThroughMemoryUsesD: acquiring a displaced sync variable jumps
// the clock D past the memory write timestamp, so data synchronized through
// it is never flagged (EXPERIMENTS.md deviation #4).
func TestSyncReadThroughMemoryUsesD(t *testing.T) {
	det := New(Config{Threads: 2, Procs: 2, D: 16, Geometry: cacheGeom(2)})
	f := newFeeder(det)
	f.write(0, varX)     // data, ts 1
	f.syncWrite(0, varL) // release, ts 1
	f.write(0, varY)     // displace...
	f.write(0, varZ)     // ...both X and L from the 2-line cache
	f.syncRead(1, varL)  // acquire through memory
	if c := det.Clock(1); clock.Dist(1, c) < 16 {
		t.Fatalf("acquire through memory gave clock %d, want >= 17", c)
	}
	rep := f.read(1, varX) // X also through memory; and ordered by the D jump
	if len(rep.Races) != 0 {
		t.Fatalf("synchronized-through-memory pair reported: %+v", rep.Races)
	}
}

// TestWriteChecksReadsAndWrites: a write conflicts with remote reads as well
// as remote writes; a read conflicts only with remote writes (§1).
func TestWriteChecksReadsAndWrites(t *testing.T) {
	det, f := newTest(4)
	f.read(0, varX)
	rep := f.write(1, varX) // write-after-read: race
	if len(rep.Races) != 1 || rep.Races[0].First.Kind != trace.Read {
		t.Fatalf("write did not race with remote read: %+v", rep.Races)
	}
	det2, f2 := newTest(4)
	f2.read(0, varX)
	rep2 := f2.read(1, varX) // read-after-read: never a race
	if len(rep2.Races) != 0 {
		t.Fatalf("read-read flagged: %+v", rep2.Races)
	}
	_, _ = det, det2
}

// TestUpgradePathChecks: a write hit on a Shared line (after a remote read
// brought it to shared state) still performs the remote check via the
// upgrade transaction.
func TestUpgradePathChecks(t *testing.T) {
	det, f := newTest(4)
	f.write(0, varX) // proc 0 owns
	f.read(1, varX)  // proc 1 fetches: race (counted), proc 0 downgraded
	n := det.RaceCount()
	rep := f.write(0, varX+4) // proc 0 writes another word: upgrade; checks proc 1's read bits? different word: no conflict
	if len(rep.Races) != 0 {
		t.Fatalf("no conflict expected on a different word: %+v", rep.Races)
	}
	f.syncWrite(1, varL+64) // advance proc 1's clock a bit (own sync var)
	rep = f.write(1, varX+4)
	// Write-after-write on word X+4 across procs: must be seen (upgrade or
	// miss path) and reported while within the D window.
	if det.RaceCount() <= n {
		t.Fatalf("upgrade-path conflict missed: count %d -> %d", n, det.RaceCount())
	}
}

// TestWalkerRetiresStaleTimestamps: after the frontier advances far enough,
// stale in-cache timestamps are spilled to memory and removed.
func TestWalkerRetiresStaleTimestamps(t *testing.T) {
	det := New(Config{Threads: 2, Procs: 2, D: 1, WalkInterval: 64, StaleAge: 128})
	f := newFeeder(det)
	f.write(0, varX) // ts 1
	// Drive thread 1's clock far ahead via its own sync writes.
	for i := 0; i < 600; i++ {
		f.syncWrite(1, varL)
	}
	if det.Stats().WalkerRetired == 0 {
		t.Fatalf("walker retired nothing: %+v", det.Stats())
	}
	// X's history is gone: the conflicting read goes through memory and is
	// suppressed.
	rep := f.read(1, varX)
	if len(rep.Races) != 0 {
		t.Fatalf("stale-timestamp race reported after retirement: %+v", rep.Races)
	}
}

// TestLongRunClockWrap: a run that pushes clocks through multiple 16-bit
// wraps stays sound — no stalled updates, no false positives on a
// synchronized workload.
func TestLongRunClockWrap(t *testing.T) {
	det := New(Config{Threads: 2, Procs: 2, D: 16, Record: true})
	f := newFeeder(det)
	// Ping-pong releases/acquires: each hop advances the frontier ~D, so
	// 2^13 hops push well past two full wraps.
	for i := 0; i < 1<<13; i++ {
		f.write(0, varX)
		f.syncWrite(0, varL)
		f.syncRead(1, varL)
		f.read(1, varX)
		f.syncWrite(1, varQ)
		f.syncRead(0, varQ)
	}
	if det.RaceCount() != 0 {
		t.Fatalf("false positives after clock wraps: %d", det.RaceCount())
	}
	if det.Stats().StalledUpdates != 0 {
		t.Fatalf("window stalls occurred: %+v", det.Stats())
	}
}

// TestMigrationForcedResyncLogged: the walker's forced thread resync and the
// migration bump both append log entries, keeping replay schedules complete.
func TestMigrationForcedResyncLogged(t *testing.T) {
	det := New(Config{Threads: 2, Procs: 2, D: 8, Record: true})
	f := newFeeder(det)
	f.write(0, varX)
	entries := det.Log().Len()
	det.Migrate(0, 1, f.inst[0])
	if det.Log().Len() != entries+1 {
		t.Fatal("migration bump did not log a clock change")
	}
}

// TestAblationNoUpdateOnDataRaces: with updates disabled, the thread's clock
// stays put across data races (only the response-timestamp ordering applies),
// so the sliding comparison still sits at the first access's level.
func TestAblationNoUpdateOnDataRaces(t *testing.T) {
	det := New(Config{Threads: 2, Procs: 2, D: 4, NoUpdateOnDataRaces: true})
	f := newFeeder(det)
	f.write(0, varY)
	f.write(0, varX)
	f.read(1, varX) // race; no race-outcome clock update in this configuration
	rep := f.read(1, varY)
	if len(rep.Races) != 1 {
		t.Fatalf("overlap race should be visible without updates: %d", det.RaceCount())
	}
	// Recording completeness is what the ablation sacrifices: with updates
	// on (the default), the same scenario orders the log entries instead.
	if det.Clock(1) == 1 {
		t.Fatal("response ordering should still have advanced the clock")
	}
}

// TestUnboundedStorageKeepsEverything: the unbounded variant never loses
// history to capacity.
func TestUnboundedStorageKeepsEverything(t *testing.T) {
	det := New(Config{Threads: 2, Procs: 2, D: 4, Unbounded: true})
	f := newFeeder(det)
	f.write(0, varX)
	for i := 0; i < 4096; i++ { // would evict in any bounded cache
		f.write(0, memsys.Addr(0x100000+i*64))
	}
	rep := f.read(1, varX)
	if len(rep.Races) != 1 {
		t.Fatalf("unbounded storage lost the racy timestamp")
	}
	if det.Stats().MemTsBroadcasts != 0 {
		t.Fatalf("unbounded storage broadcast memory timestamps: %+v", det.Stats())
	}
}

// TestReportCapRespected: stored races are capped, counting is not. D is
// large so the +1 updates from earlier races don't hide later ones (the
// Fig. 3 overlap effect, separately tested).
func TestReportCapRespected(t *testing.T) {
	det := New(Config{Threads: 2, Procs: 2, D: 64, MaxStoredRaces: 3})
	f := newFeeder(det)
	for i := 0; i < 10; i++ {
		a := memsys.Addr(0x9000 + i*64)
		f.write(0, a)
		f.read(1, a)
	}
	if len(det.Races()) != 3 {
		t.Fatalf("stored %d races, cap 3", len(det.Races()))
	}
	if det.RaceCount() != 10 {
		t.Fatalf("count %d, want 10", det.RaceCount())
	}
	if det.Stats().RaceReports != 10 {
		t.Fatalf("reports %d, want 10", det.Stats().RaceReports)
	}
}

// TestNameAndConfig: labels and defaults.
func TestNameAndConfig(t *testing.T) {
	if New(Config{D: 16}).Name() != "CORD(D=16)" {
		t.Fatal("name wrong")
	}
	d := New(Config{D: 4, Unbounded: true})
	if d.Name() != "CORD(D=4,inf)" {
		t.Fatalf("unbounded name: %s", d.Name())
	}
	d.SetName("custom")
	if d.Name() != "custom" {
		t.Fatal("SetName ignored")
	}
	def := DefaultConfig()
	if def.D != 16 || def.HistDepth != 2 || !def.Record {
		t.Fatalf("defaults drifted: %+v", def)
	}
}
