package perf

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestKernelsSmoke executes every kernel body a few iterations under the
// plain test suite, so a kernel that panics or regresses API-wise fails
// tier-1 immediately instead of waiting for the next bench run.
func TestKernelsSmoke(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kernels() {
		if k.Name == "" || seen[k.Name] {
			t.Fatalf("kernel name %q empty or duplicated", k.Name)
		}
		seen[k.Name] = true
		body := k.Setup()
		for i := 0; i < 3; i++ {
			body(i)
		}
	}
}

// BenchmarkKernel exposes the suite to `go test -bench`. CI runs it with
// -benchtime=1x as a smoke pass; use larger benchtimes for real measurement.
func BenchmarkKernel(b *testing.B) {
	for _, k := range Kernels() {
		b.Run(k.Name, k.Bench)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := NewReport()
	r.Benchmarks = append(r.Benchmarks, BenchResult{
		Name: "memsys/store-load", Iterations: 1000, NsPerOp: 12.5, AllocsPerOp: 0, BytesPerOp: 0,
	})
	r.Campaign = &CampaignPerf{Apps: []string{"raytrace"}, Injections: 2, Procs: 1, WallClockMs: 321.5}

	path := filepath.Join(t.TempDir(), "BENCH_perf.json")
	if err := Write(path, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", r, got)
	}
}

func TestDecodeRejectsUnknownSchema(t *testing.T) {
	if _, err := Decode([]byte(`{"schema": 999, "kind": "perf"}`)); err == nil {
		t.Fatal("schema 999 accepted")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
