package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
)

// SchemaVersion is the BENCH_perf.json wire-format version. Bump it on any
// shape change; readers reject versions they do not understand.
const SchemaVersion = 1

// BenchResult is one kernel's measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// CampaignPerf records the wall-clock of one serial campaign slice — the
// end-to-end number the micro-kernels decompose.
type CampaignPerf struct {
	Apps        []string `json:"apps"`
	Injections  int      `json:"injections"`
	Procs       int      `json:"procs"`
	WallClockMs float64  `json:"wall_clock_ms"`
}

// StreamingPerf records the sustained ingest throughput cordload measured
// against a live cordd: RecordsPerSec is decoded order-record frames per
// second of wall-clock across Streams concurrent /v1/stream sessions (the
// EXPERIMENTS.md "Sustained-throughput streaming" workflow). Like
// CampaignPerf it is a recorded measurement, not a byte-deterministic
// artifact.
type StreamingPerf struct {
	// Streams is the concurrent stream count of the recorded stage.
	Streams int `json:"streams"`
	// Sessions is how many complete stream sessions the stage ran.
	Sessions int `json:"sessions"`
	// FramesPerSession is the order-record frame count of one session.
	FramesPerSession int `json:"frames_per_session"`
	// RecordsPerSec is total ingested frames divided by stage wall-clock.
	RecordsPerSec float64 `json:"records_per_sec"`
	WallClockMs   float64 `json:"wall_clock_ms"`
}

// OnlineDutyPerf is one duty point of the streaming online-detection sweep
// (cordload -stream -duty): the best stage's throughput with detect=online
// at the given duty percentage. Comparing the duty=0 point (pure ingest plus
// epoch accounting) against duty=100 (full online replay and detection)
// bounds the cost of surfacing races mid-stream.
type OnlineDutyPerf struct {
	// Duty is the duty-cycle percentage the sessions ran with.
	Duty int `json:"duty"`
	// Streams is the concurrent stream count of the recorded stage.
	Streams int `json:"streams"`
	// Sessions is how many complete stream sessions the stage ran.
	Sessions int `json:"sessions"`
	// FramesPerSession is the order-record frame count of one session.
	FramesPerSession int `json:"frames_per_session"`
	// RecordsPerSec is total ingested frames divided by stage wall-clock.
	RecordsPerSec float64 `json:"records_per_sec"`
	WallClockMs   float64 `json:"wall_clock_ms"`
}

// Report is the full perf-trajectory artifact. Unlike the figure artifacts
// it is not byte-deterministic (timings vary run to run); it is a recorded
// measurement, compared PR-over-PR by reading the numbers, not by byte diff.
type Report struct {
	Schema     int            `json:"schema"`
	Kind       string         `json:"kind"` // always "perf"
	GoVersion  string         `json:"go_version"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	Benchmarks []BenchResult  `json:"benchmarks"`
	Campaign   *CampaignPerf  `json:"campaign,omitempty"`
	Streaming  *StreamingPerf `json:"streaming,omitempty"`
	// StreamingOnline holds the duty-cycle sweep of detect=online sessions,
	// one row per duty point, in sweep order.
	StreamingOnline []OnlineDutyPerf `json:"streaming-online,omitempty"`
}

// NewReport returns an empty report stamped with the build environment.
func NewReport() Report {
	return Report{
		Schema:    SchemaVersion,
		Kind:      "perf",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
}

// Record converts a harness result into the artifact row for the named
// kernel and appends it.
func (r *Report) Record(name string, br testing.BenchmarkResult) {
	r.Benchmarks = append(r.Benchmarks, BenchResult{
		Name:        name,
		Iterations:  br.N,
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	})
}

// Encode renders the canonical byte form (two-space indent, trailing
// newline), matching the experiment artifact convention.
func (r Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("perf: encoding report: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses a report, rejecting unknown schema versions.
func Decode(b []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return Report{}, fmt.Errorf("perf: decoding report: %w", err)
	}
	if r.Schema != SchemaVersion {
		return Report{}, fmt.Errorf("perf: report has schema %d, this build reads %d", r.Schema, SchemaVersion)
	}
	return r, nil
}

// Write stores the report at path ("-" for stdout).
func Write(path string, r Report) error {
	b, err := r.Encode()
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("perf: writing report: %w", err)
	}
	return nil
}

// Read loads and decodes one report file.
func Read(path string) (Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("perf: reading report: %w", err)
	}
	r, err := Decode(b)
	if err != nil {
		return Report{}, fmt.Errorf("%w (%s)", err, path)
	}
	return r, nil
}
