// Package cord is a from-scratch reproduction of "CORD: Cost-effective (and
// nearly overhead-free) Order-Recording and Data race detection"
// (Milos Prvulovic, HPCA-12, 2006).
//
// The package simulates the paper's hardware — a 4-processor CMP with
// private L1/L2 caches, snooping coherence and a half-rate address/timestamp
// bus — and implements the CORD mechanism on top of it: 16-bit scalar
// logical clocks with a sliding-window comparator, two timestamps plus
// per-word access bits per cache line, whole-memory fallback timestamps, the
// sync-read D window, an 8-byte-entry order log, and deterministic replay.
// The baseline detectors of the paper's evaluation (the Ideal oracle and the
// cache-bounded vector-clock schemes) and the twelve Splash-2-like workloads
// of Table 1 are included, along with the fault-injection methodology and a
// harness that regenerates every figure.
//
// # Quick start
//
//	prog := cord.AppByName("raytrace").Build(1, 4) // or write your own Program
//	det := cord.NewDetector(cord.DetectorConfig{Threads: 4, D: 16, Record: true})
//	res, err := cord.Run(prog, cord.RunConfig{Seed: 1, Observers: []cord.Observer{det}})
//	// det.Races() — data races; det.Log() — the order log; replay it:
//	out, err := cord.RecordAndReplay(prog, cord.ReplayOptions{Seed: 1})
//
// Custom workloads program against Env inside a Program body:
//
//	al := cord.NewAllocator()
//	lock := cord.NewMutex(al)
//	data := al.Alloc(64)
//	prog := cord.Program{
//		Name: "mine", Threads: 4,
//		Body: func(t int, env *cord.Env) {
//			lock.Lock(env)
//			env.Write(data.Word(t), 42)
//			lock.Unlock(env)
//		},
//	}
package cord

import (
	"cord/internal/baseline"
	"cord/internal/core"
	"cord/internal/directory"
	"cord/internal/experiment"
	"cord/internal/machine"
	"cord/internal/memsys"
	"cord/internal/record"
	"cord/internal/replay"
	"cord/internal/sim"
	"cord/internal/trace"
	"cord/internal/workload"
)

// Memory-system vocabulary.
type (
	// Addr is a byte address in the simulated physical address space.
	Addr = memsys.Addr
	// Region is a line-aligned span of simulated memory.
	Region = memsys.Region
	// Allocator hands out non-overlapping regions.
	Allocator = memsys.Allocator
	// Memory is the simulated word-value store.
	Memory = memsys.Memory
)

// Execution-engine vocabulary.
type (
	// Program is a runnable multithreaded workload.
	Program = sim.Program
	// Env is a thread's handle to the simulated machine.
	Env = sim.Env
	// RunConfig controls one execution (seeds, injection, observers).
	RunConfig = sim.Config
	// Result summarizes one execution.
	Result = sim.Result
	// Mutex, Barrier and Flag are the synchronization primitives, built
	// from labeled sync accesses exactly as §3.4 describes.
	Mutex   = sim.Mutex
	Barrier = sim.Barrier
	Flag    = sim.Flag
)

// Detection vocabulary.
type (
	// Observer receives the access stream of an execution.
	Observer = trace.Observer
	// Access is one dynamic shared-memory access event.
	Access = trace.Access
	// Race is one reported data race.
	Race = trace.Race
	// Detector is the CORD mechanism (the paper's contribution).
	Detector = core.Detector
	// DetectorConfig parameterizes a CORD instance.
	DetectorConfig = core.Config
	// DetectorStats are a CORD instance's activity counters; they carry a
	// stable JSON encoding for machine-readable run summaries.
	DetectorStats = core.Stats
	// IdealDetector is the ground-truth oracle.
	IdealDetector = baseline.Ideal
	// VectorDetector is the cache-bounded vector-clock baseline.
	VectorDetector = baseline.VecCache
	// VectorConfig parameterizes a vector-clock baseline.
	VectorConfig = baseline.VecConfig
	// OrderLog is the binary order-recording log of §2.7.1.
	OrderLog = record.Log
	// ReplayOptions configures a record-then-replay verification.
	ReplayOptions = replay.Options
	// ReplayOutcome reports a record/replay round trip.
	ReplayOutcome = replay.Outcome
	// TimingMachine is the detailed CMP cost model of §3.1.
	TimingMachine = machine.Machine
	// App is one Table 1 application.
	App = workload.App
	// AreaModel prices per-line timestamp state (§2.3–2.4).
	AreaModel = experiment.AreaModel
	// Directory is the home-node sharer tracker of the directory-coherence
	// extension (§2.5); pass one via DetectorConfig.Directory to run CORD
	// over point-to-point coherence instead of snooping.
	Directory = directory.Directory
	// DirectoryStats counts the extension's point-to-point messages.
	DirectoryStats = directory.Stats
)

// Storage bounds for the vector-clock baseline (Figs. 14–15).
const (
	BoundInf = baseline.BoundInf
	BoundL2  = baseline.BoundL2
	BoundL1  = baseline.BoundL1
)

// NewAllocator returns an allocator for a fresh simulated address space.
func NewAllocator() *Allocator { return memsys.NewAllocator() }

// NewMutex allocates a mutex on its own cache line.
func NewMutex(al *Allocator) Mutex { return sim.NewMutex(al) }

// NewBarrier allocates a sense barrier for n threads.
func NewBarrier(al *Allocator, n int) *Barrier { return sim.NewBarrier(al, n) }

// NewFlag allocates a one-word condition flag.
func NewFlag(al *Allocator) Flag { return sim.NewFlag(al) }

// NewDetector builds a CORD detector; attach it to a run via
// RunConfig.Observers. DefaultDetectorConfig matches the paper (D=16, two
// timestamps per line bounded by the 32 KB L2, recording on).
func NewDetector(cfg DetectorConfig) *Detector { return core.New(cfg) }

// DefaultDetectorConfig is the paper's CORD configuration.
func DefaultDetectorConfig() DetectorConfig { return core.DefaultConfig() }

// NewIdealDetector builds the ground-truth oracle.
func NewIdealDetector(threads int) *IdealDetector { return baseline.NewIdeal(threads) }

// NewVectorDetector builds a cache-bounded vector-clock baseline.
func NewVectorDetector(cfg VectorConfig) *VectorDetector { return baseline.NewVecCache(cfg) }

// NewTimingMachine builds the §3.1 machine cost model; pass it as
// RunConfig.Cost (and the CORD detector as RunConfig.Primary) to measure
// Fig. 11-style overhead.
func NewTimingMachine() *TimingMachine { return machine.New(machine.DefaultConfig()) }

// Run executes a program under the given configuration.
func Run(prog Program, cfg RunConfig) (Result, error) {
	return sim.New(cfg, prog).Run()
}

// RecordAndReplay records an execution under CORD, replays it from the order
// log, and verifies the replay reproduces the recording exactly (§3.3).
func RecordAndReplay(prog Program, opts ReplayOptions) (ReplayOutcome, error) {
	return replay.RecordAndReplay(prog, opts)
}

// Apps returns the twelve Table 1 applications.
func Apps() []App { return workload.All() }

// AppByName returns a Table 1 application; it panics on an unknown name
// (the set is fixed and enumerable via Apps).
func AppByName(name string) App {
	a, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return a
}

// NewDirectory builds a home-node directory for the §2.5 extension.
func NewDirectory(procs int) *Directory { return directory.New(procs) }

// DefaultAreaModel returns the paper's chip-area configuration, whose
// ScalarOverhead, VectorPerLineOverhead and VectorPerWordOverhead methods
// reproduce the 19% / 38% / 200% figures of §2.3–2.4.
func DefaultAreaModel() AreaModel { return experiment.DefaultAreaModel() }
