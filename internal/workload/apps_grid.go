package workload

import (
	"cord/internal/memsys"
	"cord/internal/sim"
)

// FFT mimics the six-step FFT: local transforms on thread-owned rows,
// then an all-to-all transpose, separated by barriers. Removing one
// thread's barrier primitive lets its transpose reads race with the other
// threads' first-phase writes.
func FFT(scale, threads int) sim.Program {
	if scale < 1 {
		scale = 1
	}
	al := memsys.NewAllocator()
	rows := 8 * scale // rows per thread
	width := 384      // words per row: each thread's 8 rows span 192 lines,
	// so by the end of a phase its early rows have left its 128-line L1
	// but still sit in its 512-line L2 — the §4.3 gradient
	src := al.Alloc(threads * rows * width)
	dst := al.Alloc(threads * rows * width)
	bar := sim.NewBarrier(al, threads)
	phases := 2

	rowBase := func(t, r int) int { return (t*rows + r) * width }

	return sim.Program{
		Name:    "fft",
		Threads: threads,
		Body: func(t int, env *sim.Env) {
			for p := 0; p < phases; p++ {
				// Local transform: write own rows of src.
				for r := 0; r < rows; r++ {
					touch(env, src, rowBase(t, r), width/2)
					env.Compute(16)
				}
				bar.Wait(env)
				// Transpose: read a strided column slice from every
				// thread's rows, write into own dst rows.
				for r := 0; r < rows; r++ {
					var acc uint64
					for q := 0; q < threads; q++ {
						acc += env.Read(src.Word(rowBase(q, r) + t*threads%width))
						acc += env.Read(src.Word(rowBase(q, r) + (t*threads+1)%width))
					}
					env.Write(dst.Word(rowBase(t, r)), acc)
					env.Compute(8)
				}
				bar.Wait(env)
				// Second local transform on own dst rows.
				for r := 0; r < rows; r++ {
					touch(env, dst, rowBase(t, r), width/2)
				}
				bar.Wait(env)
			}
			// Checksum pass: thread 0 reads the whole output matrix. The
			// final barrier orders it; when injection removes one of the
			// barrier's internal primitives the checksum races against
			// writes from the entire last phase.
			if t == 0 {
				var sum uint64
				for w := 0; w < dst.Words; w += 3 {
					sum += env.Read(dst.Word(w))
				}
				env.Write(src.Word(0), sum)
			}
		},
	}
}

// LU mimes the blocked LU decomposition: for each step the pivot-block
// owner factorizes it, a barrier publishes it, and everyone folds the pivot
// into their own blocks. Broken barriers create short-distance
// write-then-read races on the pivot block, which cache-bounded detectors
// catch easily.
func LU(scale, threads int) sim.Program {
	if scale < 1 {
		scale = 1
	}
	al := memsys.NewAllocator()
	steps := 6 * scale
	blockWords := 32
	blocksPer := 16
	pivots := al.Alloc(steps * blockWords)
	mine := al.Alloc(threads * blocksPer * blockWords)
	bar := sim.NewBarrier(al, threads)

	return sim.Program{
		Name:    "lu",
		Threads: threads,
		Body: func(t int, env *sim.Env) {
			for k := 0; k < steps; k++ {
				owner := k % threads
				if t == owner {
					touch(env, pivots, k*blockWords, blockWords-2)
					env.Compute(24)
				}
				bar.Wait(env)
				// Fold the pivot into own blocks.
				for b := 0; b < blocksPer; b++ {
					v := scan(env, pivots, k*blockWords, 6)
					base := (t*blocksPer + b) * blockWords
					env.Write(mine.Word(base+k%blockWords), v)
					touch(env, mine, base, 8)
					env.Compute(12)
				}
				bar.Wait(env)
			}
		},
	}
}

// Ocean mimes the red-black grid solver with the usual two-buffer
// discipline: each sweep reads the previous sweep's grid (including the
// neighbouring threads' edge rows) and writes the next one, with a barrier
// between sweeps. Removing one thread's barrier primitive races its edge
// reads against the neighbour's still-in-progress writes of the same
// buffer generation.
func Ocean(scale, threads int) sim.Program {
	if scale < 1 {
		scale = 1
	}
	al := memsys.NewAllocator()
	rowsPer := 4
	width := 1152 * scale // one sweep touches ~36 KB/thread: races spanning a
	// sweep lose their timestamps even in the L2, shorter ones only in the L1
	grids := [2]memsys.Region{
		al.Alloc(threads * rowsPer * width),
		al.Alloc(threads * rowsPer * width),
	}
	bar := sim.NewBarrier(al, threads)
	sweeps := 4

	row := func(t, r int) int { return (t*rowsPer + r) * width }

	return sim.Program{
		Name:    "ocean",
		Threads: threads,
		Body: func(t int, env *sim.Env) {
			for s := 0; s < sweeps; s++ {
				cur, next := grids[s%2], grids[(s+1)%2]
				for r := 0; r < rowsPer; r++ {
					// Stencil inputs: edge words of the rows above and
					// below (crossing into the neighbour bands). The upper
					// neighbour contributes both its last row (written at
					// the end of its sweep: short race distance) and its
					// second-to-last row (written ~2 rows of traffic ago:
					// a distance that fits the L2 but not the L1).
					var up, down uint64
					if r > 0 {
						up = env.Read(cur.Word(row(t, r-1) + s%width))
					} else if t > 0 {
						up = env.Read(cur.Word(row(t-1, rowsPer-1) + s%width))
						up += env.Read(cur.Word(row(t-1, rowsPer-2) + (s+3)%width))
					}
					if r < rowsPer-1 {
						down = env.Read(cur.Word(row(t, r+1) + s%width))
					} else if t < threads-1 {
						down = env.Read(cur.Word(row(t+1, 0) + s%width))
					}
					for c := 0; c < width; c += 3 {
						v := env.Read(cur.Word(row(t, r) + c))
						env.Write(next.Word(row(t, r)+c), v+up+down+1)
					}
					env.Compute(10)
				}
				bar.Wait(env)
			}
		},
	}
}

// Radix mimes the radix sort: private histograms, a serial prefix-sum by
// thread 0, and a permutation into disjoint output slots, with barriers
// between the three phases.
func Radix(scale, threads int) sim.Program {
	if scale < 1 {
		scale = 1
	}
	al := memsys.NewAllocator()
	buckets := 32
	keysPer := 256 * scale
	hists := al.Alloc(threads * buckets)
	offsets := al.Alloc(threads * buckets)
	out := al.Alloc(threads * keysPer)
	bar := sim.NewBarrier(al, threads)
	rounds := 2

	return sim.Program{
		Name:    "radix",
		Threads: threads,
		Body: func(t int, env *sim.Env) {
			rng := newLCG(uint64(t)*17 + 11)
			for round := 0; round < rounds; round++ {
				// Phase 1: histogram own keys (own slots only).
				for b := 0; b < buckets; b++ {
					env.Write(hists.Word(t*buckets+b), 0)
				}
				for i := 0; i < keysPer; i++ {
					b := rng.n(buckets)
					w := hists.Word(t*buckets + b)
					env.Write(w, env.Read(w)+1)
				}
				bar.Wait(env)
				// Phase 2: thread 0 computes global offsets from every
				// histogram.
				if t == 0 {
					running := uint64(0)
					for b := 0; b < buckets; b++ {
						for q := 0; q < threads; q++ {
							env.Write(offsets.Word(q*buckets+b), running)
							running += env.Read(hists.Word(q*buckets + b))
						}
					}
				}
				bar.Wait(env)
				// Phase 3: permute into disjoint output positions.
				for b := 0; b < buckets; b++ {
					off := env.Read(offsets.Word(t*buckets + b))
					n := env.Read(hists.Word(t*buckets + b))
					for k := uint64(0); k < n; k++ {
						env.Write(out.Word(int(off+k)%out.Words), uint64(b))
					}
				}
				bar.Wait(env)
			}
		},
	}
}
