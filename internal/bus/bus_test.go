package bus

import (
	"testing"
	"testing/quick"
)

func TestResourceSerializes(t *testing.T) {
	r := NewResource("x")
	if end := r.Acquire(100, 10); end != 110 {
		t.Fatalf("first acquire end = %d", end)
	}
	// Requested during occupancy: queued behind.
	if end := r.Acquire(105, 10); end != 120 {
		t.Fatalf("queued acquire end = %d", end)
	}
	// Requested after idle: starts immediately.
	if end := r.Acquire(500, 10); end != 510 {
		t.Fatalf("idle acquire end = %d", end)
	}
	busy, n := r.Stats()
	if busy != 30 || n != 3 {
		t.Fatalf("stats busy=%d n=%d", busy, n)
	}
}

func TestPeekDelay(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 100)
	if d := r.PeekDelay(40); d != 60 {
		t.Fatalf("delay = %d", d)
	}
	if d := r.PeekDelay(200); d != 0 {
		t.Fatalf("idle delay = %d", d)
	}
}

// Property: completions are monotone in request order and the resource is
// never occupied by two transactions at once (sum of durations <= last end -
// first start).
func TestResourceMonotone(t *testing.T) {
	f := func(reqs [20]struct {
		At  uint16
		Dur uint8
	}) bool {
		r := NewResource("p")
		now := uint64(0)
		var lastEnd uint64
		var total uint64
		for _, q := range reqs {
			now += uint64(q.At)
			d := uint64(q.Dur%16) + 1
			end := r.Acquire(now, d)
			if end < now+d {
				return false
			}
			if end < lastEnd+d {
				return false // overlap: two transactions at once
			}
			lastEnd = end
			total += d
		}
		busy, _ := r.Stats()
		return busy == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultTiming(t *testing.T) {
	tm := DefaultTiming()
	if tm.MemoryCycles != 600 || tm.CacheToCacheCycles != 20 {
		t.Fatalf("paper latencies wrong: %+v", tm)
	}
	// 64-byte line over a 16-byte-wide 1 GHz bus at 4 GHz core clock.
	if tm.DataBusCycles != 16 {
		t.Fatalf("data bus occupancy = %d", tm.DataBusCycles)
	}
	// Address/timestamp bus at half the data-bus rate.
	if tm.AddrBusCycles != 8 {
		t.Fatalf("addr bus occupancy = %d", tm.AddrBusCycles)
	}
}

func TestFabric(t *testing.T) {
	f := NewFabric(DefaultTiming())
	if f.Data.Name() != "data-bus" || f.Addr.Name() != "addr-ts-bus" {
		t.Fatal("fabric resources misnamed")
	}
}
