package experiment

import (
	"fmt"
	"text/tabwriter"

	"cord/internal/replay"
)

// ReplayRow is one application's §3.3-style record/replay verification. The
// json tags are the stable wire encoding used by exported benchmark
// artifacts.
type ReplayRow struct {
	App        string `json:"app"`
	Accesses   uint64 `json:"accesses"`
	LogEntries int    `json:"log_entries"`
	LogBytes   int    `json:"log_bytes"`
	Match      bool   `json:"match"`
	Mismatch   string `json:"mismatch,omitempty"`
}

// ReplayFigure is the numeric view of the verification table, the
// representation artifact diffing compares cell-by-cell (match is 1/0).
func ReplayFigure(rows []ReplayRow) Figure {
	f := Figure{
		ID:      "replay",
		Title:   "Record/replay verification (§3.3)",
		Columns: []string{"accesses", "log entries", "log bytes", "exact replay"},
	}
	for _, r := range rows {
		match := 0.0
		if r.Match {
			match = 1
		}
		f.Rows = append(f.Rows, Row{Label: r.App, Values: []float64{
			float64(r.Accesses), float64(r.LogEntries), float64(r.LogBytes), match,
		}})
	}
	return f
}

// RunReplayCheck records and replays every application (one seed), checking
// exact reproduction and the "<1 MB order log" claim. The per-app
// record+replay pairs are independent and fan out across o.Procs workers.
func RunReplayCheck(o Options) ([]ReplayRow, error) {
	o = o.withDefaults()
	rows := make([]ReplayRow, len(o.Apps))
	if err := o.forEach(len(o.Apps), func(i int) error {
		return o.journaledRun("replay", i, 0, &rows[i], func() error {
			app := o.Apps[i]
			out, err := replay.RecordAndReplay(app.Build(o.Scale, o.Threads), replay.Options{
				Seed: o.BaseSeed + 1, Jitter: campaignJitter,
			})
			if err != nil {
				return fmt.Errorf("experiment: replaying %s: %w", app.Name, err)
			}
			rows[i] = ReplayRow{
				App:        app.Name,
				Accesses:   out.Recorded.Accesses,
				LogEntries: out.Log.Len(),
				LogBytes:   out.Log.SizeBytes(),
				Match:      out.Match,
				Mismatch:   out.Mismatch,
			}
			return nil
		})
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderReplay writes the verification table.
func RenderReplay(rows []ReplayRow, w *tabwriter.Writer) {
	fmt.Fprintln(w, "app\taccesses\tlog entries\tlog bytes\treplay")
	for _, r := range rows {
		status := "exact"
		if !r.Match {
			status = "MISMATCH: " + r.Mismatch
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\n", r.App, r.Accesses, r.LogEntries, r.LogBytes, status)
	}
}
