package record

import (
	"fmt"

	"cord/internal/clock"
)

// EpochStream incrementally converts a streamed entry sequence into the same
// globally ordered epoch schedule Log.Schedule produces, without ever holding
// the whole log. It is the ordering half of the service's online-detection
// path (PROTOCOL.md §4.7): as entries arrive, Push unwraps each thread's
// 16-bit clock into monotone 64-bit logical time and releases every epoch
// that can no longer be reordered by future input.
//
// The release rule is a watermark: per-thread unwrapped times are
// nondecreasing, so once every one of the session's threads has appeared, any
// buffered epoch with Time at or below the minimum of the threads' last
// unwrapped times is final — a future entry either has a strictly larger Time
// or, on an equal Time, a larger stream Index, and Schedule breaks equal-Time
// ties by Index. Until all threads have started the watermark is zero (an
// unseen thread's first clock value may be anything), so nothing past logical
// time zero is released; epochs of a thread that never speaks drain in Flush.
//
// The concatenation of every slice Push returns, followed by Flush's
// remainder, is exactly Schedule's output for the same entries: same epochs,
// same order, same Index values.
type EpochStream struct {
	last      []clock.Scalar
	unwrapped []uint64
	started   []bool
	unstarted int

	heap []Epoch // min-heap on (Time, Index): the not-yet-releasable epochs
	next int     // stream index of the next entry
	out  []Epoch // reused release buffer handed out by Push
	err  error   // sticky: a violated stream stays violated
}

// NewEpochStream builds a stream for a session of numThreads threads.
func NewEpochStream(numThreads int) *EpochStream {
	return &EpochStream{
		last:      make([]clock.Scalar, numThreads),
		unwrapped: make([]uint64, numThreads),
		started:   make([]bool, numThreads),
		unstarted: numThreads,
	}
}

// Pending returns the number of buffered epochs not yet released — what Flush
// would currently return.
func (s *EpochStream) Pending() int { return len(s.heap) }

// Push ingests the next entry and returns the epochs that became final, in
// global schedule order. The returned slice is valid only until the next Push
// or Flush call; callers that retain epochs must copy them. Errors (an entry
// naming a thread the session does not have, or a clock delta outside the
// comparison window) are sticky and match Log.Schedule's verdicts for the
// same entries.
func (s *EpochStream) Push(e Entry) ([]Epoch, error) {
	if s.err != nil {
		return nil, s.err
	}
	t := int(e.Thread)
	if t >= len(s.last) {
		s.err = fmt.Errorf("%w: entry %d names thread %d, have %d threads", ErrOrderViolation, s.next, t, len(s.last))
		return nil, s.err
	}
	if !s.started[t] {
		s.started[t] = true
		s.unstarted--
		s.unwrapped[t] = uint64(e.Clock)
	} else {
		delta := uint16(e.Clock - s.last[t])
		if int(delta) > clock.Window {
			s.err = fmt.Errorf("%w: entry %d clock regressed for thread %d", ErrOrderViolation, s.next, t)
			return nil, s.err
		}
		s.unwrapped[t] += uint64(delta)
	}
	s.last[t] = e.Clock
	s.push(Epoch{Time: s.unwrapped[t], Thread: t, Instr: e.Instr, Index: s.next})
	s.next++

	watermark := uint64(0)
	if s.unstarted == 0 {
		watermark = s.unwrapped[0]
		for _, u := range s.unwrapped[1:] {
			if u < watermark {
				watermark = u
			}
		}
	}
	s.out = s.out[:0]
	for len(s.heap) > 0 && s.heap[0].Time <= watermark {
		s.out = append(s.out, s.pop())
	}
	return s.out, nil
}

// Flush releases every still-buffered epoch in schedule order; call it at end
// of stream. The returned slice is valid until the next Push or Flush.
func (s *EpochStream) Flush() []Epoch {
	s.out = s.out[:0]
	for len(s.heap) > 0 {
		s.out = append(s.out, s.pop())
	}
	return s.out
}

// epochLess orders the heap by (Time, Index) — Schedule's sort key. Index is
// unique per entry, so the order is total and the heap pop sequence is the
// exact sorted sequence.
func epochLess(a, b Epoch) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Index < b.Index
}

func (s *EpochStream) push(e Epoch) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !epochLess(s.heap[i], s.heap[p]) {
			break
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

func (s *EpochStream) pop() Epoch {
	top := s.heap[0]
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && epochLess(s.heap[l], s.heap[m]) {
			m = l
		}
		if r < n && epochLess(s.heap[r], s.heap[m]) {
			m = r
		}
		if m == i {
			break
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		i = m
	}
	return top
}
