// Package httpretry is the one place the repository's HTTP clients decide
// how long to back off after server pushback. Two clients speak to cordd —
// cordload's load sweeps and cordbench's fleet dispatcher — and both must
// honor the service's 429/`Retry-After` contract (PROTOCOL.md §4.2)
// identically: delta-seconds and HTTP-date wire forms, a past HTTP-date
// meaning "retry now" rather than "back off", and a doubling fallback only
// when the header is absent or unparseable. The logic used to be duplicated
// per binary; a past-date clamp bug fixed in one copy and not the other is
// exactly the kind of drift this package exists to prevent.
package httpretry

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Policy bounds how a client retries one throttled or transiently failing
// request: up to Attempts tries (the first counts), sleeping the server's
// Retry-After hint — or a doubling fallback starting at Fallback when there
// is no usable hint — between them, every sleep clamped to [0, Cap].
type Policy struct {
	// Attempts is the total try budget per request, first attempt included:
	// Attempts 3 means one try plus at most two retries.
	Attempts int
	// Fallback seeds the doubling backoff used when a response carries no
	// parseable Retry-After header.
	Fallback time.Duration
	// Cap bounds any single sleep, whatever its source.
	Cap time.Duration
	// Jitter spreads the doubling fallback downward by up to this fraction,
	// deterministically keyed on (key, attempt) — see BackoffKeyed. Zero
	// disables jitter. Server-provided Retry-After hints are never jittered:
	// the server asked for that delay.
	Jitter float64
}

// RetryAfter converts one response's Retry-After header into the sleep
// before the next try. Both wire forms are honored — delta-seconds and
// HTTP-date — and a missing or malformed header falls back to doubling
// backoff by attempt (1-based). Every result is clamped to [0, p.Cap].
//
// A parsed HTTP-date that is already in the past — which happens routinely
// when the server's clock runs behind the client's — means "retry now" and
// clamps to zero. Only an absent or unparseable header earns the doubling
// fallback; conflating the two made a skewed but well-behaved server look
// like one asking for ever-longer backoff.
func (p Policy) RetryAfter(header string, attempt int) time.Duration {
	return p.RetryAfterKeyed(header, "", attempt)
}

// RetryAfterKeyed is RetryAfter with a jitter key: when the header is absent
// or unparseable, the doubling fallback is jittered per BackoffKeyed. A
// parsed header is honored verbatim (clamped to Cap) — jitter exists to
// de-synchronize clients that got no server guidance, not to second-guess
// clients that did.
func (p Policy) RetryAfterKeyed(header, key string, attempt int) time.Duration {
	var d time.Duration
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	} else if at, err := http.ParseTime(header); err == nil {
		if d = time.Until(at); d < 0 {
			d = 0
		}
	} else {
		return p.BackoffKeyed(key, attempt)
	}
	if d > p.Cap {
		d = p.Cap
	}
	return d
}

// Backoff is the fallback schedule alone — the sleep before try attempt+1
// when there is no server hint at all (transport errors, responses without
// a Retry-After header): Fallback doubled per completed attempt, clamped to
// [0, Cap]. It equals RetryAfter with an empty header and exists so call
// sites retrying non-429 failures don't fabricate a fake header to say so.
func (p Policy) Backoff(attempt int) time.Duration {
	return p.BackoffKeyed("", attempt)
}

// BackoffKeyed is Backoff with deterministic de-synchronizing jitter: the
// capped-doubling delay, shrunk by up to Jitter (a fraction of the delay)
// drawn from an FNV-1a hash of (key, attempt). Callers key on something that
// differs between clients racing the same event — the request URL is the
// natural choice — so that a re-shard storm after a worker death does not
// march every survivor's retries into the fleet in lockstep.
//
// Jitter is subtractive, never additive: the result always stays within
// [d·(1−Jitter), d] for the unjittered delay d, so the documented [0, Cap]
// bound holds and — unlike additive jitter — delays pinned at Cap still
// spread out instead of re-synchronizing at the clamp. The draw is a pure
// function of (key, attempt): retry schedules reproduce exactly under test
// and across process restarts, the same determinism-by-hashing idiom the
// campaign runner's retry delay and the chaos injector use.
func (p Policy) BackoffKeyed(key string, attempt int) time.Duration {
	d := p.Fallback
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.Cap {
			break
		}
	}
	if d > p.Cap {
		d = p.Cap
	}
	if p.Jitter > 0 && d > 0 {
		span := time.Duration(p.Jitter * float64(d))
		if span > 0 {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s|%d", key, attempt)
			d -= time.Duration(h.Sum64() % uint64(span+1))
		}
	}
	return d
}
