// Package experiment reproduces the paper's evaluation (§4): the injection
// campaign behind Figures 10 and 12–17, the performance-overhead comparison
// of Figure 11, the Table 1 catalogue, the order-log/replay verification of
// §3.3, and the chip-area arithmetic of §2.3–2.4.
//
// # Campaigns decompose into independent runs
//
// Every campaign in this package — fault injection (RunDetection), per-app
// sizing (RunTable1), overhead measurement (RunOverhead), directory traffic
// (RunDirectory), and record/replay verification (RunReplayCheck) — is a
// flat list of independent simulations. Each run constructs its own
// workload, engine, and detectors, shares no state with any other run, and
// is fully determined by its seed. The seed is derived purely from campaign
// parameters — (BaseSeed, application index, configuration, run index) —
// never from wall-clock time or from what other runs did.
//
// That property is what makes campaign-level parallelism free of
// result-level consequences: Options.Procs fans the run list out across a
// worker pool, results are collected keyed by run index and aggregated in
// index order, so the output is bit-identical at Procs: 1 and Procs: N.
// Execution order affects only wall-clock time; seeds, not scheduling,
// define results.
package experiment

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"cord/internal/sim"
	"cord/internal/workload"
)

// campaignJitter is the per-operation scheduling jitter (in cycles) every
// detection-style campaign run uses, so that different seeds explore
// different interleavings (§3.4 methodology). Overhead runs use a smaller
// jitter of their own to keep cycle counts comparable.
const campaignJitter = 7

// runSim executes one simulation of app under the campaign's shared
// conventions: the workload is built at the campaign's Scale, cfg.Jitter
// defaults to campaignJitter, and errors are wrapped with the campaign
// stage and application name. threads is the workload's thread count —
// o.Threads for every campaign except the directory experiment, which
// passes its own processor count. All campaign entry points construct
// their runs through this one helper.
func (o Options) runSim(stage string, app workload.App, threads int, cfg sim.Config) (sim.Result, error) {
	if cfg.Jitter == 0 {
		cfg.Jitter = campaignJitter
	}
	res, err := sim.New(cfg, app.Build(o.Scale, threads)).Run()
	if err != nil {
		return res, fmt.Errorf("experiment: %s %s: %w", stage, app.Name, err)
	}
	return res, nil
}

// forEach runs fn(i) for every i in [0, n) on up to procs concurrent
// workers. fn must write its result into index-keyed storage (a slice cell
// it alone owns), so that collected output is independent of scheduling;
// aggregation then happens in index order on the caller's side. The first
// error cancels the shared context, which stops new work from being
// dispatched (runs already in flight finish), and is the error returned.
func forEach(procs, n int, fn func(i int) error) error {
	if procs > n {
		procs = n
	}
	if procs <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain remaining indices after cancellation
				}
				if err := fn(i); err != nil {
					cancel(err)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return context.Cause(ctx)
}

// syncWriter serializes concurrent Write calls so progress lines from
// parallel workers never interleave mid-line.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func newSyncWriter(w io.Writer) io.Writer {
	if w == nil {
		return nil
	}
	if _, ok := w.(*syncWriter); ok {
		return w
	}
	return &syncWriter{w: w}
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// defaultProcs is the worker count when Options.Procs is unset.
func defaultProcs() int { return runtime.NumCPU() }
