package record

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrom ensures the binary log decoder never panics or over-reads
// on arbitrary input, and that anything it accepts re-encodes to an
// equivalent log.
func FuzzDecodeFrom(f *testing.F) {
	var l Log
	l.Append(Entry{Clock: 7, Thread: 1, Instr: 42})
	var seedBuf bytes.Buffer
	if err := l.EncodeTo(&seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add([]byte("CORD"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.EncodeTo(&out); err != nil {
			t.Fatalf("decoded log failed to re-encode: %v", err)
		}
		back, err := DecodeFrom(&out)
		if err != nil {
			t.Fatalf("re-encoded log failed to decode: %v", err)
		}
		if back.Len() != got.Len() {
			t.Fatalf("round trip changed length: %d -> %d", got.Len(), back.Len())
		}
	})
}
