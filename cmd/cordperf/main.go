// Command cordperf measures the simulator's hot-path performance kernels
// plus a serial campaign slice, and writes the schema-versioned
// BENCH_perf.json trajectory artifact (see EXPERIMENTS.md, "Tracking the
// performance trajectory").
//
// Unlike the figure artifacts, BENCH_perf.json is a measurement, not a
// golden: it is regenerated per PR (`make bench-json`) and compared by
// reading the ns/op, allocs/op and wall-clock numbers against the previous
// commit's file, not by byte diff.
//
// Usage:
//
//	cordperf -out bench/BENCH_perf.json
//	cordperf -quick -out -          # smoke pass, results to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"cord/internal/experiment"
	"cord/internal/perf"
	"cord/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	testing.Init() // register -test.* flags so benchtime is settable
	var (
		out        = flag.String("out", "-", "write BENCH_perf.json here (- for stdout)")
		benchtime  = flag.String("benchtime", "1s", "per-kernel measurement budget (Go benchtime syntax, e.g. 200ms or 100x)")
		quick      = flag.Bool("quick", false, "smoke mode: one iteration per kernel, tiny campaign")
		injections = flag.Int("injections", 8, "injection runs per app for the campaign slice")
		appsFlag   = flag.String("apps", "raytrace,lu", "comma-separated campaign apps (empty = skip the campaign slice)")
		verbose    = flag.Bool("v", false, "print each result as it is measured")
	)
	flag.Parse()

	if *injections < 1 {
		fmt.Fprintf(os.Stderr, "cordperf: -injections must be at least 1, got %d\n", *injections)
		flag.Usage()
		return 2
	}
	bt := *benchtime
	if *quick {
		bt = "1x"
		if *injections > 2 {
			*injections = 2
		}
	}
	if err := flag.Set("test.benchtime", bt); err != nil {
		fmt.Fprintf(os.Stderr, "cordperf: bad -benchtime %q: %v\n", bt, err)
		return 2
	}

	report := perf.NewReport()
	for _, k := range Kernels() {
		br := testing.Benchmark(k.Bench)
		report.Record(k.Name, br)
		if *verbose {
			r := report.Benchmarks[len(report.Benchmarks)-1]
			fmt.Fprintf(os.Stderr, "%-24s %12.1f ns/op %8d allocs/op %10d B/op\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		}
	}

	if *appsFlag != "" {
		camp, err := runCampaignSlice(strings.Split(*appsFlag, ","), *injections)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cordperf: %v\n", err)
			return 1
		}
		report.Campaign = &camp
		if *verbose {
			fmt.Fprintf(os.Stderr, "campaign %v injections=%d: %.1f ms\n",
				camp.Apps, camp.Injections, camp.WallClockMs)
		}
	}

	if err := perf.Write(*out, report); err != nil {
		fmt.Fprintf(os.Stderr, "cordperf: %v\n", err)
		return 1
	}
	return 0
}

// Kernels is the measured suite: the shared perf kernels, in their stable
// artifact order.
func Kernels() []perf.Kernel { return perf.Kernels() }

// runCampaignSlice times one serial (Procs: 1) detection campaign — the
// end-to-end wall-clock the micro-kernels decompose. Serial so the number is
// comparable across machines with different core counts.
func runCampaignSlice(appNames []string, injections int) (perf.CampaignPerf, error) {
	var apps []workload.App
	for _, name := range appNames {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, err := workload.ByName(name)
		if err != nil {
			return perf.CampaignPerf{}, err
		}
		apps = append(apps, a)
	}
	if len(apps) == 0 {
		return perf.CampaignPerf{}, fmt.Errorf("no campaign apps selected")
	}
	opts := experiment.Options{Apps: apps, Injections: injections, BaseSeed: 0xC0DD, Procs: 1}
	start := time.Now()
	if _, err := experiment.RunDetection(opts); err != nil {
		return perf.CampaignPerf{}, err
	}
	elapsed := time.Since(start)
	camp := perf.CampaignPerf{Injections: injections, Procs: 1,
		WallClockMs: float64(elapsed.Microseconds()) / 1000}
	for _, a := range apps {
		camp.Apps = append(camp.Apps, a.Name)
	}
	return camp, nil
}
