// Quickstart: write a small parallel program against the cord API, run it on
// the simulated CMP with the CORD detector attached, and look at what the
// hardware recorded.
package main

import (
	"fmt"
	"log"

	"cord"
)

func main() {
	// A four-thread program: a lock-protected shared counter, a barrier,
	// and a read-only publication of the result.
	al := cord.NewAllocator()
	lock := cord.NewMutex(al)
	counter := al.Alloc(1)
	results := al.Alloc(4)
	bar := cord.NewBarrier(al, 4)

	prog := cord.Program{
		Name:    "quickstart",
		Threads: 4,
		Body: func(t int, env *cord.Env) {
			for i := 0; i < 10; i++ {
				lock.Lock(env)
				env.Write(counter.Word(0), env.Read(counter.Word(0))+1)
				lock.Unlock(env)
				env.Compute(25)
			}
			bar.Wait(env)
			// After the barrier every thread must observe all 40 increments.
			env.Write(results.Word(t), env.Read(counter.Word(0)))
		},
	}

	// Attach the CORD detector (the paper's configuration: scalar 16-bit
	// clocks, D=16, two timestamps per cache line, order recording on).
	det := cord.NewDetector(cord.DefaultDetectorConfig())
	res, err := cord.Run(prog, cord.RunConfig{Seed: 42, Jitter: 7,
		Observers: []cord.Observer{det}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("counter = %d (want 40)\n", res.Mem.Load(counter.Word(0)))
	for t := 0; t < 4; t++ {
		fmt.Printf("thread %d observed %d\n", t, res.Mem.Load(results.Word(t)))
	}
	fmt.Printf("data races reported: %d (a properly synchronized program reports none)\n", det.RaceCount())
	fmt.Printf("order log: %d entries, %d bytes — enough to replay this execution exactly\n",
		det.Log().Len(), det.Log().SizeBytes())

	// Prove it: replay from the log and verify.
	out, err := cord.RecordAndReplay(prog, cord.ReplayOptions{Seed: 42, Jitter: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic replay: match=%v\n", out.Match)
}
