// Package baseline implements the detector configurations the paper compares
// CORD against: the Ideal oracle (vector clocks, unlimited storage, unlimited
// per-word access histories — detects every dynamic data race exposed by the
// execution's causality) and the cache-bounded vector-clock schemes used in
// Figs. 12–15 (InfCache, L2Cache, L1Cache).
package baseline

import (
	"cord/internal/clock"
	"cord/internal/memsys"
	"cord/internal/trace"
)

// pairKey identifies one side of a race for the false-positive oracle: a
// reported race matches ground truth when the reporting (second) access is
// known by Ideal to race with a conflicting access of the same kind from the
// same thread.
type pairKey struct {
	addr   memsys.Addr
	second uint64
	thread int
	kind   trace.Kind
}

// idealAccess is one remembered data access with its vector-clock snapshot.
type idealAccess struct {
	thread int
	kind   trace.Kind
	seq    uint64
	vc     clock.Vector
}

// syncWord is the synchronization state of one sync variable: the vector
// clock of its last write. Synchronization induces ordering with
// acquire/release semantics — a sync read (acquire) is ordered after the
// sync write (release) whose value it observes. This matches both what
// synchronization primitives guarantee to programs and what CORD's
// sync-read D rule treats as "synchronized" (§2.6: orderings established
// by mere +1 clock updates are *not* through synchronization and remain
// reportable races).
type syncWord struct {
	lastWrite clock.Vector
}

// Ideal is the ground-truth detector (§4.2's Ideal configuration): full
// vector clocks, one history entry per data access, entries recycled only
// once they can no longer participate in a race.
type Ideal struct {
	threads int
	vcs     []clock.Vector
	syncs   map[memsys.Addr]*syncWord
	hist    map[memsys.Addr][]idealAccess

	races     []trace.Race
	raceCount int // racy accesses (>=1 conflicting unordered predecessor)
	pairCount int // individual unordered conflicting pairs
	pairs     map[pairKey]bool
	maxPairs  int

	accesses      uint64
	pruneInterval uint64
	peakEntries   int

	// freeVCs recycles the vector-clock storage of pruned history entries.
	// Every data access clones the thread's vector into its history entry;
	// without recycling that is the campaign's single largest allocation
	// site (half of all objects in a detection run).
	freeVCs []clock.Vector
}

// NewIdeal builds the oracle for the given thread count.
func NewIdeal(threads int) *Ideal {
	return &Ideal{
		threads:       threads,
		vcs:           makeVCs(threads),
		syncs:         make(map[memsys.Addr]*syncWord),
		hist:          make(map[memsys.Addr][]idealAccess),
		pairs:         make(map[pairKey]bool),
		maxPairs:      1 << 20,
		pruneInterval: 8192,
	}
}

func makeVCs(threads int) []clock.Vector {
	vcs := make([]clock.Vector, threads)
	for i := range vcs {
		vcs[i] = clock.NewVector(threads)
		vcs[i].Tick(i) // distinguish "has started" from the zero vector
	}
	return vcs
}

// Name implements trace.Observer.
func (d *Ideal) Name() string { return "Ideal" }

// OnAccess implements trace.Observer.
func (d *Ideal) OnAccess(a trace.Access) trace.Report {
	d.accesses++
	if d.accesses%d.pruneInterval == 0 {
		d.prune()
	}
	my := d.vcs[a.Thread]
	var rep trace.Report
	if a.Class == trace.Sync {
		d.onSync(a, my)
	} else {
		d.onData(a, my, &rep)
	}
	my.Tick(a.Thread)
	return rep
}

// onSync applies the acquire/release happens-before edges.
func (d *Ideal) onSync(a trace.Access, my clock.Vector) {
	s := d.syncs[a.Addr]
	if s == nil {
		s = &syncWord{lastWrite: clock.NewVector(d.threads)}
		d.syncs[a.Addr] = s
	}
	if a.Kind == trace.Read {
		my.Join(s.lastWrite) // acquire: ordered after the observed release
		return
	}
	copy(s.lastWrite, my) // release: publish the writer's history
}

// onData checks the access against the full per-word history: every
// conflicting earlier access not ordered before the current thread's vector
// clock is a data race.
func (d *Ideal) onData(a trace.Access, my clock.Vector, rep *trace.Report) {
	entries := d.hist[a.Addr]
	racy := false
	for i := range entries {
		e := &entries[i]
		if e.thread == a.Thread {
			continue
		}
		if a.Kind == trace.Read && e.kind == trace.Read {
			continue
		}
		// e happened before the current access iff the current thread has
		// seen e's local time (epoch comparison).
		if my[e.thread] >= e.vc[e.thread] {
			continue
		}
		r := trace.Race{
			Addr:   a.Addr,
			First:  trace.Ref{Thread: e.thread, Kind: e.kind, Seq: e.seq},
			Second: trace.Ref{Thread: a.Thread, Kind: a.Kind, Seq: a.Seq},
		}
		racy = true
		d.pairCount++
		if len(d.races) < 1<<16 {
			d.races = append(d.races, r)
			rep.Races = append(rep.Races, r)
		}
		if len(d.pairs) < d.maxPairs {
			d.pairs[pairKey{a.Addr, a.Seq, e.thread, e.kind}] = true
		}
	}
	if racy {
		d.raceCount++
	}
	d.hist[a.Addr] = append(entries, idealAccess{
		thread: a.Thread, kind: a.Kind, seq: a.Seq, vc: d.cloneVC(my),
	})
}

// cloneVC copies v into a recycled vector when one is available, and
// allocates otherwise. History entries own their vectors exclusively, so a
// vector freed by prune can be reused verbatim.
func (d *Ideal) cloneVC(v clock.Vector) clock.Vector {
	if n := len(d.freeVCs); n > 0 {
		c := d.freeVCs[n-1]
		d.freeVCs = d.freeVCs[:n-1]
		copy(c, v)
		return c
	}
	return v.Clone()
}

// prune recycles history entries that are ordered before every thread's
// current clock — they can never race again (§3.2's Ideal bookkeeping).
func (d *Ideal) prune() {
	min := d.vcs[0].Clone()
	for _, vc := range d.vcs[1:] {
		for i, v := range vc {
			if v < min[i] {
				min[i] = v
			}
		}
	}
	total := 0
	for addr, entries := range d.hist {
		out := entries[:0]
		for _, e := range entries {
			if e.vc[e.thread] > min[e.thread] {
				out = append(out, e)
			} else {
				d.freeVCs = append(d.freeVCs, e.vc)
			}
		}
		if len(out) == 0 {
			delete(d.hist, addr)
			continue
		}
		d.hist[addr] = out
		total += len(out)
	}
	if total > d.peakEntries {
		d.peakEntries = total
	}
}

// Migrate implements trace.Observer; vector clocks are per-thread, so
// migration needs no action for the oracle.
func (d *Ideal) Migrate(thread, proc int, instr uint64) {}

// ThreadDone implements trace.Observer.
func (d *Ideal) ThreadDone(thread int, totalInstr uint64) {}

// Finish implements trace.Observer.
func (d *Ideal) Finish() {}

// Races returns the retained detected races.
func (d *Ideal) Races() []trace.Race { return d.races }

// RaceCount returns the number of racy accesses — accesses with at least one
// conflicting, unordered predecessor. This is the raw-race metric used across
// detectors so that cached (per-word-bit) and ideal (per-access-history)
// schemes are counted on the same basis.
func (d *Ideal) RaceCount() int { return d.raceCount }

// PairCount returns the total number of unordered conflicting pairs (grows
// quadratically with repeated racy accesses; diagnostic only).
func (d *Ideal) PairCount() int { return d.pairCount }

// ProblemDetected reports whether the run exposed at least one data race.
func (d *Ideal) ProblemDetected() bool { return d.raceCount > 0 }

// Confirms reports whether a race reported by another detector is consistent
// with ground truth: the same second access racing against a conflicting
// access of the same kind from the same thread. Used by the no-false-positive
// invariant tests.
func (d *Ideal) Confirms(r trace.Race) bool {
	return d.pairs[pairKey{r.Addr, r.Second.Seq, r.First.Thread, r.First.Kind}]
}

// PeakEntries returns the high-water mark of retained history entries (a
// proxy for the paper's observation that Ideal needs enormous buffering).
func (d *Ideal) PeakEntries() int { return d.peakEntries }
