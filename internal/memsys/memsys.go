// Package memsys provides the simulated physical memory substrate: word and
// line address arithmetic and a sparse word-value store that backs the shared
// memory of the simulated machine.
//
// The geometry follows the paper's hardware: 4-byte words and 64-byte cache
// lines, so each line holds 16 words. Addresses are byte addresses; all
// simulated accesses are word-aligned, word-sized.
package memsys

import "fmt"

const (
	// WordBytes is the size of one simulated memory word.
	WordBytes = 4
	// LineBytes is the size of one cache line.
	LineBytes = 64
	// WordsPerLine is the number of words in a cache line.
	WordsPerLine = LineBytes / WordBytes
)

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Line identifies a cache line (the address with the offset bits removed).
type Line uint64

// LineOf returns the line containing a.
func LineOf(a Addr) Line { return Line(a / LineBytes) }

// WordIndex returns the index (0..WordsPerLine-1) of a's word within its line.
func WordIndex(a Addr) int { return int(a % LineBytes / WordBytes) }

// WordAlign rounds a down to its word boundary.
func WordAlign(a Addr) Addr { return a &^ (WordBytes - 1) }

// LineBase returns the byte address of the first word of line l.
func LineBase(l Line) Addr { return Addr(l) * LineBytes }

// WordAddr returns the byte address of word w within line l.
func WordAddr(l Line, w int) Addr { return LineBase(l) + Addr(w*WordBytes) }

// String renders the address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// String renders the line in hex with its byte base.
func (l Line) String() string { return fmt.Sprintf("line:0x%x", uint64(LineBase(l))) }

// Memory page geometry: the store is a lazily-allocated array of fixed-size
// pages indexed by Addr >> PageShift. 4 KB pages keep the page table small
// for the compact address spaces the Allocator hands out while making the
// common Load/Store a shift, two bounds checks, and an array index — no
// hashing on the simulator's hottest path.
const (
	// PageShift is log2 of the page size in bytes.
	PageShift = 12
	// PageBytes is the size of one memory page.
	PageBytes = 1 << PageShift
	// PageWords is the number of words one page holds.
	PageWords = PageBytes / WordBytes
)

type page [PageWords]uint64

// Memory is a word-granularity value store over a paged flat address space:
// pages are allocated lazily on first store, and absent pages read as zero.
// The zero value is an all-zero memory ready for use. Memory is not safe for
// concurrent use; the simulator serializes all accesses.
//
// Unlike a map-backed store, every traversal (Snapshot, ForEachWord, Equal)
// visits words in ascending address order, so memory-image dumps and
// comparisons are reproducible byte for byte across runs and processes.
type Memory struct {
	pages   []*page
	nonzero int // distinct words currently holding a non-zero value
}

// NewMemory returns an empty (all-zero) memory.
func NewMemory() *Memory { return &Memory{} }

// Load returns the value of the word at a (a is word-aligned by the caller;
// stray offset bits are masked off).
func (m *Memory) Load(a Addr) uint64 {
	pi := a >> PageShift
	if pi >= Addr(len(m.pages)) {
		return 0
	}
	p := m.pages[pi]
	if p == nil {
		return 0
	}
	return p[(a%PageBytes)/WordBytes]
}

// Store writes v to the word at a.
func (m *Memory) Store(a Addr, v uint64) {
	pi := a >> PageShift
	if pi >= Addr(len(m.pages)) {
		if v == 0 {
			return // storing zero over an untouched word changes nothing
		}
		grown := make([]*page, pi+1)
		copy(grown, m.pages)
		m.pages = grown
	}
	p := m.pages[pi]
	if p == nil {
		if v == 0 {
			return
		}
		p = new(page)
		m.pages[pi] = p
	}
	w := &p[(a%PageBytes)/WordBytes]
	switch {
	case *w == 0 && v != 0:
		m.nonzero++
	case *w != 0 && v == 0:
		m.nonzero--
	}
	*w = v
}

// Add atomically (from the simulation's point of view) adds delta to the word
// at a and returns the new value.
func (m *Memory) Add(a Addr, delta uint64) uint64 {
	v := m.Load(a) + delta
	m.Store(a, v)
	return v
}

// Footprint returns the number of distinct words currently holding a
// non-zero value.
func (m *Memory) Footprint() int { return m.nonzero }

// ForEachWord visits every non-zero word in ascending address order — the
// paged layout's natural order, identical across runs and processes. Dump
// and comparison paths build on it so printed memory images are stable.
func (m *Memory) ForEachWord(fn func(a Addr, v uint64)) {
	for pi, p := range m.pages {
		if p == nil {
			continue
		}
		base := Addr(pi) << PageShift
		for w, v := range p {
			if v != 0 {
				fn(base+Addr(w*WordBytes), v)
			}
		}
	}
}

// WordValue is one non-zero word of a memory image.
type WordValue struct {
	Addr  Addr
	Value uint64
}

// Words returns every non-zero word in ascending address order.
func (m *Memory) Words() []WordValue {
	out := make([]WordValue, 0, m.nonzero)
	m.ForEachWord(func(a Addr, v uint64) {
		out = append(out, WordValue{Addr: a, Value: v})
	})
	return out
}

// Snapshot returns a copy of all non-zero words, for end-of-run comparison
// between recorded and replayed executions.
func (m *Memory) Snapshot() map[Addr]uint64 {
	out := make(map[Addr]uint64, m.nonzero)
	m.ForEachWord(func(a Addr, v uint64) { out[a] = v })
	return out
}

// Equal reports whether two memories hold identical contents (the all-zero
// background included: pages never written compare equal to zeroed pages).
func (m *Memory) Equal(o *Memory) bool {
	if m.nonzero != o.nonzero {
		return false
	}
	equal := true
	m.ForEachWord(func(a Addr, v uint64) {
		if o.Load(a) != v {
			equal = false
		}
	})
	// Same non-zero count and every non-zero word of m matches o, so o
	// cannot hold extra non-zero words anywhere.
	return equal
}

// Region is a contiguous, line-aligned span of the address space handed out
// by an Allocator. It provides convenient word indexing for workloads.
type Region struct {
	Base  Addr
	Words int
}

// Word returns the address of the i-th word of the region. It panics if i is
// out of range: workloads index with computed bounds and an out-of-range
// index is a bug in the workload generator, not a recoverable condition.
func (r Region) Word(i int) Addr {
	if i < 0 || i >= r.Words {
		panic(fmt.Sprintf("memsys: region word %d out of range [0,%d)", i, r.Words))
	}
	return r.Base + Addr(i*WordBytes)
}

// End returns the first byte address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Words*WordBytes) }

// Lines returns the number of cache lines the region spans.
func (r Region) Lines() int {
	if r.Words == 0 {
		return 0
	}
	first := LineOf(r.Base)
	last := LineOf(r.End() - 1)
	return int(last-first) + 1
}

// Allocator hands out line-aligned regions of the simulated address space.
// Each distinct allocation starts on a fresh cache line so that workloads
// control false sharing explicitly (via PackedRegion) rather than by
// accident.
type Allocator struct {
	next Addr
}

// NewAllocator returns an allocator starting at a non-zero base (so address
// zero never aliases a valid allocation).
func NewAllocator() *Allocator { return &Allocator{next: LineBytes} }

// Alloc returns a new line-aligned region of the given number of words.
func (al *Allocator) Alloc(words int) Region {
	if words < 0 {
		panic("memsys: negative allocation")
	}
	r := Region{Base: al.next, Words: words}
	bytes := Addr(words * WordBytes)
	// Round the next base up to a line boundary.
	al.next += (bytes + LineBytes - 1) &^ (LineBytes - 1)
	if bytes == 0 {
		al.next += LineBytes
	}
	return r
}

// AllocPadded returns a region of `words` words where each word sits on its
// own cache line (stride 16 words). Workloads use it for lock arrays and
// per-thread counters that must not exhibit false sharing.
func (al *Allocator) AllocPadded(words int) PaddedRegion {
	r := al.Alloc(words * WordsPerLine)
	return PaddedRegion{r}
}

// PaddedRegion is a region in which logical word i occupies the first word of
// the i-th line.
type PaddedRegion struct {
	raw Region
}

// Word returns the address of the i-th logical (line-padded) word.
func (p PaddedRegion) Word(i int) Addr { return p.raw.Word(i * WordsPerLine) }

// Count returns how many logical words the padded region holds.
func (p PaddedRegion) Count() int { return p.raw.Words / WordsPerLine }
