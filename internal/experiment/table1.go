package experiment

import (
	"fmt"
	"text/tabwriter"

	"cord/internal/sim"
	"cord/internal/workload"
)

// Table1Row characterizes one application at the campaign's scale — the
// reproduction's analogue of the paper's Table 1 input-set listing.
type Table1Row struct {
	App           string
	PaperInput    string
	Accesses      uint64
	Instructions  uint64
	SyncInstances uint64
	Footprint     int // distinct non-zero words touched
}

// RunTable1 sizes every application with one plain run.
func RunTable1(o Options) ([]Table1Row, error) {
	o = o.withDefaults()
	var rows []Table1Row
	for _, app := range o.Apps {
		res, err := sim.New(sim.Config{Seed: o.BaseSeed, Jitter: 7}, app.Build(o.Scale, o.Threads)).Run()
		if err != nil {
			return nil, fmt.Errorf("experiment: sizing %s: %w", app.Name, err)
		}
		rows = append(rows, Table1Row{
			App:           app.Name,
			PaperInput:    app.Input,
			Accesses:      res.Accesses,
			Instructions:  res.Ops,
			SyncInstances: res.SyncInstances,
			Footprint:     res.Mem.Footprint(),
		})
	}
	return rows, nil
}

// RenderTable1 writes the catalogue.
func RenderTable1(rows []Table1Row, w *tabwriter.Writer) {
	fmt.Fprintln(w, "app\tpaper input\taccesses\tinstructions\tsync instances\twords touched")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\n",
			r.App, r.PaperInput, r.Accesses, r.Instructions, r.SyncInstances, r.Footprint)
	}
}

// allApps is a compile-time hook keeping the experiment package honest about
// covering every Table 1 application.
var _ = workload.All
