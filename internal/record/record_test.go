package record

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
	"testing/quick"

	"cord/internal/clock"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var l Log
	l.Append(Entry{Clock: 1, Thread: 0, Instr: 10})
	l.Append(Entry{Clock: 5, Thread: 1, Instr: 0})
	l.Append(Entry{Clock: 0xFFFF, Thread: 3, Instr: 1 << 30})
	var buf bytes.Buffer
	if err := l.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 16+3*EntryBytes {
		t.Fatalf("encoded %d bytes", buf.Len())
	}
	got, err := DecodeFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("decoded %d entries", got.Len())
	}
	for i, e := range got.Entries() {
		if e != l.Entries()[i] {
			t.Fatalf("entry %d: %v != %v", i, e, l.Entries()[i])
		}
	}
}

// Property: arbitrary logs round-trip through the binary format.
func TestRoundTripProperty(t *testing.T) {
	f := func(entries []struct {
		C uint16
		T uint8
		I uint32
	}) bool {
		var l Log
		for _, e := range entries {
			l.Append(Entry{Clock: clock.Scalar(e.C), Thread: uint16(e.T), Instr: e.I})
		}
		var buf bytes.Buffer
		if err := l.EncodeTo(&buf); err != nil {
			return false
		}
		got, err := DecodeFrom(&buf)
		if err != nil {
			return false
		}
		if got.Len() != l.Len() {
			return false
		}
		for i := range l.Entries() {
			if got.Entries()[i] != l.Entries()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeFrom(strings.NewReader("not a log at all....")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeFrom(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
	// Correct magic, truncated entries.
	var l Log
	l.Append(Entry{Clock: 1, Thread: 0, Instr: 1})
	var buf bytes.Buffer
	if err := l.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := DecodeFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

// TestDecodeHugeCountHeaderDoesNotPreallocate: a 16-byte header alone can
// claim up to 2^30 entries; decoding must fail with a clean read error on the
// missing entries instead of allocating gigabytes up front.
func TestDecodeHugeCountHeaderDoesNotPreallocate(t *testing.T) {
	var hdr [16]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], 1<<30) // max accepted count, no entries follow

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := DecodeFrom(bytes.NewReader(hdr[:]))
	runtime.ReadMemStats(&after)

	if err == nil {
		t.Fatal("truncated huge-count stream accepted")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) || !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat wrapping io.ErrUnexpectedEOF", err)
	}
	// 2^30 entries would be 8 GiB; the clamped prealloc is 512 KiB. Allow
	// generous slack for test-harness noise.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
		t.Fatalf("DecodeFrom allocated %d bytes for a header-only stream", grew)
	}

	// A count just past the cap is rejected outright.
	binary.LittleEndian.PutUint64(hdr[8:16], 1<<30+1)
	if _, err := DecodeFrom(bytes.NewReader(hdr[:])); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("over-cap count: err = %v, want ErrBadFormat", err)
	}
}

func TestScheduleOrdersByTime(t *testing.T) {
	var l Log
	l.Append(Entry{Clock: 1, Thread: 0, Instr: 3})
	l.Append(Entry{Clock: 1, Thread: 1, Instr: 2})
	l.Append(Entry{Clock: 5, Thread: 1, Instr: 4})
	l.Append(Entry{Clock: 3, Thread: 0, Instr: 1})
	eps, err := l.Schedule(2)
	if err != nil {
		t.Fatal(err)
	}
	times := []uint64{}
	for _, e := range eps {
		times = append(times, e.Time)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("epochs out of order: %v", times)
		}
	}
	if eps[0].Time != 1 || eps[len(eps)-1].Time != 5 {
		t.Fatalf("unexpected schedule %+v", eps)
	}
}

func TestScheduleUnwrapsClockWrap(t *testing.T) {
	var l Log
	// Thread 0's clock walks across the 16-bit wrap point.
	l.Append(Entry{Clock: 0xFFF0, Thread: 0, Instr: 1})
	l.Append(Entry{Clock: 0x0010, Thread: 0, Instr: 1}) // +0x20 wrapped
	l.Append(Entry{Clock: 0x4000, Thread: 0, Instr: 1})
	eps, err := l.Schedule(1)
	if err != nil {
		t.Fatal(err)
	}
	if eps[0].Time != 0xFFF0 {
		t.Fatalf("first time %d", eps[0].Time)
	}
	if eps[1].Time != 0xFFF0+0x20 {
		t.Fatalf("wrapped time %d, want %d", eps[1].Time, 0xFFF0+0x20)
	}
	if eps[2].Time <= eps[1].Time {
		t.Fatal("monotonicity lost across wrap")
	}
}

func TestScheduleRejectsBadThread(t *testing.T) {
	var l Log
	l.Append(Entry{Clock: 1, Thread: 7, Instr: 1})
	if _, err := l.Schedule(2); err == nil {
		t.Fatal("out-of-range thread accepted")
	}
}

func TestScheduleStableTies(t *testing.T) {
	var l Log
	l.Append(Entry{Clock: 4, Thread: 0, Instr: 1})
	l.Append(Entry{Clock: 4, Thread: 1, Instr: 2})
	eps, err := l.Schedule(2)
	if err != nil {
		t.Fatal(err)
	}
	if eps[0].Thread != 0 || eps[1].Thread != 1 {
		t.Fatal("tie order not stable by append order")
	}
}

func TestSizeBytes(t *testing.T) {
	var l Log
	for i := 0; i < 100; i++ {
		l.Append(Entry{Clock: clock.Scalar(i), Thread: 0, Instr: 1})
	}
	if l.SizeBytes() != 800 {
		t.Fatalf("SizeBytes = %d", l.SizeBytes())
	}
}

func TestScheduleRejectsOrderViolationTyped(t *testing.T) {
	// Adversarial logs must surface the order_violation taxonomy
	// (PROTOCOL.md §3/§5) as a typed sentinel, not an anonymous error.
	t.Run("regressed clock near the wrap", func(t *testing.T) {
		var l Log
		// A tampered entry steps the clock backwards just under the wrap
		// point: the unsigned delta lands outside the unwrap window.
		l.Append(Entry{Clock: 0x0010, Thread: 0, Instr: 1})
		l.Append(Entry{Clock: 0xFFF0, Thread: 0, Instr: 1}) // delta 0xFFE0 > Window
		_, err := l.Schedule(1)
		if err == nil {
			t.Fatal("regressed clock accepted")
		}
		if !errors.Is(err, ErrOrderViolation) {
			t.Fatalf("err = %v, want ErrOrderViolation", err)
		}
	})
	t.Run("thread outside the session", func(t *testing.T) {
		var l Log
		l.Append(Entry{Clock: 1, Thread: 7, Instr: 1})
		_, err := l.Schedule(2)
		if !errors.Is(err, ErrOrderViolation) {
			t.Fatalf("err = %v, want ErrOrderViolation", err)
		}
	})
}
