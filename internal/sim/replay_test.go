package sim

import (
	"errors"
	"testing"

	"cord/internal/memsys"
	"cord/internal/record"
	"cord/internal/trace"
)

// TestReplaySchedulerFollowsEpochs: a hand-built epoch schedule forces a
// specific serialization of two otherwise-concurrent threads.
func TestReplaySchedulerFollowsEpochs(t *testing.T) {
	build := func() (Program, memsys.Addr) {
		al := memsys.NewAllocator()
		slot := al.Alloc(1).Word(0)
		return Program{
			Name:    "order",
			Threads: 2,
			Body: func(th int, env *Env) {
				env.Write(slot, uint64(th)+1) // last writer wins
			},
		}, slot
	}
	// Epoch schedule: thread 1's write first, then thread 0's — the final
	// value must be thread 0's.
	prog, slot := build()
	epochs := []record.Epoch{
		{Time: 1, Thread: 1, Instr: 1, Index: 0},
		{Time: 2, Thread: 0, Instr: 1, Index: 1},
	}
	res, err := New(Config{Seed: 1, ReplayEpochs: epochs}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Mem.Load(slot); v != 1 {
		t.Fatalf("slot = %d, want thread 0's value 1", v)
	}
	// And the opposite order.
	prog2, slot2 := build()
	epochs2 := []record.Epoch{
		{Time: 1, Thread: 0, Instr: 1, Index: 0},
		{Time: 2, Thread: 1, Instr: 1, Index: 1},
	}
	res2, err := New(Config{Seed: 1, ReplayEpochs: epochs2}, prog2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := res2.Mem.Load(slot2); v != 2 {
		t.Fatalf("slot = %d, want thread 1's value 2", v)
	}
}

// TestReplayEqualTimeEpochsReorderable: when the designated thread is
// blocked, an equal-time epoch of another thread may run first.
func TestReplayEqualTimeEpochsReorderable(t *testing.T) {
	al := memsys.NewAllocator()
	flag := NewFlag(al)
	out := al.Alloc(2)
	prog := Program{
		Name:    "swap",
		Threads: 2,
		Body: func(th int, env *Env) {
			if th == 0 {
				flag.WaitAtLeast(env, 1) // blocks until thread 1 sets it
				env.Write(out.Word(0), 7)
			} else {
				flag.Set(env, 1)
				env.Write(out.Word(1), 9)
			}
		},
	}
	// A (deliberately awkward) schedule that names the blocked thread
	// first at time 1; the scheduler must fall back to thread 1's
	// equal-time epoch.
	epochs := []record.Epoch{
		{Time: 1, Thread: 0, Instr: 2, Index: 0}, // wait-enter + write
		{Time: 1, Thread: 1, Instr: 2, Index: 1}, // set + write
	}
	res, err := New(Config{Seed: 1, ReplayEpochs: epochs}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hung {
		t.Fatal("replay hung instead of reordering equal-time epochs")
	}
	if res.Mem.Load(out.Word(0)) != 7 || res.Mem.Load(out.Word(1)) != 9 {
		t.Fatal("writes missing after replay")
	}
}

// TestReplayDivergenceDetected: an impossible schedule (the blocked thread's
// wake-up lives at a later time) reports a hang rather than looping.
func TestReplayDivergenceDetected(t *testing.T) {
	al := memsys.NewAllocator()
	flag := NewFlag(al)
	prog := Program{
		Name:    "diverge",
		Threads: 2,
		Body: func(th int, env *Env) {
			if th == 0 {
				flag.WaitAtLeast(env, 1)
			} else {
				env.Compute(5)
				flag.Set(env, 1)
			}
		},
	}
	// Thread 0's epoch demands 1 instruction at time 1, but thread 1 (the
	// waker) is scheduled at time 5 with nothing at time 1 to swap with —
	// except its own epoch, which IS at a later time.
	epochs := []record.Epoch{
		{Time: 1, Thread: 0, Instr: 1, Index: 0},
		{Time: 5, Thread: 1, Instr: 6, Index: 1},
	}
	res, err := New(Config{Seed: 1, ReplayEpochs: epochs}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	// The wait-enter commits (1 instr), the spin read then blocks forever
	// at epoch 1... the engine must not loop: either it recovers by
	// consuming epochs or flags the run.
	_ = res // reaching here without a test timeout is the assertion
}

// TestReplayQuotaOvershootDiverges: a log whose epoch boundary falls in the
// middle of a multi-instruction Compute must surface ErrReplayDivergence —
// before this check, the overrunning instructions silently migrated into the
// next epoch and replayed at the wrong logical time.
func TestReplayQuotaOvershootDiverges(t *testing.T) {
	prog := Program{
		Name:    "compute-heavy",
		Threads: 1,
		Body: func(th int, env *Env) {
			env.Compute(10)
			env.Compute(10)
		},
	}
	// The program commits its 20 instructions in two indivisible batches of
	// 10, but the (tampered) log claims an epoch ended after 5 of them.
	epochs := []record.Epoch{
		{Time: 1, Thread: 0, Instr: 5, Index: 0},
		{Time: 2, Thread: 0, Instr: 15, Index: 1},
	}
	_, err := New(Config{Seed: 1, ReplayEpochs: epochs}, prog).Run()
	if !errors.Is(err, ErrReplayDivergence) {
		t.Fatalf("err = %v, want ErrReplayDivergence", err)
	}

	// A log that honours request boundaries replays the same program cleanly.
	ok := []record.Epoch{
		{Time: 1, Thread: 0, Instr: 10, Index: 0},
		{Time: 2, Thread: 0, Instr: 10, Index: 1},
	}
	prog2 := prog
	if _, err := New(Config{Seed: 1, ReplayEpochs: ok}, prog2).Run(); err != nil {
		t.Fatalf("aligned log diverged: %v", err)
	}
}

// TestMaxOpsGuard: runaway programs abort with an error.
func TestMaxOpsGuard(t *testing.T) {
	al := memsys.NewAllocator()
	w := al.Alloc(1).Word(0)
	prog := Program{
		Name:    "spin",
		Threads: 1,
		Body: func(th int, env *Env) {
			for {
				env.Write(w, env.Read(w)+1)
			}
		},
	}
	_, err := New(Config{Seed: 1, MaxOps: 1000}, prog).Run()
	if err == nil {
		t.Fatal("runaway program did not abort")
	}
}

// TestTASAtomicity: concurrent TAS on one word admits exactly one winner per
// release cycle.
func TestTASAtomicity(t *testing.T) {
	al := memsys.NewAllocator()
	word := al.AllocPadded(1).Word(0)
	winners := al.Alloc(4)
	prog := Program{
		Name:    "tas",
		Threads: 4,
		Body: func(th int, env *Env) {
			if env.TAS(word, 1) == 0 {
				env.Write(winners.Word(th), 1)
			}
		},
	}
	res, err := New(Config{Seed: 3, Jitter: 9}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(0)
	for i := 0; i < 4; i++ {
		total += res.Mem.Load(winners.Word(i))
	}
	if total != 1 {
		t.Fatalf("%d TAS winners, want exactly 1", total)
	}
}

// TestCostModelPlumbing: a custom cost model's charges appear in the cycle
// count, and the primary observer's report reaches it.
func TestCostModelPlumbing(t *testing.T) {
	al := memsys.NewAllocator()
	w := al.Alloc(1).Word(0)
	prog := Program{
		Name:    "cost",
		Threads: 1,
		Body: func(th int, env *Env) {
			env.Write(w, 1)
			env.Write(w, 2)
			env.Compute(10)
		},
	}
	cm := &countingCost{}
	res, err := New(Config{Seed: 1, Cost: cm}, prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if cm.accesses != 2 || cm.compute != 10 {
		t.Fatalf("cost model saw %d accesses, %d compute", cm.accesses, cm.compute)
	}
	if res.Cycles != 2*100+10 {
		t.Fatalf("cycles = %d, want 210", res.Cycles)
	}
}

type countingCost struct {
	accesses int
	compute  uint64
}

func (c *countingCost) AccessCost(now uint64, proc int, a trace.Access, rep trace.Report) uint64 {
	c.accesses++
	return 100
}
func (c *countingCost) ComputeCost(proc int, n uint64) uint64 {
	c.compute += n
	return n
}
