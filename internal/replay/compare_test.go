package replay

import (
	"strings"
	"testing"

	"cord/internal/memsys"
	"cord/internal/sim"
)

func mkResult(ops uint64, ti []uint64, rh []uint64, mem map[memsys.Addr]uint64, hung bool) sim.Result {
	m := memsys.NewMemory()
	for a, v := range mem {
		m.Store(a, v)
	}
	return sim.Result{Ops: ops, ThreadInstr: ti, ReadHash: rh, Mem: m, Hung: hung}
}

func TestCompareBranches(t *testing.T) {
	base := func() sim.Result {
		return mkResult(10, []uint64{4, 6}, []uint64{1, 2}, map[memsys.Addr]uint64{64: 9}, false)
	}
	if ok, _ := compare(base(), base()); !ok {
		t.Fatal("identical results should match")
	}
	cases := []struct {
		mutate func(*sim.Result)
		want   string
	}{
		{func(r *sim.Result) { r.Hung = true }, "diverged"},
		{func(r *sim.Result) { r.Ops = 11 }, "instruction counts differ"},
		{func(r *sim.Result) { r.ThreadInstr[1] = 7 }, "thread 1 instruction count"},
		{func(r *sim.Result) { r.ReadHash[0] = 99 }, "read-value sequence"},
		{func(r *sim.Result) { r.Mem.Store(64, 8) }, "memory images differ"},
	}
	for i, c := range cases {
		b := base()
		c.mutate(&b)
		ok, why := compare(base(), b)
		if ok {
			t.Fatalf("case %d: mismatch not detected", i)
		}
		if !strings.Contains(why, c.want) {
			t.Fatalf("case %d: reason %q missing %q", i, why, c.want)
		}
	}
}
