package cache

import "cord/internal/memsys"

// HitLevel classifies where an access was satisfied in a private hierarchy.
type HitLevel int

// Possible outcomes of a hierarchy access.
const (
	L1Hit HitLevel = iota
	L2Hit
	MissLevel // not present anywhere in this hierarchy
)

// String names the level for diagnostics.
func (h HitLevel) String() string {
	switch h {
	case L1Hit:
		return "L1"
	case L2Hit:
		return "L2"
	default:
		return "miss"
	}
}

// Hierarchy is one processor's private, inclusive two-level cache (8 KB L1,
// 32 KB L2 in the paper's reduced configuration). It tracks presence only;
// the detectors keep their own payload-bearing caches, and the timing model
// uses Hierarchy to price each access.
type Hierarchy struct {
	l1 *Cache[struct{}]
	l2 *Cache[struct{}]
}

// HierarchyConfig sizes both levels.
type HierarchyConfig struct {
	L1 Config
	L2 Config
}

// DefaultHierarchy is the paper's reduced-size per-processor configuration
// (§3.1): 8 KB L1, 32 KB L2, 64-byte lines.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1: Config{SizeBytes: 8 << 10, Ways: 4},
		L2: Config{SizeBytes: 32 << 10, Ways: 8},
	}
}

// NewHierarchy builds an empty hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		l1: New[struct{}](cfg.L1),
		l2: New[struct{}](cfg.L2),
	}
}

// Access touches line l, returning where it hit, and installs it in both
// levels (inclusive). Evictions from L2 back-invalidate L1 to preserve
// inclusion. The returned victim, when present, is the line the L2 displaced.
func (h *Hierarchy) Access(l memsys.Line) (HitLevel, memsys.Line, bool) {
	if _, ok := h.l1.Lookup(l); ok {
		// L1 hit implies L2 residency (inclusion); refresh L2 recency.
		h.l2.Lookup(l)
		return L1Hit, 0, false
	}
	level := MissLevel
	if _, ok := h.l2.Lookup(l); ok {
		level = L2Hit
	}
	// Install (or refresh) in L2 first, then L1.
	v2, evicted := h.l2.Insert(l, struct{}{})
	if evicted {
		h.l1.Remove(v2.Line) // back-invalidate for inclusion
	}
	if v1, e1 := h.l1.Insert(l, struct{}{}); e1 {
		_ = v1 // L1 victims stay in L2 (write-back modeled as free here)
	}
	if evicted {
		return level, v2.Line, true
	}
	return level, 0, false
}

// Invalidate removes l from both levels (snooped remote write).
func (h *Hierarchy) Invalidate(l memsys.Line) bool {
	_, in2 := h.l2.Remove(l)
	h.l1.Remove(l)
	return in2
}

// Contains reports whether l is resident in the L2 (and hence the hierarchy).
func (h *Hierarchy) Contains(l memsys.Line) bool { return h.l2.Contains(l) }

// L1Contains reports L1 residency.
func (h *Hierarchy) L1Contains(l memsys.Line) bool { return h.l1.Contains(l) }

// Stats returns (l1Hits, l1Misses, l2Hits, l2Misses).
func (h *Hierarchy) Stats() (uint64, uint64, uint64, uint64) {
	h1, m1, _ := h.l1.Stats()
	h2, m2, _ := h.l2.Stats()
	return h1, m1, h2, m2
}
