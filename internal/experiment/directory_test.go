package experiment

import (
	"bytes"
	"strings"
	"testing"
	"text/tabwriter"
)

func TestRunDirectory(t *testing.T) {
	rows, err := RunDirectory(smallOpts(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if !r.RacesMatch {
			t.Fatalf("%s: directory and snoop detection diverged", r.App)
		}
		if r.Requests == 0 {
			t.Fatalf("%s: no traffic", r.App)
		}
		if r.SnoopMessages != r.Requests*7 {
			t.Fatalf("%s: snoop messages %d != requests*7", r.App, r.SnoopMessages)
		}
		if r.Forwards >= r.SnoopMessages {
			t.Fatalf("%s: forwards (%d) not below broadcast (%d)", r.App, r.Forwards, r.SnoopMessages)
		}
	}
	var buf bytes.Buffer
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	RenderDirectory(rows, 8, tw)
	tw.Flush()
	if !strings.Contains(buf.String(), "identical") {
		t.Fatal("render missing detection status")
	}
}

// TestCampaignDeterminism: the same options produce the same figures.
func TestCampaignDeterminism(t *testing.T) {
	a, err := RunDetection(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDetection(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Apps {
		if a.Apps[i].Manifested != b.Apps[i].Manifested ||
			a.Apps[i].Injected != b.Apps[i].Injected {
			t.Fatalf("%s: campaign not deterministic", a.Apps[i].App)
		}
		for _, cfg := range a.Configs {
			if a.Apps[i].Problems[cfg] != b.Apps[i].Problems[cfg] ||
				a.Apps[i].Races[cfg] != b.Apps[i].Races[cfg] {
				t.Fatalf("%s/%s: counts differ between identical campaigns", a.Apps[i].App, cfg)
			}
		}
	}
}
