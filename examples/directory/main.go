// Directory: the paper's §2.5 extension end to end. The same CORD mechanism
// runs over directory-based coherence instead of a snooping bus: race checks
// are forwarded point-to-point to the line's actual sharers, and the memory
// timestamps live at the home node. Detection is provably identical — this
// example demonstrates it and shows the message-count advantage at sixteen
// processors.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cord"
)

func main() {
	const procs = 16
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "app\tsnoop races\tdirectory races\tlogs equal\tforwards/request\tvs 15 snoops")

	for _, name := range []string{"raytrace", "ocean", "fft", "water-sp"} {
		app := cord.AppByName(name)

		// Run the SAME execution under both protocol variants.
		snoop := cord.NewDetector(cord.DetectorConfig{Threads: procs, Procs: procs, D: 16, Record: true})
		dir := cord.NewDirectory(procs)
		dird := cord.NewDetector(cord.DetectorConfig{Threads: procs, Procs: procs, D: 16, Record: true, Directory: dir})
		_, err := cord.Run(app.Build(1, procs), cord.RunConfig{
			Seed: 7, Jitter: 7, Procs: procs, InjectSkip: 5, // one removed sync instance
			Observers: []cord.Observer{snoop, dird},
		})
		if err != nil {
			log.Fatal(err)
		}

		logsEqual := snoop.Log().Len() == dird.Log().Len()
		for i, e := range snoop.Log().Entries() {
			if !logsEqual || e != dird.Log().Entries()[i] {
				logsEqual = false
				break
			}
		}
		st := dir.Stats()
		perReq := float64(st.Forwards) / float64(st.Requests)
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%.2f\t%.0f%% fewer msgs\n",
			name, snoop.RaceCount(), dird.RaceCount(), logsEqual,
			perReq, (1-perReq/float64(procs-1))*100)
	}
	w.Flush()
	fmt.Println("\nidentical detection and identical order logs, at a fraction of the")
	fmt.Println("messages — the directory extension scales CORD past bus-based machines")
}
