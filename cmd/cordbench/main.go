// Command cordbench regenerates the paper's evaluation: Table 1, Figures
// 10–17, the §2.3–2.4 area arithmetic, and the §3.3 record/replay
// verification. Select individual artefacts with flags, or run everything
// with -all. The detection figures (10, 12–17) share one injection campaign,
// so requesting any of them runs it once.
//
// Campaigns are lists of independent seed-deterministic simulations, so
// they fan out across -procs host workers (default: all CPUs). Output is
// byte-identical at any -procs value for the same -seed; only wall-clock
// time changes.
//
// Besides the human-oriented text tables, -json <dir> exports every selected
// figure/table as a schema-versioned BENCH_<id>.json artifact, and
// -diff <dir> compares the fresh run against such artifacts (the golden
// baselines CI gates on). See EXPERIMENTS.md.
//
// Campaigns are crash-safe when -checkpoint <dir> is given: every completed
// run's outcome is journaled, SIGINT/SIGTERM drain in-flight runs before
// exiting (status 3, resumable), and a later invocation with the same flags
// plus -resume skips every journaled run and produces byte-identical
// artifacts. See EXPERIMENTS.md ("Interrupting and resuming a campaign").
//
// With -workers http://a:8080,http://b:8080 the detection campaign's runs are
// instead dispatched as shards to a fleet of cordd workers (PROTOCOL.md §6):
// outcomes stream back into the checkpoint journal and aggregation reads them
// from there, so the artifacts are byte-identical to a local run regardless of
// worker count or failure schedule. See EXPERIMENTS.md ("Running a
// distributed campaign").
//
// Usage:
//
//	cordbench -all -injections 60
//	cordbench -fig12 -fig16 -procs 8
//	cordbench -all -injections 8 -json out/
//	cordbench -all -injections 8 -diff out/ -diff-rel 0.05
//	cordbench -all -injections 8 -checkpoint ckpt/ -json out/
//	cordbench -all -injections 8 -checkpoint ckpt/ -resume -json out/
//	cordbench -fig12 -workers http://localhost:8080,http://localhost:8081 -json out/
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"syscall"
	"text/tabwriter"

	"cord/internal/chaos"
	"cord/internal/checkpoint"
	"cord/internal/experiment"
	"cord/internal/workload"
)

// journalName is the checkpoint journal's file name inside -checkpoint <dir>.
const journalName = "journal.cordckpt"

func main() {
	os.Exit(run())
}

// parseApps resolves the -apps comma list to workloads; an empty spec means
// "all of Table 1" (a nil slice, which Options.withDefaults expands).
func parseApps(spec string) ([]workload.App, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var apps []workload.App
	for _, name := range strings.Split(spec, ",") {
		app, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		apps = append(apps, app)
	}
	return apps, nil
}

// validateFlags rejects degenerate campaign parameters up front: zero or
// negative injection counts produce empty figures, non-positive scales
// produce empty workloads, and negative worker counts read as "default" far
// downstream — all of which used to surface as confusing campaign output
// instead of a usage error.
func validateFlags(injections, scale, ovScale, procs, dirProcs, ftShards int) error {
	if injections <= 0 {
		return fmt.Errorf("-injections must be at least 1, got %d", injections)
	}
	if scale <= 0 {
		return fmt.Errorf("-scale must be at least 1, got %d", scale)
	}
	if ovScale <= 0 {
		return fmt.Errorf("-overhead-scale must be at least 1, got %d", ovScale)
	}
	if procs < 0 {
		return fmt.Errorf("-procs must be >= 0 (0 selects all CPUs), got %d", procs)
	}
	if dirProcs < 2 {
		return fmt.Errorf("-directory-procs must be at least 2, got %d", dirProcs)
	}
	if ftShards < 1 {
		return fmt.Errorf("-ft-shards must be at least 1, got %d", ftShards)
	}
	return nil
}

func run() int {
	var (
		all        = flag.Bool("all", false, "produce every table and figure")
		table1     = flag.Bool("table1", false, "Table 1: application catalogue")
		fig10      = flag.Bool("fig10", false, "Fig 10: injections causing data races")
		fig11      = flag.Bool("fig11", false, "Fig 11: execution-time overhead")
		fig12      = flag.Bool("fig12", false, "Fig 12: CORD problem detection")
		fig13      = flag.Bool("fig13", false, "Fig 13: CORD raw race detection")
		fig14      = flag.Bool("fig14", false, "Fig 14: buffering-limit problem detection")
		fig15      = flag.Bool("fig15", false, "Fig 15: buffering-limit raw races")
		fig16      = flag.Bool("fig16", false, "Fig 16: D sweep, problems")
		fig17      = flag.Bool("fig17", false, "Fig 17: D sweep, raw races")
		area       = flag.Bool("area", false, "chip-area overhead arithmetic")
		replayFl   = flag.Bool("replay", false, "record/replay verification")
		dirFl      = flag.Bool("directory", false, "directory-coherence extension traffic")
		dirProcs   = flag.Int("directory-procs", 16, "processor count for -directory")
		injections = flag.Int("injections", 40, "injection runs per application")
		scale      = flag.Int("scale", 1, "workload scale for detection figures")
		ovScale    = flag.Int("overhead-scale", 4, "workload scale for Fig 11")
		seed       = flag.Uint64("seed", 0xC0DD, "campaign base seed")
		procs      = flag.Int("procs", 0, "host worker goroutines for campaign runs (0 = all CPUs); does not affect results")
		ftShards   = flag.Int("ft-shards", 1, "FastTrack baseline shadow-memory shards; does not affect results")
		quiet      = flag.Bool("q", false, "suppress progress lines")
		jsonDir    = flag.String("json", "", "also write one BENCH_<id>.json artifact per selected figure/table into this directory")
		diffDir    = flag.String("diff", "", "diff the fresh run against BENCH_<id>.json baselines in this directory (exit 1 on differences)")
		diffAbs    = flag.Float64("diff-abs", 0, "absolute per-cell tolerance for -diff")
		diffRel    = flag.Float64("diff-rel", 0, "relative per-cell tolerance for -diff (0.05 = 5%)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
		ckptDir    = flag.String("checkpoint", "", "journal completed runs into this directory; interrupted campaigns can be resumed with -resume")
		resume     = flag.Bool("resume", false, "with -checkpoint: reuse journaled runs from an earlier interrupted invocation")
		appsFl     = flag.String("apps", "", "comma-separated application subset (default: all of Table 1)")
		workersFl  = flag.String("workers", "", "comma-separated cordd base URLs; dispatches the detection campaign to this fleet instead of running it locally (PROTOCOL.md §6)")
		registryFl = flag.String("registry", "", "fleet registry base URL; resolves workers from GET /v1/fleet/workers and follows membership as it changes (PROTOCOL.md §7)")
		shardRuns  = flag.Int("shard-runs", 8, "with -workers/-registry: maximum injection runs per dispatched shard")
		progAddr   = flag.String("progress-addr", "", "with -workers/-registry: serve GET /v1/campaign/progress on this address during dispatch")
	)
	flag.Parse()

	if err := validateFlags(*injections, *scale, *ovScale, *procs, *dirProcs, *ftShards); err != nil {
		fmt.Fprintf(os.Stderr, "cordbench: %v\n", err)
		flag.Usage()
		return 2
	}
	if *diffAbs < 0 || *diffRel < 0 {
		fmt.Fprintf(os.Stderr, "cordbench: -diff-abs and -diff-rel must be >= 0\n")
		flag.Usage()
		return 2
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintf(os.Stderr, "cordbench: -resume requires -checkpoint <dir>\n")
		flag.Usage()
		return 2
	}
	apps, err := parseApps(*appsFl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordbench: -apps: %v\n", err)
		flag.Usage()
		return 2
	}
	if *workersFl != "" && *registryFl != "" {
		fmt.Fprintf(os.Stderr, "cordbench: -workers and -registry are mutually exclusive (a static list or dynamic discovery, not both)\n")
		flag.Usage()
		return 2
	}
	var workerURLs []string
	if *workersFl != "" || *registryFl != "" {
		if *shardRuns < 1 {
			fmt.Fprintf(os.Stderr, "cordbench: -shard-runs must be at least 1, got %d\n", *shardRuns)
			flag.Usage()
			return 2
		}
	}
	if *workersFl != "" {
		workerURLs, err = parseWorkers(*workersFl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cordbench: %v\n", err)
			flag.Usage()
			return 2
		}
	}
	if *registryFl != "" && !strings.HasPrefix(*registryFl, "http://") && !strings.HasPrefix(*registryFl, "https://") {
		fmt.Fprintf(os.Stderr, "cordbench: -registry must be an http(s) base URL, got %q\n", *registryFl)
		flag.Usage()
		return 2
	}

	if *all {
		*table1, *fig10, *fig11, *fig12, *fig13 = true, true, true, true, true
		*fig14, *fig15, *fig16, *fig17, *area, *replayFl, *dirFl = true, true, true, true, true, true, true
	}
	if !(*table1 || *fig10 || *fig11 || *fig12 || *fig13 || *fig14 || *fig15 || *fig16 || *fig17 || *area || *replayFl || *dirFl) {
		flag.Usage()
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cordbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cordbench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cordbench: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "cordbench: writing heap profile: %v\n", err)
			}
		}()
	}

	opts := experiment.Options{Scale: *scale, Injections: *injections, BaseSeed: *seed, Procs: *procs, FTShards: *ftShards, Apps: apps}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	cha, err := chaos.FromEnv()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordbench: %s: %v\n", chaos.EnvVar, err)
		return 2
	}
	if cha.Active() {
		fmt.Fprintf(os.Stderr, "cordbench: %s\n", cha)
		opts.Chaos = cha
	}

	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "cordbench: %v\n", err)
			return 1
		}
		jl, err := checkpoint.Open(filepath.Join(*ckptDir, journalName))
		if err != nil {
			fmt.Fprintf(os.Stderr, "cordbench: opening checkpoint journal: %v\n", err)
			return 1
		}
		defer jl.Close()
		if jl.Len() > 0 && !*resume {
			fmt.Fprintf(os.Stderr, "cordbench: %s already holds %d journaled runs; pass -resume to continue that campaign, or point -checkpoint at an empty directory\n",
				jl.Path(), jl.Len())
			return 2
		}
		if !*quiet && jl.Len() > 0 {
			fmt.Fprintf(os.Stderr, "cordbench: resuming; %d journaled runs will be reused where the campaign matches\n", jl.Len())
		}
		opts.Checkpoint = jl
	}

	// SIGINT/SIGTERM drain in-flight runs (journaling them under -checkpoint)
	// and exit resumable; a second signal aborts immediately.
	interrupt := make(chan struct{})
	opts.Interrupt = interrupt
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "cordbench: signal received; draining in-flight runs (send again to abort)")
		close(interrupt)
		<-sigCh
		os.Exit(1)
	}()

	out := os.Stdout
	errf := func(err error) int {
		if errors.Is(err, experiment.ErrInterrupted) {
			if opts.Checkpoint != nil {
				fmt.Fprintf(os.Stderr, "cordbench: interrupted; %d completed runs are journaled in %s — rerun with the same flags plus -resume to continue\n",
					opts.Checkpoint.Len(), opts.Checkpoint.Path())
			} else {
				fmt.Fprintln(os.Stderr, "cordbench: interrupted (no -checkpoint, so completed runs were not journaled)")
			}
			return 3
		}
		fmt.Fprintf(os.Stderr, "cordbench: %v\n", err)
		return 1
	}
	var artifacts []experiment.Artifact

	if *table1 {
		rows, err := experiment.RunTable1(opts)
		if err != nil {
			return errf(err)
		}
		fmt.Fprintln(out, "TABLE 1 — applications at this scale")
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		experiment.RenderTable1(rows, tw)
		tw.Flush()
		fmt.Fprintln(out)
		artifacts = append(artifacts, experiment.Table1Artifact(rows, opts.Meta()))
	}

	if *area {
		f := experiment.AreaFigure()
		if err := f.Render(out); err != nil {
			return errf(err)
		}
		artifacts = append(artifacts, experiment.FigureArtifact(f, opts.Meta()))
	}

	needDetection := *fig10 || *fig12 || *fig13 || *fig14 || *fig15 || *fig16 || *fig17
	if needDetection && (len(workerURLs) > 0 || *registryFl != "") {
		// The journal is the fleet's merge point, so dispatch needs one even
		// without -checkpoint; an ephemeral journal gives the same
		// byte-identical aggregation, just without crash-safe resume.
		if opts.Checkpoint == nil {
			tmp, err := os.MkdirTemp("", "cordbench-fleet-")
			if err != nil {
				return errf(err)
			}
			defer os.RemoveAll(tmp)
			jl, err := checkpoint.Open(filepath.Join(tmp, journalName))
			if err != nil {
				return errf(fmt.Errorf("opening ephemeral fleet journal: %w", err))
			}
			defer jl.Close()
			opts.Checkpoint = jl
			if !*quiet {
				fmt.Fprintln(os.Stderr, "cordbench: no -checkpoint; fleet outcomes merge through an ephemeral journal (pass -checkpoint <dir> for crash-safe resume)")
			}
		}
		cfg := fleetConfig{
			Workers:      workerURLs,
			Registry:     strings.TrimRight(*registryFl, "/"),
			ShardRuns:    *shardRuns,
			Client:       &http.Client{Timeout: fleetClientTimeout},
			Policy:       fleetRetryPolicy,
			ProgressAddr: *progAddr,
		}
		if err := fleetDispatch(opts, cfg); err != nil {
			return errf(err)
		}
	}
	if needDetection {
		res, err := experiment.RunDetection(opts)
		if err != nil {
			return errf(err)
		}
		figs := []struct {
			want bool
			fig  experiment.Figure
		}{
			{*fig10, res.Fig10()},
			{*fig12, res.Fig12()},
			{*fig13, res.Fig13()},
			{*fig14, res.Fig14()},
			{*fig15, res.Fig15()},
			{*fig16, res.Fig16()},
			{*fig17, res.Fig17()},
		}
		for _, f := range figs {
			if !f.want {
				continue
			}
			fig := f.fig
			if err := fig.Render(out); err != nil {
				return errf(err)
			}
			artifacts = append(artifacts, experiment.FigureArtifact(fig, opts.Meta()))
		}
		if n := res.FalsePositives(); n != 0 {
			fmt.Fprintf(out, "WARNING: %d oracle-unconfirmed CORD reports (expected 0)\n", n)
		} else {
			fmt.Fprintln(out, "false positives across the campaign: 0 (as the paper claims)")
		}
		fmt.Fprintln(out)
	}

	if *fig11 {
		ovOpts := opts
		ovOpts.Scale = *ovScale
		rows, fig, err := experiment.RunOverhead(ovOpts)
		if err != nil {
			return errf(err)
		}
		if err := fig.Render(out); err != nil {
			return errf(err)
		}
		artifacts = append(artifacts, experiment.OverheadArtifact(rows, fig, ovOpts.Meta()))
	}

	if *replayFl {
		rows, err := experiment.RunReplayCheck(opts)
		if err != nil {
			return errf(err)
		}
		fmt.Fprintln(out, "RECORD/REPLAY — §3.3 verification")
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		experiment.RenderReplay(rows, tw)
		tw.Flush()
		fmt.Fprintln(out)
		artifacts = append(artifacts, experiment.ReplayArtifact(rows, opts.Meta()))
	}

	if *dirFl {
		rows, err := experiment.RunDirectory(opts, *dirProcs)
		if err != nil {
			return errf(err)
		}
		fmt.Fprintf(out, "DIRECTORY EXTENSION — §2.5, %d processors\n", *dirProcs)
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		experiment.RenderDirectory(rows, *dirProcs, tw)
		tw.Flush()
		fmt.Fprintln(out)
		artifacts = append(artifacts, experiment.DirectoryArtifact(rows, *dirProcs, opts.Meta()))
	}

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			return errf(err)
		}
		for _, a := range artifacts {
			path, err := experiment.WriteArtifact(*jsonDir, a)
			if err != nil {
				return errf(err)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}

	if *diffDir != "" {
		dopts := experiment.DiffOptions{Default: experiment.Tolerance{Abs: *diffAbs, Rel: *diffRel}}
		bad := 0
		for _, a := range artifacts {
			base, err := experiment.ReadArtifact(filepath.Join(*diffDir, experiment.ArtifactFileName(a.ID)))
			if err != nil {
				fmt.Fprintf(out, "diff %s: %v\n", a.ID, err)
				bad++
				continue
			}
			diffs := experiment.DiffArtifacts(a, base, dopts)
			if len(diffs) == 0 {
				fmt.Fprintf(out, "diff %s: ok\n", a.ID)
				continue
			}
			bad++
			for _, d := range diffs {
				fmt.Fprintf(out, "diff %s\n", d)
			}
		}
		if bad > 0 {
			fmt.Fprintf(out, "diff: %d of %d artifacts differ from %s\n", bad, len(artifacts), *diffDir)
			return 1
		}
		fmt.Fprintf(out, "diff: all %d artifacts match %s within tolerance\n", len(artifacts), *diffDir)
	}
	return 0
}
