#!/bin/sh
# Start a local cordd fleet for distributed-campaign experiments (see
# EXPERIMENTS.md, "Running a distributed campaign"): N workers on
# consecutive ports, each with a small pool, all draining cleanly on
# Ctrl-C. Prints the -workers value to paste into cordbench.
#
# With CORD_FLEET_REGISTRY=1 the first process is a registry instead of a
# worker and the others register against it (PROTOCOL.md §7); the printed
# cordbench line then uses -registry, and workers that come and go are
# picked up by the coordinator mid-campaign.
#
# Usage: sh scripts/fleet.sh [workers]   (default 3; `make fleet`)
# Ports start at CORD_FLEET_PORT (default 18180).
set -eu

. "$(dirname "$0")/fleet-lib.sh"

N="${1:-3}"
BASE="${CORD_FLEET_PORT:-18180}"
DIR="$(mktemp -d)"
fleet_trap_cleanup

echo "fleet: building cordd"
go build -o "$DIR/cordd" ./cmd/cordd

REGISTRY=""
if [ "${CORD_FLEET_REGISTRY:-0}" = "1" ]; then
	REGISTRY="http://127.0.0.1:$BASE"
	"$DIR/cordd" -addr "127.0.0.1:$BASE" -registry \
		>"$DIR/cordd-registry.log" 2>&1 &
	PIDS="$PIDS $!"
	fleet_wait_healthy "$REGISTRY"
	echo "fleet: registry up at $REGISTRY"
fi

# Workers sit after the registry (if any) on the port line.
OFFSET=0
if [ -n "$REGISTRY" ]; then OFFSET=1; fi

URLS=""
i=0
while [ "$i" -lt "$N" ]; do
	port=$((BASE + OFFSET + i))
	"$DIR/cordd" -addr "127.0.0.1:$port" -workers 2 -queue 16 \
		${REGISTRY:+-register "$REGISTRY"} \
		>"$DIR/cordd-$port.log" 2>&1 &
	PIDS="$PIDS $!"
	URLS="${URLS:+$URLS,}http://127.0.0.1:$port"
	i=$((i + 1))
done

for url in $(echo "$URLS" | tr ',' ' '); do
	fleet_wait_healthy "$url"
done

if [ -n "$REGISTRY" ]; then
	fleet_wait_registered "$REGISTRY" "$N"
	echo "fleet: $N workers registered. Dispatch a campaign with:"
	echo "  go run ./cmd/cordbench -fig12 -registry $REGISTRY"
else
	echo "fleet: $N workers up. Dispatch a campaign with:"
	echo "  go run ./cmd/cordbench -fig12 -workers $URLS"
fi
echo "fleet: Ctrl-C to drain and stop."
wait
