// Overhead: measure what always-on CORD costs on the paper's machine model
// (§3.1: 4-issue cores, 8 KB L1 / 32 KB L2, snooping data bus, half-rate
// address/timestamp bus, 600-cycle memory). Each application runs twice —
// with and without the detector's bus traffic coupled into the timing model
// — and the cycle ratio is the Fig. 11 number.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cord"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "app\tbaseline cycles\tCORD cycles\toverhead\tchecks\tmem-ts bcasts")
	var sumBase, sumCord uint64
	for _, app := range cord.Apps() {
		base, err := cord.Run(app.Build(2, 4), cord.RunConfig{
			Seed: 11, Jitter: 2, Cost: cord.NewTimingMachine(),
		})
		if err != nil {
			log.Fatal(err)
		}
		det := cord.NewDetector(cord.DefaultDetectorConfig())
		withCord, err := cord.Run(app.Build(2, 4), cord.RunConfig{
			Seed: 11, Jitter: 2, Cost: cord.NewTimingMachine(),
			Observers: []cord.Observer{det},
			Primary:   det, // couple the detector's traffic into the bus model
		})
		if err != nil {
			log.Fatal(err)
		}
		st := det.Stats()
		fmt.Fprintf(w, "%s\t%d\t%d\t%+.2f%%\t%d\t%d\n",
			app.Name, base.Cycles, withCord.Cycles,
			(float64(withCord.Cycles)/float64(base.Cycles)-1)*100,
			st.CheckRequests, st.MemTsBroadcasts)
		sumBase += base.Cycles
		sumCord += withCord.Cycles
	}
	fmt.Fprintf(w, "TOTAL\t%d\t%d\t%+.2f%%\t\t\n", sumBase, sumCord,
		(float64(sumCord)/float64(sumBase)-1)*100)
	w.Flush()
	fmt.Println("\nthe paper reports 0.4% on average and 3% worst case; CORD is cheap")
	fmt.Println("because race checks ride the otherwise-idle address/timestamp bus")
}
