package core

import (
	"math"

	"cord/internal/clock"
	"cord/internal/record"
)

// recorder implements the order-recording side of CORD (§2.7.1): whenever a
// thread's clock changes, it appends an entry holding the previous clock
// value, the thread ID, and the number of instructions committed with that
// value. The final epoch of each thread is flushed at thread exit.
type recorder struct {
	log        record.Log
	prevClock  []clock.Scalar
	epochStart []uint64
	enabled    bool
}

func newRecorder(threads int, enabled bool, initial clock.Scalar) *recorder {
	r := &recorder{
		prevClock:  make([]clock.Scalar, threads),
		epochStart: make([]uint64, threads),
		enabled:    enabled,
	}
	for i := range r.prevClock {
		r.prevClock[i] = initial
	}
	return r
}

// clockChanged notes that thread's clock changed to next at instruction
// boundary instr (the committed count before the in-flight operation; the
// operation itself commits under the new clock).
func (r *recorder) clockChanged(thread int, next clock.Scalar, instr uint64) {
	if !r.enabled {
		return
	}
	delta := instr - r.epochStart[thread]
	// Guard against instruction-count overflow of the 32-bit log field by
	// splitting the epoch (§2.7.1 bumps the clock; splitting the entry is
	// equivalent and race-free because both halves carry the same clock).
	for delta > math.MaxUint32 {
		r.log.Append(record.Entry{Clock: r.prevClock[thread], Thread: uint16(thread), Instr: math.MaxUint32})
		delta -= math.MaxUint32
	}
	r.log.Append(record.Entry{Clock: r.prevClock[thread], Thread: uint16(thread), Instr: uint32(delta)})
	r.prevClock[thread] = next
	r.epochStart[thread] = instr
}

// threadDone flushes the thread's final epoch.
func (r *recorder) threadDone(thread int, totalInstr uint64) {
	if !r.enabled {
		return
	}
	delta := totalInstr - r.epochStart[thread]
	for delta > math.MaxUint32 {
		r.log.Append(record.Entry{Clock: r.prevClock[thread], Thread: uint16(thread), Instr: math.MaxUint32})
		delta -= math.MaxUint32
	}
	r.log.Append(record.Entry{Clock: r.prevClock[thread], Thread: uint16(thread), Instr: uint32(delta)})
	r.epochStart[thread] = totalInstr
}
