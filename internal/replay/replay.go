// Package replay implements deterministic replay from a CORD order log
// (§2.7.1) and the record/replay verification the paper performs (§3.3):
// an execution is recorded, replayed under the log's epoch schedule, and the
// replayed run is required to reproduce the recorded one exactly — the same
// per-thread sequences of read values, the same per-thread instruction
// counts, and the same final memory image.
package replay

import (
	"fmt"

	"cord/internal/core"
	"cord/internal/record"
	"cord/internal/sim"
	"cord/internal/trace"
)

// Outcome reports one record-then-replay round trip.
type Outcome struct {
	// Recorded and Replayed are the two execution results.
	Recorded sim.Result
	Replayed sim.Result
	// Log is the order log that drove the replay.
	Log *record.Log
	// Match reports that replay reproduced the recording exactly.
	Match bool
	// Mismatch names the first divergence when Match is false.
	Mismatch string
}

// Options configures a verification run.
type Options struct {
	Seed       uint64
	Jitter     uint64
	InjectSkip uint64 // replayed with the same injection plan
	D          int    // CORD window parameter (default 16)
	Procs      int    // processors (default 4); threads pin round-robin
	Extra      []trace.Observer
}

// RecordAndReplay executes prog under a recording CORD detector, replays it
// from the log, and compares the two executions. A hung recorded run (a
// possible consequence of injection) is returned with Match=false and a
// descriptive Mismatch; it is the caller's business to treat it as an
// injection artifact rather than a replay failure.
func RecordAndReplay(prog sim.Program, opts Options) (Outcome, error) {
	if opts.D <= 0 {
		opts.D = 16
	}
	det := core.New(core.Config{
		Threads: prog.Threads,
		Procs:   opts.Procs,
		D:       opts.D,
		Record:  true,
	})
	obs := append([]trace.Observer{det}, opts.Extra...)
	rec, err := sim.New(sim.Config{
		Seed:       opts.Seed,
		Jitter:     opts.Jitter,
		Procs:      opts.Procs,
		Observers:  obs,
		InjectSkip: opts.InjectSkip,
	}, prog).Run()
	if err != nil {
		return Outcome{}, fmt.Errorf("replay: recording run: %w", err)
	}
	out := Outcome{Recorded: rec, Log: det.Log()}
	if rec.Hung {
		out.Mismatch = "recorded run deadlocked (injection artifact); nothing to replay"
		return out, nil
	}

	epochs, err := det.Log().Schedule(prog.Threads)
	if err != nil {
		return Outcome{}, fmt.Errorf("replay: scheduling log: %w", err)
	}
	// Replay must remove exactly the instance the recording removed; the
	// global instance index is interleaving-dependent, so the per-thread
	// identity reported by the recording run is used instead.
	repCfg := sim.Config{Seed: opts.Seed, Procs: opts.Procs, ReplayEpochs: epochs}
	if rec.InjectedThread >= 0 {
		repCfg.InjectThread = rec.InjectedThread
		repCfg.InjectThreadNth = rec.InjectedThreadNth
	}
	rep, err := sim.New(repCfg, prog).Run()
	if err != nil {
		return Outcome{}, fmt.Errorf("replay: replaying run: %w", err)
	}
	out.Replayed = rep
	out.Match, out.Mismatch = compare(rec, rep)
	return out, nil
}

func compare(a, b sim.Result) (bool, string) {
	if b.Hung {
		return false, "replayed run could not follow the log (diverged)"
	}
	if a.Ops != b.Ops {
		return false, fmt.Sprintf("instruction counts differ: recorded %d, replayed %d", a.Ops, b.Ops)
	}
	for t := range a.ThreadInstr {
		if a.ThreadInstr[t] != b.ThreadInstr[t] {
			return false, fmt.Sprintf("thread %d instruction count differs: %d vs %d", t, a.ThreadInstr[t], b.ThreadInstr[t])
		}
	}
	for t := range a.ReadHash {
		if a.ReadHash[t] != b.ReadHash[t] {
			return false, fmt.Sprintf("thread %d read-value sequence differs", t)
		}
	}
	if !a.Mem.Equal(b.Mem) {
		return false, "final memory images differ"
	}
	return true, ""
}
