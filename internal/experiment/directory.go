package experiment

import (
	"fmt"
	"text/tabwriter"

	"cord/internal/core"
	"cord/internal/directory"
	"cord/internal/sim"
	"cord/internal/trace"
)

// DirectoryRow compares, for one application, the snooping broadcast traffic
// with the directory extension's point-to-point messages on the same
// executions (§2.5's proposed extension).
// The json tags are the stable wire encoding used by exported benchmark
// artifacts.
type DirectoryRow struct {
	App string `json:"app"`
	// Requests is the number of bus-visible CORD transactions.
	Requests uint64 `json:"requests"`
	// Forwards is the directory's sharer-forward count for them.
	Forwards uint64 `json:"forwards"`
	// SnoopMessages is what a broadcast protocol costs: every transaction
	// observed by every other processor.
	SnoopMessages uint64 `json:"snoop_messages"`
	// MemTsMessages is the directory-homed memory-timestamp update count.
	MemTsMessages uint64 `json:"mem_ts_messages"`
	// RacesMatch confirms the two protocols detected identical race counts.
	RacesMatch bool `json:"races_match"`
}

// DirectoryFigure is the numeric view of the traffic comparison, the
// representation artifact diffing compares cell-by-cell (match is 1/0).
func DirectoryFigure(rows []DirectoryRow) Figure {
	f := Figure{
		ID:      "directory",
		Title:   "Directory-extension traffic vs broadcast snooping (§2.5)",
		Columns: []string{"requests", "dir forwards", "snoop msgs", "mem-ts msgs", "detection match"},
	}
	for _, r := range rows {
		match := 0.0
		if r.RacesMatch {
			match = 1
		}
		f.Rows = append(f.Rows, Row{Label: r.App, Values: []float64{
			float64(r.Requests), float64(r.Forwards), float64(r.SnoopMessages), float64(r.MemTsMessages), match,
		}})
	}
	return f
}

// RunDirectory measures the extension at the given processor count (procs
// here is the count of simulated processors, unlike Options.Procs, the host
// worker count the per-app runs fan out across).
func RunDirectory(o Options, procs int) ([]DirectoryRow, error) {
	o = o.withDefaults()
	if procs <= 0 {
		procs = 16
	}
	rows := make([]DirectoryRow, len(o.Apps))
	// The simulated processor count is part of the run identity (it is not in
	// CampaignMeta), so journals from different -dirprocs values never alias.
	campaign := fmt.Sprintf("directory@%d", procs)
	if err := o.forEach(len(o.Apps), func(i int) error {
		return o.journaledRun(campaign, i, 0, &rows[i], func() error {
			app := o.Apps[i]
			dir := directory.New(procs)
			dird := core.New(core.Config{Threads: procs, Procs: procs, D: 16, Directory: dir})
			snoop := core.New(core.Config{Threads: procs, Procs: procs, D: 16})
			if _, err := o.runSim("directory run", app, procs, sim.Config{
				Seed: o.BaseSeed, Procs: procs,
				Observers: []trace.Observer{snoop, dird},
			}); err != nil {
				return err
			}
			st := dir.Stats()
			rows[i] = DirectoryRow{
				App:           app.Name,
				Requests:      st.Requests,
				Forwards:      st.Forwards,
				SnoopMessages: st.Requests * uint64(procs-1),
				MemTsMessages: st.MemTsMessages,
				RacesMatch:    snoop.RaceCount() == dird.RaceCount(),
			}
			return nil
		})
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderDirectory writes the comparison table.
func RenderDirectory(rows []DirectoryRow, procs int, w *tabwriter.Writer) {
	fmt.Fprintf(w, "app\trequests\tdir forwards\tsnoop msgs (x%d)\tsavings\tmem-ts msgs\tdetection\n", procs-1)
	for _, r := range rows {
		status := "identical"
		if !r.RacesMatch {
			status = "MISMATCH"
		}
		savings := 1 - float64(r.Forwards)/float64(r.SnoopMessages)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\t%d\t%s\n",
			r.App, r.Requests, r.Forwards, r.SnoopMessages, Percent(savings), r.MemTsMessages, status)
	}
}
