package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"cord/internal/experiment"
	"cord/internal/httpretry"
	"cord/internal/server"
)

// This file is the coordinator half of the distributed campaign protocol
// (PROTOCOL.md §6 and §7): -workers (or -registry) fans the detection
// campaign's run shards out over a cordd fleet, journals every received
// outcome cell under its run identity, and leaves RunDetection to aggregate
// the journal exactly as it would a local run. The journal is the merge
// point — remote cells are byte-identical to local ones (the §6 contract),
// so the artifacts cannot depend on worker count, placement, stealing, or
// failure schedule. Scheduling policy itself lives in fleetpool.go.

// fleetClientTimeout bounds one shard request end to end: worker queue wait
// plus serial shard execution. Workers bound sessions themselves
// (SessionTimeout), so this mainly catches dead TCP peers.
const fleetClientTimeout = 5 * time.Minute

// fleetRetryPolicy is the production shard-retry ladder: bounded attempts,
// 429 Retry-After hints honored, doubling fallback for transport errors and
// 5xx — jittered per worker URL so a re-shard storm after a worker death
// does not march the survivors' retries in lockstep — capped so a
// misbehaving worker cannot stall the queue for long.
var fleetRetryPolicy = httpretry.Policy{Attempts: 5, Fallback: 250 * time.Millisecond, Cap: 5 * time.Second, Jitter: 0.5}

// fleetConfig bundles the coordinator's dispatch parameters. Exactly one of
// Workers (static -workers list) or Registry (dynamic §7 discovery) names
// the fleet.
type fleetConfig struct {
	// Workers are static worker base URLs; membership is fixed for the
	// campaign and losing all of them fails the dispatch.
	Workers []string
	// Registry is a §7 registry base URL: the worker set is resolved from
	// GET /v1/fleet/workers, re-resolved every PollInterval (joiners are
	// probed and put to work mid-campaign), and losing every worker parks
	// the remaining shards for up to JoinGrace awaiting a replacement.
	Registry  string
	ShardRuns int
	Client    *http.Client
	Policy    httpretry.Policy
	// ProgressAddr, when non-empty, serves GET /v1/campaign/progress on
	// this listen address for the duration of the dispatch.
	ProgressAddr string
	// PollInterval is the registry re-resolve cadence (default 2s).
	PollInterval time.Duration
	// JoinGrace is how long an all-workers-lost campaign waits for a
	// joiner before failing, registry mode only (default 30s).
	JoinGrace time.Duration
}

func (c fleetConfig) withDefaults() fleetConfig {
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Second
	}
	if c.JoinGrace <= 0 {
		c.JoinGrace = 30 * time.Second
	}
	return c
}

// parseWorkers splits the -workers list into base URLs.
func parseWorkers(spec string) ([]string, error) {
	var urls []string
	for _, part := range strings.Split(spec, ",") {
		u := strings.TrimRight(strings.TrimSpace(part), "/")
		if u == "" {
			return nil, fmt.Errorf("-workers entry %q is empty", part)
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("-workers entry %q must be an http(s) base URL", part)
		}
		urls = append(urls, u)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("-workers must name at least one worker")
	}
	return urls, nil
}

// shardWork is one dispatchable shard: a contiguous run range of one app,
// plus the §7 origin it will declare if it was stolen or requeued.
type shardWork struct {
	id     string
	ranges []experiment.ShardRange
	runs   int
	origin string // "", "steal" or "requeue"
}

// buildShards cuts the campaign into per-app chunks of at most shardRuns
// injection runs. Shard ids are deterministic functions of the content
// (`<app>.<lo>.<hi>`), so a re-dispatched campaign re-sends byte-identical
// shards and idempotent workers answer from determinism alone. The scheduler
// may later coalesce contiguous chunks for a fast worker; merged shards
// follow the same id convention.
func buildShards(meta experiment.CampaignMeta, shardRuns int) []shardWork {
	var shards []shardWork
	for _, app := range meta.Apps {
		for lo := 0; lo < meta.Injections; lo += shardRuns {
			hi := lo + shardRuns
			if hi > meta.Injections {
				hi = meta.Injections
			}
			shards = append(shards, shardWork{
				id:     fmt.Sprintf("%s.%d.%d", app, lo, hi),
				ranges: []experiment.ShardRange{{App: app, Lo: lo, Hi: hi}},
				runs:   hi - lo,
			})
		}
	}
	return shards
}

// shardJournaled reports whether every cell the shard would produce is
// already in the journal — the resume fast path: such shards are never
// dispatched again.
func shardJournaled(o experiment.Options, appIdx map[string]int, w shardWork) bool {
	if o.Checkpoint == nil {
		return false
	}
	for _, rg := range w.ranges {
		idx := appIdx[rg.App]
		if !o.Checkpoint.Has(o.DetectCountKey(idx)) {
			return false
		}
		for i := rg.Lo; i < rg.Hi; i++ {
			if !o.Checkpoint.Has(o.DetectInjectKey(idx, i)) {
				return false
			}
		}
	}
	return true
}

// errorPayload mirrors the service's error body (PROTOCOL.md §5).
type errorPayload struct {
	Schema int    `json:"schema"`
	Code   string `json:"code"`
	Error  string `json:"error"`
}

// fatalStatus reports whether an HTTP status can never succeed on retry or
// on another worker: the request itself is wrong (bad configuration,
// fingerprint skew, shard-id conflict), so re-sending it anywhere is wasted
// work at best and silent corruption at worst.
func fatalStatus(status int) bool {
	switch status {
	case http.StatusBadRequest, http.StatusConflict, http.StatusUnprocessableEntity,
		http.StatusRequestEntityTooLarge, http.StatusNotFound, http.StatusMethodNotAllowed:
		return true
	}
	return false
}

// fatalDispatchError marks failures that must abort the whole campaign
// rather than fail over to another worker.
type fatalDispatchError struct{ err error }

func (e fatalDispatchError) Error() string { return e.err.Error() }
func (e fatalDispatchError) Unwrap() error { return e.err }

// postShard sends one shard to one worker under the retry policy: 429
// sleeps the server's Retry-After hint, transport errors and 5xx sleep the
// doubling fallback (jittered per worker URL), and a fatal status aborts the
// campaign. onTransient fires on each retried failure so the scheduler can
// mark the worker suspect. A worker that exhausts the attempt budget is
// reported dead via a non-fatal error.
func postShard(client *http.Client, url string, req server.CampaignShardRequest, policy httpretry.Policy, progress func(string, ...any), onTransient func()) ([]experiment.Cell, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fatalDispatchError{fmt.Errorf("encoding shard %s: %w", req.ShardID, err)}
	}
	var lastErr error
	for attempt := 1; attempt <= policy.Attempts; attempt++ {
		resp, err := client.Post(url+"/v1/campaign/shard", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			onTransient()
			if attempt < policy.Attempts {
				d := policy.BackoffKeyed(url, attempt)
				progress("fleet: %s: shard %s attempt %d/%d failed (%v); backing off %v",
					url, req.ShardID, attempt, policy.Attempts, err, d)
				time.Sleep(d)
			}
			continue
		}
		b, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil {
			lastErr = readErr
			onTransient()
			if attempt < policy.Attempts {
				time.Sleep(policy.BackoffKeyed(url, attempt))
			}
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var sr server.CampaignShardResponse
			if err := json.Unmarshal(b, &sr); err != nil {
				return nil, fatalDispatchError{fmt.Errorf("worker %s: shard %s: unparsable response: %v", url, req.ShardID, err)}
			}
			return sr.Cells, nil
		case resp.StatusCode == http.StatusTooManyRequests:
			// Pushback is flow control, not sickness: no onTransient.
			d := policy.RetryAfterKeyed(resp.Header.Get("Retry-After"), url, attempt)
			lastErr = fmt.Errorf("worker %s pushed back (429)", url)
			if attempt < policy.Attempts {
				progress("fleet: %s: shard %s throttled; honoring Retry-After %v", url, req.ShardID, d)
				time.Sleep(d)
			}
		case fatalStatus(resp.StatusCode):
			var ep errorPayload
			_ = json.Unmarshal(b, &ep)
			return nil, fatalDispatchError{fmt.Errorf("worker %s rejected shard %s: status %d code %q: %s",
				url, req.ShardID, resp.StatusCode, ep.Code, ep.Error)}
		default: // 5xx, 503 draining, timeouts: maybe transient, maybe dying
			lastErr = fmt.Errorf("worker %s: shard %s: status %d", url, req.ShardID, resp.StatusCode)
			onTransient()
			if attempt < policy.Attempts {
				time.Sleep(policy.BackoffKeyed(url, attempt))
			}
		}
	}
	return nil, fmt.Errorf("worker %s gave up after %d attempts: %w", url, policy.Attempts, lastErr)
}

// probeWorker sends the §6 plan probe and measures its round trip — the
// seed of the worker's latency EWMA. A disagreeing fingerprint or a fatal
// status returns a fatalDispatchError; any other failure is a skip (the
// worker is unusable right now, not proof the campaign is wrong).
func probeWorker(client *http.Client, url string, planBody []byte, fp string) (rtt time.Duration, err error) {
	start := time.Now()
	resp, err := client.Post(url+"/v1/campaign/plan", "application/json", bytes.NewReader(planBody))
	if err != nil {
		return 0, fmt.Errorf("unreachable: %w", err)
	}
	b, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	rtt = time.Since(start)
	if readErr != nil || resp.StatusCode != http.StatusOK {
		var ep errorPayload
		_ = json.Unmarshal(b, &ep)
		if fatalStatus(resp.StatusCode) {
			return 0, fatalDispatchError{fmt.Errorf("%s rejected the campaign plan: status %d code %q: %s",
				url, resp.StatusCode, ep.Code, ep.Error)}
		}
		return 0, fmt.Errorf("plan probe failed (status %d)", resp.StatusCode)
	}
	var plan server.CampaignPlanResponse
	if err := json.Unmarshal(b, &plan); err != nil {
		return 0, fatalDispatchError{fmt.Errorf("%s: unparsable plan response: %v", url, err)}
	}
	if plan.Fingerprint != fp {
		return 0, fatalDispatchError{fmt.Errorf("%s fingerprints the campaign %s, this coordinator %s: worker and coordinator builds or configurations disagree — refusing to merge its results",
			url, plan.Fingerprint, fp)}
	}
	return rtt, nil
}

// resolveRegistry lists the live workers from a §7 registry.
func resolveRegistry(client *http.Client, registry string) ([]string, error) {
	resp, err := client.Get(registry + "/v1/fleet/workers")
	if err != nil {
		return nil, fmt.Errorf("fleet: registry %s unreachable: %w", registry, err)
	}
	b, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if readErr != nil || resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: registry %s listing failed (status %d)", registry, resp.StatusCode)
	}
	var list server.FleetWorkersResponse
	if err := json.Unmarshal(b, &list); err != nil {
		return nil, fmt.Errorf("fleet: registry %s: unparsable listing: %v", registry, err)
	}
	urls := make([]string, 0, len(list.Workers))
	for _, w := range list.Workers {
		urls = append(urls, strings.TrimRight(w.URL, "/"))
	}
	return urls, nil
}

// startProgressServer serves GET /v1/campaign/progress on addr until stop is
// called, returning the bound base URL (addr may carry port 0).
func startProgressServer(addr string, snapshot func() server.CampaignProgress) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("fleet: progress listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/campaign/progress", server.ProgressHandler(snapshot))
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// fleetDispatch executes the detection campaign's runs on a cordd fleet and
// journals every outcome cell into opts.Checkpoint. On return with nil
// error, every run identity of the campaign is journaled, so a subsequent
// RunDetection aggregates entirely from the journal without simulating
// anything locally.
//
// Worker loss is survived by requeueing: a worker that exhausts its retry
// budget is dropped and its backlog redistributes to the survivors (or, in
// registry mode, waits for a joiner). Fast workers steal queued shards from
// slow or suspect ones — still exactly-once, because the journal keyed by
// run identity is the merge point. Closing opts.Interrupt drains in-flight
// shards (journaling them) and returns experiment.ErrInterrupted; the
// journal then resumes the campaign exactly like a local -resume.
func fleetDispatch(opts experiment.Options, cfg fleetConfig) error {
	cfg = cfg.withDefaults()
	if opts.Checkpoint == nil {
		return errors.New("fleet dispatch needs a checkpoint journal as its merge point")
	}
	meta := opts.Meta()
	fp := opts.Fingerprint()
	campaign := "bench-" + fp
	progress := func(format string, args ...any) {
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, format+"\n", args...)
		}
	}
	planBody, err := json.Marshal(server.CampaignPlanRequest{Campaign: campaign, Options: meta})
	if err != nil {
		return fmt.Errorf("fleet: encoding plan request: %w", err)
	}

	// Resolve the worker set: the static -workers list, or the registry's
	// current listing (retried across PollInterval for up to JoinGrace — a
	// fleet may still be registering when the coordinator starts).
	workerURLs := cfg.Workers
	if cfg.Registry != "" {
		deadline := time.Now().Add(cfg.JoinGrace)
		for {
			workerURLs, err = resolveRegistry(cfg.Client, cfg.Registry)
			if err == nil && len(workerURLs) > 0 {
				break
			}
			if time.Now().After(deadline) {
				if err == nil {
					err = fmt.Errorf("fleet: registry %s lists no workers", cfg.Registry)
				}
				return err
			}
			progress("fleet: registry has no workers yet; retrying in %v", cfg.PollInterval)
			time.Sleep(cfg.PollInterval)
		}
	}

	// Probe every worker's plan endpoint: agreement on the fingerprint is
	// the precondition for merging anything a worker says. Unreachable
	// workers are dropped with a warning; a disagreeing worker is version
	// or configuration skew and aborts the dispatch — its cells would merge
	// silently wrong. The probe round trip seeds the placement EWMA.
	type probed struct {
		url string
		rtt time.Duration
	}
	var live []probed
	for _, url := range workerURLs {
		rtt, err := probeWorker(cfg.Client, url, planBody, fp)
		if err != nil {
			var fatal fatalDispatchError
			if errors.As(err, &fatal) {
				return fmt.Errorf("fleet: %w", err)
			}
			progress("fleet: %s: %v; dispatching without it", url, err)
			continue
		}
		live = append(live, probed{url, rtt})
	}
	if len(live) == 0 {
		return fmt.Errorf("fleet: none of the %d workers is usable", len(workerURLs))
	}

	// Cut the campaign into shards, skipping those fully journaled (resume).
	appIdx := make(map[string]int, len(meta.Apps))
	for i, name := range meta.Apps {
		appIdx[name] = i
	}
	all := buildShards(meta, cfg.ShardRuns)
	var shards []shardWork
	skipped := 0
	for _, w := range all {
		if shardJournaled(opts, appIdx, w) {
			skipped++
			continue
		}
		shards = append(shards, w)
	}
	progress("fleet: %d workers, %d shards of <=%d runs (%d already journaled)",
		len(live), len(shards), cfg.ShardRuns, skipped)
	if len(shards) == 0 {
		return nil
	}

	pool := newFleetPool(campaign, fp, cfg.ShardRuns, cfg.Registry != "", cfg.JoinGrace,
		len(meta.Apps)*(1+meta.Injections))
	var seeded []string
	for i := range meta.Apps {
		if opts.Checkpoint.Has(opts.DetectCountKey(i)) {
			seeded = append(seeded, opts.DetectCountKey(i))
		}
		for j := 0; j < meta.Injections; j++ {
			if opts.Checkpoint.Has(opts.DetectInjectKey(i, j)) {
				seeded = append(seeded, opts.DetectInjectKey(i, j))
			}
		}
	}
	pool.seedJournaled(seeded)

	if cfg.ProgressAddr != "" {
		bound, stopProgress, err := startProgressServer(cfg.ProgressAddr, pool.snapshot)
		if err != nil {
			return err
		}
		defer stopProgress()
		progress("fleet: progress at %s/v1/campaign/progress", bound)
	}

	stopWatch := make(chan struct{})
	defer close(stopWatch)
	if opts.Interrupt != nil {
		go func() {
			select {
			case <-opts.Interrupt:
				pool.interrupt()
			case <-stopWatch:
			}
		}()
	}

	// Worker loops: take (own queue → orphans → steal), execute, journal.
	var wg sync.WaitGroup
	runWorker := func(url string) {
		defer wg.Done()
		for {
			w, ok := pool.take(url)
			if !ok {
				return
			}
			req := server.CampaignShardRequest{
				Campaign:    campaign,
				ShardID:     w.id,
				Fingerprint: fp,
				Options:     meta,
				Ranges:      w.ranges,
				Origin:      w.origin,
			}
			start := time.Now()
			cells, err := postShard(cfg.Client, url, req, cfg.Policy, progress,
				func() { pool.markSuspect(url) })
			if err != nil {
				var fatal fatalDispatchError
				if errors.As(err, &fatal) {
					pool.fail(err)
					pool.workerDied(url, w, err) // releases the in-flight slot
					return
				}
				progress("fleet: dropping %s (%v); requeueing %s", url, err, w.id)
				pool.workerDied(url, w, err)
				return
			}
			// The journal is the merge point: Append compacts the wire
			// cells back to the exact bytes a local campaign journals, and
			// duplicate keys (count cells shared by shards of one app)
			// overwrite with identical bytes.
			var jerr error
			for _, c := range cells {
				if err := opts.Checkpoint.Append(c.Key, c.Data); err != nil {
					jerr = fmt.Errorf("fleet: journaling %s: %w", c.Key, err)
					break
				}
				pool.journaled(c.Key)
			}
			if jerr != nil {
				// Unlike a local run (where a lost journal entry only costs
				// resume time), the journal is the only copy of a remote
				// outcome — a failed append must stop the campaign before
				// aggregation runs on holes.
				pool.fail(jerr)
				pool.completed(url, w, time.Since(start))
				return
			}
			if w.origin != "" {
				progress("fleet: %s completed shard %s via %s (%d runs, %d cells)", url, w.id, w.origin, w.runs, len(cells))
			} else {
				progress("fleet: %s completed shard %s (%d runs, %d cells)", url, w.id, w.runs, len(cells))
			}
			pool.completed(url, w, time.Since(start))
		}
	}
	for _, p := range live {
		if pool.addWorker(p.url, float64(p.rtt)/float64(time.Millisecond)) {
			wg.Add(1)
			go runWorker(p.url)
		}
	}
	pool.placeShards(shards)

	// Registry mode: re-resolve membership on a cadence, probing joiners
	// (and restarted workers, which re-register under their old URL) and
	// putting them to work mid-campaign. A joiner that disagrees on the
	// fingerprint is skipped with a warning, not fatal: nothing of its has
	// been merged, unlike the workers the campaign started with.
	stopMembership := make(chan struct{})
	membershipDone := make(chan struct{})
	if cfg.Registry != "" {
		go func() {
			defer close(membershipDone)
			tick := time.NewTicker(cfg.PollInterval)
			defer tick.Stop()
			for {
				select {
				case <-stopMembership:
					return
				case <-tick.C:
				}
				urls, err := resolveRegistry(cfg.Client, cfg.Registry)
				if err != nil {
					progress("%v; keeping current membership", err)
					continue
				}
				for _, url := range urls {
					if !pool.candidate(url) {
						continue
					}
					rtt, err := probeWorker(cfg.Client, url, planBody, fp)
					if err != nil {
						progress("fleet: joiner %s: %v; skipping", url, err)
						continue
					}
					if pool.addWorker(url, float64(rtt)/float64(time.Millisecond)) {
						progress("fleet: %s joined the campaign", url)
						wg.Add(1)
						go runWorker(url)
					}
				}
			}
		}()
	} else {
		close(membershipDone)
	}

	failed, interrupted := pool.waitDone()
	close(stopMembership)
	<-membershipDone
	wg.Wait()

	if failed != nil {
		return failed
	}
	if interrupted {
		return experiment.ErrInterrupted
	}
	return nil
}
