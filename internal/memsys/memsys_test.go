package memsys

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	if WordsPerLine != 16 {
		t.Fatalf("WordsPerLine = %d, want 16 (64-byte lines, 4-byte words)", WordsPerLine)
	}
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 {
		t.Fatal("LineOf wrong at boundaries")
	}
	if WordIndex(0) != 0 || WordIndex(4) != 1 || WordIndex(63) != 15 || WordIndex(64) != 0 {
		t.Fatal("WordIndex wrong")
	}
	if WordAlign(7) != 4 || WordAlign(4) != 4 {
		t.Fatal("WordAlign wrong")
	}
	if LineBase(3) != 192 || WordAddr(3, 2) != 200 {
		t.Fatal("LineBase/WordAddr wrong")
	}
}

// Property: word/line decomposition round-trips.
func TestAddrDecompositionRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		a := WordAlign(Addr(raw))
		return WordAddr(LineOf(a), WordIndex(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryLoadStore(t *testing.T) {
	m := NewMemory()
	if m.Load(0x100) != 0 {
		t.Fatal("fresh memory not zero")
	}
	m.Store(0x100, 42)
	if m.Load(0x100) != 42 {
		t.Fatal("store/load mismatch")
	}
	if m.Load(0x104) != 0 {
		t.Fatal("adjacent word affected")
	}
	// Unaligned access maps to its word.
	if m.Load(0x102) != 42 {
		t.Fatal("unaligned load not word-mapped")
	}
	m.Store(0x100, 0)
	if m.Footprint() != 0 {
		t.Fatal("zero store should keep the map sparse")
	}
}

func TestMemoryAdd(t *testing.T) {
	m := NewMemory()
	if m.Add(0x40, 3) != 3 || m.Add(0x40, 4) != 7 {
		t.Fatal("Add wrong")
	}
}

func TestMemoryEqualAndSnapshot(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	a.Store(8, 1)
	if a.Equal(b) {
		t.Fatal("unequal memories compare equal")
	}
	b.Store(8, 1)
	if !a.Equal(b) {
		t.Fatal("equal memories compare unequal")
	}
	snap := a.Snapshot()
	if len(snap) != 1 || snap[8] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	snap[8] = 99
	if a.Load(8) != 1 {
		t.Fatal("snapshot aliases memory")
	}
}

func TestZeroValueMemoryUsable(t *testing.T) {
	var m Memory
	if m.Load(4) != 0 {
		t.Fatal("zero-value load")
	}
	m.Store(4, 9)
	if m.Load(4) != 9 {
		t.Fatal("zero-value store")
	}
}

func TestAllocatorLineAlignment(t *testing.T) {
	al := NewAllocator()
	r1 := al.Alloc(5)
	r2 := al.Alloc(20)
	if r1.Base%LineBytes != 0 || r2.Base%LineBytes != 0 {
		t.Fatal("regions not line aligned")
	}
	if r2.Base < r1.End() {
		t.Fatal("regions overlap")
	}
	if r1.Base == 0 {
		t.Fatal("allocator handed out address zero")
	}
}

func TestRegionWordAndLines(t *testing.T) {
	al := NewAllocator()
	r := al.Alloc(20) // 80 bytes -> 2 lines
	if r.Lines() != 2 {
		t.Fatalf("Lines() = %d, want 2", r.Lines())
	}
	if r.Word(0) != r.Base || r.Word(19) != r.Base+76 {
		t.Fatal("Word addressing wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Word did not panic")
		}
	}()
	r.Word(20)
}

func TestPaddedRegionNoSharedLines(t *testing.T) {
	al := NewAllocator()
	p := al.AllocPadded(4)
	if p.Count() != 4 {
		t.Fatalf("Count = %d", p.Count())
	}
	seen := map[Line]bool{}
	for i := 0; i < 4; i++ {
		l := LineOf(p.Word(i))
		if seen[l] {
			t.Fatal("padded words share a line")
		}
		seen[l] = true
	}
}

// Property: distinct allocations never share a cache line.
func TestAllocationsDisjoint(t *testing.T) {
	f := func(sizes [6]uint8) bool {
		al := NewAllocator()
		used := map[Line]bool{}
		for _, sz := range sizes {
			r := al.Alloc(int(sz)%50 + 1)
			first, last := LineOf(r.Base), LineOf(r.End()-1)
			for l := first; l <= last; l++ {
				if used[l] {
					return false
				}
				used[l] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
