package workload

import (
	"testing"

	"cord/internal/memsys"
	"cord/internal/sim"
	"cord/internal/trace"
)

// TestFootprintRegimes guards the working-set design behind Figs. 14/15:
// the buffering-limit gradient needs applications whose shared footprints
// straddle the 8 KB L1 and 32 KB L2 bounds. A refactor that shrinks these
// working sets would silently flatten those figures.
func TestFootprintRegimes(t *testing.T) {
	footprint := func(name string) int {
		app, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		lines := map[memsys.Line]bool{}
		tap := &trace.FuncObserver{Label: "fp", Fn: func(a trace.Access) {
			lines[memsys.LineOf(a.Addr)] = true
		}}
		if _, err := sim.New(sim.Config{Seed: 1, Jitter: 7,
			Observers: []trace.Observer{tap}}, app.Build(1, 4)).Run(); err != nil {
			t.Fatal(err)
		}
		return len(lines) * memsys.LineBytes
	}
	const l1, l2 = 8 << 10, 32 << 10
	// Above-L1 apps: their racy histories must outlive the phase but not
	// (always) the L1.
	for _, name := range []string{"raytrace", "volrend", "fft", "barnes"} {
		if fp := footprint(name); fp <= l1 {
			t.Errorf("%s footprint %d B should exceed the 8 KB L1", name, fp)
		}
	}
	// Above-L2 apps carry the Inf-vs-L2 difference.
	for _, name := range []string{"ocean", "fft"} {
		if fp := footprint(name); fp <= l2 {
			t.Errorf("%s footprint %d B should exceed the 32 KB L2", name, fp)
		}
	}
	// Small-footprint apps keep their racy lines resident (water-n2's
	// story depends on vector history SURVIVING in cache while scalar
	// clocks drift too far).
	for _, name := range []string{"water-sp", "fmm", "radiosity"} {
		if fp := footprint(name); fp >= l2 {
			t.Errorf("%s footprint %d B should stay under the 32 KB L2", name, fp)
		}
	}
}

// TestSyncInstanceBudget guards injection diversity: every app must offer
// enough countable sync instances that the random target rarely repeats.
func TestSyncInstanceBudget(t *testing.T) {
	for _, app := range All() {
		res, err := sim.New(sim.Config{Seed: 3, Jitter: 7}, app.Build(1, 4)).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.SyncInstances < 20 {
			t.Errorf("%s has only %d injectable sync instances", app.Name, res.SyncInstances)
		}
	}
}
