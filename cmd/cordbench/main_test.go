package main

import "testing"

// TestValidateFlags: degenerate campaign parameters must be rejected up
// front with a usage error instead of producing empty figures or confusing
// downstream failures.
func TestValidateFlags(t *testing.T) {
	ok := func(injections, scale, ovScale, procs, dirProcs int) {
		t.Helper()
		if err := validateFlags(injections, scale, ovScale, procs, dirProcs); err != nil {
			t.Errorf("validateFlags(%d,%d,%d,%d,%d) = %v, want nil",
				injections, scale, ovScale, procs, dirProcs, err)
		}
	}
	bad := func(injections, scale, ovScale, procs, dirProcs int) {
		t.Helper()
		if err := validateFlags(injections, scale, ovScale, procs, dirProcs); err == nil {
			t.Errorf("validateFlags(%d,%d,%d,%d,%d) accepted degenerate flags",
				injections, scale, ovScale, procs, dirProcs)
		}
	}

	ok(40, 1, 4, 0, 16) // the defaults
	ok(1, 1, 1, 8, 2)   // minimal legal values

	bad(0, 1, 4, 0, 16)  // -injections 0: empty detection campaign
	bad(-5, 1, 4, 0, 16) // negative injections
	bad(40, 0, 4, 0, 16) // -scale 0: empty workloads
	bad(40, -1, 4, 0, 16)
	bad(40, 1, 0, 0, 16)  // -overhead-scale 0
	bad(40, 1, 4, -1, 16) // negative host worker count
	bad(40, 1, 4, 0, 1)   // single-processor directory machine
	bad(40, 1, 4, 0, 0)
}
