package cord_test

import (
	"math"
	"testing"

	"cord"
)

func TestQuickstartFlow(t *testing.T) {
	prog := cord.AppByName("raytrace").Build(1, 4)
	det := cord.NewDetector(cord.DetectorConfig{Threads: 4, D: 16, Record: true})
	res, err := cord.Run(prog, cord.RunConfig{Seed: 1, Jitter: 7, Observers: []cord.Observer{det}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hung || res.Accesses == 0 {
		t.Fatalf("bad run: %+v", res)
	}
	if det.RaceCount() != 0 {
		t.Fatalf("race-free program reported %d races", det.RaceCount())
	}
	if det.Log().Len() == 0 {
		t.Fatal("recording produced no log")
	}
}

func TestCustomProgram(t *testing.T) {
	al := cord.NewAllocator()
	lock := cord.NewMutex(al)
	data := al.Alloc(64)
	bar := cord.NewBarrier(al, 3)
	prog := cord.Program{
		Name:    "custom",
		Threads: 3,
		Body: func(th int, env *cord.Env) {
			lock.Lock(env)
			env.Write(data.Word(0), env.Read(data.Word(0))+1)
			lock.Unlock(env)
			bar.Wait(env)
			env.Write(data.Word(1+th), env.Read(data.Word(0)))
		},
	}
	res, err := cord.Run(prog, cord.RunConfig{Seed: 7, Jitter: 5})
	if err != nil {
		t.Fatal(err)
	}
	for th := 0; th < 3; th++ {
		if v := res.Mem.Load(data.Word(1 + th)); v != 3 {
			t.Fatalf("thread %d read %d after barrier, want 3", th, v)
		}
	}
}

func TestInjectedRaceDetectedAndReplayed(t *testing.T) {
	prog := cord.AppByName("raytrace").Build(1, 4)
	det := cord.NewDetector(cord.DetectorConfig{Threads: 4, D: 16})
	ideal := cord.NewIdealDetector(4)
	res, err := cord.Run(prog, cord.RunConfig{
		Seed: 2, Jitter: 7, InjectSkip: 5,
		Observers: []cord.Observer{ideal, det},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hung {
		t.Skip("injection deadlocked this seed")
	}
	if ideal.RaceCount() > 0 && det.RaceCount() == 0 {
		t.Log("CORD missed this injection (possible; not an error)")
	}
	for _, r := range det.Races() {
		if !ideal.Confirms(r) {
			t.Fatalf("false positive through public API: %v", r)
		}
	}
	out, err := cord.RecordAndReplay(cord.AppByName("raytrace").Build(1, 4),
		cord.ReplayOptions{Seed: 2, Jitter: 7, InjectSkip: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Recorded.Hung && !out.Match {
		t.Fatalf("replay mismatch: %s", out.Mismatch)
	}
}

func TestAreaModelMatchesPaper(t *testing.T) {
	m := cord.DefaultAreaModel()
	approx := func(got, want float64) bool { return math.Abs(got-want) < 0.015 }
	if !approx(m.ScalarOverhead(), 0.19) {
		t.Fatalf("scalar overhead = %.3f, want ~0.19", m.ScalarOverhead())
	}
	if !approx(m.VectorPerLineOverhead(), 0.38) {
		t.Fatalf("per-line vector overhead = %.3f, want ~0.38", m.VectorPerLineOverhead())
	}
	if !approx(m.VectorPerWordOverhead(), 2.00) {
		t.Fatalf("per-word vector overhead = %.3f, want ~2.00", m.VectorPerWordOverhead())
	}
}

func TestAppsCatalogue(t *testing.T) {
	apps := cord.Apps()
	if len(apps) != 12 {
		t.Fatalf("Table 1 lists 12 applications, got %d", len(apps))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AppByName should panic on unknown app")
		}
	}()
	cord.AppByName("doom")
}
