// Package directory implements the paper's proposed extension of CORD to
// directory-based coherence (§2.5: "A straightforward extension of this
// protocol to a directory-based system is possible, but in this paper we
// focus on systems (CMPs and SMPs) with snooping cache coherence").
//
// Under snooping, every CORD transaction — fetches, upgrades, explicit race
// checks, memory-timestamp updates — is a broadcast observed by all
// processors. Under a directory protocol the home node tracks exactly which
// caches hold each line, so:
//
//   - race checks and coherence requests become one request message to the
//     home plus one forward per actual sharer (instead of procs-1 snoops);
//   - the pair of main-memory timestamps lives at the home node naturally,
//     so "broadcast" memory-timestamp updates become a single message to
//     the home instead of a bus transaction every cache must observe.
//
// Detection results are identical by construction — the directory's sharer
// sets name precisely the caches the snooping protocol would have probed —
// which the tests assert by running both variants on the same executions.
// What changes is traffic, and that is the extension's point: message
// counts grow with actual sharing, not with machine size.
package directory

import (
	"fmt"

	"cord/internal/memsys"
)

// Stats counts the point-to-point messages a directory protocol would carry
// for the same CORD activity a snooping bus broadcasts.
type Stats struct {
	// Requests are messages from a requesting cache to the home node
	// (fetches, upgrades and explicit race checks all take one).
	Requests uint64
	// Forwards are home-to-sharer messages (race checks and invalidations
	// are forwarded only to actual sharers).
	Forwards uint64
	// Responses are sharer-to-requester replies carrying timestamps/data.
	Responses uint64
	// MemTsMessages are memory-timestamp updates: one message to the home
	// instead of a broadcast.
	MemTsMessages uint64
}

type entry struct {
	sharers uint64 // bitmap over processors
}

// Directory is the home-node sharer tracker for one simulated machine.
type Directory struct {
	procs int
	lines map[memsys.Line]*entry
	st    Stats
}

// New builds an empty directory for the given processor count (up to 64).
func New(procs int) *Directory {
	if procs <= 0 || procs > 64 {
		panic(fmt.Sprintf("directory: unsupported processor count %d", procs))
	}
	return &Directory{procs: procs, lines: make(map[memsys.Line]*entry)}
}

// Procs returns the processor count the directory was built for.
func (d *Directory) Procs() int { return d.procs }

func (d *Directory) entryFor(l memsys.Line) *entry {
	e := d.lines[l]
	if e == nil {
		e = &entry{}
		d.lines[l] = e
	}
	return e
}

// Sharers appends to dst the processors currently holding the line, except
// the requester. This is the forward set for a request on the line.
func (d *Directory) Sharers(l memsys.Line, except int, dst []int) []int {
	e := d.lines[l]
	if e == nil {
		return dst
	}
	for p := 0; p < d.procs; p++ {
		if p != except && e.sharers&(1<<p) != 0 {
			dst = append(dst, p)
		}
	}
	return dst
}

// Request accounts one request to the home plus forwards to n sharers and
// their responses.
func (d *Directory) Request(forwards int) {
	d.st.Requests++
	d.st.Forwards += uint64(forwards)
	d.st.Responses += uint64(forwards)
}

// MemTsUpdate accounts a memory-timestamp update message to the home.
func (d *Directory) MemTsUpdate(n int) { d.st.MemTsMessages += uint64(n) }

// AddSharer records that proc now holds the line.
func (d *Directory) AddSharer(l memsys.Line, proc int) {
	d.entryFor(l).sharers |= 1 << proc
}

// RemoveSharer records that proc no longer holds the line (eviction or
// invalidation).
func (d *Directory) RemoveSharer(l memsys.Line, proc int) {
	if e := d.lines[l]; e != nil {
		e.sharers &^= 1 << proc
		if e.sharers == 0 {
			delete(d.lines, l)
		}
	}
}

// SetExclusive records that proc is the only holder (after a write).
func (d *Directory) SetExclusive(l memsys.Line, proc int) {
	d.entryFor(l).sharers = 1 << proc
}

// Holds reports whether the directory believes proc shares the line.
func (d *Directory) Holds(l memsys.Line, proc int) bool {
	e := d.lines[l]
	return e != nil && e.sharers&(1<<proc) != 0
}

// Stats returns the accumulated message counts.
func (d *Directory) Stats() Stats { return d.st }

// Lines returns how many lines currently have a non-empty sharer set.
func (d *Directory) Lines() int { return len(d.lines) }

// Validate cross-checks the directory against ground truth: holds reports,
// per line, which processors actually cache it. It returns the first
// inconsistency found, or nil. Tests call it with the detector's caches as
// the oracle.
func (d *Directory) Validate(holds func(l memsys.Line, proc int) bool) error {
	for l, e := range d.lines {
		for p := 0; p < d.procs; p++ {
			dirSays := e.sharers&(1<<p) != 0
			if dirSays != holds(l, p) {
				return fmt.Errorf("directory: line %v proc %d: directory=%v cache=%v",
					l, p, dirSays, holds(l, p))
			}
		}
	}
	return nil
}
