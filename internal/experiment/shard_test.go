package experiment

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"cord/internal/checkpoint"
	"cord/internal/workload"
)

// shardTestOptions is a campaign small enough to run many times in a test
// yet wide enough to exercise multi-app sharding.
func shardTestOptions(t *testing.T) Options {
	t.Helper()
	fft, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	lu, err := workload.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		BaseSeed:   7,
		Injections: 4,
		Apps:       []workload.App{fft, lu},
		Procs:      2,
	}
}

// fullSpec covers every run of the campaign in one shard.
func fullSpec(o Options) ShardSpec {
	o = o.withDefaults()
	var spec ShardSpec
	for _, a := range o.Apps {
		spec.Ranges = append(spec.Ranges, ShardRange{App: a.Name, Lo: 0, Hi: o.Injections})
	}
	return spec
}

// TestExecuteDetectShardMatchesCampaignJournal: the distributed contract
// itself — a shard worker given only the campaign configuration produces,
// byte for byte, the journal records a local checkpointed campaign writes
// for the same runs. If this holds, merging remote cells into a journal is
// indistinguishable from having run the campaign locally.
func TestExecuteDetectShardMatchesCampaignJournal(t *testing.T) {
	o := shardTestOptions(t)

	j, err := checkpoint.Open(filepath.Join(t.TempDir(), "local.cordckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	local := o
	local.Checkpoint = j
	if _, err := RunDetection(local); err != nil {
		t.Fatalf("local campaign: %v", err)
	}

	cells, err := ExecuteDetectShard(o, fullSpec(o))
	if err != nil {
		t.Fatalf("ExecuteDetectShard: %v", err)
	}
	wantCells := len(o.Apps)*1 + len(o.Apps)*o.Injections
	if len(cells) != wantCells {
		t.Fatalf("shard returned %d cells, want %d", len(cells), wantCells)
	}
	for _, c := range cells {
		var journaled json.RawMessage
		ok, err := j.Lookup(c.Key, &journaled)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", c.Key, err)
		}
		if !ok {
			t.Fatalf("shard cell %s has no local-campaign counterpart", c.Key)
		}
		if !bytes.Equal(journaled, c.Data) {
			t.Errorf("cell %s differs:\n local  %s\n remote %s", c.Key, journaled, c.Data)
		}
	}
}

// TestExecuteDetectShardIdempotent: re-executing the same shard — and
// spec-equal shards written with different range order and overlaps —
// returns byte-identical cells in identical order. This is the §6
// idempotency rule the server's re-send behavior rests on.
func TestExecuteDetectShardIdempotent(t *testing.T) {
	o := shardTestOptions(t)
	spec := ShardSpec{Ranges: []ShardRange{
		{App: "lu", Lo: 1, Hi: 3},
		{App: "fft", Lo: 0, Hi: 2},
	}}
	// Same run set, scrambled order plus an overlapping range.
	equiv := ShardSpec{Ranges: []ShardRange{
		{App: "fft", Lo: 1, Hi: 2},
		{App: "lu", Lo: 2, Hi: 3},
		{App: "lu", Lo: 1, Hi: 3},
		{App: "fft", Lo: 0, Hi: 2},
	}}
	first, err := ExecuteDetectShard(o, spec)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Runs() != 4 || equiv.Runs() != 4 {
		t.Fatalf("Runs() = %d and %d, want 4 and 4", spec.Runs(), equiv.Runs())
	}
	for name, again := range map[string]ShardSpec{"re-sent": spec, "equivalent": equiv} {
		got, err := ExecuteDetectShard(o, again)
		if err != nil {
			t.Fatalf("%s shard: %v", name, err)
		}
		if len(got) != len(first) {
			t.Fatalf("%s shard: %d cells, want %d", name, len(got), len(first))
		}
		for i := range got {
			if got[i].Key != first[i].Key || !bytes.Equal(got[i].Data, first[i].Data) {
				t.Errorf("%s shard cell %d differs: %s vs %s", name, i, got[i].Key, first[i].Key)
			}
		}
	}
}

// TestShardMergeEquivalence: the coordinator's merge path — append remote
// cells to a journal, then run the unchanged campaign against it — produces
// results deep-equal to a direct run, with every run a journal hit (nothing
// re-simulated locally).
func TestShardMergeEquivalence(t *testing.T) {
	o := shardTestOptions(t)
	direct, err := RunDetection(o)
	if err != nil {
		t.Fatal(err)
	}

	// Two shards split mid-app, as a two-worker dispatch would.
	specs := []ShardSpec{
		{Ranges: []ShardRange{{App: "fft", Lo: 0, Hi: 4}, {App: "lu", Lo: 0, Hi: 2}}},
		{Ranges: []ShardRange{{App: "lu", Lo: 2, Hi: 4}}},
	}
	j, err := checkpoint.Open(filepath.Join(t.TempDir(), "merge.cordckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, spec := range specs {
		cells, err := ExecuteDetectShard(o, spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cells {
			if err := j.Append(c.Key, c.Data); err != nil {
				t.Fatalf("Append(%s): %v", c.Key, err)
			}
		}
	}

	merged := o
	merged.Checkpoint = j
	res, err := RunDetection(merged)
	if err != nil {
		t.Fatalf("merged campaign: %v", err)
	}
	wantRuns := len(o.Apps) * (1 + o.withDefaults().Injections)
	if j.Hits() != wantRuns {
		t.Fatalf("merged campaign hit the journal %d times, want %d (no local simulation)", j.Hits(), wantRuns)
	}
	a, _ := json.Marshal(direct)
	b, _ := json.Marshal(res)
	if !bytes.Equal(a, b) {
		t.Fatalf("merged results differ from direct run:\n direct %s\n merged %s", a, b)
	}
}

// TestOptionsFromMetaRoundTrip: wire metadata reconstructs Options whose
// normalized meta and fingerprint equal the originals — the property that
// lets coordinator and worker agree on run identity without sharing code
// versions, just bytes.
func TestOptionsFromMetaRoundTrip(t *testing.T) {
	o := shardTestOptions(t)
	meta := o.Meta()
	back, err := OptionsFromMeta(meta)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Fingerprint(), o.Fingerprint(); got != want {
		t.Fatalf("fingerprint %s after round trip, want %s", got, want)
	}
	if got, want := back.Meta(), meta; got.BaseSeed != want.BaseSeed || got.Injections != want.Injections {
		t.Fatalf("meta %+v after round trip, want %+v", got, want)
	}
	// Zero fields mean "default", matching the CLI: an all-zero meta is the
	// default campaign.
	dflt, err := OptionsFromMeta(CampaignMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dflt.Fingerprint(), (Options{}).Fingerprint(); got != want {
		t.Fatalf("zero meta fingerprint %s, want default campaign's %s", got, want)
	}
}

// TestOptionsFromMetaRejects: out-of-domain wire metadata fails fast.
func TestOptionsFromMetaRejects(t *testing.T) {
	cases := []CampaignMeta{
		{Scale: -1},
		{Threads: -4},
		{Injections: -2},
		{Threads: 1 << 16},
		{Apps: []string{"nonesuch"}},
	}
	for _, m := range cases {
		if _, err := OptionsFromMeta(m); err == nil {
			t.Errorf("OptionsFromMeta(%+v): expected error", m)
		}
	}
}

// TestExecuteDetectShardRejectsBadSpecs: out-of-domain shards are ErrBadShard
// (the endpoint's 400), not panics or silent truncation.
func TestExecuteDetectShardRejectsBadSpecs(t *testing.T) {
	o := shardTestOptions(t)
	cases := []ShardSpec{
		{},
		{Ranges: []ShardRange{{App: "nonesuch", Lo: 0, Hi: 1}}},
		{Ranges: []ShardRange{{App: "fft", Lo: -1, Hi: 1}}},
		{Ranges: []ShardRange{{App: "fft", Lo: 0, Hi: 5}}}, // Injections is 4
		{Ranges: []ShardRange{{App: "fft", Lo: 2, Hi: 2}}},
		{Ranges: []ShardRange{{App: "fft", Lo: 3, Hi: 1}}},
	}
	for i, spec := range cases {
		if _, err := ExecuteDetectShard(o, spec); !errors.Is(err, ErrBadShard) {
			t.Errorf("case %d: error %v, want ErrBadShard", i, err)
		}
	}
}

// TestExecuteDetectShardInterrupt: a pre-closed Interrupt drains the shard
// before any run dispatches, surfacing ErrInterrupted like every other
// campaign entry point.
func TestExecuteDetectShardInterrupt(t *testing.T) {
	o := shardTestOptions(t)
	stop := make(chan struct{})
	close(stop)
	o.Interrupt = stop
	o.Procs = 1
	if _, err := ExecuteDetectShard(o, fullSpec(o)); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("error %v, want ErrInterrupted", err)
	}
}
