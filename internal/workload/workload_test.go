package workload

import (
	"testing"

	"cord/internal/sim"
)

func TestCatalogueComplete(t *testing.T) {
	apps := All()
	if len(apps) != 12 {
		t.Fatalf("Table 1 has 12 applications, got %d", len(apps))
	}
	want := []string{"barnes", "cholesky", "fft", "fmm", "lu", "ocean",
		"radiosity", "radix", "raytrace", "volrend", "water-n2", "water-sp"}
	for i, name := range want {
		if apps[i].Name != name {
			t.Fatalf("app %d = %s, want %s (Table 1 order)", i, apps[i].Name, name)
		}
		if apps[i].Input == "" {
			t.Fatalf("%s missing its paper input label", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestAllAppsRunToCompletion(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 4; seed++ {
				res, err := sim.New(sim.Config{Seed: seed, Jitter: 7}, app.Build(1, 4)).Run()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Hung {
					t.Fatalf("seed %d: hung", seed)
				}
				if res.Accesses == 0 || res.SyncInstances == 0 {
					t.Fatalf("seed %d: degenerate run %+v", seed, res)
				}
			}
		})
	}
}

func TestAppsScale(t *testing.T) {
	for _, name := range []string{"cholesky", "fft", "water-n2"} {
		app, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		small, err := sim.New(sim.Config{Seed: 1, Jitter: 5}, app.Build(1, 4)).Run()
		if err != nil {
			t.Fatal(err)
		}
		big, err := sim.New(sim.Config{Seed: 1, Jitter: 5}, app.Build(3, 4)).Run()
		if err != nil {
			t.Fatal(err)
		}
		if big.Accesses <= small.Accesses {
			t.Fatalf("%s: scale 3 (%d accesses) not larger than scale 1 (%d)",
				name, big.Accesses, small.Accesses)
		}
	}
}

func TestAppsAtOtherThreadCounts(t *testing.T) {
	for _, threads := range []int{2, 8} {
		for _, app := range All() {
			res, err := sim.New(sim.Config{Seed: 2, Jitter: 7, Procs: threads},
				app.Build(1, threads)).Run()
			if err != nil {
				t.Fatalf("%s @%d threads: %v", app.Name, threads, err)
			}
			if res.Hung {
				t.Fatalf("%s @%d threads hung", app.Name, threads)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	for _, app := range All() {
		a, err := sim.New(sim.Config{Seed: 9, Jitter: 7}, app.Build(1, 4)).Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.New(sim.Config{Seed: 9, Jitter: 7}, app.Build(1, 4)).Run()
		if err != nil {
			t.Fatal(err)
		}
		if a.Ops != b.Ops || a.Cycles != b.Cycles {
			t.Fatalf("%s not deterministic: %d/%d vs %d/%d ops/cycles",
				app.Name, a.Ops, a.Cycles, b.Ops, b.Cycles)
		}
		for i := range a.ReadHash {
			if a.ReadHash[i] != b.ReadHash[i] {
				t.Fatalf("%s thread %d hash differs between identical runs", app.Name, i)
			}
		}
	}
}

func TestLCGBasics(t *testing.T) {
	r := newLCG(1)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.n(10)
		if v < 0 || v >= 10 {
			t.Fatalf("n(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("lcg covered %d/10 values in 1000 draws", len(seen))
	}
	if newLCG(1).next() != newLCG(1).next() {
		t.Fatal("lcg not deterministic")
	}
	if r.n(0) != 0 {
		t.Fatal("n(0) should be 0")
	}
}
