package cache

import (
	"testing"
	"testing/quick"

	"cord/internal/memsys"
)

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 32 << 10, Ways: 8}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Lines() != 512 || good.Sets() != 64 {
		t.Fatalf("geometry: lines=%d sets=%d", good.Lines(), good.Sets())
	}
	bad := []Config{
		{SizeBytes: 0, Ways: 4},
		{SizeBytes: 100, Ways: 4},     // not line multiple
		{SizeBytes: 64 * 12, Ways: 4}, // 3 sets, not a power of two
		{SizeBytes: 64 * 10, Ways: 3}, // lines not divisible by ways
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 1 set, 2 ways: direct observation of LRU order.
	c := New[int](Config{SizeBytes: 2 * 64, Ways: 2})
	c.Insert(1, 10)
	c.Insert(2, 20)
	c.Lookup(1) // 1 becomes MRU
	v, evicted := c.Insert(3, 30)
	if !evicted || v.Line != 2 || v.Payload != 20 {
		t.Fatalf("victim = %+v (evicted=%v), want line 2", v, evicted)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Fatal("wrong contents after eviction")
	}
}

func TestInsertExistingReplacesPayload(t *testing.T) {
	c := New[int](Config{SizeBytes: 2 * 64, Ways: 2})
	c.Insert(1, 10)
	if _, ev := c.Insert(1, 11); ev {
		t.Fatal("re-insert evicted")
	}
	p, ok := c.Lookup(1)
	if !ok || *p != 11 {
		t.Fatal("payload not replaced")
	}
	if c.Len() != 1 {
		t.Fatal("duplicate entries")
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := New[int](Config{SizeBytes: 2 * 64, Ways: 2})
	c.Insert(1, 10)
	c.Insert(2, 20)
	c.Peek(1) // must NOT promote line 1
	v, evicted := c.Insert(3, 30)
	if !evicted || v.Line != 1 {
		t.Fatalf("victim = %v, want line 1 (peek promoted)", v.Line)
	}
}

func TestRemove(t *testing.T) {
	c := New[int](Config{SizeBytes: 4 * 64, Ways: 4})
	c.Insert(7, 70)
	p, ok := c.Remove(7)
	if !ok || p != 70 {
		t.Fatal("remove payload wrong")
	}
	if _, ok := c.Remove(7); ok {
		t.Fatal("double remove succeeded")
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	c := NewUnbounded[int]()
	for i := 0; i < 10000; i++ {
		if _, ev := c.Insert(memsys.Line(i), i); ev {
			t.Fatal("unbounded cache evicted")
		}
	}
	if c.Len() != 10000 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestForEachAndRemoveIf(t *testing.T) {
	c := New[int](Config{SizeBytes: 8 * 64, Ways: 2})
	for i := 0; i < 8; i++ {
		c.Insert(memsys.Line(i), i)
	}
	sum := 0
	c.ForEach(func(l memsys.Line, p *int) { sum += *p })
	if sum != 28 {
		t.Fatalf("ForEach sum = %d", sum)
	}
	removedPayload := 0
	n := c.RemoveIf(
		func(l memsys.Line, p *int) bool { return *p%2 == 0 },
		func(l memsys.Line, p int) { removedPayload += p },
	)
	if n != 4 || removedPayload != 12 {
		t.Fatalf("RemoveIf removed %d (payload sum %d)", n, removedPayload)
	}
	if c.Len() != 4 {
		t.Fatalf("Len after RemoveIf = %d", c.Len())
	}
}

// referenceLRU is a trivially correct model: per set, a slice in MRU order.
type referenceLRU struct {
	sets map[int][]memsys.Line
	ways int
	nset int
}

func (r *referenceLRU) access(l memsys.Line) (victim memsys.Line, evicted bool) {
	si := int(uint64(l) % uint64(r.nset))
	set := r.sets[si]
	for i, x := range set {
		if x == l {
			set = append(append([]memsys.Line{l}, set[:i]...), set[i+1:]...)
			r.sets[si] = set
			return 0, false
		}
	}
	set = append([]memsys.Line{l}, set...)
	if len(set) > r.ways {
		victim = set[len(set)-1]
		set = set[:len(set)-1]
		evicted = true
	}
	r.sets[si] = set
	return victim, evicted
}

// Property: the cache matches the reference model over random access
// sequences (lookup-then-insert, the detector's usage pattern).
func TestMatchesReferenceModel(t *testing.T) {
	cfg := Config{SizeBytes: 8 * 64, Ways: 2} // 4 sets x 2 ways
	f := func(seq [64]uint8) bool {
		c := New[struct{}](cfg)
		ref := &referenceLRU{sets: map[int][]memsys.Line{}, ways: 2, nset: 4}
		for _, b := range seq {
			l := memsys.Line(b % 32)
			_, hit := c.Lookup(l)
			var victim Victim[struct{}]
			var ev bool
			if !hit {
				victim, ev = c.Insert(l, struct{}{})
			}
			rv, rev := ref.access(l)
			if hit == rev {
				// A hit in one model must not evict in the other; a miss
				// may or may not evict depending on occupancy, checked
				// below.
			}
			if ev != (rev && !hit) {
				return false
			}
			if ev && victim.Line != rv {
				return false
			}
		}
		// Final contents must agree.
		total := 0
		for _, set := range ref.sets {
			total += len(set)
			for _, l := range set {
				if !c.Contains(l) {
					return false
				}
			}
		}
		return c.Len() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	cfg := Config{SizeBytes: 16 * 64, Ways: 4}
	f := func(seq [128]uint16) bool {
		c := New[int](cfg)
		for i, b := range seq {
			c.Insert(memsys.Line(b), i)
			if c.Len() > cfg.Lines() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyInclusion(t *testing.T) {
	h := NewHierarchy(HierarchyConfig{
		L1: Config{SizeBytes: 2 * 64, Ways: 2},
		L2: Config{SizeBytes: 4 * 64, Ways: 4},
	})
	for i := 0; i < 16; i++ {
		h.Access(memsys.Line(i))
		// Inclusion: anything in L1 must be in L2.
		for j := 0; j <= i; j++ {
			if h.L1Contains(memsys.Line(j)) && !h.Contains(memsys.Line(j)) {
				t.Fatalf("inclusion violated for line %d", j)
			}
		}
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(HierarchyConfig{
		L1: Config{SizeBytes: 2 * 64, Ways: 2},
		L2: Config{SizeBytes: 8 * 64, Ways: 8},
	})
	if lvl, _, _ := h.Access(1); lvl != MissLevel {
		t.Fatalf("first access level = %v", lvl)
	}
	if lvl, _, _ := h.Access(1); lvl != L1Hit {
		t.Fatalf("second access level = %v", lvl)
	}
	// Push line 1 out of the tiny L1 but keep it in L2.
	h.Access(2)
	h.Access(3)
	if lvl, _, _ := h.Access(1); lvl != L2Hit {
		t.Fatalf("expected L2 hit, got %v", lvl)
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	h.Access(5)
	if !h.Invalidate(5) {
		t.Fatal("invalidate missed resident line")
	}
	if h.Contains(5) || h.L1Contains(5) {
		t.Fatal("line survived invalidation")
	}
	if h.Invalidate(5) {
		t.Fatal("invalidate hit absent line")
	}
}

func TestStatsCount(t *testing.T) {
	c := New[int](Config{SizeBytes: 2 * 64, Ways: 2})
	c.Lookup(1)
	c.Insert(1, 1)
	c.Lookup(1)
	h, m, _ := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d", h, m)
	}
}
