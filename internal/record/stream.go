package record

import (
	"encoding/binary"
	"fmt"
	"io"

	"cord/internal/clock"
)

// HeaderBytes is the size of the stream header (magic, version, entry count).
const HeaderBytes = 16

// MaxEntries bounds the entry count a decoder accepts from a stream header.
// 2^30 entries is 8 GiB of log — far beyond any real run; a larger count can
// only come from a corrupt or hostile header.
const MaxEntries = 1 << 30

// maxPrealloc caps the entry-slice preallocation DecodeFrom performs from the
// untrusted header count, so a hostile header fails on read, not on OOM.
const maxPrealloc = 64 << 10

// StreamDecoder incrementally decodes the binary order-log wire format
// (PROTOCOL.md) from arbitrarily sized chunks: feed it whatever byte windows
// the transport delivers and it emits each complete Entry exactly once,
// carrying at most one partial frame (15 bytes) between calls. It never
// materializes the log, so a session's memory cost is independent of stream
// length — this is what lets the cordd streaming endpoint ingest logs at
// line rate from a fixed reusable read buffer.
//
// Lifecycle: zero or more Feed calls, then Close when the transport reports
// end of stream. Close is where truncation is detected: a stream that ends
// mid-header or before the header's declared entry count wraps both
// ErrBadFormat and io.ErrUnexpectedEOF. Structural damage (bad magic,
// unsupported version, implausible count, bytes continuing past the declared
// count) is reported by Feed as ErrBadFormat immediately.
type StreamDecoder struct {
	carry    [HeaderBytes]byte // partial header or partial entry between Feeds
	carryLen int
	header   bool // header parsed and validated
	declared uint64
	decoded  uint64
	failed   error // sticky: a broken stream stays broken
}

// NewStreamDecoder returns a decoder ready for the first chunk.
func NewStreamDecoder() *StreamDecoder { return &StreamDecoder{} }

// Reset returns the decoder to its initial state so it can be reused for a
// NEW stream without reallocating: it discards the carry buffer, the header
// state, and any sticky error.
//
// Reset is the only way out of the failed state, and it is deliberately
// all-or-nothing: there is no way to "resume" a damaged stream, because after
// a format error the byte offset is unreliable and continuing could emit
// entries from a desynchronized frame boundary. Feeding the remainder of a
// stream that previously errored — even after Reset — reinterprets those
// bytes as a fresh stream starting with a 16-byte header, which is exactly
// the safe failure mode: continuation bytes are rejected as a bad magic, not
// silently decoded as entries. Callers that want to abandon a broken stream
// must drop the remaining bytes and Reset before the next stream's first
// chunk; until Reset is called, every Feed and Close keeps returning the
// original sticky error.
func (d *StreamDecoder) Reset() { *d = StreamDecoder{} }

// HeaderSeen reports whether the 16-byte header has been parsed; Declared is
// only meaningful afterwards.
func (d *StreamDecoder) HeaderSeen() bool { return d.header }

// Declared returns the entry count the stream header promised.
func (d *StreamDecoder) Declared() uint64 { return d.declared }

// Decoded returns the number of entries emitted so far.
func (d *StreamDecoder) Decoded() uint64 { return d.decoded }

// parseHeader validates a complete 16-byte header.
func (d *StreamDecoder) parseHeader(hdr []byte) error {
	if [4]byte(hdr[:4]) != magic {
		return fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != version {
		return fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	if n > MaxEntries {
		return fmt.Errorf("%w: implausible entry count %d", ErrBadFormat, n)
	}
	d.header = true
	d.declared = n
	return nil
}

// decodeEntry parses one 8-byte wire entry.
func decodeEntry(b []byte) Entry {
	return Entry{
		Clock:  clock.Scalar(binary.LittleEndian.Uint16(b[0:2])),
		Thread: binary.LittleEndian.Uint16(b[2:4]),
		Instr:  binary.LittleEndian.Uint32(b[4:8]),
	}
}

// Feed consumes one chunk of the stream, calling emit once per completed
// entry, in stream order. The chunk may split the header or an entry at any
// byte; the decoder buffers the partial frame internally, so callers can
// reuse p immediately after Feed returns. A non-nil error from emit aborts
// the Feed and is returned verbatim (entries already emitted stay emitted);
// the decoder itself then refuses further input. Format errors wrap
// ErrBadFormat.
func (d *StreamDecoder) Feed(p []byte, emit func(Entry) error) error {
	if d.failed != nil {
		return d.failed
	}
	fail := func(err error) error {
		d.failed = err
		return err
	}
	// Complete the header from the carry buffer first.
	if !d.header {
		n := copy(d.carry[d.carryLen:HeaderBytes], p)
		d.carryLen += n
		p = p[n:]
		if d.carryLen < HeaderBytes {
			return nil
		}
		if err := d.parseHeader(d.carry[:HeaderBytes]); err != nil {
			return fail(err)
		}
		d.carryLen = 0
	}
	// Complete a partial entry from the carry buffer.
	if d.carryLen > 0 {
		n := copy(d.carry[d.carryLen:EntryBytes], p)
		d.carryLen += n
		p = p[n:]
		if d.carryLen < EntryBytes {
			return nil
		}
		d.carryLen = 0
		if err := d.emitOne(d.carry[:EntryBytes], emit); err != nil {
			return fail(err)
		}
	}
	// Whole entries parse straight out of the caller's buffer: no copy.
	for len(p) >= EntryBytes {
		if err := d.emitOne(p[:EntryBytes], emit); err != nil {
			return fail(err)
		}
		p = p[EntryBytes:]
	}
	if len(p) > 0 {
		if d.decoded == d.declared {
			return fail(fmt.Errorf("%w: stream continues past the declared %d entries", ErrBadFormat, d.declared))
		}
		d.carryLen = copy(d.carry[:], p)
	}
	return nil
}

func (d *StreamDecoder) emitOne(b []byte, emit func(Entry) error) error {
	if d.decoded == d.declared {
		return fmt.Errorf("%w: stream continues past the declared %d entries", ErrBadFormat, d.declared)
	}
	d.decoded++
	if emit == nil {
		return nil
	}
	return emit(decodeEntry(b))
}

// Close declares end of stream and verifies completeness. A stream cut short
// — mid-header, mid-entry, or before the declared count — is reported as
// ErrBadFormat wrapping io.ErrUnexpectedEOF, so callers can tell
// "self-declared length vs delivered bytes disagree" apart from other format
// damage (the DecodeFrom taxonomy, applied to an explicit transport EOF).
func (d *StreamDecoder) Close() error {
	if d.failed != nil {
		return d.failed
	}
	if !d.header {
		return fmt.Errorf("%w: truncated header (%d of %d bytes): %w",
			ErrBadFormat, d.carryLen, HeaderBytes, io.ErrUnexpectedEOF)
	}
	if d.carryLen > 0 || d.decoded < d.declared {
		return fmt.Errorf("%w: truncated at entry %d of %d: %w",
			ErrBadFormat, d.decoded, d.declared, io.ErrUnexpectedEOF)
	}
	return nil
}
