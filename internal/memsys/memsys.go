// Package memsys provides the simulated physical memory substrate: word and
// line address arithmetic and a sparse word-value store that backs the shared
// memory of the simulated machine.
//
// The geometry follows the paper's hardware: 4-byte words and 64-byte cache
// lines, so each line holds 16 words. Addresses are byte addresses; all
// simulated accesses are word-aligned, word-sized.
package memsys

import "fmt"

const (
	// WordBytes is the size of one simulated memory word.
	WordBytes = 4
	// LineBytes is the size of one cache line.
	LineBytes = 64
	// WordsPerLine is the number of words in a cache line.
	WordsPerLine = LineBytes / WordBytes
)

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Line identifies a cache line (the address with the offset bits removed).
type Line uint64

// LineOf returns the line containing a.
func LineOf(a Addr) Line { return Line(a / LineBytes) }

// WordIndex returns the index (0..WordsPerLine-1) of a's word within its line.
func WordIndex(a Addr) int { return int(a % LineBytes / WordBytes) }

// WordAlign rounds a down to its word boundary.
func WordAlign(a Addr) Addr { return a &^ (WordBytes - 1) }

// LineBase returns the byte address of the first word of line l.
func LineBase(l Line) Addr { return Addr(l) * LineBytes }

// WordAddr returns the byte address of word w within line l.
func WordAddr(l Line, w int) Addr { return LineBase(l) + Addr(w*WordBytes) }

// String renders the address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// String renders the line in hex with its byte base.
func (l Line) String() string { return fmt.Sprintf("line:0x%x", uint64(LineBase(l))) }

// Memory is a sparse word-granularity value store. The zero value is an
// all-zero memory ready for use. Memory is not safe for concurrent use; the
// simulator serializes all accesses.
type Memory struct {
	words map[Addr]uint64
}

// NewMemory returns an empty (all-zero) memory.
func NewMemory() *Memory { return &Memory{words: make(map[Addr]uint64)} }

// Load returns the value of the word at a (a is word-aligned by the caller;
// stray offset bits are masked off).
func (m *Memory) Load(a Addr) uint64 {
	if m.words == nil {
		return 0
	}
	return m.words[WordAlign(a)]
}

// Store writes v to the word at a.
func (m *Memory) Store(a Addr, v uint64) {
	if m.words == nil {
		m.words = make(map[Addr]uint64)
	}
	a = WordAlign(a)
	if v == 0 {
		delete(m.words, a) // keep the map sparse; absent means zero
		return
	}
	m.words[a] = v
}

// Add atomically (from the simulation's point of view) adds delta to the word
// at a and returns the new value.
func (m *Memory) Add(a Addr, delta uint64) uint64 {
	v := m.Load(a) + delta
	m.Store(a, v)
	return v
}

// Footprint returns the number of distinct non-zero words ever stored.
func (m *Memory) Footprint() int { return len(m.words) }

// Snapshot returns a copy of all non-zero words, for end-of-run comparison
// between recorded and replayed executions.
func (m *Memory) Snapshot() map[Addr]uint64 {
	out := make(map[Addr]uint64, len(m.words))
	for a, v := range m.words {
		out[a] = v
	}
	return out
}

// Equal reports whether two memories hold identical contents.
func (m *Memory) Equal(o *Memory) bool {
	if len(m.words) != len(o.words) {
		return false
	}
	for a, v := range m.words {
		if o.words[a] != v {
			return false
		}
	}
	return true
}

// Region is a contiguous, line-aligned span of the address space handed out
// by an Allocator. It provides convenient word indexing for workloads.
type Region struct {
	Base  Addr
	Words int
}

// Word returns the address of the i-th word of the region. It panics if i is
// out of range: workloads index with computed bounds and an out-of-range
// index is a bug in the workload generator, not a recoverable condition.
func (r Region) Word(i int) Addr {
	if i < 0 || i >= r.Words {
		panic(fmt.Sprintf("memsys: region word %d out of range [0,%d)", i, r.Words))
	}
	return r.Base + Addr(i*WordBytes)
}

// End returns the first byte address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Words*WordBytes) }

// Lines returns the number of cache lines the region spans.
func (r Region) Lines() int {
	if r.Words == 0 {
		return 0
	}
	first := LineOf(r.Base)
	last := LineOf(r.End() - 1)
	return int(last-first) + 1
}

// Allocator hands out line-aligned regions of the simulated address space.
// Each distinct allocation starts on a fresh cache line so that workloads
// control false sharing explicitly (via PackedRegion) rather than by
// accident.
type Allocator struct {
	next Addr
}

// NewAllocator returns an allocator starting at a non-zero base (so address
// zero never aliases a valid allocation).
func NewAllocator() *Allocator { return &Allocator{next: LineBytes} }

// Alloc returns a new line-aligned region of the given number of words.
func (al *Allocator) Alloc(words int) Region {
	if words < 0 {
		panic("memsys: negative allocation")
	}
	r := Region{Base: al.next, Words: words}
	bytes := Addr(words * WordBytes)
	// Round the next base up to a line boundary.
	al.next += (bytes + LineBytes - 1) &^ (LineBytes - 1)
	if bytes == 0 {
		al.next += LineBytes
	}
	return r
}

// AllocPadded returns a region of `words` words where each word sits on its
// own cache line (stride 16 words). Workloads use it for lock arrays and
// per-thread counters that must not exhibit false sharing.
func (al *Allocator) AllocPadded(words int) PaddedRegion {
	r := al.Alloc(words * WordsPerLine)
	return PaddedRegion{r}
}

// PaddedRegion is a region in which logical word i occupies the first word of
// the i-th line.
type PaddedRegion struct {
	raw Region
}

// Word returns the address of the i-th logical (line-padded) word.
func (p PaddedRegion) Word(i int) Addr { return p.raw.Word(i * WordsPerLine) }

// Count returns how many logical words the padded region holds.
func (p PaddedRegion) Count() int { return p.raw.Words / WordsPerLine }
