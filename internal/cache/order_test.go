package cache

import (
	"testing"

	"cord/internal/memsys"
)

// unboundedOrder records one ForEach traversal.
func unboundedOrder(c *Cache[int]) []memsys.Line {
	var got []memsys.Line
	c.ForEach(func(l memsys.Line, _ *int) { got = append(got, l) })
	return got
}

// TestUnboundedForEachDeterministicOrder is the regression test for the
// map-iteration-order bug: ForEach over an unbounded cache must visit lines
// in insertion order, identically on every traversal. The map-backed
// implementation followed Go's randomized range order, so repeated walks
// over the same 64-line cache disagreed with near certainty.
func TestUnboundedForEachDeterministicOrder(t *testing.T) {
	c := NewUnbounded[int]()
	// Insert in a scrambled, non-monotonic line order.
	var want []memsys.Line
	for i := 0; i < 64; i++ {
		l := memsys.Line((i*37 + 11) % 97)
		c.Insert(l, i)
		want = append(want, l)
	}
	for rep := 0; rep < 10; rep++ {
		got := unboundedOrder(c)
		if len(got) != len(want) {
			t.Fatalf("rep %d: visited %d lines, want %d", rep, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rep %d: position %d = %v, want %v (insertion order)", rep, i, got[i], want[i])
			}
		}
	}
}

// TestUnboundedRemoveIfDeterministicOrder: retirement callbacks (the §2.7.5
// walker path) must fire in insertion order too.
func TestUnboundedRemoveIfDeterministicOrder(t *testing.T) {
	build := func() *Cache[int] {
		c := NewUnbounded[int]()
		for i := 0; i < 50; i++ {
			c.Insert(memsys.Line((i*13+7)%61), i)
		}
		return c
	}
	var first []memsys.Line
	for rep := 0; rep < 10; rep++ {
		c := build()
		var removedOrder []memsys.Line
		removed := c.RemoveIf(
			func(_ memsys.Line, p *int) bool { return *p%2 == 0 },
			func(l memsys.Line, _ int) { removedOrder = append(removedOrder, l) },
		)
		if removed != 25 || len(removedOrder) != 25 {
			t.Fatalf("rep %d: removed %d (%d callbacks), want 25", rep, removed, len(removedOrder))
		}
		if first == nil {
			first = removedOrder
			continue
		}
		for i := range first {
			if removedOrder[i] != first[i] {
				t.Fatalf("rep %d: removal order diverged at %d: %v vs %v", rep, i, removedOrder[i], first[i])
			}
		}
	}
}

// TestUnboundedReinsertMovesToEnd: removing a line and inserting it again
// places it at the end of the iteration order (a fresh insertion), and the
// store survives heavy churn with tombstone compaction.
func TestUnboundedReinsertMovesToEnd(t *testing.T) {
	c := NewUnbounded[int]()
	for i := 0; i < 8; i++ {
		c.Insert(memsys.Line(i), i)
	}
	if _, ok := c.Remove(2); !ok {
		t.Fatal("remove missed resident line")
	}
	c.Insert(2, 99)
	got := unboundedOrder(c)
	want := []memsys.Line{0, 1, 3, 4, 5, 6, 7, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order after re-insert: %v, want %v", got, want)
		}
	}
	if p, ok := c.Lookup(2); !ok || *p != 99 {
		t.Fatal("re-inserted payload lost")
	}

	// Churn far past the compaction threshold; residency must stay exact.
	for i := 0; i < 10_000; i++ {
		l := memsys.Line(i % 64)
		c.Remove(l)
		c.Insert(l, i)
	}
	if c.Len() != 64 {
		t.Fatalf("after churn Len = %d, want 64", c.Len())
	}
	if got := unboundedOrder(c); len(got) != 64 {
		t.Fatalf("ForEach visited %d lines after churn, want 64", len(got))
	}
}

// TestUnboundedInsertOverwritesInPlace: inserting an already-resident line
// replaces its payload without disturbing its iteration position.
func TestUnboundedInsertOverwritesInPlace(t *testing.T) {
	c := NewUnbounded[int]()
	c.Insert(1, 10)
	c.Insert(2, 20)
	c.Insert(1, 11)
	got := unboundedOrder(c)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("order after overwrite: %v, want [1 2]", got)
	}
	if p, _ := c.Lookup(1); *p != 11 {
		t.Fatalf("payload = %d, want 11", *p)
	}
}
