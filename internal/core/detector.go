package core

import (
	"fmt"

	"cord/internal/cache"
	"cord/internal/clock"
	"cord/internal/directory"
	"cord/internal/memsys"
	"cord/internal/record"
	"cord/internal/trace"
)

// Config parameterizes one CORD instance. The zero value is not valid; use
// DefaultConfig and override.
type Config struct {
	// Threads and Procs size the clock and cache arrays.
	Threads int
	Procs   int
	// D is the sync-read clock-update window of §2.6. 1 is the naive
	// scalar scheme; the paper's sweep uses 4, 16 and 256.
	D int
	// HistDepth is the number of timestamp slots per cache line (2 in the
	// paper; 1 is the Fig. 2 ablation).
	HistDepth int
	// Geometry bounds the per-processor timestamp storage; ignored when
	// Unbounded is set. The paper's default is the 32 KB L2.
	Geometry cache.Config
	// Unbounded removes the storage bound (the InfCache-style variant).
	Unbounded bool
	// NoUpdateOnDataRaces disables clock updates on data races (ablation
	// of the §2.4 "update on all races" decision).
	NoUpdateOnDataRaces bool
	// Record enables the order log.
	Record bool
	// WalkInterval is the number of observed accesses between cache-walker
	// passes (§2.7.5). Zero selects the default (4096).
	WalkInterval int
	// StaleAge is the window distance beyond which the walker retires a
	// timestamp. Zero selects the default (window/4).
	StaleAge int
	// MaxStoredRaces caps the races retained for inspection (counting is
	// never capped). Zero selects the default (16384).
	MaxStoredRaces int
	// Directory, when non-nil, runs the detector over directory-based
	// coherence instead of snooping (the §2.5 extension): race checks and
	// coherence requests are forwarded point-to-point to the line's actual
	// sharers, and memory-timestamp updates go to the home node. Detection
	// results are identical; traffic accounting moves to the Directory's
	// message counters.
	Directory *directory.Directory
}

// DefaultConfig is the paper's CORD configuration: 4 processors, D=16, two
// timestamps per line bounded by the 32 KB 8-way L2, recording on.
func DefaultConfig() Config {
	return Config{
		Threads:   4,
		Procs:     4,
		D:         16,
		HistDepth: 2,
		Geometry:  cache.Config{SizeBytes: 32 << 10, Ways: 8},
		Record:    true,
	}
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.D <= 0 {
		c.D = 1
	}
	if c.HistDepth <= 0 || c.HistDepth > 2 {
		c.HistDepth = 2
	}
	if c.Geometry == (cache.Config{}) {
		c.Geometry = cache.Config{SizeBytes: 32 << 10, Ways: 8}
	}
	if c.WalkInterval <= 0 {
		c.WalkInterval = 4096
	}
	if c.StaleAge <= 0 {
		c.StaleAge = clock.Window / 4
	}
	if c.MaxStoredRaces <= 0 {
		c.MaxStoredRaces = 16384
	}
	return c
}

// Stats exposes the detector's internal activity counters. The json tags are
// the stable wire encoding used by exported run artifacts.
type Stats struct {
	Accesses        uint64 `json:"accesses"`
	FastPathHits    uint64 `json:"fast_path_hits"`
	FilterHits      uint64 `json:"filter_hits"`
	CheckRequests   uint64 `json:"check_requests"`
	MemTsBroadcasts uint64 `json:"mem_ts_broadcasts"`
	ClockChanges    uint64 `json:"clock_changes"`
	WalkerRetired   uint64 `json:"walker_retired"`
	StalledUpdates  uint64 `json:"stalled_updates"`
	ViaMemoryRaces  int    `json:"via_memory_races"`
	RaceCount       int    `json:"race_count"`   // racy accesses (>=1 reported conflict)
	RaceReports     int    `json:"race_reports"` // individual reported conflicts
}

// Detector is one CORD instance attached to an execution. It implements
// trace.Observer.
type Detector struct {
	cfg   Config
	label string

	clocks   []clock.Scalar
	threadOf []int // last thread observed per processor
	caches   []*cache.Cache[lineState]
	mem      memTimestamps
	rec      *recorder

	races         []trace.Race
	scratch       []conflict
	targetScratch []int
	pendingMemTs  int
	minTs         clock.Scalar
	hasMinTs      bool

	// Sliding-window maintenance (§2.7.5): the frontier is the most
	// advanced clock; walks trigger on frontier advance so that every
	// live scalar value stays within half a window of it.
	frontier     clock.Scalar
	walkFrontier clock.Scalar
	lastBoundary []uint64 // per-thread instruction boundary for forced bumps

	st Stats
}

type conflict struct {
	ts   clock.Scalar
	kind trace.Kind
	proc int
}

type probeResult struct {
	found     bool // some remote cache holds the line
	hasLineTs bool
	lineTs    clock.Scalar // max newest-entry timestamp among remote holders
	anyWrite  bool         // any remote write bit anywhere on the line
	anyBits   bool
}

// initialClock is the clock value every thread starts from. Starting above
// zero keeps "no timestamp" distinguishable in diagnostics.
const initialClock clock.Scalar = 1

// New builds a CORD detector.
func New(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	d := &Detector{
		cfg:      cfg,
		label:    fmt.Sprintf("CORD(D=%d)", cfg.D),
		clocks:   make([]clock.Scalar, cfg.Threads),
		threadOf: make([]int, cfg.Procs),
		rec:      newRecorder(cfg.Threads, cfg.Record, initialClock),
	}
	if cfg.Unbounded {
		d.label = fmt.Sprintf("CORD(D=%d,inf)", cfg.D)
	}
	for i := range d.clocks {
		d.clocks[i] = initialClock
	}
	d.frontier = initialClock
	d.walkFrontier = initialClock
	d.lastBoundary = make([]uint64, cfg.Threads)
	for p := 0; p < cfg.Procs; p++ {
		if cfg.Unbounded {
			d.caches = append(d.caches, cache.NewUnbounded[lineState]())
		} else {
			d.caches = append(d.caches, cache.New[lineState](cfg.Geometry))
		}
		d.threadOf[p] = p % cfg.Threads
	}
	return d
}

// Name implements trace.Observer.
func (d *Detector) Name() string { return d.label }

// SetName overrides the configuration label used in experiment output.
func (d *Detector) SetName(s string) { d.label = s }

// OnAccess implements trace.Observer: it runs the full CORD pipeline for one
// access — local lookup, fast path / filter check, race-check broadcast,
// clock comparison and update, order-log append, and timestamp stamping.
func (d *Detector) OnAccess(a trace.Access) trace.Report {
	d.st.Accesses++
	d.lastBoundary[a.Thread] = a.Instr + uint64(a.Instrs)
	// The cache walker runs both periodically and whenever the clock
	// frontier has advanced far enough that stale values approach the
	// sliding-window limit.
	if d.st.Accesses%uint64(d.cfg.WalkInterval) == 0 ||
		clock.Dist(d.walkFrontier, d.frontier) > clock.Window/8 {
		d.walk()
	}

	proc := a.Proc % d.cfg.Procs
	d.threadOf[proc] = a.Thread
	c := d.clocks[a.Thread]
	line := memsys.LineOf(a.Addr)
	word := memsys.WordIndex(a.Addr)
	wk := wordRead
	if a.Kind == trace.Write {
		wk = wordWrite
	}

	rep := trace.Report{MemTsUpdates: d.pendingMemTs}
	d.pendingMemTs = 0
	memSnap := d.mem

	ls, present := d.caches[proc].Lookup(line)

	isMiss := !present
	isUpgrade := present && a.Kind == trace.Write && ls.state == shared
	if present && !isUpgrade {
		// Coherence-silent hit: the access bits and filter bits decide
		// whether a race-check broadcast is needed (§2.7.2). The fast
		// path applies only while the line's newest timestamp equals the
		// thread's clock — once the clock moves on, the hit re-stamps the
		// line and re-checks (the "bursts of race check requests after
		// timestamp changes" of §4.1).
		if n := ls.newest(); n != nil && n.ts == c && n.has(word, wk) {
			d.st.FastPathHits++
			d.postSyncWrite(a, &rep)
			return rep
		}
		if (a.Kind == trace.Read && ls.filterR) || (a.Kind == trace.Write && ls.filterW) {
			d.st.FilterHits++
			d.stamp(proc, ls, word, wk, c)
			d.postSyncWrite(a, &rep)
			rep.MemTsUpdates += d.memChanges(memSnap)
			return rep
		}
		rep.CheckRequests++
		d.st.CheckRequests++
	}

	// Bus-visible transaction: probe every remote cache. Fetches and
	// upgrades ride the ordinary coherence traffic; explicit checks were
	// counted above.
	probe := d.probeRemotes(proc, line, word, wk, a.Kind == trace.Write, isMiss && a.Kind == trace.Read)

	// Compare the thread's clock against every conflicting timestamp found
	// (all comparisons use the pre-access clock, as the hardware comparator
	// sees all entries at once), collecting the mandated clock updates.
	newClock := c
	racyAccess := false
	bump := func(v clock.Scalar) {
		if newClock.Before(v) {
			newClock = v
		}
	}
	for _, cf := range d.scratch {
		if clock.Dist(cf.ts, c) <= 0 {
			// A race outcome. Clock updates happen on all races (§2.4);
			// the ablation switch skips updates on data races, which
			// sacrifices recording correctness exactly the way Fig. 3's
			// discussion predicts (the ablation bench quantifies it).
			if a.Class == trace.Sync || !d.cfg.NoUpdateOnDataRaces {
				bump(cf.ts.Add(1))
			}
		}
		if a.Class == trace.Data && !clock.SyncedBy(c, cf.ts, d.cfg.D) {
			racyAccess = true
			d.report(trace.Race{
				Addr:   a.Addr,
				First:  trace.Ref{Thread: d.threadOf[cf.proc], Kind: cf.kind, Seq: trace.SeqUnknown},
				Second: trace.Ref{Thread: a.Thread, Kind: a.Kind, Seq: a.Seq},
			}, &rep)
		}
		if a.Class == trace.Sync && a.Kind == trace.Read && cf.kind == trace.Write {
			// Sync-read rule (§2.6): lead the variable's write timestamp
			// by at least D.
			bump(cf.ts.Add(d.cfg.D))
		}
	}

	// Response timestamp: data responses (and check/upgrade snoop replies)
	// are tagged with the supplier line's newest timestamp and order the
	// requester after it (§2.7.2). This is what makes discarding remote
	// histories on invalidation safe.
	if probe.hasLineTs && clock.Dist(probe.lineTs, c) <= 0 {
		bump(probe.lineTs.Add(1))
	}

	// Memory path: a miss with no remote holder is answered by main memory
	// and compared against the main-memory timestamps (§2.5).
	if isMiss && !probe.found {
		d.memoryFetch(a, c, bump)
	}

	if newClock != c {
		d.setClock(a.Thread, newClock, a.Instr)
		rep.ClockChanged = true
	}

	// Stamp the access into the local line (installing it on a miss).
	if isMiss {
		st := shared
		if a.Kind == trace.Write || !probe.found {
			st = owned
		}
		nl := lineState{state: st}
		nl.hist[0] = histEntry{ts: newClock, valid: true}
		nl.hist[0].set(word, wk)
		d.setFilters(&nl, a.Kind, probe)
		if v, evicted := d.caches[proc].Insert(line, nl); evicted {
			d.flushLine(&v.Payload)
			if d.cfg.Directory != nil {
				d.cfg.Directory.RemoveSharer(v.Line, proc)
			}
		}
		if d.cfg.Directory != nil {
			d.cfg.Directory.AddSharer(line, proc)
		}
	} else {
		ls, _ = d.caches[proc].Lookup(line) // re-fetch: inserts cannot have moved it, but stay safe
		if ls != nil {
			if isUpgrade {
				ls.state = owned
			}
			d.setFilters(ls, a.Kind, probe)
			d.stamp(proc, ls, word, wk, newClock)
		}
	}

	d.postSyncWrite(a, &rep)

	if racyAccess {
		d.st.RaceCount++
	}
	rep.MemTsUpdates += d.memChanges(memSnap)
	return rep
}

// memChanges counts how many of the two main-memory timestamp registers
// changed since the snapshot — each change is one broadcast transaction
// (§2.5); multiple absorptions within one access coalesce into the final
// register value.
func (d *Detector) memChanges(snap memTimestamps) int {
	n := 0
	if d.mem.hasRead != snap.hasRead || d.mem.read != snap.read {
		n++
	}
	if d.mem.hasWrite != snap.hasWrite || d.mem.write != snap.write {
		n++
	}
	d.st.MemTsBroadcasts += uint64(n)
	if d.cfg.Directory != nil {
		// Under a directory the updates are single messages to the home
		// node rather than bus broadcasts.
		d.cfg.Directory.MemTsUpdate(n)
	}
	return n
}

// postSyncWrite applies the clock increment that follows every
// synchronization write (§2.4), on whichever path the access took. The
// increment happens *after* the write, so the epoch boundary in the log
// falls after the in-flight instruction (a.Instrs = 1 for a committed
// store, 0 for the sub-instruction store of a test-and-set).
func (d *Detector) postSyncWrite(a trace.Access, rep *trace.Report) {
	if a.Class != trace.Sync || a.Kind != trace.Write {
		return
	}
	d.setClock(a.Thread, d.clocks[a.Thread].Add(1), a.Instr+uint64(a.Instrs))
	rep.ClockChanged = true
}

// memoryFetch applies the main-memory timestamp rules for a miss served by
// memory: the comparison orders the requester after the relevant memory
// timestamp, sync reads apply the D rule, and any data race discovered this
// way is suppressed (counted but never reported, §2.5).
func (d *Detector) memoryFetch(a trace.Access, c clock.Scalar, bump func(clock.Scalar)) {
	check := func(ts clock.Scalar, ok bool) {
		if !ok {
			return
		}
		if clock.Dist(ts, c) <= 0 {
			bump(ts.Add(1))
		}
		if a.Class == trace.Data && !clock.SyncedBy(c, ts, d.cfg.D) {
			d.st.ViaMemoryRaces++
		}
	}
	check(d.mem.write, d.mem.hasWrite)
	if a.Kind == trace.Write {
		check(d.mem.read, d.mem.hasRead)
	}
	if a.Class == trace.Sync && a.Kind == trace.Read && d.mem.hasWrite {
		bump(d.mem.write.Add(d.cfg.D))
	}
}

// setFilters grants check-filter permissions after a bus transaction
// revealed the remote state of the line (§2.7.2).
func (d *Detector) setFilters(ls *lineState, kind trace.Kind, probe probeResult) {
	if kind == trace.Write {
		// Remote copies were invalidated: nothing remote remains.
		ls.filterR, ls.filterW = true, true
		return
	}
	ls.filterR = !probe.anyWrite
	if !probe.found {
		// No remote holder at all: the line is exclusively ours and
		// even writes need no further checks until someone fetches it.
		ls.filterW = true
	}
}

// probeRemotes snoops every other processor's cache for the line: it
// collects conflicting per-word timestamps into d.scratch, the response
// (newest) timestamp, and the bit summaries used for filter decisions; it
// clears the remote filter bits, applies invalidations for writes, and
// downgrades owners on read fetches.
func (d *Detector) probeRemotes(proc int, line memsys.Line, word int, wk wordKind, invalidate, downgrade bool) probeResult {
	var res probeResult
	d.scratch = d.scratch[:0]
	targets := d.probeTargets(proc, line)
	for _, q := range targets {
		ls, ok := d.caches[q].Peek(line)
		if !ok {
			continue
		}
		res.found = true
		ls.filterR, ls.filterW = false, false
		for i := range ls.hist {
			e := &ls.hist[i]
			if !e.valid {
				continue
			}
			if e.any() {
				res.anyBits = true
				if e.writeMask != 0 {
					res.anyWrite = true
				}
			}
			if i == 0 {
				if !res.hasLineTs || res.lineTs.Before(e.ts) {
					res.lineTs, res.hasLineTs = e.ts, true
				}
			}
			if e.has(word, wordWrite) {
				d.scratch = append(d.scratch, conflict{ts: e.ts, kind: trace.Write, proc: q})
			}
			if wk == wordWrite && e.has(word, wordRead) {
				d.scratch = append(d.scratch, conflict{ts: e.ts, kind: trace.Read, proc: q})
			}
		}
		if invalidate {
			// The requester's clock is ordered after the line's newest
			// timestamp by the response rule, so the discarded history
			// needs no memory-timestamp update.
			d.caches[q].Remove(line)
			if d.cfg.Directory != nil {
				d.cfg.Directory.RemoveSharer(line, q)
			}
		} else if downgrade && ls.state == owned {
			ls.state = shared
		}
	}
	return res
}

// probeTargets returns the processors a transaction on the line must reach.
// Snooping broadcasts to everyone; a directory forwards only to the home
// node's sharer list (identical contents by the directory's invariant) and
// accounts the point-to-point messages.
func (d *Detector) probeTargets(proc int, line memsys.Line) []int {
	d.targetScratch = d.targetScratch[:0]
	if dir := d.cfg.Directory; dir != nil {
		d.targetScratch = dir.Sharers(line, proc, d.targetScratch)
		dir.Request(len(d.targetScratch))
		return d.targetScratch
	}
	for q := 0; q < d.cfg.Procs; q++ {
		if q != proc {
			d.targetScratch = append(d.targetScratch, q)
		}
	}
	return d.targetScratch
}

// stamp records the access in the local line's history at timestamp ts,
// rotating in a fresh timestamp slot when the clock has moved on (§2.3) and
// spilling the displaced slot into the main-memory timestamps.
func (d *Detector) stamp(proc int, ls *lineState, word int, wk wordKind, ts clock.Scalar) {
	n := ls.newest()
	switch {
	case n == nil:
		ls.hist[0] = histEntry{ts: ts, valid: true}
		ls.hist[0].set(word, wk)
	case n.ts == ts:
		n.set(word, wk)
	case n.ts.Before(ts):
		// Rotate: the oldest slot spills to the memory timestamps and the
		// new timestamp takes the newest slot with clear bits (Fig. 2).
		if d.cfg.HistDepth >= 2 {
			d.mem.absorb(ls.hist[1])
			ls.hist[1] = ls.hist[0]
		} else {
			d.mem.absorb(ls.hist[0])
			ls.hist[1] = histEntry{}
		}
		ls.hist[0] = histEntry{ts: ts, valid: true}
		ls.hist[0].set(word, wk)
	default:
		// ts < newest: only possible after a migration left newer
		// timestamps on this processor; fold into the newest slot
		// (conservative: claims a later timestamp, which can only add
		// ordering, never lose it).
		n.set(word, wk)
	}
}

// flushLine spills both history slots of a displaced line into the memory
// timestamps (§2.5).
func (d *Detector) flushLine(ls *lineState) {
	for i := range ls.hist {
		d.mem.absorb(ls.hist[i])
	}
}

// setClock moves a thread's clock forward, guarding the sliding window and
// informing the order recorder.
func (d *Detector) setClock(thread int, v clock.Scalar, instr uint64) {
	if d.hasMinTs && clock.Dist(d.minTs, v) > clock.Window {
		// The hardware would stall this update until the walker retires
		// the oldest timestamp (§2.7.5); the simulator counts the event
		// and proceeds (the walker runs eagerly enough that the count
		// stays zero in practice — asserted by tests).
		d.st.StalledUpdates++
	}
	d.clocks[thread] = v
	d.frontier = clock.MaxScalar(d.frontier, v)
	d.st.ClockChanges++
	d.rec.clockChanged(thread, v, instr)
}

func (d *Detector) report(r trace.Race, rep *trace.Report) {
	d.st.RaceReports++
	if len(d.races) < d.cfg.MaxStoredRaces {
		d.races = append(d.races, r)
		rep.Races = append(rep.Races, r)
	}
}

// walk is the cache walker of §2.7.5: it retires timestamps that have fallen
// StaleAge behind the most advanced clock (spilling them into the memory
// timestamps), recomputes the minimum resident timestamp, and refreshes
// memory timestamps that would otherwise exit the sliding window.
func (d *Detector) walk() {
	maxClk := d.clocks[0]
	for _, c := range d.clocks[1:] {
		maxClk = clock.MaxScalar(maxClk, c)
	}
	d.walkFrontier = maxClk
	// A thread whose clock has fallen half a window behind the frontier
	// would soon compare incorrectly against fresh timestamps; advance it
	// (adding ordering is always safe, and no detectable race spans half
	// the window for any realistic D — the paper's stall, realized as a
	// forced synchronization). The log records the change so replay stays
	// exact.
	for t := range d.clocks {
		if clock.Dist(d.clocks[t], maxClk) > clock.Window/2 {
			d.setClock(t, maxClk.Add(-clock.Window/2), d.lastBoundary[t])
		}
	}
	memSnap := d.mem
	var minTs clock.Scalar
	hasMin := false
	for _, cc := range d.caches {
		cc.ForEach(func(l memsys.Line, ls *lineState) {
			for i := range ls.hist {
				e := &ls.hist[i]
				if !e.valid {
					continue
				}
				if clock.Dist(e.ts, maxClk) > d.cfg.StaleAge {
					d.mem.absorb(*e)
					*e = histEntry{}
					d.st.WalkerRetired++
					continue
				}
				if !hasMin || e.ts.Before(minTs) {
					minTs, hasMin = e.ts, true
				}
			}
			if !ls.hist[0].valid && ls.hist[1].valid {
				ls.hist[0], ls.hist[1] = ls.hist[1], histEntry{}
			}
		})
	}
	d.pendingMemTs += d.memChanges(memSnap)
	d.minTs, d.hasMinTs = minTs, hasMin
	// Keep the memory timestamps inside the window relative to the most
	// advanced clock; advancing them is always safe (it only adds
	// ordering).
	refresh := func(ts *clock.Scalar, has bool) {
		if has && clock.Dist(*ts, maxClk) > clock.Window/2 {
			*ts = maxClk.Add(-clock.Window / 2)
			d.pendingMemTs++
			d.st.MemTsBroadcasts++
		}
	}
	refresh(&d.mem.read, d.mem.hasRead)
	refresh(&d.mem.write, d.mem.hasWrite)
}

// Migrate implements trace.Observer: beginning to run on a (different)
// processor bumps the thread's clock by D so new execution is synchronized
// with whatever timestamps the thread left behind (§2.7.4).
func (d *Detector) Migrate(thread, proc int, instr uint64) {
	d.setClock(thread, d.clocks[thread].Add(d.cfg.D), instr)
}

// ThreadDone implements trace.Observer.
func (d *Detector) ThreadDone(thread int, totalInstr uint64) {
	d.rec.threadDone(thread, totalInstr)
}

// Finish implements trace.Observer.
func (d *Detector) Finish() {}

// Races returns the retained reported data races (never includes suppressed
// via-memory detections).
func (d *Detector) Races() []trace.Race { return d.races }

// RaceCount returns the number of racy accesses — accesses for which at
// least one data race was reported (the raw-race metric shared with the
// other detectors).
func (d *Detector) RaceCount() int { return d.st.RaceCount }

// ProblemDetected reports whether at least one data race was reported — the
// paper's problem-detection criterion (§4.2).
func (d *Detector) ProblemDetected() bool { return d.st.RaceCount > 0 }

// Log returns the order log (empty unless Record was set).
func (d *Detector) Log() *record.Log { return &d.rec.log }

// Stats returns the activity counters.
func (d *Detector) Stats() Stats { return d.st }

// Clock returns a thread's current logical clock (for tests).
func (d *Detector) Clock(thread int) clock.Scalar { return d.clocks[thread] }

// CacheContains reports whether processor proc's detector cache holds the
// line — the ground truth the directory extension's invariant tests compare
// sharer sets against.
func (d *Detector) CacheContains(proc int, l memsys.Line) bool {
	return d.caches[proc].Contains(l)
}
