// Package chaos is the fault injector behind the campaign robustness tests:
// a deliberately hostile environment that fails runs transiently, fails
// checkpoint-journal writes, and crashes the whole process mid-campaign —
// everything a production fleet does to a long evaluation, on demand and
// reproducibly. The experiment runner consults an optional *Chaos; nil means
// no injected faults, which is the production default.
//
// Chaos is configured from one specification string, usually the CORD_CHAOS
// environment variable:
//
//	CORD_CHAOS="run-fail=0.2,journal-fail=0.5,crash-after=25,seed=7"
//
// Knobs (all optional, comma-separated key=value):
//
//	run-fail=P      fail a fraction P of runs with a transient error. The
//	                decision is a deterministic hash of (seed, run key), so
//	                the same spec chooses the same victims; a victim fails at
//	                most MaxRunFailures consecutive attempts and then
//	                succeeds, so any retry policy allowing MaxRunFailures+1
//	                attempts is guaranteed to complete.
//	journal-fail=P  fail a fraction P of journal appends (before any byte is
//	                written, so the journal file stays intact).
//	crash-after=K   after K successful run completions in this process, print
//	                a marker to stderr and os.Exit(CrashExitCode) without any
//	                cleanup — the in-process stand-in for kill -9.
//	worker-kill=P   in a cordd worker, die (marker to stderr, then
//	                os.Exit(CrashExitCode) with no cleanup) after a fraction P
//	                of completed campaign shards, before the response is
//	                written — the coordinator sees a dropped connection, not a
//	                clean error. The decision stream is deterministic in
//	                (seed, shard-completion index), so a pinned seed replays
//	                the same kill schedule.
//	worker-restart-delay=D
//	                how long a killed worker's supervisor should wait before
//	                restarting it (a duration; default 1s). Chaos itself never
//	                restarts anything — the knob travels in CORD_CHAOS so one
//	                spec pins the whole kill/restart schedule, and harnesses
//	                (scripts/fleet-chaos-smoke.sh) read it via RestartDelay.
//	seed=N          vary which runs are chosen (default 1).
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// EnvVar is the environment variable FromEnv reads.
const EnvVar = "CORD_CHAOS"

// CrashExitCode is the exit status of a crash-after termination. It is
// deliberately distinct from every ordinary cord exit code (0–3) so harnesses
// can tell an injected crash from a real failure.
const CrashExitCode = 42

// MaxRunFailures bounds how many consecutive attempts of one run a run-fail
// injection may fail. Keeping it below the runner's retry budget (default 3
// attempts) makes chaotic campaigns terminate by construction: transient
// means transient.
const MaxRunFailures = 2

// ErrInjected is the root of every chaos-injected failure, so tests and
// logs can tell injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// runError is a chaos-injected transient run failure. It implements the
// Transient() contract the experiment runner's retry classifier looks for.
type runError struct{ msg string }

func (e *runError) Error() string        { return e.msg }
func (e *runError) Transient() bool      { return true }
func (e *runError) Unwrap() error        { return ErrInjected }
func (e *runError) Is(target error) bool { return target == ErrInjected }

// Chaos injects faults according to one parsed specification. The zero value
// injects nothing; methods on a nil *Chaos are safe and inject nothing, so
// callers thread it through unconditionally.
type Chaos struct {
	runFail      float64
	journalFail  float64
	crashAfter   int
	workerKill   float64
	restartDelay time.Duration
	seed         uint64

	mu        sync.Mutex
	attempts  map[string]int // run key -> failed attempts so far
	completed int
	journalN  uint64 // journal-append decision counter
	shardN    uint64 // worker-kill decision counter (completed shards)

	// exit is os.Exit, a field so tests can observe crashes without dying.
	exit func(int)
}

// Parse builds a Chaos from a specification string; an empty string yields
// nil (no chaos).
func Parse(spec string) (*Chaos, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	c := &Chaos{seed: 1, crashAfter: -1, restartDelay: time.Second, attempts: make(map[string]int), exit: os.Exit}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("chaos: %q is not key=value", part)
		}
		switch key {
		case "run-fail", "journal-fail", "worker-kill":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("chaos: %s must be a probability in [0,1], got %q", key, val)
			}
			switch key {
			case "run-fail":
				c.runFail = p
			case "journal-fail":
				c.journalFail = p
			case "worker-kill":
				c.workerKill = p
			}
		case "worker-restart-delay":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("chaos: worker-restart-delay must be a positive duration, got %q", val)
			}
			c.restartDelay = d
		case "crash-after":
			k, err := strconv.Atoi(val)
			if err != nil || k < 1 {
				return nil, fmt.Errorf("chaos: crash-after must be a positive integer, got %q", val)
			}
			c.crashAfter = k
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: seed must be an unsigned integer, got %q", val)
			}
			c.seed = s
		default:
			return nil, fmt.Errorf("chaos: unknown knob %q (want run-fail, journal-fail, crash-after, worker-kill, worker-restart-delay, seed)", key)
		}
	}
	return c, nil
}

// FromEnv parses the CORD_CHAOS environment variable; unset or empty yields
// nil (no chaos).
func FromEnv() (*Chaos, error) {
	return Parse(os.Getenv(EnvVar))
}

// draw is a deterministic uniform draw in [0,1) from (seed, label, n).
//
// The FNV state is passed through a 64-bit avalanche finalizer before use:
// FNV-1a's final byte only reaches the high bits through one multiply, so for
// sequential counters (journal appends, shard completions) the last decimal
// digit of n barely moves the draw — ten consecutive n values land within
// 1e-7 of each other and a probability knob degrades to deciding in blocks of
// ten. The finalizer restores per-increment independence while keeping the
// draw a pure function of (seed, label, n).
func (c *Chaos) draw(label string, n uint64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", c.seed, label, n)
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

// RunFault decides whether the attempt-th try (1-based) of the run named by
// key fails, and returns the transient error to fail it with (nil: run
// normally). Victim selection hashes (seed, key); how many attempts a victim
// loses also derives from the hash, capped at MaxRunFailures, so chaotic
// campaigns always complete under a retry budget of MaxRunFailures+1.
func (c *Chaos) RunFault(key string, attempt int) error {
	if c == nil || c.runFail <= 0 {
		return nil
	}
	if c.draw("run", hashKey(key)) >= c.runFail {
		return nil // not a victim
	}
	failures := 1
	if c.draw("run-depth", hashKey(key)) < c.runFail {
		failures = MaxRunFailures
	}
	c.mu.Lock()
	failed := c.attempts[key]
	inject := failed < failures && attempt <= failures
	if inject {
		c.attempts[key] = failed + 1
	}
	c.mu.Unlock()
	if !inject {
		return nil
	}
	return &runError{msg: fmt.Sprintf("chaos: injected transient failure (run %s, attempt %d)", key, attempt)}
}

// JournalFault decides whether one journal append fails; the decision stream
// is deterministic in append order. The returned error wraps ErrInjected.
func (c *Chaos) JournalFault() error {
	if c == nil || c.journalFail <= 0 {
		return nil
	}
	c.mu.Lock()
	n := c.journalN
	c.journalN++
	c.mu.Unlock()
	if c.draw("journal", n) >= c.journalFail {
		return nil
	}
	return fmt.Errorf("%w: journal write refused (append %d)", ErrInjected, n)
}

// RunCompleted records one successful run completion and, when crash-after is
// armed and the threshold is reached, terminates the process abruptly —
// no flushes, no deferred functions — exactly like a kill.
func (c *Chaos) RunCompleted() {
	if c == nil || c.crashAfter < 1 {
		return
	}
	c.mu.Lock()
	c.completed++
	crash := c.completed >= c.crashAfter
	exit := c.exit
	c.mu.Unlock()
	if crash {
		fmt.Fprintf(os.Stderr, "chaos: crashing after %d completions\n", c.crashAfter)
		exit(CrashExitCode)
	}
}

// ShardCompleted records one completed campaign shard in a cordd worker and,
// when worker-kill is armed and this completion draws a kill, terminates the
// process abruptly — marker to stderr, os.Exit(CrashExitCode), no cleanup, no
// response written. The draw is deterministic in (seed, completion index):
// the same spec kills after the same shards, so a chaos harness with a pinned
// seed replays an identical schedule. The coordinator observes a dropped
// connection mid-request, exactly what a kill -9 produces, and must recover
// through §6/§7 idempotency: retry, declare the worker dead, requeue.
func (c *Chaos) ShardCompleted() {
	if c == nil || c.workerKill <= 0 {
		return
	}
	c.mu.Lock()
	n := c.shardN
	c.shardN++
	kill := c.draw("worker-kill", n) < c.workerKill
	exit := c.exit
	c.mu.Unlock()
	if kill {
		fmt.Fprintf(os.Stderr, "chaos: killing worker after shard completion %d\n", n)
		exit(CrashExitCode)
	}
}

// RestartDelay is how long a supervisor should wait before restarting a
// worker the worker-kill knob took down (1s unless worker-restart-delay says
// otherwise). Meaningful only alongside worker-kill; harnesses read it so the
// whole kill/restart schedule is pinned by the one CORD_CHAOS spec.
func (c *Chaos) RestartDelay() time.Duration {
	if c == nil {
		return 0
	}
	return c.restartDelay
}

// Active reports whether any fault is armed (false for nil).
func (c *Chaos) Active() bool {
	return c != nil && (c.runFail > 0 || c.journalFail > 0 || c.crashAfter > 0 || c.workerKill > 0)
}

// String summarizes the armed faults for startup logging.
func (c *Chaos) String() string {
	if c == nil {
		return "chaos: off"
	}
	parts := []string{}
	if c.runFail > 0 {
		parts = append(parts, fmt.Sprintf("run-fail=%g", c.runFail))
	}
	if c.journalFail > 0 {
		parts = append(parts, fmt.Sprintf("journal-fail=%g", c.journalFail))
	}
	if c.crashAfter > 0 {
		parts = append(parts, fmt.Sprintf("crash-after=%d", c.crashAfter))
	}
	if c.workerKill > 0 {
		parts = append(parts, fmt.Sprintf("worker-kill=%g worker-restart-delay=%v", c.workerKill, c.restartDelay))
	}
	if len(parts) == 0 {
		return "chaos: off"
	}
	return "chaos: " + strings.Join(parts, " ") + fmt.Sprintf(" seed=%d", c.seed)
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
