// Package perf defines the repository's performance-kernel benchmarks and
// the schema-versioned BENCH_perf.json artifact that records their results.
//
// The kernels isolate the simulator's hot paths — the memsys access path,
// the cache structures, the detector OnAccess pipelines, and a full engine
// run — so that a data-structure or algorithm change shows up as a ns/op and
// allocs/op delta rather than only as campaign wall-clock noise. The same
// kernels back three entry points:
//
//   - `go test -bench 'Kernel' ./internal/perf` for interactive work,
//   - cmd/cordperf, which runs every kernel plus a campaign slice and writes
//     the BENCH_perf.json trajectory artifact (see `make bench-json`),
//   - a cheap smoke test that executes every kernel body once under plain
//     `go test ./...` so a broken kernel cannot hide until the next bench run.
package perf

import (
	"bytes"
	"math/rand/v2"
	"sync"
	"testing"

	"cord/internal/baseline"
	"cord/internal/cache"
	"cord/internal/clock"
	"cord/internal/core"
	"cord/internal/memsys"
	"cord/internal/record"
	"cord/internal/sim"
	"cord/internal/trace"
)

// Kernel is one hot-path micro-benchmark. Setup builds the state under test
// and returns the per-iteration body; the body must be safe to call any
// number of times with increasing i.
type Kernel struct {
	Name  string
	Setup func() func(i int)
}

// Bench adapts a kernel to the testing harness: setup outside the timer,
// allocation reporting on.
func (k Kernel) Bench(b *testing.B) {
	body := k.Setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body(i)
	}
}

// Kernels returns the full suite in stable order (the order BENCH_perf.json
// records them in).
func Kernels() []Kernel {
	return []Kernel{
		{Name: "memsys/store-load", Setup: setupMemsysDense},
		{Name: "memsys/sparse-load", Setup: setupMemsysSparse},
		{Name: "cache/bounded-churn", Setup: setupCacheBounded},
		{Name: "cache/unbounded-churn", Setup: setupCacheUnbounded},
		{Name: "detector/bounded", Setup: setupDetectorBounded},
		{Name: "detector/unbounded", Setup: setupDetectorUnbounded},
		{Name: "baseline/vec-infcache", Setup: setupVecInf},
		{Name: "baseline/ideal", Setup: setupIdeal},
		{Name: "baseline/fasttrack", Setup: setupFastTrack},
		{Name: "baseline/fasttrack-sharded", Setup: setupFastTrackSharded},
		{Name: "record/stream-decode", Setup: setupStreamDecode},
		{Name: "engine/lock-ping", Setup: setupEngine},
	}
}

// setupMemsysDense exercises the word store the way workload inner loops do:
// word-stride stores and loads over a multi-page working set.
func setupMemsysDense() func(i int) {
	m := memsys.NewMemory()
	const words = 1 << 14 // 64 KB of simulated memory
	return func(i int) {
		a := memsys.Addr(memsys.LineBytes + (i%words)*memsys.WordBytes)
		m.Store(a, uint64(i)|1)
		if m.Load(a) == 0 {
			panic("perf: lost store")
		}
	}
}

// setupMemsysSparse exercises the miss path: loads scattered over a wide
// address range where almost every word is zero.
func setupMemsysSparse() func(i int) {
	m := memsys.NewMemory()
	const span = 1 << 22 // 4 MB address span
	for w := 0; w < span/memsys.WordBytes; w += 1024 {
		m.Store(memsys.Addr(memsys.LineBytes+w*memsys.WordBytes), uint64(w+1))
	}
	rng := rand.New(rand.NewPCG(7, 11))
	addrs := make([]memsys.Addr, 4096)
	for j := range addrs {
		addrs[j] = memsys.Addr(memsys.LineBytes + rng.Uint64N(span))
	}
	var sink uint64
	return func(i int) {
		sink += m.Load(addrs[i%len(addrs)])
	}
}

// setupCacheBounded churns a paper-geometry L2 (32 KB, 8-way) with a working
// set twice its capacity: every access is a lookup plus, on miss, an insert
// with eviction.
func setupCacheBounded() func(i int) {
	c := cache.New[uint64](cache.Config{SizeBytes: 32 << 10, Ways: 8})
	lines := 2 * (32 << 10) / memsys.LineBytes
	return func(i int) {
		l := memsys.Line(i % lines)
		if p, ok := c.Lookup(l); ok {
			*p++
			return
		}
		c.Insert(l, uint64(i))
	}
}

// setupCacheUnbounded mirrors the InfCache detector pattern: lookups and
// inserts over a growing line set, invalidations of a rotating victim, and a
// periodic full walk (the §2.7.5 cache walker).
func setupCacheUnbounded() func(i int) {
	c := cache.NewUnbounded[uint64]()
	const lines = 1 << 12
	var sink uint64
	return func(i int) {
		l := memsys.Line(i % lines)
		if p, ok := c.Lookup(l); ok {
			*p++
		} else {
			c.Insert(l, uint64(i))
		}
		if i%8 == 7 {
			c.Remove(memsys.Line((i * 2654435761) % lines))
		}
		if i%4096 == 4095 {
			c.ForEach(func(_ memsys.Line, p *uint64) { sink += *p })
		}
	}
}

// accessStream builds a deterministic synthetic access stream with the mix a
// detector sees in practice: mostly data reads/writes across a multi-line
// working set shared by all threads, with periodic synchronization accesses.
func accessStream(threads, n int) []trace.Access {
	rng := rand.New(rand.NewPCG(42, 43))
	accs := make([]trace.Access, n)
	instr := make([]uint64, threads)
	const lines = 1 << 10
	for i := range accs {
		t := i % threads
		a := trace.Access{
			Seq:    uint64(i),
			Thread: t,
			Proc:   t,
			Instr:  instr[t],
			Instrs: 1,
		}
		// The sync modulus is coprime to the thread count so the sync ops
		// rotate over every thread. If one thread never synchronized, the
		// Ideal oracle could never prune its history and the kernel's
		// footprint would grow without bound across benchmark iterations.
		switch {
		case i%67 == 66: // sync release
			a.Class, a.Kind = trace.Sync, trace.Write
			a.Addr = memsys.Addr(memsys.LineBytes * (1 + uint64(t)))
		case i%67 == 33: // sync acquire
			a.Class, a.Kind = trace.Sync, trace.Read
			a.Addr = memsys.Addr(memsys.LineBytes * (1 + uint64((t+1)%threads)))
		default:
			a.Class = trace.Data
			if rng.Uint64N(4) == 0 {
				a.Kind = trace.Write
			}
			line := 16 + rng.Uint64N(lines)
			word := rng.Uint64N(memsys.WordsPerLine)
			a.Addr = memsys.WordAddr(memsys.Line(line), int(word))
		}
		instr[t]++
		accs[i] = a
	}
	return accs
}

func observerKernel(obs trace.Observer) func(i int) {
	accs := accessStream(4, 1<<14)
	return func(i int) {
		obs.OnAccess(accs[i%len(accs)])
	}
}

// The detector kernels run with recording off: on this deliberately racy
// stream nearly every access changes a clock, so the order log would grow
// with the iteration count and the kernel's footprint would be unbounded.
// The log-append path is priced end to end by engine/lock-ping instead.

func setupDetectorBounded() func(i int) {
	cfg := core.DefaultConfig()
	cfg.Record = false
	return observerKernel(core.New(cfg))
}

func setupDetectorUnbounded() func(i int) {
	cfg := core.DefaultConfig()
	cfg.Record = false
	cfg.Unbounded = true
	return observerKernel(core.New(cfg))
}

func setupVecInf() func(i int) {
	return observerKernel(baseline.NewVecCache(baseline.VecConfig{Threads: 4, Procs: 4, Bound: baseline.BoundInf}))
}

func setupIdeal() func(i int) {
	return observerKernel(baseline.NewIdeal(4))
}

// setupFastTrack prices the epoch detector's serial OnAccess path on the
// shared stream the other baseline kernels use. With the default single
// shard the lock is uncontended, so ns/op is the pure epoch-compare cost —
// the number to hold against baseline/ideal's full vector-clock walk.
func setupFastTrack() func(i int) {
	return observerKernel(baseline.NewFastTrack(baseline.FastTrackConfig{Threads: 4, Shards: 1}))
}

// setupFastTrackSharded prices concurrent ingestion: four goroutines feed one
// 64-shard FastTrack detector, each replaying its own thread's slice of the
// stream. One iteration is one 4x64-access block, so ns/op here is per block,
// not per access — the kernel exists to catch shard-lock contention and
// cross-shard accounting regressions, not to compare against the serial
// kernels.
func setupFastTrackSharded() func(i int) {
	ft := baseline.NewFastTrack(baseline.FastTrackConfig{Threads: 4, Shards: 64})
	byThread := make([][]trace.Access, 4)
	for _, a := range accessStream(4, 1<<14) {
		byThread[a.Thread] = append(byThread[a.Thread], a)
	}
	const block = 64
	return func(i int) {
		var wg sync.WaitGroup
		for t := 0; t < 4; t++ {
			wg.Add(1)
			go func(accs []trace.Access) {
				defer wg.Done()
				off := i * block
				for k := 0; k < block; k++ {
					ft.OnAccess(accs[(off+k)%len(accs)])
				}
			}(byThread[t])
		}
		wg.Wait()
	}
}

// setupStreamDecode prices the /v1/stream ingest hot path: one iteration
// feeds one transport-sized chunk of an encoded order log through the
// incremental decoder (record.StreamDecoder), restarting the stream when it
// is exhausted. ns/op here is the per-chunk decode cost the streaming
// service pays at line rate; allocs/op must stay 0 on the steady state.
func setupStreamDecode() func(i int) {
	var l record.Log
	for k := 0; k < 1<<16; k++ {
		l.Append(record.Entry{Clock: clock.Scalar(k / 4), Thread: uint16(k % 4), Instr: uint32(k | 1)})
	}
	var buf bytes.Buffer
	if err := l.EncodeTo(&buf); err != nil {
		panic(err)
	}
	stream := buf.Bytes()
	const chunk = 32 << 10
	d := record.NewStreamDecoder()
	off := 0
	var sink uint64
	emit := func(e record.Entry) error { sink += uint64(e.Instr); return nil }
	return func(i int) {
		if off == 0 {
			d.Reset()
		}
		end := off + chunk
		if end > len(stream) {
			end = len(stream)
		}
		if err := d.Feed(stream[off:end], emit); err != nil {
			panic(err)
		}
		if off = end; off == len(stream) {
			if err := d.Close(); err != nil {
				panic(err)
			}
			off = 0
		}
	}
}

// setupEngine runs a complete small execution per iteration: two threads
// ping-ponging a lock-protected counter. This prices the engine's scheduler
// handoff and access delivery end to end, with a CORD detector attached.
func setupEngine() func(i int) {
	return func(i int) {
		var lock, ctr memsys.Addr
		prog := sim.Program{
			Name:    "perf-lock-ping",
			Threads: 2,
			Init:    func(mem *memsys.Memory) {},
			Body: func(t int, env *sim.Env) {
				for k := 0; k < 64; k++ {
					env.Lock(lock)
					env.Write(ctr, env.Read(ctr)+1)
					env.Unlock(lock)
					env.Compute(3)
				}
			},
		}
		lock = memsys.Addr(memsys.LineBytes)
		ctr = memsys.Addr(2 * memsys.LineBytes)
		det := core.New(core.Config{Threads: 2, Procs: 2, D: 16, Record: true})
		res, err := sim.New(sim.Config{
			Seed:      uint64(i + 1),
			Procs:     2,
			Observers: []trace.Observer{det},
			Primary:   det,
		}, prog).Run()
		if err != nil {
			panic(err)
		}
		if res.Mem.Load(ctr) != 128 {
			panic("perf: lock-ping lost updates")
		}
	}
}
